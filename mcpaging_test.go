package mcpaging_test

import (
	"testing"

	"mcpaging"
)

// The root package is a façade; these tests exercise the public API end
// to end the way a downstream user would.

func TestPublicQuickstartFlow(t *testing.T) {
	rs, err := mcpaging.GenerateWorkload(mcpaging.WorkloadSpec{
		Cores: 4, Length: 500, Pages: 32, Kind: mcpaging.WorkloadZipf, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	inst := mcpaging.Instance{R: rs, P: mcpaging.Params{K: 16, Tau: 2}}
	res, err := mcpaging.Simulate(inst, mcpaging.SharedLRU())
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalFaults()+res.TotalHits() != int64(rs.TotalLen()) {
		t.Fatal("accounting broken")
	}
	if res.Makespan <= 0 {
		t.Fatal("makespan missing")
	}
}

func TestPublicStrategyConstructors(t *testing.T) {
	rs, _ := mcpaging.GenerateWorkload(mcpaging.WorkloadSpec{
		Cores: 2, Length: 200, Pages: 8, Kind: mcpaging.WorkloadUniform, Seed: 2,
	})
	inst := mcpaging.Instance{R: rs, P: mcpaging.Params{K: 8, Tau: 1}}
	for _, name := range mcpaging.EvictionPolicies() {
		s, err := mcpaging.Shared(name, 42)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := mcpaging.Simulate(inst, s); err != nil {
			t.Fatalf("shared %s: %v", name, err)
		}
	}
	if _, err := mcpaging.Shared("nope", 0); err == nil {
		t.Fatal("unknown policy should fail")
	}
	sp, err := mcpaging.StaticPartition(mcpaging.EvenPartition(8, 2), "LRU", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mcpaging.Simulate(inst, sp); err != nil {
		t.Fatal(err)
	}
	dyn := mcpaging.DynamicLRUPartition()
	if _, err := mcpaging.Simulate(inst, dyn); err != nil {
		t.Fatal(err)
	}
	st, err := mcpaging.StagedPartition([]mcpaging.Stage{
		{At: 0, Sizes: []int{4, 4}},
		{At: 100, Sizes: []int{6, 2}},
	}, "LRU", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mcpaging.Simulate(inst, st); err != nil {
		t.Fatal(err)
	}
}

func TestPublicPartitionOptimizer(t *testing.T) {
	rs, _ := mcpaging.GenerateWorkload(mcpaging.WorkloadSpec{
		Cores: 3, Length: 400, Pages: 12, Kind: mcpaging.WorkloadPhased, Seed: 3,
	})
	part, err := mcpaging.OptimalStaticLRU(rs, 12)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := mcpaging.StaticPartition(part.Sizes, "LRU", 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mcpaging.Simulate(mcpaging.Instance{R: rs, P: mcpaging.Params{K: 12, Tau: 0}}, sp)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalFaults() != part.Faults {
		t.Fatalf("prediction %d, simulated %d", part.Faults, res.TotalFaults())
	}
	curve := mcpaging.LRUMissCurve(rs[0], 12)
	optCurve := mcpaging.OPTMissCurve(rs[0], 12)
	for k := 1; k <= 12; k++ {
		if optCurve[k] > curve[k] {
			t.Fatal("OPT curve above LRU curve")
		}
	}
}

func TestPublicOfflineSolvers(t *testing.T) {
	inst := mcpaging.Instance{
		R: mcpaging.RequestSet{{0, 1, 0, 1}, {10, 11, 10}},
		P: mcpaging.Params{K: 3, Tau: 1},
	}
	sol, err := mcpaging.MinTotalFaults(inst, mcpaging.OfflineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Faults < 4 { // at least one fault per distinct page
		t.Fatalf("implausible optimum %d", sol.Faults)
	}
	yes, _, err := mcpaging.DecidePIF(mcpaging.PIFInstance{
		Inst: inst, T: 100, Bounds: []int64{10, 10},
	}, mcpaging.OfflineOptions{})
	if err != nil || !yes {
		t.Fatalf("generous PIF should be yes (err=%v)", err)
	}
}

func TestPublicObserver(t *testing.T) {
	inst := mcpaging.Instance{
		R: mcpaging.RequestSet{{1, 2, 1}},
		P: mcpaging.Params{K: 2, Tau: 0},
	}
	var events int
	_, err := mcpaging.Observe(inst, mcpaging.SharedLRU(), func(mcpaging.Event) { events++ })
	if err != nil {
		t.Fatal(err)
	}
	if events != 3 {
		t.Fatalf("observed %d events, want 3", events)
	}
}
