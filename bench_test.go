// Benchmarks: one per experiment (the reproduction of each paper claim,
// run at reduced size — see EXPERIMENTS.md for the full-size numbers
// produced by cmd/mcexp), plus throughput benchmarks of the simulator
// and the offline solvers.
package mcpaging_test

import (
	"io"
	"testing"

	"mcpaging"
	"mcpaging/internal/experiments"
	"mcpaging/internal/mattson"
	"mcpaging/internal/offline"
)

// benchExperiment runs one registered experiment per iteration in quick
// mode.
func benchExperiment(b *testing.B, id string) {
	r, err := experiments.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := experiments.Config{Quick: true, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Render(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE1Lemma1 reproduces Lemma 1 (fixed static partition: LRU vs
// per-part OPT, ratio ≤ max_j k_j).
func BenchmarkE1Lemma1(b *testing.B) { benchExperiment(b, "E1") }

// BenchmarkE2Lemma2 reproduces Lemma 2 (online static partitions lose
// Ω(n)).
func BenchmarkE2Lemma2(b *testing.B) { benchExperiment(b, "E2") }

// BenchmarkE3SharedBeatsPartition reproduces Theorem 1(1).
func BenchmarkE3SharedBeatsPartition(b *testing.B) { benchExperiment(b, "E3") }

// BenchmarkE4SharedWithinK reproduces Theorem 1(2).
func BenchmarkE4SharedWithinK(b *testing.B) { benchExperiment(b, "E4") }

// BenchmarkE5SlowDynamic reproduces Theorem 1(3).
func BenchmarkE5SlowDynamic(b *testing.B) { benchExperiment(b, "E5") }

// BenchmarkE6Equivalence reproduces Lemma 3 (dP ≡ S_LRU).
func BenchmarkE6Equivalence(b *testing.B) { benchExperiment(b, "E6") }

// BenchmarkE7LRULowerBound reproduces Lemma 4 (Ω(p(τ+1)) ratio).
func BenchmarkE7LRULowerBound(b *testing.B) { benchExperiment(b, "E7") }

// BenchmarkE8FITFNotOptimal reproduces the FITF non-optimality remark.
func BenchmarkE8FITFNotOptimal(b *testing.B) { benchExperiment(b, "E8") }

// BenchmarkE9Reduction reproduces Theorems 2 and 3 (executable gadgets).
func BenchmarkE9Reduction(b *testing.B) { benchExperiment(b, "E9") }

// BenchmarkE10FTFDP reproduces Theorem 6 (Algorithm 1).
func BenchmarkE10FTFDP(b *testing.B) { benchExperiment(b, "E10") }

// BenchmarkE11PIFDP reproduces Theorem 7 (Algorithm 2).
func BenchmarkE11PIFDP(b *testing.B) { benchExperiment(b, "E11") }

// BenchmarkE12HonestFITF reproduces Theorems 4 and 5.
func BenchmarkE12HonestFITF(b *testing.B) { benchExperiment(b, "E12") }

// BenchmarkE13PolicyMatrix reproduces the policy × workload comparison.
func BenchmarkE13PolicyMatrix(b *testing.B) { benchExperiment(b, "E13") }

// BenchmarkE14HassidimModel reproduces the scheduler-model comparison.
func BenchmarkE14HassidimModel(b *testing.B) { benchExperiment(b, "E14") }

// BenchmarkE15Multiapplication reproduces the fixed-interleaving model
// comparison and the τ=0 equivalences.
func BenchmarkE15Multiapplication(b *testing.B) { benchExperiment(b, "E15") }

// BenchmarkE16Fairness reproduces the fairness study (Section 6 /
// PIF yardstick).
func BenchmarkE16Fairness(b *testing.B) { benchExperiment(b, "E16") }

// BenchmarkE17Anomalies reproduces the alignment-anomaly study.
func BenchmarkE17Anomalies(b *testing.B) { benchExperiment(b, "E17") }

// BenchmarkE18Ratios reproduces the empirical competitive-ratio study.
func BenchmarkE18Ratios(b *testing.B) { benchExperiment(b, "E18") }

// BenchmarkE19Objectives reproduces the faults-vs-makespan conflict
// study.
func BenchmarkE19Objectives(b *testing.B) { benchExperiment(b, "E19") }

// BenchmarkE20Synthesis reproduces the adversary-synthesis study.
func BenchmarkE20Synthesis(b *testing.B) { benchExperiment(b, "E20") }

// BenchmarkE21Frontier reproduces the PIF Pareto-frontier study.
func BenchmarkE21Frontier(b *testing.B) { benchExperiment(b, "E21") }

// BenchmarkE22Augmentation reproduces the resource-augmentation study.
func BenchmarkE22Augmentation(b *testing.B) { benchExperiment(b, "E22") }

// --- throughput micro-benchmarks ---

func benchWorkload(b *testing.B, kind mcpaging.WorkloadKind, p int) mcpaging.Instance {
	b.Helper()
	rs, err := mcpaging.GenerateWorkload(mcpaging.WorkloadSpec{
		Cores: p, Length: 50000, Pages: 256, Kind: kind, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	return mcpaging.Instance{R: rs, P: mcpaging.Params{K: 128, Tau: 8}}
}

// BenchmarkSimSharedLRU measures simulator throughput (requests/op
// reported via custom metric) with shared LRU on a Zipf workload.
func BenchmarkSimSharedLRU(b *testing.B) {
	in := benchWorkload(b, mcpaging.WorkloadZipf, 8)
	n := float64(in.R.TotalLen())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mcpaging.Simulate(in, mcpaging.SharedLRU()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(n*float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkSimStaticLRU measures the statically partitioned simulator.
func BenchmarkSimStaticLRU(b *testing.B) {
	in := benchWorkload(b, mcpaging.WorkloadZipf, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := mcpaging.StaticPartition(mcpaging.EvenPartition(128, 8), "LRU", 0)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := mcpaging.Simulate(in, s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimDynamicLRU measures the Lemma 3 dynamic partition.
func BenchmarkSimDynamicLRU(b *testing.B) {
	in := benchWorkload(b, mcpaging.WorkloadZipf, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mcpaging.Simulate(in, mcpaging.DynamicLRUPartition()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimSharedFITF measures the offline-oracle strategy (oracle
// lookups dominate, so the workload is smaller than the online benches).
func BenchmarkSimSharedFITF(b *testing.B) {
	rs, err := mcpaging.GenerateWorkload(mcpaging.WorkloadSpec{
		Cores: 2, Length: 8000, Pages: 64, Kind: mcpaging.WorkloadLoop, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	in := mcpaging.Instance{R: rs, P: mcpaging.Params{K: 32, Tau: 8}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mcpaging.Simulate(in, mcpaging.SharedFITF()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMissCurveLRU measures Mattson stack-distance curve
// construction.
func BenchmarkMissCurveLRU(b *testing.B) {
	rs, err := mcpaging.GenerateWorkload(mcpaging.WorkloadSpec{
		Cores: 1, Length: 100000, Pages: 512, Kind: mcpaging.WorkloadZipf, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mcpaging.LRUMissCurve(rs[0], 128)
	}
}

// BenchmarkOptimalPartition measures the miss-curve DP end to end.
func BenchmarkOptimalPartition(b *testing.B) {
	rs, err := mcpaging.GenerateWorkload(mcpaging.WorkloadSpec{
		Cores: 8, Length: 20000, Pages: 128, Kind: mcpaging.WorkloadPhased, Seed: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mcpaging.OptimalStaticLRU(rs, 64); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFTFDP measures Algorithm 1 on a fixed small instance.
func BenchmarkFTFDP(b *testing.B) {
	in := mcpaging.Instance{
		R: mcpaging.RequestSet{{0, 1, 2, 0, 1}, {10, 11, 10, 12, 11}},
		P: mcpaging.Params{K: 3, Tau: 1},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mcpaging.MinTotalFaults(in, mcpaging.OfflineOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPIFDP measures Algorithm 2 on a fixed small instance.
func BenchmarkPIFDP(b *testing.B) {
	pi := mcpaging.PIFInstance{
		Inst: mcpaging.Instance{
			R: mcpaging.RequestSet{{0, 1, 2, 0, 1}, {10, 11, 10, 12, 11}},
			P: mcpaging.Params{K: 3, Tau: 1},
		},
		T:      8,
		Bounds: []int64{3, 3},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := mcpaging.DecidePIF(pi, mcpaging.OfflineOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBruteVsDP contrasts exhaustive search with the DP on the same
// instance (the DP's asymptotic advantage shows even at toy sizes).
func BenchmarkBruteVsDP(b *testing.B) {
	in := mcpaging.Instance{
		R: mcpaging.RequestSet{{0, 1, 2, 0, 1, 2}, {10, 11, 10, 12, 11, 10}},
		P: mcpaging.Params{K: 3, Tau: 1},
	}
	b.Run("DP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := offline.SolveFTF(in, offline.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("brute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := offline.BruteFTF(in); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- ablation benchmarks for the DP design choices (DESIGN.md §5) ---

var ablationPIF = mcpaging.PIFInstance{
	Inst: mcpaging.Instance{
		R: mcpaging.RequestSet{{0, 1, 2, 0, 1, 2}, {10, 11, 10, 12, 11, 12}},
		P: mcpaging.Params{K: 3, Tau: 1},
	},
	T:      14,
	Bounds: []int64{4, 4},
}

// BenchmarkAblationPIFPruning quantifies Algorithm 2's pair-dominance
// pruning (identical answers with and without). Honest finding: on
// tiny instances the dominance scan costs more than it saves — pairs
// mostly carry distinct timestamps, so same-time dominance rarely
// fires; the pruning exists for the deep-T regimes where pair lists
// grow.
func BenchmarkAblationPIFPruning(b *testing.B) {
	b.Run("pruned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := mcpaging.DecidePIF(ablationPIF, mcpaging.OfflineOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unpruned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := mcpaging.DecidePIF(ablationPIF, mcpaging.OfflineOptions{NoPairPruning: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationFTFPruning quantifies Algorithm 1's best-so-far
// cutoff.
func BenchmarkAblationFTFPruning(b *testing.B) {
	in := mcpaging.Instance{
		R: mcpaging.RequestSet{{0, 1, 2, 0, 1, 2}, {10, 11, 10, 12, 11, 10}},
		P: mcpaging.Params{K: 3, Tau: 1},
	}
	b.Run("pruned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mcpaging.MinTotalFaults(in, mcpaging.OfflineOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unpruned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mcpaging.MinTotalFaults(in, mcpaging.OfflineOptions{NoBranchPruning: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationOPTCurve contrasts the serial and parallel OPT-curve
// computations (identical outputs).
func BenchmarkAblationOPTCurve(b *testing.B) {
	rs, err := mcpaging.GenerateWorkload(mcpaging.WorkloadSpec{
		Cores: 1, Length: 30000, Pages: 256, Kind: mcpaging.WorkloadZipf, Seed: 9,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mcpaging.OPTMissCurve(rs[0], 64)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mattson.OPTCurveParallel(rs[0], 64, 0)
		}
	})
}
