#!/bin/sh
# bench_compare.sh [-strict] OLD NEW — compare two `go test -bench`
# output files.
#
# Uses benchstat when it is on PATH (the statistically honest comparison:
# run both sides with -count 5 or more). Otherwise falls back to an awk
# table of per-benchmark mean ns/op, B/op, and allocs/op with the ratio
# old/new, which is good enough for a quick local look. With -strict the
# fallback is an error instead — the mode for CI artifacts, where a
# non-statistical table would silently degrade the comparison.
set -eu

strict=0
if [ "${1:-}" = "-strict" ]; then
    strict=1
    shift
fi
if [ "$#" -ne 2 ]; then
    echo "usage: $0 [-strict] old.txt new.txt" >&2
    exit 2
fi
old=$1
new=$2
for f in "$old" "$new"; do
    if [ ! -f "$f" ]; then
        echo "bench_compare: missing $f (run 'make bench-baseline' first)" >&2
        exit 2
    fi
done

if command -v benchstat >/dev/null 2>&1; then
    exec benchstat "$old" "$new"
fi

if [ "$strict" = 1 ]; then
    echo "bench_compare: benchstat is required in -strict mode; install it with:" >&2
    echo "    go install golang.org/x/perf/cmd/benchstat@latest" >&2
    exit 1
fi

echo "benchstat not installed; falling back to mean comparison" >&2
awk '
# Benchmark result lines look like:
#   BenchmarkName-8  100  123456 ns/op  789 B/op  12 allocs/op
FNR == 1 { file++ }
/^Benchmark/ {
    name = $1
    for (i = 2; i <= NF - 1; i++) {
        if ($(i + 1) == "ns/op")     { ns[file, name] += $i;  cnt[file, name]++ }
        if ($(i + 1) == "B/op")      { bops[file, name] += $i }
        if ($(i + 1) == "allocs/op") { aops[file, name] += $i }
    }
    if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
}
END {
    printf "%-40s %14s %14s %8s %12s %12s\n", "benchmark", "old ns/op", "new ns/op", "speedup", "old allocs", "new allocs"
    for (i = 1; i <= n; i++) {
        name = order[i]
        c1 = cnt[1, name]; c2 = cnt[2, name]
        if (!c1 || !c2) continue
        o = ns[1, name] / c1; w = ns[2, name] / c2
        printf "%-40s %14.0f %14.0f %7.2fx %12.1f %12.1f\n", name, o, w, o / w, aops[1, name] / c1, aops[2, name] / c2
    }
}' "$old" "$new"
