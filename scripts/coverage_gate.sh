#!/bin/sh
# Coverage floor gate for CI: run the short test suite with coverage,
# print a per-package breakdown with each package's delta against the
# floor, and fail if total statement coverage drops below the floor.
#
# Usage: scripts/coverage_gate.sh <floor> [profile]
#   floor    minimum total coverage, e.g. 83.4 (the seed baseline)
#   profile  output profile path (default cover.out)
set -eu

floor="${1:?usage: coverage_gate.sh <floor> [profile]}"
profile="${2:-cover.out}"
cd "$(dirname "$0")/.."

go test -short -coverprofile="$profile" ./... > /dev/null
# Command mains (cmd/...) are thin flag-parsing shims exercised end to
# end by scripts/smoke.sh, not by unit tests; excluding them keeps the
# floor measuring the libraries instead of punishing every new tool.
grep -v -E '^mcpaging/cmd/' "$profile" > "$profile.filtered"
mv "$profile.filtered" "$profile"

# Per-package statement coverage, aggregated straight from the profile
# (each body line is "file.go:span numStmts hitCount"), with the delta
# against the floor so the laggard packages are visible at a glance.
awk -v floor="$floor" '
NR == 1 { next }  # "mode:" header
{
    n = split($1, parts, "/")
    pkg = $1
    sub("/" parts[n], "", pkg)   # strip file.go:span -> package path
    stmts[pkg] += $2
    total_stmts += $2
    if ($3 > 0) { covered[pkg] += $2; total_covered += $2 }
}
END {
    printf "%-40s %8s %8s %8s\n", "package", "stmts", "cover", "vs floor"
    for (pkg in stmts) line[++k] = pkg
    # insertion sort: package count is small and this keeps us POSIX-awk
    for (i = 2; i <= k; i++) {
        v = line[i]
        for (j = i - 1; j >= 1 && line[j] > v; j--) line[j + 1] = line[j]
        line[j + 1] = v
    }
    for (i = 1; i <= k; i++) {
        pkg = line[i]
        pct = 100 * covered[pkg] / stmts[pkg]
        printf "%-40s %8d %7.1f%% %+7.1f%%\n", pkg, stmts[pkg], pct, pct - floor
    }
    printf "%-40s %8d %7.1f%%\n", "total", total_stmts, 100 * total_covered / total_stmts
}' "$profile"

total="$(go tool cover -func="$profile" | awk '/^total:/ {sub(/%/, "", $3); print $3}')"
echo "coverage: total=${total}% floor=${floor}%"
awk -v t="$total" -v f="$floor" 'BEGIN { exit !(t+0 >= f+0) }' || {
    echo "coverage gate FAILED: ${total}% < ${floor}%" >&2
    exit 1
}
echo "coverage gate OK"
