#!/bin/sh
# Coverage floor gate for CI: run the short test suite with coverage and
# fail if total statement coverage drops below the floor (percent).
#
# Usage: scripts/coverage_gate.sh <floor> [profile]
#   floor    minimum total coverage, e.g. 83.4 (the seed baseline)
#   profile  output profile path (default cover.out)
set -eu

floor="${1:?usage: coverage_gate.sh <floor> [profile]}"
profile="${2:-cover.out}"
cd "$(dirname "$0")/.."

go test -short -coverprofile="$profile" ./... > /dev/null
# Command mains (cmd/...) are thin flag-parsing shims exercised end to
# end by scripts/smoke.sh, not by unit tests; excluding them keeps the
# floor measuring the libraries instead of punishing every new tool.
grep -v -E '^mcpaging/cmd/' "$profile" > "$profile.filtered"
mv "$profile.filtered" "$profile"
total="$(go tool cover -func="$profile" | awk '/^total:/ {sub(/%/, "", $3); print $3}')"
echo "coverage: total=${total}% floor=${floor}%"
awk -v t="$total" -v f="$floor" 'BEGIN { exit !(t+0 >= f+0) }' || {
    echo "coverage gate FAILED: ${total}% < ${floor}%" >&2
    exit 1
}
echo "coverage gate OK"
