#!/bin/sh
# bench_parallel.sh [-strict] [workers] — measure the sequential engine
# against the speculative parallel engine on the sim serve benchmarks.
#
# Runs BenchmarkSimServe once (every shape × engine sub-benchmark), then
# splits the seq and par<workers> rows into two files with the engine
# suffix stripped, so both sides carry identical benchmark names —
# which is what benchstat joins on. The comparison itself goes through
# bench_compare.sh; pass -strict to require benchstat (CI mode).
#
# Environment: BENCH_COUNT (default 5) repetitions for statistics,
# BENCH_TIME (default 1s) per-measurement budget.
set -eu

strict=""
if [ "${1:-}" = "-strict" ]; then
    strict="-strict"
    shift
fi
workers=${1:-4}
count=${BENCH_COUNT:-5}
benchtime=${BENCH_TIME:-1s}
raw=bench_parallel_raw.txt
seqf=bench_parallel_seq.txt
parf=bench_parallel_par.txt

go test -run XXX -bench BenchmarkSimServe -benchmem \
    -count "$count" -benchtime "$benchtime" ./internal/sim/ | tee "$raw"

# `BenchmarkSimServe/hit/seq-8` and `BenchmarkSimServe/hit/par4-8` both
# become `BenchmarkSimServe/hit-8`: same name, different engine. (The
# -N cpu suffix is absent when GOMAXPROCS=1, so match both forms.)
pick_engine() {
    awk -v tag="$1" '
        $1 ~ ("/" tag "(-[0-9]+)?$") { sub("/" tag, "", $1); print }
    ' "$raw"
}
pick_engine seq > "$seqf"
pick_engine "par$workers" > "$parf"
if [ ! -s "$parf" ]; then
    echo "bench_parallel: no par$workers results in $raw (valid workers: 2 4 8)" >&2
    exit 1
fi

echo
echo "== sequential engine (old) vs parallel engine, $workers workers (new) =="
exec ./scripts/bench_compare.sh $strict "$seqf" "$parf"
