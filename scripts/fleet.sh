#!/bin/sh
# Run a local mcfleet: N mcservd workers on random ports plus the
# coordinator in the foreground. Ctrl-C stops everything.
#
# Usage: fleet.sh [coordinator-addr] [workers]
set -eu

addr="${1:-:9090}"
n="${2:-2}"

dir="$(mktemp -d)"
pids=""
cleanup() {
    for p in $pids; do kill "$p" 2> /dev/null || true; done
    rm -rf "$dir"
}
trap cleanup EXIT INT TERM
cd "$(dirname "$0")/.."

go build -o "$dir/mcservd" ./cmd/mcservd
go build -o "$dir/mcfleet" ./cmd/mcfleet

workers=""
i=1
while [ "$i" -le "$n" ]; do
    "$dir/mcservd" -addr 127.0.0.1:0 -addr-file "$dir/w$i.addr" -worker-id "w$i" &
    pids="$pids $!"
    j=0
    while [ ! -s "$dir/w$i.addr" ]; do
        j=$((j + 1))
        [ "$j" -gt 100 ] && { echo "worker w$i did not start" >&2; exit 1; }
        sleep 0.1
    done
    workers="$workers${workers:+,}http://$(cat "$dir/w$i.addr")"
    i=$((i + 1))
done

echo "fleet: $n workers: $workers" >&2
"$dir/mcfleet" -addr "$addr" -worker "$workers"
