#!/bin/sh
# End-to-end smoke test of every CLI tool. Exercises the full pipeline:
# generate → profile → simulate → sweep → offline-solve → synthesise →
# experiments. Exits non-zero on the first failure.
set -eu

dir="$(mktemp -d)"
servd_pid=""
fleet_pids=""
cleanup() {
    [ -n "$servd_pid" ] && kill "$servd_pid" 2> /dev/null || true
    for p in $fleet_pids; do kill -9 "$p" 2> /dev/null || true; done
    rm -rf "$dir"
}
trap cleanup EXIT
cd "$(dirname "$0")/.."

echo "== mcvet (analyzer self-check, JSON output) =="
go run ./cmd/mcvet -json "$dir/mcvet.json" ./...
grep -q '^\[\]$' "$dir/mcvet.json"   # zero findings serialize as an empty array

echo "== mcgen (text + binary) =="
go run ./cmd/mcgen -kind phased -cores 4 -length 2000 -pages 32 -seed 7 -o "$dir/t.txt"
go run ./cmd/mcgen -kind markov -cores 2 -length 1000 -pages 16 -seed 7 -binary -o "$dir/t.bin"
go run ./cmd/mcgen -kind lemma4 -cores 2 -k 4 -length 500 -o "$dir/adv.txt"

echo "== mcstat =="
go run ./cmd/mcstat -trace "$dir/t.txt" -k 16 > /dev/null

echo "== mcsim (portfolio, binary input, events) =="
go run ./cmd/mcsim -trace "$dir/t.txt" -k 16 -tau 4 -all > /dev/null
go run ./cmd/mcsim -trace "$dir/t.bin" -k 8 -tau 2 -strategy 'dP[ucp](LRU)' -events "$dir/ev.csv" > /dev/null
test -s "$dir/ev.csv"
go run ./cmd/mcsim -trace "$dir/t.txt" -k 16 -tau 4 -strategy 'dP[ucp](ARC)' > /dev/null

echo "== mcsim (elastic capacity: eP under a mid-run shrink) =="
go run ./cmd/mcsim -trace "$dir/t.txt" -k 16 -tau 4 -strategy 'eP[fair](LRU)' \
    -capacity 'step(to=50%,at=1000)' -events "$dir/ev_cap.csv" > /dev/null
grep -q ',capacity,k$' "$dir/ev_cap.csv"   # elastic runs export the K(t) columns

echo "== mcsweep =="
go run ./cmd/mcsweep -trace "$dir/t.txt" -k 8,16 -tau 0,4 \
    -strategies 'S(LRU),S(ARC),dP[fair](LRU)' -csv > "$dir/sweep.csv"
test "$(wc -l < "$dir/sweep.csv")" -eq 13   # header + 2*2*3 rows

echo "== mcopt (FTF + PIF) =="
go run ./cmd/mcgen -kind uniform -cores 2 -length 5 -pages 3 -seed 3 -o "$dir/tiny.txt" 2> /dev/null
go run ./cmd/mcopt -trace "$dir/tiny.txt" -k 3 -tau 1 > /dev/null
go run ./cmd/mcopt -trace "$dir/tiny.txt" -k 3 -tau 1 -pif -t 10 -b 3,3 > /dev/null

echo "== mcadv =="
go run ./cmd/mcadv -strategy 'S(LRU)' -p 2 -k 3 -tau 1 -iters 60 -restarts 2 -o "$dir/witness.txt" > /dev/null
go run ./cmd/mcsim -trace "$dir/witness.txt" -k 3 -tau 1 > /dev/null

echo "== mcverify (tiny manifest, report, baseline gate) =="
go run ./cmd/mcverify -list-families | grep -q zipf
go run ./cmd/mcverify -manifest internal/verify/testdata/claims_tiny.json \
    -baseline "" -claims tiny-thm1 -o "$dir/verdicts.jsonl" > /dev/null
grep -q '"status":"HOLDS"' "$dir/verdicts.jsonl"
# The committed manifest gate itself (quick mode) runs in its own CI
# job and in cmd/mcverify's tests; smoke only proves the plumbing.

echo "== mcexp (quick, parallel, markdown) =="
go run ./cmd/mcexp -quick -parallel 4 > /dev/null
go run ./cmd/mcexp -exp E7 -quick -format md > /dev/null

echo "== mcservd (job, cache hit, sweep, metrics, graceful stop) =="
go build -o "$dir/mcservd" ./cmd/mcservd
"$dir/mcservd" -addr 127.0.0.1:0 -addr-file "$dir/mcservd.addr" -workers 2 \
    2> "$dir/mcservd.log" &
servd_pid=$!
i=0
while [ ! -s "$dir/mcservd.addr" ]; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && { echo "mcservd did not start"; cat "$dir/mcservd.log"; exit 1; }
    sleep 0.1
done
base="http://$(cat "$dir/mcservd.addr")"
curl -sf "$base/healthz" > /dev/null
curl -sf "$base/readyz" > /dev/null
curl -sf "$base/strategies" | grep -q 'S(LRU)'
job='{"trace":{"workload":{"cores":2,"length":2000,"pages":32,"kind":"zipf","seed":5}},"strategy":"S(LRU)","k":16,"tau":4}'
curl -sf -X POST -H 'Content-Type: application/json' -d "$job" "$base/v1/jobs" \
    | grep -q '"cached":false'
curl -sf -X POST -H 'Content-Type: application/json' -d "$job" "$base/v1/jobs" \
    | grep -q '"cached":true'
curl -sf "$base/metrics" > "$dir/metrics.txt"
grep -q '^mcservd_cache_hits_total 1$' "$dir/metrics.txt"
grep -q '^mcservd_jobs_completed_total 1$' "$dir/metrics.txt"
grep -q '^mcpaging_requests_total' "$dir/metrics.txt"   # telemetry snapshot
sweep='{"trace":{"workload":{"cores":2,"length":2000,"pages":32,"kind":"zipf","seed":5}},"ks":[8,16],"taus":[0,4],"strategies":["S(LRU)","S(FIFO)"]}'
test "$(curl -sf -X POST -H 'Content-Type: application/json' -d "$sweep" "$base/v1/sweep" | wc -l)" -eq 8
kill -TERM "$servd_pid"
wait "$servd_pid"   # graceful drain must exit 0
servd_pid=""

echo "== mcfleet (routing, byte-identical merge, mid-sweep worker kill) =="
go build -o "$dir/mcfleet" ./cmd/mcfleet
start_worker() {
    # $1: name. Appends the worker's pid to fleet_pids; its base URL is
    # read from "$dir/$1.addr" afterwards. Runs in the parent shell (no
    # command substitution: a subshell's pid bookkeeping would be lost,
    # and the background child would hold the substitution pipe open).
    "$dir/mcservd" -addr 127.0.0.1:0 -addr-file "$dir/$1.addr" -workers 2 \
        -worker-id "$1" > /dev/null 2> "$dir/$1.log" &
    fleet_pids="$fleet_pids $!"
    i=0
    while [ ! -s "$dir/$1.addr" ]; do
        i=$((i + 1))
        [ "$i" -gt 100 ] && { echo "worker $1 did not start"; cat "$dir/$1.log"; exit 1; }
        sleep 0.1
    done
}
start_worker wa; wa_pid="${fleet_pids##* }"; wa="http://$(cat "$dir/wa.addr")"
start_worker wb; wb="http://$(cat "$dir/wb.addr")"
start_worker wc; wc_="http://$(cat "$dir/wc.addr")"
"$dir/mcfleet" -addr 127.0.0.1:0 -addr-file "$dir/fleet.addr" \
    -worker "$wa,$wb,$wc_" 2> "$dir/fleet.log" &
fleet_pids="$fleet_pids $!"
fleet_coord_pid=$!
i=0
while [ ! -s "$dir/fleet.addr" ]; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && { echo "mcfleet did not start"; cat "$dir/fleet.log"; exit 1; }
    sleep 0.1
done
fbase="http://$(cat "$dir/fleet.addr")"
curl -sf "$fbase/healthz" > /dev/null
curl -sf "$fbase/readyz" > /dev/null
curl -sf "$fbase/v1/workers" | grep -q '"healthy"'
curl -sf "$fbase/strategies" | grep -q 'S(LRU)'
# Acceptance check 1: the fleet's merged sweep stream is byte-identical
# to the same sweep on one fresh standalone node (both compute every
# cell, so the caches cannot mask a divergence).
"$dir/mcservd" -addr 127.0.0.1:0 -addr-file "$dir/solo.addr" -workers 2 \
    2> "$dir/solo.log" &
fleet_pids="$fleet_pids $!"
i=0
while [ ! -s "$dir/solo.addr" ]; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && { echo "solo mcservd did not start"; cat "$dir/solo.log"; exit 1; }
    sleep 0.1
done
solo="http://$(cat "$dir/solo.addr")"
curl -sf -X POST -H 'Content-Type: application/json' -d "$sweep" "$fbase/v1/sweep" > "$dir/fleet_sweep.jsonl"
curl -sf -X POST -H 'Content-Type: application/json' -d "$sweep" "$solo/v1/sweep" > "$dir/solo_sweep.jsonl"
cmp "$dir/fleet_sweep.jsonl" "$dir/solo_sweep.jsonl"
# Acceptance check 2: SIGKILL a worker mid-sweep; the coordinator must
# re-route its cells and still deliver every cell exactly once. The
# bigger grid keeps the sweep in flight long enough for the kill to
# land mid-stream (and the check holds either way).
big='{"trace":{"workload":{"cores":4,"length":60000,"pages":256,"kind":"zipf","seed":11}},"ks":[8,16,32,64],"taus":[0,2,4],"strategies":["S(LRU)","S(FIFO)","dP[ucp](LRU)"]}'
curl -sf --no-buffer -X POST -H 'Content-Type: application/json' -d "$big" \
    "$fbase/v1/sweep" > "$dir/kill_sweep.jsonl" &
sweep_curl=$!
sleep 0.5
kill -9 "$wa_pid"
wait "$sweep_curl"
test "$(wc -l < "$dir/kill_sweep.jsonl")" -eq 36   # 4*3*3 cells, none lost
! grep -q '"error"' "$dir/kill_sweep.jsonl"
test "$(grep -o '"key":"[0-9a-f]*"' "$dir/kill_sweep.jsonl" | sort | wc -l)" -eq 36
test "$(grep -o '"key":"[0-9a-f]*"' "$dir/kill_sweep.jsonl" | sort -u | wc -l)" -eq 36
curl -sf "$fbase/metrics" | grep -q '^mcfleet_ready 1$'
kill -TERM "$fleet_coord_pid"
wait "$fleet_coord_pid"   # graceful coordinator drain must exit 0

echo "smoke: all tools OK"
