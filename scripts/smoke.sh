#!/bin/sh
# End-to-end smoke test of every CLI tool. Exercises the full pipeline:
# generate → profile → simulate → sweep → offline-solve → synthesise →
# experiments. Exits non-zero on the first failure.
set -eu

dir="$(mktemp -d)"
trap 'rm -rf "$dir"' EXIT
cd "$(dirname "$0")/.."

echo "== mcgen (text + binary) =="
go run ./cmd/mcgen -kind phased -cores 4 -length 2000 -pages 32 -seed 7 -o "$dir/t.txt"
go run ./cmd/mcgen -kind markov -cores 2 -length 1000 -pages 16 -seed 7 -binary -o "$dir/t.bin"
go run ./cmd/mcgen -kind lemma4 -cores 2 -k 4 -length 500 -o "$dir/adv.txt"

echo "== mcstat =="
go run ./cmd/mcstat -trace "$dir/t.txt" -k 16 > /dev/null

echo "== mcsim (portfolio, binary input, events) =="
go run ./cmd/mcsim -trace "$dir/t.txt" -k 16 -tau 4 -all > /dev/null
go run ./cmd/mcsim -trace "$dir/t.bin" -k 8 -tau 2 -strategy 'dP[ucp](LRU)' -events "$dir/ev.csv" > /dev/null
test -s "$dir/ev.csv"

echo "== mcsweep =="
go run ./cmd/mcsweep -trace "$dir/t.txt" -k 8,16 -tau 0,4 \
    -strategies 'S(LRU),S(ARC),dP[fair](LRU)' -csv > "$dir/sweep.csv"
test "$(wc -l < "$dir/sweep.csv")" -eq 13   # header + 2*2*3 rows

echo "== mcopt (FTF + PIF) =="
go run ./cmd/mcgen -kind uniform -cores 2 -length 5 -pages 3 -seed 3 -o "$dir/tiny.txt" 2> /dev/null
go run ./cmd/mcopt -trace "$dir/tiny.txt" -k 3 -tau 1 > /dev/null
go run ./cmd/mcopt -trace "$dir/tiny.txt" -k 3 -tau 1 -pif -t 10 -b 3,3 > /dev/null

echo "== mcadv =="
go run ./cmd/mcadv -strategy 'S(LRU)' -p 2 -k 3 -tau 1 -iters 60 -restarts 2 -o "$dir/witness.txt" > /dev/null
go run ./cmd/mcsim -trace "$dir/witness.txt" -k 3 -tau 1 > /dev/null

echo "== mcexp (quick, parallel, markdown) =="
go run ./cmd/mcexp -quick -parallel 4 > /dev/null
go run ./cmd/mcexp -exp E7 -quick -format md > /dev/null

echo "smoke: all tools OK"
