package mcpaging

import (
	"mcpaging/internal/adversary"
	"mcpaging/internal/core"
	"mcpaging/internal/npc"
)

// NP-hardness gadgets (Section 5.1 of the paper).
type (
	// PartitionInstance is a 3-PARTITION (Arity 3) or 4-PARTITION
	// (Arity 4) instance.
	PartitionInstance = npc.PartitionInstance
	// Reduction is a PIF instance built from a partition instance by
	// the Theorem 2 / Theorem 3 construction.
	Reduction = npc.Reduction
)

// ReducePartitionToPIF builds the Theorem 2 (arity 3) or Theorem 3
// (arity 4) reduction with fetch delay τ: the resulting PIF instance is
// feasible exactly when the partition instance is solvable.
func ReducePartitionToPIF(pi PartitionInstance, tau int) (Reduction, error) {
	return npc.Reduce(pi, tau)
}

// VerifyReductionSchedule runs the proof's constructive schedule for a
// known partition solution and reports whether every sequence meets its
// fault bound at the checkpoint, along with the observed per-core fault
// counts.
func VerifyReductionSchedule(red Reduction, groups [][]int) (bool, []int64, error) {
	return npc.VerifySchedule(red, groups)
}

// Adversarial constructions (Section 4 lower bounds). Each returns a
// disjoint request set realizing the corresponding statement's bound;
// see package documentation for the parameter conventions.

// AdversaryLemma1 builds the Lemma 1 sequence: per-part LRU loses a
// factor max_j k_j against per-part OPT under the fixed static partition
// sizes.
func AdversaryLemma1(sizes []int, perCore int) (RequestSet, error) {
	return adversary.Lemma1(sizes, perCore)
}

// AdversaryLemma2 builds the Lemma 2 sequence: any online static
// partition loses Ω(n) against the offline-optimal static partition.
func AdversaryLemma2(sizes []int, perCore int) (RequestSet, error) {
	return adversary.Lemma2(sizes, perCore)
}

// AdversaryTheorem1 builds the Theorem 1(1) round-robin sequence on
// which shared LRU beats every static partition by Ω(n). Requires p | K.
func AdversaryTheorem1(p, k, tau, x int) (RequestSet, error) {
	return adversary.Theorem1Round(p, k, tau, x)
}

// AdversaryLemma4 builds the Lemma 4 cyclic sequence on which shared LRU
// loses Ω(p(τ+1)) to the offline sacrifice strategy. Requires p | K.
func AdversaryLemma4(p, k, perCore int) (RequestSet, error) {
	return adversary.Lemma4(p, k, perCore)
}

// SacrificeStrategy returns the Lemma 4 offline strategy that parks one
// core's sequence to protect the others' working sets.
func SacrificeStrategy(victimCore int) Strategy {
	return adversary.NewSacrifice(victimCore)
}

// Interleave flattens a request set into one round-robin reference
// string (the multiapplication-caching view in which all algorithms see
// the same order).
func Interleave(r RequestSet) Sequence { return core.Concat(r) }
