// Package mcpaging is a library for multicore paging: cache eviction for
// p cores sharing one cache of K pages, in the model of Alejandro
// López-Ortiz and Alejandro Salinger, "Paging for Multicore Processors"
// (SPAA 2011 brief announcement; University of Waterloo TR CS-2011-12).
//
// In this model, requests from different cores are served in parallel
// and may not be delayed or reordered by the paging algorithm; a fault
// on core j delays the remainder of core j's sequence by an additive
// fetch time τ. Because faults change the relative alignment of the
// sequences, multicore paging behaves very differently from classical
// sequential paging: the offline optimum is NP-hard to track (Theorem 2),
// Furthest-In-The-Future stops being optimal (τ > K/p), and the choice
// between sharing and partitioning the cache dominates the choice of
// eviction policy.
//
// The package exposes the library's public surface: the model vocabulary
// (pages, sequences, instances), the deterministic simulator, shared /
// static-partition / dynamic-partition strategies over pluggable
// eviction policies, miss-curve-based optimal static partitioning, the
// paper's offline dynamic programs (Algorithms 1 and 2), the
// 3-PARTITION/4-PARTITION reductions, adversarial lower-bound
// constructions, and synthetic workload generators.
//
// # Quick start
//
//	rs, _ := mcpaging.GenerateWorkload(mcpaging.WorkloadSpec{
//		Cores: 4, Length: 10000, Pages: 64, Kind: mcpaging.WorkloadZipf, Seed: 1,
//	})
//	inst := mcpaging.Instance{R: rs, P: mcpaging.Params{K: 32, Tau: 4}}
//	res, _ := mcpaging.Simulate(inst, mcpaging.SharedLRU())
//	fmt.Println("faults:", res.TotalFaults(), "makespan:", res.Makespan)
//
// The examples/ directory contains runnable programs; cmd/ contains the
// trace generator, simulator, offline solver, and experiment harness.
package mcpaging

import (
	"mcpaging/internal/cache"
	"mcpaging/internal/core"
	"mcpaging/internal/mattson"
	"mcpaging/internal/offline"
	"mcpaging/internal/policy"
	"mcpaging/internal/sim"
	"mcpaging/internal/workload"
)

// Model vocabulary (aliases of the internal core types).
type (
	// PageID identifies a page; NoPage is the reserved sentinel.
	PageID = core.PageID
	// Sequence is one core's request sequence in program order.
	Sequence = core.Sequence
	// RequestSet is one Sequence per core.
	RequestSet = core.RequestSet
	// Params holds the model parameters K (cache size) and Tau (fetch
	// delay).
	Params = core.Params
	// Instance couples a RequestSet with Params.
	Instance = core.Instance
)

// NoPage is the "no page" sentinel (see core.NoPage).
const NoPage = core.NoPage

// Simulation surface.
type (
	// Strategy is a cache-management strategy driven by the simulator.
	Strategy = sim.Strategy
	// Result summarises a simulation run.
	Result = sim.Result
	// Event describes one served request (for observers).
	Event = sim.Event
	// Observer receives every service event in order.
	Observer = sim.Observer
)

// Simulate runs strategy s on the instance under the paper's timing
// model and returns per-core fault/hit counts, finish times, and the
// makespan.
func Simulate(inst Instance, s Strategy) (Result, error) {
	return sim.Run(inst, s, nil)
}

// Observe is Simulate with an event observer.
func Observe(inst Instance, s Strategy, obs Observer) (Result, error) {
	return sim.Run(inst, s, obs)
}

// EvictionPolicies lists the built-in eviction policy names accepted by
// Shared, StaticPartition and StagedPartition: LRU, FIFO, CLOCK, LFU,
// MRU, MARK, RAND, FITF.
func EvictionPolicies() []string { return cache.PolicyNames() }

// Shared returns the shared-cache strategy S_A for the named eviction
// policy; seed drives the RAND policy and is ignored otherwise.
func Shared(policyName string, seed int64) (Strategy, error) {
	mk, err := cache.NewFactory(policyName, seed)
	if err != nil {
		return nil, err
	}
	return policy.NewShared(mk), nil
}

// SharedLRU returns S_LRU, the canonical shared baseline.
func SharedLRU() Strategy {
	return policy.NewShared(func() cache.Policy { return cache.NewLRU() })
}

// SharedFITF returns S_FITF, the shared Furthest-In-The-Future strategy
// (offline: it uses the simulator's future-knowledge oracle).
func SharedFITF() Strategy {
	return policy.NewShared(func() cache.Policy { return cache.NewFITF() })
}

// StaticPartition returns the static-partition strategy sP^B_A with part
// sizes B and the named per-part eviction policy.
func StaticPartition(sizes []int, policyName string, seed int64) (Strategy, error) {
	mk, err := cache.NewFactory(policyName, seed)
	if err != nil {
		return nil, err
	}
	return policy.NewStatic(sizes, mk), nil
}

// EvenPartition splits K cells over p cores as evenly as possible.
func EvenPartition(k, p int) []int { return policy.EvenSizes(k, p) }

// DynamicLRUPartition returns the Lemma 3 dynamic partition, provably
// equivalent to shared LRU on disjoint request sets.
func DynamicLRUPartition() Strategy { return policy.NewDynamicLRU() }

// Stage is one constant period of a staged dynamic partition.
type Stage = policy.Stage

// StagedPartition returns a dynamic partition whose part sizes follow
// the given stage schedule, with the named per-part eviction policy.
func StagedPartition(stages []Stage, policyName string, seed int64) (Strategy, error) {
	mk, err := cache.NewFactory(policyName, seed)
	if err != nil {
		return nil, err
	}
	return policy.NewStaged(stages, mk), nil
}

// Partition couples static part sizes with their predicted fault count.
type Partition = mattson.Partition

// OptimalStaticLRU computes the fault-minimizing static partition for
// per-part LRU via Mattson stack distances and dynamic programming
// (exact for disjoint request sets, any τ).
func OptimalStaticLRU(r RequestSet, k int) (Partition, error) {
	return mattson.OptimalLRU(r, k)
}

// OptimalStaticOPT computes the fault-minimizing static partition for
// per-part Belady eviction.
func OptimalStaticOPT(r RequestSet, k int) (Partition, error) {
	return mattson.OptimalOPT(r, k)
}

// LRUMissCurve returns per-size LRU miss counts (index = cache size,
// 0..kmax) for a single sequence.
func LRUMissCurve(s Sequence, kmax int) []int64 { return mattson.LRUCurve(s, kmax) }

// OPTMissCurve returns per-size Belady miss counts for a single
// sequence.
func OPTMissCurve(s Sequence, kmax int) []int64 { return mattson.OPTCurve(s, kmax) }

// Offline solvers (the paper's Algorithms 1 and 2).
type (
	// OfflineOptions tunes the offline dynamic programs.
	OfflineOptions = offline.Options
	// FTFSolution is the result of the FINAL-TOTAL-FAULTS DP.
	FTFSolution = offline.FTFSolution
	// PIFInstance is a PARTIAL-INDIVIDUAL-FAULTS decision instance.
	PIFInstance = offline.PIFInstance
	// PIFStats reports the PIF DP's work.
	PIFStats = offline.PIFStats
)

// MinTotalFaults computes the offline minimum total number of faults
// (Algorithm 1, Theorem 6). Exponential in p and K; small instances
// only.
func MinTotalFaults(inst Instance, opts OfflineOptions) (FTFSolution, error) {
	return offline.SolveFTF(inst, opts)
}

// DecidePIF decides whether the instance can be served within the given
// per-sequence fault bounds at the checkpoint time (Algorithm 2,
// Theorem 7).
func DecidePIF(pi PIFInstance, opts OfflineOptions) (bool, PIFStats, error) {
	return offline.DecidePIF(pi, opts)
}

// Workload generation.
type (
	// WorkloadSpec describes a synthetic workload.
	WorkloadSpec = workload.Spec
	// WorkloadKind selects a generator family.
	WorkloadKind = workload.Kind
)

// Workload generator families.
const (
	WorkloadUniform = workload.Uniform
	WorkloadZipf    = workload.Zipf
	WorkloadLoop    = workload.Loop
	WorkloadPhased  = workload.Phased
	WorkloadMarkov  = workload.Markov
)

// GenerateWorkload builds a synthetic request set from a spec;
// deterministic given the spec's seed.
func GenerateWorkload(s WorkloadSpec) (RequestSet, error) { return workload.Generate(s) }

// ComposeWorkload builds a heterogeneous request set, one spec per core,
// each core in its own private page namespace.
func ComposeWorkload(specs []WorkloadSpec) (RequestSet, error) { return workload.Compose(specs) }
