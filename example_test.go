package mcpaging_test

import (
	"fmt"

	"mcpaging"
)

// The examples below are compiled and run by `go test`; their Output
// comments are assertions.

func ExampleSimulate() {
	// Two cores, disjoint working sets, K=3, τ=1.
	inst := mcpaging.Instance{
		R: mcpaging.RequestSet{
			{1, 2, 1, 2}, // core 0 alternates two pages
			{9, 9, 9},    // core 1 re-reads one page
		},
		P: mcpaging.Params{K: 3, Tau: 1},
	}
	res, err := mcpaging.Simulate(inst, mcpaging.SharedLRU())
	if err != nil {
		panic(err)
	}
	fmt.Println("faults:", res.TotalFaults())
	fmt.Println("hits:", res.TotalHits())
	fmt.Println("makespan:", res.Makespan)
	// Output:
	// faults: 3
	// hits: 4
	// makespan: 6
}

func ExampleOptimalStaticLRU() {
	// Core 0 loops over 3 pages, core 1 over 1 page: the optimal split
	// of 4 cells is 3+1.
	rs := mcpaging.RequestSet{
		{0, 1, 2, 0, 1, 2, 0, 1, 2},
		{100, 100, 100, 100},
	}
	part, err := mcpaging.OptimalStaticLRU(rs, 4)
	if err != nil {
		panic(err)
	}
	fmt.Println("sizes:", part.Sizes)
	fmt.Println("predicted faults:", part.Faults)
	// Output:
	// sizes: [3 1]
	// predicted faults: 4
}

func ExampleMinTotalFaults() {
	// The offline optimum (Algorithm 1) on a miniature Lemma 4 instance:
	// two cores each cycling 3 pages through a 4-cell cache.
	rs, err := mcpaging.AdversaryLemma4(2, 4, 9)
	if err != nil {
		panic(err)
	}
	inst := mcpaging.Instance{R: rs, P: mcpaging.Params{K: 4, Tau: 1}}
	sol, err := mcpaging.MinTotalFaults(inst, mcpaging.OfflineOptions{})
	if err != nil {
		panic(err)
	}
	online, err := mcpaging.Simulate(inst, mcpaging.SharedLRU())
	if err != nil {
		panic(err)
	}
	fmt.Println("offline optimum:", sol.Faults)
	fmt.Println("online shared LRU:", online.TotalFaults())
	// Output:
	// offline optimum: 10
	// online shared LRU: 18
}

func ExampleDecidePIF() {
	// Can both cores stay within 3 faults by time 12?
	inst := mcpaging.Instance{
		R: mcpaging.RequestSet{
			{0, 1, 0, 1, 0, 1},
			{100, 101, 102, 100},
		},
		P: mcpaging.Params{K: 4, Tau: 1},
	}
	yes, _, err := mcpaging.DecidePIF(mcpaging.PIFInstance{
		Inst: inst, T: 12, Bounds: []int64{3, 3},
	}, mcpaging.OfflineOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println("feasible:", yes)
	// Output:
	// feasible: true
}

func ExampleGenerateWorkload() {
	rs, err := mcpaging.GenerateWorkload(mcpaging.WorkloadSpec{
		Cores: 2, Length: 4, Pages: 8,
		Kind: mcpaging.WorkloadLoop, Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("cores:", rs.NumCores())
	fmt.Println("total requests:", rs.TotalLen())
	fmt.Println("disjoint:", rs.Disjoint())
	// Output:
	// cores: 2
	// total requests: 8
	// disjoint: true
}

func ExampleHassidimGreedyLRU() {
	// The never-delay schedule in Hassidim's model coincides exactly
	// with the paper model's shared LRU.
	inst := mcpaging.Instance{
		R: mcpaging.RequestSet{{1, 2, 1}, {9, 9}},
		P: mcpaging.Params{K: 3, Tau: 1},
	}
	g, err := mcpaging.HassidimGreedyLRU(inst)
	if err != nil {
		panic(err)
	}
	s, err := mcpaging.Simulate(inst, mcpaging.SharedLRU())
	if err != nil {
		panic(err)
	}
	fmt.Println("greedy faults:", g.TotalFaults(), "makespan:", g.Makespan)
	fmt.Println("same as simulator:", g.TotalFaults() == s.TotalFaults() && g.Makespan == s.Makespan)
	// Output:
	// greedy faults: 3 makespan: 5
	// same as simulator: true
}

func ExampleMultiAppLRU() {
	// At τ=0 the paper's model is multiapplication caching over the
	// round-robin interleaving.
	rs := mcpaging.RequestSet{{1, 2, 1}, {8, 9, 8}}
	reqs := mcpaging.MultiAppInterleave(rs)
	ma, err := mcpaging.MultiAppLRU(reqs, 2, 3)
	if err != nil {
		panic(err)
	}
	s, err := mcpaging.Simulate(mcpaging.Instance{R: rs, P: mcpaging.Params{K: 3, Tau: 0}},
		mcpaging.SharedLRU())
	if err != nil {
		panic(err)
	}
	fmt.Println("interleaving faults:", ma.TotalFaults())
	fmt.Println("simulator faults:", s.TotalFaults())
	// Output:
	// interleaving faults: 6
	// simulator faults: 6
}

func ExampleFaultBudgetFrontier() {
	inst := mcpaging.Instance{
		R: mcpaging.RequestSet{
			{0, 1, 2, 0, 1, 2, 0, 1},
			{100, 101, 102, 100, 101, 102, 100, 101},
		},
		P: mcpaging.Params{K: 4, Tau: 1},
	}
	frontier, err := mcpaging.FaultBudgetFrontier(inst, 16, mcpaging.OfflineOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println(frontier)
	// Output:
	// [[3 7] [4 6] [5 5] [6 4] [7 3]]
}
