package mcpaging_test

import (
	"testing"

	"mcpaging"
)

func TestPublicExactOptimumAndGap(t *testing.T) {
	// The documented instance where the paper's Algorithm 1 overshoots
	// the exact logical-order optimum.
	inst := mcpaging.Instance{
		R: mcpaging.RequestSet{{2, 2}, {100, 101, 101, 100}},
		P: mcpaging.Params{K: 2, Tau: 0},
	}
	pinned, err := mcpaging.MinTotalFaults(inst, mcpaging.OfflineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := mcpaging.MinTotalFaultsExact(inst, mcpaging.OfflineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Faults != 3 || pinned.Faults != 4 {
		t.Fatalf("exact=%d pinned=%d, want 3 and 4", exact.Faults, pinned.Faults)
	}
}

func TestPublicHassidim(t *testing.T) {
	inst := mcpaging.Instance{
		R: mcpaging.RequestSet{{2, 1, 2, 0}, {102, 102}},
		P: mcpaging.Params{K: 2, Tau: 2},
	}
	g, err := mcpaging.HassidimGreedyLRU(inst)
	if err != nil {
		t.Fatal(err)
	}
	simRes, err := mcpaging.Simulate(inst, mcpaging.SharedLRU())
	if err != nil {
		t.Fatal(err)
	}
	if g.Makespan != simRes.Makespan || g.TotalFaults() != simRes.TotalFaults() {
		t.Fatal("greedy embedding diverged from the simulator")
	}
	free, _, err := mcpaging.HassidimMinMakespan(inst, mcpaging.HassidimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	strict, _, err := mcpaging.HassidimMinMakespan(inst, mcpaging.HassidimOptions{NoDelay: true})
	if err != nil {
		t.Fatal(err)
	}
	if !(free < strict && strict <= g.Makespan) {
		t.Fatalf("ordering violated: free=%d strict=%d greedy=%d", free, strict, g.Makespan)
	}
}

func TestPublicMultiApp(t *testing.T) {
	rs := mcpaging.RequestSet{{1, 2, 1}, {10, 11, 10}}
	reqs := mcpaging.MultiAppInterleave(rs)
	if len(reqs) != 6 {
		t.Fatalf("interleaving length %d", len(reqs))
	}
	lruRes, err := mcpaging.MultiAppLRU(reqs, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	optRes, err := mcpaging.MultiAppOPT(reqs, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if optRes.TotalFaults() > lruRes.TotalFaults() {
		t.Fatal("OPT above LRU")
	}
	// τ=0 LRU equivalence through the public API.
	simRes, err := mcpaging.Simulate(mcpaging.Instance{R: rs, P: mcpaging.Params{K: 3, Tau: 0}},
		mcpaging.SharedLRU())
	if err != nil {
		t.Fatal(err)
	}
	if simRes.TotalFaults() != lruRes.TotalFaults() {
		t.Fatal("τ=0 equivalence failed via public API")
	}
}

func TestPublicFairness(t *testing.T) {
	inst := mcpaging.Instance{
		R: mcpaging.RequestSet{
			{0, 1, 0, 1, 0, 1},
			{100, 101, 102, 100, 101, 102},
		},
		P: mcpaging.Params{K: 4, Tau: 1},
	}
	b, err := mcpaging.MinUniformFaultBound(inst, 14, mcpaging.OfflineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if b < 2 || b > 6 {
		t.Fatalf("implausible uniform bound %d", b)
	}
	fs := mcpaging.FairSharePartition(8)
	res, err := mcpaging.Simulate(inst, fs)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalFaults()+res.TotalHits() != int64(inst.R.TotalLen()) {
		t.Fatal("accounting broken")
	}
}

func TestPublicAdversarySynthesis(t *testing.T) {
	found, err := mcpaging.SynthesizeAdversary(mcpaging.AdversarySearchConfig{
		Build: mcpaging.SharedLRU,
		P:     2, K: 3, Tau: 1,
		Seed: 2, Iters: 50, Restarts: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if found.Ratio <= 1 {
		t.Fatalf("ratio %.2f should exceed 1", found.Ratio)
	}
}

func TestPublicFaultBudgetFrontier(t *testing.T) {
	inst := mcpaging.Instance{
		R: mcpaging.RequestSet{
			{0, 1, 0, 1},
			{100, 101, 100, 101},
		},
		P: mcpaging.Params{K: 3, Tau: 1},
	}
	frontier, err := mcpaging.FaultBudgetFrontier(inst, 10, mcpaging.OfflineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(frontier) == 0 {
		t.Fatal("empty frontier")
	}
}
