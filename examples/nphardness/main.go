// Nphardness: walk through the Theorem 2 reduction — take a 3-PARTITION
// instance, build the corresponding PARTIAL-INDIVIDUAL-FAULTS gadget,
// solve the partition, execute the proof's constructive eviction
// schedule in the simulator, and confirm every sequence meets its fault
// bound with equality.
package main

import (
	"fmt"
	"log"

	"mcpaging"
)

func main() {
	// Two triples summing to B=13: {4,4,5} twice, shuffled.
	pi := mcpaging.PartitionInstance{
		S: []int{4, 5, 4, 4, 4, 5}, B: 13, Arity: 3,
	}
	if err := pi.Validate(); err != nil {
		log.Fatal(err)
	}
	groups, ok := pi.Solve()
	if !ok {
		log.Fatal("3-PARTITION solver found no solution")
	}
	fmt.Printf("3-PARTITION: S=%v, B=%d\n", pi.S, pi.B)
	fmt.Printf("solution groups (index sets): %v\n\n", groups)

	const tau = 2
	red, err := mcpaging.ReducePartitionToPIF(pi, tau)
	if err != nil {
		log.Fatal(err)
	}
	in := red.PIF.Inst
	fmt.Printf("reduction gadget: p=%d sequences of length %d (αβαβ…),\n", in.R.NumCores(), len(in.R[0]))
	fmt.Printf("  K = 4p/3 = %d, τ = %d, checkpoint T = %d\n", in.P.K, tau, red.PIF.T)
	fmt.Printf("  fault bounds b_i = B - s_i + 4 = %v\n\n", red.PIF.Bounds)

	ok, faults, err := mcpaging.VerifyReductionSchedule(red, groups)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("constructive schedule (groups share one extra cell, passed in order):")
	for i, f := range faults {
		rel := "≤"
		if f == red.PIF.Bounds[i] {
			rel = "="
		}
		fmt.Printf("  sequence %d: %2d faults %s bound %2d\n", i, f, rel, red.PIF.Bounds[i])
	}
	if ok {
		fmt.Println("\nall bounds met: the partition solution yields a feasible PIF schedule.")
	} else {
		fmt.Println("\nBOUNDS VIOLATED — this should never happen for a valid solution.")
	}

	// The unsolvable sibling: {4,4,4,4,4,6} has no triples summing to 13.
	no := mcpaging.PartitionInstance{S: []int{4, 4, 4, 4, 4, 6}, B: 13, Arity: 3}
	if _, ok := no.Solve(); ok {
		log.Fatal("unsolvable instance reported solvable")
	}
	fmt.Printf("\nsibling instance S=%v has no 3-partition — by Theorem 2 its PIF\n", no.S)
	fmt.Println("gadget admits no schedule meeting the bounds (deciding that is NP-complete).")
}
