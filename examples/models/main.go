// Models: walk the three paging models side by side — the paper's
// conservative model, Hassidim's scheduler-empowered model, and
// Barve–Grove–Vitter multiapplication caching — on one instance,
// demonstrating the embeddings the paper's related-work section argues
// informally.
package main

import (
	"fmt"
	"log"

	"mcpaging"
)

func main() {
	// Two cores: a 3-page cycler and a 2-page alternator; K=4, τ=2.
	inst := mcpaging.Instance{
		R: mcpaging.RequestSet{
			{0, 1, 2, 0, 1, 2, 0, 1, 2},
			{100, 101, 100, 101, 100, 101},
		},
		P: mcpaging.Params{K: 4, Tau: 2},
	}

	fmt.Println("— the paper's model (no delaying) —")
	res, err := mcpaging.Simulate(inst, mcpaging.SharedLRU())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("S(LRU):            %d faults, makespan %d\n", res.TotalFaults(), res.Makespan)
	exact, err := mcpaging.MinTotalFaultsExact(inst, mcpaging.OfflineOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact offline OPT: %d faults\n\n", exact.Faults)

	fmt.Println("— Hassidim's model (delaying allowed, makespan objective) —")
	g, err := mcpaging.HassidimGreedyLRU(inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("never-delay LRU:   makespan %d (identical to the simulator: %v)\n",
		g.Makespan, g.Makespan == res.Makespan)
	free, _, err := mcpaging.HassidimMinMakespan(inst, mcpaging.HassidimOptions{})
	if err != nil {
		log.Fatal(err)
	}
	strict, _, err := mcpaging.HassidimMinMakespan(inst, mcpaging.HassidimOptions{NoDelay: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal makespan:  %d with delays, %d without — the power the paper removes\n\n",
		free, strict)

	fmt.Println("— multiapplication caching (fixed interleaving) —")
	reqs := mcpaging.MultiAppInterleave(inst.R)
	ma, err := mcpaging.MultiAppLRU(reqs, 2, inst.P.K)
	if err != nil {
		log.Fatal(err)
	}
	tau0 := inst
	tau0.P.Tau = 0
	res0, err := mcpaging.Simulate(tau0, mcpaging.SharedLRU())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interleaved LRU:   %d faults; the paper model at τ=0: %d (equal: %v)\n",
		ma.TotalFaults(), res0.TotalFaults(), ma.TotalFaults() == res0.TotalFaults())
	fmt.Printf("at τ=%d they diverge: %d vs %d — faults re-align the sequences\n",
		inst.P.Tau, res.TotalFaults(), ma.TotalFaults())
}
