// Partitioning: compute per-core LRU and OPT miss curves, derive the
// fault-optimal static partition, and show when partitioning beats
// sharing (heterogeneous phased workloads) and when it loses (the
// paper's Theorem 1 round-robin adversary).
package main

import (
	"fmt"
	"log"

	"mcpaging"
)

func main() {
	const k, tau = 24, 3

	// Heterogeneous cores: a big looping scan, a skewed core, a phased
	// core, and a tiny working set.
	specs := []mcpaging.WorkloadSpec{
		{Cores: 1, Length: 8000, Pages: 30, Kind: mcpaging.WorkloadLoop, Seed: 1},
		{Cores: 1, Length: 8000, Pages: 40, Kind: mcpaging.WorkloadZipf, Seed: 2},
		{Cores: 1, Length: 8000, Pages: 32, Kind: mcpaging.WorkloadPhased, Seed: 3},
		{Cores: 1, Length: 8000, Pages: 3, Kind: mcpaging.WorkloadUniform, Seed: 4},
	}
	var rs mcpaging.RequestSet
	for _, sp := range specs {
		one, err := mcpaging.GenerateWorkload(sp)
		if err != nil {
			log.Fatal(err)
		}
		// Shift into a private namespace per core.
		seq := one[0]
		base := mcpaging.PageID(len(rs) * 1 << 16)
		for i := range seq {
			seq[i] += base
		}
		rs = append(rs, seq)
	}

	fmt.Println("Per-core LRU miss curves (misses at cache size 1..8):")
	for j, seq := range rs {
		curve := mcpaging.LRUMissCurve(seq, 8)
		fmt.Printf("  core %d (%s): %v\n", j, specs[j].Kind, curve[1:])
	}

	lruPart, err := mcpaging.OptimalStaticLRU(rs, k)
	if err != nil {
		log.Fatal(err)
	}
	optPart, err := mcpaging.OptimalStaticOPT(rs, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noptimal static partition (per-part LRU): %v, predicted faults %d\n", lruPart.Sizes, lruPart.Faults)
	fmt.Printf("optimal static partition (per-part OPT): %v, predicted faults %d\n", optPart.Sizes, optPart.Faults)

	inst := mcpaging.Instance{R: rs, P: mcpaging.Params{K: k, Tau: tau}}
	report := func(s mcpaging.Strategy) {
		res, err := mcpaging.Simulate(inst, s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s faults=%6d makespan=%d\n", s.Name(), res.TotalFaults(), res.Makespan)
	}
	fmt.Println("\nHeterogeneous workload (partitioning shines by isolating the scan):")
	report(mcpaging.SharedLRU())
	if s, err := mcpaging.StaticPartition(lruPart.Sizes, "LRU", 0); err == nil {
		report(s)
	}
	if s, err := mcpaging.StaticPartition(mcpaging.EvenPartition(k, 4), "LRU", 0); err == nil {
		report(s)
	}

	// The paper's counterpoint (Theorem 1(1)): a workload where every
	// static partition loses Ω(n) to shared LRU.
	adv, err := mcpaging.AdversaryTheorem1(4, k, tau, 60)
	if err != nil {
		log.Fatal(err)
	}
	advInst := mcpaging.Instance{R: adv, P: mcpaging.Params{K: k, Tau: tau}}
	advPart, err := mcpaging.OptimalStaticOPT(adv, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nTheorem 1 round-robin adversary (sharing wins by Ω(n)):")
	res, err := mcpaging.Simulate(advInst, mcpaging.SharedLRU())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-22s faults=%6d\n", "S(LRU)", res.TotalFaults())
	fmt.Printf("  %-22s faults=%6d (even the best partition thrashes)\n",
		fmt.Sprintf("sP%v(OPT)", advPart.Sizes), advPart.Faults)
}
