// Fairness: the paper's PARTIAL-INDIVIDUAL-FAULTS problem motivates
// per-core fault budgets. This example pits throughput-oriented
// strategies against the FairShare dynamic partition on a deliberately
// unbalanced workload, and uses Algorithm 2 as the offline yardstick for
// how flat a fault distribution any schedule could achieve.
package main

import (
	"fmt"
	"log"

	"mcpaging"
)

// jain computes Jain's fairness index: 1 = perfectly even, 1/p = one
// core takes everything.
func jain(xs []int64) float64 {
	var sum, sq float64
	for _, x := range xs {
		f := float64(x)
		sum += f
		sq += f * f
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sq)
}

func main() {
	// One core loops over a 12-page scan; three cores have 2-page
	// working sets. An even split starves the scanner; pure sharing
	// lets it monopolise.
	var rs mcpaging.RequestSet
	big := make(mcpaging.Sequence, 3000)
	for i := range big {
		big[i] = mcpaging.PageID(i % 12)
	}
	rs = append(rs, big)
	for j := 1; j < 4; j++ {
		small := make(mcpaging.Sequence, 3000)
		for i := range small {
			small[i] = mcpaging.PageID(1000*j + i%2)
		}
		rs = append(rs, small)
	}
	inst := mcpaging.Instance{R: rs, P: mcpaging.Params{K: 16, Tau: 2}}

	even, err := mcpaging.StaticPartition(mcpaging.EvenPartition(16, 4), "LRU", 0)
	if err != nil {
		log.Fatal(err)
	}
	strategies := []mcpaging.Strategy{
		mcpaging.SharedLRU(),
		even,
		mcpaging.FairSharePartition(64),
	}
	fmt.Printf("%-22s %12s %14s %8s %10s\n", "strategy", "total_faults", "worst_core", "jain", "makespan")
	for _, s := range strategies {
		res, err := mcpaging.Simulate(inst, s)
		if err != nil {
			log.Fatal(err)
		}
		var worst int64
		for _, f := range res.Faults {
			if f > worst {
				worst = f
			}
		}
		fmt.Printf("%-22s %12d %14d %8.3f %10d\n", s.Name(), res.TotalFaults(), worst,
			jain(res.Faults), res.Makespan)
	}
	fmt.Println("\nShared LRU concentrates nearly all faults on the scanning core (Jain ≈ 1/p);")
	fmt.Println("FairShare spreads them — the equal-budgets objective PIF formalises offline.")

	// The offline yardstick on a miniature of the same tension.
	tiny := mcpaging.Instance{
		R: mcpaging.RequestSet{
			{0, 1, 0, 1, 0, 1},
			{100, 101, 102, 100, 101, 102},
		},
		P: mcpaging.Params{K: 4, Tau: 1},
	}
	const t = 14
	bstar, err := mcpaging.MinUniformFaultBound(tiny, t, mcpaging.OfflineOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nminiature instance: Algorithm 2 certifies a uniform budget of b* = %d faults\n", bstar)
	fmt.Printf("per core by time T=%d — no schedule can be flatter than that.\n", t)
}
