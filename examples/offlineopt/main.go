// Offlineopt: run the paper's offline dynamic programs (Algorithms 1
// and 2) on a small instance, compare the optimum against online
// strategies, and demonstrate the model's signature effect — the offline
// algorithm wins by re-aligning the sequences through its eviction
// choices, something no online strategy can plan for.
package main

import (
	"fmt"
	"log"

	"mcpaging"
)

func main() {
	// Two cores cycling through 3 private pages each with K=4: the
	// miniature of Lemma 4. Shared LRU faults on everything; the offline
	// optimum parks one core.
	rs, err := mcpaging.AdversaryLemma4(2, 4, 12)
	if err != nil {
		log.Fatal(err)
	}
	inst := mcpaging.Instance{R: rs, P: mcpaging.Params{K: 4, Tau: 1}}

	sol, err := mcpaging.MinTotalFaults(inst, mcpaging.OfflineOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance: p=%d, n=%d, K=%d, tau=%d\n", rs.NumCores(), rs.TotalLen(), inst.P.K, inst.P.Tau)
	fmt.Printf("Algorithm 1 offline optimum: %d faults (%d DP states)\n\n", sol.Faults, sol.States)

	for _, s := range []mcpaging.Strategy{
		mcpaging.SharedLRU(),
		mcpaging.SharedFITF(),
		mcpaging.SacrificeStrategy(1),
	} {
		res, err := mcpaging.Simulate(inst, s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s faults=%3d  ratio-to-OPT=%.2f\n",
			s.Name(), res.TotalFaults(), float64(res.TotalFaults())/float64(sol.Faults))
	}

	// Algorithm 2: fairness bounds. Can both cores stay under 8 faults
	// by time 30? Under 6?
	fmt.Println("\nAlgorithm 2 (PARTIAL-INDIVIDUAL-FAULTS):")
	for _, b := range []int64{8, 6, 4} {
		yes, st, err := mcpaging.DecidePIF(mcpaging.PIFInstance{
			Inst: inst, T: 30, Bounds: []int64{b, b},
		}, mcpaging.OfflineOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  both cores ≤ %d faults by t=30?  %-5v (states=%d)\n", b, yes, st.States)
	}
	fmt.Println("\nNote: FITF is not optimal here — eviction choices change future")
	fmt.Println("alignment, and only the DP (or the sacrifice schedule) exploits it.")
}
