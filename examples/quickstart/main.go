// Quickstart: generate a multicore workload, serve it with a shared LRU
// cache and with partitioned caches, and compare fault counts, fairness
// and makespan — the minimal end-to-end use of the library.
package main

import (
	"fmt"
	"log"

	"mcpaging"
)

func main() {
	// Four cores with heterogeneous private workloads (different working
	// set sizes), a 32-page shared cache, and a fetch delay of 4 time
	// units per fault.
	var rs mcpaging.RequestSet
	for j, pages := range []int{12, 24, 48, 96} {
		one, err := mcpaging.GenerateWorkload(mcpaging.WorkloadSpec{
			Cores: 1, Length: 20000, Pages: pages,
			Kind: mcpaging.WorkloadZipf, Seed: int64(42 + j),
		})
		if err != nil {
			log.Fatal(err)
		}
		seq := one[0]
		base := mcpaging.PageID(j * 1 << 16) // private namespace per core
		for i := range seq {
			seq[i] += base
		}
		rs = append(rs, seq)
	}
	inst := mcpaging.Instance{R: rs, P: mcpaging.Params{K: 32, Tau: 4}}

	strategies := []mcpaging.Strategy{
		mcpaging.SharedLRU(),
		mcpaging.DynamicLRUPartition(),
	}
	if s, err := mcpaging.StaticPartition(mcpaging.EvenPartition(32, 4), "LRU", 0); err == nil {
		strategies = append(strategies, s)
	}
	// The offline-optimal static partition, computed from per-core miss
	// curves (Mattson stack distances + dynamic programming).
	part, err := mcpaging.OptimalStaticLRU(rs, 32)
	if err != nil {
		log.Fatal(err)
	}
	if s, err := mcpaging.StaticPartition(part.Sizes, "LRU", 0); err == nil {
		strategies = append(strategies, s)
	}

	fmt.Printf("workload: p=%d, n=%d requests, K=%d, tau=%d\n",
		rs.NumCores(), rs.TotalLen(), inst.P.K, inst.P.Tau)
	fmt.Printf("optimal static partition: %v (predicted faults %d)\n\n", part.Sizes, part.Faults)
	fmt.Printf("%-24s %8s %10s %10s\n", "strategy", "faults", "rate", "makespan")
	for _, s := range strategies {
		res, err := mcpaging.Simulate(inst, s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s %8d %9.2f%% %10d\n", s.Name(), res.TotalFaults(),
			100*float64(res.TotalFaults())/float64(rs.TotalLen()), res.Makespan)
	}
	fmt.Println("\nNote: the dynamic partition matches shared LRU exactly (Lemma 3).")
}
