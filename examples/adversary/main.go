// Adversary: synthesise a worst-case input for a strategy of your
// choice, then chart the exact fairness frontier of a contended
// instance — the library's two "research tools" in one walkthrough.
package main

import (
	"fmt"
	"log"

	"mcpaging"
)

func main() {
	// 1. Find an input on which shared LRU pays ~1.7x the optimal number
	// of faults, mechanically (compare the paper's hand-built Lemma 4).
	found, err := mcpaging.SynthesizeAdversary(mcpaging.AdversarySearchConfig{
		Build: mcpaging.SharedLRU,
		P:     2, K: 3, Tau: 2,
		Iters: 300, Restarts: 4, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("synthesised adversary for S(LRU):")
	fmt.Printf("  witness:  %v  (K=3, tau=2)\n", found.R)
	fmt.Printf("  online %d vs optimal %d faults  →  ratio %.3f\n\n",
		found.Online, found.Opt, found.Ratio)

	// 2. The fairness frontier: both cores cycle 3 pages through K=4.
	inst := mcpaging.Instance{
		R: mcpaging.RequestSet{
			{0, 1, 2, 0, 1, 2, 0, 1},
			{100, 101, 102, 100, 101, 102, 100, 101},
		},
		P: mcpaging.Params{K: 4, Tau: 1},
	}
	const T = 16
	frontier, err := mcpaging.FaultBudgetFrontier(inst, T, mcpaging.OfflineOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Pareto-minimal fault budgets at T=%d (core0, core1):\n  ", T)
	for i, pt := range frontier {
		if i > 0 {
			fmt.Print("  ")
		}
		fmt.Printf("(%d,%d)", pt[0], pt[1])
	}
	fmt.Println()
	fmt.Println("\nevery fault shaved off one core costs the other — the PIF")
	fmt.Println("trade-off that Theorem 2 proves NP-complete to optimise.")
}
