package advsearch_test

import (
	"testing"

	"mcpaging/internal/advsearch"
	"mcpaging/internal/cache"
	"mcpaging/internal/core"
	"mcpaging/internal/offline"
	"mcpaging/internal/policy"
	"mcpaging/internal/sim"
)

func lruBuilder() sim.Strategy {
	return policy.NewShared(func() cache.Policy { return cache.NewLRU() })
}

func TestSearchFindsBadLRUInstance(t *testing.T) {
	found, err := advsearch.Search(advsearch.Config{
		Build: lruBuilder,
		P:     2, K: 3, Tau: 2,
		Seed: 1, Iters: 150, Restarts: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if found.Ratio < 1.4 {
		t.Fatalf("search found only ratio %.2f (online %d vs opt %d on %v)",
			found.Ratio, found.Online, found.Opt, found.R)
	}
	// The witness must be reproducible: re-evaluating it gives the same
	// numbers.
	in := core.Instance{R: found.R, P: core.Params{K: 3, Tau: 2}}
	res, err := sim.Run(in, lruBuilder(), nil)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := offline.SolveFTFSeq(in, offline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalFaults() != found.Online || opt.Faults != found.Opt {
		t.Fatalf("witness not reproducible: %d/%d vs recorded %d/%d",
			res.TotalFaults(), opt.Faults, found.Online, found.Opt)
	}
}

func TestSearchDeterministic(t *testing.T) {
	cfg := advsearch.Config{
		Build: lruBuilder,
		P:     2, K: 3, Tau: 1,
		Seed: 7, Iters: 60, Restarts: 2,
	}
	a, err := advsearch.Search(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := advsearch.Search(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Ratio != b.Ratio || a.Online != b.Online || a.Opt != b.Opt {
		t.Fatal("search not deterministic for a fixed seed")
	}
}

func TestSearchRatioGrowsWithTau(t *testing.T) {
	// The found ratio should not shrink when τ grows (Lemma 4's
	// direction), at least between the extremes.
	at := func(tau int) float64 {
		f, err := advsearch.Search(advsearch.Config{
			Build: lruBuilder,
			P:     2, K: 3, Tau: tau,
			Seed: 5, Iters: 120, Restarts: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return f.Ratio
	}
	if r0, r4 := at(0), at(4); r4 <= r0 {
		t.Fatalf("found ratio should grow with τ: τ=0 → %.2f, τ=4 → %.2f", r0, r4)
	}
}

func TestSearchValidation(t *testing.T) {
	if _, err := advsearch.Search(advsearch.Config{}); err == nil {
		t.Fatal("missing Build should fail")
	}
	if _, err := advsearch.Search(advsearch.Config{Build: lruBuilder, P: 3, K: 2}); err == nil {
		t.Fatal("K < p should fail")
	}
}
