// Package advsearch synthesises adversarial instances automatically:
// randomized hill climbing over tiny request sets, maximizing a
// strategy's fault count relative to the exact offline optimum. It is
// the computational counterpart of the paper's hand-built lower-bound
// constructions (Lemmas 1–4): instead of proving a bad input exists, it
// finds one.
//
// Because every candidate is scored with the exact DP (exponential in p
// and K), searches are restricted to the same tiny-instance regime the
// offline solvers live in.
package advsearch

import (
	"fmt"
	"math/rand"

	"mcpaging/internal/core"
	"mcpaging/internal/offline"
	"mcpaging/internal/sim"
	"mcpaging/internal/stats"
)

// Config describes a search.
type Config struct {
	// Build constructs a fresh instance of the strategy under attack.
	Build func() sim.Strategy
	// P, K, Tau fix the model parameters.
	P, K, Tau int
	// MaxLen caps each core's sequence length (default 6).
	MaxLen int
	// PagesPerCore caps each core's private page alphabet (default 3).
	PagesPerCore int
	// Iters is the number of hill-climbing steps per restart (default
	// 300).
	Iters int
	// Restarts is the number of random restarts (default 4).
	Restarts int
	// Seed drives the search.
	Seed int64
}

func (c *Config) defaults() error {
	if c.Build == nil {
		return fmt.Errorf("advsearch: Build is required")
	}
	if c.P < 1 || c.K < c.P {
		return fmt.Errorf("advsearch: need 1 <= p <= K (p=%d, K=%d)", c.P, c.K)
	}
	if c.Tau < 0 {
		return fmt.Errorf("advsearch: negative tau")
	}
	if c.MaxLen <= 0 {
		c.MaxLen = 6
	}
	if c.PagesPerCore <= 0 {
		c.PagesPerCore = 3
	}
	if c.Iters <= 0 {
		c.Iters = 300
	}
	if c.Restarts <= 0 {
		c.Restarts = 4
	}
	return nil
}

// Found is the best instance a search produced.
type Found struct {
	R      core.RequestSet
	Online int64
	Opt    int64
	Ratio  float64
	// Evals counts DP evaluations spent.
	Evals int
}

// Search runs randomized hill climbing and returns the best instance
// found. Deterministic given the config.
func Search(cfg Config) (Found, error) {
	if err := cfg.defaults(); err != nil {
		return Found{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	best := Found{Ratio: -1}

	eval := func(rs core.RequestSet) (Found, bool) {
		in := core.Instance{R: rs, P: core.Params{K: cfg.K, Tau: cfg.Tau}}
		opt, err := offline.SolveFTFSeq(in, offline.Options{MaxStates: 300000})
		if err != nil || opt.Faults == 0 {
			return Found{}, false
		}
		res, err := sim.Run(in, cfg.Build(), nil)
		if err != nil {
			return Found{}, false
		}
		return Found{
			R:      rs,
			Online: res.TotalFaults(),
			Opt:    opt.Faults,
			Ratio:  stats.Ratio(res.TotalFaults(), opt.Faults),
		}, true
	}

	evals := 0
	for restart := 0; restart < cfg.Restarts; restart++ {
		cur := randomInstance(rng, cfg)
		curF, ok := eval(cur)
		evals++
		if !ok {
			continue
		}
		for iter := 0; iter < cfg.Iters; iter++ {
			cand := mutate(rng, cfg, cur)
			candF, ok := eval(cand)
			evals++
			if !ok {
				continue
			}
			// Accept improvements; break ratio ties toward more online
			// faults (sharper witnesses).
			if candF.Ratio > curF.Ratio ||
				(candF.Ratio == curF.Ratio && candF.Online > curF.Online) {
				cur, curF = cand, candF
			}
		}
		if curF.Ratio > best.Ratio {
			best = curF
		}
	}
	if best.Ratio < 0 {
		return Found{}, fmt.Errorf("advsearch: no evaluable instance found")
	}
	best.Evals = evals
	return best, nil
}

// randomInstance draws a fresh disjoint instance.
func randomInstance(rng *rand.Rand, cfg Config) core.RequestSet {
	rs := make(core.RequestSet, cfg.P)
	for j := range rs {
		n := 1 + rng.Intn(cfg.MaxLen)
		s := make(core.Sequence, n)
		for i := range s {
			s[i] = core.PageID(100*j + rng.Intn(cfg.PagesPerCore))
		}
		rs[j] = s
	}
	return rs
}

// mutate applies one random edit: repaint a request, append a request,
// or drop a request.
func mutate(rng *rand.Rand, cfg Config, rs core.RequestSet) core.RequestSet {
	out := rs.Clone()
	j := rng.Intn(len(out))
	switch op := rng.Intn(3); {
	case op == 0 || len(out[j]) == 0: // repaint (or forced append on empty)
		if len(out[j]) == 0 {
			out[j] = append(out[j], core.PageID(100*j+rng.Intn(cfg.PagesPerCore)))
			break
		}
		i := rng.Intn(len(out[j]))
		out[j][i] = core.PageID(100*j + rng.Intn(cfg.PagesPerCore))
	case op == 1 && len(out[j]) < cfg.MaxLen: // append
		i := rng.Intn(len(out[j]) + 1)
		pg := core.PageID(100*j + rng.Intn(cfg.PagesPerCore))
		out[j] = append(out[j], 0)
		copy(out[j][i+1:], out[j][i:])
		out[j][i] = pg
	default: // drop
		if len(out[j]) > 1 {
			i := rng.Intn(len(out[j]))
			out[j] = append(out[j][:i], out[j][i+1:]...)
		}
	}
	return out
}
