package mattson_test

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"mcpaging/internal/cache"
	"mcpaging/internal/core"
	"mcpaging/internal/mattson"
	"mcpaging/internal/policy"
	"mcpaging/internal/sim"
)

func lru() cache.Factory { return func() cache.Policy { return cache.NewLRU() } }

func randSeq(rng *rand.Rand, n, w int) core.Sequence {
	s := make(core.Sequence, n)
	for i := range s {
		s[i] = core.PageID(rng.Intn(w))
	}
	return s
}

// simLRUMisses counts misses of a plain sequential LRU of size k via the
// multicore simulator with p=1.
func simLRUMisses(t *testing.T, seq core.Sequence, k int) int64 {
	t.Helper()
	in := core.Instance{R: core.RequestSet{seq}, P: core.Params{K: k, Tau: 0}}
	res, err := sim.Run(in, policy.NewShared(lru()), nil)
	if err != nil {
		t.Fatal(err)
	}
	return res.Faults[0]
}

func TestLRUCurveMatchesSimulation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		seq := randSeq(rng, 100+rng.Intn(100), 2+rng.Intn(10))
		kmax := 8
		curve := mattson.LRUCurve(seq, kmax)
		for k := 1; k <= kmax; k++ {
			if got := simLRUMisses(t, seq, k); got != curve[k] {
				t.Fatalf("trial %d k=%d: curve %d, simulation %d", trial, k, curve[k], got)
			}
		}
	}
}

func TestLRUCurveBasics(t *testing.T) {
	seq := core.Sequence{1, 2, 3, 1, 2, 3}
	curve := mattson.LRUCurve(seq, 4)
	if curve[0] != 6 {
		t.Errorf("curve[0] = %d, want 6", curve[0])
	}
	// K=3: only 3 cold misses. K=2: LRU thrashes, 6 misses.
	if curve[3] != 3 || curve[4] != 3 {
		t.Errorf("curve[3,4] = %d,%d, want 3,3", curve[3], curve[4])
	}
	if curve[2] != 6 {
		t.Errorf("curve[2] = %d, want 6 (cyclic thrash)", curve[2])
	}
}

func TestLRUCurveMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		seq := randSeq(rng, 150, 12)
		curve := mattson.LRUCurve(seq, 10)
		for k := 1; k < len(curve); k++ {
			if curve[k] > curve[k-1] {
				return false // LRU is a stack algorithm: no Belady anomaly
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLRUCurveEmpty(t *testing.T) {
	curve := mattson.LRUCurve(core.Sequence{}, 3)
	for k, v := range curve {
		if v != 0 {
			t.Fatalf("curve[%d] = %d for empty sequence", k, v)
		}
	}
}

// bruteOPT computes the true minimum misses for a single sequence and
// cache size k by exhaustive search over eviction choices.
func bruteOPT(seq core.Sequence, k int) int64 {
	var rec func(i int, cache []core.PageID) int64
	rec = func(i int, cc []core.PageID) int64 {
		if i == len(seq) {
			return 0
		}
		p := seq[i]
		for _, q := range cc {
			if q == p {
				return rec(i+1, cc)
			}
		}
		if len(cc) < k {
			nc := append(append([]core.PageID{}, cc...), p)
			return 1 + rec(i+1, nc)
		}
		best := int64(1 << 60)
		for vi := range cc {
			nc := append([]core.PageID{}, cc...)
			nc[vi] = p
			if v := 1 + rec(i+1, nc); v < best {
				best = v
			}
		}
		return best
	}
	return rec(0, nil)
}

func TestOPTMissesMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		seq := randSeq(rng, 8+rng.Intn(5), 4)
		k := 2 + rng.Intn(2)
		got := mattson.OPTMisses(seq, k)
		want := bruteOPT(seq, k)
		if got != want {
			t.Fatalf("trial %d seq=%v k=%d: OPTMisses=%d brute=%d", trial, seq, k, got, want)
		}
	}
}

func TestOPTNeverWorseThanLRU(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		seq := randSeq(rng, 200, 10)
		for k := 1; k <= 6; k++ {
			if mattson.OPTMisses(seq, k) > mattson.LRUCurve(seq, k)[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestOPTCurveMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	seq := randSeq(rng, 300, 15)
	curve := mattson.OPTCurve(seq, 12)
	for k := 1; k < len(curve); k++ {
		if curve[k] > curve[k-1] {
			t.Fatalf("OPT curve not monotone at k=%d: %v", k, curve)
		}
	}
	if curve[0] != 300 {
		t.Fatalf("curve[0] = %d, want n", curve[0])
	}
}

// exhaustivePartition enumerates every partition to verify the DP.
func exhaustivePartition(curves [][]int64, k int, active []bool) int64 {
	p := len(curves)
	at := func(j, s int) int64 {
		c := curves[j]
		if s >= len(c) {
			s = len(c) - 1
		}
		return c[s]
	}
	best := int64(1 << 60)
	var rec func(j, left int, sum int64)
	rec = func(j, left int, sum int64) {
		if j == p {
			if sum < best {
				best = sum
			}
			return
		}
		minS := 0
		if active[j] {
			minS = 1
		}
		for s := minS; s <= left; s++ {
			rec(j+1, left-s, sum+at(j, s))
		}
	}
	rec(0, k, 0)
	return best
}

func TestOptimalMatchesExhaustive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + rng.Intn(3)
		k := p + rng.Intn(5)
		curves := make([][]int64, p)
		active := make([]bool, p)
		for j := range curves {
			c := make([]int64, k+1)
			c[0] = int64(50 + rng.Intn(50))
			for s := 1; s <= k; s++ {
				c[s] = c[s-1] - int64(rng.Intn(10))
				if c[s] < 0 {
					c[s] = 0
				}
			}
			curves[j] = c
			active[j] = true
		}
		part, err := mattson.Optimal(curves, k, active)
		if err != nil {
			return false
		}
		// Feasibility.
		total := 0
		for j, s := range part.Sizes {
			if active[j] && s < 1 {
				return false
			}
			total += s
		}
		if total > k {
			return false
		}
		// Optimality and self-consistency.
		var sum int64
		for j, s := range part.Sizes {
			sum += curves[j][s]
		}
		return sum == part.Faults && part.Faults == exhaustivePartition(curves, k, active)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimalInfeasible(t *testing.T) {
	// 3 active cores but only 2 cells: no valid partition.
	curves := [][]int64{{5, 1}, {5, 1}, {5, 1}}
	if _, err := mattson.Optimal(curves, 2, []bool{true, true, true}); err == nil {
		t.Fatal("expected infeasibility error")
	}
}

// TestOptimalLRUPredictionExact: the DP's predicted fault count equals
// the simulated fault count of the corresponding static partition
// strategy on disjoint request sets, for any τ.
func TestOptimalLRUPredictionExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 2 + rng.Intn(2)
		rs := make(core.RequestSet, p)
		for j := range rs {
			rs[j] = core.Sequence{}
			for i := 0; i < 30+rng.Intn(40); i++ {
				rs[j] = append(rs[j], core.PageID(j*100+rng.Intn(6)))
			}
		}
		k := p + rng.Intn(6)
		part, err := mattson.OptimalLRU(rs, k)
		if err != nil {
			return false
		}
		in := core.Instance{R: rs, P: core.Params{K: k, Tau: rng.Intn(3)}}
		res, err := sim.Run(in, policy.NewStatic(part.Sizes, lru()), nil)
		if err != nil {
			return false
		}
		return res.TotalFaults() == part.Faults
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestOptimalOPTBeatsOptimalLRU: per-part Belady can only improve on
// per-part LRU at the optimal partition of either.
func TestOptimalOPTBeatsOptimalLRU(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	rs := core.RequestSet{
		randSeq(rng, 200, 8),
		func() core.Sequence {
			s := randSeq(rng, 200, 8)
			for i := range s {
				s[i] += 100
			}
			return s
		}(),
	}
	lruPart, err := mattson.OptimalLRU(rs, 8)
	if err != nil {
		t.Fatal(err)
	}
	optPart, err := mattson.OptimalOPT(rs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if optPart.Faults > lruPart.Faults {
		t.Fatalf("sP_OPT(OPT) = %d > sP_OPT(LRU) = %d", optPart.Faults, lruPart.Faults)
	}
}

func TestOPTCurveParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	seq := randSeq(rng, 500, 20)
	serial := mattson.OPTCurve(seq, 16)
	for _, workers := range []int{0, 1, 3, 8} {
		par := mattson.OPTCurveParallel(seq, 16, workers)
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("workers=%d: parallel curve differs", workers)
		}
	}
}
