// Package mattson computes per-core miss curves and optimal static cache
// partitions.
//
// For a single core, the number of LRU misses as a function of cache size
// is obtained in one pass with Mattson's stack algorithm (Mattson et al.,
// IBM Systems Journal 1970): the LRU stack distance of each access is the
// depth of the page in the recency stack, and an access misses in a cache
// of size k exactly when its stack distance exceeds k. The OPT (Belady)
// miss curve is obtained by direct simulation per size.
//
// Because a fault only delays the faulting core's own sequence, the
// per-core fault count of a *static partition* strategy is independent of
// τ and of the other cores. Summing per-core curve points therefore
// predicts the exact fault count of sP^B_A for the corresponding per-part
// policy, and the best static partition (the paper's sP^OPT baselines in
// Lemma 2 and Theorem 1) is found by dynamic programming over the curves.
package mattson

import (
	"container/heap"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"mcpaging/internal/core"
)

// LRUCurve returns the LRU miss counts for cache sizes 0..kmax for one
// sequence: curve[k] is the number of misses with a dedicated LRU cache
// of k pages. curve[0] is defined as len(seq).
func LRUCurve(seq core.Sequence, kmax int) []int64 {
	curve := make([]int64, kmax+1)
	if kmax < 0 {
		return nil
	}
	// Recency stack, most recent first. Depth search is O(depth), giving
	// O(n·w) worst case, which is fine at library scales; distances
	// beyond kmax can stop early since all such accesses miss at every
	// size ≤ kmax anyway — but we still need exact distances ≤ kmax.
	stack := make([]core.PageID, 0, kmax+1)
	histo := make([]int64, kmax+2) // histo[d] = accesses at distance d (1-based); [kmax+1] = deeper or cold
	pos := make(map[core.PageID]int)
	for _, p := range seq {
		if i, ok := pos[p]; ok {
			d := i + 1
			if d > kmax {
				histo[kmax+1]++
			} else {
				histo[d]++
			}
			// Move to front.
			copy(stack[1:i+1], stack[:i])
			stack[0] = p
			for j := 0; j <= i; j++ {
				pos[stack[j]] = j
			}
		} else {
			histo[kmax+1]++ // cold miss at every size
			stack = append(stack, core.NoPage)
			copy(stack[1:], stack[:len(stack)-1])
			stack[0] = p
			for j := range stack {
				pos[stack[j]] = j
			}
		}
	}
	// misses(k) = # accesses with distance > k.
	var beyond int64 = histo[kmax+1]
	for k := kmax; k >= 0; k-- {
		curve[k] = beyond
		if k >= 1 {
			beyond += histo[k]
		}
	}
	curve[0] = int64(len(seq))
	return curve
}

// optHeapItem is a lazy max-heap entry for the Belady simulation.
type optHeapItem struct {
	next int64 // next-use index (math.MaxInt64 = never)
	page core.PageID
}

type optHeap []optHeapItem

func (h optHeap) Len() int { return len(h) }
func (h optHeap) Less(i, j int) bool {
	if h[i].next != h[j].next {
		return h[i].next > h[j].next // max-heap on next use
	}
	return h[i].page < h[j].page
}
func (h optHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *optHeap) Push(x interface{}) { *h = append(*h, x.(optHeapItem)) }
func (h *optHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// OPTMisses returns the number of misses of Belady's optimal algorithm on
// one sequence with a dedicated cache of k pages. For a single sequence
// (no cross-core alignment effects) Belady is optimal for any τ.
func OPTMisses(seq core.Sequence, k int) int64 {
	if k <= 0 {
		return int64(len(seq))
	}
	n := len(seq)
	// next[i] = next index of the same page after i, or MaxInt64.
	next := make([]int64, n)
	last := make(map[core.PageID]int)
	for i := n - 1; i >= 0; i-- {
		if j, ok := last[seq[i]]; ok {
			next[i] = int64(j)
		} else {
			next[i] = math.MaxInt64
		}
		last[seq[i]] = i
	}
	inCache := make(map[core.PageID]bool)
	curNext := make(map[core.PageID]int64)
	h := &optHeap{}
	var misses int64
	for i, p := range seq {
		if inCache[p] {
			curNext[p] = next[i]
			heap.Push(h, optHeapItem{next: next[i], page: p})
			continue
		}
		misses++
		if len(inCache) >= k {
			// Pop lazily until a live entry surfaces.
			for {
				it := heap.Pop(h).(optHeapItem)
				if inCache[it.page] && curNext[it.page] == it.next {
					delete(inCache, it.page)
					delete(curNext, it.page)
					break
				}
			}
		}
		inCache[p] = true
		curNext[p] = next[i]
		heap.Push(h, optHeapItem{next: next[i], page: p})
	}
	return misses
}

// OPTCurve returns Belady miss counts for sizes 0..kmax.
func OPTCurve(seq core.Sequence, kmax int) []int64 {
	curve := make([]int64, kmax+1)
	for k := 0; k <= kmax; k++ {
		curve[k] = OPTMisses(seq, k)
	}
	return curve
}

// OPTCurveParallel computes the same curve with the per-size Belady
// simulations fanned out over `workers` goroutines (0 = GOMAXPROCS).
// Each size is independent, so the result is identical to OPTCurve's;
// the parallel version exists because the OPT curve is the most
// expensive step of sP^OPT_OPT baselines on long traces. The
// serial-vs-parallel ablation is BenchmarkOPTCurveParallel.
func OPTCurveParallel(seq core.Sequence, kmax, workers int) []int64 {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	curve := make([]int64, kmax+1)
	var next int64 = 0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(atomic.AddInt64(&next, 1)) - 1
				if k > kmax {
					return
				}
				curve[k] = OPTMisses(seq, k)
			}
		}()
	}
	wg.Wait()
	return curve
}

// Partition is a static split of K cells over the cores, with the total
// fault count the per-core curves predict for it.
type Partition struct {
	Sizes  []int
	Faults int64
}

// Optimal finds the static partition minimizing the summed curve values:
// sizes[j] ∈ [min_j, K], Σ sizes[j] ≤ K, minimizing Σ curves[j][sizes[j]].
// active[j] forces size ≥ 1 for cores with requests (the paper's rule
// that every active core gets at least one cell). Curves shorter than K+1
// are treated as flat beyond their last point.
func Optimal(curves [][]int64, k int, active []bool) (Partition, error) {
	p := len(curves)
	if p == 0 {
		return Partition{}, fmt.Errorf("mattson: no cores")
	}
	if len(active) != p {
		return Partition{}, fmt.Errorf("mattson: active mask has %d entries for %d cores", len(active), p)
	}
	at := func(j, s int) int64 {
		c := curves[j]
		if s >= len(c) {
			s = len(c) - 1
		}
		return c[s]
	}
	const inf = int64(math.MaxInt64) / 4
	// dp[k'] after processing j cores; choice[j][k'] = size given to core j.
	dp := make([]int64, k+1)
	for i := range dp {
		dp[i] = inf
	}
	dp[0] = 0
	choice := make([][]int16, p)
	for j := 0; j < p; j++ {
		ndp := make([]int64, k+1)
		for i := range ndp {
			ndp[i] = inf
		}
		choice[j] = make([]int16, k+1)
		minS := 0
		if active[j] {
			minS = 1
		}
		for used := 0; used <= k; used++ {
			if dp[used] >= inf {
				continue
			}
			for s := minS; used+s <= k; s++ {
				v := dp[used] + at(j, s)
				if v < ndp[used+s] {
					ndp[used+s] = v
					choice[j][used+s] = int16(s)
				}
			}
		}
		dp = ndp
	}
	// Best over any total ≤ K (extra cells never hurt but curves are
	// non-increasing, so the optimum uses them; still, scan all).
	bestK, best := -1, inf
	for used := 0; used <= k; used++ {
		if dp[used] < best {
			best, bestK = dp[used], used
		}
	}
	if bestK < 0 {
		return Partition{}, fmt.Errorf("mattson: no feasible partition of K=%d over %d cores", k, p)
	}
	sizes := make([]int, p)
	for j := p - 1; j >= 0; j-- {
		s := int(choice[j][bestK])
		sizes[j] = s
		bestK -= s
	}
	return Partition{Sizes: sizes, Faults: best}, nil
}

// ActiveMask returns the per-core activity mask of a request set.
func ActiveMask(r core.RequestSet) []bool {
	m := make([]bool, len(r))
	for j, s := range r {
		m[j] = len(s) > 0
	}
	return m
}

// OptimalLRU computes the best static partition for per-part LRU on the
// request set — the paper's sP^OPT_LRU baseline (Lemma 2) — together with
// its predicted fault count (exact for disjoint request sets).
func OptimalLRU(r core.RequestSet, k int) (Partition, error) {
	curves := make([][]int64, len(r))
	for j, s := range r {
		curves[j] = LRUCurve(s, k)
	}
	return Optimal(curves, k, ActiveMask(r))
}

// OptimalOPT computes the best static partition for per-part Belady
// eviction — the paper's sP^OPT_OPT baseline (Theorem 1) — with its
// predicted fault count (exact for disjoint request sets).
func OptimalOPT(r core.RequestSet, k int) (Partition, error) {
	curves := make([][]int64, len(r))
	for j, s := range r {
		curves[j] = OPTCurveParallel(s, k, 0)
	}
	return Optimal(curves, k, ActiveMask(r))
}
