// Package npc implements the NP-completeness machinery of Section 5.1:
// 3-PARTITION and 4-PARTITION instances with exact solvers, the
// Theorem 2 reduction from 3-PARTITION to PARTIAL-INDIVIDUAL-FAULTS, the
// Theorem 3 reduction from 4-PARTITION, and the constructive schedule
// that turns a partition solution into an eviction schedule meeting the
// PIF bounds (the "⇒" direction of the proof, made executable).
package npc

import (
	"fmt"
	"math/rand"
	"sort"
)

// PartitionInstance is an instance of m-PARTITION: split S into groups of
// Arity elements, each summing to B. Arity 3 gives 3-PARTITION
// (B/4 < s < B/2 forces triples), Arity 4 gives 4-PARTITION
// (B/5 < s < B/3 forces quadruples).
type PartitionInstance struct {
	S     []int
	B     int
	Arity int
}

// Validate checks the structural constraints of the problem definition.
func (pi PartitionInstance) Validate() error {
	a := pi.Arity
	if a != 3 && a != 4 {
		return fmt.Errorf("npc: arity %d, want 3 or 4", a)
	}
	n := len(pi.S)
	if n == 0 || n%a != 0 {
		return fmt.Errorf("npc: |S|=%d not a positive multiple of %d", n, a)
	}
	sum := 0
	for i, s := range pi.S {
		// Element range: B/(a+1) < s < B/(a-1), strict.
		if s*(a+1) <= pi.B || s*(a-1) >= pi.B {
			return fmt.Errorf("npc: element s[%d]=%d outside (B/%d, B/%d) for B=%d",
				i, s, a+1, a-1, pi.B)
		}
		sum += s
	}
	if sum != (n/a)*pi.B {
		return fmt.Errorf("npc: sum(S)=%d, want (n/%d)·B = %d", sum, a, (n/a)*pi.B)
	}
	return nil
}

// Solve finds a partition of S into groups of Arity elements each summing
// to B, returning the groups as index sets, or ok=false if none exists.
// Exhaustive with pruning; intended for the small instances used in the
// reduction experiments.
func (pi PartitionInstance) Solve() (groups [][]int, ok bool) {
	if pi.Validate() != nil {
		return nil, false
	}
	n := len(pi.S)
	used := make([]bool, n)
	var cur [][]int
	var rec func() bool
	rec = func() bool {
		// First unused element anchors the next group (canonical order
		// kills permutation symmetry).
		first := -1
		for i := 0; i < n; i++ {
			if !used[i] {
				first = i
				break
			}
		}
		if first == -1 {
			return true
		}
		used[first] = true
		group := []int{first}
		var extend func(start, count, sum int) bool
		extend = func(start, count, sum int) bool {
			if count == pi.Arity {
				if sum != pi.B {
					return false
				}
				cur = append(cur, append([]int(nil), group...))
				if rec() {
					return true
				}
				cur = cur[:len(cur)-1]
				return false
			}
			for i := start; i < n; i++ {
				if used[i] || sum+pi.S[i] > pi.B {
					continue
				}
				used[i] = true
				group = append(group, i)
				if extend(i+1, count+1, sum+pi.S[i]) {
					return true
				}
				group = group[:len(group)-1]
				used[i] = false
			}
			return false
		}
		if extend(first+1, 1, pi.S[first]) {
			return true
		}
		used[first] = false
		return false
	}
	if rec() {
		return cur, true
	}
	return nil, false
}

// MaxGroups returns the maximum number of disjoint groups of Arity
// elements each summing to B — the MAX-m-PARTITION objective of
// Theorem 3's gap reduction.
func (pi PartitionInstance) MaxGroups() int {
	n := len(pi.S)
	// Enumerate all valid groups, then search for the largest disjoint
	// family. Fine at experiment scale (n ≤ ~16).
	var groups []int // bitmasks
	var build func(start, count, sum, mask int)
	build = func(start, count, sum, mask int) {
		if count == pi.Arity {
			if sum == pi.B {
				groups = append(groups, mask)
			}
			return
		}
		for i := start; i < n; i++ {
			if sum+pi.S[i] > pi.B {
				continue
			}
			build(i+1, count+1, sum+pi.S[i], mask|1<<i)
		}
	}
	build(0, 0, 0, 0)
	best := 0
	var pick func(idx, used, count int)
	pick = func(idx, used, count int) {
		if count > best {
			best = count
		}
		if idx == len(groups) || count+(len(groups)-idx) <= best {
			return
		}
		for i := idx; i < len(groups); i++ {
			if groups[i]&used == 0 {
				pick(i+1, used|groups[i], count+1)
			}
		}
	}
	pick(0, 0, 0)
	return best
}

// GenerateYes builds a solvable m-PARTITION instance with the given
// number of groups: each group is drawn independently with elements in
// the legal range summing to B, then the whole multiset is shuffled.
func GenerateYes(rng *rand.Rand, arity, groups, b int) (PartitionInstance, error) {
	lo, hi := b/(arity+1)+1, (b-1)/(arity-1) // inclusive legal range
	if hi < lo {
		return PartitionInstance{}, fmt.Errorf("npc: B=%d leaves empty element range for arity %d", b, arity)
	}
	var s []int
	for g := 0; g < groups; g++ {
		grp, ok := randomGroup(rng, arity, b, lo, hi)
		if !ok {
			return PartitionInstance{}, fmt.Errorf("npc: cannot draw a group summing to %d in [%d,%d]", b, lo, hi)
		}
		s = append(s, grp...)
	}
	rng.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	pi := PartitionInstance{S: s, B: b, Arity: arity}
	if err := pi.Validate(); err != nil {
		return PartitionInstance{}, err
	}
	return pi, nil
}

// randomGroup draws arity values in [lo,hi] summing to b by rejection
// with a final forced element.
func randomGroup(rng *rand.Rand, arity, b, lo, hi int) ([]int, bool) {
	for attempt := 0; attempt < 1000; attempt++ {
		grp := make([]int, arity)
		sum := 0
		for i := 0; i < arity-1; i++ {
			grp[i] = lo + rng.Intn(hi-lo+1)
			sum += grp[i]
		}
		last := b - sum
		if last >= lo && last <= hi {
			grp[arity-1] = last
			return grp, true
		}
	}
	return nil, false
}

// SortedCopy returns the instance's elements in ascending order, useful
// for deterministic displays.
func (pi PartitionInstance) SortedCopy() []int {
	out := append([]int(nil), pi.S...)
	sort.Ints(out)
	return out
}
