package npc

import (
	"fmt"

	"mcpaging/internal/cache"
	"mcpaging/internal/core"
	"mcpaging/internal/offline"
	"mcpaging/internal/sim"
)

// Reduction is a PIF instance built from an m-PARTITION instance by the
// Theorem 2 (arity 3) or Theorem 3 (arity 4) construction:
//
//   - one sequence per element, alternating two private pages α_i, β_i;
//   - |R_i| = T = B(τ+1) + (a+1)τ + (a+2);
//   - K = (a+1)·p/a   (groups of a sequences share a+1 cells);
//   - b_i = B − s_i + (a+1).
//
// The instance is a yes-instance of PIF exactly when S can be split into
// groups of a elements summing to B.
type Reduction struct {
	Part PartitionInstance
	PIF  offline.PIFInstance
}

// AlphaPage and BetaPage are the two pages of sequence i.
func AlphaPage(i int) core.PageID { return core.PageID(2 * i) }

// BetaPage is the second page of sequence i.
func BetaPage(i int) core.PageID { return core.PageID(2*i + 1) }

// Reduce builds the PIF instance for the partition instance with fetch
// delay τ ≥ 0.
func Reduce(pi PartitionInstance, tau int) (Reduction, error) {
	if err := pi.Validate(); err != nil {
		return Reduction{}, err
	}
	return ReduceUnchecked(pi, tau)
}

// ReduceUnchecked builds the reduction gadget without validating the
// partition instance. It exists so experiments can build *no*-instances
// whose element sum deliberately mismatches (n/a)·B — by the "⇐"
// direction of Theorem 2 their PIF answer must be no.
func ReduceUnchecked(pi PartitionInstance, tau int) (Reduction, error) {
	if pi.Arity != 3 && pi.Arity != 4 {
		return Reduction{}, fmt.Errorf("npc: arity %d, want 3 or 4", pi.Arity)
	}
	if len(pi.S) == 0 || len(pi.S)%pi.Arity != 0 {
		return Reduction{}, fmt.Errorf("npc: |S|=%d not a positive multiple of %d", len(pi.S), pi.Arity)
	}
	if tau < 0 {
		return Reduction{}, fmt.Errorf("npc: negative tau %d", tau)
	}
	a := pi.Arity
	p := len(pi.S)
	k := (a + 1) * p / a
	length := pi.B*(tau+1) + (a+1)*tau + (a + 2)
	rs := make(core.RequestSet, p)
	for i := range rs {
		s := make(core.Sequence, length)
		for j := range s {
			if j%2 == 0 {
				s[j] = AlphaPage(i)
			} else {
				s[j] = BetaPage(i)
			}
		}
		rs[i] = s
	}
	bounds := make([]int64, p)
	for i, si := range pi.S {
		bounds[i] = int64(pi.B - si + a + 1)
	}
	return Reduction{
		Part: pi,
		PIF: offline.PIFInstance{
			Inst:   core.Instance{R: rs, P: core.Params{K: k, Tau: tau}},
			T:      int64(length),
			Bounds: bounds,
		},
	}, nil
}

// HitQuota returns h_i = s_i(τ+1)+1, the number of hits sequence i must
// accumulate while it owns its group's extra cell.
func (r Reduction) HitQuota(i int) int64 {
	return int64(r.Part.S[i]*(r.PIF.Inst.P.Tau+1) + 1)
}

// Constructive executes the proof's schedule for a known partition
// solution: the sequences of each group share one extra cell, passed
// along the group in order once the current owner has accumulated its
// hit quota; every other fault evicts the faulting sequence's own other
// page.
type Constructive struct {
	red    Reduction
	groups [][]int

	groupOf map[int]int
	order   map[int]int // position of a core within its group
	cur     []int       // per group: index of the privileged member
	extra   []bool      // per group: extra cell claimed
	served  []int
	hits    []int64
}

// NewConstructive returns the scheduled strategy for a reduction and a
// partition solution (groups of sequence indices, each group's elements
// summing to B). The strategy is single-use per Run (Init resets it).
func NewConstructive(red Reduction, groups [][]int) *Constructive {
	return &Constructive{red: red, groups: groups}
}

// Name implements sim.Strategy.
func (c *Constructive) Name() string { return "theorem2-schedule" }

// Init implements sim.Strategy.
func (c *Constructive) Init(inst core.Instance) error {
	p := inst.R.NumCores()
	seen := make([]bool, p)
	c.groupOf = make(map[int]int)
	c.order = make(map[int]int)
	for g, grp := range c.groups {
		if len(grp) != c.red.Part.Arity {
			return fmt.Errorf("npc: group %d has %d members, want %d", g, len(grp), c.red.Part.Arity)
		}
		sum := 0
		for pos, i := range grp {
			if i < 0 || i >= p || seen[i] {
				return fmt.Errorf("npc: group %d member %d invalid or repeated", g, i)
			}
			seen[i] = true
			c.groupOf[i] = g
			c.order[i] = pos
			sum += c.red.Part.S[i]
		}
		if sum != c.red.Part.B {
			return fmt.Errorf("npc: group %d sums to %d, want B=%d", g, sum, c.red.Part.B)
		}
	}
	for i := 0; i < p; i++ {
		if !seen[i] {
			return fmt.Errorf("npc: sequence %d not covered by any group", i)
		}
	}
	c.cur = make([]int, len(c.groups))
	c.extra = make([]bool, len(c.groups))
	c.served = make([]int, p)
	c.hits = make([]int64, p)
	return nil
}

// other returns the page of sequence i that is not pg.
func other(i int, pg core.PageID) core.PageID {
	if pg == AlphaPage(i) {
		return BetaPage(i)
	}
	return AlphaPage(i)
}

// OnHit implements sim.Strategy.
func (c *Constructive) OnHit(_ core.PageID, at cache.Access) {
	c.hits[at.Core]++
	c.served[at.Core]++
}

// OnJoin implements sim.Strategy (unreachable: sequences are disjoint).
func (c *Constructive) OnJoin(_ core.PageID, at cache.Access) {
	c.served[at.Core]++
}

// OnFault implements sim.Strategy.
func (c *Constructive) OnFault(pg core.PageID, at cache.Access, v sim.View) core.PageID {
	i := at.Core
	c.served[i]++
	if c.served[i] == 1 {
		return core.NoPage // first request fills the dedicated cell
	}
	g := c.groupOf[i]
	grp := c.groups[g]
	switch {
	case grp[c.cur[g]] == i && !c.extra[g]:
		// The privileged member claims the group's extra cell.
		c.extra[g] = true
		return core.NoPage
	case c.cur[g]+1 < len(grp) && grp[c.cur[g]+1] == i &&
		c.hits[grp[c.cur[g]]] >= c.red.HitQuota(grp[c.cur[g]]):
		// Quota reached: take the extra cell from the previous owner by
		// evicting the page it needs next, so it faults from now on.
		prev := grp[c.cur[g]]
		victim := c.red.PIF.Inst.R[prev][c.served[prev]]
		c.cur[g]++
		return victim
	default:
		return other(i, pg)
	}
}

// FaultsBefore runs the strategy on the reduction's instance and returns
// the per-core fault counts among requests served strictly before time T
// (a fault served at time t contributes to the count "at time T" exactly
// when t < T, matching Algorithm 2's accounting).
func FaultsBefore(inst core.Instance, s sim.Strategy, t int64) ([]int64, error) {
	counts := make([]int64, inst.R.NumCores())
	_, err := sim.Run(inst, s, func(ev sim.Event) {
		if ev.Fault && ev.Time < t {
			counts[ev.Core]++
		}
	})
	if err != nil {
		return nil, err
	}
	return counts, nil
}

// VerifySchedule runs the constructive schedule for a partition solution
// and reports whether every sequence meets its PIF bound at the
// checkpoint, along with the observed per-core fault counts.
func VerifySchedule(red Reduction, groups [][]int) (bool, []int64, error) {
	counts, err := FaultsBefore(red.PIF.Inst, NewConstructive(red, groups), red.PIF.T)
	if err != nil {
		return false, nil, err
	}
	for i, f := range counts {
		if f > red.PIF.Bounds[i] {
			return false, counts, nil
		}
	}
	return true, counts, nil
}
