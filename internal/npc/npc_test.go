package npc_test

import (
	"math/rand"
	"testing"

	"mcpaging/internal/npc"
	"mcpaging/internal/offline"
)

func TestPartitionValidate(t *testing.T) {
	cases := []struct {
		name string
		pi   npc.PartitionInstance
		ok   bool
	}{
		{"valid 3p", npc.PartitionInstance{S: []int{2, 2, 2}, B: 6, Arity: 3}, true},
		{"valid 3p two groups", npc.PartitionInstance{S: []int{2, 2, 3, 3, 2, 2}, B: 7, Arity: 3}, true},
		{"bad arity", npc.PartitionInstance{S: []int{2, 2, 2}, B: 6, Arity: 5}, false},
		{"bad count", npc.PartitionInstance{S: []int{2, 2}, B: 6, Arity: 3}, false},
		{"element too small", npc.PartitionInstance{S: []int{1, 2, 3}, B: 6, Arity: 3}, false},
		{"element too big", npc.PartitionInstance{S: []int{3, 2, 1}, B: 6, Arity: 3}, false},
		{"bad sum", npc.PartitionInstance{S: []int{2, 2, 2, 2, 2, 2}, B: 7, Arity: 3}, false},
		{"valid 4p", npc.PartitionInstance{S: []int{4, 4, 4, 4}, B: 16, Arity: 4}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.pi.Validate()
			if (err == nil) != c.ok {
				t.Fatalf("Validate() = %v, want ok=%v", err, c.ok)
			}
		})
	}
}

func TestSolve3PartitionYes(t *testing.T) {
	pi := npc.PartitionInstance{S: []int{4, 4, 5, 4, 4, 5}, B: 13, Arity: 3}
	groups, ok := pi.Solve()
	if !ok {
		t.Fatal("solvable instance reported unsolvable")
	}
	if len(groups) != 2 {
		t.Fatalf("groups = %v, want 2 triples", groups)
	}
	seen := make(map[int]bool)
	for _, g := range groups {
		sum := 0
		for _, i := range g {
			if seen[i] {
				t.Fatalf("index %d reused", i)
			}
			seen[i] = true
			sum += pi.S[i]
		}
		if sum != pi.B {
			t.Fatalf("group %v sums to %d, want %d", g, sum, pi.B)
		}
	}
}

func TestSolve3PartitionNo(t *testing.T) {
	// {4,4,4,4,4,6} with B=13: triples sum to 12 or 14, never 13.
	pi := npc.PartitionInstance{S: []int{4, 4, 4, 4, 4, 6}, B: 13, Arity: 3}
	if err := pi.Validate(); err != nil {
		t.Fatalf("instance should be structurally valid: %v", err)
	}
	if _, ok := pi.Solve(); ok {
		t.Fatal("unsolvable instance reported solvable")
	}
	if got := pi.MaxGroups(); got != 0 {
		t.Fatalf("MaxGroups = %d, want 0", got)
	}
}

func TestMaxGroupsPartial(t *testing.T) {
	// One triple can be formed ({4,4,5}), the rest cannot.
	pi := npc.PartitionInstance{S: []int{4, 4, 5, 4, 4, 6}, B: 13, Arity: 3}
	// Not a valid full instance (sum mismatch) but MaxGroups is defined
	// on any element set.
	if got := pi.MaxGroups(); got != 1 {
		t.Fatalf("MaxGroups = %d, want 1", got)
	}
}

func TestGenerateYesSolvable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		arity := 3
		if trial%2 == 1 {
			arity = 4
		}
		b := 12 + rng.Intn(10)
		if arity == 4 {
			b = 16 + rng.Intn(8)
		}
		pi, err := npc.GenerateYes(rng, arity, 2+rng.Intn(2), b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := pi.Validate(); err != nil {
			t.Fatalf("trial %d: generated instance invalid: %v", trial, err)
		}
		if _, ok := pi.Solve(); !ok {
			t.Fatalf("trial %d: generated yes-instance unsolvable: %+v", trial, pi)
		}
	}
}

func TestReduceShape(t *testing.T) {
	pi := npc.PartitionInstance{S: []int{2, 2, 2}, B: 6, Arity: 3}
	red, err := npc.Reduce(pi, 1)
	if err != nil {
		t.Fatal(err)
	}
	in := red.PIF.Inst
	if in.R.NumCores() != 3 {
		t.Fatalf("p = %d, want 3", in.R.NumCores())
	}
	if in.P.K != 4 {
		t.Fatalf("K = %d, want 4p/3 = 4", in.P.K)
	}
	wantLen := 6*2 + 4*1 + 5 // B(τ+1) + 4τ + 5
	if len(in.R[0]) != wantLen || red.PIF.T != int64(wantLen) {
		t.Fatalf("len = %d, T = %d, want both %d", len(in.R[0]), red.PIF.T, wantLen)
	}
	for i := range in.R {
		if red.PIF.Bounds[i] != int64(6-2+4) {
			t.Fatalf("b[%d] = %d, want 8", i, red.PIF.Bounds[i])
		}
		for j, pg := range in.R[i] {
			want := npc.AlphaPage(i)
			if j%2 == 1 {
				want = npc.BetaPage(i)
			}
			if pg != want {
				t.Fatalf("R[%d][%d] = %d, want %d", i, j, pg, want)
			}
		}
	}
	if !in.R.Disjoint() {
		t.Fatal("reduction sequences must be disjoint")
	}
}

// TestConstructiveScheduleMeetsBounds is the executable "⇒" direction of
// Theorem 2: for solvable instances the proof's schedule keeps every
// sequence within its fault bound at the checkpoint, for a range of τ.
func TestConstructiveScheduleMeetsBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 12; trial++ {
		tau := rng.Intn(4)
		b := 12 + rng.Intn(8)
		groups := 1 + rng.Intn(3)
		pi, err := npc.GenerateYes(rng, 3, groups, b)
		if err != nil {
			t.Fatal(err)
		}
		sol, ok := pi.Solve()
		if !ok {
			t.Fatal("yes-instance unsolvable")
		}
		red, err := npc.Reduce(pi, tau)
		if err != nil {
			t.Fatal(err)
		}
		ok, counts, err := npc.VerifySchedule(red, sol)
		if err != nil {
			t.Fatalf("trial %d (τ=%d, B=%d): %v", trial, tau, b, err)
		}
		if !ok {
			t.Fatalf("trial %d (τ=%d, B=%d): bounds violated: faults=%v bounds=%v S=%v groups=%v",
				trial, tau, b, counts, red.PIF.Bounds, pi.S, sol)
		}
	}
}

// TestConstructiveScheduleTight: the proof's arithmetic says sequence i
// faults exactly B - s_i + 4 times by the checkpoint — the bound is met
// with equality, which pins the schedule implementation to the proof.
func TestConstructiveScheduleTight(t *testing.T) {
	pi := npc.PartitionInstance{S: []int{2, 2, 2}, B: 6, Arity: 3}
	sol, ok := pi.Solve()
	if !ok {
		t.Fatal("unsolvable")
	}
	for _, tau := range []int{0, 1, 2, 3} {
		red, err := npc.Reduce(pi, tau)
		if err != nil {
			t.Fatal(err)
		}
		ok, counts, err := npc.VerifySchedule(red, sol)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("τ=%d: bounds violated: %v vs %v", tau, counts, red.PIF.Bounds)
		}
		for i, f := range counts {
			if f != red.PIF.Bounds[i] {
				t.Fatalf("τ=%d: core %d faults %d, want exactly %d", tau, i, f, red.PIF.Bounds[i])
			}
		}
	}
}

// TestConstructiveScheduleFourPartition exercises the Theorem 3 variant
// (arity 4, K = 5p/4, b_i = B - s_i + 5).
func TestConstructiveScheduleFourPartition(t *testing.T) {
	pi := npc.PartitionInstance{S: []int{4, 4, 4, 4}, B: 16, Arity: 4}
	sol, ok := pi.Solve()
	if !ok {
		t.Fatal("unsolvable")
	}
	for _, tau := range []int{0, 1, 2} {
		red, err := npc.Reduce(pi, tau)
		if err != nil {
			t.Fatal(err)
		}
		if red.PIF.Inst.P.K != 5 {
			t.Fatalf("K = %d, want 5p/4 = 5", red.PIF.Inst.P.K)
		}
		ok, counts, err := npc.VerifySchedule(red, sol)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("τ=%d: bounds violated: %v vs %v", tau, counts, red.PIF.Bounds)
		}
	}
}

// TestWrongGroupingFails: grouping sequences whose elements do not sum to
// B is rejected at Init — and with unequal groups the bounds are
// unattainable by the schedule, which is the content of the "⇐"
// direction.
func TestWrongGroupingRejected(t *testing.T) {
	pi := npc.PartitionInstance{S: []int{4, 4, 5, 4, 4, 5}, B: 13, Arity: 3}
	red, err := npc.Reduce(pi, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Group {0,1,3} sums to 12 ≠ 13.
	bad := [][]int{{0, 1, 3}, {2, 4, 5}}
	if _, _, err := npc.VerifySchedule(red, bad); err == nil {
		t.Fatal("mis-summed grouping should be rejected")
	}
}

// TestReductionAgreesWithPIFDP runs Algorithm 2 on a small reduction
// instance. With p=3 and τ=0 the gadget's hit budget is exactly tight:
// each sequence needs h_i = s_i+1 hits by the checkpoint and only one
// sequence can hit per timestep (each sequence pins one cell, leaving
// exactly one extra cell), so the required 9 hits exactly fill the 9
// available slots. The instance is therefore a yes — and tightening any
// single bound by one pushes the requirement to 10 > 9 and must flip the
// answer to no. This exercises Algorithm 2 on the reduction gadget in
// both directions.
func TestReductionAgreesWithPIFDP(t *testing.T) {
	yes := npc.PartitionInstance{S: []int{2, 2, 2}, B: 6, Arity: 3}
	redYes, err := npc.Reduce(yes, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := offline.DecidePIF(redYes.PIF, offline.Options{MaxStates: 3_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatalf("solvable reduction decided NO (states=%d)", stats.States)
	}

	tight := redYes.PIF
	tight.Bounds = append([]int64(nil), tight.Bounds...)
	tight.Bounds[0]--
	got, stats, err = offline.DecidePIF(tight, offline.Options{MaxStates: 3_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Fatalf("over-tight reduction decided YES (states=%d)", stats.States)
	}
}

// TestReductionSumMismatchSlack documents a subtlety of the gadget: with
// a single group (p=3) and τ=0, an element sum *below* B leaves slack in
// the hit budget, so the PIF instance is still a yes even though no
// triple sums to B. The ⇐ direction of Theorem 2 relies on the validity
// condition sum(S) = (n/3)·B; this test pins that boundary.
func TestReductionSumMismatchSlack(t *testing.T) {
	noPart := npc.PartitionInstance{S: []int{2, 2, 2}, B: 7, Arity: 3}
	red, err := npc.ReduceUnchecked(noPart, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := offline.DecidePIF(red.PIF, offline.Options{MaxStates: 3_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Fatal("slack gadget (sum < B) should still be feasible")
	}
}
