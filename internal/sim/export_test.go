package sim

// SetParKnobs overrides the speculative engine's eligibility and
// speculation-depth knobs for a test and returns a restore func. The
// differential corpus uses tiny instances, so tests shrink the
// thresholds to force the parallel engine to engage, turn epochs over,
// and exercise rollback on workloads small enough to cross-check
// event-for-event against the reference engine.
func SetParKnobs(minRequests, budget, maxSegs int) (restore func()) {
	m0, b0, s0 := parMinRequests, parBudget, parMaxSegs
	parMinRequests, parBudget, parMaxSegs = minRequests, budget, maxSegs
	return func() { parMinRequests, parBudget, parMaxSegs = m0, b0, s0 }
}
