package sim_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"mcpaging/internal/capacity"
	"mcpaging/internal/core"
	"mcpaging/internal/policy"
	"mcpaging/internal/sim"
	"mcpaging/internal/telemetry"
)

// elasticStrategies builds the CapacityAware strategy set the elastic
// differential tests replay: shared LRU, the even static partition
// (quota rescaling through reapportion), and the FairShare dynamic
// partition (occupancy-driven controller).
func elasticStrategies(k, p int) []func() sim.Strategy {
	return []func() sim.Strategy{
		func() sim.Strategy { return policy.NewShared(lru()) },
		func() sim.Strategy { return policy.NewStatic(policy.EvenSizes(k, p), lru()) },
		func() sim.Strategy { return policy.NewPartitioned(policy.FairController(0), lru()) },
	}
}

// telemetryJSON runs the instance under the given parallelism with a
// telemetry collector attached and returns the run result, the captured
// event stream, and the collector's JSON-marshalled windows + totals.
func telemetryJSON(t *testing.T, label string, in core.Instance, mk func() sim.Strategy, workers int) (sim.Result, []sim.Event, []byte) {
	t.Helper()
	col := telemetry.New(telemetry.Config{Cores: in.R.NumCores(), Params: in.P})
	var evs []sim.Event
	res, err := sim.RunParallel(in, mk(), func(e sim.Event) {
		evs = append(evs, e)
		col.Observe(e)
	}, workers)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	col.Finish(res)
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, w := range col.Windows() {
		if err := enc.Encode(w); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Encode(col.Totals()); err != nil {
		t.Fatal(err)
	}
	return res, evs, buf.Bytes()
}

// TestConstantScheduleMatchesFixedK pins the refactor's zero-cost
// contract: attaching a *constant* capacity schedule must be byte-
// identical to the fixed-K model — same Result, same event stream, and
// same serialized telemetry — on both the sequential and speculative
// engines. The engine nils constant schedules at reset, so this guards
// the equivalence structurally, not statistically.
func TestConstantScheduleMatchesFixedK(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 40; i++ {
		in := randomInstance(rng, i)
		sched, err := capacity.ParseSchedule("fixed", in.P.K)
		if err != nil {
			t.Fatal(err)
		}
		elastic := in
		elastic.P.Capacity = sched
		for si, mk := range elasticStrategies(in.P.K, in.R.NumCores()) {
			for _, workers := range []int{0, 3} {
				label := fmt.Sprintf("inst=%d strat=%d workers=%d", i, si, workers)
				wantRes, wantEv, wantTel := telemetryJSON(t, label+" fixed", in, mk, workers)
				gotRes, gotEv, gotTel := telemetryJSON(t, label+" constant", elastic, mk, workers)
				if !reflect.DeepEqual(gotRes, wantRes) {
					t.Fatalf("%s: results differ:\nconstant %+v\nfixed    %+v", label, gotRes, wantRes)
				}
				if !reflect.DeepEqual(gotEv, wantEv) {
					t.Fatalf("%s: event streams differ (%d vs %d events)", label, len(gotEv), len(wantEv))
				}
				if !bytes.Equal(gotTel, wantTel) {
					t.Fatalf("%s: telemetry bytes differ:\nconstant %s\nfixed    %s", label, gotTel, wantTel)
				}
			}
		}
	}
}

// elasticSchedules returns the non-constant schedule specs the
// differential corpus cycles through, resolved against base k. Shrink
// targets stay at or above p: the model needs K(t) >= active cores.
func elasticSchedules(t *testing.T, k, p int) []*capacity.Schedule {
	t.Helper()
	lo := maxInt(p, k/2)
	var out []*capacity.Schedule
	for _, spec := range []string{
		fmt.Sprintf("step(to=%d,at=8)", lo),
		fmt.Sprintf("step(to=%d,at=5)", k+3),
		fmt.Sprintf("periodic(lo=%d,period=16,duty=0.5)", lo),
		fmt.Sprintf("ramp(to=%d,end=32)", lo),
	} {
		sched, err := capacity.ParseSchedule(spec, k)
		if err != nil {
			t.Fatalf("%s (k=%d): %v", spec, k, err)
		}
		out = append(out, sched)
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestElasticSeqMatchesParallel replays randomized instances under
// non-constant schedules — shrink steps, grow steps, periodic storms,
// and ramps — through the sequential and speculative engines and
// requires identical results and identical event streams, capacity
// announcements and pressure evictions included. Speculation fences at
// schedule boundaries, so the canonical timeline must be engine-
// invariant.
func TestElasticSeqMatchesParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for i := 0; i < 40; i++ {
		in := randomInstance(rng, i)
		p := in.R.NumCores()
		for si, sched := range elasticSchedules(t, in.P.K, p) {
			elastic := in
			elastic.P.Capacity = sched
			if err := elastic.P.Validate(); err != nil {
				t.Fatalf("inst=%d sched=%d: %v", i, si, err)
			}
			for mi, mk := range elasticStrategies(in.P.K, p) {
				label := fmt.Sprintf("inst=%d sched=%s strat=%d", i, sched, mi)
				wantRes, wantEv, wantTel := telemetryJSON(t, label+" seq", elastic, mk, 0)
				gotRes, gotEv, gotTel := telemetryJSON(t, label+" par", elastic, mk, 3)
				if !reflect.DeepEqual(gotRes, wantRes) {
					t.Fatalf("%s: results differ:\nparallel   %+v\nsequential %+v", label, gotRes, wantRes)
				}
				if len(gotEv) != len(wantEv) {
					t.Fatalf("%s: %d events vs %d sequential", label, len(gotEv), len(wantEv))
				}
				for j := range gotEv {
					if gotEv[j] != wantEv[j] {
						t.Fatalf("%s: event %d differs:\nparallel   %+v\nsequential %+v",
							label, j, gotEv[j], wantEv[j])
					}
				}
				if !bytes.Equal(gotTel, wantTel) {
					t.Fatalf("%s: telemetry bytes differ", label)
				}
			}
		}
	}
}

// TestElasticShrinkShedsAndGrowIsFree checks the shed semantics: a
// shrink forces enough capacity-pressure evictions to fit the new K and
// tags each with Capacity+Tick events; a pure grow announces the resize
// but never evicts.
func TestElasticShrinkShedsAndGrowIsFree(t *testing.T) {
	// One core cycling through k distinct pages fills the cache, then a
	// step shrink halves it: at least k - k/2 cells must be shed.
	const k = 8
	seq := make(core.Sequence, 64)
	for i := range seq {
		seq[i] = core.PageID(i % k)
	}
	in := core.Instance{R: core.RequestSet{seq}, P: core.Params{K: k, Tau: 1}}

	shrink, err := capacity.ParseSchedule("step(to=50%,at=40)", k)
	if err != nil {
		t.Fatal(err)
	}
	in.P.Capacity = shrink
	var shed, announced int
	res, err := sim.Run(in, policy.NewShared(lru()), func(e sim.Event) {
		if !e.Capacity {
			return
		}
		if e.Tick {
			shed++
			if e.Victim == core.NoPage {
				t.Fatalf("capacity eviction without a victim: %+v", e)
			}
		} else {
			announced++
			if e.K != k/2 {
				t.Fatalf("announcement K = %d, want %d", e.K, k/2)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if announced != 1 {
		t.Fatalf("announcements = %d, want 1", announced)
	}
	if shed < k-k/2 {
		t.Fatalf("shed %d cells, want at least %d", shed, k-k/2)
	}
	if res.CapacityEvictions != int64(shed) {
		t.Fatalf("Result.CapacityEvictions = %d, events saw %d", res.CapacityEvictions, shed)
	}

	grow, err := capacity.ParseSchedule(fmt.Sprintf("step(to=%d,at=40)", 2*k), k)
	if err != nil {
		t.Fatal(err)
	}
	in.P.Capacity = grow
	res, err = sim.Run(in, policy.NewShared(lru()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.CapacityEvictions != 0 {
		t.Fatalf("grow-only schedule shed %d cells, want 0", res.CapacityEvictions)
	}
}

// TestElasticRejectsUnawareStrategy pins the error path: a non-constant
// schedule with a strategy that cannot resize must fail loudly instead
// of silently running fixed.
func TestElasticRejectsUnawareStrategy(t *testing.T) {
	in := core.Instance{R: core.RequestSet{{1, 2, 3}}, P: core.Params{K: 4, Tau: 0}}
	sched, err := capacity.ParseSchedule("step(to=2,at=2)", 4)
	if err != nil {
		t.Fatal(err)
	}
	in.P.Capacity = sched
	if _, err := sim.Run(in, policy.NewFWF(), nil); err == nil {
		t.Fatal("non-CapacityAware strategy accepted under a non-constant schedule")
	}
}

// TestElasticRejectsBelowActiveCores pins the model invariant: a
// schedule that ever drops K(t) below the number of active cores is
// rejected up front — with fewer cells than faulting cores, every cell
// can be pinned in flight and a fault has nothing to evict.
func TestElasticRejectsBelowActiveCores(t *testing.T) {
	in := core.Instance{R: core.RequestSet{{1, 2, 3}, {4, 5, 6}}, P: core.Params{K: 4, Tau: 2}}
	sched, err := capacity.ParseSchedule("step(to=1,at=2)", 4)
	if err != nil {
		t.Fatal(err)
	}
	in.P.Capacity = sched
	if _, err := sim.Run(in, policy.NewShared(lru()), nil); err == nil {
		t.Fatal("schedule reaching K(t) < active cores accepted")
	}
}

// TestElasticRunAllocBound extends the hot-path allocation budget to
// elastic runs: a warmed Runner replaying a step-shrink schedule must
// stay within the same 4 allocs/run bound — capacity boundaries are a
// cold path, but they must not leak per-run garbage either.
func TestElasticRunAllocBound(t *testing.T) {
	rs := make(core.RequestSet, 2)
	for c := range rs {
		seq := make(core.Sequence, 4096)
		for i := range seq {
			seq[i] = core.PageID(c*16 + i%16)
		}
		rs[c] = seq
	}
	rn, err := sim.NewRunner(rs)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := capacity.ParseSchedule("step(to=50%,at=2048)", 64)
	if err != nil {
		t.Fatal(err)
	}
	params := core.Params{K: 64, Tau: 4, Capacity: sched}
	s := policy.NewShared(lru())
	if _, err := rn.Run(params, s, nil); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := rn.Run(params, s, nil); err != nil {
			t.Fatal(err)
		}
	})
	const bound = 4
	if allocs > bound {
		t.Fatalf("warmed elastic Runner.Run: %v allocs/run, want at most %d", allocs, bound)
	}
}

// BenchmarkSimElastic crosses the serve path with capacity schedules of
// increasing shrink severity, fixed K first as the baseline column.
// Allocations are reported so benchstat (or -benchmem by eye) shows the
// elastic hot path staying at the fixed-K steady state — schedule
// boundaries are a cold path and must not leak per-run garbage.
func BenchmarkSimElastic(b *testing.B) {
	const perCore = 50000
	rs := make(core.RequestSet, 4)
	for c := range rs {
		seq := make(core.Sequence, perCore)
		for i := range seq {
			seq[i] = core.PageID(c*64 + i%64)
		}
		rs[c] = seq
	}
	const k = 512
	schedules := []struct{ name, spec string }{
		{"fixed", ""},
		{"shrink25", "step(to=75%,at=25000)"},
		{"shrink50", "step(to=50%,at=25000)"},
		{"storm", "periodic(lo=50%,period=8192,duty=0.5)"},
	}
	for _, sc := range schedules {
		for _, w := range []int{0, 4} {
			b.Run(sc.name+"/"+workersName(w), func(b *testing.B) {
				params := core.Params{K: k, Tau: 8}
				if sc.spec != "" {
					sched, err := capacity.ParseSchedule(sc.spec, k)
					if err != nil {
						b.Fatal(err)
					}
					params.Capacity = sched
				}
				rn, err := sim.NewRunner(rs)
				if err != nil {
					b.Fatal(err)
				}
				rn.SetParallel(w)
				s := policy.NewShared(lru())
				n := float64(rs.TotalLen())
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := rn.Run(params, s, nil); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(n*float64(b.N)/b.Elapsed().Seconds(), "req/s")
			})
		}
	}
}
