package sim

// Seed plumbing for sampled experiments. The verification harness
// (internal/verify) runs every claim over N seeded instances, and each
// instance needs several independent deterministic randomness streams:
// the workload sample, the strategy's own seed (RAND, RMARK), and the
// resampling done by the statistics layer. Deriving them all from one
// root seed with ad-hoc arithmetic (root+i, root*31+j, ...) invites
// correlated streams; DeriveSeed gives a single well-mixed derivation
// that every sampling layer shares, so a claim's seed alone replays the
// exact instance that produced a verdict or counterexample.

// splitmix64 is the finalizer of the SplitMix64 generator — a bijective
// mixer whose output is equidistributed over 64-bit inputs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// DeriveSeed derives an independent sub-seed from a root seed, a stream
// identifier and an index within the stream. The derivation is a pure
// function — the same (root, stream, index) always yields the same
// sub-seed — and distinct inputs yield decorrelated outputs, so callers
// can fan one user-visible seed out into per-sample, per-strategy and
// per-bootstrap streams without overlap.
func DeriveSeed(root int64, stream, index int64) int64 {
	h := splitmix64(uint64(root))
	h = splitmix64(h ^ (uint64(stream) * 0xff51afd7ed558ccd))
	h = splitmix64(h ^ (uint64(index) * 0xc4ceb9fe1a85ec53))
	return int64(h)
}
