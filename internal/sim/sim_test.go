package sim_test

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"mcpaging/internal/cache"
	"mcpaging/internal/core"
	"mcpaging/internal/policy"
	"mcpaging/internal/sim"
)

func lru() cache.Factory { return func() cache.Policy { return cache.NewLRU() } }

func inst(k, tau int, seqs ...core.Sequence) core.Instance {
	return core.Instance{R: core.RequestSet(seqs), P: core.Params{K: k, Tau: tau}}
}

func TestSingleCoreTiming(t *testing.T) {
	// K=1, τ=2: three compulsory faults, each taking τ+1 = 3 steps.
	in := inst(1, 2, core.Sequence{1, 2, 1})
	res, err := sim.Run(in, policy.NewShared(lru()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults[0] != 3 || res.Hits[0] != 0 {
		t.Fatalf("faults=%d hits=%d, want 3/0", res.Faults[0], res.Hits[0])
	}
	if res.Finish[0] != 9 || res.Makespan != 9 {
		t.Fatalf("finish=%d makespan=%d, want 9/9", res.Finish[0], res.Makespan)
	}
}

func TestSingleCoreHitTiming(t *testing.T) {
	in := inst(1, 2, core.Sequence{1, 1, 1})
	res, err := sim.Run(in, policy.NewShared(lru()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults[0] != 1 || res.Hits[0] != 2 {
		t.Fatalf("faults=%d hits=%d, want 1/2", res.Faults[0], res.Hits[0])
	}
	// Fault finishes at 3, hits at 4 and 5.
	if res.Finish[0] != 5 {
		t.Fatalf("finish=%d, want 5", res.Finish[0])
	}
}

func TestParallelService(t *testing.T) {
	// Two disjoint cores, K=2: both fault at t=0 into free cells and run
	// in parallel — the makespan equals a single core's time.
	in := inst(2, 3, core.Sequence{1, 1}, core.Sequence{2, 2})
	res, err := sim.Run(in, policy.NewShared(lru()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalFaults() != 2 || res.TotalHits() != 2 {
		t.Fatalf("faults=%d hits=%d, want 2/2", res.TotalFaults(), res.TotalHits())
	}
	if res.Finish[0] != 5 || res.Finish[1] != 5 {
		t.Fatalf("finish=%v, want [5 5]", res.Finish)
	}
}

func TestFinishIdentity(t *testing.T) {
	// finish[j] = len_j + faults_j * τ always: a core is never blocked by
	// other cores, only by its own faults.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + rng.Intn(3)
		k := p + 1 + rng.Intn(6)
		tau := rng.Intn(4)
		rs := make(core.RequestSet, p)
		for j := range rs {
			n := 1 + rng.Intn(30)
			s := make(core.Sequence, n)
			for i := range s {
				s[i] = core.PageID(j*100 + rng.Intn(8)) // disjoint per core
			}
			rs[j] = s
		}
		res, err := sim.Run(core.Instance{R: rs, P: core.Params{K: k, Tau: tau}},
			policy.NewShared(lru()), nil)
		if err != nil {
			return false
		}
		for j := range rs {
			if res.Hits[j]+res.Faults[j] != int64(len(rs[j])) {
				return false
			}
			if res.Finish[j] != int64(len(rs[j]))+res.Faults[j]*int64(tau) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLogicalOrderEvictionVisibility(t *testing.T) {
	// Core 0 (lower index) faults at t=0 and evicts core 1's page before
	// core 1's simultaneous request is examined; core 1 must fault.
	// Setup: warm the cache so page 20 is resident, then hit the case.
	in := inst(2, 0,
		core.Sequence{10, 11}, // core 0
		core.Sequence{20, 20}, // core 1
	)
	// Scripted: when core 0 faults on 11 (t=1) it evicts core 1's page
	// 20; core 1's simultaneous re-request of 20 then faults and evicts
	// the only other resident page, 10.
	st := &policy.Func{
		StrategyName: "evict-other",
		Victim: func(p core.PageID, at cache.Access, v sim.View) core.PageID {
			if v.Free() > 0 {
				return core.NoPage
			}
			if p == 11 {
				return 20
			}
			return 10
		},
	}
	// K=2: t=0 core0 faults 10 (free), core1 faults 20 (free). t=1 core0
	// faults 11, cache full → evicts 20; core1 then requests 20 → fault.
	res, err := sim.Run(in, st, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults[1] != 2 {
		t.Fatalf("core 1 faults = %d, want 2 (same-step eviction visible)", res.Faults[1])
	}
}

func TestInFlightVictimRejected(t *testing.T) {
	// A strategy that tries to evict a page whose fetch is in flight must
	// abort the run with an error.
	in := inst(2, 5,
		core.Sequence{1},       // core 0 fetches page 1 during [0,5]
		core.Sequence{2, 3, 4}, // core 1 faults repeatedly
	)
	bad := &policy.Func{
		StrategyName: "evict-in-flight",
		Victim: func(p core.PageID, at cache.Access, v sim.View) core.PageID {
			if v.Free() > 0 {
				return core.NoPage
			}
			return 1 // in flight until t=5; requested again never
		},
	}
	_, err := sim.Run(in, bad, nil)
	if err == nil || !strings.Contains(err.Error(), "in-flight") {
		t.Fatalf("expected in-flight eviction error, got %v", err)
	}
}

func TestNonCachedVictimRejected(t *testing.T) {
	in := inst(1, 0, core.Sequence{1, 2})
	bad := &policy.Func{
		StrategyName: "evict-missing",
		Victim: func(p core.PageID, at cache.Access, v sim.View) core.PageID {
			if v.Free() > 0 {
				return core.NoPage
			}
			return 99
		},
	}
	_, err := sim.Run(in, bad, nil)
	if err == nil || !strings.Contains(err.Error(), "non-cached") {
		t.Fatalf("expected non-cached eviction error, got %v", err)
	}
}

func TestFreeCellOverclaimRejected(t *testing.T) {
	in := inst(1, 0, core.Sequence{1, 2})
	bad := &policy.Func{
		StrategyName: "always-free",
		Victim: func(core.PageID, cache.Access, sim.View) core.PageID {
			return core.NoPage
		},
	}
	_, err := sim.Run(in, bad, nil)
	if err == nil || !strings.Contains(err.Error(), "free cell") {
		t.Fatalf("expected free-cell error, got %v", err)
	}
}

func TestInFlightJoinSharesCell(t *testing.T) {
	// Non-disjoint: both cores request page 7 at t=0. Core 0 starts the
	// fetch; core 1 joins it: a fault, full τ delay, but only one cell.
	in := inst(4, 3, core.Sequence{7}, core.Sequence{7})
	var joins int
	obs := func(ev sim.Event) {
		if ev.Join {
			joins++
		}
	}
	res, err := sim.Run(in, policy.NewShared(lru()), obs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults[0] != 1 || res.Faults[1] != 1 {
		t.Fatalf("faults = %v, want both 1", res.Faults)
	}
	if joins != 1 {
		t.Fatalf("joins = %d, want 1", joins)
	}
	if res.Finish[1] != 4 {
		t.Fatalf("joining core finish = %d, want full τ+1 = 4", res.Finish[1])
	}
}

func TestResidentSharedHit(t *testing.T) {
	// Core 0 fetches page 7 at t=0 (τ=0, resident at t=1); core 1
	// requests it at t≥1 and hits.
	in := inst(4, 0, core.Sequence{7, 7}, core.Sequence{99, 7})
	res, err := sim.Run(in, policy.NewShared(lru()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hits[1] != 1 {
		t.Fatalf("core 1 hits = %d, want 1 (shared resident page)", res.Hits[1])
	}
}

func TestObserverEventStream(t *testing.T) {
	in := inst(2, 1, core.Sequence{1, 2, 1}, core.Sequence{5})
	var evs []sim.Event
	res, err := sim.Run(in, policy.NewShared(lru()), func(e sim.Event) { evs = append(evs, e) })
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(evs)) != res.TotalFaults()+res.TotalHits() {
		t.Fatalf("observed %d events, want %d", len(evs), res.TotalFaults()+res.TotalHits())
	}
	// Events are time-ordered and per-core index-ordered.
	lastIdx := map[int]int{}
	for i := 1; i < len(evs); i++ {
		if evs[i].Time < evs[i-1].Time {
			t.Fatal("events not time-ordered")
		}
	}
	for _, e := range evs {
		if last, ok := lastIdx[e.Core]; ok && e.Index != last+1 {
			t.Fatalf("core %d served index %d after %d", e.Core, e.Index, last)
		}
		lastIdx[e.Core] = e.Index
	}
}

// probeStrategy wraps an inner strategy and records NextUse values at the
// first fault that needs an eviction.
type probeStrategy struct {
	sim.Strategy
	next1, next9 int64
}

func (ps *probeStrategy) OnFault(p core.PageID, at cache.Access, v sim.View) core.PageID {
	if v.Free() == 0 && ps.next1 == -1 {
		ps.next1 = v.NextUse(1)
		ps.next9 = v.NextUse(9)
	}
	return ps.Strategy.OnFault(p, at, v)
}

func TestOracleNextUse(t *testing.T) {
	in := inst(2, 0,
		core.Sequence{1, 2, 3, 1}, // page 1 recurs at index 3
		core.Sequence{9, 9, 9, 9, 9},
	)
	ps := &probeStrategy{Strategy: policy.NewShared(lru()), next1: -1, next9: -1}
	if _, err := sim.Run(in, ps, nil); err != nil {
		t.Fatal(err)
	}
	// The probe fires at t=1 when core 0 faults on page 2 with the cache
	// full (cells hold 1 and 9). Core 0 is then at index 2 with clock 2,
	// so page 1's recurrence at index 3 can be served no earlier than
	// 2 + (3-2) = 3. Core 1 is at index 1 with clock 1, so page 9's next
	// use is at time 1.
	if ps.next1 != 3 {
		t.Errorf("NextUse(1) = %d, want 3", ps.next1)
	}
	if ps.next9 != 1 {
		t.Errorf("NextUse(9) = %d, want 1", ps.next9)
	}
}

func TestOracleNeverUsed(t *testing.T) {
	in := inst(1, 0, core.Sequence{1, 2})
	var sawNever bool
	st := &policy.Func{
		StrategyName: "probe-never",
		Victim: func(p core.PageID, at cache.Access, v sim.View) core.PageID {
			if v.Free() > 0 {
				return core.NoPage
			}
			sawNever = v.NextUse(1) == cache.NeverUsed
			return 1
		},
	}
	if _, err := sim.Run(in, st, nil); err != nil {
		t.Fatal(err)
	}
	if !sawNever {
		t.Fatal("NextUse of dead page should be NeverUsed")
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rs := make(core.RequestSet, 3)
	for j := range rs {
		s := make(core.Sequence, 200)
		for i := range s {
			s[i] = core.PageID(j*50 + rng.Intn(20))
		}
		rs[j] = s
	}
	in := core.Instance{R: rs, P: core.Params{K: 12, Tau: 2}}
	r1, err := sim.Run(in, policy.NewShared(lru()), nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sim.Run(in, policy.NewShared(lru()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.TotalFaults() != r2.TotalFaults() || r1.Makespan != r2.Makespan {
		t.Fatal("simulation is not deterministic")
	}
}

func TestColdStartCompulsoryFaults(t *testing.T) {
	// Any strategy faults at least once per distinct page; shared LRU on
	// a working set that fits in cache faults exactly w times.
	in := inst(8, 1,
		core.Sequence{1, 2, 3, 1, 2, 3, 1, 2, 3},
		core.Sequence{11, 12, 11, 12, 11, 12},
	)
	res, err := sim.Run(in, policy.NewShared(lru()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalFaults() != 5 {
		t.Fatalf("faults = %d, want 5 (one per distinct page)", res.TotalFaults())
	}
}

func TestEmptySequences(t *testing.T) {
	in := inst(4, 1, core.Sequence{}, core.Sequence{1, 2})
	res, err := sim.Run(in, policy.NewShared(lru()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Finish[0] != 0 {
		t.Fatalf("empty core finish = %d, want 0", res.Finish[0])
	}
	if res.Faults[1] != 2 {
		t.Fatalf("core 1 faults = %d, want 2", res.Faults[1])
	}
}

func TestInvalidInstanceRejected(t *testing.T) {
	if _, err := sim.Run(core.Instance{R: core.RequestSet{}, P: core.Params{K: 1}},
		policy.NewShared(lru()), nil); err == nil {
		t.Fatal("empty request set should be rejected")
	}
	if _, err := sim.Run(core.Instance{R: core.RequestSet{{1}}, P: core.Params{K: 0}},
		policy.NewShared(lru()), nil); err == nil {
		t.Fatal("K=0 should be rejected")
	}
}

func TestTickerVoluntaryEviction(t *testing.T) {
	// A forcing strategy that voluntarily evicts page 1 at t=2 causes a
	// re-fault on the next request of page 1.
	st := &tickerStrategy{Strategy: policy.NewShared(lru()), evictAt: 2, page: 1}
	in := inst(4, 0, core.Sequence{1, 2, 1})
	res, err := sim.Run(in, st, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults[0] != 3 {
		t.Fatalf("faults = %d, want 3 (forced re-fault)", res.Faults[0])
	}
	if res.VoluntaryEvictions != 1 {
		t.Fatalf("voluntary evictions = %d, want 1", res.VoluntaryEvictions)
	}
}

// tickerStrategy wraps a strategy and voluntarily evicts one page at a
// fixed time, modelling the paper's "forcing" algorithms.
type tickerStrategy struct {
	sim.Strategy
	evictAt int64
	page    core.PageID
	done    bool
}

func (ts *tickerStrategy) OnTick(t int64, v sim.View) []core.PageID {
	if ts.done || t < ts.evictAt || !v.Resident(ts.page) {
		return nil
	}
	ts.done = true
	// Drop from the wrapped strategy's metadata by reaching through the
	// shared policy: simplest is to rely on the wrapped strategy being a
	// *policy.Shared whose policy tolerates Remove of present pages.
	if sh, ok := ts.Strategy.(*policy.Shared); ok {
		sh.RemoveMetadata(ts.page)
	}
	return []core.PageID{ts.page}
}
