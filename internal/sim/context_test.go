package sim_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"mcpaging/internal/core"
	"mcpaging/internal/policy"
	"mcpaging/internal/sim"
)

// bigLoop builds a single-core scan long enough that a full run takes
// many cancellation-check intervals.
func bigLoop(n, pages int) core.RequestSet {
	seq := make(core.Sequence, n)
	for i := range seq {
		seq[i] = core.PageID(i % pages)
	}
	return core.RequestSet{seq}
}

func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	in := core.Instance{R: bigLoop(1_000_000, 4096), P: core.Params{K: 64, Tau: 4}}
	start := time.Now()
	_, err := sim.RunContext(ctx, in, policy.NewShared(lru()), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The first poll fires within one check interval: far sooner than the
	// full million-request run.
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("cancelled run took %v, want prompt return", d)
	}
}

func TestRunContextCancelledMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	in := core.Instance{R: bigLoop(2_000_000, 8192), P: core.Params{K: 256, Tau: 8}}
	served := 0
	obs := func(sim.Event) {
		served++
		if served == 10_000 {
			cancel()
		}
	}
	res, err := sim.RunContext(ctx, in, policy.NewShared(lru()), obs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The partial result stops within one check interval of the cancel.
	total := res.TotalFaults() + res.TotalHits()
	if total >= 2_000_000 {
		t.Fatalf("run served all %d requests despite cancellation", total)
	}
}

func TestRunContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	in := core.Instance{R: bigLoop(500_000, 4096), P: core.Params{K: 64, Tau: 4}}
	_, err := sim.RunContext(ctx, in, policy.NewShared(lru()), nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestRunContextNilAndBackground(t *testing.T) {
	in := inst(2, 1, core.Sequence{1, 2, 1}, core.Sequence{3, 4, 3})
	want, err := sim.Run(in, policy.NewShared(lru()), nil)
	if err != nil {
		t.Fatal(err)
	}
	rn, err := sim.NewRunner(in.R)
	if err != nil {
		t.Fatal(err)
	}
	//lint:ignore SA1012 nil ctx is explicitly documented as Background.
	got, err := rn.RunContext(nil, in.P, policy.NewShared(lru()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalFaults() != want.TotalFaults() || got.Makespan != want.Makespan {
		t.Fatalf("nil-ctx run diverged: %+v vs %+v", got, want)
	}
}

func TestRunnerBindRebindsAcrossWorkloads(t *testing.T) {
	a := core.RequestSet{{1, 2, 3, 1, 2, 3}}
	b := core.RequestSet{{7, 7, 7}, {9, 8, 9}}
	rn, err := sim.NewRunner(a)
	if err != nil {
		t.Fatal(err)
	}
	p := core.Params{K: 2, Tau: 1}
	got, err := rn.Run(p, policy.NewShared(lru()), nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.Run(core.Instance{R: a, P: p}, policy.NewShared(lru()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalFaults() != want.TotalFaults() {
		t.Fatalf("first bind: faults %d, want %d", got.TotalFaults(), want.TotalFaults())
	}
	if err := rn.Bind(b); err != nil {
		t.Fatal(err)
	}
	p2 := core.Params{K: 3, Tau: 2}
	got, err = rn.Run(p2, policy.NewShared(lru()), nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err = sim.Run(core.Instance{R: b, P: p2}, policy.NewShared(lru()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalFaults() != want.TotalFaults() || got.Makespan != want.Makespan {
		t.Fatalf("rebind: got %+v, want %+v", got, want)
	}
	rn.Release()
	if err := rn.Bind(a); err != nil {
		t.Fatalf("bind after release: %v", err)
	}
	if _, err := rn.Run(p, policy.NewShared(lru()), nil); err != nil {
		t.Fatalf("run after release+rebind: %v", err)
	}
}
