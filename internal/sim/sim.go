// Package sim implements the multicore shared-cache paging model of
// Section 3 of López-Ortiz & Salinger as a deterministic discrete-time
// simulator.
//
// Timing model (normative):
//
//   - Time is discrete, starting at 0.
//   - Each core j has a clock next[j]: the earliest time its next request
//     may be served. Requests of a core are served strictly in order.
//   - Requests whose core clocks coincide are served "logically in a
//     fixed order": increasing core index. Each request observes the
//     cache effects of lower-numbered cores in the same step.
//   - A hit is served instantly: next[j] becomes t+1.
//   - A fault evicts its victim at time t; the cell then holds the
//     incoming page in a fetching state during [t, t+τ] and the page is
//     usable from t+τ+1. The faulting core's clock becomes t+τ+1 — the
//     paper's additive-τ delay on the remainder of the sequence.
//   - Pages being fetched cannot be evicted (the paper's convention that
//     the evicted cell stays unused until the fetch completes).
//   - If a core requests a page that is currently being fetched for
//     another core (possible only for non-disjoint request sets), the
//     request counts as a fault, the core is delayed the full τ, and the
//     in-flight cell is shared — no second cell is allocated. This case
//     is outside the paper's disjoint-sequence theorems and the choice is
//     documented in DESIGN.md.
//
// The only degree of freedom a paging strategy has is victim choice on a
// fault, plus (for strategies modelling the paper's "forcing" and
// repartitioning behaviours) voluntary evictions at step boundaries.
package sim

import (
	"errors"
	"fmt"
	"math"

	"mcpaging/internal/cache"
	"mcpaging/internal/core"
)

// Strategy is a cache-management strategy in the paper's sense: a
// combination of a (possibly trivial) partition policy and an eviction
// policy. The simulator owns ground truth (residency, fetch state, free
// cells); the strategy owns replacement metadata and decides victims.
type Strategy interface {
	// Name identifies the strategy in tables, e.g. "S(LRU)" or
	// "sP[4 4](LRU)".
	Name() string
	// Init prepares the strategy for a fresh run of the given instance.
	// Strategies that need future knowledge receive the full instance.
	Init(inst core.Instance) error
	// OnHit reports that page p hit at the given access.
	OnHit(p core.PageID, at cache.Access)
	// OnFault reports a miss that needs a cell and returns the eviction
	// victim, or core.NoPage to place the fetched page in a free cell.
	// The returned victim must be resident and evictable (not in
	// flight); violations abort the run with an error.
	OnFault(p core.PageID, at cache.Access, v View) core.PageID
	// OnJoin reports a miss on a page already in flight (shared cell,
	// no victim needed).
	OnJoin(p core.PageID, at cache.Access)
}

// Ticker is an optional Strategy extension for voluntary evictions: pages
// evicted without a fault, before any request of the current step is
// served. This models the paper's "forcing" algorithms (Theorem 4) and
// dynamic partitions that shrink a part on a schedule (Theorem 1(3)).
// The strategy must have already dropped the returned pages from its own
// metadata; the simulator removes them from the cache ground truth.
type Ticker interface {
	OnTick(t int64, v View) []core.PageID
}

// View is the read-only window a strategy gets on simulator ground truth.
type View interface {
	// Resident reports whether p is in cache with its fetch complete.
	Resident(p core.PageID) bool
	// InFlight reports whether p occupies a cell but is still fetching.
	InFlight(p core.PageID) bool
	// Cached reports Resident or InFlight.
	Cached(p core.PageID) bool
	// Free returns the number of unoccupied cells.
	Free() int
	// K returns the cache size.
	K() int
	// Tau returns the fetch delay τ.
	Tau() int
	// Now returns the current simulation time.
	Now() int64
	// NextUse returns a lower bound on the absolute time at which page p
	// is next requested under the current alignment, or cache.NeverUsed
	// if p has no future request. This is the oracle used by FITF.
	NextUse(p core.PageID) int64
}

// Event describes one served request, for observers and tests.
type Event struct {
	Time   int64
	Core   int
	Index  int
	Page   core.PageID
	Fault  bool
	Join   bool        // fault that joined an in-flight fetch
	Victim core.PageID // NoPage if none (hit, join, or free cell)
}

// Observer receives every service event in order. Passing a nil observer
// to Run disables event delivery.
type Observer func(Event)

// Result summarises one simulation run.
type Result struct {
	// Faults[j] counts core j's misses (including in-flight joins).
	Faults []int64
	// Hits[j] counts core j's cache hits.
	Hits []int64
	// Finish[j] is the completion time of core j's last request (0 for
	// an empty sequence): the time at which the core could issue a
	// further request.
	Finish []int64
	// Makespan is the maximum finish time across cores.
	Makespan int64
	// VoluntaryEvictions counts pages evicted via OnTick.
	VoluntaryEvictions int64
}

// TotalFaults returns the sum of per-core fault counts — the paper's FTF
// objective.
func (r Result) TotalFaults() int64 {
	var s int64
	for _, f := range r.Faults {
		s += f
	}
	return s
}

// TotalHits returns the sum of per-core hit counts.
func (r Result) TotalHits() int64 {
	var s int64
	for _, h := range r.Hits {
		s += h
	}
	return s
}

// engine is the simulator state for one run.
type engine struct {
	inst core.Instance
	k    int
	tau  int64

	next []int64 // per-core clock
	idx  []int   // per-core next request index

	readyAt map[core.PageID]int64 // cached pages: time the fetch completes (≤ current time ⇒ resident)
	used    int

	now int64

	// occurrence lists for the oracle, one entry per (page, core) pair
	// that requests it; flat slices keep NextUse allocation-free.
	occ map[core.PageID]*occInfo
}

// occInfo indexes a page's occurrences per referencing core.
type occInfo struct {
	cores []int32
	lists [][]int32
	ptrs  []int
}

var _ View = (*engine)(nil)
var _ cache.Oracle = (*engine)(nil)

func (e *engine) Resident(p core.PageID) bool {
	r, ok := e.readyAt[p]
	return ok && r <= e.now
}

func (e *engine) InFlight(p core.PageID) bool {
	r, ok := e.readyAt[p]
	return ok && r > e.now
}

func (e *engine) Cached(p core.PageID) bool {
	_, ok := e.readyAt[p]
	return ok
}

func (e *engine) Free() int  { return e.k - e.used }
func (e *engine) K() int     { return e.k }
func (e *engine) Tau() int   { return int(e.tau) }
func (e *engine) Now() int64 { return e.now }

// NextUse implements the FITF oracle: a lower bound on the absolute time
// of p's next request. For core c whose next unserved request has index
// idx[c], the occurrence of p at index i ≥ idx[c] can be served no
// earlier than next[c] + (i - idx[c]), since each intervening request
// takes at least one step.
func (e *engine) NextUse(p core.PageID) int64 {
	info, ok := e.occ[p]
	if !ok {
		return cache.NeverUsed
	}
	best := cache.NeverUsed
	for i, c := range info.cores {
		// Advance this core's pointer past already-served occurrences.
		list := info.lists[i]
		j := info.ptrs[i]
		idx := int32(e.idx[c])
		for j < len(list) && list[j] < idx {
			j++
		}
		info.ptrs[i] = j
		if j == len(list) {
			continue
		}
		t := e.next[c] + int64(list[j]-idx)
		if t < best {
			best = t
		}
	}
	return best
}

// Run simulates strategy s on the instance and returns the result. The
// strategy is Init-ed first, so a single strategy value can be reused
// across runs. obs may be nil.
func Run(inst core.Instance, s Strategy, obs Observer) (Result, error) {
	if err := inst.Validate(); err != nil {
		return Result{}, err
	}
	if err := s.Init(inst); err != nil {
		return Result{}, fmt.Errorf("sim: strategy %s init: %w", s.Name(), err)
	}
	p := inst.R.NumCores()
	e := &engine{
		inst:    inst,
		k:       inst.P.K,
		tau:     int64(inst.P.Tau),
		next:    make([]int64, p),
		idx:     make([]int, p),
		readyAt: make(map[core.PageID]int64),
		occ:     make(map[core.PageID]*occInfo),
	}
	for c, seq := range inst.R {
		for i, pg := range seq {
			info := e.occ[pg]
			if info == nil {
				info = &occInfo{}
				e.occ[pg] = info
			}
			// Cores are scanned in increasing order, so if this page
			// already has a slot for core c it is necessarily the last
			// one appended — no need to search the whole slot list.
			slot := len(info.cores) - 1
			if slot < 0 || info.cores[slot] != int32(c) {
				info.cores = append(info.cores, int32(c))
				info.lists = append(info.lists, nil)
				info.ptrs = append(info.ptrs, 0)
				slot = len(info.cores) - 1
			}
			info.lists[slot] = append(info.lists[slot], int32(i))
		}
	}

	res := Result{
		Faults: make([]int64, p),
		Hits:   make([]int64, p),
		Finish: make([]int64, p),
	}
	ticker, _ := s.(Ticker)

	for {
		// Next service time: min clock over unfinished cores.
		t := int64(math.MaxInt64)
		for c := 0; c < p; c++ {
			if e.idx[c] < len(inst.R[c]) && e.next[c] < t {
				t = e.next[c]
			}
		}
		if t == int64(math.MaxInt64) {
			break
		}
		e.now = t

		if ticker != nil {
			for _, v := range ticker.OnTick(t, e) {
				if err := e.evict(v, t); err != nil {
					return res, fmt.Errorf("sim: strategy %s voluntary eviction: %w", s.Name(), err)
				}
				res.VoluntaryEvictions++
			}
		}

		for c := 0; c < p; c++ {
			if e.idx[c] >= len(inst.R[c]) || e.next[c] != t {
				continue
			}
			pg := inst.R[c][e.idx[c]]
			at := cache.Access{Core: c, Time: t, Index: e.idx[c]}
			ev := Event{Time: t, Core: c, Index: e.idx[c], Page: pg, Victim: core.NoPage}

			switch {
			case e.Resident(pg):
				res.Hits[c]++
				e.idx[c]++
				e.next[c] = t + 1
				s.OnHit(pg, at)
			case e.InFlight(pg):
				res.Faults[c]++
				ev.Fault, ev.Join = true, true
				e.idx[c]++
				e.next[c] = t + e.tau + 1
				s.OnJoin(pg, at)
			default:
				res.Faults[c]++
				ev.Fault = true
				// Advance this core's position before consulting the
				// strategy so the oracle sees the post-service state.
				e.idx[c]++
				e.next[c] = t + e.tau + 1
				victim := s.OnFault(pg, at, e)
				if victim == core.NoPage {
					if e.used >= e.k {
						return res, fmt.Errorf("sim: strategy %s requested a free cell but cache is full (t=%d core=%d page=%d)", s.Name(), t, c, pg)
					}
				} else {
					if err := e.evict(victim, t); err != nil {
						return res, fmt.Errorf("sim: strategy %s: %w", s.Name(), err)
					}
					ev.Victim = victim
				}
				e.readyAt[pg] = t + e.tau + 1
				e.used++
			}
			if e.idx[c] == len(inst.R[c]) {
				res.Finish[c] = e.next[c]
			}
			if obs != nil {
				obs(ev)
			}
		}
	}

	for c := 0; c < p; c++ {
		if res.Finish[c] > res.Makespan {
			res.Makespan = res.Finish[c]
		}
	}
	return res, nil
}

// evict removes a resident page from ground truth, validating the
// paper's eviction rules.
func (e *engine) evict(v core.PageID, t int64) error {
	r, ok := e.readyAt[v]
	if !ok {
		return fmt.Errorf("evict of non-cached page %d at t=%d", v, t)
	}
	if r > t {
		return fmt.Errorf("evict of in-flight page %d at t=%d (ready at %d)", v, t, r)
	}
	delete(e.readyAt, v)
	e.used--
	return nil
}

// ErrNotDisjoint is returned by strategies that require disjoint request
// sets when given overlapping sequences.
var ErrNotDisjoint = errors.New("sim: request set is not disjoint")
