// Package sim implements the multicore shared-cache paging model of
// Section 3 of López-Ortiz & Salinger as a deterministic discrete-time
// simulator.
//
// Timing model (normative):
//
//   - Time is discrete, starting at 0.
//   - Each core j has a clock next[j]: the earliest time its next request
//     may be served. Requests of a core are served strictly in order.
//   - Requests whose core clocks coincide are served "logically in a
//     fixed order": increasing core index. Each request observes the
//     cache effects of lower-numbered cores in the same step.
//   - A hit is served instantly: next[j] becomes t+1.
//   - A fault evicts its victim at time t; the cell then holds the
//     incoming page in a fetching state during [t, t+τ] and the page is
//     usable from t+τ+1. The faulting core's clock becomes t+τ+1 — the
//     paper's additive-τ delay on the remainder of the sequence.
//   - Pages being fetched cannot be evicted (the paper's convention that
//     the evicted cell stays unused until the fetch completes).
//   - If a core requests a page that is currently being fetched for
//     another core (possible only for non-disjoint request sets), the
//     request counts as a fault, the core is delayed the full τ, and the
//     in-flight cell is shared — no second cell is allocated. This case
//     is outside the paper's disjoint-sequence theorems and the choice is
//     documented in DESIGN.md.
//
// The only degree of freedom a paging strategy has is victim choice on a
// fault, plus (for strategies modelling the paper's "forcing" and
// repartitioning behaviours) voluntary evictions at step boundaries.
//
// # Implementation: the dense-ID fast path
//
// The engine keeps all ground truth in flat arrays indexed by page ID:
// residency is a single []int64 of fetch-completion times and the FITF
// oracle reads a flat occurrence table built in one pass over the input.
// Inputs whose page IDs are already dense (bounded by a small multiple of
// the total request count — every generated workload and every renumbered
// trace) are used as-is. Sparser inputs are transparently renumbered on
// entry; the engine then translates IDs at the strategy and observer
// boundary, so strategies and observers always see the instance's
// original page IDs and behave identically either way. RunReference
// retains the original map-based engine as an executable specification
// for differential tests.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"mcpaging/internal/cache"
	"mcpaging/internal/core"
)

// Strategy is a cache-management strategy in the paper's sense: a
// combination of a (possibly trivial) partition policy and an eviction
// policy. The simulator owns ground truth (residency, fetch state, free
// cells); the strategy owns replacement metadata and decides victims.
type Strategy interface {
	// Name identifies the strategy in tables, e.g. "S(LRU)" or
	// "sP[4 4](LRU)".
	Name() string
	// Init prepares the strategy for a fresh run of the given instance.
	// Strategies that need future knowledge receive the full instance.
	Init(inst core.Instance) error
	// OnHit reports that page p hit at the given access.
	OnHit(p core.PageID, at cache.Access)
	// OnFault reports a miss that needs a cell and returns the eviction
	// victim, or core.NoPage to place the fetched page in a free cell.
	// The returned victim must be resident and evictable (not in
	// flight); violations abort the run with an error.
	OnFault(p core.PageID, at cache.Access, v View) core.PageID
	// OnJoin reports a miss on a page already in flight (shared cell,
	// no victim needed).
	OnJoin(p core.PageID, at cache.Access)
}

// Ticker is an optional Strategy extension for voluntary evictions: pages
// evicted without a fault, before any request of the current step is
// served. This models the paper's "forcing" algorithms (Theorem 4) and
// dynamic partitions that shrink a part on a schedule (Theorem 1(3)).
// The strategy must have already dropped the returned pages from its own
// metadata; the simulator removes them from the cache ground truth.
type Ticker interface {
	OnTick(t int64, v View) []core.PageID
}

// Repartitioner is an optional Strategy marker: implementing it declares
// that the strategy's voluntary evictions are donor evictions — cells
// moving between parts of a dynamic partition — rather than plain
// flushes (FWF). The engines set Event.Donor on Tick events of such
// strategies, so observers can count partition changes uniformly across
// controllers.
type Repartitioner interface {
	Repartitions()
}

// CapacityAware is the optional Strategy extension elastic-capacity
// runs require: when Params.Capacity is a non-constant schedule, the
// engine announces every capacity change and, on shrinks, asks the
// strategy to surrender cells one at a time. Strategies that do not
// implement it are rejected for such runs (the engine cannot shed
// cells it has no victim for); with a nil or constant schedule every
// strategy runs unchanged.
type CapacityAware interface {
	// OnCapacity announces that the cache capacity is k from time t
	// on. The strategy must resize its internal structures without
	// evicting (the PR-5 partition contract: Resize never evicts);
	// eviction happens through the SurrenderOne calls that follow a
	// shrink. Grow announcements (k above the previous capacity) simply
	// open free cells.
	OnCapacity(k int, t int64)
	// SurrenderOne yields one evictable resident page toward a shrink,
	// or ok=false when every candidate is still in flight — the engine
	// then retries at the next service step, mirroring the OnTick shed
	// contract. The strategy must have already dropped the returned
	// page from its own metadata.
	SurrenderOne(v View) (core.PageID, bool)
}

// View is the read-only window a strategy gets on simulator ground truth.
// All page IDs cross this interface in the instance's original ID space,
// even when the engine has renumbered internally.
type View interface {
	// Resident reports whether p is in cache with its fetch complete.
	Resident(p core.PageID) bool
	// InFlight reports whether p occupies a cell but is still fetching.
	InFlight(p core.PageID) bool
	// Cached reports Resident or InFlight.
	Cached(p core.PageID) bool
	// Free returns the number of unoccupied cells.
	Free() int
	// K returns the cache size.
	K() int
	// Tau returns the fetch delay τ.
	Tau() int
	// Now returns the current simulation time.
	Now() int64
	// NextUse returns a lower bound on the absolute time at which page p
	// is next requested under the current alignment, or cache.NeverUsed
	// if p has no future request. This is the oracle used by FITF.
	NextUse(p core.PageID) int64
}

// Event describes one served request — or, when Tick is set, one
// voluntary eviction — for observers and tests. Page and Victim are
// always in the instance's original ID space.
//
// Tick events are emitted for pages evicted via Ticker.OnTick, before
// any request of the same step is served. They carry Core = -1 and
// Index = -1 (no request is being served), Page = Victim = the evicted
// page, and Fault/Join false. Observers that only care about served
// requests can filter on !Tick (or, equivalently for historical
// observers, on Fault/Join, which ticks never set).
//
// Elastic-capacity runs add two event shapes, both with Core = -1 and
// Index = -1. A capacity announcement (Capacity set, Tick clear)
// carries the new capacity in K and no pages. A capacity-pressure
// eviction (Capacity and Tick both set) is a cell shed via
// CapacityAware.SurrenderOne after a shrink: Page = Victim = the
// evicted page, exactly like a Ticker eviction, so occupancy
// bookkeeping composes; observers can separate the two shed causes on
// the Capacity flag. Fixed-capacity runs never set Capacity.
type Event struct {
	Time     int64
	Core     int
	Index    int
	Page     core.PageID
	Fault    bool
	Join     bool        // fault that joined an in-flight fetch
	Tick     bool        // voluntary eviction, not a served request
	Donor    bool        // Tick eviction donating a cell between parts
	Capacity bool        // capacity announcement or capacity-pressure eviction
	K        int         // new capacity (announcements only)
	Victim   core.PageID // NoPage if none (hit, join, or free cell)
}

// Observer receives every service event in order. Passing a nil observer
// to Run disables event delivery.
type Observer func(Event)

// MultiObserver fans one event stream out to several observers, calling
// them in argument order for every event. Nil observers are skipped; if
// none remain the result is nil, so the simulator's nil-observer fast
// path is preserved. A single live observer is returned as-is.
func MultiObserver(obs ...Observer) Observer {
	var live []Observer
	for _, o := range obs {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return func(e Event) {
		for _, o := range live {
			o(e) //mcvet:ignore obsguard live is filtered to non-nil observers at construction
		}
	}
}

// Result summarises one simulation run.
type Result struct {
	// Faults[j] counts core j's misses (including in-flight joins).
	Faults []int64
	// Hits[j] counts core j's cache hits.
	Hits []int64
	// Finish[j] is the completion time of core j's last request (0 for
	// an empty sequence): the time at which the core could issue a
	// further request.
	Finish []int64
	// Makespan is the maximum finish time across cores.
	Makespan int64
	// VoluntaryEvictions counts pages evicted via OnTick.
	VoluntaryEvictions int64
	// CapacityEvictions counts pages shed via SurrenderOne after
	// capacity shrinks; always zero for fixed-capacity runs.
	CapacityEvictions int64
}

// TotalFaults returns the sum of per-core fault counts — the paper's FTF
// objective.
func (r Result) TotalFaults() int64 {
	var s int64
	for _, f := range r.Faults {
		s += f
	}
	return s
}

// TotalHits returns the sum of per-core hit counts.
func (r Result) TotalHits() int64 {
	var s int64
	for _, h := range r.Hits {
		s += h
	}
	return s
}

// notCached is the readyAt sentinel for an absent page. Real
// fetch-completion times are t+τ+1 ≥ 1, so zero is never ambiguous and
// the array can be cleared with a memclr.
const notCached int64 = 0

// engine is the dense-ID simulator state for one run. Ground truth is
// indexed by dense page IDs 0..w-1; fwd/inv translate to and from the
// instance's original IDs when the input needed renumbering (both are nil
// on the direct path, where dense IDs are the original IDs).
type engine struct {
	k    int
	tau  int64
	now  int64
	used int
	w    int // dense universe size

	// Elastic capacity: sched is the run's non-constant schedule (nil
	// for the classic fixed-K model, including constant schedules, so
	// the serve loops pay one nil check per step); nextChange caches
	// sched.NextChange of the last applied boundary. k above is then
	// K(t), updated by applyCapacity on the canonical timeline.
	sched      core.CapacitySchedule
	nextChange int64

	seqs []core.Sequence // dense sequences (alias the input when direct)
	next []int64         // per-core clock
	idx  []int           // per-core next request index

	readyAt []int64 // per dense page: fetch completion time, notCached if absent

	fwd map[core.PageID]core.PageID // original → dense (nil when direct)
	inv []core.PageID               // dense → original (nil when direct)

	// owner[pg] is the core whose sequence contains dense page pg (-1
	// when unrequested), built lazily by disjointDense for the parallel
	// engine; ownerState caches the disjointness verdict per bind.
	owner      []int32
	ownerState uint8

	// Flat occurrence table for the oracle. The pairs of page pg occupy
	// slotStart[pg]..slotStart[pg+1]-1, one per core that requests pg, in
	// core order; pair s owns the contiguous range pos[pairStart[s]:
	// pairEnd[s]] of ascending within-sequence indices. pairPtr is the
	// per-pair cursor advanced lazily past served occurrences.
	//
	// The table is built lazily on the first NextUse of a bind (occBuilt),
	// so strategies that never consult the oracle skip the build entirely.
	// Laziness is safe mid-run: pairPtr only ever catches up to idx, so a
	// cursor starting from pairStart gives the same answers as one that
	// tracked the run from the beginning.
	occBuilt  bool
	occN      int // total request count, for the lazy build
	slotStart []int32
	pairCore  []int32
	pairStart []int32
	pairEnd   []int32
	pairPtr   []int32
	pos       []int32

	// scratch for table builds, reused across binds
	cnt      []int32
	pairCnt  []int32
	lastCore []int32
	slotCur  []int32
	posCur   []int32

	denseSeqs []core.Sequence // backing store for renumbered sequences
}

var _ View = (*engine)(nil)
var _ cache.Oracle = (*engine)(nil)

// denseID maps an original page ID to the engine's dense ID space. ok is
// false for pages outside the instance's universe.
//
//mcpaging:hotpath
func (e *engine) denseID(p core.PageID) (core.PageID, bool) {
	if e.fwd != nil {
		dp, ok := e.fwd[p]
		return dp, ok
	}
	if p < 0 || int(p) >= e.w {
		return 0, false
	}
	return p, true
}

//mcpaging:hotpath
func (e *engine) Resident(p core.PageID) bool {
	dp, ok := e.denseID(p)
	if !ok {
		return false
	}
	r := e.readyAt[dp]
	return r != notCached && r <= e.now
}

//mcpaging:hotpath
func (e *engine) InFlight(p core.PageID) bool {
	dp, ok := e.denseID(p)
	if !ok {
		return false
	}
	// notCached is 0 and now ≥ 0, so absent pages never satisfy this.
	return e.readyAt[dp] > e.now
}

//mcpaging:hotpath
func (e *engine) Cached(p core.PageID) bool {
	dp, ok := e.denseID(p)
	return ok && e.readyAt[dp] != notCached
}

// Free reports unoccupied cells, clamped at zero: after a capacity
// shrink whose shed is blocked on in-flight pages, used may briefly
// exceed K(t), and strategies must still see "no free cell".
func (e *engine) Free() int {
	if e.used >= e.k {
		return 0
	}
	return e.k - e.used
}
func (e *engine) K() int     { return e.k }
func (e *engine) Tau() int   { return int(e.tau) }
func (e *engine) Now() int64 { return e.now }

// NextUse implements the FITF oracle: a lower bound on the absolute time
// of p's next request. For core c whose next unserved request has index
// idx[c], the occurrence of p at index i ≥ idx[c] can be served no
// earlier than next[c] + (i - idx[c]), since each intervening request
// takes at least one step.
//
//mcpaging:hotpath
func (e *engine) NextUse(p core.PageID) int64 {
	dp, ok := e.denseID(p)
	if !ok {
		return cache.NeverUsed
	}
	if !e.occBuilt {
		e.buildOcc(e.occN)
		e.occBuilt = true
	}
	best := cache.NeverUsed
	for s := e.slotStart[dp]; s < e.slotStart[dp+1]; s++ {
		c := e.pairCore[s]
		idx := int32(e.idx[c])
		// Advance this pair's cursor past already-served occurrences.
		j, end := e.pairPtr[s], e.pairEnd[s]
		for j < end && e.pos[j] < idx {
			j++
		}
		e.pairPtr[s] = j
		if j == end {
			continue
		}
		t := e.next[c] + int64(e.pos[j]-idx)
		if t < best {
			best = t
		}
	}
	return best
}

// evictOriginal removes a resident page (named by its original ID) from
// ground truth, validating the paper's eviction rules.
//
//mcpaging:hotpath
func (e *engine) evictOriginal(v core.PageID, t int64) error {
	dv, ok := e.denseID(v)
	if ok && e.readyAt[dv] == notCached {
		ok = false
	}
	if !ok {
		return fmt.Errorf("evict of non-cached page %d at t=%d", v, t)
	}
	if r := e.readyAt[dv]; r > t {
		return fmt.Errorf("evict of in-flight page %d at t=%d (ready at %d)", v, t, r)
	}
	e.readyAt[dv] = notCached
	e.used--
	return nil
}

// reset prepares the engine for one run with the given parameters. All
// run state is length-preserving, so a Runner's arrays are recycled.
func (e *engine) reset(p core.Params) {
	e.k = p.K
	e.tau = int64(p.Tau)
	e.now = 0
	e.used = 0
	e.sched = nil
	e.nextChange = math.MaxInt64
	if p.Capacity != nil && !p.Capacity.Constant() {
		// Constant schedules are exactly the fixed-K model; keeping
		// sched nil for them makes that equivalence structural.
		e.sched = p.Capacity
		e.nextChange = p.Capacity.NextChange(0)
	}
	for i := range e.next {
		e.next[i] = 0
	}
	for i := range e.idx {
		e.idx[i] = 0
	}
	clear(e.readyAt)
	if e.occBuilt {
		copy(e.pairPtr, e.pairStart)
	}
}

// densePageLimit is the bound on max page ID below which an input is used
// without renumbering: a small multiple of the request count so that the
// flat arrays stay proportional to the input size.
func densePageLimit(n int) int {
	limit := 2 * n
	if limit < 1024 {
		limit = 1024
	}
	return limit
}

// Runner owns reusable simulation state for one request set: the dense
// page numbering, the occurrence table for the oracle, and every per-run
// array. Building a Runner costs one pass over the request set; each
// subsequent Run only resets O(w + pairs + p) state, so sweeping a K × τ
// × strategy grid over one workload amortizes all table building. A
// Runner is not safe for concurrent use — give each worker its own. The
// request set must not be mutated while the Runner is in use.
type Runner struct {
	rs    core.RequestSet
	e     engine
	par   parState
	stats EngineStats
	// ca is the current run's CapacityAware view of the strategy (nil
	// for fixed-capacity runs), held here so both engines' capacity
	// cold paths reach it without widening their signatures.
	ca CapacityAware
}

// NewRunner validates the request set and builds the reusable engine
// state for it.
func NewRunner(rs core.RequestSet) (*Runner, error) {
	r := &Runner{}
	if err := r.bind(rs); err != nil {
		return nil, err
	}
	return r, nil
}

// bind points the runner at a request set, rebuilding the dense tables
// while reusing array capacity from previous binds.
func (r *Runner) bind(rs core.RequestSet) error {
	if err := rs.Validate(); err != nil {
		return err
	}
	r.rs = rs
	e := &r.e
	n := rs.TotalLen()
	maxID := core.PageID(-1)
	for _, seq := range rs {
		for _, pg := range seq {
			if pg > maxID {
				maxID = pg
			}
		}
	}
	if int(maxID) < densePageLimit(n) {
		// Direct path: the input's own IDs index the flat arrays.
		e.fwd, e.inv = nil, nil
		e.seqs = rs
		e.w = int(maxID) + 1
	} else {
		// Renumber on entry: first appearance order, like core.Renumber.
		e.fwd = make(map[core.PageID]core.PageID, 64)
		inv := e.inv[:0]
		e.denseSeqs = e.denseSeqs[:0]
		for _, seq := range rs {
			ds := make(core.Sequence, len(seq))
			for i, pg := range seq {
				dp, ok := e.fwd[pg]
				if !ok {
					dp = core.PageID(len(inv))
					inv = append(inv, pg)
					e.fwd[pg] = dp
				}
				ds[i] = dp
			}
			e.denseSeqs = append(e.denseSeqs, ds)
		}
		e.inv = inv
		e.seqs = e.denseSeqs
		e.w = len(inv)
	}
	p := len(rs)
	e.next = growSlice(e.next, p)
	e.idx = growSlice(e.idx, p)
	e.readyAt = growSlice(e.readyAt, e.w)
	e.occBuilt = false
	e.occN = n
	e.ownerState = ownerUnknown
	r.par.flatBound = false
	return nil
}

// buildOcc builds the flat occurrence table in two O(n) passes (counting
// sort by page, then by (page, core) pair).
func (e *engine) buildOcc(n int) {
	w := e.w
	e.cnt = growSlice(e.cnt, w)
	e.pairCnt = growSlice(e.pairCnt, w)
	clear(e.cnt)
	clear(e.pairCnt)
	e.lastCore = growSlice(e.lastCore, w)
	for i := range e.lastCore {
		e.lastCore[i] = -1
	}
	for c, seq := range e.seqs {
		cc := int32(c)
		for _, pg := range seq {
			e.cnt[pg]++
			if e.lastCore[pg] != cc {
				e.lastCore[pg] = cc
				e.pairCnt[pg]++
			}
		}
	}
	e.slotStart = growSlice(e.slotStart, w+1)
	e.posCur = growSlice(e.posCur, w)
	var slots, positions int32
	for pg := 0; pg < w; pg++ {
		e.slotStart[pg] = slots
		slots += e.pairCnt[pg]
		e.posCur[pg] = positions
		positions += e.cnt[pg]
	}
	e.slotStart[w] = slots
	pairs := int(slots)
	e.pairCore = growSlice(e.pairCore, pairs)
	e.pairStart = growSlice(e.pairStart, pairs)
	e.pairEnd = growSlice(e.pairEnd, pairs)
	e.pairPtr = growSlice(e.pairPtr, pairs)
	e.pos = growSlice(e.pos, n)
	e.slotCur = growSlice(e.slotCur, w)
	copy(e.slotCur, e.slotStart[:w])
	for i := range e.lastCore {
		e.lastCore[i] = -1
	}
	for c, seq := range e.seqs {
		cc := int32(c)
		for i, pg := range seq {
			if e.lastCore[pg] != cc {
				// First occurrence of pg in core c: open its pair. Cores
				// are scanned in order, so the pair's positions fill a
				// contiguous range of pos.
				e.lastCore[pg] = cc
				s := e.slotCur[pg]
				e.slotCur[pg] = s + 1
				e.pairCore[s] = cc
				e.pairStart[s] = e.posCur[pg]
			}
			s := e.slotCur[pg] - 1
			e.pos[e.posCur[pg]] = int32(i)
			e.posCur[pg]++
			e.pairEnd[s] = e.posCur[pg]
		}
	}
	copy(e.pairPtr, e.pairStart)
}

// growSlice reslices s to length n, reallocating only when the capacity
// is insufficient. Contents are unspecified; callers reset what they use.
func growSlice[T int32 | int64 | int](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// Bind points the runner at a different request set, rebuilding the
// dense tables while reusing array capacity from previous binds. It is
// the rebind half of the Runner-per-worker pattern: a long-lived worker
// keeps one Runner and Binds it to each incoming workload, so table and
// per-run allocations amortize across jobs that share nothing but the
// worker.
func (r *Runner) Bind(rs core.RequestSet) error { return r.bind(rs) }

// Release drops the runner's references to the bound request set (and
// any renumbered copy of it) while keeping array capacity for the next
// Bind. Call it when a worker parks the runner between jobs so the
// workload's memory can be reclaimed.
func (r *Runner) Release() { r.release() }

// cancelCheckEvery is how many served requests pass between context
// cancellation checks in RunContext: frequent enough that a cancelled
// run aborts in well under a millisecond, rare enough that the check is
// invisible in the serve-loop profile.
const cancelCheckEvery = 1024

// Run simulates strategy s with the given parameters on the runner's
// request set. The strategy is Init-ed first, so a single strategy value
// can be reused across runs. obs may be nil.
func (r *Runner) Run(params core.Params, s Strategy, obs Observer) (Result, error) {
	//mcvet:ignore ctxflow Run is the documented synchronous wrapper: a caller without a ctx is its own cancellation root
	return r.RunContext(context.Background(), params, s, obs)
}

// RunContext is Run with cooperative cancellation: the serve loop polls
// ctx every cancelCheckEvery served requests and aborts with an error
// wrapping ctx.Err() when the context is cancelled or its deadline
// passes. The partial Result accumulated so far is returned alongside
// the error. A nil ctx behaves like context.Background().
//
//mcpaging:hotpath
func (r *Runner) RunContext(ctx context.Context, params core.Params, s Strategy, obs Observer) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := params.Validate(); err != nil {
		return Result{}, err
	}
	if err := s.Init(core.Instance{R: r.rs, P: params}); err != nil {
		return Result{}, fmt.Errorf("sim: strategy %s init: %w", s.Name(), err)
	}
	e := &r.e
	e.reset(params)
	p := len(r.rs)
	res := Result{
		Faults: make([]int64, p),
		Hits:   make([]int64, p),
		Finish: make([]int64, p),
	}
	ticker, _ := s.(Ticker)
	_, repart := s.(Repartitioner)
	ca, _ := s.(CapacityAware)
	r.ca = ca
	if e.sched != nil {
		if r.ca == nil {
			return res, fmt.Errorf("sim: strategy %s does not support time-varying capacity (schedule %s)", s.Name(), e.sched)
		}
		// The model needs K(t) >= active cores throughout: with fewer
		// cells than faulting cores, every cell can be pinned by an
		// in-flight fetch and a fault has nothing to evict.
		active := 0
		for c := range r.rs {
			if len(r.rs[c]) > 0 {
				active++
			}
		}
		if e.sched.Min() < active {
			return res, fmt.Errorf("sim: capacity schedule %s reaches %d cells, below %d active cores", e.sched, e.sched.Min(), active)
		}
	}
	if ticker == nil && r.parallelReady() {
		r.stats.ParallelRuns++
		return r.runParallel(ctx, s, obs, &res)
	}
	r.stats.SequentialRuns++
	seqs := e.seqs
	var served, nextCheck int64 = 0, cancelCheckEvery

	for {
		// Cooperative cancellation: one poll per cancelCheckEvery served
		// requests (each outer iteration serves at least one request, so
		// the gap between polls is bounded).
		if served >= nextCheck {
			nextCheck = served + cancelCheckEvery
			if err := ctx.Err(); err != nil {
				return res, fmt.Errorf("sim: strategy %s run aborted after %d requests: %w", s.Name(), served, err)
			}
		}
		// Next service time: min clock over unfinished cores.
		t := int64(math.MaxInt64)
		for c := 0; c < p; c++ {
			if e.idx[c] < len(seqs[c]) && e.next[c] < t {
				t = e.next[c]
			}
		}
		if t == int64(math.MaxInt64) {
			break
		}
		e.now = t

		if e.sched != nil && (t >= e.nextChange || e.used > e.k) {
			if err := r.applyCapacity(t, s, obs, &res, false); err != nil {
				return res, err
			}
		}

		if ticker != nil {
			for _, v := range ticker.OnTick(t, e) {
				if err := e.evictOriginal(v, t); err != nil {
					return res, fmt.Errorf("sim: strategy %s voluntary eviction: %w", s.Name(), err)
				}
				res.VoluntaryEvictions++
				if obs != nil {
					obs(Event{Time: t, Core: -1, Index: -1, Page: v, Tick: true, Donor: repart, Victim: v})
				}
			}
		}

		for c := 0; c < p; c++ {
			if e.idx[c] >= len(seqs[c]) || e.next[c] != t {
				continue
			}
			i := e.idx[c]
			served++
			pg := seqs[c][i]
			op := pg // original ID for strategies and observers
			if e.inv != nil {
				op = e.inv[pg]
			}
			at := cache.Access{Core: c, Time: t, Index: i}
			ev := Event{Time: t, Core: c, Index: i, Page: op, Victim: core.NoPage}

			ready := e.readyAt[pg]
			switch {
			case ready != notCached && ready <= t: // hit
				res.Hits[c]++
				e.idx[c] = i + 1
				e.next[c] = t + 1
				s.OnHit(op, at)
			case ready != notCached: // in-flight join
				res.Faults[c]++
				ev.Fault, ev.Join = true, true
				e.idx[c] = i + 1
				e.next[c] = t + e.tau + 1
				s.OnJoin(op, at)
			default: // fault
				res.Faults[c]++
				ev.Fault = true
				// Advance this core's position before consulting the
				// strategy so the oracle sees the post-service state.
				e.idx[c] = i + 1
				e.next[c] = t + e.tau + 1
				victim := s.OnFault(op, at, e)
				if victim == core.NoPage {
					if e.used >= e.k {
						return res, fmt.Errorf("sim: strategy %s requested a free cell but cache is full (t=%d core=%d page=%d)", s.Name(), t, c, op)
					}
				} else {
					if err := e.evictOriginal(victim, t); err != nil {
						return res, fmt.Errorf("sim: strategy %s: %w", s.Name(), err)
					}
					ev.Victim = victim
				}
				e.readyAt[pg] = t + e.tau + 1
				e.used++
			}
			if e.idx[c] == len(seqs[c]) {
				res.Finish[c] = e.next[c]
			}
			if obs != nil {
				obs(ev)
			}
		}
	}

	for c := 0; c < p; c++ {
		if res.Finish[c] > res.Makespan {
			res.Makespan = res.Finish[c]
		}
	}
	return res, nil
}

// applyCapacity is the elastic-capacity cold path, shared verbatim by
// the sequential and speculative engines so the capacity timeline is
// engine-independent. Called at service time t when a schedule
// boundary has been reached (t >= nextChange) or a previous shrink is
// still shedding (used > k): it announces the net capacity At(t) —
// several breakpoints between two service steps collapse into one
// announcement, deterministically in t — and then reclaims
// over-capacity cells one SurrenderOne victim at a time. In-flight
// pages cannot be evicted (the paper's rule); when only those remain
// the shed stops and is retried at every subsequent service step.
//
//mcpaging:coldpath capacity boundaries are rare relative to served requests
func (r *Runner) applyCapacity(t int64, s Strategy, obs Observer, res *Result, cut bool) error {
	e := &r.e
	if t >= e.nextChange {
		if k := e.sched.At(t); k != e.k {
			e.k = k
			r.ca.OnCapacity(k, t)
			if obs != nil {
				obs(Event{Time: t, Core: -1, Index: -1, Page: core.NoPage, Victim: core.NoPage, Capacity: true, K: k})
			}
		}
		e.nextChange = e.sched.NextChange(t)
	}
	for e.used > e.k {
		v, ok := r.ca.SurrenderOne(e)
		if !ok {
			break
		}
		if err := e.evictOriginal(v, t); err != nil {
			return fmt.Errorf("sim: strategy %s capacity shed: %w", s.Name(), err)
		}
		res.CapacityEvictions++
		if cut {
			r.cutSpeculation(v)
		}
		if obs != nil {
			obs(Event{Time: t, Core: -1, Index: -1, Page: v, Victim: v, Tick: true, Capacity: true})
		}
	}
	return nil
}

// release drops references to the caller's request set (and renumbered
// copies of it) while keeping array capacity for the next bind.
func (r *Runner) release() {
	r.rs = nil
	r.e.seqs = nil
	r.e.fwd = nil
	r.e.sched = nil
	r.ca = nil
	for i := range r.e.denseSeqs {
		r.e.denseSeqs[i] = nil
	}
	r.par.workers = 0
	r.par.flatBound = false
	r.e.ownerState = ownerUnknown
}

// runnerPool recycles Runner state across Run calls so one-shot runs
// (experiments, tests, solvers) also amortize table allocations.
var runnerPool = sync.Pool{New: func() interface{} { return new(Runner) }}

// Run simulates strategy s on the instance and returns the result. The
// strategy is Init-ed first, so a single strategy value can be reused
// across runs. obs may be nil.
//
// Run rebuilds the dense tables for inst.R on every call (into pooled
// arrays, so steady-state allocation is near zero). Callers that sweep
// many parameter or strategy combinations over one request set should
// hold a Runner instead.
func Run(inst core.Instance, s Strategy, obs Observer) (Result, error) {
	//mcvet:ignore ctxflow Run is the documented synchronous wrapper: a caller without a ctx is its own cancellation root
	return RunContext(context.Background(), inst, s, obs)
}

// RunContext is Run with cooperative cancellation; see
// Runner.RunContext for the abort semantics.
func RunContext(ctx context.Context, inst core.Instance, s Strategy, obs Observer) (Result, error) {
	if err := inst.Validate(); err != nil {
		return Result{}, err
	}
	r := runnerPool.Get().(*Runner)
	defer func() {
		r.release()
		runnerPool.Put(r)
	}()
	if err := r.bind(inst.R); err != nil {
		return Result{}, err
	}
	return r.RunContext(ctx, inst.P, s, obs)
}

// ErrNotDisjoint is returned by strategies that require disjoint request
// sets when given overlapping sequences.
var ErrNotDisjoint = errors.New("sim: request set is not disjoint")
