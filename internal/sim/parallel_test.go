package sim_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"mcpaging/internal/core"
	"mcpaging/internal/policy"
	"mcpaging/internal/sim"
)

// parWorkerCounts is the worker matrix every parallel differential test
// sweeps: 1 exercises the epoch engine with inline scanning (fully
// deterministic scheduling), 4 and 8 exercise the pool with fewer/more
// lanes than the corpus's core counts.
var parWorkerCounts = []int{1, 4, 8}

// runParallelEvents runs the instance through a Runner with the given
// worker setting and returns the result, event stream, and engine
// stats.
func runParallelEvents(t *testing.T, in core.Instance, s sim.Strategy, workers int) (sim.Result, []sim.Event, sim.EngineStats) {
	t.Helper()
	rn, err := sim.NewRunner(in.R)
	if err != nil {
		t.Fatal(err)
	}
	rn.SetParallel(workers)
	var evs []sim.Event
	res, err := rn.Run(in.P, s, func(e sim.Event) { evs = append(evs, e) })
	if err != nil {
		t.Fatal(err)
	}
	return res, evs, rn.Stats()
}

// TestParallelMatchesSequential replays the same randomized corpus as
// TestDenseMatchesReference through the speculative parallel engine at
// 1, 4, and 8 workers and requires byte-identical results and event
// streams against both the sequential dense engine and the map-based
// reference engine. The knobs are shrunk so the tiny corpus instances
// actually engage the epoch engine, turn over many epochs, and hit the
// rollback path; the stats assertions at the end prove the test is not
// vacuously passing through the sequential fallback.
func TestParallelMatchesSequential(t *testing.T) {
	restore := sim.SetParKnobs(1, 7, 2)
	defer restore()

	var parallelRuns, epochs, cuts int64
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		in := randomInstance(rng, i)
		p := in.R.NumCores()
		for si, mk := range diffStrategies(in.P.K, p) {
			label := fmt.Sprintf("inst=%d strat=%d (p=%d K=%d tau=%d)", i, si, p, in.P.K, in.P.Tau)

			var refEv []sim.Event
			ref, err := sim.RunReference(in, mk(), func(e sim.Event) { refEv = append(refEv, e) })
			if err != nil {
				t.Fatalf("%s: reference: %v", label, err)
			}

			for _, w := range parWorkerCounts {
				got, gotEv, stats := runParallelEvents(t, in, mk(), w)
				parallelRuns += stats.ParallelRuns
				epochs += stats.Epochs
				cuts += stats.Cuts
				if !reflect.DeepEqual(got, ref) {
					t.Fatalf("%s w=%d: results differ:\nparallel  %+v\nreference %+v", label, w, got, ref)
				}
				if len(gotEv) != len(refEv) {
					t.Fatalf("%s w=%d: %d events vs %d in reference", label, w, len(gotEv), len(refEv))
				}
				for j := range gotEv {
					if gotEv[j] != refEv[j] {
						t.Fatalf("%s w=%d: event %d differs:\nparallel  %+v\nreference %+v",
							label, w, j, gotEv[j], refEv[j])
					}
				}
			}
		}
	}
	if parallelRuns == 0 || epochs == 0 {
		t.Fatalf("parallel engine never engaged (runs=%d epochs=%d): differential test is vacuous", parallelRuns, epochs)
	}
	if cuts == 0 {
		t.Fatalf("rollback path never exercised (epochs=%d): corpus or knobs too tame", epochs)
	}
}

// TestParallelRollbackStress drives the engine through a workload built
// to maximize speculation rollback: every core cycles through a small
// private page set while the shared cache is far too small, so almost
// every access faults and almost every eviction lands inside another
// core's speculated future. The event stream must still match the
// sequential engine exactly.
func TestParallelRollbackStress(t *testing.T) {
	restore := sim.SetParKnobs(1, 64, 16)
	defer restore()

	const p, perCore, cycle = 3, 3000, 4
	rs := make(core.RequestSet, p)
	for c := range rs {
		seq := make(core.Sequence, perCore)
		for i := range seq {
			seq[i] = core.PageID(c*cycle + i%cycle)
		}
		rs[c] = seq
	}
	params := core.Params{K: 6, Tau: 3}
	in := core.Instance{R: rs, P: params}

	var refEv []sim.Event
	ref, err := sim.Run(in, policy.NewShared(lru()), func(e sim.Event) { refEv = append(refEv, e) })
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range parWorkerCounts {
		got, gotEv, stats := runParallelEvents(t, in, policy.NewShared(lru()), w)
		if stats.ParallelRuns != 1 {
			t.Fatalf("w=%d: expected a parallel run, stats %+v", w, stats)
		}
		if stats.Cuts == 0 {
			t.Fatalf("w=%d: rollback stress produced no cuts, stats %+v", w, stats)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("w=%d: results differ:\nparallel   %+v\nsequential %+v", w, got, ref)
		}
		if len(gotEv) != len(refEv) {
			t.Fatalf("w=%d: %d events vs %d sequential", w, len(gotEv), len(refEv))
		}
		for j := range gotEv {
			if gotEv[j] != refEv[j] {
				t.Fatalf("w=%d: event %d differs:\nparallel   %+v\nsequential %+v", w, j, gotEv[j], refEv[j])
			}
		}
	}
}

// tickerWrap turns any strategy into a (no-op) Ticker, which must force
// the sequential engine: voluntary evictions are step-boundary
// synchronization the epoch engine does not speculate across.
type tickerWrap struct{ sim.Strategy }

func (tickerWrap) OnTick(t int64, v sim.View) []core.PageID { return nil }

// TestParallelFallback checks every eligibility rule: the speculative
// engine must decline p=1, non-disjoint request sets, instances below
// the size threshold, Ticker strategies, and workers=0 — and engage on
// a large disjoint multi-core instance.
func TestParallelFallback(t *testing.T) {
	big := func(p int, disjoint bool) core.RequestSet {
		rs := make(core.RequestSet, p)
		for c := range rs {
			seq := make(core.Sequence, 4096)
			for i := range seq {
				pg := core.PageID(i % 16)
				if disjoint {
					pg += core.PageID(c * 16)
				}
				seq[i] = pg
			}
			rs[c] = seq
		}
		return rs
	}
	params := core.Params{K: 48, Tau: 4}
	cases := []struct {
		name    string
		rs      core.RequestSet
		workers int
		ticker  bool
		want    bool // parallel engine engaged
	}{
		{"engages", big(2, true), 4, false, true},
		{"workers=1 still engages", big(2, true), 1, false, true},
		{"workers=0", big(2, true), 0, false, false},
		{"p=1", big(1, true), 4, false, false},
		{"shared pages", big(2, false), 4, false, false},
		{"ticker strategy", big(2, true), 4, true, false},
	}
	for _, tc := range cases {
		rn, err := sim.NewRunner(tc.rs)
		if err != nil {
			t.Fatal(err)
		}
		rn.SetParallel(tc.workers)
		s := sim.Strategy(policy.NewShared(lru()))
		if tc.ticker {
			s = tickerWrap{s}
		}
		if _, err := rn.Run(params, s, nil); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		stats := rn.Stats()
		if got := stats.ParallelRuns == 1; got != tc.want {
			t.Fatalf("%s: parallel engaged=%v, want %v (stats %+v)", tc.name, got, tc.want, stats)
		}
	}

	// Below the size threshold (with production knobs).
	small := core.RequestSet{
		{0, 1, 2, 0, 1, 2},
		{3, 4, 5, 3, 4, 5},
	}
	rn, err := sim.NewRunner(small)
	if err != nil {
		t.Fatal(err)
	}
	rn.SetParallel(4)
	if _, err := rn.Run(core.Params{K: 4, Tau: 2}, policy.NewShared(lru()), nil); err != nil {
		t.Fatal(err)
	}
	if st := rn.Stats(); st.ParallelRuns != 0 || st.SequentialRuns != 1 {
		t.Fatalf("tiny instance: expected sequential fallback, stats %+v", st)
	}
}

// TestParallelRunnerReuse checks that a parallel Runner replayed over
// the same instance produces identical results every time, and that
// interleaving engines on one Runner is safe.
func TestParallelRunnerReuse(t *testing.T) {
	restore := sim.SetParKnobs(1, 64, 16)
	defer restore()

	rng := rand.New(rand.NewSource(29))
	for i := 0; i < 10; i++ {
		in := randomInstance(rng, i+1) // skip sparse offset alignment of inst 0
		rn, err := sim.NewRunner(in.R)
		if err != nil {
			t.Fatal(err)
		}
		want, err := rn.Run(in.P, policy.NewShared(lru()), nil)
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 4; rep++ {
			rn.SetParallel(rep % 3 * 4) // 0, 4, 8, 0
			got, err := rn.Run(in.P, policy.NewShared(lru()), nil)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("inst=%d rep=%d (workers=%d): result drifted:\nfirst %+v\nnow   %+v",
					i, rep, rn.Parallel(), want, got)
			}
		}
	}
}

// TestRunParallelHelper checks the package-level one-shot entry point
// against sim.Run.
func TestRunParallelHelper(t *testing.T) {
	restore := sim.SetParKnobs(1, 64, 16)
	defer restore()

	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 10; i++ {
		in := randomInstance(rng, i)
		want, err := sim.Run(in, policy.NewShared(lru()), nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sim.RunParallel(in, policy.NewShared(lru()), nil, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("inst=%d: RunParallel %+v vs Run %+v", i, got, want)
		}
	}
}

// TestParallelRunAllocBound extends the warmed-Runner allocation bound
// to the speculative engine's steady state: after the first run has
// sized the segment and overlay arrays, a parallel run may allocate no
// more than the sequential per-run constants (the three Result slices
// plus strategy Init) — no per-epoch or per-goroutine garbage.
func TestParallelRunAllocBound(t *testing.T) {
	rs := make(core.RequestSet, 4)
	for c := range rs {
		seq := make(core.Sequence, 4096)
		for i := range seq {
			seq[i] = core.PageID(c*16 + i%16)
		}
		rs[c] = seq
	}
	rn, err := sim.NewRunner(rs)
	if err != nil {
		t.Fatal(err)
	}
	rn.SetParallel(4)
	params := core.Params{K: 64, Tau: 4}
	s := policy.NewShared(lru())
	if _, err := rn.Run(params, s, nil); err != nil {
		t.Fatal(err)
	}
	if st := rn.Stats(); st.ParallelRuns == 0 {
		t.Fatalf("warmup did not engage the parallel engine: %+v", st)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := rn.Run(params, s, nil); err != nil {
			t.Fatal(err)
		}
	})
	const bound = 4
	if allocs > bound {
		t.Fatalf("warmed parallel Runner.Run: %v allocs/run, want at most %d (16384 requests served)", allocs, bound)
	}
}

// FuzzParallelEquivalence is the property half of the differential
// suite: for any generator seed, the parallel engine at 1, 4, and 8
// workers must reproduce the sequential engine's result and event
// stream exactly.
func FuzzParallelEquivalence(f *testing.F) {
	for _, seed := range []int64{1, 2, 3, 17, 42, 1 << 40} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		restore := sim.SetParKnobs(1, 7, 2)
		defer restore()

		rng := rand.New(rand.NewSource(seed))
		in := randomInstance(rng, int(uint64(seed)%6))
		p := in.R.NumCores()
		for si, mk := range diffStrategies(in.P.K, p) {
			var refEv []sim.Event
			ref, err := sim.Run(in, mk(), func(e sim.Event) { refEv = append(refEv, e) })
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range parWorkerCounts {
				got, gotEv, _ := runParallelEvents(t, in, mk(), w)
				if !reflect.DeepEqual(got, ref) {
					t.Fatalf("seed=%d strat=%d w=%d: %+v vs %+v", seed, si, w, got, ref)
				}
				if !reflect.DeepEqual(gotEv, refEv) {
					t.Fatalf("seed=%d strat=%d w=%d: event streams differ", seed, si, w)
				}
			}
		}
	})
}
