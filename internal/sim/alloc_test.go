package sim_test

import (
	"testing"

	"mcpaging/internal/cache"
	"mcpaging/internal/core"
	"mcpaging/internal/policy"
	"mcpaging/internal/sim"
)

// A warmed Runner's serve loop is annotated //mcpaging:hotpath and must
// not allocate per request: the only allocations a whole Run may make
// are the per-run constants — the three Result slices plus the shared
// policy's Init. The bound is independent of the request count, which is
// what makes sweeps O(1) in garbage per run.
func TestRunnerRunAllocBound(t *testing.T) {
	rs := make(core.RequestSet, 2)
	for c := range rs {
		seq := make(core.Sequence, 4096)
		for i := range seq {
			seq[i] = core.PageID(c*16 + i%16)
		}
		rs[c] = seq
	}
	rn, err := sim.NewRunner(rs)
	if err != nil {
		t.Fatal(err)
	}
	params := core.Params{K: 64, Tau: 4}
	s := policy.NewShared(lru())
	if _, err := rn.Run(params, s, nil); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := rn.Run(params, s, nil); err != nil {
			t.Fatal(err)
		}
	})
	const bound = 4
	if allocs > bound {
		t.Fatalf("warmed Runner.Run: %v allocs/run, want at most %d (8192 requests served)", allocs, bound)
	}
}

// The composed controller × policy strategies must keep the same
// per-run allocation bound as the hand-rolled ones they replaced: a
// warmed Partitioned's fault/hit path is annotated //mcpaging:hotpath
// and reuses its parts, ownership map and occupancy vector across runs,
// so garbage stays O(1) regardless of request count.
func TestComposedRunAllocBound(t *testing.T) {
	rs := make(core.RequestSet, 2)
	for c := range rs {
		seq := make(core.Sequence, 4096)
		for i := range seq {
			seq[i] = core.PageID(c*16 + i%16)
		}
		rs[c] = seq
	}
	rn, err := sim.NewRunner(rs)
	if err != nil {
		t.Fatal(err)
	}
	params := core.Params{K: 64, Tau: 4}
	arc := func() cache.Policy { return cache.NewARC() }
	for _, s := range []sim.Strategy{
		policy.NewDynamicLRU(),
		policy.NewPartitioned(policy.GlobalLRUController(), arc),
		policy.NewStatic(policy.EvenSizes(64, 2), arc),
	} {
		if _, err := rn.Run(params, s, nil); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(50, func() {
			if _, err := rn.Run(params, s, nil); err != nil {
				t.Fatal(err)
			}
		})
		const bound = 4
		if allocs > bound {
			t.Fatalf("%s: %v allocs/run, want at most %d (8192 requests served)", s.Name(), allocs, bound)
		}
	}
}
