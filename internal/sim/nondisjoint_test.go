package sim_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mcpaging/internal/cache"
	"mcpaging/internal/core"
	"mcpaging/internal/policy"
	"mcpaging/internal/sim"
)

// Property tests for the non-disjoint (shared-page) regime, where the
// paper's theorems do not apply but the simulator still must keep its
// invariants: accounting, join semantics, and single-cell occupancy per
// page.

func sharedWorkload(rng *rand.Rand, p, length, private, shared int) core.RequestSet {
	rs := make(core.RequestSet, p)
	for j := range rs {
		s := make(core.Sequence, length)
		for i := range s {
			if rng.Intn(2) == 0 {
				s[i] = core.PageID(1<<20) + core.PageID(rng.Intn(shared))
			} else {
				s[i] = core.PageID(1000*j + rng.Intn(private))
			}
		}
		rs[j] = s
	}
	return rs
}

func TestNonDisjointAccounting(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 2 + rng.Intn(3)
		rs := sharedWorkload(rng, p, 1+rng.Intn(60), 5, 4)
		in := core.Instance{R: rs, P: core.Params{K: p + 2 + rng.Intn(6), Tau: rng.Intn(4)}}
		joins := 0
		res, err := sim.Run(in, policy.NewShared(lru()), func(e sim.Event) {
			if e.Join {
				joins++
			}
		})
		if err != nil {
			return false
		}
		if res.TotalFaults()+res.TotalHits() != int64(rs.TotalLen()) {
			return false
		}
		// Joins only occur on non-disjoint inputs and never carry a
		// victim.
		if joins > 0 && rs.Disjoint() {
			return false
		}
		// Each core still satisfies the finish identity: joins count as
		// faults with the full τ delay.
		for j := range rs {
			if res.Finish[j] != int64(len(rs[j]))+res.Faults[j]*int64(in.P.Tau) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestNonDisjointCellConservation: the number of distinct cached pages
// never exceeds K, even when cores share pages and join fetches. The
// strategy view's Free() exposes the ground truth; we probe it at every
// fault.
func TestNonDisjointCellConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rs := sharedWorkload(rng, 3, 50, 4, 3)
		k := 5
		in := core.Instance{R: rs, P: core.Params{K: k, Tau: 2}}
		ok := true
		probe := &freeProbe{inner: policy.NewShared(lru()), ok: &ok}
		if _, err := sim.Run(in, probe, nil); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

type freeProbe struct {
	inner sim.Strategy
	ok    *bool
}

func (f *freeProbe) Name() string                          { return "free-probe" }
func (f *freeProbe) Init(in core.Instance) error           { return f.inner.Init(in) }
func (f *freeProbe) OnHit(p core.PageID, at cache.Access)  { f.inner.OnHit(p, at) }
func (f *freeProbe) OnJoin(p core.PageID, at cache.Access) { f.inner.OnJoin(p, at) }
func (f *freeProbe) OnFault(p core.PageID, at cache.Access, v sim.View) core.PageID {
	if v.Free() < 0 || v.Free() > v.K() {
		*f.ok = false
	}
	return f.inner.OnFault(p, at, v)
}

// TestSharedPagesReduceFaults: sharing pages across cores can only be
// served from one cell, so a fully shared workload with a hot set that
// fits never faults after warmup.
func TestSharedPagesReduceFaults(t *testing.T) {
	rs := make(core.RequestSet, 3)
	for j := range rs {
		s := make(core.Sequence, 60)
		for i := range s {
			s[i] = core.PageID(i % 4) // all cores share 4 pages
		}
		rs[j] = s
	}
	in := core.Instance{R: rs, P: core.Params{K: 6, Tau: 1}}
	res, err := sim.Run(in, policy.NewShared(lru()), nil)
	if err != nil {
		t.Fatal(err)
	}
	// 4 compulsory fetches; simultaneous first-round requests join them
	// (2 extra joins per page at most). Everything after is hits.
	if res.TotalFaults() > 12 {
		t.Fatalf("faults = %d, want ≤ 12 (4 fetches + joins)", res.TotalFaults())
	}
}

// TestRenumberingInvariance: strategies treat pages as opaque IDs, so
// renumbering a request set must not change fault counts, finish times
// or makespan (for policies whose tie-breaks do not involve page IDs).
func TestRenumberingInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + rng.Intn(3)
		rs := sharedWorkload(rng, p, 1+rng.Intn(50), 5, 3)
		renamed, _ := core.Renumber(rs)
		k := p + 1 + rng.Intn(5)
		tau := rng.Intn(3)
		for _, mk := range []func() sim.Strategy{
			func() sim.Strategy { return policy.NewShared(lru()) },
			func() sim.Strategy { return policy.NewDynamicLRU() },
		} {
			a, err := sim.Run(core.Instance{R: rs, P: core.Params{K: k, Tau: tau}}, mk(), nil)
			if err != nil {
				return false
			}
			b, err := sim.Run(core.Instance{R: renamed, P: core.Params{K: k, Tau: tau}}, mk(), nil)
			if err != nil {
				return false
			}
			if a.TotalFaults() != b.TotalFaults() || a.Makespan != b.Makespan {
				return false
			}
			for j := range a.Faults {
				if a.Faults[j] != b.Faults[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
