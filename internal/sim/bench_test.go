package sim_test

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"mcpaging/internal/cache"
	"mcpaging/internal/core"
	"mcpaging/internal/policy"
	"mcpaging/internal/sim"
	"mcpaging/internal/trace"
)

// benchShape is one workload of the serve-path benchmark matrix.
type benchShape struct {
	name   string
	rs     core.RequestSet
	params core.Params
	strat  func() sim.Strategy
}

// benchShapes builds workloads engineered so one serve path dominates
// (hit ≈ array lookup + Touch; fault ≈ eviction + table update; join ≈
// in-flight check + Touch). The hit and fault shapes use disjoint
// per-core pools, so they are eligible for the speculative parallel
// engine; join requires overlapping sequences, which the parallel
// engine declines — its par variants measure the fallback check, not a
// parallel run.
func benchShapes(perCore int) []benchShape {
	shapes := make([]benchShape, 0, 3)

	// 4 cores cycling disjoint 16-page working sets inside K=128:
	// everything past the first 64 requests is a hit.
	hit := make(core.RequestSet, 4)
	for c := range hit {
		seq := make(core.Sequence, perCore)
		for i := range seq {
			seq[i] = core.PageID(c*16 + i%16)
		}
		hit[c] = seq
	}
	shapes = append(shapes, benchShape{"hit", hit, core.Params{K: 128, Tau: 8}, nil})

	// 4 cores scanning disjoint 512-page loops with K=128 under LRU:
	// the classic sequential-flooding pattern, every request faults.
	fault := make(core.RequestSet, 4)
	for c := range fault {
		seq := make(core.Sequence, perCore)
		for i := range seq {
			seq[i] = core.PageID(c*512 + i%512)
		}
		fault[c] = seq
	}
	shapes = append(shapes, benchShape{"fault", fault, core.Params{K: 128, Tau: 8}, nil})

	// 4 cores issuing the same 512-page scan in lockstep with τ=8:
	// core 0 faults and the rest join the in-flight fetch, so ~3/4 of
	// all requests take the join path.
	seq := make(core.Sequence, perCore)
	for i := range seq {
		seq[i] = core.PageID(i % 512)
	}
	shapes = append(shapes, benchShape{"join", core.RequestSet{seq, seq, seq, seq}, core.Params{K: 128, Tau: 8}, nil})

	// 4 cores striding over disjoint 32K-page working sets that all fit
	// in K: after one warmup pass everything hits, but the 1MB
	// residency table and the stride defeat the hardware caches, so
	// sequential serving stalls on memory. This is the shape the
	// speculative engine targets — the memory-bound residency lookups
	// spread across lanes while the commit degenerates to counters (run
	// it with a policy whose Touch is free, e.g. FITF). Six passes make
	// the faulting warmup pass a small fraction of the run.
	scan := make(core.RequestSet, 4)
	for c := range scan {
		seq := make(core.Sequence, 4*perCore)
		for i := range seq {
			seq[i] = core.PageID(c*32768 + (i*7919)%32768)
		}
		scan[c] = seq
	}
	shapes = append(shapes, benchShape{"scan", scan, core.Params{K: 131072, Tau: 8},
		func() sim.Strategy { return policy.NewShared(func() cache.Policy { return cache.NewFITF() }) }})

	for i := range shapes {
		if shapes[i].strat == nil {
			shapes[i].strat = func() sim.Strategy { return policy.NewShared(lru()) }
		}
	}
	return shapes
}

// benchWorkers is the engine matrix: 0 is the sequential serve loop,
// the rest are speculative-engine lane counts.
var benchWorkers = []int{0, 2, 4, 8}

func workersName(w int) string {
	if w == 0 {
		return "seq"
	}
	return fmt.Sprintf("par%d", w)
}

// BenchmarkSimServe crosses the three serve paths of the engine with
// the engine matrix. Each sub-benchmark replays its workload through a
// reused Runner, so the numbers track the per-request cost of that
// path with steady-state allocations. Compare engines with
// scripts/bench_parallel.sh, which renames the seq/parN suffixes into
// benchstat columns.
func BenchmarkSimServe(b *testing.B) {
	for _, sh := range benchShapes(50000) {
		for _, w := range benchWorkers {
			b.Run(sh.name+"/"+workersName(w), func(b *testing.B) {
				rn, err := sim.NewRunner(sh.rs)
				if err != nil {
					b.Fatal(err)
				}
				rn.SetParallel(w)
				n := float64(sh.rs.TotalLen())
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := rn.Run(sh.params, sh.strat(), nil); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(n*float64(b.N)/b.Elapsed().Seconds(), "req/s")
			})
		}
	}
}

// BenchmarkSimStream measures the full streaming pipeline: decode a
// binary trace through trace.Decoder into reused buffers, rebind a
// Runner, and run — the path a service takes for traces too large to
// keep materialized. The decode buffer and request set are reused
// across iterations, so steady-state garbage stays bounded regardless
// of trace size.
func BenchmarkSimStream(b *testing.B) {
	const perCore = 50000
	rs := make(core.RequestSet, 4)
	for c := range rs {
		seq := make(core.Sequence, perCore)
		for i := range seq {
			seq[i] = core.PageID(c*512 + i%512)
		}
		rs[c] = seq
	}
	var bin bytes.Buffer
	if err := trace.WriteBinary(&bin, rs); err != nil {
		b.Fatal(err)
	}
	data := bin.Bytes()
	params := core.Params{K: 128, Tau: 8}

	var rn sim.Runner
	dst := make(core.RequestSet, 0, 4)
	n := float64(rs.TotalLen())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := trace.NewDecoder(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		dst = dst[:0]
		for {
			m, err := d.NextCore()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			c := len(dst)
			if c < cap(dst) {
				dst = dst[:c+1]
			} else {
				dst = append(dst, nil)
			}
			if cap(dst[c]) < m {
				dst[c] = make(core.Sequence, m)
			}
			dst[c] = dst[c][:m]
			for off := 0; off < m; {
				k, err := d.Read(dst[c][off:])
				if err != nil {
					b.Fatal(err)
				}
				off += k
			}
		}
		if err := rn.Bind(dst); err != nil {
			b.Fatal(err)
		}
		if _, err := rn.Run(params, policy.NewShared(lru()), nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(n*float64(b.N)/b.Elapsed().Seconds(), "req/s")
}
