package sim_test

import (
	"testing"

	"mcpaging/internal/core"
	"mcpaging/internal/policy"
	"mcpaging/internal/sim"
)

// BenchmarkSimServe isolates the three serve paths of the engine. Each
// sub-benchmark replays a workload engineered so one path dominates,
// through a reused Runner, so the numbers track the per-request cost of
// that path (hit ≈ array lookup + Touch; fault ≈ eviction + table
// update; join ≈ in-flight check + Touch) with steady-state allocations.
func BenchmarkSimServe(b *testing.B) {
	const perCore = 50000

	bench := func(b *testing.B, rs core.RequestSet, params core.Params) {
		b.Helper()
		rn, err := sim.NewRunner(rs)
		if err != nil {
			b.Fatal(err)
		}
		n := float64(rs.TotalLen())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := rn.Run(params, policy.NewShared(lru()), nil); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(n*float64(b.N)/b.Elapsed().Seconds(), "req/s")
	}

	b.Run("hit", func(b *testing.B) {
		// 4 cores cycling disjoint 16-page working sets inside K=128:
		// everything past the first 64 requests is a hit.
		rs := make(core.RequestSet, 4)
		for c := range rs {
			seq := make(core.Sequence, perCore)
			for i := range seq {
				seq[i] = core.PageID(c*16 + i%16)
			}
			rs[c] = seq
		}
		bench(b, rs, core.Params{K: 128, Tau: 8})
	})

	b.Run("fault", func(b *testing.B) {
		// 4 cores scanning disjoint 512-page loops with K=128 under LRU:
		// the classic sequential-flooding pattern, every request faults.
		rs := make(core.RequestSet, 4)
		for c := range rs {
			seq := make(core.Sequence, perCore)
			for i := range seq {
				seq[i] = core.PageID(c*512 + i%512)
			}
			rs[c] = seq
		}
		bench(b, rs, core.Params{K: 128, Tau: 8})
	})

	b.Run("join", func(b *testing.B) {
		// 4 cores issuing the same 512-page scan in lockstep with τ=8:
		// core 0 faults and the rest join the in-flight fetch, so ~3/4 of
		// all requests take the join path.
		seq := make(core.Sequence, perCore)
		for i := range seq {
			seq[i] = core.PageID(i % 512)
		}
		rs := core.RequestSet{seq, seq, seq, seq}
		bench(b, rs, core.Params{K: 128, Tau: 8})
	})
}
