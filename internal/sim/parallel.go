// Out-of-order intra-run engine: speculative per-core parallelism
// between faults.
//
// In the López-Ortiz & Salinger model, cores are coupled only at
// synchronization events: residency ground truth (readyAt) changes
// exclusively when a committed fault evicts a victim and installs a
// fetch. Between such events each core's service is a run of hits that
// is independent by construction, and a core's service times depend
// only on its own history (a hit advances its clock by 1, a fault by
// τ+1). The engine exploits this the way an out-of-order scheduler
// exploits independent instructions:
//
//   - Scan phase: worker goroutines speculatively scan each core's
//     sequence forward against the epoch-stable residency array,
//     classifying every access as hit or fault and precomputing its
//     exact service time. Faults by the scanned core itself are
//     accounted through a per-epoch fetch overlay; evictions by other
//     cores are unknown at scan time and handled by rollback.
//   - Commit phase: a single committer replays the speculated segments
//     in the canonical deterministic order (increasing time, then
//     increasing core index within a step), invoking OnHit/OnFault and
//     the observer exactly as the sequential engine would. Victim
//     choice happens live against committed ground truth, so
//     strategies (including oracle-driven FITF) see byte-identical
//     state.
//   - Rollback: when a committed fault evicts page v, the only
//     speculation it can invalidate is the v-owner's (inputs are
//     disjoint), starting at v's first unserved occurrence — located
//     exactly via the oracle's occurrence table. The owner's
//     speculation is truncated at that access and rescanned next
//     epoch.
//
// The engine is enabled per Runner via SetParallel and falls back to
// the sequential serve loop whenever its preconditions do not hold
// (p = 1, tiny instances, non-disjoint request sets, or Ticker
// strategies — voluntary evictions fire at every step boundary, which
// leaves no epoch to parallelize). Results and event streams are
// identical to the sequential engine in all cases; see DESIGN.md §7
// for the determinism argument and TestParallelMatchesSequential for
// the differential proof.
package sim

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"mcpaging/internal/cache"
	"mcpaging/internal/core"
)

// Engine-selection and speculation-depth knobs. Variables rather than
// constants so tests can shrink them to force epoch turnover and
// rollback on small instances; production code treats them as fixed.
var (
	// parMinRequests is the instance size below which a parallel run
	// is not worth the scan/commit synchronization and the Runner
	// silently serves sequentially.
	parMinRequests = 2048
	// parBudget and parBudgetMin bound the adaptive per-core scan
	// budget (accesses speculated per epoch). The budget starts at the
	// floor and is doubled or halved by commit yield: workloads whose
	// speculation survives to commit scan deep; workloads whose
	// speculation keeps getting cut by evictions stay shallow, so scan
	// work wasted to rollback is bounded by a constant factor of the
	// committed work.
	parBudget    = 8192
	parBudgetMin = 256
	// parMaxSegs bounds speculated fault segments per core per epoch.
	parMaxSegs = 1024
)

// Dense-universe disjointness verdicts cached on the engine per bind.
const (
	ownerUnknown uint8 = iota
	ownerDisjoint
	ownerShared
)

// parSeg is one speculated segment of a core's future: a run of
// consecutive hits, optionally terminated by a speculated fault. The
// hits occupy times startTime..startTime+hits-1; the fault, when
// present, is the access at index startIdx+hits served at time
// startTime+hits.
type parSeg struct {
	startIdx  int32
	hits      int32
	startTime int64
	endFault  bool
}

// parState is the reusable speculative-engine state of one Runner.
// Per-core fields are parallel flat arrays (SoA) so the committer's
// per-step sweep touches a few contiguous cache lines instead of p
// scattered structs.
type parState struct {
	workers int // SetParallel setting; 0 = sequential engine

	flat      core.Flat // dense sequences, one contiguous array (SoA)
	flatBound bool

	epoch int64 // monotone across runs; stale stamps never collide

	// Per-epoch speculated-fetch overlay: fetchReady[pg] overrides
	// readyAt[pg] during scans when fetchStamp[pg] == epoch. Only the
	// owning core's scanner writes a page's entries, so lanes never
	// race (inputs are disjoint).
	fetchStamp []int64
	fetchReady []int64

	// Per-core speculation, consumed by the committer.
	segs    [][]parSeg
	segHead []int32 // current segment during commit
	segPos  []int32 // hits of that segment already committed

	batchIdx  []int32 // per-core request-index base of a lockstep batch
	scanEnd   []int32 // per-core speculation horizon (first unspeculated index)
	curBudget int     // adaptive per-core scan budget for the next epoch

	// Per-lane scan counters, folded into EngineStats after the epoch
	// barrier so lanes never share a counter word.
	laneHits   []int64
	laneFaults []int64

	lanes int
	wg    sync.WaitGroup
}

// EngineStats counts engine-level activity of a Runner, cumulatively
// across runs: which engine served each run, epoch and speculation
// volume, and how often rollback paths fired. Tests use it to assert
// the parallel engine actually engaged; services can export it.
type EngineStats struct {
	// SequentialRuns and ParallelRuns count engine selections (a
	// "parallel" run is one that entered the epoch engine, even if
	// every epoch was trivial).
	SequentialRuns int64
	ParallelRuns   int64
	// Epochs counts scan+commit rounds across all parallel runs.
	Epochs int64
	// SpeculatedHits / SpeculatedFaults count scan-phase
	// classifications (including ones later discarded by rollback).
	SpeculatedHits   int64
	SpeculatedFaults int64
	// Cuts counts speculation truncations forced by committed
	// evictions (the rollback path).
	Cuts int64
	// MicroSteps counts single requests served through the sequential
	// rules inside a parallel run — the guaranteed-progress escape
	// hatch when an epoch yields no committable speculation.
	MicroSteps int64
}

// Stats returns a snapshot of the runner's cumulative engine counters.
func (r *Runner) Stats() EngineStats { return r.stats }

// SetParallel selects the engine for subsequent runs: workers ≥ 1
// enables the speculative epoch engine with that many concurrent scan
// lanes (1 scans on the committer goroutine itself — useful for
// deterministic debugging), 0 restores the sequential engine. The
// setting is a ceiling, not a demand: runs fall back to sequential
// when the parallel preconditions fail (see package comment). Results
// are identical either way.
func (r *Runner) SetParallel(workers int) {
	if workers < 0 {
		workers = 0
	}
	r.par.workers = workers
}

// Parallel reports the configured worker setting.
func (r *Runner) Parallel() int { return r.par.workers }

// RunParallel is Run with the speculative parallel engine enabled at
// the given worker count, for one-shot callers; it follows the same
// fallback rules as Runner.SetParallel.
func RunParallel(inst core.Instance, s Strategy, obs Observer, workers int) (Result, error) {
	if err := inst.Validate(); err != nil {
		return Result{}, err
	}
	r := runnerPool.Get().(*Runner)
	defer func() {
		r.release()
		runnerPool.Put(r)
	}()
	if err := r.bind(inst.R); err != nil {
		return Result{}, err
	}
	r.SetParallel(workers)
	//mcvet:ignore ctxflow RunParallel is the documented synchronous wrapper: a caller without a ctx is its own cancellation root
	return r.RunContext(context.Background(), inst.P, s, obs)
}

// parallelReady reports whether the next run may use the speculative
// engine: it is enabled, the instance is big enough to amortize epoch
// synchronization, there are cores to overlap, and the request set is
// disjoint (the model's own theorem setting) so speculation ownership
// is well defined. Callers have already excluded Ticker strategies.
func (r *Runner) parallelReady() bool {
	if r.par.workers < 1 || len(r.rs) < 2 || r.e.occN < parMinRequests {
		return false
	}
	return r.e.disjointDense()
}

// disjointDense checks (once per bind) that no dense page occurs in
// two cores' sequences, building the page→owner table the rollback
// path needs as a side effect.
func (e *engine) disjointDense() bool {
	if e.ownerState == ownerUnknown {
		e.owner = growSlice(e.owner, e.w)
		for i := range e.owner {
			e.owner[i] = -1
		}
		e.ownerState = ownerDisjoint
	check:
		for c, seq := range e.seqs {
			cc := int32(c)
			for _, pg := range seq {
				if o := e.owner[pg]; o >= 0 && o != cc {
					e.ownerState = ownerShared
					break check
				}
				e.owner[pg] = cc
			}
		}
	}
	return e.ownerState == ownerDisjoint
}

// ensurePar grows the speculative-engine arrays to the bound universe
// and core count, reusing capacity across binds like every other
// engine table.
func (r *Runner) ensurePar() {
	e := &r.e
	ps := &r.par
	if !e.occBuilt { // rollback cuts reuse the oracle's occurrence table
		e.buildOcc(e.occN)
		e.occBuilt = true
	}
	if !ps.flatBound {
		ps.flat = core.FlattenInto(ps.flat, core.RequestSet(e.seqs))
		ps.flatBound = true
	}
	ps.fetchStamp = growSlice(ps.fetchStamp, e.w)
	ps.fetchReady = growSlice(ps.fetchReady, e.w)
	p := len(e.seqs)
	ps.segHead = growSlice(ps.segHead, p)
	ps.segPos = growSlice(ps.segPos, p)
	ps.batchIdx = growSlice(ps.batchIdx, p)
	ps.scanEnd = growSlice(ps.scanEnd, p)
	for len(ps.segs) < p {
		ps.segs = append(ps.segs, nil)
	}
	if ps.curBudget < parBudgetMin {
		ps.curBudget = parBudgetMin
	}
	if ps.curBudget > parBudget {
		ps.curBudget = parBudget
	}
}

// scanJob is one lane of an epoch's scan phase, dispatched to the
// shared worker pool.
type scanJob struct {
	r    *Runner
	lane int
}

// parPool is the process-wide scan-worker pool: GOMAXPROCS goroutines
// started once on first use and reused by every parallel run, so a
// Runner never spawns goroutines per run (and sweeps with many Runners
// share one bounded pool instead of multiplying them).
var parPool struct {
	once sync.Once
	jobs chan scanJob
}

func parPoolStart() {
	parPool.jobs = make(chan scanJob)
	for i := runtime.GOMAXPROCS(0); i > 0; i-- {
		go func() {
			for j := range parPool.jobs {
				j.r.scanLane(j.lane)
				j.r.par.wg.Done()
			}
		}()
	}
}

// runParallel executes one run through the epoch engine. The strategy
// has been Init-ed and the engine reset by RunContext; res carries the
// preallocated result arrays.
//
//mcpaging:hotpath
func (r *Runner) runParallel(ctx context.Context, s Strategy, obs Observer, res *Result) (Result, error) {
	e := &r.e
	ps := &r.par
	r.ensurePar()
	p := len(e.seqs)
	lanes := ps.workers
	if lanes > p {
		lanes = p
	}
	// More lanes than schedulable threads only adds dispatch overhead:
	// the committed result is lane-count-independent, so clamping is
	// invisible to callers.
	if m := runtime.GOMAXPROCS(0); lanes > m {
		lanes = m
	}
	ps.lanes = lanes
	ps.laneHits = growSlice(ps.laneHits, lanes)
	ps.laneFaults = growSlice(ps.laneFaults, lanes)
	if lanes > 1 {
		parPool.once.Do(parPoolStart)
	}

	var served, nextCheck int64 = 0, cancelCheckEvery
	for {
		// Scan phase: speculate every unfinished core forward from its
		// committed cursor. Lane 0 runs on this goroutine; the rest go
		// to the shared pool. Residency is epoch-stable (the committer
		// is parked here), so scanners read readyAt freely.
		ps.epoch++
		r.stats.Epochs++
		if lanes > 1 {
			ps.wg.Add(lanes - 1)
			for l := 1; l < lanes; l++ {
				//mcvet:ignore ctxflow aborting the send would orphan the matching wg.Add; pool workers always drain, and cancellation lands at the commitEpoch poll
				parPool.jobs <- scanJob{r: r, lane: l}
			}
		}
		r.scanLane(0)
		if lanes > 1 {
			ps.wg.Wait()
		}
		var spec int64
		for l := 0; l < lanes; l++ {
			spec += ps.laneHits[l] + ps.laneFaults[l]
			r.stats.SpeculatedHits += ps.laneHits[l]
			r.stats.SpeculatedFaults += ps.laneFaults[l]
		}

		// Commit phase: replay speculation in canonical order until it
		// runs dry (epoch over) or the run completes.
		before := served
		done, err := r.commitEpoch(ctx, s, obs, res, &served, &nextCheck)
		if err != nil {
			return *res, err
		}
		// Commit yield steers the next epoch's scan depth: ≥3/4 of the
		// speculation committed → scan deeper; <1/4 committed (cuts or
		// overlay-blind hits dominated) → scan shallower, bounding the
		// work rollback can waste.
		if committed := served - before; spec > 0 {
			switch {
			case committed*4 >= spec*3 && ps.curBudget < parBudget:
				ps.curBudget *= 2
				if ps.curBudget > parBudget {
					ps.curBudget = parBudget
				}
			case committed*4 < spec && ps.curBudget > parBudgetMin:
				ps.curBudget /= 2
				if ps.curBudget < parBudgetMin {
					ps.curBudget = parBudgetMin
				}
			}
		}
		if done {
			break
		}
		if served == before {
			// Cold rollback recovery: a fresh scan produced nothing the
			// committer could order first (only possible through the
			// stall guards). Serve one request through the sequential
			// rules so the run always advances, then re-speculate.
			//mcpaging:coldpath single-step fallback, never on the steady-state path
			if err := r.microStep(s, obs, res, &served); err != nil {
				return *res, err
			}
		}
	}
	for c := 0; c < p; c++ {
		if res.Finish[c] > res.Makespan {
			res.Makespan = res.Finish[c]
		}
	}
	return *res, nil
}

// scanLane speculates the cores of one lane (core index ≡ lane mod
// lanes); it is the unit of work the pool executes.
//
//mcpaging:hotpath
func (r *Runner) scanLane(lane int) {
	ps := &r.par
	p := ps.flat.NumCores()
	var hits, faults int64
	for c := lane; c < p; c += ps.lanes {
		h, f := r.scanCore(c)
		hits += h
		faults += f
	}
	ps.laneHits[lane] = hits
	ps.laneFaults[lane] = faults
}

// scanCore speculatively classifies core c's next accesses against the
// epoch-stable residency snapshot, recording hit-run segments and
// their exact service times. The scan accounts for the core's own
// speculated fetches through the per-epoch overlay; evictions that
// other cores' faults will commit are unknown here and are handled by
// cutSpeculation at commit time.
//
//mcpaging:hotpath
func (r *Runner) scanCore(c int) (specHits, specFaults int64) {
	e := &r.e
	ps := &r.par
	seq := ps.flat.Seq(c)
	segs := ps.segs[c][:0]
	ps.segHead[c] = 0
	ps.segPos[c] = 0
	i := int32(e.idx[c])
	n := int32(len(seq))
	if i >= n {
		ps.segs[c] = segs
		ps.scanEnd[c] = i
		return 0, 0
	}
	t := e.next[c]
	epoch := ps.epoch
	tau := e.tau
	readyAt := e.readyAt
	fetchStamp, fetchReady := ps.fetchStamp, ps.fetchReady
	cur := parSeg{startIdx: i, startTime: t}
	for budget := ps.curBudget; budget > 0 && i < n; budget-- {
		pg := seq[i]
		rdy := readyAt[pg]
		if fetchStamp[pg] == epoch {
			rdy = fetchReady[pg]
		}
		if rdy != notCached && rdy <= t {
			cur.hits++
			specHits++
			i++
			t++
			continue
		}
		if rdy != notCached {
			// In flight at its own access time: unreachable for the
			// disjoint inputs this engine accepts (a core's fetches
			// complete exactly when its clock resumes). Stop here; the
			// committer falls back to a sequential micro-step.
			break
		}
		// Speculative fault: τ-delay the core and overlay the fetch.
		cur.endFault = true
		specFaults++
		segs = append(segs, cur) //mcvet:ignore hotalloc segment storage reaches steady-state capacity after the first epochs
		fetchStamp[pg] = epoch
		fetchReady[pg] = t + tau + 1
		i++
		t += tau + 1
		cur = parSeg{startIdx: i, startTime: t}
		if len(segs) >= parMaxSegs {
			break
		}
	}
	if cur.hits > 0 {
		segs = append(segs, cur)
	}
	ps.segs[c] = segs
	ps.scanEnd[c] = i
	return specHits, specFaults
}

// commitEpoch replays the speculated segments in the exact sequential
// order — increasing time, increasing core index within a step —
// driving strategy callbacks and the observer identically to the
// sequential serve loop. It returns done=true when every request has
// been served, or false when speculation ran dry and a new epoch must
// rescan.
//
//mcpaging:hotpath
func (r *Runner) commitEpoch(ctx context.Context, s Strategy, obs Observer, res *Result, served, nextCheck *int64) (bool, error) {
	e := &r.e
	ps := &r.par
	p := len(e.seqs)
	flat := ps.flat
	for {
		if *served >= *nextCheck {
			*nextCheck = *served + cancelCheckEvery
			if err := ctx.Err(); err != nil {
				return false, fmt.Errorf("sim: strategy %s run aborted after %d requests: %w", s.Name(), *served, err)
			}
		}
		// Next service time: min clock over unfinished cores, exactly
		// as in the sequential scheduler — plus the second-smallest
		// clock and the tie count, which decide whether a whole hit
		// run can be committed without re-entering this scheduler.
		t, t2 := int64(math.MaxInt64), int64(math.MaxInt64)
		ties, active, cmin := 0, 0, 0
		for c := 0; c < p; c++ {
			if e.idx[c] >= flat.Len(c) {
				continue
			}
			active++
			switch nc := e.next[c]; {
			case nc < t:
				t2 = t
				t, cmin, ties = nc, c, 1
			case nc == t:
				ties++
			case nc < t2:
				t2 = nc
			}
		}
		if t == int64(math.MaxInt64) {
			return true, nil
		}
		e.now = t

		// Elastic capacity: apply schedule boundaries (and retry blocked
		// sheds) at exactly the service times the sequential loop would,
		// cutting speculation at every shed victim. The fast paths below
		// are fenced at nextChange so no committed run crosses a
		// boundary unchecked.
		if e.sched != nil && (t >= e.nextChange || e.used > e.k) {
			if err := r.applyCapacity(t, s, obs, res, true); err != nil {
				return false, err
			}
		}

		// Fast path: one core is due strictly before every other, and
		// its speculation continues with a hit run. Service order over
		// [t, t2) is just that core's consecutive hits, so they commit
		// in one sweep with no per-event scheduling.
		if ties == 1 {
			c := cmin
			segs := ps.segs[c]
			h := int(ps.segHead[c])
			pos := ps.segPos[c]
			for h < len(segs) && pos >= segs[h].hits && !segs[h].endFault {
				h++
				pos = 0
			}
			ps.segHead[c] = int32(h)
			ps.segPos[c] = pos
			if h < len(segs) && pos < segs[h].hits && segs[h].startTime+int64(pos) == t {
				k := int64(segs[h].hits - pos)
				if t2 != int64(math.MaxInt64) && t2-t < k {
					k = t2 - t
				}
				if e.sched != nil {
					// Fence the committed run at the next capacity
					// boundary; while a shed is blocked on in-flight
					// pages, commit one step at a time so the retry
					// fires at every service time, like the sequential
					// loop.
					if e.used > e.k {
						k = 1
					} else if e.nextChange-t < k {
						k = e.nextChange - t
					}
				}
				seq := flat.Seq(c)
				base := int(segs[h].startIdx) + int(pos)
				for j := 0; j < int(k); j++ {
					i := base + j
					op := seq[i]
					if e.inv != nil {
						op = e.inv[op]
					}
					s.OnHit(op, cache.Access{Core: c, Time: t + int64(j), Index: i})
					if obs != nil {
						obs(Event{Time: t + int64(j), Core: c, Index: i, Page: op, Victim: core.NoPage})
					}
				}
				res.Hits[c] += k
				*served += k
				e.idx[c] = base + int(k)
				e.next[c] = t + k
				ps.segPos[c] = pos + int32(k)
				if e.idx[c] == flat.Len(c) {
					res.Finish[c] = e.next[c]
				}
				continue
			}
			// No committable hit run: fall through to the general
			// sweep, which serves the fault or ends the epoch.
		} else if ties == active {
			// Fast path: every unfinished core is due at t and inside
			// a hit run. For the next m steps the canonical order is m
			// identical rounds over the cores in index order, with no
			// scheduling in between — the lockstep pattern that
			// otherwise pays a full min-scan per step.
			m := int32(math.MaxInt32)
			ok := true
			for c := 0; c < p; c++ {
				if e.idx[c] >= flat.Len(c) {
					ps.batchIdx[c] = -1
					continue
				}
				segs := ps.segs[c]
				h := int(ps.segHead[c])
				pos := ps.segPos[c]
				for h < len(segs) && pos >= segs[h].hits && !segs[h].endFault {
					h++
					pos = 0
				}
				ps.segHead[c] = int32(h)
				ps.segPos[c] = pos
				if h >= len(segs) || pos >= segs[h].hits || segs[h].startTime+int64(pos) != t {
					ok = false
					break
				}
				ps.batchIdx[c] = segs[h].startIdx + pos
				if rem := segs[h].hits - pos; rem < m {
					m = rem
				}
			}
			if ok && m > 0 && e.sched != nil {
				// Same boundary fence as the single-core hit run.
				if e.used > e.k {
					m = 1
				} else if nc := e.nextChange - t; nc < int64(m) {
					m = int32(nc)
				}
			}
			if ok && m > 0 {
				for j := int32(0); j < m; j++ {
					tj := t + int64(j)
					for c := 0; c < p; c++ {
						bi := ps.batchIdx[c]
						if bi < 0 {
							continue
						}
						i := int(bi + j)
						op := flat.Pages[flat.Off[c]+bi+j]
						if e.inv != nil {
							op = e.inv[op]
						}
						s.OnHit(op, cache.Access{Core: c, Time: tj, Index: i})
						if obs != nil {
							obs(Event{Time: tj, Core: c, Index: i, Page: op, Victim: core.NoPage})
						}
					}
				}
				for c := 0; c < p; c++ {
					if ps.batchIdx[c] < 0 {
						continue
					}
					res.Hits[c] += int64(m)
					*served += int64(m)
					e.idx[c] = int(ps.batchIdx[c] + m)
					e.next[c] = t + int64(m)
					ps.segPos[c] += m
					if e.idx[c] == flat.Len(c) {
						res.Finish[c] = e.next[c]
					}
				}
				continue
			}
			// A core is at a fault or out of speculation: serve this
			// step event by event below.
		}

		for c := 0; c < p; c++ {
			if e.next[c] != t || e.idx[c] >= flat.Len(c) {
				continue
			}
			segs := ps.segs[c]
			h := int(ps.segHead[c])
			pos := ps.segPos[c]
			for h < len(segs) && pos >= segs[h].hits && !segs[h].endFault {
				h++
				pos = 0
			}
			ps.segHead[c] = int32(h)
			ps.segPos[c] = pos
			if h >= len(segs) {
				// Speculation exhausted for the core that must be
				// served next (budget horizon, rollback cut, or scan
				// stall): the epoch is over; rescan from committed
				// state.
				return false, nil
			}
			seg := &segs[h]
			if seg.startTime+int64(pos) != t {
				// Timing drift would mean broken speculation; never
				// commit it — rescanning from committed ground truth
				// is always correct.
				return false, nil
			}
			i := int(seg.startIdx) + int(pos)
			pg := flat.Seq(c)[i]
			op := pg
			if e.inv != nil {
				op = e.inv[pg]
			}
			*served++
			if pos < seg.hits {
				// Speculated hit: residency of c's pages can only have
				// changed through a committed eviction, and every
				// eviction cut invalidates speculation exactly at the
				// victim's next unserved occurrence — so reaching this
				// point proves the hit is live.
				res.Hits[c]++
				e.idx[c] = i + 1
				e.next[c] = t + 1
				s.OnHit(op, cache.Access{Core: c, Time: t, Index: i})
				ps.segPos[c] = pos + 1
				if e.idx[c] == flat.Len(c) {
					res.Finish[c] = e.next[c]
				}
				if obs != nil {
					obs(Event{Time: t, Core: c, Index: i, Page: op, Victim: core.NoPage})
				}
				continue
			}
			// Speculated fault (pos == seg.hits and seg.endFault). The
			// victim choice runs live against committed ground truth.
			if e.readyAt[pg] != notCached {
				// The page was fetched since the scan — impossible for
				// disjoint inputs, guarded like the stall case.
				return false, nil
			}
			res.Faults[c]++
			// Advance this core's position before consulting the
			// strategy so the oracle sees the post-service state.
			e.idx[c] = i + 1
			e.next[c] = t + e.tau + 1
			victim := s.OnFault(op, cache.Access{Core: c, Time: t, Index: i}, e)
			if victim == core.NoPage {
				if e.used >= e.k {
					return false, fmt.Errorf("sim: strategy %s requested a free cell but cache is full (t=%d core=%d page=%d)", s.Name(), t, c, op)
				}
			} else {
				if err := e.evictOriginal(victim, t); err != nil {
					return false, fmt.Errorf("sim: strategy %s: %w", s.Name(), err)
				}
				r.cutSpeculation(victim)
			}
			e.readyAt[pg] = t + e.tau + 1
			e.used++
			ps.segHead[c] = int32(h + 1)
			ps.segPos[c] = 0
			if e.idx[c] == flat.Len(c) {
				res.Finish[c] = e.next[c]
			}
			if obs != nil {
				ev := Event{Time: t, Core: c, Index: i, Page: op, Fault: true, Victim: core.NoPage}
				if victim != core.NoPage {
					ev.Victim = victim
				}
				obs(ev)
			}
		}
	}
}

// cutSpeculation is the rollback: a committed eviction of victim can
// only invalidate the victim owner's speculation (inputs are
// disjoint), and only from the victim's first unserved occurrence
// onward — every earlier speculated access was already committed,
// because commit order is global time order. The occurrence table
// locates that position exactly, so no valid speculation is discarded
// and no invalid speculation survives.
//
//mcpaging:hotpath
func (r *Runner) cutSpeculation(victim core.PageID) {
	e := &r.e
	dv, ok := e.denseID(victim)
	if !ok {
		return // evictOriginal already validated; defensive
	}
	o := e.owner[dv]
	if o < 0 {
		return
	}
	ps := &r.par
	// Disjoint inputs give each page exactly one (page, core) pair.
	s0 := e.slotStart[dv]
	if s0 == e.slotStart[dv+1] {
		return
	}
	// Advance the pair cursor past served occurrences — the same lazy
	// rule the oracle applies, so sharing the cursor is safe.
	j, end := e.pairPtr[s0], e.pairEnd[s0]
	idx := int32(e.idx[o])
	for j < end && e.pos[j] < idx {
		j++
	}
	e.pairPtr[s0] = j
	if j == end {
		return // the victim is never requested again
	}
	q := e.pos[j]
	if q >= ps.scanEnd[o] {
		// Beyond the speculation horizon: the eviction cannot touch
		// anything scanned, so skip the segment walk entirely. This is
		// the overwhelmingly common case in fault-heavy workloads,
		// where victims resurface hundreds of accesses later.
		return
	}
	ps.scanEnd[o] = q
	segs := ps.segs[o]
	for m := int(ps.segHead[o]); m < len(segs); m++ {
		sg := &segs[m]
		endIdx := sg.startIdx + sg.hits
		switch {
		case q < sg.startIdx:
			// Defensive: unreachable, since q is unserved and so
			// cannot precede the committed cursor.
			ps.segs[o] = segs[:m]
			r.stats.Cuts++
			return
		case q < endIdx:
			// Inside the hit run: keep the hits before the victim's
			// access, drop everything at and after it.
			sg.hits = q - sg.startIdx
			sg.endFault = false
			ps.segs[o] = segs[:m+1]
			r.stats.Cuts++
			return
		case sg.endFault && q == endIdx:
			// Exactly at the speculated fault.
			sg.endFault = false
			ps.segs[o] = segs[:m+1]
			r.stats.Cuts++
			return
		}
	}
	// Beyond the speculated horizon: nothing to cut.
}

// microStep serves exactly one request through the sequential rules —
// the guaranteed-progress escape hatch for epochs whose speculation
// could not be ordered first. It picks the same core the sequential
// scheduler would (lowest index among minimum clocks) and replicates
// the serve-loop body verbatim, so the event stream stays identical.
func (r *Runner) microStep(s Strategy, obs Observer, res *Result, served *int64) error {
	e := &r.e
	p := len(e.seqs)
	t := int64(math.MaxInt64)
	for c := 0; c < p; c++ {
		if e.idx[c] < len(e.seqs[c]) && e.next[c] < t {
			t = e.next[c]
		}
	}
	if t == int64(math.MaxInt64) {
		return nil
	}
	e.now = t
	if e.sched != nil && (t >= e.nextChange || e.used > e.k) {
		if err := r.applyCapacity(t, s, obs, res, true); err != nil {
			return err
		}
	}
	for c := 0; c < p; c++ {
		if e.idx[c] >= len(e.seqs[c]) || e.next[c] != t {
			continue
		}
		i := e.idx[c]
		*served++
		r.stats.MicroSteps++
		pg := e.seqs[c][i]
		op := pg
		if e.inv != nil {
			op = e.inv[pg]
		}
		at := cache.Access{Core: c, Time: t, Index: i}
		ev := Event{Time: t, Core: c, Index: i, Page: op, Victim: core.NoPage}
		ready := e.readyAt[pg]
		switch {
		case ready != notCached && ready <= t: // hit
			res.Hits[c]++
			e.idx[c] = i + 1
			e.next[c] = t + 1
			s.OnHit(op, at)
		case ready != notCached: // in-flight join
			res.Faults[c]++
			ev.Fault, ev.Join = true, true
			e.idx[c] = i + 1
			e.next[c] = t + e.tau + 1
			s.OnJoin(op, at)
		default: // fault
			res.Faults[c]++
			ev.Fault = true
			e.idx[c] = i + 1
			e.next[c] = t + e.tau + 1
			victim := s.OnFault(op, at, e)
			if victim == core.NoPage {
				if e.used >= e.k {
					return fmt.Errorf("sim: strategy %s requested a free cell but cache is full (t=%d core=%d page=%d)", s.Name(), t, c, op)
				}
			} else {
				if err := e.evictOriginal(victim, t); err != nil {
					return fmt.Errorf("sim: strategy %s: %w", s.Name(), err)
				}
				ev.Victim = victim
				r.cutSpeculation(victim)
			}
			e.readyAt[pg] = t + e.tau + 1
			e.used++
		}
		if e.idx[c] == len(e.seqs[c]) {
			res.Finish[c] = e.next[c]
		}
		if obs != nil {
			obs(ev)
		}
		return nil // exactly one request per micro-step
	}
	return nil
}
