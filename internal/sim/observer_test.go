package sim_test

import (
	"testing"

	"mcpaging/internal/core"
	"mcpaging/internal/policy"
	"mcpaging/internal/sim"
)

// TestRunnerReuseObserverIsolation pins the ordering guarantee telemetry
// relies on: a Runner reused across runs delivers each run's events only
// to that run's observer, with times and indices restarting from the
// run's own origin — nothing leaks from run N into run N+1.
func TestRunnerReuseObserverIsolation(t *testing.T) {
	rs := core.RequestSet{{1, 2, 3, 1, 2}, {7, 8, 7, 9, 8}}
	rn, err := sim.NewRunner(rs)
	if err != nil {
		t.Fatal(err)
	}
	var runs [3][]sim.Event
	var results [3]sim.Result
	for i := 0; i < 3; i++ {
		i := i
		res, err := rn.Run(core.Params{K: 3, Tau: 2}, policy.NewShared(lru()),
			func(e sim.Event) { runs[i] = append(runs[i], e) })
		if err != nil {
			t.Fatal(err)
		}
		results[i] = res
	}
	for i := 0; i < 3; i++ {
		if int64(len(runs[i])) != results[i].TotalFaults()+results[i].TotalHits() {
			t.Fatalf("run %d: %d events, want %d", i, len(runs[i]),
				results[i].TotalFaults()+results[i].TotalHits())
		}
		// Identical inputs and parameters: every rerun must replay the
		// first run's event stream exactly.
		if len(runs[i]) != len(runs[0]) {
			t.Fatalf("run %d: %d events, run 0 had %d", i, len(runs[i]), len(runs[0]))
		}
		for j := range runs[i] {
			if runs[i][j] != runs[0][j] {
				t.Fatalf("run %d event %d = %+v, run 0 had %+v", i, j, runs[i][j], runs[0][j])
			}
		}
		// Time restarts at 0 and per-core indices restart at 0.
		if runs[i][0].Time != 0 {
			t.Fatalf("run %d first event at t=%d, want 0", i, runs[i][0].Time)
		}
		first := map[int]int{}
		for _, e := range runs[i] {
			if _, seen := first[e.Core]; !seen {
				first[e.Core] = e.Index
				if e.Index != 0 {
					t.Fatalf("run %d: core %d's first event has index %d, want 0", i, e.Core, e.Index)
				}
			}
		}
	}
}

func TestMultiObserver(t *testing.T) {
	var a, b []sim.Event
	obs := sim.MultiObserver(
		nil,
		func(e sim.Event) { a = append(a, e) },
		nil,
		func(e sim.Event) {
			// Argument order: a must already have received this event.
			if len(a) != len(b)+1 {
				t.Fatalf("fan-out out of order: len(a)=%d len(b)=%d", len(a), len(b))
			}
			b = append(b, e)
		},
	)
	in := inst(2, 1, core.Sequence{1, 2, 1}, core.Sequence{5})
	res, err := sim.Run(in, policy.NewShared(lru()), obs)
	if err != nil {
		t.Fatal(err)
	}
	want := res.TotalFaults() + res.TotalHits()
	if int64(len(a)) != want || int64(len(b)) != want {
		t.Fatalf("fan-out delivered %d/%d events, want %d", len(a), len(b), want)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs between observers: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestMultiObserverNil(t *testing.T) {
	if sim.MultiObserver() != nil {
		t.Fatal("MultiObserver() should be nil")
	}
	if sim.MultiObserver(nil, nil) != nil {
		t.Fatal("MultiObserver(nil, nil) should be nil")
	}
	called := 0
	single := sim.MultiObserver(nil, func(sim.Event) { called++ })
	single(sim.Event{})
	if called != 1 {
		t.Fatal("single surviving observer not invoked")
	}
}

// TestTickEventsObserved checks that voluntary evictions surface as Tick
// events, in both engines identically, and that their count matches
// Result.VoluntaryEvictions. FWF flushes the whole cache whenever it is
// full, so it reliably produces ticks.
func TestTickEventsObserved(t *testing.T) {
	in := inst(3, 1,
		core.Sequence{1, 2, 3, 4, 1, 2, 5, 6},
		core.Sequence{10, 11, 10, 12, 13, 11, 14, 10})
	var fast, ref []sim.Event
	resFast, err := sim.Run(in, policy.NewFWF(), func(e sim.Event) { fast = append(fast, e) })
	if err != nil {
		t.Fatal(err)
	}
	resRef, err := sim.RunReference(in, policy.NewFWF(), func(e sim.Event) { ref = append(ref, e) })
	if err != nil {
		t.Fatal(err)
	}
	var ticks int64
	for _, e := range fast {
		if e.Tick {
			ticks++
			if e.Core != -1 || e.Index != -1 || e.Fault || e.Join || e.Victim != e.Page {
				t.Fatalf("malformed tick event %+v", e)
			}
		}
	}
	if ticks == 0 {
		t.Fatal("FWF run produced no tick events")
	}
	if ticks != resFast.VoluntaryEvictions {
		t.Fatalf("observed %d ticks, result counts %d voluntary evictions",
			ticks, resFast.VoluntaryEvictions)
	}
	if resFast.VoluntaryEvictions != resRef.VoluntaryEvictions {
		t.Fatalf("engines disagree on voluntary evictions: %d vs %d",
			resFast.VoluntaryEvictions, resRef.VoluntaryEvictions)
	}
	if len(fast) != len(ref) {
		t.Fatalf("event streams differ in length: %d vs %d", len(fast), len(ref))
	}
	for i := range fast {
		if fast[i] != ref[i] {
			t.Fatalf("event %d: fast %+v, reference %+v", i, fast[i], ref[i])
		}
	}
}
