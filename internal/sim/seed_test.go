package sim

import "testing"

func TestDeriveSeedDeterministic(t *testing.T) {
	if DeriveSeed(7, 1, 2) != DeriveSeed(7, 1, 2) {
		t.Fatal("DeriveSeed is not a pure function")
	}
}

func TestDeriveSeedDecorrelated(t *testing.T) {
	seen := make(map[int64]string)
	record := func(v int64, what string) {
		if prev, dup := seen[v]; dup {
			t.Fatalf("seed collision between %s and %s: %d", prev, what, v)
		}
		seen[v] = what
	}
	for root := int64(0); root < 4; root++ {
		for stream := int64(0); stream < 4; stream++ {
			for i := int64(0); i < 64; i++ {
				record(DeriveSeed(root, stream, i), "derive")
			}
		}
	}
	// Nearby roots must not produce shifted copies of each other's
	// streams (the failure mode of root+i seeding).
	if DeriveSeed(1, 0, 0) == DeriveSeed(0, 0, 1) {
		t.Fatal("adjacent roots alias adjacent indices")
	}
}
