package sim_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"mcpaging/internal/cache"
	"mcpaging/internal/core"
	"mcpaging/internal/policy"
	"mcpaging/internal/sim"
)

func fitf() cache.Factory { return func() cache.Policy { return cache.NewFITF() } }

// diffStrategies builds the strategy set exercised by the differential
// tests: one recency-based shared strategy, one static partition, and the
// oracle-driven FITF (which stresses NextUse and the ID-visibility
// contract — its tie-break depends on raw page IDs).
func diffStrategies(k, p int) []func() sim.Strategy {
	return []func() sim.Strategy{
		func() sim.Strategy { return policy.NewShared(lru()) },
		func() sim.Strategy { return policy.NewStatic(policy.EvenSizes(k, p), lru()) },
		func() sim.Strategy { return policy.NewShared(fitf()) },
	}
}

// randomInstance generates instance i of the differential corpus. The
// corpus mixes core counts 1..3, disjoint and shared page pools, τ∈0..5,
// and — every third instance — huge sparse page IDs that force the
// renumbering path of the dense engine.
func randomInstance(rng *rand.Rand, i int) core.Instance {
	p := 1 + rng.Intn(3)
	tau := rng.Intn(6)
	k := p + rng.Intn(12)
	pages := 2 + rng.Intn(20)
	shared := rng.Intn(2) == 0
	sparse := i%3 == 0

	remap := func(id core.PageID) core.PageID {
		if sparse {
			return 50000000 + id*1000003
		}
		return id
	}
	rs := make(core.RequestSet, p)
	for c := range rs {
		n := 1 + rng.Intn(40)
		seq := make(core.Sequence, n)
		for j := range seq {
			id := core.PageID(rng.Intn(pages))
			if !shared {
				// Disjoint pools: offset each core's pages.
				id += core.PageID(c) * core.PageID(pages)
			}
			seq[j] = remap(id)
		}
		rs[c] = seq
	}
	return core.Instance{R: rs, P: core.Params{K: k, Tau: tau}}
}

// TestDenseMatchesReference replays randomized instances through both the
// dense-ID engine (sim.Run) and the retained map-based reference engine
// (sim.RunReference) and requires identical results and identical event
// streams — same times, cores, pages, fault/join flags, and victims, in
// the same order. This is the event-for-event proof that renumbering and
// the flat ground-truth tables are invisible to strategies and observers.
func TestDenseMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		in := randomInstance(rng, i)
		p := in.R.NumCores()
		for si, mk := range diffStrategies(in.P.K, p) {
			label := fmt.Sprintf("inst=%d strat=%d (p=%d K=%d tau=%d)", i, si, p, in.P.K, in.P.Tau)

			var gotEv, wantEv []sim.Event
			got, err := sim.Run(in, mk(), func(e sim.Event) { gotEv = append(gotEv, e) })
			if err != nil {
				t.Fatalf("%s: dense: %v", label, err)
			}
			want, err := sim.RunReference(in, mk(), func(e sim.Event) { wantEv = append(wantEv, e) })
			if err != nil {
				t.Fatalf("%s: reference: %v", label, err)
			}

			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: results differ:\ndense     %+v\nreference %+v", label, got, want)
			}
			if len(gotEv) != len(wantEv) {
				t.Fatalf("%s: %d events vs %d in reference", label, len(gotEv), len(wantEv))
			}
			for j := range gotEv {
				if gotEv[j] != wantEv[j] {
					t.Fatalf("%s: event %d differs:\ndense     %+v\nreference %+v",
						label, j, gotEv[j], wantEv[j])
				}
			}
		}
	}
}

// TestRunnerReuse checks that a Runner replayed over the same instance
// with fresh strategies produces identical results every time — i.e. the
// per-run reset fully clears ground truth, clocks, and oracle pointers.
func TestRunnerReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 20; i++ {
		in := randomInstance(rng, i)
		p := in.R.NumCores()
		rn, err := sim.NewRunner(in.R)
		if err != nil {
			t.Fatal(err)
		}
		for si, mk := range diffStrategies(in.P.K, p) {
			var first sim.Result
			for rep := 0; rep < 3; rep++ {
				res, err := rn.Run(in.P, mk(), nil)
				if err != nil {
					t.Fatalf("inst=%d strat=%d rep=%d: %v", i, si, rep, err)
				}
				if rep == 0 {
					first = res
				} else if !reflect.DeepEqual(res, first) {
					t.Fatalf("inst=%d strat=%d rep=%d: result drifted:\nfirst %+v\nnow   %+v",
						i, si, rep, first, res)
				}
			}
		}
	}
}

// TestRunnerRebindParams checks that one Runner can sweep parameters:
// running (K,τ) grids through a single Runner must match fresh sim.Run
// calls point for point.
func TestRunnerRebindParams(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	in := randomInstance(rng, 1) // non-sparse, p∈1..3
	rn, err := sim.NewRunner(in.R)
	if err != nil {
		t.Fatal(err)
	}
	p := in.R.NumCores()
	for k := p; k < p+6; k++ {
		for tau := 0; tau < 4; tau++ {
			params := core.Params{K: k, Tau: tau}
			got, err := rn.Run(params, policy.NewShared(lru()), nil)
			if err != nil {
				t.Fatal(err)
			}
			want, err := sim.Run(core.Instance{R: in.R, P: params}, policy.NewShared(lru()), nil)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("K=%d tau=%d: runner %+v vs fresh %+v", k, tau, got, want)
			}
		}
	}
}
