package sim

import (
	"fmt"
	"math"

	"mcpaging/internal/cache"
	"mcpaging/internal/core"
)

// RunReference simulates strategy s on the instance using the original
// map-based engine. It is semantically identical to Run but keeps all
// ground truth in hash maps keyed by the instance's own page IDs, with no
// renumbering and no state reuse.
//
// It exists as an executable specification: the dense-ID fast path of Run
// is checked against it event for event by TestDenseMatchesReference, and
// it is deliberately kept simple rather than fast. Use Run everywhere
// else.
func RunReference(inst core.Instance, s Strategy, obs Observer) (Result, error) {
	if err := inst.Validate(); err != nil {
		return Result{}, err
	}
	if err := s.Init(inst); err != nil {
		return Result{}, fmt.Errorf("sim: strategy %s init: %w", s.Name(), err)
	}
	p := inst.R.NumCores()
	e := &refEngine{
		k:       inst.P.K,
		tau:     int64(inst.P.Tau),
		next:    make([]int64, p),
		idx:     make([]int, p),
		readyAt: make(map[core.PageID]int64),
		occ:     make(map[core.PageID]*refOccInfo),
	}
	for c, seq := range inst.R {
		for i, pg := range seq {
			info := e.occ[pg]
			if info == nil {
				info = &refOccInfo{}
				e.occ[pg] = info
			}
			// Cores are scanned in increasing order, so if this page
			// already has a slot for core c it is necessarily the last
			// one appended — no need to search the whole slot list.
			slot := len(info.cores) - 1
			if slot < 0 || info.cores[slot] != int32(c) {
				info.cores = append(info.cores, int32(c))
				info.lists = append(info.lists, nil)
				info.ptrs = append(info.ptrs, 0)
				slot = len(info.cores) - 1
			}
			info.lists[slot] = append(info.lists[slot], int32(i))
		}
	}

	res := Result{
		Faults: make([]int64, p),
		Hits:   make([]int64, p),
		Finish: make([]int64, p),
	}
	ticker, _ := s.(Ticker)
	_, repart := s.(Repartitioner)

	for {
		// Next service time: min clock over unfinished cores.
		t := int64(math.MaxInt64)
		for c := 0; c < p; c++ {
			if e.idx[c] < len(inst.R[c]) && e.next[c] < t {
				t = e.next[c]
			}
		}
		if t == int64(math.MaxInt64) {
			break
		}
		e.now = t

		if ticker != nil {
			for _, v := range ticker.OnTick(t, e) {
				if err := e.evict(v, t); err != nil {
					return res, fmt.Errorf("sim: strategy %s voluntary eviction: %w", s.Name(), err)
				}
				res.VoluntaryEvictions++
				if obs != nil {
					obs(Event{Time: t, Core: -1, Index: -1, Page: v, Tick: true, Donor: repart, Victim: v})
				}
			}
		}

		for c := 0; c < p; c++ {
			if e.idx[c] >= len(inst.R[c]) || e.next[c] != t {
				continue
			}
			pg := inst.R[c][e.idx[c]]
			at := cache.Access{Core: c, Time: t, Index: e.idx[c]}
			ev := Event{Time: t, Core: c, Index: e.idx[c], Page: pg, Victim: core.NoPage}

			switch {
			case e.Resident(pg):
				res.Hits[c]++
				e.idx[c]++
				e.next[c] = t + 1
				s.OnHit(pg, at)
			case e.InFlight(pg):
				res.Faults[c]++
				ev.Fault, ev.Join = true, true
				e.idx[c]++
				e.next[c] = t + e.tau + 1
				s.OnJoin(pg, at)
			default:
				res.Faults[c]++
				ev.Fault = true
				// Advance this core's position before consulting the
				// strategy so the oracle sees the post-service state.
				e.idx[c]++
				e.next[c] = t + e.tau + 1
				victim := s.OnFault(pg, at, e)
				if victim == core.NoPage {
					if e.used >= e.k {
						return res, fmt.Errorf("sim: strategy %s requested a free cell but cache is full (t=%d core=%d page=%d)", s.Name(), t, c, pg)
					}
				} else {
					if err := e.evict(victim, t); err != nil {
						return res, fmt.Errorf("sim: strategy %s: %w", s.Name(), err)
					}
					ev.Victim = victim
				}
				e.readyAt[pg] = t + e.tau + 1
				e.used++
			}
			if e.idx[c] == len(inst.R[c]) {
				res.Finish[c] = e.next[c]
			}
			if obs != nil {
				obs(ev)
			}
		}
	}

	for c := 0; c < p; c++ {
		if res.Finish[c] > res.Makespan {
			res.Makespan = res.Finish[c]
		}
	}
	return res, nil
}

// refEngine is the map-based simulator state behind RunReference.
type refEngine struct {
	k   int
	tau int64

	next []int64 // per-core clock
	idx  []int   // per-core next request index

	readyAt map[core.PageID]int64 // cached pages: time the fetch completes (≤ current time ⇒ resident)
	used    int

	now int64

	// occurrence lists for the oracle, one entry per (page, core) pair
	// that requests it.
	occ map[core.PageID]*refOccInfo
}

// refOccInfo indexes a page's occurrences per referencing core.
type refOccInfo struct {
	cores []int32
	lists [][]int32
	ptrs  []int
}

var _ View = (*refEngine)(nil)
var _ cache.Oracle = (*refEngine)(nil)

func (e *refEngine) Resident(p core.PageID) bool {
	r, ok := e.readyAt[p]
	return ok && r <= e.now
}

func (e *refEngine) InFlight(p core.PageID) bool {
	r, ok := e.readyAt[p]
	return ok && r > e.now
}

func (e *refEngine) Cached(p core.PageID) bool {
	_, ok := e.readyAt[p]
	return ok
}

func (e *refEngine) Free() int  { return e.k - e.used }
func (e *refEngine) K() int     { return e.k }
func (e *refEngine) Tau() int   { return int(e.tau) }
func (e *refEngine) Now() int64 { return e.now }

// NextUse implements the FITF oracle exactly as documented on
// engine.NextUse, over the map-backed occurrence index.
func (e *refEngine) NextUse(p core.PageID) int64 {
	info, ok := e.occ[p]
	if !ok {
		return cache.NeverUsed
	}
	best := cache.NeverUsed
	for i, c := range info.cores {
		// Advance this core's pointer past already-served occurrences.
		list := info.lists[i]
		j := info.ptrs[i]
		idx := int32(e.idx[c])
		for j < len(list) && list[j] < idx {
			j++
		}
		info.ptrs[i] = j
		if j == len(list) {
			continue
		}
		t := e.next[c] + int64(list[j]-idx)
		if t < best {
			best = t
		}
	}
	return best
}

// evict removes a resident page from ground truth, validating the
// paper's eviction rules.
func (e *refEngine) evict(v core.PageID, t int64) error {
	r, ok := e.readyAt[v]
	if !ok {
		return fmt.Errorf("evict of non-cached page %d at t=%d", v, t)
	}
	if r > t {
		return fmt.Errorf("evict of in-flight page %d at t=%d (ready at %d)", v, t, r)
	}
	delete(e.readyAt, v)
	e.used--
	return nil
}
