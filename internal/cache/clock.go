package cache

import (
	"container/list"

	"mcpaging/internal/core"
)

// Clock implements the second-chance (CLOCK) approximation of LRU: pages
// sit on a circular list with a reference bit; the hand sweeps, clearing
// set bits, and evicts the first page whose bit is already clear.
type Clock struct {
	ring *list.List // circular order; hand points at the next candidate
	hand *list.Element
	pos  map[core.PageID]*list.Element
	ref  map[core.PageID]bool
}

// NewClock returns an empty CLOCK policy.
func NewClock() *Clock {
	return &Clock{
		ring: list.New(),
		pos:  make(map[core.PageID]*list.Element),
		ref:  make(map[core.PageID]bool),
	}
}

// Name implements Policy.
func (c *Clock) Name() string { return "CLOCK" }

// Insert implements Policy. New pages enter behind the hand with their
// reference bit set.
func (c *Clock) Insert(p core.PageID, _ Access) {
	if _, ok := c.pos[p]; ok {
		panic("cache: duplicate insert of page in CLOCK domain")
	}
	var e *list.Element
	if c.hand == nil {
		e = c.ring.PushBack(p)
		c.hand = e
	} else {
		e = c.ring.InsertBefore(p, c.hand)
	}
	c.pos[p] = e
	c.ref[p] = true
}

// Touch implements Policy: it sets the reference bit.
func (c *Clock) Touch(p core.PageID, _ Access) {
	if _, ok := c.pos[p]; ok {
		c.ref[p] = true
	}
}

// advance moves the hand one step around the ring.
func (c *Clock) advance() {
	if c.hand == nil {
		return
	}
	next := c.hand.Next()
	if next == nil {
		next = c.ring.Front()
	}
	c.hand = next
}

// Evict implements Policy. The sweep clears reference bits of evictable
// pages it passes; non-evictable pages are skipped without clearing so an
// in-flight page is not penalised for being unremovable. The sweep is
// bounded by two full revolutions, which suffices because every evictable
// page's bit has been cleared after one revolution.
func (c *Clock) Evict(evictable func(core.PageID) bool) (core.PageID, bool) {
	n := c.ring.Len()
	if n == 0 {
		return core.NoPage, false
	}
	for sweep := 0; sweep < 2*n; sweep++ {
		e := c.hand
		p := e.Value.(core.PageID)
		if evictable != nil && !evictable(p) {
			c.advance()
			continue
		}
		if c.ref[p] {
			c.ref[p] = false
			c.advance()
			continue
		}
		c.advance()
		if c.hand == e { // single-element ring
			c.hand = nil
		}
		c.ring.Remove(e)
		delete(c.pos, p)
		delete(c.ref, p)
		return p, true
	}
	return core.NoPage, false
}

// Remove implements Policy.
func (c *Clock) Remove(p core.PageID) bool {
	e, ok := c.pos[p]
	if !ok {
		return false
	}
	if c.hand == e {
		c.advance()
		if c.hand == e {
			c.hand = nil
		}
	}
	c.ring.Remove(e)
	delete(c.pos, p)
	delete(c.ref, p)
	return true
}

// Contains implements Policy.
func (c *Clock) Contains(p core.PageID) bool {
	_, ok := c.pos[p]
	return ok
}

// Len implements Policy.
func (c *Clock) Len() int { return c.ring.Len() }

// Reset implements Policy.
func (c *Clock) Reset() {
	c.ring.Init()
	c.hand = nil
	c.pos = make(map[core.PageID]*list.Element)
	c.ref = make(map[core.PageID]bool)
}

// Resize implements Policy: CLOCK's victim choice is capacity-independent.
func (c *Clock) Resize(int) {}

// Surrender implements Policy: same victim as Evict (the hand sweeps).
func (c *Clock) Surrender(evictable func(core.PageID) bool) (core.PageID, bool) {
	return c.Evict(evictable)
}
