package cache

import (
	"mcpaging/internal/core"
)

// IncomingEvictor is implemented by policies whose victim choice depends
// on the identity of the page about to be inserted (ARC consults its
// ghost lists). Strategies prefer EvictFor over Evict when available.
type IncomingEvictor interface {
	EvictFor(incoming core.PageID, evictable func(core.PageID) bool) (core.PageID, bool)
}

// arcList is a recency list with O(1) membership, front = LRU. It is
// backed by the same intrusive recencyList as the LRU-family policies,
// so ARC's hit path (remove + pushMRU) is allocation-free after the
// dense node arrays warm up.
type arcList struct{ r recencyList }

func newArcList() *arcList { return &arcList{r: newRecencyList()} }

//mcpaging:hotpath
func (a *arcList) len() int { return a.r.len() }

//mcpaging:hotpath
func (a *arcList) has(p core.PageID) bool { return a.r.contains(p) }

//mcpaging:hotpath
func (a *arcList) pushMRU(p core.PageID) { a.r.insert(p) }

//mcpaging:hotpath
func (a *arcList) remove(p core.PageID) bool { return a.r.remove(p) }

// lru returns the least recent page passing the filter (nil = any)
// without removing it.
//
//mcpaging:hotpath
func (a *arcList) lru(filter func(core.PageID) bool) (core.PageID, bool) {
	for p := a.r.front(); p != core.NoPage; p = a.r.nextOf(p) {
		if filter == nil || filter(p) {
			return p, true
		}
	}
	return core.NoPage, false
}

func (a *arcList) reset() { a.r.reset() }

// ARC implements the Adaptive Replacement Cache of Megiddo and Modha
// (FAST'03) behind the Policy interface: resident lists T1 (recency) and
// T2 (frequency), ghost lists B1/B2 of recently evicted pages, and an
// adaptive target p̂ for |T1| that grows on B1 ghost hits and shrinks on
// B2 ghost hits. ARC is scan-resistant, which makes it an interesting
// shared-cache contender in the E13 matrix: one core's streaming scan
// cannot flush another core's hot set as easily as under LRU.
//
// Adaptation to this library's split fault path: the strategy asks for a
// victim (EvictFor, which runs ARC's REPLACE with p̂ already adjusted
// for the incoming page) and then inserts the page (Insert, which
// classifies it by ghost status and trims the ghosts). When the cache
// has free cells the strategy skips eviction and Insert alone performs
// the miss bookkeeping. If ARC's preferred victim is pinned (in flight),
// the other resident list is tried — a documented deviation forced by
// the multicore model's no-evict-while-fetching rule.
type ARC struct {
	c              int
	sized          bool // Resize was called; distinguishes Resize(0) from never-resized
	t1, t2, b1, b2 *arcList
	target         int // p̂: target size of T1
	adjustedFor    core.PageID
	hasAdjusted    bool
}

// NewARC returns an empty ARC; Resize must be called before use.
func NewARC() *ARC {
	return &ARC{t1: newArcList(), t2: newArcList(), b1: newArcList(), b2: newArcList(),
		adjustedFor: core.NoPage}
}

// Name implements Policy.
func (a *ARC) Name() string { return "ARC" }

// Resize implements Policy: the capacity bounds the ghost directory and
// the adaptation target p̂, which is clamped into the new range when a
// dynamic partition shrinks the part.
func (a *ARC) Resize(c int) {
	a.c = c
	a.sized = true
	if a.target > c {
		a.target = c
	}
}

// Surrender implements Policy: a shrinking part gives up ARC's REPLACE
// victim, exactly as Evict would choose without ghost-hit context.
func (a *ARC) Surrender(evictable func(core.PageID) bool) (core.PageID, bool) {
	return a.Evict(evictable)
}

// adjust applies ARC's p̂ update for a miss on page x, once per miss.
func (a *ARC) adjust(x core.PageID) {
	if a.hasAdjusted && a.adjustedFor == x {
		return
	}
	switch {
	case a.b1.has(x):
		d := 1
		if a.b1.len() > 0 && a.b2.len() > a.b1.len() {
			d = a.b2.len() / a.b1.len()
		}
		a.target += d
		if a.target > a.c {
			a.target = a.c
		}
	case a.b2.has(x):
		d := 1
		if a.b2.len() > 0 && a.b1.len() > a.b2.len() {
			d = a.b1.len() / a.b2.len()
		}
		a.target -= d
		if a.target < 0 {
			a.target = 0
		}
	}
	a.adjustedFor, a.hasAdjusted = x, true
}

// EvictFor implements IncomingEvictor: ARC's REPLACE step.
func (a *ARC) EvictFor(x core.PageID, evictable func(core.PageID) bool) (core.PageID, bool) {
	if !a.sized && a.c == 0 {
		// Tolerate missing Resize by adopting the current occupancy.
		// An explicit Resize(0) — an elastic quota shrunk to nothing —
		// must NOT be overwritten: the part really has zero cells.
		a.c = a.t1.len() + a.t2.len()
	}
	a.adjust(x)
	fromT1 := a.t1.len() >= 1 &&
		(a.t1.len() > a.target || (a.b2.has(x) && a.t1.len() == a.target))
	order := []*arcList{a.t1, a.t2}
	ghosts := []*arcList{a.b1, a.b2}
	if !fromT1 {
		order[0], order[1] = a.t2, a.t1
		ghosts[0], ghosts[1] = a.b2, a.b1
	}
	for i, lst := range order {
		if v, ok := lst.lru(evictable); ok {
			lst.remove(v)
			ghosts[i].pushMRU(v)
			return v, true
		}
	}
	return core.NoPage, false
}

// Evict implements Policy (used when the caller has no incoming page,
// e.g. staged-partition shrinks): REPLACE without ghost-hit context.
func (a *ARC) Evict(evictable func(core.PageID) bool) (core.PageID, bool) {
	fromT1 := a.t1.len() >= 1 && a.t1.len() > a.target
	order := []*arcList{a.t1, a.t2}
	ghosts := []*arcList{a.b1, a.b2}
	if !fromT1 {
		order[0], order[1] = a.t2, a.t1
		ghosts[0], ghosts[1] = a.b2, a.b1
	}
	for i, lst := range order {
		if v, ok := lst.lru(evictable); ok {
			lst.remove(v)
			ghosts[i].pushMRU(v)
			return v, true
		}
	}
	return core.NoPage, false
}

// Insert implements Policy: the miss path's placement and ghost
// maintenance.
func (a *ARC) Insert(p core.PageID, _ Access) {
	if a.t1.has(p) || a.t2.has(p) {
		panic("cache: duplicate insert of page in ARC domain")
	}
	if !a.sized && a.c == 0 {
		// Same missing-Resize tolerance as EvictFor; an explicit
		// Resize(0) keeps its zero capacity.
		a.c = a.t1.len() + a.t2.len() + 1
	}
	a.adjust(p)
	if a.b1.has(p) || a.b2.has(p) {
		// Ghost hit: the page has earned frequency status.
		a.b1.remove(p)
		a.b2.remove(p)
		a.t2.pushMRU(p)
	} else {
		a.t1.pushMRU(p)
	}
	a.trimGhosts()
	a.hasAdjusted = false
	a.adjustedFor = core.NoPage
}

// trimGhosts enforces |T1|+|B1| ≤ c and total directory ≤ 2c.
func (a *ARC) trimGhosts() {
	for a.t1.len()+a.b1.len() > a.c && a.b1.len() > 0 {
		if v, ok := a.b1.lru(nil); ok {
			a.b1.remove(v)
		}
	}
	for a.t1.len()+a.t2.len()+a.b1.len()+a.b2.len() > 2*a.c && a.b2.len() > 0 {
		if v, ok := a.b2.lru(nil); ok {
			a.b2.remove(v)
		}
	}
}

// Touch implements Policy: a hit promotes the page to T2 MRU.
func (a *ARC) Touch(p core.PageID, _ Access) {
	if a.t1.remove(p) || a.t2.remove(p) {
		a.t2.pushMRU(p)
	}
}

// Remove implements Policy.
func (a *ARC) Remove(p core.PageID) bool {
	return a.t1.remove(p) || a.t2.remove(p)
}

// Contains implements Policy.
func (a *ARC) Contains(p core.PageID) bool { return a.t1.has(p) || a.t2.has(p) }

// Len implements Policy.
func (a *ARC) Len() int { return a.t1.len() + a.t2.len() }

// Reset implements Policy; the capacity survives.
func (a *ARC) Reset() {
	a.t1.reset()
	a.t2.reset()
	a.b1.reset()
	a.b2.reset()
	a.target = 0
	a.hasAdjusted = false
	a.adjustedFor = core.NoPage
}
