package cache

import (
	"math/rand"
	"testing"

	"mcpaging/internal/core"
)

// fixedOracle gives FITF a deterministic future without a simulator.
type fixedOracle struct{}

func (fixedOracle) NextUse(p core.PageID) int64 { return int64(p%7) * 11 }

// TestSurrenderMatchesEvict pins the shrink half of the partition
// contract: for every policy, Surrender selects exactly the page Evict
// would. Two same-seed instances receive an identical request mix; one
// makes room with Evict, the other with Surrender, and the victims must
// agree at every step (which also keeps the twins in lockstep).
func TestSurrenderMatchesEvict(t *testing.T) {
	all := func(core.PageID) bool { return true }
	const cap = 8
	for _, name := range PolicyNames() {
		t.Run(name, func(t *testing.T) {
			mk, err := NewFactory(name, 42)
			if err != nil {
				t.Fatal(err)
			}
			a, b := mk(), mk()
			for _, p := range []Policy{a, b} {
				p.Resize(cap)
				if ou, ok := p.(OracleUser); ok {
					ou.SetOracle(fixedOracle{})
				}
			}
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 400; i++ {
				pg := core.PageID(rng.Intn(24))
				at := Access{Core: 0, Time: int64(i)}
				if a.Contains(pg) != b.Contains(pg) {
					t.Fatalf("op %d: twins diverged on page %d", i, pg)
				}
				if a.Contains(pg) {
					a.Touch(pg, at)
					b.Touch(pg, at)
					continue
				}
				if a.Len() == cap {
					va, oka := a.Evict(all)
					vb, okb := b.Surrender(all)
					if oka != okb || va != vb {
						t.Fatalf("op %d: Evict=(%d,%v) Surrender=(%d,%v)", i, va, oka, vb, okb)
					}
				}
				a.Insert(pg, at)
				b.Insert(pg, at)
			}
			// Drain: surrendering every remaining cell must follow the
			// policy's eviction order to the last page.
			for a.Len() > 0 {
				va, oka := a.Evict(all)
				vb, okb := b.Surrender(all)
				if oka != okb || va != vb {
					t.Fatalf("drain: Evict=(%d,%v) Surrender=(%d,%v)", va, oka, vb, okb)
				}
				if !oka {
					break
				}
			}
		})
	}
}
