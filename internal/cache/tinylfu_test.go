package cache

import (
	"testing"

	"mcpaging/internal/core"
)

func TestTinyLFUBasics(t *testing.T) {
	tl := NewTinyLFU()
	tl.Resize(8)
	for p := core.PageID(0); p < 8; p++ {
		tl.Insert(p, acc(int64(p)))
	}
	if tl.Len() != 8 {
		t.Fatalf("Len = %d", tl.Len())
	}
	for p := core.PageID(0); p < 8; p++ {
		if !tl.Contains(p) {
			t.Fatalf("missing page %d", p)
		}
	}
	v, ok := tl.Evict(nil)
	if !ok || tl.Contains(v) || tl.Len() != 7 {
		t.Fatalf("evict broken: v=%d ok=%v len=%d", v, ok, tl.Len())
	}
	if !tl.Remove(core.PageID(7)) && !tl.Contains(7) {
		// 7 may have been the victim; either way Remove of a missing
		// page must return false.
		if tl.Remove(7) {
			t.Fatal("double remove")
		}
	}
	tl.Reset()
	if tl.Len() != 0 {
		t.Fatal("reset did not clear")
	}
	tl.Insert(1, acc(0)) // must not panic after reset
}

func TestTinyLFUAdmissionProtectsHotPages(t *testing.T) {
	tl := NewTinyLFU()
	tl.Resize(4)
	// Build frequency for the hot pages.
	for p := core.PageID(0); p < 3; p++ {
		tl.Insert(p, acc(int64(p)))
	}
	for rep := 0; rep < 10; rep++ {
		for p := core.PageID(0); p < 3; p++ {
			tl.Touch(p, acc(int64(10+rep)))
		}
	}
	// A cold page arrives; under pressure the duel must evict cold
	// pages, never the hot trio.
	tl.Insert(100, acc(50))
	for i := 0; i < 5; i++ {
		v, ok := tl.Evict(nil)
		if !ok {
			break
		}
		if v < 3 {
			t.Fatalf("hot page %d evicted before cold ones", v)
		}
		tl.Insert(core.PageID(200+i), acc(int64(60+i)))
	}
}

func TestTinyLFUScanResistance(t *testing.T) {
	// Same harness as the ARC scan test: hot set + one-shot scans.
	const capacity = 6
	run := func(mk func() Policy) (hits int) {
		p := mk()
		p.Resize(capacity)
		access := func(pg core.PageID, i int) {
			if p.Contains(pg) {
				p.Touch(pg, acc(int64(i)))
				hits++
				return
			}
			if p.Len() >= capacity {
				p.Evict(nil)
			}
			p.Insert(pg, acc(int64(i)))
		}
		step := 0
		for round := 0; round < 50; round++ {
			for rep := 0; rep < 2; rep++ {
				for h := core.PageID(0); h < 4; h++ {
					access(h, step)
					step++
				}
			}
			for s := 0; s < 8; s++ {
				access(core.PageID(1000+round*8+s), step)
				step++
			}
		}
		return hits
	}
	tinyHits := run(func() Policy { return NewTinyLFU() })
	lruHits := run(func() Policy { return NewLRU() })
	if tinyHits <= lruHits {
		t.Fatalf("TinyLFU hits %d should beat LRU hits %d under scan pollution", tinyHits, lruHits)
	}
}

func TestTinyLFURespectsEvictable(t *testing.T) {
	tl := NewTinyLFU()
	tl.Resize(3)
	tl.Insert(1, acc(0))
	tl.Insert(2, acc(1))
	tl.Insert(3, acc(2))
	v, ok := tl.Evict(func(p core.PageID) bool { return p == 2 })
	if !ok || v != 2 {
		t.Fatalf("predicate evict = %d,%v; want 2", v, ok)
	}
	if _, ok := tl.Evict(func(core.PageID) bool { return false }); ok {
		t.Fatal("all-pinned evict should fail")
	}
}

func TestCMSketch(t *testing.T) {
	var s cmSketch
	s.init()
	for i := 0; i < 10; i++ {
		s.add(42)
	}
	s.add(7)
	if s.estimate(42) < s.estimate(7) {
		t.Fatal("sketch ordering wrong")
	}
	if s.estimate(42) > 15 {
		t.Fatal("counter not saturating")
	}
	before := s.estimate(42)
	s.halve()
	if s.estimate(42) != before/2 {
		t.Fatalf("halve: %d -> %d", before, s.estimate(42))
	}
}
