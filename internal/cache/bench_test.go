package cache

import (
	"math/rand"
	"testing"

	"mcpaging/internal/core"
)

// benchPolicy drives a policy through a zipf-ish access pattern with a
// fixed domain capacity, measuring combined insert/touch/evict
// throughput.
func benchPolicy(b *testing.B, name string) {
	mk, err := NewFactory(name, 1)
	if err != nil {
		b.Fatal(err)
	}
	const capacity = 256
	rng := rand.New(rand.NewSource(7))
	zipf := rand.NewZipf(rng, 1.2, 1, 4095)
	accesses := make([]core.PageID, 1<<16)
	for i := range accesses {
		accesses[i] = core.PageID(zipf.Uint64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := mk()
		p.Resize(capacity)
		if ou, ok := p.(OracleUser); ok {
			ou.SetOracle(mapOracle{})
		}
		for step, pg := range accesses {
			if p.Contains(pg) {
				p.Touch(pg, Access{Time: int64(step)})
				continue
			}
			if p.Len() >= capacity {
				if ie, ok := p.(IncomingEvictor); ok {
					ie.EvictFor(pg, nil)
				} else if _, ok := p.Evict(nil); !ok {
					b.Fatal("evict failed")
				}
			}
			p.Insert(pg, Access{Time: int64(step)})
		}
	}
	b.ReportMetric(float64(len(accesses)*b.N)/b.Elapsed().Seconds(), "acc/s")
}

func BenchmarkPolicyLRU(b *testing.B)     { benchPolicy(b, "LRU") }
func BenchmarkPolicyFIFO(b *testing.B)    { benchPolicy(b, "FIFO") }
func BenchmarkPolicyCLOCK(b *testing.B)   { benchPolicy(b, "CLOCK") }
func BenchmarkPolicyLFU(b *testing.B)     { benchPolicy(b, "LFU") }
func BenchmarkPolicyMARK(b *testing.B)    { benchPolicy(b, "MARK") }
func BenchmarkPolicyRMARK(b *testing.B)   { benchPolicy(b, "RMARK") }
func BenchmarkPolicyRAND(b *testing.B)    { benchPolicy(b, "RAND") }
func BenchmarkPolicyARC(b *testing.B)     { benchPolicy(b, "ARC") }
func BenchmarkPolicySLRU(b *testing.B)    { benchPolicy(b, "SLRU") }
func BenchmarkPolicyLRU2(b *testing.B)    { benchPolicy(b, "LRU2") }
func BenchmarkPolicyTinyLFU(b *testing.B) { benchPolicy(b, "TINYLFU") }
