package cache

import (
	"testing"

	"mcpaging/internal/core"
)

func TestARCGhostPromotion(t *testing.T) {
	a := NewARC()
	a.Resize(2)
	a.Insert(1, acc(0))
	a.Insert(2, acc(1))
	// Miss on 3: evict (T1 LRU = 1 goes to B1), insert 3.
	v, ok := a.EvictFor(3, nil)
	if !ok || v != 1 {
		t.Fatalf("EvictFor = %d,%v; want 1", v, ok)
	}
	a.Insert(3, acc(2))
	// Miss on 1 again: it is a B1 ghost, so after reinsertion it must
	// land in T2 (frequency list).
	v, ok = a.EvictFor(1, nil)
	if !ok {
		t.Fatal("second EvictFor failed")
	}
	a.Remove(core.NoPage) // no-op; keeps the linter honest about Remove
	a.Insert(1, acc(3))
	// A subsequent eviction for a fresh page should prefer T1 (recency)
	// over the ghost-promoted page in T2 when p̂ grew.
	if !a.Contains(1) {
		t.Fatal("page 1 lost after ghost promotion")
	}
	if a.Len() != 2 {
		t.Fatalf("Len = %d, want 2", a.Len())
	}
}

func TestARCLenBounded(t *testing.T) {
	a := NewARC()
	a.Resize(4)
	for i := 0; i < 50; i++ {
		p := core.PageID(i % 9)
		if a.Contains(p) {
			a.Touch(p, acc(int64(i)))
			continue
		}
		if a.Len() >= 4 {
			if _, ok := a.EvictFor(p, nil); !ok {
				t.Fatal("eviction failed with full domain")
			}
		}
		a.Insert(p, acc(int64(i)))
		if a.Len() > 4 {
			t.Fatalf("domain exceeded capacity: %d", a.Len())
		}
	}
}

func TestARCRespectsEvictable(t *testing.T) {
	a := NewARC()
	a.Resize(2)
	a.Insert(1, acc(0))
	a.Insert(2, acc(1))
	v, ok := a.EvictFor(3, func(p core.PageID) bool { return p == 2 })
	if !ok || v != 2 {
		t.Fatalf("EvictFor with predicate = %d,%v; want 2", v, ok)
	}
	if _, ok := a.EvictFor(4, func(core.PageID) bool { return false }); ok {
		t.Fatal("eviction with all-pinned domain should fail")
	}
}

func TestARCReset(t *testing.T) {
	a := NewARC()
	a.Resize(2)
	a.Insert(1, acc(0))
	a.Reset()
	if a.Len() != 0 || a.Contains(1) {
		t.Fatal("reset did not clear")
	}
	a.Insert(1, acc(1)) // must not panic after reset
}

// TestARCScanResistance drives ARC and LRU through a workload that mixes
// a hot set with a one-shot scan; ARC must keep more of the hot set.
func TestARCScanResistance(t *testing.T) {
	run := func(mk func() Policy) (hits int) {
		p := mk()
		p.Resize(6)
		access := func(pg core.PageID, i int) {
			if p.Contains(pg) {
				p.Touch(pg, acc(int64(i)))
				hits++
				return
			}
			if p.Len() >= 6 {
				if ie, ok := p.(IncomingEvictor); ok {
					ie.EvictFor(pg, nil)
				} else {
					p.Evict(nil)
				}
			}
			p.Insert(pg, acc(int64(i)))
		}
		step := 0
		for round := 0; round < 50; round++ {
			// Hot set of 4 pages, touched twice per round.
			for rep := 0; rep < 2; rep++ {
				for h := core.PageID(0); h < 4; h++ {
					access(h, step)
					step++
				}
			}
			// One-shot scan pages, never reused; the scan is longer
			// than the cache, so LRU flushes the hot set every round.
			for s := 0; s < 8; s++ {
				access(core.PageID(1000+round*8+s), step)
				step++
			}
		}
		return hits
	}
	arcHits := run(func() Policy { return NewARC() })
	lruHits := run(func() Policy { return NewLRU() })
	if arcHits <= lruHits {
		t.Fatalf("ARC hits %d should beat LRU hits %d under scan pollution", arcHits, lruHits)
	}
}

func TestSLRUPromotion(t *testing.T) {
	s := NewSLRU()
	s.Resize(4) // protected cap 2
	s.Insert(1, acc(0))
	s.Insert(2, acc(1))
	s.Touch(1, acc(2)) // 1 → protected
	// Probationary now {2}; eviction must take 2, not the protected 1.
	v, ok := s.Evict(nil)
	if !ok || v != 2 {
		t.Fatalf("evict = %d,%v; want 2", v, ok)
	}
	if !s.Contains(1) {
		t.Fatal("protected page evicted")
	}
}

func TestSLRUProtectedOverflowDemotes(t *testing.T) {
	s := NewSLRU()
	s.Resize(4) // protected cap 2
	for p := core.PageID(1); p <= 3; p++ {
		s.Insert(p, acc(int64(p)))
		s.Touch(p, acc(int64(p)+10)) // promote all three
	}
	// Only 2 fit protected; one was demoted, so an eviction succeeds
	// from probationary and the domain stays complete.
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	v, ok := s.Evict(nil)
	if !ok || v != 1 {
		t.Fatalf("evict = %d,%v; want demoted LRU page 1", v, ok)
	}
}

func TestSLRUFallsBackToProtected(t *testing.T) {
	s := NewSLRU()
	s.Resize(2)
	s.Insert(1, acc(0))
	s.Touch(1, acc(1))
	// Probationary empty: protected page must still be evictable.
	v, ok := s.Evict(nil)
	if !ok || v != 1 {
		t.Fatalf("evict = %d,%v; want 1", v, ok)
	}
}

func TestLRU2Order(t *testing.T) {
	l := NewLRU2()
	l.Insert(1, acc(0))
	l.Insert(2, acc(1))
	l.Touch(1, acc(2))
	l.Touch(2, acc(3))
	l.Touch(2, acc(4))
	// Second-most-recent: 1 → t0-insert, 2 → t3. Victim = 1.
	v, ok := l.Evict(nil)
	if !ok || v != 1 {
		t.Fatalf("evict = %d,%v; want 1", v, ok)
	}
}

func TestLRU2OnceSeenFirst(t *testing.T) {
	l := NewLRU2()
	l.Insert(1, acc(0))
	l.Touch(1, acc(1)) // twice-seen
	l.Insert(2, acc(2))
	l.Insert(3, acc(3))
	// 2 and 3 are once-seen: they rank before 1; among them, older last
	// access (2) first.
	v, _ := l.Evict(nil)
	if v != 2 {
		t.Fatalf("first evict = %d; want 2", v)
	}
	v, _ = l.Evict(nil)
	if v != 3 {
		t.Fatalf("second evict = %d; want 3", v)
	}
	v, _ = l.Evict(nil)
	if v != 1 {
		t.Fatalf("third evict = %d; want 1", v)
	}
}

// TestARCMissingResizeAdoptsOccupancy pins the missing-Resize
// fallback: a never-resized ARC adopts a capacity from its occupancy on
// the first Insert (occupancy + 1) so REPLACE still produces victims
// instead of running with c = 0, where the p-hat arithmetic and ghost
// trimming would degenerate.
func TestARCMissingResizeAdoptsOccupancy(t *testing.T) {
	a := NewARC()
	a.Insert(1, acc(0))
	if a.c != 1 {
		t.Fatalf("adopted capacity = %d, want 1 (first insert into empty ARC)", a.c)
	}
	a.Insert(2, acc(1))
	v, ok := a.EvictFor(3, nil)
	if !ok || v != 1 {
		t.Fatalf("EvictFor without Resize = %d,%v; want 1 (T1 LRU)", v, ok)
	}
	// The adoption is one-shot: later operations keep the adopted size.
	if a.c != 1 {
		t.Fatalf("capacity drifted to %d after adoption", a.c)
	}
}

// TestARCResizeZeroIsRespected pins the elastic-quota contract: an
// explicit Resize(0) — a part shrunk to nothing — must not be
// overwritten by the missing-Resize fallback. Every resident page stays
// evictable and the capacity stays zero.
func TestARCResizeZeroIsRespected(t *testing.T) {
	a := NewARC()
	a.Resize(2)
	a.Insert(1, acc(0))
	a.Insert(2, acc(1))
	a.Resize(0)
	if a.c != 0 {
		t.Fatalf("capacity after Resize(0) = %d, want 0", a.c)
	}
	// EvictFor must not resurrect the capacity from occupancy.
	v, ok := a.EvictFor(3, nil)
	if !ok {
		t.Fatal("EvictFor after Resize(0) failed")
	}
	if a.c != 0 {
		t.Fatalf("Resize(0) overwritten: capacity = %d", a.c)
	}
	// The remaining resident drains through Surrender like any shrink.
	w, ok := a.Surrender(nil)
	if !ok {
		t.Fatal("Surrender after Resize(0) failed")
	}
	if v == w {
		t.Fatalf("Surrender repeated victim %d", w)
	}
	if a.Len() != 0 {
		t.Fatalf("Len after draining = %d, want 0", a.Len())
	}
	// Growing again restores normal operation.
	a.Resize(2)
	a.Insert(5, acc(4))
	if !a.Contains(5) || a.c != 2 {
		t.Fatal("regrow after Resize(0) broken")
	}
}

// TestARCResizeZeroSurvivesReset pins Reset's "capacity survives"
// contract for the sized flag too: a reset ARC that was explicitly
// sized never re-enters the missing-Resize fallback.
func TestARCResizeZeroSurvivesReset(t *testing.T) {
	a := NewARC()
	a.Resize(0)
	a.Reset()
	a.Insert(1, acc(0))
	if _, ok := a.EvictFor(2, nil); !ok {
		t.Fatal("EvictFor failed after reset")
	}
	if a.c != 0 {
		t.Fatalf("fallback resurrected capacity %d after Reset", a.c)
	}
}
