package cache

import (
	"math/rand"
	"slices"

	"mcpaging/internal/core"
)

// Random evicts a uniformly random evictable page. The generator is
// seeded explicitly so a simulation with a Random policy is reproducible;
// candidates are sorted before sampling so the choice does not depend on
// map iteration order.
type Random struct {
	pages map[core.PageID]struct{}
	buf   []core.PageID // candidate scratch, reused across evictions
	rng   *rand.Rand
	seed  int64
}

// NewRandom returns an empty Random policy driven by the given seed.
func NewRandom(seed int64) *Random {
	return &Random{
		pages: make(map[core.PageID]struct{}),
		rng:   rand.New(rand.NewSource(seed)),
		seed:  seed,
	}
}

// Name implements Policy.
func (r *Random) Name() string { return "RAND" }

// Insert implements Policy.
func (r *Random) Insert(p core.PageID, _ Access) {
	if _, ok := r.pages[p]; ok {
		panic("cache: duplicate insert of page in RAND domain")
	}
	r.pages[p] = struct{}{}
}

// Touch implements Policy. Random ignores hits.
func (r *Random) Touch(core.PageID, Access) {}

// Evict implements Policy.
func (r *Random) Evict(evictable func(core.PageID) bool) (core.PageID, bool) {
	cands := r.buf[:0]
	for p := range r.pages {
		if evictable == nil || evictable(p) {
			cands = append(cands, p)
		}
	}
	r.buf = cands
	if len(cands) == 0 {
		return core.NoPage, false
	}
	slices.Sort(cands)
	v := cands[r.rng.Intn(len(cands))]
	delete(r.pages, v)
	return v, true
}

// Remove implements Policy.
func (r *Random) Remove(p core.PageID) bool {
	if _, ok := r.pages[p]; !ok {
		return false
	}
	delete(r.pages, p)
	return true
}

// Contains implements Policy.
func (r *Random) Contains(p core.PageID) bool {
	_, ok := r.pages[p]
	return ok
}

// Len implements Policy.
func (r *Random) Len() int { return len(r.pages) }

// Reset implements Policy. The generator is re-seeded so a reset policy
// replays identically.
func (r *Random) Reset() {
	clear(r.pages)
	r.rng = rand.New(rand.NewSource(r.seed))
}

// Resize implements Policy: RAND's victim choice is capacity-independent.
func (r *Random) Resize(int) {}

// Surrender implements Policy: same victim as Evict (consumes one draw
// from the seeded generator).
func (r *Random) Surrender(evictable func(core.PageID) bool) (core.PageID, bool) {
	return r.Evict(evictable)
}
