package cache

import (
	"mcpaging/internal/core"
)

// TinyLFU implements a W-TinyLFU-style policy (Einziger, Friedman &
// Manes 2017): a small admission window runs plain LRU; the main region
// runs SLRU; and a count-min sketch of recent access frequencies arbitrates
// admission — a page evicted from the window enters the main region only
// if the sketch says it is more popular than the main region's next
// victim. The sketch halves itself periodically so frequency estimates
// age. The admission filter makes the policy strongly scan-resistant,
// rounding out the modern end of the E13 policy matrix.
//
// Adaptation to this library's interface: the simulator owns residency,
// so "window" and "main" are logical segments of one domain. On Evict,
// the window's LRU page duels the main region's probationary LRU victim
// by sketch frequency; the loser leaves the domain.
type TinyLFU struct {
	c         int
	windowCap int

	window *arcList // front = LRU
	main   *SLRU

	sketch  cmSketch
	touches int64 // accesses since the last sketch reset
}

// NewTinyLFU returns an empty TinyLFU; Resize should be called before
// use.
func NewTinyLFU() *TinyLFU {
	t := &TinyLFU{window: newArcList(), main: NewSLRU()}
	t.sketch.init()
	return t
}

// Name implements Policy.
func (t *TinyLFU) Name() string { return "TINYLFU" }

// Resize implements Policy: ~1/8 of the domain is admission window (at
// least 1 cell), the rest is the SLRU main region. Pages over the new
// window cap migrate into the main region on the next insert.
func (t *TinyLFU) Resize(c int) {
	t.c = c
	t.windowCap = c / 8
	if t.windowCap < 1 {
		t.windowCap = 1
	}
	t.main.Resize(c - t.windowCap)
}

// Surrender implements Policy: same victim as Evict (the frequency duel
// between the window's LRU page and the main region's victim).
func (t *TinyLFU) Surrender(evictable func(core.PageID) bool) (core.PageID, bool) {
	return t.Evict(evictable)
}

// record updates the frequency sketch and ages it.
func (t *TinyLFU) record(p core.PageID) {
	t.sketch.add(uint64(p))
	t.touches++
	limit := int64(t.c) * 10
	if limit < 64 {
		limit = 64
	}
	if t.touches >= limit {
		t.sketch.halve()
		t.touches = 0
	}
}

// Insert implements Policy: new pages enter the admission window; if the
// window is over its capacity, its LRU page is promoted into the main
// region (the eviction duel happens in Evict, where capacity pressure
// actually exists).
func (t *TinyLFU) Insert(p core.PageID, at Access) {
	if t.window.has(p) || t.main.Contains(p) {
		panic("cache: duplicate insert of page in TINYLFU domain")
	}
	t.record(p)
	t.window.pushMRU(p)
	for t.window.len() > t.windowCap {
		v, ok := t.window.lru(nil)
		if !ok {
			break
		}
		t.window.remove(v)
		t.main.Insert(v, at)
	}
}

// Touch implements Policy.
func (t *TinyLFU) Touch(p core.PageID, at Access) {
	t.record(p)
	switch {
	case t.window.has(p):
		t.window.remove(p)
		t.window.pushMRU(p)
	case t.main.Contains(p):
		t.main.Touch(p, at)
	}
}

// Evict implements Policy: the duel. The window's LRU candidate and the
// main region's victim compare sketch frequencies; the less popular one
// is evicted.
func (t *TinyLFU) Evict(evictable func(core.PageID) bool) (core.PageID, bool) {
	wv, wok := t.window.lru(evictable)
	// Peek the main region's victim by evicting and reinserting if the
	// duel goes the other way would be messy; instead duel on peeked
	// values.
	mv, mok := t.main.peekVictim(evictable)
	switch {
	case wok && mok:
		if t.sketch.estimate(uint64(wv)) > t.sketch.estimate(uint64(mv)) {
			// Window page is hotter: evict the main victim and promote
			// the window page into the main region.
			t.main.evictExact(mv)
			t.window.remove(wv)
			t.main.Insert(wv, Access{})
			return mv, true
		}
		t.window.remove(wv)
		return wv, true
	case wok:
		t.window.remove(wv)
		return wv, true
	case mok:
		t.main.evictExact(mv)
		return mv, true
	}
	return core.NoPage, false
}

// Remove implements Policy.
func (t *TinyLFU) Remove(p core.PageID) bool {
	return t.window.remove(p) || t.main.Remove(p)
}

// Contains implements Policy.
func (t *TinyLFU) Contains(p core.PageID) bool {
	return t.window.has(p) || t.main.Contains(p)
}

// Len implements Policy.
func (t *TinyLFU) Len() int { return t.window.len() + t.main.Len() }

// Reset implements Policy; capacity survives.
func (t *TinyLFU) Reset() {
	t.window.reset()
	t.main.Reset()
	t.sketch.init()
	t.touches = 0
}

// cmSketch is a 4-row count-min sketch with saturating byte counters
// and halving decay. Hashing is a salted splitmix64 finaliser, fixed and
// deterministic so simulations reproduce exactly.
type cmSketch struct {
	rows [4][]byte
}

const cmWidth = 512 // power of two

func (s *cmSketch) init() {
	for i := range s.rows {
		s.rows[i] = make([]byte, cmWidth)
	}
}

// cmHash mixes the key with a per-row salt (splitmix64 finaliser).
func cmHash(key, salt uint64) uint64 {
	x := key + salt*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

func (s *cmSketch) add(key uint64) {
	for i := range s.rows {
		idx := cmHash(key, uint64(i+1)) & (cmWidth - 1)
		if s.rows[i][idx] < 15 {
			s.rows[i][idx]++
		}
	}
}

func (s *cmSketch) estimate(key uint64) byte {
	min := byte(255)
	for i := range s.rows {
		idx := cmHash(key, uint64(i+1)) & (cmWidth - 1)
		if s.rows[i][idx] < min {
			min = s.rows[i][idx]
		}
	}
	return min
}

func (s *cmSketch) halve() {
	for i := range s.rows {
		for j := range s.rows[i] {
			s.rows[i][j] >>= 1
		}
	}
}
