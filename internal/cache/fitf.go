package cache

import (
	"mcpaging/internal/core"
)

// FITF (Furthest-In-The-Future) is the offline eviction rule: evict the
// page whose next request is furthest in the future according to the
// attached Oracle, breaking ties by smallest page ID.
//
// In sequential paging FITF (Belady's algorithm) is optimal. One of the
// paper's observations (remark after Lemma 4) is that in the multicore
// model shared FITF is *not* optimal once τ > K/p, because eviction
// choices change the future alignment of the sequences; experiment E8
// demonstrates this with the Lemma 4 construction.
//
// Per-part FITF on a disjoint request set *is* optimal for that part,
// because a core's own requests are never reordered relative to each
// other; this is the sP_OPT per-part eviction rule used by Lemma 1's
// baseline.
type FITF struct {
	pages  map[core.PageID]struct{}
	oracle Oracle
}

// NewFITF returns an empty FITF policy. An Oracle must be attached via
// SetOracle before the first eviction.
func NewFITF() *FITF { return &FITF{pages: make(map[core.PageID]struct{})} }

// Name implements Policy.
func (f *FITF) Name() string { return "FITF" }

// SetOracle implements OracleUser.
func (f *FITF) SetOracle(o Oracle) { f.oracle = o }

// Insert implements Policy.
func (f *FITF) Insert(p core.PageID, _ Access) {
	if _, ok := f.pages[p]; ok {
		panic("cache: duplicate insert of page in FITF domain")
	}
	f.pages[p] = struct{}{}
}

// Touch implements Policy. FITF keeps no recency state.
func (f *FITF) Touch(core.PageID, Access) {}

// Evict implements Policy.
func (f *FITF) Evict(evictable func(core.PageID) bool) (core.PageID, bool) {
	if f.oracle == nil {
		panic("cache: FITF policy used without an oracle")
	}
	best := core.NoPage
	var bestNext int64 = -1
	for p := range f.pages {
		if evictable != nil && !evictable(p) {
			continue
		}
		next := f.oracle.NextUse(p)
		if next > bestNext || (next == bestNext && (best == core.NoPage || p < best)) {
			best, bestNext = p, next
		}
	}
	if best == core.NoPage {
		return core.NoPage, false
	}
	delete(f.pages, best)
	return best, true
}

// Remove implements Policy.
func (f *FITF) Remove(p core.PageID) bool {
	if _, ok := f.pages[p]; !ok {
		return false
	}
	delete(f.pages, p)
	return true
}

// Contains implements Policy.
func (f *FITF) Contains(p core.PageID) bool {
	_, ok := f.pages[p]
	return ok
}

// Len implements Policy.
func (f *FITF) Len() int { return len(f.pages) }

// Reset implements Policy. The oracle attachment is preserved.
func (f *FITF) Reset() { f.pages = make(map[core.PageID]struct{}) }
