package cache

import (
	"mcpaging/internal/core"
)

// FITF (Furthest-In-The-Future) is the offline eviction rule: evict the
// page whose next request is furthest in the future according to the
// attached Oracle, breaking ties by smallest page ID.
//
// In sequential paging FITF (Belady's algorithm) is optimal. One of the
// paper's observations (remark after Lemma 4) is that in the multicore
// model shared FITF is *not* optimal once τ > K/p, because eviction
// choices change the future alignment of the sequences; experiment E8
// demonstrates this with the Lemma 4 construction.
//
// Per-part FITF on a disjoint request set *is* optimal for that part,
// because a core's own requests are never reordered relative to each
// other; this is the sP_OPT per-part eviction rule used by Lemma 1's
// baseline.
//
// The domain is a flat slice with an array-backed position index, so the
// per-eviction scan touches contiguous memory and no map buckets. The
// victim choice (max NextUse, then min page ID) is order-independent, so
// the scan order does not affect behaviour.
type FITF struct {
	pages  []core.PageID
	pos    []int32               // dense IDs: index+1 into pages; 0 = absent
	bigPos map[core.PageID]int32 // position index for IDs ≥ denseListCap
	oracle Oracle
}

// NewFITF returns an empty FITF policy. An Oracle must be attached via
// SetOracle before the first eviction.
func NewFITF() *FITF { return &FITF{} }

// Name implements Policy.
func (f *FITF) Name() string { return "FITF" }

// SetOracle implements OracleUser.
func (f *FITF) SetOracle(o Oracle) { f.oracle = o }

// position returns the index+1 of p in pages, or 0 if absent.
func (f *FITF) position(p core.PageID) int32 {
	if p >= 0 && p < denseListCap {
		if int(p) < len(f.pos) {
			return f.pos[p]
		}
		return 0
	}
	return f.bigPos[p]
}

func (f *FITF) setPosition(p core.PageID, idx int32) {
	if p >= 0 && p < denseListCap {
		if int(p) >= len(f.pos) {
			n := 2 * len(f.pos)
			if n <= int(p) {
				n = int(p) + 1
			}
			if n < 16 {
				n = 16
			}
			if n > denseListCap {
				n = denseListCap
			}
			pos := make([]int32, n)
			copy(pos, f.pos)
			f.pos = pos
		}
		f.pos[p] = idx
		return
	}
	if idx == 0 {
		delete(f.bigPos, p)
		return
	}
	if f.bigPos == nil {
		f.bigPos = make(map[core.PageID]int32)
	}
	f.bigPos[p] = idx
}

// Insert implements Policy.
func (f *FITF) Insert(p core.PageID, _ Access) {
	if f.position(p) != 0 {
		panic("cache: duplicate insert of page in FITF domain")
	}
	f.pages = append(f.pages, p)
	f.setPosition(p, int32(len(f.pages)))
}

// Touch implements Policy. FITF keeps no recency state.
func (f *FITF) Touch(core.PageID, Access) {}

// removeAt swap-removes the page at slice index i.
func (f *FITF) removeAt(i int) {
	p := f.pages[i]
	last := len(f.pages) - 1
	if i != last {
		moved := f.pages[last]
		f.pages[i] = moved
		f.setPosition(moved, int32(i+1))
	}
	f.pages = f.pages[:last]
	f.setPosition(p, 0)
}

// Evict implements Policy.
func (f *FITF) Evict(evictable func(core.PageID) bool) (core.PageID, bool) {
	if f.oracle == nil {
		panic("cache: FITF policy used without an oracle")
	}
	best := -1
	var bestPage core.PageID = core.NoPage
	var bestNext int64 = -1
	for i, p := range f.pages {
		if evictable != nil && !evictable(p) {
			continue
		}
		next := f.oracle.NextUse(p)
		if next > bestNext || (next == bestNext && (bestPage == core.NoPage || p < bestPage)) {
			best, bestPage, bestNext = i, p, next
		}
	}
	if best < 0 {
		return core.NoPage, false
	}
	f.removeAt(best)
	return bestPage, true
}

// Remove implements Policy.
func (f *FITF) Remove(p core.PageID) bool {
	idx := f.position(p)
	if idx == 0 {
		return false
	}
	f.removeAt(int(idx - 1))
	return true
}

// Contains implements Policy.
func (f *FITF) Contains(p core.PageID) bool { return f.position(p) != 0 }

// Len implements Policy.
func (f *FITF) Len() int { return len(f.pages) }

// Reset implements Policy. The oracle attachment is preserved.
func (f *FITF) Reset() {
	for _, p := range f.pages {
		f.setPosition(p, 0)
	}
	f.pages = f.pages[:0]
}

// Resize implements Policy: FITF's victim choice is capacity-independent.
func (f *FITF) Resize(int) {}

// Surrender implements Policy: same victim as Evict (the page whose next
// request is furthest in the future).
func (f *FITF) Surrender(evictable func(core.PageID) bool) (core.PageID, bool) {
	return f.Evict(evictable)
}
