package cache

import (
	"testing"

	"mcpaging/internal/core"
)

func TestRMarkPhaseBehaviour(t *testing.T) {
	m := NewRMark(1)
	m.Insert(1, acc(0))
	m.Insert(2, acc(1))
	// Both marked: eviction opens a new phase and picks one of them.
	v, ok := m.Evict(nil)
	if !ok || (v != 1 && v != 2) {
		t.Fatalf("evict = %d,%v", v, ok)
	}
	if m.Len() != 1 {
		t.Fatalf("len = %d", m.Len())
	}
}

func TestRMarkNeverEvictsMarkedWhileUnmarkedExist(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		m := NewRMark(seed)
		m.Insert(1, acc(0))
		m.Insert(2, acc(1))
		// New phase then re-mark page 1 only.
		if v, _ := m.Evict(nil); v == 0 {
			t.Fatal("no victim")
		}
		m.Insert(3, acc(2))
		m.Touch(3, acc(3))
		// Remaining pages: survivor of {1,2} (unmarked after phase
		// reset? it was marked at insert; the phase reset cleared, then
		// eviction happened) and 3 (marked).
		// Insert a fresh unmarked page via phase trickery is fiddly;
		// instead check determinism per seed.
		a := NewRMark(seed)
		b := NewRMark(seed)
		for p := core.PageID(0); p < 6; p++ {
			a.Insert(p, acc(int64(p)))
			b.Insert(p, acc(int64(p)))
		}
		for i := 0; i < 6; i++ {
			va, oka := a.Evict(nil)
			vb, okb := b.Evict(nil)
			if va != vb || oka != okb {
				t.Fatalf("seed %d not deterministic", seed)
			}
		}
	}
}

func TestRMarkRespectsPredicate(t *testing.T) {
	m := NewRMark(3)
	m.Insert(1, acc(0))
	m.Insert(2, acc(1))
	v, ok := m.Evict(func(p core.PageID) bool { return p == 2 })
	if !ok || v != 2 {
		t.Fatalf("evict = %d,%v; want 2", v, ok)
	}
	if _, ok := m.Evict(func(core.PageID) bool { return false }); ok {
		t.Fatal("all-pinned evict should fail")
	}
}
