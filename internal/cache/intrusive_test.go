package cache

import (
	"math/rand"
	"testing"

	"mcpaging/internal/core"
)

// modelList is a trivially correct recency order: a slice from least to
// most recent. The intrusive recencyList is checked against it under
// randomized operation sequences.
type modelList struct{ pages []core.PageID }

func (m *modelList) find(p core.PageID) int {
	for i, q := range m.pages {
		if q == p {
			return i
		}
	}
	return -1
}

func (m *modelList) insert(p core.PageID) { m.pages = append(m.pages, p) }

func (m *modelList) moveToBack(p core.PageID) {
	if i := m.find(p); i >= 0 {
		m.pages = append(append(m.pages[:i:i], m.pages[i+1:]...), p)
	}
}

func (m *modelList) remove(p core.PageID) bool {
	i := m.find(p)
	if i < 0 {
		return false
	}
	m.pages = append(m.pages[:i:i], m.pages[i+1:]...)
	return true
}

func (m *modelList) evictFront(pred func(core.PageID) bool) (core.PageID, bool) {
	for _, p := range m.pages {
		if pred == nil || pred(p) {
			m.remove(p)
			return p, true
		}
	}
	return core.NoPage, false
}

func (m *modelList) evictBack(pred func(core.PageID) bool) (core.PageID, bool) {
	for i := len(m.pages) - 1; i >= 0; i-- {
		p := m.pages[i]
		if pred == nil || pred(p) {
			m.remove(p)
			return p, true
		}
	}
	return core.NoPage, false
}

// TestRecencyListMatchesModel drives the intrusive array-backed list and
// the slice model with the same random operations and requires identical
// observable behaviour. The ID pool mixes small IDs (dense path) with IDs
// above denseListCap (overflow-map path) so both representations and
// their interaction are covered.
func TestRecencyListMatchesModel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ids := make([]core.PageID, 40)
	for i := range ids {
		if i%4 == 3 {
			ids[i] = denseListCap + core.PageID(i)*977 // overflow path
		} else {
			ids[i] = core.PageID(rng.Intn(500))
		}
	}

	r := newRecencyList()
	var m modelList
	// evictable: pseudo-random but identical for both structures.
	pred := func(p core.PageID) bool { return (int(p)/7)%3 != 0 }

	for step := 0; step < 20000; step++ {
		p := ids[rng.Intn(len(ids))]
		switch op := rng.Intn(6); op {
		case 0: // insert (skip duplicates, which panic by contract)
			if !r.contains(p) {
				r.insert(p)
				m.insert(p)
			}
		case 1:
			r.moveToBack(p)
			m.moveToBack(p)
		case 2:
			if got, want := r.remove(p), m.remove(p); got != want {
				t.Fatalf("step %d: remove(%d) = %v, model %v", step, p, got, want)
			}
		case 3:
			gp, gok := r.evictFront(pred)
			wp, wok := m.evictFront(pred)
			if gp != wp || gok != wok {
				t.Fatalf("step %d: evictFront = (%d,%v), model (%d,%v)", step, gp, gok, wp, wok)
			}
		case 4:
			gp, gok := r.evictBack(pred)
			wp, wok := m.evictBack(pred)
			if gp != wp || gok != wok {
				t.Fatalf("step %d: evictBack = (%d,%v), model (%d,%v)", step, gp, gok, wp, wok)
			}
		case 5:
			if rng.Intn(200) == 0 { // occasional full reset
				r.reset()
				m.pages = m.pages[:0]
			}
		}
		if r.len() != len(m.pages) {
			t.Fatalf("step %d: len = %d, model %d", step, r.len(), len(m.pages))
		}
		if r.contains(p) != (m.find(p) >= 0) {
			t.Fatalf("step %d: contains(%d) mismatch", step, p)
		}
	}
	// Final order check, front to back.
	p := r.front()
	for _, want := range m.pages {
		if p != want {
			t.Fatalf("final order: got %d, model %d", p, want)
		}
		p = r.nextOf(p)
	}
	if p != core.NoPage {
		t.Fatalf("list longer than model")
	}
}

// TestFITFPositionIndex drives FITF's slice+position-index domain through
// random insert/remove/contains traffic (no oracle needed) against a map
// model, covering both the dense pos array and the bigPos overflow.
func TestFITFPositionIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := NewFITF()
	model := map[core.PageID]bool{}
	for step := 0; step < 20000; step++ {
		var p core.PageID
		if rng.Intn(4) == 0 {
			p = denseListCap + core.PageID(rng.Intn(30))*131
		} else {
			p = core.PageID(rng.Intn(300))
		}
		switch rng.Intn(3) {
		case 0:
			if !model[p] {
				f.Insert(p, Access{})
				model[p] = true
			}
		case 1:
			if got, want := f.Remove(p), model[p]; got != want {
				t.Fatalf("step %d: Remove(%d) = %v, want %v", step, p, got, want)
			}
			delete(model, p)
		case 2:
			if rng.Intn(300) == 0 {
				f.Reset()
				model = map[core.PageID]bool{}
			}
		}
		if f.Contains(p) != model[p] {
			t.Fatalf("step %d: Contains(%d) mismatch", step, p)
		}
		if f.Len() != len(model) {
			t.Fatalf("step %d: Len = %d, model %d", step, f.Len(), len(model))
		}
	}
}
