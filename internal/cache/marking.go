package cache

import (
	"container/list"

	"mcpaging/internal/core"
)

// Marking implements a deterministic member of the marking family: pages
// are marked when inserted or hit; victims are chosen among unmarked
// pages in least-recently-used order; when every page is marked a new
// phase begins and all marks are cleared. On a single replacement domain
// this has the K-competitiveness guarantee of marking algorithms, so
// Lemma 1's upper bound applies to it.
type Marking struct {
	ll     *list.List // recency order, front = least recent
	pos    map[core.PageID]*list.Element
	marked map[core.PageID]bool
}

// NewMarking returns an empty marking policy.
func NewMarking() *Marking {
	return &Marking{
		ll:     list.New(),
		pos:    make(map[core.PageID]*list.Element),
		marked: make(map[core.PageID]bool),
	}
}

// Name implements Policy.
func (m *Marking) Name() string { return "MARK" }

// Insert implements Policy. Newly inserted pages are marked.
func (m *Marking) Insert(p core.PageID, _ Access) {
	if _, ok := m.pos[p]; ok {
		panic("cache: duplicate insert of page in marking domain")
	}
	m.pos[p] = m.ll.PushBack(p)
	m.marked[p] = true
}

// Touch implements Policy: hits mark the page and refresh recency.
func (m *Marking) Touch(p core.PageID, _ Access) {
	e, ok := m.pos[p]
	if !ok {
		return
	}
	m.ll.MoveToBack(e)
	m.marked[p] = true
}

// Evict implements Policy. If no unmarked evictable page exists but some
// evictable page does, a new phase starts: all marks are cleared and the
// search repeats.
func (m *Marking) Evict(evictable func(core.PageID) bool) (core.PageID, bool) {
	if v, ok := m.evictUnmarked(evictable); ok {
		return v, true
	}
	// Check that at least one page is evictable before opening a new
	// phase; otherwise report failure without disturbing marks.
	any := false
	for e := m.ll.Front(); e != nil; e = e.Next() {
		p := e.Value.(core.PageID)
		if evictable == nil || evictable(p) {
			any = true
			break
		}
	}
	if !any {
		return core.NoPage, false
	}
	for p := range m.marked {
		delete(m.marked, p)
	}
	return m.evictUnmarked(evictable)
}

func (m *Marking) evictUnmarked(evictable func(core.PageID) bool) (core.PageID, bool) {
	for e := m.ll.Front(); e != nil; e = e.Next() {
		p := e.Value.(core.PageID)
		if m.marked[p] {
			continue
		}
		if evictable != nil && !evictable(p) {
			continue
		}
		m.ll.Remove(e)
		delete(m.pos, p)
		delete(m.marked, p)
		return p, true
	}
	return core.NoPage, false
}

// Remove implements Policy.
func (m *Marking) Remove(p core.PageID) bool {
	e, ok := m.pos[p]
	if !ok {
		return false
	}
	m.ll.Remove(e)
	delete(m.pos, p)
	delete(m.marked, p)
	return true
}

// Contains implements Policy.
func (m *Marking) Contains(p core.PageID) bool {
	_, ok := m.pos[p]
	return ok
}

// Len implements Policy.
func (m *Marking) Len() int { return m.ll.Len() }

// Reset implements Policy.
func (m *Marking) Reset() {
	m.ll.Init()
	m.pos = make(map[core.PageID]*list.Element)
	m.marked = make(map[core.PageID]bool)
}
