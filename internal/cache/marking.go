package cache

import (
	"mcpaging/internal/core"
)

// Marking implements a deterministic member of the marking family: pages
// are marked when inserted or hit; victims are chosen among unmarked
// pages in least-recently-used order; when every page is marked a new
// phase begins and all marks are cleared. On a single replacement domain
// this has the K-competitiveness guarantee of marking algorithms, so
// Lemma 1's upper bound applies to it.
//
// Marks are epoch-stamped: page p is marked iff epoch[p] equals the
// current phase counter, so a phase change is a counter increment rather
// than a map sweep, and the recency order reuses the intrusive
// array-backed list of the LRU family.
type Marking struct {
	r         recencyList
	epoch     []uint64             // dense marks: epoch[p] == cur ⇒ marked
	cur       uint64               // current phase stamp, starts at 1
	bigMarked map[core.PageID]bool // marks for IDs ≥ denseListCap
}

// NewMarking returns an empty marking policy.
func NewMarking() *Marking {
	return &Marking{r: newRecencyList(), cur: 1}
}

// Name implements Policy.
func (m *Marking) Name() string { return "MARK" }

func (m *Marking) marked(p core.PageID) bool {
	if p >= 0 && p < denseListCap {
		return int(p) < len(m.epoch) && m.epoch[p] == m.cur
	}
	return m.bigMarked[p]
}

func (m *Marking) mark(p core.PageID) {
	if p >= 0 && p < denseListCap {
		if int(p) >= len(m.epoch) {
			n := 2 * len(m.epoch)
			if n <= int(p) {
				n = int(p) + 1
			}
			if n < 16 {
				n = 16
			}
			if n > denseListCap {
				n = denseListCap
			}
			epoch := make([]uint64, n)
			copy(epoch, m.epoch)
			m.epoch = epoch
		}
		m.epoch[p] = m.cur
		return
	}
	if m.bigMarked == nil {
		m.bigMarked = make(map[core.PageID]bool)
	}
	m.bigMarked[p] = true
}

func (m *Marking) clearMarks() {
	m.cur++
	if m.bigMarked != nil {
		clear(m.bigMarked)
	}
}

// Insert implements Policy. Newly inserted pages are marked.
func (m *Marking) Insert(p core.PageID, _ Access) {
	m.r.insert(p) // panics on duplicate insert, like every domain
	m.mark(p)
}

// Touch implements Policy: hits mark the page and refresh recency.
func (m *Marking) Touch(p core.PageID, _ Access) {
	if !m.r.contains(p) {
		return
	}
	m.r.moveToBack(p)
	m.mark(p)
}

// Evict implements Policy. If no unmarked evictable page exists but some
// evictable page does, a new phase starts: all marks are cleared and the
// search repeats.
func (m *Marking) Evict(evictable func(core.PageID) bool) (core.PageID, bool) {
	if v, ok := m.evictUnmarked(evictable); ok {
		return v, true
	}
	// Check that at least one page is evictable before opening a new
	// phase; otherwise report failure without disturbing marks.
	any := false
	for p := m.r.front(); p != core.NoPage; p = m.r.nextOf(p) {
		if evictable == nil || evictable(p) {
			any = true
			break
		}
	}
	if !any {
		return core.NoPage, false
	}
	m.clearMarks()
	return m.evictUnmarked(evictable)
}

func (m *Marking) evictUnmarked(evictable func(core.PageID) bool) (core.PageID, bool) {
	for p := m.r.front(); p != core.NoPage; {
		next := m.r.nextOf(p)
		if !m.marked(p) && (evictable == nil || evictable(p)) {
			m.r.remove(p)
			return p, true
		}
		p = next
	}
	return core.NoPage, false
}

// Remove implements Policy.
func (m *Marking) Remove(p core.PageID) bool {
	if !m.r.remove(p) {
		return false
	}
	if m.bigMarked != nil {
		delete(m.bigMarked, p)
	}
	return true
}

// Contains implements Policy.
func (m *Marking) Contains(p core.PageID) bool { return m.r.contains(p) }

// Len implements Policy.
func (m *Marking) Len() int { return m.r.len() }

// Reset implements Policy.
func (m *Marking) Reset() {
	m.r.reset()
	// Opening a fresh epoch invalidates every dense mark in place.
	m.clearMarks()
}

// Resize implements Policy: MARK's victim choice is capacity-independent.
func (m *Marking) Resize(int) {}

// Surrender implements Policy: same victim as Evict (the least recent
// unmarked page, opening a new phase if all are marked).
func (m *Marking) Surrender(evictable func(core.PageID) bool) (core.PageID, bool) {
	return m.Evict(evictable)
}
