package cache

import (
	"math/rand"
	"sort"

	"mcpaging/internal/core"
)

// RMark is the classic randomized marking algorithm (Fiat et al. 1991):
// pages are marked on insertion and on hits; victims are drawn uniformly
// at random among the unmarked pages; when every page is marked a new
// phase begins. In sequential paging it is Θ(log k)-competitive — the
// randomized counterpart of MARK in the E13/E18 comparisons. Seeded and
// reproducible like RAND.
type RMark struct {
	pages  map[core.PageID]struct{}
	marked map[core.PageID]bool
	rng    *rand.Rand
	seed   int64
}

// NewRMark returns an empty randomized-marking policy.
func NewRMark(seed int64) *RMark {
	return &RMark{
		pages:  make(map[core.PageID]struct{}),
		marked: make(map[core.PageID]bool),
		rng:    rand.New(rand.NewSource(seed)),
		seed:   seed,
	}
}

// Name implements Policy.
func (m *RMark) Name() string { return "RMARK" }

// Insert implements Policy.
func (m *RMark) Insert(p core.PageID, _ Access) {
	if _, ok := m.pages[p]; ok {
		panic("cache: duplicate insert of page in RMARK domain")
	}
	m.pages[p] = struct{}{}
	m.marked[p] = true
}

// Touch implements Policy.
func (m *RMark) Touch(p core.PageID, _ Access) {
	if _, ok := m.pages[p]; ok {
		m.marked[p] = true
	}
}

// Evict implements Policy: a uniformly random unmarked evictable page;
// if every evictable page is marked, a new phase begins.
func (m *RMark) Evict(evictable func(core.PageID) bool) (core.PageID, bool) {
	pick := func() (core.PageID, bool) {
		var cands []core.PageID
		for p := range m.pages {
			if !m.marked[p] && (evictable == nil || evictable(p)) {
				cands = append(cands, p)
			}
		}
		if len(cands) == 0 {
			return core.NoPage, false
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
		return cands[m.rng.Intn(len(cands))], true
	}
	if v, ok := pick(); ok {
		delete(m.pages, v)
		delete(m.marked, v)
		return v, true
	}
	// All unmarked pages are pinned, or all pages are marked: open a new
	// phase only if some evictable page exists at all.
	any := false
	//mcvet:ignore detmap existence scan with early break is order-independent
	for p := range m.pages {
		if evictable == nil || evictable(p) {
			any = true
			break
		}
	}
	if !any {
		return core.NoPage, false
	}
	clear(m.marked)
	if v, ok := pick(); ok {
		delete(m.pages, v)
		delete(m.marked, v)
		return v, true
	}
	return core.NoPage, false
}

// Remove implements Policy.
func (m *RMark) Remove(p core.PageID) bool {
	if _, ok := m.pages[p]; !ok {
		return false
	}
	delete(m.pages, p)
	delete(m.marked, p)
	return true
}

// Contains implements Policy.
func (m *RMark) Contains(p core.PageID) bool {
	_, ok := m.pages[p]
	return ok
}

// Len implements Policy.
func (m *RMark) Len() int { return len(m.pages) }

// Reset implements Policy; the seed replays.
func (m *RMark) Reset() {
	m.pages = make(map[core.PageID]struct{})
	m.marked = make(map[core.PageID]bool)
	m.rng = rand.New(rand.NewSource(m.seed))
}

// Resize implements Policy: RMARK's victim choice is capacity-independent.
func (m *RMark) Resize(int) {}

// Surrender implements Policy: same victim as Evict (a random unmarked
// page; consumes one draw from the seeded generator).
func (m *RMark) Surrender(evictable func(core.PageID) bool) (core.PageID, bool) {
	return m.Evict(evictable)
}
