package cache

import (
	"mcpaging/internal/core"
)

// lfuEntry is the metadata LFU keeps per page.
type lfuEntry struct {
	freq int64
	last int64 // sequence number of the most recent access, for tie-breaks
}

// LFU evicts the least frequently used page, breaking ties by least
// recent access and then by smallest page ID, so victim selection is
// fully deterministic. Victim search scans the domain, which is at most K
// pages; for the cache sizes exercised in this library that is faster in
// practice than maintaining a heap under the evictable-predicate
// constraint.
type LFU struct {
	meta map[core.PageID]lfuEntry
	seq  int64
}

// NewLFU returns an empty LFU policy.
func NewLFU() *LFU { return &LFU{meta: make(map[core.PageID]lfuEntry)} }

// Name implements Policy.
func (l *LFU) Name() string { return "LFU" }

// Insert implements Policy. A newly inserted page starts with frequency 1
// (the faulting access counts).
func (l *LFU) Insert(p core.PageID, _ Access) {
	if _, ok := l.meta[p]; ok {
		panic("cache: duplicate insert of page in LFU domain")
	}
	l.seq++
	l.meta[p] = lfuEntry{freq: 1, last: l.seq}
}

// Touch implements Policy.
func (l *LFU) Touch(p core.PageID, _ Access) {
	e, ok := l.meta[p]
	if !ok {
		return
	}
	l.seq++
	e.freq++
	e.last = l.seq
	l.meta[p] = e
}

// Evict implements Policy.
func (l *LFU) Evict(evictable func(core.PageID) bool) (core.PageID, bool) {
	best := core.NoPage
	var bestE lfuEntry
	//mcvet:ignore detmap min-reduction under the total order less() is order-independent
	for p, e := range l.meta {
		if evictable != nil && !evictable(p) {
			continue
		}
		if best == core.NoPage || less(e, p, bestE, best) {
			best, bestE = p, e
		}
	}
	if best == core.NoPage {
		return core.NoPage, false
	}
	delete(l.meta, best)
	return best, true
}

// less orders (entry, page) pairs by eviction preference: lower frequency
// first, then older access, then smaller page ID.
func less(a lfuEntry, ap core.PageID, b lfuEntry, bp core.PageID) bool {
	if a.freq != b.freq {
		return a.freq < b.freq
	}
	if a.last != b.last {
		return a.last < b.last
	}
	return ap < bp
}

// Remove implements Policy.
func (l *LFU) Remove(p core.PageID) bool {
	if _, ok := l.meta[p]; !ok {
		return false
	}
	delete(l.meta, p)
	return true
}

// Contains implements Policy.
func (l *LFU) Contains(p core.PageID) bool {
	_, ok := l.meta[p]
	return ok
}

// Len implements Policy.
func (l *LFU) Len() int { return len(l.meta) }

// Reset implements Policy.
func (l *LFU) Reset() {
	l.meta = make(map[core.PageID]lfuEntry)
	l.seq = 0
}

// Resize implements Policy: LFU's victim choice is capacity-independent.
func (l *LFU) Resize(int) {}

// Surrender implements Policy: same victim as Evict.
func (l *LFU) Surrender(evictable func(core.PageID) bool) (core.PageID, bool) {
	return l.Evict(evictable)
}
