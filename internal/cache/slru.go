package cache

import (
	"mcpaging/internal/core"
)

// SLRU is segmented LRU (Karedla, Love & Wherry 1994): a probationary
// segment receiving new pages and a protected segment receiving pages
// hit while probationary. Victims come from the probationary LRU end,
// so one-touch scan pages cannot displace the protected working set —
// another scan-resistant contender for shared multicore caches.
//
// The protected segment is capped at half the domain capacity (rounded
// down, at least 1 when capacity permits); overflowing protected pages
// are demoted to the probationary MRU end rather than evicted.
type SLRU struct {
	c            int
	protectedCap int
	prob, prot   *arcList // front = LRU (reuses the ARC list helper)
}

// NewSLRU returns an empty SLRU; Resize should be called before use
// (otherwise the protected cap adapts to the observed domain size).
func NewSLRU() *SLRU { return &SLRU{prob: newArcList(), prot: newArcList()} }

// Name implements Policy.
func (s *SLRU) Name() string { return "SLRU" }

// Resize implements Policy: the protected segment is re-capped at half
// the new domain capacity. Overflowing protected pages demote lazily on
// the next promotion rather than eagerly.
func (s *SLRU) Resize(c int) {
	s.c = c
	s.protectedCap = c / 2
	if s.protectedCap == 0 && c > 1 {
		s.protectedCap = 1
	}
}

// Insert implements Policy: new pages are probationary.
func (s *SLRU) Insert(p core.PageID, _ Access) {
	if s.prob.has(p) || s.prot.has(p) {
		panic("cache: duplicate insert of page in SLRU domain")
	}
	s.prob.pushMRU(p)
}

// Touch implements Policy: probationary hits promote; protected hits
// refresh recency. Promotion may demote the protected LRU page back to
// probationary.
func (s *SLRU) Touch(p core.PageID, _ Access) {
	switch {
	case s.prot.has(p):
		s.prot.remove(p)
		s.prot.pushMRU(p)
	case s.prob.has(p):
		s.prob.remove(p)
		s.prot.pushMRU(p)
		cap := s.protectedCap
		if cap == 0 {
			cap = (s.prob.len() + s.prot.len()) / 2
			if cap == 0 {
				cap = 1
			}
		}
		for s.prot.len() > cap {
			v, ok := s.prot.lru(nil)
			if !ok {
				break
			}
			s.prot.remove(v)
			s.prob.pushMRU(v)
		}
	}
}

// Evict implements Policy: probationary LRU first, protected LRU as the
// fallback.
func (s *SLRU) Evict(evictable func(core.PageID) bool) (core.PageID, bool) {
	if v, ok := s.prob.lru(evictable); ok {
		s.prob.remove(v)
		return v, true
	}
	if v, ok := s.prot.lru(evictable); ok {
		s.prot.remove(v)
		return v, true
	}
	return core.NoPage, false
}

// peekVictim returns the page Evict would choose without removing it.
func (s *SLRU) peekVictim(evictable func(core.PageID) bool) (core.PageID, bool) {
	if v, ok := s.prob.lru(evictable); ok {
		return v, true
	}
	return s.prot.lru(evictable)
}

// evictExact removes a specific page chosen earlier via peekVictim.
func (s *SLRU) evictExact(p core.PageID) bool {
	return s.prob.remove(p) || s.prot.remove(p)
}

// Surrender implements Policy: same victim as Evict (probationary LRU
// first, protected LRU as the fallback).
func (s *SLRU) Surrender(evictable func(core.PageID) bool) (core.PageID, bool) {
	return s.Evict(evictable)
}

// Remove implements Policy.
func (s *SLRU) Remove(p core.PageID) bool { return s.prob.remove(p) || s.prot.remove(p) }

// Contains implements Policy.
func (s *SLRU) Contains(p core.PageID) bool { return s.prob.has(p) || s.prot.has(p) }

// Len implements Policy.
func (s *SLRU) Len() int { return s.prob.len() + s.prot.len() }

// Reset implements Policy; capacity survives.
func (s *SLRU) Reset() {
	s.prob.reset()
	s.prot.reset()
}

// LRU2 implements LRU-K for K=2 (O'Neil, O'Neil & Weikum 1993): the
// victim is the page whose second-most-recent access is oldest; pages
// seen only once rank before all twice-seen pages (their backward
// K-distance is infinite), breaking ties by older last access, then by
// smaller page ID. Victim search scans the domain (≤ K pages).
type LRU2 struct {
	meta map[core.PageID]lru2Entry
	seq  int64
}

type lru2Entry struct {
	last, prev int64 // prev = 0 means "no second access yet"
}

// NewLRU2 returns an empty LRU-2 policy.
func NewLRU2() *LRU2 { return &LRU2{meta: make(map[core.PageID]lru2Entry)} }

// Name implements Policy.
func (l *LRU2) Name() string { return "LRU2" }

// Insert implements Policy.
func (l *LRU2) Insert(p core.PageID, _ Access) {
	if _, ok := l.meta[p]; ok {
		panic("cache: duplicate insert of page in LRU2 domain")
	}
	l.seq++
	l.meta[p] = lru2Entry{last: l.seq}
}

// Touch implements Policy.
func (l *LRU2) Touch(p core.PageID, _ Access) {
	e, ok := l.meta[p]
	if !ok {
		return
	}
	l.seq++
	e.prev = e.last
	e.last = l.seq
	l.meta[p] = e
}

// Evict implements Policy.
func (l *LRU2) Evict(evictable func(core.PageID) bool) (core.PageID, bool) {
	best := core.NoPage
	var bestE lru2Entry
	better := func(a lru2Entry, ap core.PageID, b lru2Entry, bp core.PageID) bool {
		if (a.prev == 0) != (b.prev == 0) {
			return a.prev == 0 // once-seen pages go first
		}
		if a.prev != b.prev {
			return a.prev < b.prev
		}
		if a.last != b.last {
			return a.last < b.last
		}
		return ap < bp
	}
	//mcvet:ignore detmap min-reduction under the total order better() is order-independent
	for p, e := range l.meta {
		if evictable != nil && !evictable(p) {
			continue
		}
		if best == core.NoPage || better(e, p, bestE, best) {
			best, bestE = p, e
		}
	}
	if best == core.NoPage {
		return core.NoPage, false
	}
	delete(l.meta, best)
	return best, true
}

// Remove implements Policy.
func (l *LRU2) Remove(p core.PageID) bool {
	if _, ok := l.meta[p]; !ok {
		return false
	}
	delete(l.meta, p)
	return true
}

// Contains implements Policy.
func (l *LRU2) Contains(p core.PageID) bool {
	_, ok := l.meta[p]
	return ok
}

// Len implements Policy.
func (l *LRU2) Len() int { return len(l.meta) }

// Reset implements Policy.
func (l *LRU2) Reset() {
	l.meta = make(map[core.PageID]lru2Entry)
	l.seq = 0
}

// Resize implements Policy: LRU-2's victim choice is capacity-independent.
func (l *LRU2) Resize(int) {}

// Surrender implements Policy: same victim as Evict.
func (l *LRU2) Surrender(evictable func(core.PageID) bool) (core.PageID, bool) {
	return l.Evict(evictable)
}
