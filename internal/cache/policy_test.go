package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mcpaging/internal/core"
)

func acc(t int64) Access { return Access{Core: 0, Time: t, Index: int(t)} }

func TestLRUOrder(t *testing.T) {
	l := NewLRU()
	l.Insert(1, acc(0))
	l.Insert(2, acc(1))
	l.Insert(3, acc(2))
	l.Touch(1, acc(3)) // order now 2,3,1
	v, ok := l.Evict(nil)
	if !ok || v != 2 {
		t.Fatalf("evict = %d,%v; want 2", v, ok)
	}
	v, _ = l.Evict(nil)
	if v != 3 {
		t.Fatalf("second evict = %d; want 3", v)
	}
	v, _ = l.Evict(nil)
	if v != 1 {
		t.Fatalf("third evict = %d; want 1", v)
	}
	if _, ok := l.Evict(nil); ok {
		t.Fatal("evict from empty domain should fail")
	}
}

func TestLRUEvictablePredicate(t *testing.T) {
	l := NewLRU()
	l.Insert(1, acc(0))
	l.Insert(2, acc(1))
	v, ok := l.Evict(func(p core.PageID) bool { return p != 1 })
	if !ok || v != 2 {
		t.Fatalf("evict skipping 1 = %d,%v; want 2", v, ok)
	}
	if !l.Contains(1) || l.Contains(2) {
		t.Fatal("domain contents wrong after predicate evict")
	}
}

func TestLRULeastRecent(t *testing.T) {
	l := NewLRU()
	if _, ok := l.LeastRecent(nil); ok {
		t.Fatal("LeastRecent on empty should fail")
	}
	l.Insert(7, acc(0))
	l.Insert(8, acc(1))
	p, ok := l.LeastRecent(nil)
	if !ok || p != 7 {
		t.Fatalf("LeastRecent = %d,%v; want 7", p, ok)
	}
	if l.Len() != 2 {
		t.Fatal("LeastRecent must not remove")
	}
}

func TestMRUOrder(t *testing.T) {
	m := NewMRU()
	m.Insert(1, acc(0))
	m.Insert(2, acc(1))
	m.Touch(1, acc(2)) // 1 most recent
	v, ok := m.Evict(nil)
	if !ok || v != 1 {
		t.Fatalf("MRU evict = %d,%v; want 1", v, ok)
	}
}

func TestFIFOIgnoresTouch(t *testing.T) {
	f := NewFIFO()
	f.Insert(1, acc(0))
	f.Insert(2, acc(1))
	f.Touch(1, acc(2))
	v, ok := f.Evict(nil)
	if !ok || v != 1 {
		t.Fatalf("FIFO evict = %d,%v; want 1 despite touch", v, ok)
	}
}

func TestClockSecondChance(t *testing.T) {
	c := NewClock()
	c.Insert(1, acc(0))
	c.Insert(2, acc(1))
	c.Insert(3, acc(2))
	// All ref bits set; first sweep clears them, second finds a victim.
	v, ok := c.Evict(nil)
	if !ok {
		t.Fatal("clock evict failed")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	if c.Contains(v) {
		t.Fatal("victim still in domain")
	}
}

func TestClockTouchProtects(t *testing.T) {
	c := NewClock()
	c.Insert(1, acc(0))
	c.Insert(2, acc(1))
	// Evict once to clear bits and remove one page.
	v1, _ := c.Evict(nil)
	var survivor core.PageID = 1
	if v1 == 1 {
		survivor = 2
	}
	c.Insert(10, acc(2))
	c.Touch(survivor, acc(3))
	// survivor has its bit set, 10 has its bit set; the next eviction
	// must still terminate and evict one of them.
	v2, ok := c.Evict(nil)
	if !ok || (v2 != survivor && v2 != 10) {
		t.Fatalf("unexpected victim %d", v2)
	}
}

func TestClockSingleElement(t *testing.T) {
	c := NewClock()
	c.Insert(1, acc(0))
	v, ok := c.Evict(nil)
	if !ok || v != 1 {
		t.Fatalf("single element evict = %d,%v", v, ok)
	}
	if c.Len() != 0 {
		t.Fatal("domain should be empty")
	}
	c.Insert(2, acc(1))
	if !c.Contains(2) {
		t.Fatal("insert after drain failed")
	}
}

func TestClockRemoveHand(t *testing.T) {
	c := NewClock()
	c.Insert(1, acc(0))
	c.Insert(2, acc(1))
	c.Insert(3, acc(2))
	// Remove pages including whichever the hand points at.
	for _, p := range []core.PageID{1, 2, 3} {
		if !c.Remove(p) {
			t.Fatalf("remove %d failed", p)
		}
	}
	if c.Len() != 0 {
		t.Fatal("domain should be empty after removals")
	}
	if c.Remove(1) {
		t.Fatal("double remove should report false")
	}
}

func TestLFUFrequencyOrder(t *testing.T) {
	l := NewLFU()
	l.Insert(1, acc(0))
	l.Insert(2, acc(1))
	l.Insert(3, acc(2))
	l.Touch(1, acc(3))
	l.Touch(1, acc(4))
	l.Touch(2, acc(5))
	// freq: 1→3, 2→2, 3→1
	v, ok := l.Evict(nil)
	if !ok || v != 3 {
		t.Fatalf("LFU evict = %d,%v; want 3", v, ok)
	}
	v, _ = l.Evict(nil)
	if v != 2 {
		t.Fatalf("LFU second evict = %d; want 2", v)
	}
}

func TestLFUTieBreakLeastRecent(t *testing.T) {
	l := NewLFU()
	l.Insert(1, acc(0))
	l.Insert(2, acc(1))
	// Equal frequency; 1 accessed earlier → evicted first.
	v, ok := l.Evict(nil)
	if !ok || v != 1 {
		t.Fatalf("LFU tie evict = %d,%v; want 1", v, ok)
	}
}

func TestMarkingPhases(t *testing.T) {
	m := NewMarking()
	m.Insert(1, acc(0))
	m.Insert(2, acc(1))
	// Both marked: eviction opens a new phase and evicts the least
	// recent unmarked page, which is 1.
	v, ok := m.Evict(nil)
	if !ok || v != 1 {
		t.Fatalf("marking evict = %d,%v; want 1", v, ok)
	}
	m.Insert(3, acc(2)) // 3 marked in the new phase
	// 2 is unmarked (phase reset), so it goes before 3.
	v, _ = m.Evict(nil)
	if v != 2 {
		t.Fatalf("marking second evict = %d; want 2", v)
	}
}

func TestMarkingRespectsPredicate(t *testing.T) {
	m := NewMarking()
	m.Insert(1, acc(0))
	m.Insert(2, acc(1))
	v, ok := m.Evict(func(p core.PageID) bool { return p == 2 })
	if !ok || v != 2 {
		t.Fatalf("marking predicate evict = %d,%v; want 2", v, ok)
	}
	// Nothing evictable: must fail without corrupting state.
	if _, ok := m.Evict(func(core.PageID) bool { return false }); ok {
		t.Fatal("evict with all-false predicate should fail")
	}
	if !m.Contains(1) {
		t.Fatal("page 1 lost")
	}
}

func TestRandomDeterministicBySeed(t *testing.T) {
	run := func(seed int64) []core.PageID {
		r := NewRandom(seed)
		for p := core.PageID(0); p < 10; p++ {
			r.Insert(p, acc(int64(p)))
		}
		var out []core.PageID
		for i := 0; i < 10; i++ {
			v, ok := r.Evict(nil)
			if !ok {
				t.Fatal("random evict failed")
			}
			out = append(out, v)
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a, b)
		}
	}
}

func TestRandomReset(t *testing.T) {
	r := NewRandom(7)
	r.Insert(1, acc(0))
	r.Insert(2, acc(1))
	v1, _ := r.Evict(nil)
	r.Reset()
	r.Insert(1, acc(0))
	r.Insert(2, acc(1))
	v2, _ := r.Evict(nil)
	if v1 != v2 {
		t.Fatal("reset did not replay the seed")
	}
}

type mapOracle map[core.PageID]int64

func (m mapOracle) NextUse(p core.PageID) int64 {
	if v, ok := m[p]; ok {
		return v
	}
	return NeverUsed
}

func TestFITFEvictsFurthest(t *testing.T) {
	f := NewFITF()
	f.SetOracle(mapOracle{1: 10, 2: 50, 3: 30})
	f.Insert(1, acc(0))
	f.Insert(2, acc(1))
	f.Insert(3, acc(2))
	v, ok := f.Evict(nil)
	if !ok || v != 2 {
		t.Fatalf("FITF evict = %d,%v; want 2 (next use 50)", v, ok)
	}
}

func TestFITFNeverUsedWins(t *testing.T) {
	f := NewFITF()
	f.SetOracle(mapOracle{1: 10})
	f.Insert(1, acc(0))
	f.Insert(9, acc(1)) // never used again
	v, _ := f.Evict(nil)
	if v != 9 {
		t.Fatalf("FITF evict = %d; want 9 (never used)", v)
	}
}

func TestFITFTieBreakSmallestID(t *testing.T) {
	f := NewFITF()
	f.SetOracle(mapOracle{})
	f.Insert(5, acc(0))
	f.Insert(3, acc(1))
	v, _ := f.Evict(nil)
	if v != 3 {
		t.Fatalf("FITF tie evict = %d; want 3", v)
	}
}

func TestFITFWithoutOraclePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f := NewFITF()
	f.Insert(1, acc(0))
	f.Evict(nil)
}

func TestNewFactory(t *testing.T) {
	for _, name := range PolicyNames() {
		mk, err := NewFactory(name, 1)
		if err != nil {
			t.Fatalf("factory %s: %v", name, err)
		}
		p := mk()
		if p.Name() != name {
			t.Errorf("policy name %q != factory name %q", p.Name(), name)
		}
	}
	if _, err := NewFactory("nope", 0); err == nil {
		t.Fatal("unknown policy should error")
	}
}

func TestDuplicateInsertPanics(t *testing.T) {
	for _, name := range PolicyNames() {
		mk, _ := NewFactory(name, 1)
		p := mk()
		p.Insert(1, acc(0))
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: duplicate insert should panic", name)
				}
			}()
			p.Insert(1, acc(1))
		}()
	}
}

// TestPolicyInvariants drives every policy with a random trace of
// insert/touch/evict/remove operations and checks the domain invariants:
// Len matches a reference set, Contains agrees, evictions only return
// evictable members, and Reset empties the domain.
func TestPolicyInvariants(t *testing.T) {
	f := func(seed int64, policyIdx uint8) bool {
		names := PolicyNames()
		name := names[int(policyIdx)%len(names)]
		mk, _ := NewFactory(name, seed)
		p := mk()
		if ou, ok := p.(OracleUser); ok {
			ou.SetOracle(mapOracle{})
		}
		rng := rand.New(rand.NewSource(seed))
		ref := make(map[core.PageID]bool)
		for step := 0; step < 200; step++ {
			pg := core.PageID(rng.Intn(12))
			switch rng.Intn(4) {
			case 0: // insert
				if !ref[pg] {
					p.Insert(pg, acc(int64(step)))
					ref[pg] = true
				}
			case 1: // touch
				if ref[pg] {
					p.Touch(pg, acc(int64(step)))
				}
			case 2: // evict with a random predicate
				allowed := make(map[core.PageID]bool)
				for q := range ref {
					if rng.Intn(2) == 0 {
						allowed[q] = true
					}
				}
				v, ok := p.Evict(func(q core.PageID) bool { return allowed[q] })
				if ok {
					if !ref[v] || !allowed[v] {
						return false
					}
					delete(ref, v)
				} else if len(allowed) > 0 {
					return false // had candidates but refused
				}
			case 3: // remove
				got := p.Remove(pg)
				if got != ref[pg] {
					return false
				}
				delete(ref, pg)
			}
			if p.Len() != len(ref) {
				return false
			}
			for q := core.PageID(0); q < 12; q++ {
				if p.Contains(q) != ref[q] {
					return false
				}
			}
		}
		p.Reset()
		return p.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
