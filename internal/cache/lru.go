package cache

import (
	"mcpaging/internal/core"
)

// denseListCap bounds the intrusive array backing the recency-ordered
// policies: page IDs below it index the node array directly (one array
// slot per possible ID, allocation-free after warm-up); IDs at or above
// it are kept in an overflow map. The simulator renumbers sparse inputs
// before they reach a policy, so the overflow path only triggers for
// strategies fed raw sparse IDs directly.
const denseListCap = 1 << 20

// absentNode marks a dense node slot whose page is not in the list.
// core.NoPage (-1) doubles as the list-end sentinel.
const absentNode core.PageID = -2

// rnode is one intrusive list node; prev and next hold page IDs.
type rnode struct{ prev, next core.PageID }

// recencyList is the shared machinery of the recency-ordered policies
// (LRU, MRU, FIFO): an intrusive doubly linked list from least to most
// recently used/inserted, with nodes indexed by page ID instead of
// heap-allocated list elements.
type recencyList struct {
	nodes []rnode                // dense nodes, index = page ID
	big   map[core.PageID]*rnode // overflow nodes for IDs ≥ denseListCap
	head  core.PageID            // least recent; core.NoPage when empty
	tail  core.PageID            // most recent; core.NoPage when empty
	n     int
}

func newRecencyList() recencyList {
	return recencyList{head: core.NoPage, tail: core.NoPage}
}

// node returns the in-list node for p, or nil if p is not in the list.
//
//mcpaging:hotpath
func (r *recencyList) node(p core.PageID) *rnode {
	if p >= 0 && int(p) < len(r.nodes) {
		nd := &r.nodes[p]
		if nd.prev == absentNode {
			return nil
		}
		return nd
	}
	return r.big[p]
}

// mustNode returns the node of a page known to be in the list.
//
//mcpaging:hotpath
func (r *recencyList) mustNode(p core.PageID) *rnode {
	if int(p) < len(r.nodes) {
		return &r.nodes[p]
	}
	return r.big[p]
}

// grow extends the dense node array to cover page p.
func (r *recencyList) grow(p core.PageID) {
	n := 2 * len(r.nodes)
	if n <= int(p) {
		n = int(p) + 1
	}
	if n < 16 {
		n = 16
	}
	if n > denseListCap {
		n = denseListCap
	}
	nodes := make([]rnode, n)
	copy(nodes, r.nodes)
	for i := len(r.nodes); i < n; i++ {
		nodes[i].prev = absentNode
	}
	r.nodes = nodes
}

//mcpaging:hotpath
func (r *recencyList) insert(p core.PageID) {
	var nd *rnode
	if p >= 0 && p < denseListCap {
		if int(p) >= len(r.nodes) {
			r.grow(p)
		}
		nd = &r.nodes[p]
		if nd.prev != absentNode {
			panic("cache: duplicate insert of page in replacement domain")
		}
	} else {
		if r.big == nil {
			r.big = make(map[core.PageID]*rnode) //mcvet:ignore hotalloc sparse-ID overflow path, cold by construction
		}
		if r.big[p] != nil {
			panic("cache: duplicate insert of page in replacement domain")
		}
		nd = &rnode{} //mcvet:ignore hotalloc sparse-ID overflow path, cold by construction
		r.big[p] = nd
	}
	nd.prev, nd.next = r.tail, core.NoPage
	if r.tail != core.NoPage {
		r.mustNode(r.tail).next = p
	} else {
		r.head = p
	}
	r.tail = p
	r.n++
}

//mcpaging:hotpath
func (r *recencyList) moveToBack(p core.PageID) {
	nd := r.node(p)
	if nd == nil || r.tail == p {
		return
	}
	// Detach: p is not the tail, so nd.next is a real page.
	if nd.prev != core.NoPage {
		r.mustNode(nd.prev).next = nd.next
	} else {
		r.head = nd.next
	}
	r.mustNode(nd.next).prev = nd.prev
	// Reattach at the tail (non-empty: p itself is in the list).
	nd.prev, nd.next = r.tail, core.NoPage
	r.mustNode(r.tail).next = p
	r.tail = p
}

//mcpaging:hotpath
func (r *recencyList) remove(p core.PageID) bool {
	nd := r.node(p)
	if nd == nil {
		return false
	}
	r.unlink(p, nd)
	return true
}

// unlink detaches an in-list node and marks it absent.
//
//mcpaging:hotpath
func (r *recencyList) unlink(p core.PageID, nd *rnode) {
	if nd.prev != core.NoPage {
		r.mustNode(nd.prev).next = nd.next
	} else {
		r.head = nd.next
	}
	if nd.next != core.NoPage {
		r.mustNode(nd.next).prev = nd.prev
	} else {
		r.tail = nd.prev
	}
	if int(p) < len(r.nodes) {
		nd.prev = absentNode
	} else {
		delete(r.big, p)
	}
	r.n--
}

func (r *recencyList) contains(p core.PageID) bool { return r.node(p) != nil }

func (r *recencyList) len() int { return r.n }

// front returns the least recent page, or core.NoPage if empty.
func (r *recencyList) front() core.PageID { return r.head }

// back returns the most recent page, or core.NoPage if empty.
func (r *recencyList) back() core.PageID { return r.tail }

// nextOf returns the page after p (toward most recent).
func (r *recencyList) nextOf(p core.PageID) core.PageID { return r.mustNode(p).next }

// prevOf returns the page before p (toward least recent).
func (r *recencyList) prevOf(p core.PageID) core.PageID { return r.mustNode(p).prev }

func (r *recencyList) reset() {
	for p := r.head; p != core.NoPage; {
		nd := r.mustNode(p)
		next := nd.next
		if int(p) < len(r.nodes) {
			nd.prev = absentNode
		}
		p = next
	}
	if r.big != nil {
		clear(r.big)
	}
	r.head, r.tail = core.NoPage, core.NoPage
	r.n = 0
}

// evictFront removes and returns the first evictable page scanning from
// the front of the list.
//
//mcpaging:hotpath
func (r *recencyList) evictFront(evictable func(core.PageID) bool) (core.PageID, bool) {
	for p := r.head; p != core.NoPage; {
		nd := r.mustNode(p)
		if evictable == nil || evictable(p) {
			r.unlink(p, nd)
			return p, true
		}
		p = nd.next
	}
	return core.NoPage, false
}

// evictBack removes and returns the first evictable page scanning from
// the back of the list.
//
//mcpaging:hotpath
func (r *recencyList) evictBack(evictable func(core.PageID) bool) (core.PageID, bool) {
	for p := r.tail; p != core.NoPage; {
		nd := r.mustNode(p)
		if evictable == nil || evictable(p) {
			r.unlink(p, nd)
			return p, true
		}
		p = nd.prev
	}
	return core.NoPage, false
}

// LRU evicts the least recently used page of its domain. With a shared
// domain this is the paper's S_LRU eviction rule; with one domain per
// part it is the per-part rule of sP_LRU and dP_LRU.
type LRU struct{ r recencyList }

// NewLRU returns an empty LRU policy.
func NewLRU() *LRU { return &LRU{r: newRecencyList()} }

// Name implements Policy.
func (l *LRU) Name() string { return "LRU" }

// Insert implements Policy.
func (l *LRU) Insert(p core.PageID, _ Access) { l.r.insert(p) }

// Touch implements Policy.
func (l *LRU) Touch(p core.PageID, _ Access) { l.r.moveToBack(p) }

// Evict implements Policy.
func (l *LRU) Evict(evictable func(core.PageID) bool) (core.PageID, bool) {
	return l.r.evictFront(evictable)
}

// Remove implements Policy.
func (l *LRU) Remove(p core.PageID) bool { return l.r.remove(p) }

// Contains implements Policy.
func (l *LRU) Contains(p core.PageID) bool { return l.r.contains(p) }

// Len implements Policy.
func (l *LRU) Len() int { return l.r.len() }

// Reset implements Policy.
func (l *LRU) Reset() { l.r.reset() }

// Resize implements Policy: LRU's victim choice is capacity-independent.
func (l *LRU) Resize(int) {}

// Surrender implements Policy: a shrinking LRU part gives up its least
// recently used page — the same page Evict would choose.
func (l *LRU) Surrender(evictable func(core.PageID) bool) (core.PageID, bool) {
	return l.r.evictFront(evictable)
}

// LeastRecent returns the least recently used page currently in the
// domain without removing it. It is used by the Lemma-3 dynamic
// partition, which must locate the globally least recent page across
// parts. ok is false when the domain is empty or nothing is evictable.
func (l *LRU) LeastRecent(evictable func(core.PageID) bool) (core.PageID, bool) {
	for p := l.r.front(); p != core.NoPage; p = l.r.nextOf(p) {
		if evictable == nil || evictable(p) {
			return p, true
		}
	}
	return core.NoPage, false
}

// MRU evicts the most recently used page. It is the classic pathological
// counterpoint to LRU on looping workloads and appears in the E13 policy
// matrix.
type MRU struct{ r recencyList }

// NewMRU returns an empty MRU policy.
func NewMRU() *MRU { return &MRU{r: newRecencyList()} }

// Name implements Policy.
func (m *MRU) Name() string { return "MRU" }

// Insert implements Policy.
func (m *MRU) Insert(p core.PageID, _ Access) { m.r.insert(p) }

// Touch implements Policy.
func (m *MRU) Touch(p core.PageID, _ Access) { m.r.moveToBack(p) }

// Evict implements Policy.
func (m *MRU) Evict(evictable func(core.PageID) bool) (core.PageID, bool) {
	return m.r.evictBack(evictable)
}

// Remove implements Policy.
func (m *MRU) Remove(p core.PageID) bool { return m.r.remove(p) }

// Contains implements Policy.
func (m *MRU) Contains(p core.PageID) bool { return m.r.contains(p) }

// Len implements Policy.
func (m *MRU) Len() int { return m.r.len() }

// Reset implements Policy.
func (m *MRU) Reset() { m.r.reset() }

// Resize implements Policy: MRU's victim choice is capacity-independent.
func (m *MRU) Resize(int) {}

// Surrender implements Policy: same victim as Evict.
func (m *MRU) Surrender(evictable func(core.PageID) bool) (core.PageID, bool) {
	return m.r.evictBack(evictable)
}

// FIFO evicts the page that has been in the domain longest, regardless of
// hits. It is a conservative policy, so Lemma 1's upper bound applies to
// it.
type FIFO struct{ r recencyList }

// NewFIFO returns an empty FIFO policy.
func NewFIFO() *FIFO { return &FIFO{r: newRecencyList()} }

// Name implements Policy.
func (f *FIFO) Name() string { return "FIFO" }

// Insert implements Policy.
func (f *FIFO) Insert(p core.PageID, _ Access) { f.r.insert(p) }

// Touch implements Policy. FIFO ignores hits.
func (f *FIFO) Touch(core.PageID, Access) {}

// Evict implements Policy.
func (f *FIFO) Evict(evictable func(core.PageID) bool) (core.PageID, bool) {
	return f.r.evictFront(evictable)
}

// Remove implements Policy.
func (f *FIFO) Remove(p core.PageID) bool { return f.r.remove(p) }

// Contains implements Policy.
func (f *FIFO) Contains(p core.PageID) bool { return f.r.contains(p) }

// Len implements Policy.
func (f *FIFO) Len() int { return f.r.len() }

// Reset implements Policy.
func (f *FIFO) Reset() { f.r.reset() }

// Resize implements Policy: FIFO's victim choice is capacity-independent.
func (f *FIFO) Resize(int) {}

// Surrender implements Policy: same victim as Evict.
func (f *FIFO) Surrender(evictable func(core.PageID) bool) (core.PageID, bool) {
	return f.r.evictFront(evictable)
}
