package cache

import (
	"container/list"

	"mcpaging/internal/core"
)

// recencyList is the shared machinery of the recency-ordered policies
// (LRU, MRU, FIFO): a doubly linked list from least to most recently
// used/inserted plus a page → element index.
type recencyList struct {
	ll  *list.List // front = least recent
	pos map[core.PageID]*list.Element
}

func newRecencyList() recencyList {
	return recencyList{ll: list.New(), pos: make(map[core.PageID]*list.Element)}
}

func (r *recencyList) insert(p core.PageID) {
	if _, ok := r.pos[p]; ok {
		panic("cache: duplicate insert of page in replacement domain")
	}
	r.pos[p] = r.ll.PushBack(p)
}

func (r *recencyList) moveToBack(p core.PageID) {
	if e, ok := r.pos[p]; ok {
		r.ll.MoveToBack(e)
	}
}

func (r *recencyList) remove(p core.PageID) bool {
	e, ok := r.pos[p]
	if !ok {
		return false
	}
	r.ll.Remove(e)
	delete(r.pos, p)
	return true
}

func (r *recencyList) contains(p core.PageID) bool {
	_, ok := r.pos[p]
	return ok
}

func (r *recencyList) len() int { return r.ll.Len() }

func (r *recencyList) reset() {
	r.ll.Init()
	r.pos = make(map[core.PageID]*list.Element)
}

// evictFront removes and returns the first evictable page scanning from
// the front of the list.
func (r *recencyList) evictFront(evictable func(core.PageID) bool) (core.PageID, bool) {
	for e := r.ll.Front(); e != nil; e = e.Next() {
		p := e.Value.(core.PageID)
		if evictable == nil || evictable(p) {
			r.ll.Remove(e)
			delete(r.pos, p)
			return p, true
		}
	}
	return core.NoPage, false
}

// evictBack removes and returns the first evictable page scanning from
// the back of the list.
func (r *recencyList) evictBack(evictable func(core.PageID) bool) (core.PageID, bool) {
	for e := r.ll.Back(); e != nil; e = e.Prev() {
		p := e.Value.(core.PageID)
		if evictable == nil || evictable(p) {
			r.ll.Remove(e)
			delete(r.pos, p)
			return p, true
		}
	}
	return core.NoPage, false
}

// LRU evicts the least recently used page of its domain. With a shared
// domain this is the paper's S_LRU eviction rule; with one domain per
// part it is the per-part rule of sP_LRU and dP_LRU.
type LRU struct{ r recencyList }

// NewLRU returns an empty LRU policy.
func NewLRU() *LRU { return &LRU{r: newRecencyList()} }

// Name implements Policy.
func (l *LRU) Name() string { return "LRU" }

// Insert implements Policy.
func (l *LRU) Insert(p core.PageID, _ Access) { l.r.insert(p) }

// Touch implements Policy.
func (l *LRU) Touch(p core.PageID, _ Access) { l.r.moveToBack(p) }

// Evict implements Policy.
func (l *LRU) Evict(evictable func(core.PageID) bool) (core.PageID, bool) {
	return l.r.evictFront(evictable)
}

// Remove implements Policy.
func (l *LRU) Remove(p core.PageID) bool { return l.r.remove(p) }

// Contains implements Policy.
func (l *LRU) Contains(p core.PageID) bool { return l.r.contains(p) }

// Len implements Policy.
func (l *LRU) Len() int { return l.r.len() }

// Reset implements Policy.
func (l *LRU) Reset() { l.r.reset() }

// LeastRecent returns the least recently used page currently in the
// domain without removing it. It is used by the Lemma-3 dynamic
// partition, which must locate the globally least recent page across
// parts. ok is false when the domain is empty or nothing is evictable.
func (l *LRU) LeastRecent(evictable func(core.PageID) bool) (core.PageID, bool) {
	for e := l.r.ll.Front(); e != nil; e = e.Next() {
		p := e.Value.(core.PageID)
		if evictable == nil || evictable(p) {
			return p, true
		}
	}
	return core.NoPage, false
}

// MRU evicts the most recently used page. It is the classic pathological
// counterpoint to LRU on looping workloads and appears in the E13 policy
// matrix.
type MRU struct{ r recencyList }

// NewMRU returns an empty MRU policy.
func NewMRU() *MRU { return &MRU{r: newRecencyList()} }

// Name implements Policy.
func (m *MRU) Name() string { return "MRU" }

// Insert implements Policy.
func (m *MRU) Insert(p core.PageID, _ Access) { m.r.insert(p) }

// Touch implements Policy.
func (m *MRU) Touch(p core.PageID, _ Access) { m.r.moveToBack(p) }

// Evict implements Policy.
func (m *MRU) Evict(evictable func(core.PageID) bool) (core.PageID, bool) {
	return m.r.evictBack(evictable)
}

// Remove implements Policy.
func (m *MRU) Remove(p core.PageID) bool { return m.r.remove(p) }

// Contains implements Policy.
func (m *MRU) Contains(p core.PageID) bool { return m.r.contains(p) }

// Len implements Policy.
func (m *MRU) Len() int { return m.r.len() }

// Reset implements Policy.
func (m *MRU) Reset() { m.r.reset() }

// FIFO evicts the page that has been in the domain longest, regardless of
// hits. It is a conservative policy, so Lemma 1's upper bound applies to
// it.
type FIFO struct{ r recencyList }

// NewFIFO returns an empty FIFO policy.
func NewFIFO() *FIFO { return &FIFO{r: newRecencyList()} }

// Name implements Policy.
func (f *FIFO) Name() string { return "FIFO" }

// Insert implements Policy.
func (f *FIFO) Insert(p core.PageID, _ Access) { f.r.insert(p) }

// Touch implements Policy. FIFO ignores hits.
func (f *FIFO) Touch(core.PageID, Access) {}

// Evict implements Policy.
func (f *FIFO) Evict(evictable func(core.PageID) bool) (core.PageID, bool) {
	return f.r.evictFront(evictable)
}

// Remove implements Policy.
func (f *FIFO) Remove(p core.PageID) bool { return f.r.remove(p) }

// Contains implements Policy.
func (f *FIFO) Contains(p core.PageID) bool { return f.r.contains(p) }

// Len implements Policy.
func (f *FIFO) Len() int { return f.r.len() }

// Reset implements Policy.
func (f *FIFO) Reset() { f.r.reset() }
