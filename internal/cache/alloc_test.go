package cache_test

import (
	"testing"

	"mcpaging/internal/cache"
	"mcpaging/internal/core"
)

// The recency-ordered policies back the simulator's hot loop; their
// steady-state operations are annotated //mcpaging:hotpath and must not
// allocate once the dense node array is warm. These tests pin that
// invariant so a regression fails CI rather than only showing up in
// benchmark numbers.

// warmRecency fills a policy with pages 0..n-1 so the dense array is
// grown and every subsequent operation stays inside it.
func warmRecency(p cache.Policy, n int) {
	for i := 0; i < n; i++ {
		p.Insert(core.PageID(i), cache.Access{})
	}
}

func TestRecencyPoliciesSteadyStateZeroAllocs(t *testing.T) {
	policies := []struct {
		name string
		p    cache.Policy
	}{
		{"LRU", cache.NewLRU()},
		{"MRU", cache.NewMRU()},
		{"FIFO", cache.NewFIFO()},
	}
	for _, tc := range policies {
		t.Run(tc.name, func(t *testing.T) {
			warmRecency(tc.p, 64)
			allocs := testing.AllocsPerRun(1000, func() {
				v, ok := tc.p.Evict(nil)
				if !ok {
					t.Fatal("evict failed on non-empty policy")
				}
				tc.p.Insert(v, cache.Access{})
				tc.p.Touch(v, cache.Access{})
			})
			if allocs != 0 {
				t.Fatalf("%s steady-state evict/insert/touch: %v allocs/op, want 0", tc.name, allocs)
			}
		})
	}
}

func TestRecencyListHitPathZeroAllocs(t *testing.T) {
	l := cache.NewLRU()
	warmRecency(l, 64)
	allocs := testing.AllocsPerRun(1000, func() {
		// The hit path of the serve loop: Contains + Touch.
		if !l.Contains(17) {
			t.Fatal("warmed page missing")
		}
		l.Touch(17, cache.Access{})
	})
	if allocs != 0 {
		t.Fatalf("LRU hit path: %v allocs/op, want 0", allocs)
	}
}
