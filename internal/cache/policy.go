// Package cache implements eviction policies over a single replacement
// domain — either the whole shared cache or one part of a partitioned
// cache. A Policy tracks replacement metadata (recency, frequency, marks,
// future knowledge) for the pages currently resident in its domain and
// chooses eviction victims; residency itself, fetch-in-flight state and
// capacity enforcement belong to the simulator and the strategies built
// on top (package sim and package policy).
//
// All policies in this package are deterministic given their construction
// arguments (Random takes an explicit seed), which keeps every simulation
// in this library reproducible.
package cache

import (
	"fmt"
	"math"

	"mcpaging/internal/core"
)

// Access carries the context of a request: which core issued it, the
// simulation time at which it is served, and the request's index within
// the core's sequence. Policies may use any subset of these.
type Access struct {
	Core  int
	Time  int64
	Index int
}

// Policy is the replacement-policy interface. A policy tracks a set of
// pages (its domain) and selects eviction victims from it.
//
// The evictable predicate passed to Evict lets the caller exclude pages
// that are physically not evictable at this instant (pages whose fetch is
// still in flight, per the paper's convention that an evicted cell stays
// unused until the fetch finishes). Policies must honour it and must pick
// deterministically among the remaining candidates.
type Policy interface {
	// Name returns a short identifier such as "LRU" or "FIFO".
	Name() string
	// Insert adds a page to the domain. The page must not already be
	// present. It is called at fault time, when the fetched page's cell
	// is allocated.
	Insert(p core.PageID, at Access)
	// Touch records a hit on a page already in the domain.
	Touch(p core.PageID, at Access)
	// Evict selects a victim among the domain pages for which evictable
	// returns true, removes it from the domain, and returns it. It
	// returns ok=false if no page qualifies. A nil predicate means all
	// pages are evictable.
	Evict(evictable func(core.PageID) bool) (victim core.PageID, ok bool)
	// Remove forcibly removes a page from the domain (used when a
	// dynamic partition shrinks a part or a shared page migrates). It
	// reports whether the page was present.
	Remove(p core.PageID) bool
	// Contains reports whether the page is in the domain.
	Contains(p core.PageID) bool
	// Len returns the number of pages in the domain.
	Len() int
	// Reset clears all metadata, returning the policy to its initial
	// state.
	Reset()
	// Resize is the capacity half of the partition contract: it tells
	// the policy the current size of its replacement domain. Strategies
	// call it before the first insert (the shared strategy passes K,
	// partitioned strategies the part size) and again whenever a dynamic
	// partition controller regrants cells, so capacity-dependent
	// bookkeeping (ARC's ghost lists and adaptation target, SLRU's
	// segment split, TinyLFU's admission window) tracks the part it
	// serves. Policies whose victim choice is capacity-independent
	// (LRU, FIFO, ...) treat it as a no-op. Resize never evicts: when a
	// part shrinks, the strategy drains the overage via Surrender.
	Resize(n int)
	// Surrender is the shrink half of the partition contract: it removes
	// and returns the page the policy gives up when its domain loses a
	// cell without a replacement being inserted (a dynamic partition
	// moving a cell to another core). The victim must come from the
	// domain and honour the evictable predicate exactly like Evict; for
	// every policy in this package the surrendered page is the page
	// Evict would have chosen, so shrinking a part by one cell evicts
	// exactly the policy's victim. ok is false if nothing qualifies.
	Surrender(evictable func(core.PageID) bool) (victim core.PageID, ok bool)
}

// Oracle provides future knowledge to offline policies such as FITF. The
// simulator implements it.
type Oracle interface {
	// NextUse returns a monotone priority for page p's next request: a
	// larger value means the next request is further in the future. The
	// simulator returns a lower bound on the absolute time of the next
	// request under the current alignment, or NeverUsed if the page is
	// never requested again.
	NextUse(p core.PageID) int64
}

// NeverUsed is returned by Oracle.NextUse for pages with no future
// request.
const NeverUsed int64 = math.MaxInt64

// OracleUser is implemented by policies that need future knowledge. The
// simulator calls SetOracle before the run starts; using such a policy
// outside a simulation without an oracle panics on the first eviction.
type OracleUser interface {
	SetOracle(Oracle)
}

// Factory constructs a fresh policy instance. Partitioned strategies call
// the factory once per part so that parts never share metadata.
type Factory func() Policy

// NewFactory returns a factory for the named policy. Supported names:
// LRU, FIFO, CLOCK, LFU, MRU, MARK (marking with LRU preference among
// unmarked pages), RMARK (randomized marking), RAND (both take the
// seed), FITF (offline; needs an oracle), ARC, SLRU, and LRU2. The name
// match is exact.
func NewFactory(name string, seed int64) (Factory, error) {
	switch name {
	case "LRU":
		return func() Policy { return NewLRU() }, nil
	case "FIFO":
		return func() Policy { return NewFIFO() }, nil
	case "CLOCK":
		return func() Policy { return NewClock() }, nil
	case "LFU":
		return func() Policy { return NewLFU() }, nil
	case "MRU":
		return func() Policy { return NewMRU() }, nil
	case "MARK":
		return func() Policy { return NewMarking() }, nil
	case "RAND":
		return func() Policy { return NewRandom(seed) }, nil
	case "RMARK":
		return func() Policy { return NewRMark(seed) }, nil
	case "FITF":
		return func() Policy { return NewFITF() }, nil
	case "ARC":
		return func() Policy { return NewARC() }, nil
	case "SLRU":
		return func() Policy { return NewSLRU() }, nil
	case "LRU2":
		return func() Policy { return NewLRU2() }, nil
	case "TINYLFU":
		return func() Policy { return NewTinyLFU() }, nil
	}
	return nil, fmt.Errorf("cache: unknown policy %q", name)
}

// PolicyNames lists the policy names accepted by NewFactory, in a stable
// order suitable for CLI help strings and experiment sweeps.
func PolicyNames() []string {
	return []string{"LRU", "FIFO", "CLOCK", "LFU", "MRU", "MARK", "RMARK", "RAND", "FITF", "ARC", "SLRU", "LRU2", "TINYLFU"}
}
