package adversary_test

import (
	"testing"

	"mcpaging/internal/adversary"
	"mcpaging/internal/cache"
	"mcpaging/internal/core"
	"mcpaging/internal/mattson"
	"mcpaging/internal/policy"
	"mcpaging/internal/sim"
)

func lru() cache.Factory  { return func() cache.Policy { return cache.NewLRU() } }
func fitf() cache.Factory { return func() cache.Policy { return cache.NewFITF() } }

func run(t *testing.T, in core.Instance, s sim.Strategy) sim.Result {
	t.Helper()
	res, err := sim.Run(in, s, nil)
	if err != nil {
		t.Fatalf("%s: %v", s.Name(), err)
	}
	return res
}

func TestCycleAndRepeat(t *testing.T) {
	c := adversary.Cycle(1, 3, 7)
	if len(c) != 7 {
		t.Fatalf("len = %d", len(c))
	}
	if c[0] != c[3] || c[0] == c[1] {
		t.Fatal("cycle structure wrong")
	}
	r := adversary.Repeat(0, 5)
	for _, pg := range r {
		if pg != r[0] {
			t.Fatal("repeat should be constant")
		}
	}
	// Distinct cores use distinct page spaces.
	rs := core.RequestSet{adversary.Cycle(0, 3, 5), adversary.Cycle(1, 3, 5)}
	if !rs.Disjoint() {
		t.Fatal("constructions must be disjoint across cores")
	}
}

// TestLemma1Shape: with a fixed static partition, LRU per part loses a
// factor ≈ max_j k_j against per-part OPT on the Lemma 1 sequence, and
// never more than that (the lemma's matching upper bound).
func TestLemma1Shape(t *testing.T) {
	sizes := []int{2, 2, 4, 2}
	k := 10
	perCore := 400
	rs, err := adversary.Lemma1(sizes, perCore)
	if err != nil {
		t.Fatal(err)
	}
	if j := adversary.Lemma1Jstar(sizes); j != 2 {
		t.Fatalf("jstar = %d, want 2", j)
	}
	in := core.Instance{R: rs, P: core.Params{K: k, Tau: 1}}
	lruRes := run(t, in, policy.NewStatic(sizes, lru()))
	optRes := run(t, in, policy.NewStatic(sizes, fitf()))

	// Per the proof: sP_LRU faults on every request of the cycling core
	// plus once per other core.
	wantLRU := int64(perCore + len(sizes) - 1)
	if lruRes.TotalFaults() != wantLRU {
		t.Fatalf("sP_LRU faults = %d, want %d", lruRes.TotalFaults(), wantLRU)
	}
	ratio := float64(lruRes.TotalFaults()) / float64(optRes.TotalFaults())
	kmax := 4.0
	if ratio > kmax+1e-9 {
		t.Fatalf("ratio %.2f exceeds the Lemma 1 upper bound max_j k_j = %v", ratio, kmax)
	}
	if ratio < kmax*0.75 {
		t.Fatalf("ratio %.2f too small; construction should approach %v", ratio, kmax)
	}
}

// TestLemma1RatioGrowsWithK: the lower bound scales with the largest
// part.
func TestLemma1RatioGrowsWithK(t *testing.T) {
	prev := 0.0
	for _, kbig := range []int{2, 4, 8} {
		sizes := []int{1, kbig}
		rs, err := adversary.Lemma1(sizes, 600)
		if err != nil {
			t.Fatal(err)
		}
		in := core.Instance{R: rs, P: core.Params{K: kbig + 1, Tau: 0}}
		lruRes := run(t, in, policy.NewStatic(sizes, lru()))
		optRes := run(t, in, policy.NewStatic(sizes, fitf()))
		ratio := float64(lruRes.TotalFaults()) / float64(optRes.TotalFaults())
		if ratio <= prev {
			t.Fatalf("ratio should grow with k: %v at k=%d after %v", ratio, kbig, prev)
		}
		prev = ratio
	}
}

// TestLemma2Shape: an online static partition loses a factor growing
// linearly in n against the offline-optimal static partition.
func TestLemma2Shape(t *testing.T) {
	sizes := []int{2, 2, 2, 2}
	k := 8
	ratios := make([]float64, 0, 2)
	for _, perCore := range []int{200, 400} {
		rs, err := adversary.Lemma2(sizes, perCore)
		if err != nil {
			t.Fatal(err)
		}
		in := core.Instance{R: rs, P: core.Params{K: k, Tau: 1}}
		online := run(t, in, policy.NewStatic(sizes, lru()))
		opt, err := mattson.OptimalLRU(rs, k)
		if err != nil {
			t.Fatal(err)
		}
		optRes := run(t, in, policy.NewStatic(opt.Sizes, lru()))
		if optRes.TotalFaults() != opt.Faults {
			t.Fatalf("partition prediction mismatch: %d vs %d", optRes.TotalFaults(), opt.Faults)
		}
		ratios = append(ratios, float64(online.TotalFaults())/float64(optRes.TotalFaults()))
	}
	// Doubling n should roughly double the ratio (Ω(n) separation).
	if ratios[1] < ratios[0]*1.6 {
		t.Fatalf("ratio not growing linearly: %v", ratios)
	}
}

// TestTheorem1Part1Shape: on the round-robin construction, shared LRU
// faults only K+p times while the best static partition with any
// eviction policy faults Θ(x); the separation grows with n.
func TestTheorem1Part1Shape(t *testing.T) {
	p, k, tau := 2, 4, 1
	prevRatio := 0.0
	for _, x := range []int{50, 100} {
		rs, err := adversary.Theorem1Round(p, k, tau, x)
		if err != nil {
			t.Fatal(err)
		}
		in := core.Instance{R: rs, P: core.Params{K: k, Tau: tau}}
		shared := run(t, in, adversary.SharedLRU())
		if shared.TotalFaults() != int64(k+p) {
			t.Fatalf("x=%d: S_LRU faults = %d, want K+p = %d", x, shared.TotalFaults(), k+p)
		}
		opt, err := mattson.OptimalOPT(rs, k)
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(opt.Faults) / float64(shared.TotalFaults())
		if ratio <= prevRatio {
			t.Fatalf("separation should grow with x: %.2f after %.2f", ratio, prevRatio)
		}
		prevRatio = ratio
	}
}

// TestTheorem1Part2Shape: in the other direction shared LRU is within a
// factor K of the best static partition (Theorem 1(2)) — checked on the
// adversarial inputs of this package, where the bound is under the most
// stress.
func TestTheorem1Part2Shape(t *testing.T) {
	cases := []core.RequestSet{}
	if rs, err := adversary.Lemma1([]int{2, 3, 3}, 200); err == nil {
		cases = append(cases, rs)
	}
	if rs, err := adversary.Lemma2([]int{2, 2, 2, 2}, 200); err == nil {
		cases = append(cases, rs)
	}
	if rs, err := adversary.Lemma4(2, 4, 200); err == nil {
		cases = append(cases, rs)
	}
	for i, rs := range cases {
		k := 8
		in := core.Instance{R: rs, P: core.Params{K: k, Tau: 1}}
		shared := run(t, in, adversary.SharedLRU())
		opt, err := mattson.OptimalOPT(rs, k)
		if err != nil {
			t.Fatal(err)
		}
		optRes := run(t, in, policy.NewStatic(opt.Sizes, fitf()))
		if float64(shared.TotalFaults()) > float64(k)*float64(optRes.TotalFaults())+1e-9 {
			t.Fatalf("case %d: S_LRU %d > K·sP_OPT_OPT %d·%d", i, shared.TotalFaults(), k, optRes.TotalFaults())
		}
	}
}

// TestLemma4Shape: shared LRU faults on every request of the cycling
// construction while the sacrifice strategy achieves ≈ n/(p(τ+1)),
// giving a competitive-ratio separation of order p(τ+1).
func TestLemma4Shape(t *testing.T) {
	p, k, tau, perCore := 2, 4, 3, 300
	rs, err := adversary.Lemma4(p, k, perCore)
	if err != nil {
		t.Fatal(err)
	}
	in := core.Instance{R: rs, P: core.Params{K: k, Tau: tau}}
	lruRes := run(t, in, adversary.SharedLRU())
	if lruRes.TotalFaults() != int64(p*perCore) {
		t.Fatalf("S_LRU faults = %d, want every request (%d)", lruRes.TotalFaults(), p*perCore)
	}
	soff := run(t, in, adversary.NewSacrifice(p-1))
	ratio := float64(lruRes.TotalFaults()) / float64(soff.TotalFaults())
	bound := float64(p * (tau + 1))
	if ratio < bound*0.5 {
		t.Fatalf("ratio %.2f too small; want ≈ p(τ+1) = %.0f", ratio, bound)
	}
	// The non-sacrificed core should settle after its working set fits.
	if soff.Faults[0] > int64(k) {
		t.Fatalf("protected core faults %d, want ≤ K", soff.Faults[0])
	}
}

// TestLemma4RatioGrowsWithTau: the separation scales with τ.
func TestLemma4RatioGrowsWithTau(t *testing.T) {
	p, k, perCore := 2, 4, 400
	prev := 0.0
	for _, tau := range []int{0, 2, 5} {
		rs, err := adversary.Lemma4(p, k, perCore)
		if err != nil {
			t.Fatal(err)
		}
		in := core.Instance{R: rs, P: core.Params{K: k, Tau: tau}}
		lruRes := run(t, in, adversary.SharedLRU())
		soff := run(t, in, adversary.NewSacrifice(p-1))
		ratio := float64(lruRes.TotalFaults()) / float64(soff.TotalFaults())
		if ratio <= prev {
			t.Fatalf("ratio should grow with τ: %.2f at τ=%d after %.2f", ratio, tau, prev)
		}
		prev = ratio
	}
}

// TestFITFNotOptimal (remark after Lemma 4): when τ > K/p, shared FITF is
// beaten by the sacrifice strategy on the Lemma 4 construction.
func TestFITFNotOptimal(t *testing.T) {
	p, k, perCore := 2, 4, 300
	tau := k/p + 1 // τ > K/p
	rs, err := adversary.Lemma4(p, k, perCore)
	if err != nil {
		t.Fatal(err)
	}
	in := core.Instance{R: rs, P: core.Params{K: k, Tau: tau}}
	fitfRes := run(t, in, adversary.SharedFITF())
	soff := run(t, in, adversary.NewSacrifice(p-1))
	if soff.TotalFaults() >= fitfRes.TotalFaults() {
		t.Fatalf("sacrifice (%d) should beat shared FITF (%d) when τ > K/p",
			soff.TotalFaults(), fitfRes.TotalFaults())
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := adversary.Lemma1(nil, 10); err == nil {
		t.Error("Lemma1 with empty sizes should fail")
	}
	if _, err := adversary.Lemma2([]int{1}, 10); err == nil {
		t.Error("Lemma2 with p=1 should fail")
	}
	if _, err := adversary.Lemma2([]int{1, 1}, 10); err == nil {
		t.Error("Lemma2 with all parts < 2 should fail")
	}
	if _, err := adversary.Theorem1Round(3, 4, 1, 5); err == nil {
		t.Error("Theorem1Round with p∤K should fail")
	}
	if _, err := adversary.Lemma4(3, 4, 10); err == nil {
		t.Error("Lemma4 with p∤K should fail")
	}
	s := adversary.NewSacrifice(5)
	in := core.Instance{R: core.RequestSet{{1}}, P: core.Params{K: 2, Tau: 0}}
	if _, err := sim.Run(in, s, nil); err == nil {
		t.Error("Sacrifice with out-of-range core should fail")
	}
}

func TestSacrificeAccounting(t *testing.T) {
	rs, err := adversary.Lemma4(2, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	in := core.Instance{R: rs, P: core.Params{K: 4, Tau: 2}}
	res := run(t, in, adversary.NewSacrifice(1))
	if res.TotalFaults()+res.TotalHits() != int64(in.R.TotalLen()) {
		t.Fatal("faults + hits != n")
	}
}
