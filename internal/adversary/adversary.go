// Package adversary builds the worst-case request sets used in the
// paper's lower-bound proofs (Lemmas 1, 2, 4 and Theorem 1), plus the
// scripted offline strategies those proofs play against. Each
// constructor documents which statement it instantiates; the experiments
// in EXPERIMENTS.md sweep their parameters to reproduce the claimed
// growth rates.
package adversary

import (
	"fmt"
	"math"

	"mcpaging/internal/cache"
	"mcpaging/internal/core"
	"mcpaging/internal/policy"
	"mcpaging/internal/sim"
)

// pageBase spaces the page namespaces of different cores so every
// construction is disjoint.
const pageBase = 1 << 16

// page returns the i-th private page of core j.
func page(j, i int) core.PageID { return core.PageID(j*pageBase + i) }

// Repeat returns a sequence requesting core j's page 0 n times.
func Repeat(j, n int) core.Sequence {
	s := make(core.Sequence, n)
	for i := range s {
		s[i] = page(j, 0)
	}
	return s
}

// Cycle returns a sequence of length n cycling through w distinct pages
// of core j: σ1 σ2 … σw σ1 σ2 …  — the classic LRU worst case when the
// available cache is smaller than w.
func Cycle(j, w, n int) core.Sequence {
	s := make(core.Sequence, n)
	for i := range s {
		s[i] = page(j, i%w)
	}
	return s
}

// Lemma1 builds the lower-bound request set of Lemma 1 for per-part LRU
// under a fixed static partition B = sizes: the core with the largest
// part cycles through k_max+1 pages (faulting on every request under
// LRU), while every other core re-requests a single page. perCore is the
// per-core sequence length (the paper's n/p).
func Lemma1(sizes []int, perCore int) (core.RequestSet, error) {
	if len(sizes) == 0 {
		return nil, fmt.Errorf("adversary: empty partition")
	}
	jstar := 0
	for j, k := range sizes {
		if k > sizes[jstar] {
			jstar = j
		}
	}
	rs := make(core.RequestSet, len(sizes))
	for j := range rs {
		if j == jstar {
			rs[j] = Cycle(j, sizes[j]+1, perCore)
		} else {
			rs[j] = Repeat(j, perCore)
		}
	}
	return rs, nil
}

// Lemma1Jstar returns the index of the cycling core in Lemma1's
// construction for the given partition.
func Lemma1Jstar(sizes []int) int {
	jstar := 0
	for j, k := range sizes {
		if k > sizes[jstar] {
			jstar = j
		}
	}
	return jstar
}

// Lemma2 builds the request set of Lemma 2, on which any online static
// partition B loses Ω(n) against the best offline static partition: the
// k* cores with the largest parts (except j*) cycle through k_j+1 pages
// — one more than their part — while j*, the smallest part of size ≥ 2,
// wastes its cells on a single repeated page. An offline partition moves
// j*'s spare cells to the thrashing cores and faults only K times.
func Lemma2(sizes []int, perCore int) (core.RequestSet, error) {
	p := len(sizes)
	if p < 2 {
		return nil, fmt.Errorf("adversary: Lemma2 needs p >= 2")
	}
	jstar := -1
	for j, k := range sizes {
		if k >= 2 && (jstar == -1 || k < sizes[jstar]) {
			jstar = j
		}
	}
	if jstar == -1 {
		return nil, fmt.Errorf("adversary: Lemma2 needs some part of size >= 2")
	}
	kstar := sizes[jstar]
	// P: the first k* cores in decreasing order of part size.
	order := make([]int, p)
	for j := range order {
		order[j] = j
	}
	// Stable selection sort by decreasing size (p is small).
	for a := 0; a < p; a++ {
		best := a
		for b := a + 1; b < p; b++ {
			if sizes[order[b]] > sizes[order[best]] {
				best = b
			}
		}
		order[a], order[best] = order[best], order[a]
	}
	inP := make(map[int]bool, kstar)
	for a := 0; a < kstar && a < p; a++ {
		inP[order[a]] = true
	}
	rs := make(core.RequestSet, p)
	for j := range rs {
		switch {
		case j == jstar:
			rs[j] = Repeat(j, perCore)
		case inP[j]:
			rs[j] = Cycle(j, sizes[j]+1, perCore)
		default:
			rs[j] = Cycle(j, sizes[j], perCore)
		}
	}
	return rs, nil
}

// Theorem1Round builds the round-robin construction of Theorem 1(1): the
// cores take turns being "in the distinct period" — cycling x times
// through K/p+1 distinct pages — while every other core re-requests a
// single page. Shared LRU pays only the K/p+1 compulsory faults per
// turn; any static partition must starve some core and faults Θ(x) in
// its distinct period. Requires p | K.
func Theorem1Round(p, k, tau, x int) (core.RequestSet, error) {
	if p < 1 || k%p != 0 {
		return nil, fmt.Errorf("adversary: Theorem1Round needs p | K (p=%d, K=%d)", p, k)
	}
	m := k/p + 1 // distinct pages per turn
	rs := make(core.RequestSet, p)
	for j := 1; j <= p; j++ {
		var s core.Sequence
		pre := (j - 1) * m * (tau + x)
		post := (p - j) * m * (tau + x)
		for i := 0; i < pre; i++ {
			s = append(s, page(j-1, 0))
		}
		for r := 0; r < x; r++ {
			for i := 0; i < m; i++ {
				s = append(s, page(j-1, i))
			}
		}
		for i := 0; i < post; i++ {
			s = append(s, page(j-1, 0))
		}
		rs[j-1] = s
	}
	return rs, nil
}

// Lemma4 builds the construction under which shared LRU loses a factor
// Ω(p(τ+1)) to an offline strategy: every core cycles through K/p+1
// distinct pages, so LRU faults on every request, while the offline
// strategy sacrifices the last core's pages to fit everyone else.
// Requires p | K. perCore is the paper's n/p.
func Lemma4(p, k, perCore int) (core.RequestSet, error) {
	if p < 1 || k%p != 0 {
		return nil, fmt.Errorf("adversary: Lemma4 needs p | K (p=%d, K=%d)", p, k)
	}
	rs := make(core.RequestSet, p)
	for j := 0; j < p; j++ {
		rs[j] = Cycle(j, k/p+1, perCore)
	}
	return rs, nil
}

// Sacrifice is the scripted offline strategy from the proof of Lemma 4:
// it designates one victim core and, once the cache is full, serves every
// other core's fault by evicting a page of the victim core — choosing the
// victim core's page whose next request is soonest, so the victim core
// keeps faulting while everyone else's working set settles into the
// cache. Faults by the victim core itself also evict its own
// soonest-needed page. If the victim core has no evictable page, the
// globally furthest-in-the-future page is evicted instead.
type Sacrifice struct {
	// VictimCore designates the sacrificed sequence (the proof uses the
	// last core).
	VictimCore int

	inst     core.Instance
	owner    map[core.PageID]int
	occ      map[core.PageID][]int
	ptr      map[core.PageID]int
	served   []int
	resident map[core.PageID]bool
}

// NewSacrifice returns the Lemma 4 offline strategy sacrificing core j.
func NewSacrifice(j int) *Sacrifice { return &Sacrifice{VictimCore: j} }

// Name implements sim.Strategy.
func (s *Sacrifice) Name() string { return fmt.Sprintf("SOFF(sacrifice=%d)", s.VictimCore) }

// Init implements sim.Strategy.
func (s *Sacrifice) Init(inst core.Instance) error {
	if !inst.R.Disjoint() {
		return sim.ErrNotDisjoint
	}
	if s.VictimCore < 0 || s.VictimCore >= inst.R.NumCores() {
		return fmt.Errorf("adversary: victim core %d out of range", s.VictimCore)
	}
	s.inst = inst
	s.owner = inst.R.Owner()
	s.occ = make(map[core.PageID][]int)
	for _, seq := range inst.R {
		for i, pg := range seq {
			s.occ[pg] = append(s.occ[pg], i)
		}
	}
	s.ptr = make(map[core.PageID]int, len(s.occ))
	s.served = make([]int, inst.R.NumCores())
	s.resident = make(map[core.PageID]bool)
	return nil
}

// nextUse returns the remaining distance (in the owner's own sequence)
// to the next occurrence of pg at or after the owner's current position.
// The per-page pointer only moves forward, so the amortised cost is O(1).
func (s *Sacrifice) nextUse(pg core.PageID) int64 {
	c := s.owner[pg]
	list := s.occ[pg]
	i := s.ptr[pg]
	for i < len(list) && list[i] < s.served[c] {
		i++
	}
	s.ptr[pg] = i
	if i == len(list) {
		return math.MaxInt64
	}
	return int64(list[i] - s.served[c])
}

// OnHit implements sim.Strategy.
func (s *Sacrifice) OnHit(_ core.PageID, at cache.Access) { s.served[at.Core]++ }

// OnJoin implements sim.Strategy.
func (s *Sacrifice) OnJoin(_ core.PageID, at cache.Access) { s.served[at.Core]++ }

// othersActive reports whether any core other than the victim core still
// has unserved requests.
func (s *Sacrifice) othersActive() bool {
	for c, seq := range s.inst.R {
		if c != s.VictimCore && s.served[c] < len(seq) {
			return true
		}
	}
	return false
}

// OnFault implements sim.Strategy.
func (s *Sacrifice) OnFault(pg core.PageID, at cache.Access, v sim.View) core.PageID {
	s.served[at.Core]++
	if v.Free() > 0 {
		s.resident[pg] = true
		return core.NoPage
	}
	victim := core.NoPage
	if s.othersActive() {
		// Sacrifice phase: evict the victim core's soonest-needed page,
		// keeping everyone else's working set intact.
		var bestNU int64 = math.MaxInt64
		for q := range s.resident {
			if q == pg || !v.Resident(q) || s.owner[q] != s.VictimCore {
				continue
			}
			if nu := s.nextUse(q); victim == core.NoPage || nu < bestNU || (nu == bestNU && q < victim) {
				victim, bestNU = q, nu
			}
		}
	}
	if victim == core.NoPage {
		// Recovery phase (or no sacrificeable page): evict the globally
		// furthest-in-the-future page; pages of finished sequences are
		// never requested again and go first.
		var bestNU int64 = -1
		for q := range s.resident {
			if q == pg || !v.Resident(q) {
				continue
			}
			if nu := s.nextUse(q); nu > bestNU || (nu == bestNU && (victim == core.NoPage || q < victim)) {
				victim, bestNU = q, nu
			}
		}
	}
	if victim != core.NoPage {
		delete(s.resident, victim)
	}
	s.resident[pg] = true
	return victim
}

// SharedLRU is a convenience constructor for the S_LRU baseline used in
// every adversarial experiment.
func SharedLRU() sim.Strategy {
	return policy.NewShared(func() cache.Policy { return cache.NewLRU() })
}

// SharedFITF is a convenience constructor for the S_FITF strategy used by
// experiment E8.
func SharedFITF() sim.Strategy {
	return policy.NewShared(func() cache.Policy { return cache.NewFITF() })
}
