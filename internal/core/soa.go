package core

// Flat is a structure-of-arrays view of a RequestSet: every per-core
// sequence concatenated into one contiguous backing array, plus a
// p+1-entry offset table. Engines that scan sequences in tight loops
// (the speculative parallel engine in internal/sim) use it so per-core
// cursors walk one linear array instead of chasing p separate slice
// headers — the scan's memory traffic becomes a single forward stream
// per core, which is what hardware prefetchers are built for.
//
// A Flat is a copy of the request set at Flatten time; it does not
// alias the source sequences and is safe to read concurrently.
type Flat struct {
	// Pages holds the sequences back to back: core c's requests occupy
	// Pages[Off[c]:Off[c+1]].
	Pages []PageID
	// Off has length p+1; Off[0] = 0 and Off[p] = total request count.
	Off []int32
}

// Flatten builds a Flat view of r. Use FlattenInto to recycle backing
// arrays across rebinds.
func Flatten(r RequestSet) Flat {
	return FlattenInto(Flat{}, r)
}

// FlattenInto rebuilds f as a view of r, reusing f's backing arrays
// when their capacity suffices — the rebind half of the reusable-engine
// pattern: a long-lived Runner re-flattens each workload it binds into
// the same storage.
func FlattenInto(f Flat, r RequestSet) Flat {
	n := r.TotalLen()
	p := len(r)
	if cap(f.Pages) < n {
		f.Pages = make([]PageID, n)
	}
	f.Pages = f.Pages[:n]
	if cap(f.Off) < p+1 {
		f.Off = make([]int32, p+1)
	}
	f.Off = f.Off[:p+1]
	pos := 0
	for c, seq := range r {
		f.Off[c] = int32(pos)
		copy(f.Pages[pos:], seq)
		pos += len(seq)
	}
	f.Off[p] = int32(pos)
	return f
}

// NumCores returns p, the number of cores in the view.
func (f Flat) NumCores() int {
	if len(f.Off) == 0 {
		return 0
	}
	return len(f.Off) - 1
}

// Len returns the length of core c's sequence.
func (f Flat) Len(c int) int { return int(f.Off[c+1] - f.Off[c]) }

// Seq returns core c's sequence as a subslice of the backing array.
// The result aliases the Flat and must not be mutated.
func (f Flat) Seq(c int) []PageID { return f.Pages[f.Off[c]:f.Off[c+1]] }
