package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestSequencePages(t *testing.T) {
	s := Sequence{3, 1, 3, 2, 1}
	got := s.Pages()
	want := []PageID{1, 2, 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Pages() = %v, want %v", got, want)
	}
}

func TestSequenceClone(t *testing.T) {
	s := Sequence{1, 2, 3}
	c := s.Clone()
	c[0] = 9
	if s[0] != 1 {
		t.Fatalf("Clone aliases the original")
	}
}

func TestRequestSetCounts(t *testing.T) {
	r := RequestSet{{1, 2}, {3}, {}}
	if got := r.NumCores(); got != 3 {
		t.Errorf("NumCores = %d, want 3", got)
	}
	if got := r.TotalLen(); got != 3 {
		t.Errorf("TotalLen = %d, want 3", got)
	}
	if got := r.MaxLen(); got != 2 {
		t.Errorf("MaxLen = %d, want 2", got)
	}
}

func TestUniverse(t *testing.T) {
	r := RequestSet{{5, 1}, {1, 7}}
	want := []PageID{1, 5, 7}
	if got := r.Universe(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Universe = %v, want %v", got, want)
	}
}

func TestDisjoint(t *testing.T) {
	cases := []struct {
		name string
		r    RequestSet
		want bool
	}{
		{"disjoint", RequestSet{{1, 2}, {3, 4}}, true},
		{"overlap", RequestSet{{1, 2}, {2, 3}}, false},
		{"single core repeats", RequestSet{{1, 1, 2}}, true},
		{"empty", RequestSet{{}, {}}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.r.Disjoint(); got != c.want {
				t.Fatalf("Disjoint = %v, want %v", got, c.want)
			}
		})
	}
}

func TestOwner(t *testing.T) {
	r := RequestSet{{1, 2}, {3}, {2, 4}}
	o := r.Owner()
	want := map[PageID]int{1: 0, 2: 0, 3: 1, 4: 2}
	if !reflect.DeepEqual(o, want) {
		t.Fatalf("Owner = %v, want %v", o, want)
	}
}

func TestValidate(t *testing.T) {
	if err := (RequestSet{}).Validate(); err == nil {
		t.Error("empty request set should fail validation")
	}
	if err := (RequestSet{{1, -2}}).Validate(); err == nil {
		t.Error("negative page should fail validation")
	}
	if err := (RequestSet{{1, 2}, {}}).Validate(); err != nil {
		t.Errorf("valid set failed: %v", err)
	}
}

func TestParamsValidate(t *testing.T) {
	if err := (Params{K: 0, Tau: 0}).Validate(); err == nil {
		t.Error("K=0 should fail")
	}
	if err := (Params{K: 1, Tau: -1}).Validate(); err == nil {
		t.Error("tau<0 should fail")
	}
	if err := (Params{K: 4, Tau: 0}).Validate(); err != nil {
		t.Errorf("valid params failed: %v", err)
	}
}

func TestServiceSlots(t *testing.T) {
	p := Params{K: 4, Tau: 3}
	if got := p.ServiceSlots(false); got != 1 {
		t.Errorf("hit slots = %d, want 1", got)
	}
	if got := p.ServiceSlots(true); got != 4 {
		t.Errorf("fault slots = %d, want tau+1 = 4", got)
	}
}

func TestTallCache(t *testing.T) {
	in := Instance{R: RequestSet{{1}, {2}}, P: Params{K: 4, Tau: 0}}
	if !in.TallCache() {
		t.Error("K=4, p=2 should satisfy K >= p^2")
	}
	in.P.K = 3
	if in.TallCache() {
		t.Error("K=3, p=2 should not satisfy K >= p^2")
	}
}

func TestRenumberDense(t *testing.T) {
	r := RequestSet{{100, 5}, {5, 42}}
	out, m := Renumber(r)
	// Dense IDs 0..w-1.
	u := out.Universe()
	for i, p := range u {
		if int(p) != i {
			t.Fatalf("renumbered universe not dense: %v", u)
		}
	}
	// The mapping reproduces the renaming.
	for j := range r {
		for i := range r[j] {
			if m[r[j][i]] != out[j][i] {
				t.Fatalf("mapping mismatch at core %d pos %d", j, i)
			}
		}
	}
}

func TestRenumberPreservesStructure(t *testing.T) {
	// Property: renumbering preserves lengths, equality structure and
	// disjointness.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := make(RequestSet, 1+rng.Intn(4))
		for j := range r {
			s := make(Sequence, rng.Intn(20))
			for i := range s {
				s[i] = PageID(rng.Intn(10))
			}
			r[j] = s
		}
		out, _ := Renumber(r)
		if out.TotalLen() != r.TotalLen() || out.NumCores() != r.NumCores() {
			return false
		}
		// Equality structure within a core.
		for j := range r {
			for a := range r[j] {
				for b := range r[j] {
					if (r[j][a] == r[j][b]) != (out[j][a] == out[j][b]) {
						return false
					}
				}
			}
		}
		return r.Disjoint() == out.Disjoint()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConcatRoundRobin(t *testing.T) {
	r := RequestSet{{1, 2, 3}, {4}, {5, 6}}
	got := Concat(r)
	want := Sequence{1, 4, 5, 2, 6, 3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Concat = %v, want %v", got, want)
	}
}

func TestCloneIndependence(t *testing.T) {
	r := RequestSet{{1, 2}}
	c := r.Clone()
	c[0][0] = 9
	if r[0][0] != 1 {
		t.Fatal("Clone aliases the original")
	}
}

func TestWorkingSet(t *testing.T) {
	s := Sequence{1, 1, 1, 1}
	avg, max := s.WorkingSet(2)
	if avg != 1 || max != 1 {
		t.Fatalf("constant: avg=%v max=%d", avg, max)
	}
	s = Sequence{1, 2, 3, 4}
	avg, max = s.WorkingSet(2)
	if avg != 2 || max != 2 {
		t.Fatalf("all-distinct: avg=%v max=%d", avg, max)
	}
	s = Sequence{1, 2, 1, 2, 3}
	_, max = s.WorkingSet(3)
	if max != 3 {
		t.Fatalf("max=%d, want 3", max)
	}
	// Degenerate inputs.
	if a, m := (Sequence{}).WorkingSet(4); a != 0 || m != 0 {
		t.Fatal("empty sequence")
	}
	if a, m := s.WorkingSet(0); a != 0 || m != 0 {
		t.Fatal("zero window")
	}
	// Window larger than the sequence clamps.
	avg, max = Sequence{1, 2, 1}.WorkingSet(10)
	if max != 2 || avg != 2 {
		t.Fatalf("clamped window: avg=%v max=%d", avg, max)
	}
}

func TestWorkingSetBoundedByDistinct(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := make(Sequence, 1+rng.Intn(100))
		for i := range s {
			s[i] = PageID(rng.Intn(8))
		}
		w := 1 + rng.Intn(20)
		avg, max := s.WorkingSet(w)
		if max > len(s.Pages()) || max > w {
			return false
		}
		return avg <= float64(max) && avg >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
