// Package core defines the vocabulary of the multicore paging model of
// López-Ortiz and Salinger (SPAA'11 / UW TR CS-2011-12): pages, per-core
// request sequences, multicore request sets, and the model parameters
// (shared cache size K and fetch delay τ).
//
// A multicore paging instance is a set of p request sequences, one per
// core, served against a single shared cache of K pages. Requests from
// different cores are served in parallel; a fault on core j delays the
// remainder of core j's sequence by an additive τ time units. The paging
// algorithm may not reorder or delay requests: its only freedom is the
// choice of eviction victim on a fault.
package core

import (
	"errors"
	"fmt"
	"sort"
)

// PageID identifies a page in the (virtual) page universe. IDs are dense
// small integers in generated workloads but any non-negative value is a
// valid page. The zero value is a valid page; NoPage is the only reserved
// sentinel.
type PageID int32

// NoPage is a sentinel meaning "no page". It is never a valid request and
// is used by strategies to signal "place the fetched page in a free cell"
// instead of naming an eviction victim.
const NoPage PageID = -1

// Sequence is the request sequence of one core, in program order. The
// paging model serves it strictly in order: element i+1 cannot be served
// before element i has completed.
type Sequence []PageID

// Clone returns a deep copy of the sequence.
func (s Sequence) Clone() Sequence {
	c := make(Sequence, len(s))
	copy(c, s)
	return c
}

// Pages returns the set of distinct pages referenced by the sequence, in
// ascending order.
func (s Sequence) Pages() []PageID {
	seen := make(map[PageID]struct{}, len(s))
	for _, p := range s {
		seen[p] = struct{}{}
	}
	out := make([]PageID, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RequestSet is a multicore paging input: one request sequence per core.
// Core identifiers are the slice indices 0..p-1. The paper's "logical
// order" convention for simultaneous requests is increasing core index.
type RequestSet []Sequence

// NumCores returns p, the number of cores (sequences).
func (r RequestSet) NumCores() int { return len(r) }

// TotalLen returns n, the total number of page requests across all cores.
func (r RequestSet) TotalLen() int {
	n := 0
	for _, s := range r {
		n += len(s)
	}
	return n
}

// MaxLen returns the length of the longest per-core sequence.
func (r RequestSet) MaxLen() int {
	m := 0
	for _, s := range r {
		if len(s) > m {
			m = len(s)
		}
	}
	return m
}

// Universe returns the distinct pages requested anywhere in the set, in
// ascending order. Its length is the paper's w (number of distinct pages).
func (r RequestSet) Universe() []PageID {
	seen := make(map[PageID]struct{})
	for _, s := range r {
		for _, p := range s {
			seen[p] = struct{}{}
		}
	}
	out := make([]PageID, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Disjoint reports whether no page appears in more than one core's
// sequence. Most of the paper's theorems are stated for disjoint request
// sets; several of our strategies and offline solvers require it.
func (r RequestSet) Disjoint() bool {
	owner := make(map[PageID]int)
	for j, s := range r {
		for _, p := range s {
			if o, ok := owner[p]; ok && o != j {
				return false
			}
			owner[p] = j
		}
	}
	return true
}

// Owner returns, for a disjoint request set, a map from page to the core
// whose sequence contains it. For non-disjoint sets the owner is the
// lowest core index that requests the page.
func (r RequestSet) Owner() map[PageID]int {
	owner := make(map[PageID]int)
	for j := len(r) - 1; j >= 0; j-- {
		for _, p := range r[j] {
			owner[p] = j
		}
	}
	return owner
}

// Clone returns a deep copy of the request set.
func (r RequestSet) Clone() RequestSet {
	c := make(RequestSet, len(r))
	for i, s := range r {
		c[i] = s.Clone()
	}
	return c
}

// Validate checks structural sanity: at least one core, no negative page
// IDs. Empty per-core sequences are allowed (an inactive core).
func (r RequestSet) Validate() error {
	if len(r) == 0 {
		return errors.New("core: request set has no cores")
	}
	for j, s := range r {
		for i, p := range s {
			if p < 0 {
				return fmt.Errorf("core: core %d request %d: invalid page %d", j, i, p)
			}
		}
	}
	return nil
}

// CapacitySchedule is the K(t) contract Params.Capacity carries: a
// deterministic, pre-bound capacity schedule (implemented by
// capacity.Schedule; core stays dependency-free by naming only the
// interface). At(0) must equal Params.K.
type CapacitySchedule interface {
	// At returns the capacity in force at time t.
	At(t int64) int
	// NextChange returns the smallest t' > t with At(t') != At(t), or
	// math.MaxInt64 if capacity never changes again.
	NextChange(t int64) int64
	// Constant reports whether the schedule never changes capacity.
	Constant() bool
	// Base returns At(0).
	Base() int
	// Min returns the minimum capacity the schedule ever reaches.
	Min() int
	// String returns the spec the schedule was parsed from.
	String() string
	// Canonical returns a canonical binary encoding of the resolved
	// K(t) — not the spec — suitable for content-addressed hashing:
	// two schedules with the same Canonical bytes behave identically.
	Canonical() []byte
}

// Params are the model parameters shared by every simulation and solver.
type Params struct {
	// K is the shared cache size in pages. The paper assumes K ≥ p²
	// (a multicore tall-cache assumption) for several bounds, but the
	// simulator only requires K ≥ 1.
	K int
	// Tau (τ) is the additive delay a fault imposes on the remainder of
	// the faulting core's sequence. A fault occupies τ+1 time steps end
	// to end; a hit occupies 1.
	Tau int
	// Capacity, when non-nil, makes the cache size time-varying: the
	// simulator serves against K(t) = Capacity.At(t) instead of the
	// fixed K. Capacity.Base() must equal K. Nil is the classic
	// fixed-capacity model.
	Capacity CapacitySchedule
}

// Validate checks that the parameters are usable.
func (p Params) Validate() error {
	if p.K < 1 {
		return fmt.Errorf("core: cache size K=%d, want >= 1", p.K)
	}
	if p.Tau < 0 {
		return fmt.Errorf("core: fetch delay tau=%d, want >= 0", p.Tau)
	}
	if p.Capacity != nil {
		if base := p.Capacity.Base(); base != p.K {
			return fmt.Errorf("core: capacity schedule starts at %d, want K=%d", base, p.K)
		}
		if min := p.Capacity.Min(); min < 1 {
			return fmt.Errorf("core: capacity schedule reaches %d, want >= 1", min)
		}
	}
	return nil
}

// ServiceSlots returns the number of time slots one request occupies:
// 1 for a hit, τ+1 for a fault.
func (p Params) ServiceSlots(fault bool) int64 {
	if fault {
		return int64(p.Tau) + 1
	}
	return 1
}

// Instance couples a request set with model parameters; it is the unit of
// input for simulators and offline solvers.
type Instance struct {
	R RequestSet
	P Params
}

// Validate checks both the request set and the parameters.
func (in Instance) Validate() error {
	if err := in.R.Validate(); err != nil {
		return err
	}
	return in.P.Validate()
}

// TallCache reports whether the instance satisfies the paper's multicore
// tall-cache assumption K ≥ p².
func (in Instance) TallCache() bool {
	p := in.R.NumCores()
	return in.P.K >= p*p
}

// Renumber maps the pages of r onto the dense range 0..w-1 (in order of
// first appearance across cores, then position) and returns the renamed
// set together with the mapping. Renumbering never changes hit/fault
// behaviour of any strategy in this library, since strategies treat pages
// as opaque identifiers.
func Renumber(r RequestSet) (RequestSet, map[PageID]PageID) {
	m := make(map[PageID]PageID)
	out := make(RequestSet, len(r))
	next := PageID(0)
	for j, s := range r {
		ns := make(Sequence, len(s))
		for i, p := range s {
			np, ok := m[p]
			if !ok {
				np = next
				m[p] = np
				next++
			}
			ns[i] = np
		}
		out[j] = ns
	}
	return out, m
}

// Concat builds a single interleaved reference string from a request set
// using round-robin order. It is used by sequential (p=1) baselines and by
// the multiapplication-caching comparisons where all algorithms see the
// same interleaving.
func Concat(r RequestSet) Sequence {
	out := make(Sequence, 0, r.TotalLen())
	idx := make([]int, len(r))
	for {
		progressed := false
		for j, s := range r {
			if idx[j] < len(s) {
				out = append(out, s[idx[j]])
				idx[j]++
				progressed = true
			}
		}
		if !progressed {
			return out
		}
	}
}

// WorkingSet returns Denning's working-set profile of a sequence: the
// average and maximum number of distinct pages in a sliding window of
// the given length. It is the standard coarse characterisation of a
// core's cache demand, used by cmd/mcstat.
func (s Sequence) WorkingSet(window int) (avg float64, max int) {
	if window <= 0 || len(s) == 0 {
		return 0, 0
	}
	if window > len(s) {
		window = len(s)
	}
	counts := make(map[PageID]int)
	distinct := 0
	var sum int64
	samples := 0
	for i, p := range s {
		if counts[p] == 0 {
			distinct++
		}
		counts[p]++
		if i >= window {
			q := s[i-window]
			counts[q]--
			if counts[q] == 0 {
				distinct--
			}
		}
		if i >= window-1 {
			sum += int64(distinct)
			samples++
			if distinct > max {
				max = distinct
			}
		}
	}
	if samples == 0 {
		return 0, 0
	}
	return float64(sum) / float64(samples), max
}
