package offline

import (
	"fmt"
	"maps"
	"math"

	"mcpaging/internal/core"
)

// This file implements an *exact* variant of Algorithm 1 under the
// model's logical-order semantics — and documents a subtlety of the
// paper's pseudocode it corrects.
//
// Algorithm 1 as written requires every successor configuration to
// contain R(x), the pages pointed at by all sequences at the start of
// the transition. That forbids a fault from evicting a page that another
// core requests in the same timestep. But the model (Section 3) serves
// simultaneous requests "logically in a fixed order": core j's eviction
// happens after cores < j were served and before cores > j are examined,
// so evicting a lower-numbered core's already-hit page — or a
// higher-numbered core's about-to-be-requested page, forcing it to
// miss — is legal, and the simulator accepts such schedules.
//
// The gap is real: for R = {⟨2 2⟩, ⟨100 101 101 100⟩}, K=2, τ=0, the
// pinned DP reports 4 faults while a logical-order schedule achieves 3
// (core 1 evicts page 2 right after core 0's same-step hit). At τ=0 the
// exact optimum must equal Belady's algorithm on the round-robin
// interleaving (the Barve et al. equivalence, package multiapp), which
// the pinned rule misses.
//
// SolveFTFSeq processes the cores of each timestep sequentially inside
// the transition, exactly mirroring the simulator, and is therefore the
// true FTF optimum. SolveFTF remains the paper's Algorithm 1; experiment
// E10 reports where the two differ.

// ftfSeqState mirrors ftfState for the sequential DP.
type ftfSeqState struct {
	config []core.PageID
	x      []int
	faults int64
}

// SolveFTFSeq computes the exact minimum total faults under
// logical-order semantics. Same complexity regime as SolveFTF
// (polynomial in n for constant p and K); disjoint request sets only.
func SolveFTFSeq(inst core.Instance, opts Options) (FTFSolution, error) {
	pr, err := newPrep(inst)
	if err != nil {
		return FTFSolution{}, err
	}
	maxSum := pr.maxPosSum()
	buckets := make([]map[string]*ftfSeqState, maxSum+1)
	add := func(sum int, st *ftfSeqState) {
		if buckets[sum] == nil {
			buckets[sum] = make(map[string]*ftfSeqState)
		}
		key := stateKey(st.config, st.x)
		if old, ok := buckets[sum][key]; ok {
			if st.faults < old.faults {
				old.faults = st.faults
			}
			return
		}
		buckets[sum][key] = st
	}
	add(0, &ftfSeqState{x: make([]int, pr.p)})

	best := int64(math.MaxInt64)
	states := 0
	limit := opts.maxStates()

	for sum := 0; sum <= maxSum; sum++ {
		for _, skey := range sortedStateKeys(buckets[sum]) {
			st := buckets[sum][skey]
			states++
			if states > limit {
				return FTFSolution{}, fmt.Errorf("solve FTF seq: %w (limit %d)", ErrStateLimit, limit)
			}
			if pr.done(st.x) {
				if st.faults < best {
					best = st.faults
				}
				continue
			}
			if st.faults >= best {
				continue
			}
			pr.seqTransition(st, inst.P.K, opts.AllowForcing, func(nc []core.PageID, nx []int, nf int64) {
				add(posSum(nx), &ftfSeqState{config: nc, x: nx, faults: nf})
			})
		}
		buckets[sum] = nil
	}
	if best == int64(math.MaxInt64) {
		return FTFSolution{}, fmt.Errorf("solve FTF seq: no feasible schedule")
	}
	return FTFSolution{Faults: best, States: states}, nil
}

// seqTransition enumerates one timestep under logical-order semantics:
// cores are processed in increasing index; each core's hit test sees the
// configuration as modified by lower cores' evictions and fetches; a
// fault's victim may be any page that is neither in flight (a fetch slot
// of the pre-transition positions or a fault earlier in this step) nor
// the faulting page itself. Honest: evictions happen only on capacity
// overflow.
func (pr *prep) seqTransition(st *ftfSeqState, k int, forcing bool, emit func([]core.PageID, []int, int64)) {
	// In-flight pages carried over from previous steps (fetch slots).
	carriedInflight := make(map[core.PageID]bool, pr.p)
	for i := 0; i < pr.p; i++ {
		if st.x[i] < pr.ends[i] && !pr.atBoundary(st.x[i]) {
			carriedInflight[pr.pageAt(i, st.x[i])] = true
		}
	}
	nx := make([]int, pr.p)
	copy(nx, st.x)

	type frame struct {
		config   []core.PageID
		inflight map[core.PageID]bool
		faults   int64
	}
	var rec func(i int, f frame)
	rec = func(i int, f frame) {
		if i == pr.p {
			nxCopy := make([]int, pr.p)
			copy(nxCopy, nx)
			emit(f.config, nxCopy, f.faults)
			if forcing {
				// Voluntary evictions, equivalent to a sim.Ticker firing
				// at the start of the next step: drop any subset of the
				// pages not in flight at the successor positions.
				stillFetching := make(map[core.PageID]bool, pr.p)
				for i := 0; i < pr.p; i++ {
					if nxCopy[i] < pr.ends[i] && !pr.atBoundary(nxCopy[i]) {
						stillFetching[pr.pageAt(i, nxCopy[i])] = true
					}
				}
				var removable []int
				for idx, q := range f.config {
					if !stillFetching[q] {
						removable = append(removable, idx)
					}
				}
				var drop []int
				var rf func(start int)
				rf = func(start int) {
					for d := start; d < len(removable); d++ {
						drop = append(drop, removable[d])
						emit(removeIdx(f.config, drop), nxCopy, f.faults)
						rf(d + 1)
						drop = drop[:len(drop)-1]
					}
				}
				rf(0)
			}
			return
		}
		xi := st.x[i]
		if xi >= pr.ends[i] {
			nx[i] = xi
			rec(i+1, f)
			return
		}
		pg := pr.pageAt(i, xi)
		if !pr.atBoundary(xi) {
			nx[i] = xi + 1 // fetch in progress
			rec(i+1, f)
			return
		}
		if contains(f.config, pg) {
			// Hit (disjoint sequences: a page in config requested at a
			// boundary cannot be one of this step's in-flight fetches).
			nx[i] = xi + pr.step
			rec(i+1, f)
			nx[i] = xi
			return
		}
		// Fault.
		nx[i] = xi + 1
		base := insertSorted(f.config, pg)
		nf := f.faults + 1
		ninf := f.inflight
		addInflight := func() map[core.PageID]bool {
			m := make(map[core.PageID]bool, len(ninf)+1)
			maps.Copy(m, ninf)
			m[pg] = true
			return m
		}
		if len(base) <= k {
			rec(i+1, frame{config: base, inflight: addInflight(), faults: nf})
		} else {
			for vi, v := range base {
				if v == pg || f.inflight[v] {
					continue
				}
				rec(i+1, frame{config: removeIdx(base, []int{vi}), inflight: addInflight(), faults: nf})
			}
		}
		nx[i] = xi
	}
	rec(0, frame{config: st.config, inflight: carriedInflight, faults: st.faults})
}

// BruteFTFUnpinned computes the minimum total faults by exhaustive
// search under logical-order semantics: victims may include pages
// requested by other cores in the same timestep (they then miss), which
// the pinned searcher BruteFTF forbids. It cross-validates SolveFTFSeq.
func BruteFTFUnpinned(inst core.Instance) (int64, error) {
	bs, err := newBruteSearcher(inst, allVictims)
	if err != nil {
		return 0, err
	}
	bs.unpinned = true
	bs.step(newBState(bs.p))
	if bs.best == math.MaxInt64 {
		return 0, errNoSchedule
	}
	return bs.best, nil
}
