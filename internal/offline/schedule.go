package offline

import (
	"fmt"
	"maps"
	"math"

	"mcpaging/internal/cache"
	"mcpaging/internal/core"
	"mcpaging/internal/sim"
)

// Decision is one eviction decision of an offline schedule: when the
// given core faults on Page, evict Victim (core.NoPage = use a free
// cell). Decisions are ordered by (timestep, core) — exactly the order
// in which the simulator consults a strategy, so a schedule can be
// replayed verbatim.
type Decision struct {
	Core   int
	Page   core.PageID
	Victim core.PageID
}

// SolveFTFSeqSchedule computes the exact minimum total faults (like
// SolveFTFSeq) and additionally returns one optimal schedule as a
// decision list. Replaying the schedule through the simulator
// (ReplaySchedule) reproduces the optimum fault for fault — the
// end-to-end consistency proof between the dynamic program and the
// engine.
func SolveFTFSeqSchedule(inst core.Instance, opts Options) (FTFSolution, []Decision, error) {
	pr, err := newPrep(inst)
	if err != nil {
		return FTFSolution{}, nil, err
	}
	type node struct {
		config []core.PageID
		x      []int
		faults int64
		parent string
		psum   int
		step   []Decision // decisions of the transition that reached this node
	}
	maxSum := pr.maxPosSum()
	buckets := make([]map[string]*node, maxSum+1)
	add := func(sum int, n *node) {
		if buckets[sum] == nil {
			buckets[sum] = make(map[string]*node)
		}
		key := stateKey(n.config, n.x)
		if old, ok := buckets[sum][key]; ok {
			if n.faults < old.faults {
				*old = *n
			}
			return
		}
		buckets[sum][key] = n
	}
	add(0, &node{x: make([]int, pr.p), psum: -1})

	best := int64(math.MaxInt64)
	var bestNode *node
	states := 0
	limit := opts.maxStates()

	for sum := 0; sum <= maxSum; sum++ {
		for _, key := range sortedStateKeys(buckets[sum]) {
			st := buckets[sum][key]
			states++
			if states > limit {
				return FTFSolution{}, nil, fmt.Errorf("solve FTF seq schedule: %w (limit %d)", ErrStateLimit, limit)
			}
			if pr.done(st.x) {
				if st.faults < best {
					best = st.faults
					bestNode = st
				}
				continue
			}
			if st.faults >= best {
				continue
			}
			fst := &ftfSeqState{config: st.config, x: st.x, faults: st.faults}
			pr.seqTransitionTrace(fst, inst.P.K, func(nc []core.PageID, nx []int, nf int64, decs []Decision) {
				add(posSum(nx), &node{
					config: nc, x: nx, faults: nf,
					parent: key, psum: sum, step: decs,
				})
			})
		}
		// Unlike the plain solver, buckets must be kept for backtracking.
	}
	if bestNode == nil {
		return FTFSolution{}, nil, fmt.Errorf("solve FTF seq schedule: no feasible schedule")
	}
	// Walk parents back to the root, collecting decisions.
	var rev [][]Decision
	cur := bestNode
	for cur.psum >= 0 {
		rev = append(rev, cur.step)
		cur = buckets[cur.psum][cur.parent]
		if cur == nil {
			return FTFSolution{}, nil, fmt.Errorf("solve FTF seq schedule: broken parent chain")
		}
	}
	var sched []Decision
	for i := len(rev) - 1; i >= 0; i-- {
		sched = append(sched, rev[i]...)
	}
	return FTFSolution{Faults: best, States: states}, sched, nil
}

// seqTransitionTrace is seqTransition extended to report the decisions
// taken in the transition.
func (pr *prep) seqTransitionTrace(st *ftfSeqState, k int, emit func([]core.PageID, []int, int64, []Decision)) {
	carriedInflight := make(map[core.PageID]bool, pr.p)
	for i := 0; i < pr.p; i++ {
		if st.x[i] < pr.ends[i] && !pr.atBoundary(st.x[i]) {
			carriedInflight[pr.pageAt(i, st.x[i])] = true
		}
	}
	nx := make([]int, pr.p)
	copy(nx, st.x)

	type frame struct {
		config   []core.PageID
		inflight map[core.PageID]bool
		faults   int64
		decs     []Decision
	}
	var rec func(i int, f frame)
	rec = func(i int, f frame) {
		if i == pr.p {
			nxCopy := make([]int, pr.p)
			copy(nxCopy, nx)
			emit(f.config, nxCopy, f.faults, f.decs)
			return
		}
		xi := st.x[i]
		if xi >= pr.ends[i] {
			nx[i] = xi
			rec(i+1, f)
			return
		}
		pg := pr.pageAt(i, xi)
		if !pr.atBoundary(xi) {
			nx[i] = xi + 1
			rec(i+1, f)
			return
		}
		if contains(f.config, pg) {
			nx[i] = xi + pr.step
			rec(i+1, f)
			nx[i] = xi
			return
		}
		nx[i] = xi + 1
		base := insertSorted(f.config, pg)
		nf := f.faults + 1
		mkInflight := func() map[core.PageID]bool {
			m := make(map[core.PageID]bool, len(f.inflight)+1)
			maps.Copy(m, f.inflight)
			m[pg] = true
			return m
		}
		appendDec := func(v core.PageID) []Decision {
			nd := make([]Decision, len(f.decs), len(f.decs)+1)
			copy(nd, f.decs)
			return append(nd, Decision{Core: i, Page: pg, Victim: v})
		}
		if len(base) <= k {
			rec(i+1, frame{config: base, inflight: mkInflight(), faults: nf, decs: appendDec(core.NoPage)})
		} else {
			for vi, v := range base {
				if v == pg || f.inflight[v] {
					continue
				}
				rec(i+1, frame{config: removeIdx(base, []int{vi}), inflight: mkInflight(), faults: nf, decs: appendDec(v)})
			}
		}
		nx[i] = xi
	}
	rec(0, frame{config: st.config, inflight: carriedInflight, faults: st.faults})
}

// Replayer is a sim.Strategy that executes a precomputed decision list.
// It errors (through Err) if the run's fault pattern diverges from the
// schedule. Once the schedule is exhausted — which is expected for PIF
// witnesses, whose decisions only cover the prefix up to the checkpoint
// — the replayer falls back to LRU over the residency book-keeping it
// maintained during the replay, so the run completes cleanly.
type Replayer struct {
	sched []Decision
	pos   int
	err   error

	seq  int64
	last map[core.PageID]int64 // cached pages → last-use stamp
}

// NewReplayer wraps a schedule produced by SolveFTFSeqSchedule or
// WitnessPIF.
func NewReplayer(sched []Decision) *Replayer { return &Replayer{sched: sched} }

// Name implements sim.Strategy.
func (r *Replayer) Name() string { return "replay" }

// Init implements sim.Strategy.
func (r *Replayer) Init(core.Instance) error {
	r.pos = 0
	r.err = nil
	r.seq = 0
	r.last = make(map[core.PageID]int64)
	return nil
}

// Err reports a divergence between the schedule and the observed run.
func (r *Replayer) Err() error { return r.err }

// Consumed reports how many decisions were used.
func (r *Replayer) Consumed() int { return r.pos }

func (r *Replayer) touch(p core.PageID) {
	r.seq++
	r.last[p] = r.seq
}

// OnHit implements sim.Strategy.
func (r *Replayer) OnHit(p core.PageID, _ cache.Access) { r.touch(p) }

// OnJoin implements sim.Strategy.
func (r *Replayer) OnJoin(p core.PageID, _ cache.Access) { r.touch(p) }

// OnFault implements sim.Strategy.
func (r *Replayer) OnFault(p core.PageID, at cache.Access, v sim.View) core.PageID {
	var victim core.PageID = core.NoPage
	switch {
	case r.pos < len(r.sched):
		d := r.sched[r.pos]
		r.pos++
		if d.Core != at.Core || d.Page != p {
			r.err = fmt.Errorf("offline: replay divergence: schedule expects core %d page %d, run faulted core %d page %d",
				d.Core, d.Page, at.Core, p)
		}
		victim = d.Victim
	case v.Free() > 0:
		// Tail: free cell available.
	default:
		// Tail: evict the least recently used resident page.
		var best int64 = 1<<63 - 1
		//mcvet:ignore detmap min-reduction with explicit smallest-ID tie-break is order-independent
		for q, lastUse := range r.last {
			if q == p || !v.Resident(q) {
				continue
			}
			if lastUse < best || (lastUse == best && (victim == core.NoPage || q < victim)) {
				victim, best = q, lastUse
			}
		}
		if victim == core.NoPage {
			r.err = fmt.Errorf("offline: replay tail found no evictable page at t=%d", at.Time)
		}
	}
	if victim != core.NoPage {
		delete(r.last, victim)
	}
	r.touch(p)
	return victim
}
