package offline_test

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"mcpaging/internal/cache"
	"mcpaging/internal/core"
	"mcpaging/internal/mattson"
	"mcpaging/internal/offline"
	"mcpaging/internal/policy"
	"mcpaging/internal/sim"
)

func lru() cache.Factory { return func() cache.Policy { return cache.NewLRU() } }

func inst(k, tau int, seqs ...core.Sequence) core.Instance {
	return core.Instance{R: core.RequestSet(seqs), P: core.Params{K: k, Tau: tau}}
}

// tinyInstance draws a random small disjoint instance suitable for
// exhaustive search.
func tinyInstance(rng *rand.Rand) core.Instance {
	p := 1 + rng.Intn(2)
	k := p + 1 + rng.Intn(2)
	tau := rng.Intn(3)
	rs := make(core.RequestSet, p)
	for j := range rs {
		n := 1 + rng.Intn(5)
		s := make(core.Sequence, n)
		for i := range s {
			s[i] = core.PageID(10*j + rng.Intn(3))
		}
		rs[j] = s
	}
	return core.Instance{R: rs, P: core.Params{K: k, Tau: tau}}
}

func TestFTFSequentialMatchesBelady(t *testing.T) {
	// p=1, τ=0: the model is classical paging and the DP must agree with
	// Belady's algorithm.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(8)
		seq := make(core.Sequence, n)
		for i := range seq {
			seq[i] = core.PageID(rng.Intn(4))
		}
		k := 1 + rng.Intn(3)
		sol, err := offline.SolveFTF(inst(k, 0, seq), offline.Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if want := mattson.OPTMisses(seq, k); sol.Faults != want {
			t.Fatalf("trial %d seq=%v K=%d: DP=%d Belady=%d", trial, seq, k, sol.Faults, want)
		}
	}
}

func TestFTFSequentialWithTau(t *testing.T) {
	// p=1, τ>0: delays do not reorder a single sequence, so the optimum
	// is still Belady's miss count.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(6)
		seq := make(core.Sequence, n)
		for i := range seq {
			seq[i] = core.PageID(rng.Intn(4))
		}
		k, tau := 2, 1+rng.Intn(3)
		sol, err := offline.SolveFTF(inst(k, tau, seq), offline.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if want := mattson.OPTMisses(seq, k); sol.Faults != want {
			t.Fatalf("trial %d: DP=%d Belady=%d (τ=%d)", trial, sol.Faults, want, tau)
		}
	}
}

// TestFTFMatchesBruteForce is the central cross-check: Algorithm 1's
// minimum equals exhaustive search over honest schedules.
func TestFTFMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := tinyInstance(rng)
		sol, err := offline.SolveFTF(in, offline.Options{})
		if err != nil {
			return false
		}
		brute, err := offline.BruteFTF(in)
		if err != nil {
			return false
		}
		return sol.Faults == brute
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestTheorem4ForcingNeutralFTF: allowing voluntary evictions in the DP
// never lowers the FTF optimum (Theorem 4).
func TestTheorem4ForcingNeutralFTF(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := tinyInstance(rng)
		honest, err := offline.SolveFTF(in, offline.Options{})
		if err != nil {
			return false
		}
		forcing, err := offline.SolveFTF(in, offline.Options{AllowForcing: true})
		if err != nil {
			return false
		}
		return honest.Faults == forcing.Faults
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestTheorem5FITFChoice: restricting victims to the furthest-in-the-
// future page of some sequence preserves the optimum (Theorem 5).
func TestTheorem5FITFChoice(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := tinyInstance(rng)
		full, err := offline.BruteFTF(in)
		if err != nil {
			return false
		}
		fitf, err := offline.BruteFTFFITF(in)
		if err != nil {
			return false
		}
		return full == fitf
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestFTFLowerBoundsOnline: the offline optimum never exceeds what any
// online strategy achieves.
func TestFTFLowerBoundsOnline(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := tinyInstance(rng)
		sol, err := offline.SolveFTF(in, offline.Options{})
		if err != nil {
			return false
		}
		res, err := sim.Run(in, policy.NewShared(lru()), nil)
		if err != nil {
			return false
		}
		return sol.Faults <= res.TotalFaults()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFTFColdMissFloor(t *testing.T) {
	// The optimum is at least the number of distinct pages.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := tinyInstance(rng)
		sol, err := offline.SolveFTF(in, offline.Options{})
		if err != nil {
			return false
		}
		return sol.Faults >= int64(len(in.R.Universe()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFTFRejectsNonDisjoint(t *testing.T) {
	in := inst(2, 0, core.Sequence{1}, core.Sequence{1})
	if _, err := offline.SolveFTF(in, offline.Options{}); !errors.Is(err, sim.ErrNotDisjoint) {
		t.Fatalf("want ErrNotDisjoint, got %v", err)
	}
}

func TestFTFStateLimit(t *testing.T) {
	seq := make(core.Sequence, 30)
	for i := range seq {
		seq[i] = core.PageID(i % 7)
	}
	in := inst(4, 2, seq, append(core.Sequence{}, seq...))
	// Force disjointness.
	in.R[1] = make(core.Sequence, len(seq))
	for i := range seq {
		in.R[1][i] = seq[i] + 100
	}
	_, err := offline.SolveFTF(in, offline.Options{MaxStates: 500})
	if !errors.Is(err, offline.ErrStateLimit) {
		t.Fatalf("want ErrStateLimit, got %v", err)
	}
}

func TestFTFEmptyInstance(t *testing.T) {
	sol, err := offline.SolveFTF(inst(2, 1, core.Sequence{}, core.Sequence{}), offline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Faults != 0 {
		t.Fatalf("faults = %d, want 0", sol.Faults)
	}
}

// --- PIF ---

func TestPIFMatchesBruteForceHonest(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := tinyInstance(rng)
		p := in.R.NumCores()
		bounds := make([]int64, p)
		for i := range bounds {
			bounds[i] = int64(rng.Intn(len(in.R[i]) + 1))
		}
		maxT := int64(in.R.MaxLen() * (in.P.Tau + 1))
		pi := offline.PIFInstance{Inst: in, T: rng.Int63n(maxT + 2), Bounds: bounds}
		dp, _, err := offline.DecidePIF(pi, offline.Options{HonestPIF: true})
		if err != nil {
			return false
		}
		brute, err := offline.BrutePIF(pi)
		if err != nil {
			return false
		}
		return dp == brute
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestPIFForcingAtLeastHonest: the forcing search accepts whenever the
// honest search does.
func TestPIFForcingAtLeastHonest(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := tinyInstance(rng)
		p := in.R.NumCores()
		bounds := make([]int64, p)
		for i := range bounds {
			bounds[i] = int64(rng.Intn(len(in.R[i]) + 1))
		}
		maxT := int64(in.R.MaxLen() * (in.P.Tau + 1))
		pi := offline.PIFInstance{Inst: in, T: rng.Int63n(maxT + 2), Bounds: bounds}
		honest, _, err := offline.DecidePIF(pi, offline.Options{HonestPIF: true})
		if err != nil {
			return false
		}
		forcing, _, err := offline.DecidePIF(pi, offline.Options{})
		if err != nil {
			return false
		}
		return !honest || forcing
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestPIFMonotoneInBounds: relaxing a fault budget can only keep a yes.
func TestPIFMonotoneInBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := tinyInstance(rng)
		p := in.R.NumCores()
		bounds := make([]int64, p)
		for i := range bounds {
			bounds[i] = int64(rng.Intn(len(in.R[i]) + 1))
		}
		maxT := int64(in.R.MaxLen() * (in.P.Tau + 1))
		pi := offline.PIFInstance{Inst: in, T: rng.Int63n(maxT + 2), Bounds: bounds}
		yes, _, err := offline.DecidePIF(pi, offline.Options{})
		if err != nil {
			return false
		}
		if !yes {
			return true
		}
		relaxed := make([]int64, p)
		for i := range relaxed {
			relaxed[i] = bounds[i] + int64(rng.Intn(3))
		}
		pi.Bounds = relaxed
		yes2, _, err := offline.DecidePIF(pi, offline.Options{})
		return err == nil && yes2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPIFTrivialCases(t *testing.T) {
	in := inst(2, 1, core.Sequence{1, 2}, core.Sequence{10})
	// T=0: trivially yes.
	yes, _, err := offline.DecidePIF(offline.PIFInstance{Inst: in, T: 0, Bounds: []int64{0, 0}}, offline.Options{})
	if err != nil || !yes {
		t.Fatalf("T=0 should be yes (err=%v)", err)
	}
	// Generous bounds: yes.
	yes, _, err = offline.DecidePIF(offline.PIFInstance{Inst: in, T: 100, Bounds: []int64{10, 10}}, offline.Options{})
	if err != nil || !yes {
		t.Fatalf("generous bounds should be yes (err=%v)", err)
	}
	// Zero bounds but compulsory faults before T: no.
	yes, _, err = offline.DecidePIF(offline.PIFInstance{Inst: in, T: 100, Bounds: []int64{0, 0}}, offline.Options{})
	if err != nil || yes {
		t.Fatalf("zero bounds should be no (err=%v)", err)
	}
}

func TestPIFValidation(t *testing.T) {
	in := inst(2, 0, core.Sequence{1}, core.Sequence{2})
	cases := []offline.PIFInstance{
		{Inst: in, T: -1, Bounds: []int64{1, 1}},
		{Inst: in, T: 1, Bounds: []int64{1}},
		{Inst: in, T: 1, Bounds: []int64{1, -1}},
	}
	for i, pi := range cases {
		if _, _, err := offline.DecidePIF(pi, offline.Options{}); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

// TestPinnedEvictionNeutral verifies the modelling choice inherited from
// Algorithm 1's successor rule: forbidding eviction of pages requested in
// the same timestep (pinned pages) does not change the FTF optimum. The
// check compares the DP (pinned rule) with an unrestricted bound obtained
// by letting the DP force evictions, which strictly contains every
// same-step-eviction schedule's fault pattern.
func TestPinnedEvictionNeutral(t *testing.T) {
	// Same-step eviction of a page another core is about to request has
	// the effect of forcing that core to fault; with AllowForcing the DP
	// covers the equivalent behaviour. Equality of the two optima was
	// already asserted by TestTheorem4ForcingNeutralFTF; here we pin down
	// a targeted scenario where two cores contend at the same timestep.
	in := inst(2, 1,
		core.Sequence{1, 2, 1, 2},
		core.Sequence{10, 11, 10, 11},
	)
	honest, err := offline.SolveFTF(in, offline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	forcing, err := offline.SolveFTF(in, offline.Options{AllowForcing: true})
	if err != nil {
		t.Fatal(err)
	}
	if honest.Faults != forcing.Faults {
		t.Fatalf("honest=%d forcing=%d", honest.Faults, forcing.Faults)
	}
}

// TestFTFAlignmentAdvantage reproduces the paper's key qualitative point:
// an offline schedule can beat shared LRU by sacrificing one sequence to
// protect the others (Lemma 4's construction in miniature).
func TestFTFAlignmentAdvantage(t *testing.T) {
	// Two cores, each cycling through K/2+1 pages: LRU thrashes on both;
	// the optimum parks one sequence.
	mk := func(base core.PageID, reps int) core.Sequence {
		var s core.Sequence
		for r := 0; r < reps; r++ {
			for i := core.PageID(0); i < 3; i++ {
				s = append(s, base+i)
			}
		}
		return s
	}
	in := inst(4, 1, mk(0, 3), mk(100, 3))
	sol, err := offline.SolveFTF(in, offline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(in, policy.NewShared(lru()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalFaults() != 18 {
		t.Fatalf("shared LRU faults = %d, want 18 (thrash)", res.TotalFaults())
	}
	if sol.Faults >= res.TotalFaults() {
		t.Fatalf("OPT %d should beat LRU %d", sol.Faults, res.TotalFaults())
	}
}

// TestFTFThreeCores extends the central cross-check to p=3 with shorter
// sequences: the DP must still match exhaustive search, and the
// Theorem 5 FITF restriction must still be lossless.
func TestFTFThreeCores(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 25; trial++ {
		rs := make(core.RequestSet, 3)
		for j := range rs {
			n := 1 + rng.Intn(3)
			s := make(core.Sequence, n)
			for i := range s {
				s[i] = core.PageID(10*j + rng.Intn(2))
			}
			rs[j] = s
		}
		in := core.Instance{R: rs, P: core.Params{K: 4, Tau: rng.Intn(2)}}
		sol, err := offline.SolveFTF(in, offline.Options{})
		if err != nil {
			t.Fatal(err)
		}
		brute, err := offline.BruteFTF(in)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Faults != brute {
			t.Fatalf("trial %d: DP %d != brute %d (R=%v)", trial, sol.Faults, brute, rs)
		}
		fitf, err := offline.BruteFTFFITF(in)
		if err != nil {
			t.Fatal(err)
		}
		if fitf != brute {
			t.Fatalf("trial %d: FITF-choice %d != brute %d (R=%v)", trial, fitf, brute, rs)
		}
		seq, err := offline.SolveFTFSeq(in, offline.Options{})
		if err != nil {
			t.Fatal(err)
		}
		unpinned, err := offline.BruteFTFUnpinned(in)
		if err != nil {
			t.Fatal(err)
		}
		if seq.Faults != unpinned {
			t.Fatalf("trial %d: seq DP %d != unpinned brute %d (R=%v)", trial, seq.Faults, unpinned, rs)
		}
	}
}

// TestParetoFrontier checks the two-core fault-budget trade-off curve:
// every reported point is feasible and Pareto-minimal, the curve is
// monotone, and its min-max corner agrees with MinUniformBound.
func TestParetoFrontier(t *testing.T) {
	in := core.Instance{
		R: core.RequestSet{
			{0, 1, 0, 1, 0, 1},
			{100, 101, 102, 100, 101, 102},
		},
		P: core.Params{K: 4, Tau: 1},
	}
	const T = 14
	frontier, err := offline.ParetoFrontier(in, T, offline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(frontier) < 2 {
		t.Fatalf("frontier too small: %v", frontier)
	}
	check := func(b0, b1 int64) bool {
		ok, _, err := offline.DecidePIF(offline.PIFInstance{
			Inst: in, T: T, Bounds: []int64{b0, b1},
		}, offline.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return ok
	}
	bestUniform := int64(1 << 30)
	for i, pt := range frontier {
		if !check(pt[0], pt[1]) {
			t.Fatalf("frontier point %v infeasible", pt)
		}
		if pt[0] > 0 && check(pt[0]-1, pt[1]) {
			t.Fatalf("point %v not minimal in b0", pt)
		}
		if pt[1] > 0 && check(pt[0], pt[1]-1) {
			t.Fatalf("point %v not minimal in b1", pt)
		}
		if i > 0 && (pt[0] <= frontier[i-1][0] || pt[1] >= frontier[i-1][1]) {
			t.Fatalf("frontier not monotone: %v", frontier)
		}
		mx := pt[0]
		if pt[1] > mx {
			mx = pt[1]
		}
		if mx < bestUniform {
			bestUniform = mx
		}
	}
	uniform, err := offline.MinUniformBound(in, T, offline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if uniform != bestUniform {
		t.Fatalf("min uniform bound %d != frontier min-max corner %d (frontier %v)",
			uniform, bestUniform, frontier)
	}
}

func TestParetoFrontierRejectsWrongArity(t *testing.T) {
	in := core.Instance{R: core.RequestSet{{1}}, P: core.Params{K: 2, Tau: 0}}
	if _, err := offline.ParetoFrontier(in, 5, offline.Options{}); err == nil {
		t.Fatal("p != 2 should be rejected")
	}
}

// TestAblationFlagsPreserveResults: the pruning ablation switches change
// cost only, never answers.
func TestAblationFlagsPreserveResults(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		in := tinyInstance(rng)
		a, err := offline.SolveFTF(in, offline.Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := offline.SolveFTF(in, offline.Options{NoBranchPruning: true})
		if err != nil {
			t.Fatal(err)
		}
		if a.Faults != b.Faults {
			t.Fatalf("branch pruning changed the optimum: %d vs %d", a.Faults, b.Faults)
		}
		bounds := make([]int64, in.R.NumCores())
		for i := range bounds {
			bounds[i] = int64(rng.Intn(len(in.R[i]) + 1))
		}
		pi := offline.PIFInstance{Inst: in, T: int64(1 + rng.Intn(10)), Bounds: bounds}
		x, _, err := offline.DecidePIF(pi, offline.Options{})
		if err != nil {
			t.Fatal(err)
		}
		y, _, err := offline.DecidePIF(pi, offline.Options{NoPairPruning: true})
		if err != nil {
			t.Fatal(err)
		}
		if x != y {
			t.Fatalf("pair pruning changed the answer: %v vs %v", x, y)
		}
	}
}
