package offline

import (
	"fmt"
	"sort"

	"mcpaging/internal/core"
)

// PIFInstance is an input to the PARTIAL-INDIVIDUAL-FAULTS decision
// problem: can Inst be served so that at time T every sequence i has
// faulted at most Bounds[i] times?
type PIFInstance struct {
	Inst core.Instance
	// T is the checkpoint time (the paper's t).
	T int64
	// Bounds is the per-sequence fault budget b.
	Bounds []int64
}

// Validate checks structural sanity of the PIF instance.
func (pi PIFInstance) Validate() error {
	if err := pi.Inst.Validate(); err != nil {
		return err
	}
	if pi.T < 0 {
		return fmt.Errorf("offline: negative checkpoint time %d", pi.T)
	}
	if len(pi.Bounds) != pi.Inst.R.NumCores() {
		return fmt.Errorf("offline: %d bounds for %d cores", len(pi.Bounds), pi.Inst.R.NumCores())
	}
	for i, b := range pi.Bounds {
		if b < 0 {
			return fmt.Errorf("offline: negative bound %d for core %d", b, i)
		}
	}
	return nil
}

// PIFStats reports the work done by the PIF dynamic program.
type PIFStats struct {
	States int // distinct (configuration, position) states touched
	Pairs  int // (fault-vector, time) pairs stored across all states
}

// pifPair is one feasible serving prefix: per-core fault counts and the
// elapsed time at which the owning state was reached.
type pifPair struct {
	f []int32
	t int32
}

// pifState is a DP node holding the set of non-dominated pairs.
type pifState struct {
	config []core.PageID
	x      []int
	pairs  []pifPair
}

// addPair inserts a pair unless dominated; it prunes pairs the new one
// dominates. Dominance requires equal time: from the same state at the
// same elapsed time, componentwise fewer faults is never worse, but pairs
// at different times are incomparable (an earlier arrival serves more
// requests before the checkpoint and may fault more by then).
func (st *pifState) addPair(np pifPair, noPrune bool) bool {
	if noPrune {
		// Ablation mode: exact-duplicate detection only.
		for _, q := range st.pairs {
			if q.t == np.t && allLE(q.f, np.f) && allLE(np.f, q.f) {
				return false
			}
		}
		st.pairs = append(st.pairs, np)
		return true
	}
	keep := st.pairs[:0]
	dominated := false
	for _, q := range st.pairs {
		if q.t == np.t {
			if allLE(q.f, np.f) {
				dominated = true
			}
			if !dominated && allLE(np.f, q.f) {
				continue // q is dominated by np; drop it
			}
		}
		keep = append(keep, q)
	}
	st.pairs = keep
	if dominated {
		return false
	}
	st.pairs = append(st.pairs, np)
	return true
}

func allLE(a, b []int32) bool {
	for i := range a {
		if a[i] > b[i] {
			return false
		}
	}
	return true
}

// MinUniformBound returns the smallest uniform fault budget b such that
// the instance can be served with every sequence at most b faults at
// time T (binary search over DecidePIF). It is the offline "fairest
// possible" benchmark the FairShare strategy is measured against in
// experiment E16.
func MinUniformBound(inst core.Instance, t int64, opts Options) (int64, error) {
	if err := inst.Validate(); err != nil {
		return 0, err
	}
	p := inst.R.NumCores()
	mk := func(b int64) PIFInstance {
		bounds := make([]int64, p)
		for i := range bounds {
			bounds[i] = b
		}
		return PIFInstance{Inst: inst, T: t, Bounds: bounds}
	}
	hi := int64(inst.R.MaxLen())
	if t < hi {
		hi = t
	}
	ok, _, err := DecidePIF(mk(hi), opts)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("offline: no uniform bound feasible up to %d", hi)
	}
	lo := int64(0)
	for lo < hi {
		mid := (lo + hi) / 2
		ok, _, err := DecidePIF(mk(mid), opts)
		if err != nil {
			return 0, err
		}
		if ok {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, nil
}

// ParetoFrontier computes, for a two-core instance, every
// Pareto-minimal feasible fault-budget pair (b0, b1) at time T: the
// exact trade-off curve between the cores' fault counts that Algorithm 2
// certifies. Points are returned in increasing b0. The frontier is the
// offline ground truth the fairness strategies of experiment E21 are
// plotted against.
func ParetoFrontier(inst core.Instance, t int64, opts Options) ([][2]int64, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if inst.R.NumCores() != 2 {
		return nil, fmt.Errorf("offline: ParetoFrontier supports exactly 2 cores, got %d", inst.R.NumCores())
	}
	maxB := int64(inst.R.MaxLen())
	if t < maxB {
		maxB = t
	}
	feasible := func(b0, b1 int64) (bool, error) {
		ok, _, err := DecidePIF(PIFInstance{Inst: inst, T: t, Bounds: []int64{b0, b1}}, opts)
		return ok, err
	}
	// minB1(b0) is non-increasing in b0; walk b0 upward, shrinking b1.
	var frontier [][2]int64
	b1 := maxB
	for b0 := int64(0); b0 <= maxB; b0++ {
		ok, err := feasible(b0, b1)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue // even (b0, maxB) infeasible; larger b0 needed
		}
		for b1 > 0 {
			ok, err := feasible(b0, b1-1)
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			b1--
		}
		if len(frontier) == 0 || frontier[len(frontier)-1][1] > b1 {
			frontier = append(frontier, [2]int64{b0, b1})
		}
		if b1 == 0 {
			break // cannot improve core 1 further; all larger b0 dominated
		}
	}
	if len(frontier) == 0 {
		return nil, fmt.Errorf("offline: no feasible budget pair up to (%d,%d)", maxB, maxB)
	}
	return frontier, nil
}

// DecidePIF runs the paper's Algorithm 2 (Theorem 7): it returns true iff
// the instance can be served so that at time T every sequence is within
// its fault bound. The request set must be disjoint.
//
// Voluntary evictions ("forcing") are allowed by default, matching the
// paper's successor rule — for PIF, unlike FTF, forcing can genuinely
// help, because a forced fault slows a sequence down and pushes its
// remaining requests past the checkpoint. Set Options.HonestPIF to
// restrict the search to honest schedules.
func DecidePIF(pi PIFInstance, opts Options) (bool, PIFStats, error) {
	var stats PIFStats
	if err := pi.Validate(); err != nil {
		return false, stats, err
	}
	pr, err := newPrep(pi.Inst)
	if err != nil {
		return false, stats, err
	}
	if pi.T == 0 {
		return true, stats, nil // no time has passed; zero faults everywhere
	}
	maxSum := pr.maxPosSum()
	buckets := make([]map[string]*pifState, maxSum+1)
	add := func(sum int, config []core.PageID, x []int, p pifPair) {
		if buckets[sum] == nil {
			buckets[sum] = make(map[string]*pifState)
		}
		key := stateKey(config, x)
		st, ok := buckets[sum][key]
		if !ok {
			st = &pifState{config: config, x: x}
			buckets[sum][key] = st
		}
		if st.addPair(p, opts.NoPairPruning) {
			stats.Pairs++
		}
	}

	add(0, nil, make([]int, pr.p), pifPair{f: make([]int32, pr.p), t: 0})
	limit := opts.maxStates()
	forcing := !opts.HonestPIF

	for sum := 0; sum <= maxSum; sum++ {
		// Iterate states in sorted key order so the search (and its
		// reported effort) is deterministic: the early accept below can
		// fire mid-bucket.
		keys := make([]string, 0, len(buckets[sum]))
		for k := range buckets[sum] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, key := range keys {
			st := buckets[sum][key]
			stats.States++
			if stats.States > limit {
				return false, stats, fmt.Errorf("decide PIF: %w (limit %d)", ErrStateLimit, limit)
			}
			if pr.done(st.x) {
				// All sequences finished within their bounds before the
				// checkpoint: no further faults can accrue.
				if len(st.pairs) > 0 {
					return true, stats, nil
				}
				continue
			}
			tr := pr.advance(st.config, st.x)
			// Update every surviving pair.
			var nps []pifPair
			for _, pair := range st.pairs {
				nf := make([]int32, pr.p)
				copy(nf, pair.f)
				ok := true
				for _, c := range tr.faults {
					nf[c]++
					if int64(nf[c]) > pi.Bounds[c] {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				nt := pair.t + 1
				if int64(nt) >= pi.T {
					// Reached the checkpoint within bounds.
					return true, stats, nil
				}
				nps = append(nps, pifPair{f: nf, t: nt})
			}
			if len(nps) == 0 {
				continue
			}
			if pr.done(tr.nx) {
				// The successor finishes all sequences within bounds.
				return true, stats, nil
			}
			nsum := posSum(tr.nx)
			pr.successors(st.config, tr, pi.Inst.P.K, forcing, func(nc []core.PageID) {
				for _, np := range nps {
					add(nsum, nc, tr.nx, np)
				}
			})
		}
		buckets[sum] = nil
	}
	return false, stats, nil
}
