package offline

import (
	"maps"
	"math"

	"mcpaging/internal/core"
)

// This file implements exhaustive reference solvers that mirror the
// simulator's timing rules event by event and branch over eviction
// choices. They are exponential in the number of faults and exist to
// cross-validate the dynamic programs (and each other) on small
// instances, and to verify Theorem 5: restricting victims to the
// furthest-in-the-future page of *some* sequence preserves optimality.
//
// Victim candidates exclude "pinned" pages: pages requested by any core
// in the current timestep and pages whose fetch is in flight. This is the
// successor rule of Algorithms 1 and 2 (C′ ⊇ R(x)); experiments confirm
// it does not change the optimum (see TestPinnedEvictionNeutral).

// bstate is the exhaustive engine's mutable state.
type bstate struct {
	idx    []int
	next   []int64
	ready  map[core.PageID]int64 // cached pages → fetch-completion time
	faults []int64
}

func newBState(p int) *bstate {
	return &bstate{
		idx:    make([]int, p),
		next:   make([]int64, p),
		ready:  make(map[core.PageID]int64),
		faults: make([]int64, p),
	}
}

func (s *bstate) clone() *bstate {
	c := &bstate{
		idx:    append([]int(nil), s.idx...),
		next:   append([]int64(nil), s.next...),
		ready:  make(map[core.PageID]int64, len(s.ready)),
		faults: append([]int64(nil), s.faults...),
	}
	maps.Copy(c.ready, s.ready)
	return c
}

func (s *bstate) total() int64 {
	var t int64
	for _, f := range s.faults {
		t += f
	}
	return t
}

// victimMode selects the candidate set branched over at each fault.
type victimMode int

const (
	// allVictims branches over every evictable page (the full honest
	// search space).
	allVictims victimMode = iota
	// fitfVictims branches only over, per sequence, the evictable page
	// of that sequence whose next request is furthest in the future —
	// the Theorem 5 restriction.
	fitfVictims
)

// bruteSearcher carries the immutable context of one search.
type bruteSearcher struct {
	inst core.Instance
	p    int
	tau  int64
	mode victimMode
	// unpinned lifts the same-step pinning rule: victims may include
	// pages requested by other cores in the current timestep
	// (logical-order semantics; see ftfseq.go).
	unpinned bool
	owner    map[core.PageID]int
	// occ[p] = sorted occurrence indices of page p in its owning core.
	occ map[core.PageID][]int

	best int64

	// PIF mode (checkT true): succeed as soon as time reaches T with all
	// bounds respected.
	checkT bool
	T      int64
	bounds []int64
	found  bool

	// Witness recording: when enabled, the decision path of the first
	// accepted schedule (or the fault-optimal one in FTF mode) is kept.
	record  bool
	path    []Decision
	witness []Decision
}

func newBruteSearcher(inst core.Instance, mode victimMode) (*bruteSearcher, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if !inst.R.Disjoint() {
		return nil, errNotDisjoint()
	}
	bs := &bruteSearcher{
		inst:  inst,
		p:     inst.R.NumCores(),
		tau:   int64(inst.P.Tau),
		mode:  mode,
		owner: inst.R.Owner(),
		occ:   make(map[core.PageID][]int),
		best:  math.MaxInt64,
	}
	for _, seq := range inst.R {
		for i, pg := range seq {
			bs.occ[pg] = append(bs.occ[pg], i)
		}
	}
	return bs, nil
}

func errNotDisjoint() error {
	// Local alias avoids importing sim just for the sentinel; the DP
	// solvers return sim.ErrNotDisjoint via newPrep, and callers that
	// care compare messages.
	return errNotDisjointSentinel
}

// nextUseOf returns the next occurrence index of page pg in its owning
// sequence at or after that core's current position, or MaxInt64.
func (bs *bruteSearcher) nextUseOf(s *bstate, pg core.PageID) int64 {
	c := bs.owner[pg]
	for _, i := range bs.occ[pg] {
		if i >= s.idx[c] {
			return int64(i)
		}
	}
	return math.MaxInt64
}

// step finds the next service time and runs the per-core service loop.
func (bs *bruteSearcher) step(s *bstate) {
	if bs.found {
		return
	}
	t := int64(math.MaxInt64)
	for c := 0; c < bs.p; c++ {
		if s.idx[c] < len(bs.inst.R[c]) && s.next[c] < t {
			t = s.next[c]
		}
	}
	if t == int64(math.MaxInt64) {
		// All sequences served.
		if bs.checkT {
			bs.found = true
			bs.keepWitness()
		} else if s.total() < bs.best {
			bs.best = s.total()
			bs.keepWitness()
		}
		return
	}
	if bs.checkT && t >= bs.T {
		// The checkpoint passed with every bound respected.
		bs.found = true
		bs.keepWitness()
		return
	}
	// Pinned pages this timestep: every page requested at time t.
	pinned := make(map[core.PageID]bool, bs.p)
	for c := 0; c < bs.p; c++ {
		if s.idx[c] < len(bs.inst.R[c]) && s.next[c] == t {
			pinned[bs.inst.R[c][s.idx[c]]] = true
		}
	}
	bs.serve(s, t, 0, pinned)
}

// serve handles cores startC.. at time t, branching at faults.
func (bs *bruteSearcher) serve(s *bstate, t int64, startC int, pinned map[core.PageID]bool) {
	if bs.found {
		return
	}
	if !bs.checkT && s.total() >= bs.best {
		return
	}
	for c := startC; c < bs.p; c++ {
		if s.idx[c] >= len(bs.inst.R[c]) || s.next[c] != t {
			continue
		}
		pg := bs.inst.R[c][s.idx[c]]
		if r, ok := s.ready[pg]; ok && r <= t {
			// Hit.
			s.idx[c]++
			s.next[c] = t + 1
			continue
		}
		// Fault (the disjoint assumption rules out in-flight joins).
		s.faults[c]++
		if bs.checkT && s.faults[c] > bs.bounds[c] {
			return // bound already blown before the checkpoint
		}
		s.idx[c]++
		s.next[c] = t + bs.tau + 1
		if len(s.ready) < bs.inst.P.K {
			s.ready[pg] = t + bs.tau + 1
			if bs.record {
				bs.path = append(bs.path, Decision{Core: c, Page: pg, Victim: core.NoPage})
			}
			continue
		}
		// Branch over victims.
		for _, v := range bs.victims(s, t, pinned) {
			ns := s.clone()
			delete(ns.ready, v)
			ns.ready[pg] = t + bs.tau + 1
			plen := len(bs.path)
			if bs.record {
				bs.path = append(bs.path, Decision{Core: c, Page: pg, Victim: v})
			}
			bs.serve(ns, t, c+1, pinned)
			if bs.record {
				bs.path = bs.path[:plen]
			}
			if bs.found {
				return
			}
		}
		return // all continuations explored in branches
	}
	bs.step(s)
}

// victims returns the candidate eviction set at time t.
func (bs *bruteSearcher) victims(s *bstate, t int64, pinned map[core.PageID]bool) []core.PageID {
	var resident []core.PageID
	for pg, r := range s.ready {
		if r <= t && (bs.unpinned || !pinned[pg]) {
			resident = append(resident, pg)
		}
	}
	switch bs.mode {
	case fitfVictims:
		// Per owning sequence, keep only the furthest-in-the-future page.
		bestOf := make(map[int]core.PageID)
		bestNU := make(map[int]int64)
		for _, pg := range resident {
			o := bs.owner[pg]
			nu := bs.nextUseOf(s, pg)
			cur, ok := bestOf[o]
			if !ok || nu > bestNU[o] || (nu == bestNU[o] && pg < cur) {
				bestOf[o], bestNU[o] = pg, nu
			}
		}
		out := make([]core.PageID, 0, len(bestOf))
		for o := 0; o < bs.p; o++ {
			if pg, ok := bestOf[o]; ok {
				out = append(out, pg)
			}
		}
		return out
	default:
		sortPages(resident)
		return resident
	}
}

func sortPages(ps []core.PageID) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j] < ps[j-1]; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

// BruteFTF computes the minimum total faults by exhaustive search over
// all honest eviction schedules. Exponential; small instances only.
func BruteFTF(inst core.Instance) (int64, error) {
	bs, err := newBruteSearcher(inst, allVictims)
	if err != nil {
		return 0, err
	}
	bs.step(newBState(bs.p))
	if bs.best == math.MaxInt64 {
		return 0, errNoSchedule
	}
	return bs.best, nil
}

// BruteFTFFITF computes the minimum total faults over schedules that, on
// every fault, evict the furthest-in-the-future page of some sequence —
// the restricted family Theorem 5 proves contains an optimal schedule.
func BruteFTFFITF(inst core.Instance) (int64, error) {
	bs, err := newBruteSearcher(inst, fitfVictims)
	if err != nil {
		return 0, err
	}
	bs.step(newBState(bs.p))
	if bs.best == math.MaxInt64 {
		return 0, errNoSchedule
	}
	return bs.best, nil
}

// keepWitness snapshots the current decision path as the accepted
// schedule.
func (bs *bruteSearcher) keepWitness() {
	if !bs.record {
		return
	}
	bs.witness = append(bs.witness[:0], bs.path...)
}

// WitnessPIF searches honest schedules for one that meets the PIF
// bounds and returns its decision list, replayable through the
// simulator (see Replayer; count faults before pi.T to check the
// bounds). ok=false means no *honest* schedule exists — DecidePIF may
// still answer yes via a forcing schedule, which the replayer cannot
// express.
func WitnessPIF(pi PIFInstance) ([]Decision, bool, error) {
	if err := pi.Validate(); err != nil {
		return nil, false, err
	}
	bs, err := newBruteSearcher(pi.Inst, allVictims)
	if err != nil {
		return nil, false, err
	}
	if pi.T == 0 {
		return nil, true, nil
	}
	bs.checkT = true
	bs.T = pi.T
	bs.bounds = pi.Bounds
	bs.record = true
	bs.step(newBState(bs.p))
	if !bs.found {
		return nil, false, nil
	}
	return append([]Decision(nil), bs.witness...), true, nil
}

// BrutePIF decides PARTIAL-INDIVIDUAL-FAULTS by exhaustive search over
// honest schedules. Note that DecidePIF additionally searches forcing
// schedules by default; compare against DecidePIF with Options.HonestPIF.
func BrutePIF(pi PIFInstance) (bool, error) {
	if err := pi.Validate(); err != nil {
		return false, err
	}
	bs, err := newBruteSearcher(pi.Inst, allVictims)
	if err != nil {
		return false, err
	}
	if pi.T == 0 {
		return true, nil
	}
	bs.checkT = true
	bs.T = pi.T
	bs.bounds = pi.Bounds
	bs.step(newBState(bs.p))
	return bs.found, nil
}
