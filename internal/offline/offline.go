// Package offline implements the paper's offline algorithms for multicore
// paging:
//
//   - Algorithm 1 (Theorem 6): a dynamic program computing the minimum
//     total number of faults (FINAL-TOTAL-FAULTS), polynomial in the
//     sequence lengths and exponential in p and K.
//   - Algorithm 2 (Theorem 7): a dynamic program deciding
//     PARTIAL-INDIVIDUAL-FAULTS — can the request set be served so that
//     at time T each sequence has faulted at most b_i times?
//   - Exhaustive reference solvers (honest eviction search and the
//     Theorem 5 FITF-per-sequence search) used to cross-validate the DPs
//     on small instances.
//
// # State encoding
//
// Following the paper, each page of sequence i owns τ+1 consecutive index
// slots: a request slot followed by τ fetch slots. Position x_i ∈
// [0, n_i(τ+1)] walks these slots; x_i at a multiple of τ+1 is "at a
// request boundary". A hit advances x_i by τ+1 in one transition (one
// timestep); a fault crawls one slot per timestep, taking τ+1 timesteps
// end to end — exactly the simulator's timing.
//
// One DP transition advances every unfinished sequence simultaneously and
// corresponds to one timestep. The successor configuration C′ must
// satisfy R(x) ⊆ C′ ⊆ C ∪ R(x): it keeps every page currently pointed at
// (requested or in flight — the paper's rule that fetching pages cannot
// be evicted) and may otherwise only evict. With AllowForcing, C′ may
// additionally drop non-pinned pages beyond what capacity requires,
// modelling the "forcing" algorithms of Theorem 4.
//
// All solvers in this package require disjoint request sets, matching the
// scope of the paper's offline theorems.
package offline

import (
	"encoding/binary"
	"fmt"
	"sort"

	"mcpaging/internal/core"
	"mcpaging/internal/sim"
)

// Options tunes the DP solvers.
type Options struct {
	// AllowForcing lets the FTF dynamic program evict more pages than
	// capacity requires (voluntary evictions). Theorem 4 proves this
	// never helps for FTF; the flag exists so experiment E12 can verify
	// that empirically.
	AllowForcing bool
	// HonestPIF restricts the PIF dynamic program to honest schedules
	// (no voluntary evictions). By default PIF searches forcing
	// schedules too, which the paper's successor rule permits and which
	// can genuinely change the answer: a forced fault delays a sequence
	// past the checkpoint.
	HonestPIF bool
	// MaxStates aborts the solve when the number of distinct DP states
	// exceeds the limit (0 = default of 4,000,000). The DPs are
	// exponential in K and p; the limit turns an accidental large
	// instance into an error instead of an OOM.
	MaxStates int
	// NoPairPruning disables Algorithm 2's dominance pruning of
	// (fault-vector, time) pairs. Results are identical; the flag exists
	// for the ablation benchmark quantifying what the pruning saves.
	NoPairPruning bool
	// NoBranchPruning disables Algorithm 1's best-so-far cutoff.
	// Results are identical; ablation benchmark only.
	NoBranchPruning bool
}

const defaultMaxStates = 4_000_000

func (o Options) maxStates() int {
	if o.MaxStates > 0 {
		return o.MaxStates
	}
	return defaultMaxStates
}

// prep holds the per-instance precomputation shared by the solvers.
type prep struct {
	inst core.Instance
	p    int
	tau  int
	step int   // τ+1
	ends []int // ends[i] = n_i * (τ+1): the finished position
}

func newPrep(inst core.Instance) (*prep, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if !inst.R.Disjoint() {
		return nil, sim.ErrNotDisjoint
	}
	pr := &prep{
		inst: inst,
		p:    inst.R.NumCores(),
		tau:  inst.P.Tau,
		step: inst.P.Tau + 1,
		ends: make([]int, inst.R.NumCores()),
	}
	for i, s := range inst.R {
		pr.ends[i] = len(s) * pr.step
	}
	return pr, nil
}

// atBoundary reports whether position x is at a request slot.
func (pr *prep) atBoundary(x int) bool { return x%pr.step == 0 }

// pageAt returns the page sequence i points at from position x (the
// requested page at a boundary, or the page being fetched inside a fetch
// slot). x must be < ends[i].
func (pr *prep) pageAt(i, x int) core.PageID {
	return pr.inst.R[i][x/pr.step]
}

// done reports whether all positions are final.
func (pr *prep) done(x []int) bool {
	for i, xi := range x {
		if xi < pr.ends[i] {
			return false
		}
	}
	return true
}

// posSum is the DP's topological rank: transitions strictly increase it.
func posSum(x []int) int {
	s := 0
	for _, xi := range x {
		s += xi
	}
	return s
}

// maxPosSum returns the largest possible rank.
func (pr *prep) maxPosSum() int {
	s := 0
	for _, e := range pr.ends {
		s += e
	}
	return s
}

// stateKey serialises (config, positions) into a map key. The config must
// be sorted.
func stateKey(config []core.PageID, x []int) string {
	buf := make([]byte, 0, 4*len(config)+4*len(x)+1)
	var tmp [4]byte
	for _, p := range config {
		binary.LittleEndian.PutUint32(tmp[:], uint32(p))
		buf = append(buf, tmp[:]...)
	}
	buf = append(buf, 0xFF) // separator
	for _, xi := range x {
		binary.LittleEndian.PutUint32(tmp[:], uint32(xi))
		buf = append(buf, tmp[:]...)
	}
	return string(buf)
}

// contains reports whether sorted config holds page q.
func contains(config []core.PageID, q core.PageID) bool {
	lo, hi := 0, len(config)
	for lo < hi {
		mid := (lo + hi) / 2
		if config[mid] < q {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(config) && config[lo] == q
}

// insertSorted returns config with q inserted in order (no-op if present).
func insertSorted(config []core.PageID, q core.PageID) []core.PageID {
	lo, hi := 0, len(config)
	for lo < hi {
		mid := (lo + hi) / 2
		if config[mid] < q {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(config) && config[lo] == q {
		return config
	}
	out := make([]core.PageID, 0, len(config)+1)
	out = append(out, config[:lo]...)
	out = append(out, q)
	out = append(out, config[lo:]...)
	return out
}

// removeIdx returns config minus the pages at the given indices.
func removeIdx(config []core.PageID, drop []int) []core.PageID {
	if len(drop) == 0 {
		return config
	}
	mark := make(map[int]bool, len(drop))
	for _, d := range drop {
		mark[d] = true
	}
	out := make([]core.PageID, 0, len(config)-len(drop))
	for i, p := range config {
		if !mark[i] {
			out = append(out, p)
		}
	}
	return out
}

// transition describes one DP step from a state: successor positions, the
// cores and pages that fault in this step, and the pinned set R(x).
type transition struct {
	nx         []int
	faults     []int         // cores that fault in this transition
	faultPages []core.PageID // pages fetched in this transition
	pinned     map[core.PageID]bool
}

// advance computes the (unique) position successor and fault set from a
// state: hits jump a full page, everything else crawls one slot.
func (pr *prep) advance(config []core.PageID, x []int) transition {
	tr := transition{
		nx:     make([]int, pr.p),
		pinned: make(map[core.PageID]bool, pr.p),
	}
	for i := 0; i < pr.p; i++ {
		xi := x[i]
		if xi >= pr.ends[i] {
			tr.nx[i] = xi
			continue
		}
		pg := pr.pageAt(i, xi)
		tr.pinned[pg] = true
		if pr.atBoundary(xi) {
			if contains(config, pg) {
				tr.nx[i] = xi + pr.step // hit
			} else {
				tr.nx[i] = xi + 1 // fault begins
				tr.faults = append(tr.faults, i)
				tr.faultPages = append(tr.faultPages, pg)
			}
		} else {
			tr.nx[i] = xi + 1 // fetch in progress
		}
	}
	return tr
}

// successors enumerates the legal successor configurations for a
// transition: C ∪ faultPages minus evictions chosen among non-pinned
// pages. In honest mode exactly the capacity shortfall is evicted; with
// forcing any superset of that may go. Each successor configuration is
// passed to emit (ownership of the slice transfers to emit).
func (pr *prep) successors(config []core.PageID, tr transition, k int, forcing bool, emit func([]core.PageID)) {
	base := config
	for _, pg := range tr.faultPages {
		// Fault pages are absent from config (they missed) and distinct
		// from each other (disjoint sequences).
		base = insertSorted(base, pg)
	}
	emitSuccessors(base, tr, k, forcing, emit)
}

func emitSuccessors(base []core.PageID, tr transition, k int, forcing bool, emit func([]core.PageID)) {
	// Removable pages: in base but not pinned.
	var removable []int
	for idx, p := range base {
		if !tr.pinned[p] {
			removable = append(removable, idx)
		}
	}
	need := len(base) - k
	if need < 0 {
		need = 0
	}
	if need > len(removable) {
		return // cannot satisfy capacity without evicting pinned pages
	}
	// Enumerate eviction subsets of size exactly `need` (honest) or of
	// any size ≥ need (forcing).
	maxDrop := need
	if forcing {
		maxDrop = len(removable)
	}
	drop := make([]int, 0, maxDrop)
	var rec func(start, size int)
	rec = func(start, size int) {
		if size >= need && size <= maxDrop {
			emit(removeIdx(base, drop))
		}
		if size == maxDrop {
			return
		}
		for i := start; i < len(removable); i++ {
			drop = append(drop, removable[i])
			rec(i+1, size+1)
			drop = drop[:len(drop)-1]
		}
	}
	rec(0, 0)
}

// ErrStateLimit is wrapped by solver errors when MaxStates is exceeded.
var ErrStateLimit = fmt.Errorf("offline: state limit exceeded")

// errNoSchedule reports that no feasible schedule exists (every branch
// required evicting a pinned or in-flight page).
var errNoSchedule = fmt.Errorf("offline: no feasible schedule")

// errNotDisjointSentinel mirrors sim.ErrNotDisjoint for the brute
// searchers (newPrep returns the sim sentinel itself).
var errNotDisjointSentinel = fmt.Errorf("offline: request set is not disjoint")

// sortedStateKeys returns a DP bucket's keys in sorted order. The
// solvers iterate buckets through this helper so that exploration
// order — and with it branch pruning, state-limit accounting and
// tie-breaking among equally good states — is deterministic instead of
// at the mercy of map iteration order. Two runs of a solver on the
// same instance therefore visit identical state sequences and return
// identical schedules.
func sortedStateKeys[T any](bucket map[string]T) []string {
	keys := make([]string, 0, len(bucket))
	for k := range bucket {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
