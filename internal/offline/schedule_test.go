package offline_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mcpaging/internal/core"
	"mcpaging/internal/offline"
	"mcpaging/internal/sim"
)

// TestScheduleReplayReproducesOptimum is the end-to-end consistency
// proof: the schedule extracted from the exact DP, replayed through the
// simulator, reproduces the optimal fault count exactly and consumes
// every decision.
func TestScheduleReplayReproducesOptimum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := tinyInstance(rng)
		sol, sched, err := offline.SolveFTFSeqSchedule(in, offline.Options{})
		if err != nil {
			return false
		}
		rep := offline.NewReplayer(sched)
		res, err := sim.Run(in, rep, nil)
		if err != nil {
			return false
		}
		if rep.Err() != nil {
			return false
		}
		return res.TotalFaults() == sol.Faults &&
			rep.Consumed() == len(sched) &&
			int64(len(sched)) == sol.Faults
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestScheduleMatchesPlainSolver: the schedule-producing solver agrees
// with the plain solver on the optimum.
func TestScheduleMatchesPlainSolver(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := tinyInstance(rng)
		a, _, err := offline.SolveFTFSeqSchedule(in, offline.Options{})
		if err != nil {
			return false
		}
		b, err := offline.SolveFTFSeq(in, offline.Options{})
		if err != nil {
			return false
		}
		return a.Faults == b.Faults
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestScheduleOnGapInstance replays the documented pinned-rule gap
// instance: the extracted 3-fault schedule must execute in the
// simulator even though the paper's Algorithm 1 cannot express it.
func TestScheduleOnGapInstance(t *testing.T) {
	in := core.Instance{
		R: core.RequestSet{{2, 2}, {100, 101, 101, 100}},
		P: core.Params{K: 2, Tau: 0},
	}
	sol, sched, err := offline.SolveFTFSeqSchedule(in, offline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Faults != 3 {
		t.Fatalf("optimum = %d, want 3", sol.Faults)
	}
	rep := offline.NewReplayer(sched)
	res, err := sim.Run(in, rep, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Err() != nil {
		t.Fatal(rep.Err())
	}
	if res.TotalFaults() != 3 {
		t.Fatalf("replay faults = %d, want 3", res.TotalFaults())
	}
}

func TestReplayerDivergenceDetected(t *testing.T) {
	// A wrong schedule (victim of a page never cached) aborts the run.
	in := core.Instance{
		R: core.RequestSet{{1, 2, 3}},
		P: core.Params{K: 2, Tau: 0},
	}
	bad := []offline.Decision{
		{Core: 0, Page: 1, Victim: core.NoPage},
		{Core: 0, Page: 2, Victim: core.NoPage},
		{Core: 0, Page: 3, Victim: 99},
	}
	rep := offline.NewReplayer(bad)
	if _, err := sim.Run(in, rep, nil); err == nil {
		t.Fatal("invalid victim should abort the simulation")
	}
	// A schedule that is too short is no longer an error: the LRU tail
	// takes over (see TestReplayerTailCompletes).
	short := offline.NewReplayer(bad[:1])
	if _, err := sim.Run(in, short, nil); err != nil {
		t.Fatalf("short schedule should complete via the tail: %v", err)
	}
	if short.Err() != nil {
		t.Fatal(short.Err())
	}
	// A schedule naming the wrong page diverges.
	wrong := offline.NewReplayer([]offline.Decision{{Core: 0, Page: 9, Victim: core.NoPage}})
	if _, err := sim.Run(in, wrong, nil); err != nil {
		t.Fatal(err)
	}
	if wrong.Err() == nil {
		t.Fatal("page divergence should surface")
	}
}

// TestWitnessPIFReplay: when the honest search certifies a PIF yes, its
// witness schedule replayed in the simulator respects every bound at the
// checkpoint.
func TestWitnessPIFReplay(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := tinyInstance(rng)
		p := in.R.NumCores()
		bounds := make([]int64, p)
		for i := range bounds {
			bounds[i] = int64(rng.Intn(len(in.R[i]) + 1))
		}
		maxT := int64(in.R.MaxLen() * (in.P.Tau + 1))
		pi := offline.PIFInstance{Inst: in, T: rng.Int63n(maxT + 2), Bounds: bounds}
		sched, ok, err := offline.WitnessPIF(pi)
		if err != nil {
			return false
		}
		brute, err := offline.BrutePIF(pi)
		if err != nil || ok != brute {
			return false
		}
		if !ok {
			return true
		}
		rep := offline.NewReplayer(sched)
		counts := make([]int64, p)
		_, err = sim.Run(in, rep, func(ev sim.Event) {
			if ev.Fault && ev.Time < pi.T {
				counts[ev.Core]++
			}
		})
		if err != nil || rep.Err() != nil {
			return false
		}
		for i, c := range counts {
			if c > bounds[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestReplayerTailCompletes: a schedule covering only a prefix still
// lets the run finish via the LRU tail.
func TestReplayerTailCompletes(t *testing.T) {
	in := core.Instance{
		R: core.RequestSet{{1, 2, 3, 1, 2, 3}},
		P: core.Params{K: 2, Tau: 0},
	}
	// Only the first two decisions are scheduled.
	sched := []offline.Decision{
		{Core: 0, Page: 1, Victim: core.NoPage},
		{Core: 0, Page: 2, Victim: core.NoPage},
	}
	rep := offline.NewReplayer(sched)
	res, err := sim.Run(in, rep, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Err() != nil {
		t.Fatal(rep.Err())
	}
	if res.TotalFaults()+res.TotalHits() != 6 {
		t.Fatal("run did not complete")
	}
}
