package offline_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mcpaging/internal/core"
	"mcpaging/internal/mattson"
	"mcpaging/internal/offline"
)

// TestSeqMatchesUnpinnedBrute: the sequential-transition DP equals
// exhaustive search under logical-order semantics.
func TestSeqMatchesUnpinnedBrute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := tinyInstance(rng)
		sol, err := offline.SolveFTFSeq(in, offline.Options{})
		if err != nil {
			return false
		}
		brute, err := offline.BruteFTFUnpinned(in)
		if err != nil {
			return false
		}
		return sol.Faults == brute
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestSeqNeverAbovePinned: lifting the pinning rule can only help.
func TestSeqNeverAbovePinned(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := tinyInstance(rng)
		seq, err := offline.SolveFTFSeq(in, offline.Options{})
		if err != nil {
			return false
		}
		pinned, err := offline.SolveFTF(in, offline.Options{})
		if err != nil {
			return false
		}
		return seq.Faults <= pinned.Faults
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestPinnedRuleGap pins the instance documenting that the paper's
// Algorithm 1 successor rule (C′ ⊇ R(x)) is strictly more restrictive
// than the model's logical-order semantics: evicting core 0's page right
// after its same-step hit saves a fault.
func TestPinnedRuleGap(t *testing.T) {
	in := core.Instance{
		R: core.RequestSet{{2, 2}, {100, 101, 101, 100}},
		P: core.Params{K: 2, Tau: 0},
	}
	pinned, err := offline.SolveFTF(in, offline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := offline.SolveFTFSeq(in, offline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pinned.Faults != 4 || seq.Faults != 3 {
		t.Fatalf("pinned=%d seq=%d; want the documented 4 vs 3 gap", pinned.Faults, seq.Faults)
	}
	// Even forcing does not let the pinned rule recover the schedule.
	forcing, err := offline.SolveFTF(in, offline.Options{AllowForcing: true})
	if err != nil {
		t.Fatal(err)
	}
	if forcing.Faults != 4 {
		t.Fatalf("forcing pinned = %d, want 4", forcing.Faults)
	}
}

// TestSeqSequentialBelady: at p=1 the two semantics coincide and both
// equal Belady's algorithm.
func TestSeqSequentialBelady(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 15; trial++ {
		n := 3 + rng.Intn(6)
		seq := make(core.Sequence, n)
		for i := range seq {
			seq[i] = core.PageID(rng.Intn(4))
		}
		k := 1 + rng.Intn(3)
		tau := rng.Intn(3)
		in := core.Instance{R: core.RequestSet{seq}, P: core.Params{K: k, Tau: tau}}
		sol, err := offline.SolveFTFSeq(in, offline.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if want := mattson.OPTMisses(seq, k); sol.Faults != want {
			t.Fatalf("trial %d: seq DP %d != Belady %d", trial, sol.Faults, want)
		}
	}
}

// TestSeqGapFrequency reports how often the two semantics differ on
// random tiny instances — the gap exists but is rare, supporting the
// view that the paper's rule is a benign simplification for most
// instances while not exactly optimal.
func TestSeqGapFrequency(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	diff := 0
	const trials = 150
	for trial := 0; trial < trials; trial++ {
		in := tinyInstance(rng)
		pinned, err := offline.SolveFTF(in, offline.Options{})
		if err != nil {
			t.Fatal(err)
		}
		seq, err := offline.SolveFTFSeq(in, offline.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if seq.Faults > pinned.Faults {
			t.Fatalf("trial %d: seq %d > pinned %d", trial, seq.Faults, pinned.Faults)
		}
		if seq.Faults < pinned.Faults {
			diff++
		}
	}
	t.Logf("gap on %d/%d random tiny instances", diff, trials)
}

// TestTheorem4ForcingNeutralExact re-verifies Theorem 4 under the exact
// logical-order semantics: voluntary evictions never lower the FTF
// optimum there either.
func TestTheorem4ForcingNeutralExact(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 40; trial++ {
		in := tinyInstance(rng)
		honest, err := offline.SolveFTFSeq(in, offline.Options{})
		if err != nil {
			t.Fatal(err)
		}
		forcing, err := offline.SolveFTFSeq(in, offline.Options{AllowForcing: true})
		if err != nil {
			t.Fatal(err)
		}
		if forcing.Faults > honest.Faults {
			t.Fatalf("trial %d: forcing made things worse?! %d vs %d", trial, forcing.Faults, honest.Faults)
		}
		if forcing.Faults < honest.Faults {
			t.Fatalf("trial %d: forcing beat honest under exact semantics: %d vs %d (R=%v)",
				trial, forcing.Faults, honest.Faults, in.R)
		}
	}
}
