package offline

import (
	"fmt"
	"math"

	"mcpaging/internal/core"
)

// FTFSolution is the result of the FINAL-TOTAL-FAULTS dynamic program.
type FTFSolution struct {
	// Faults is the minimum total number of faults over all honest (or,
	// with AllowForcing, all) offline eviction schedules.
	Faults int64
	// States is the number of distinct DP states explored — the
	// empirical counterpart of the O(n^{K+p}(τ+1)^p) bound of Theorem 6.
	States int
}

// ftfState is one DP node: a cache configuration, position vector, and
// the minimum faults to reach it.
type ftfState struct {
	config []core.PageID
	x      []int
	faults int64
}

// SolveFTF computes the minimum total number of faults for serving the
// instance (the paper's Algorithm 1, Theorem 6). The request set must be
// disjoint. Running time is polynomial in the sequence lengths but
// exponential in p and K, so this is only usable on small instances; the
// Options state limit guards against blow-ups.
func SolveFTF(inst core.Instance, opts Options) (FTFSolution, error) {
	pr, err := newPrep(inst)
	if err != nil {
		return FTFSolution{}, err
	}
	maxSum := pr.maxPosSum()
	buckets := make([]map[string]*ftfState, maxSum+1)
	add := func(sum int, st *ftfState) {
		if buckets[sum] == nil {
			buckets[sum] = make(map[string]*ftfState)
		}
		key := stateKey(st.config, st.x)
		if old, ok := buckets[sum][key]; ok {
			if st.faults < old.faults {
				old.faults = st.faults
			}
			return
		}
		buckets[sum][key] = st
	}

	start := &ftfState{config: nil, x: make([]int, pr.p)}
	add(0, start)

	best := int64(math.MaxInt64)
	states := 0
	limit := opts.maxStates()

	for sum := 0; sum <= maxSum; sum++ {
		for _, skey := range sortedStateKeys(buckets[sum]) {
			st := buckets[sum][skey]
			states++
			if states > limit {
				return FTFSolution{}, fmt.Errorf("solve FTF: %w (limit %d)", ErrStateLimit, limit)
			}
			if pr.done(st.x) {
				if st.faults < best {
					best = st.faults
				}
				continue
			}
			if st.faults >= best && !opts.NoBranchPruning {
				continue // cannot improve
			}
			tr := pr.advance(st.config, st.x)
			nf := st.faults + int64(len(tr.faults))
			nsum := posSum(tr.nx)
			pr.successors(st.config, tr, inst.P.K, opts.AllowForcing, func(nc []core.PageID) {
				add(nsum, &ftfState{config: nc, x: tr.nx, faults: nf})
			})
		}
		buckets[sum] = nil // release as we go
	}
	if best == int64(math.MaxInt64) {
		return FTFSolution{}, fmt.Errorf("solve FTF: no feasible schedule (K too small for pinned pages)")
	}
	return FTFSolution{Faults: best, States: states}, nil
}
