package server

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"strings"

	"mcpaging/internal/core"
)

// JobKey computes the content-addressed cache key of one simulation
// job: a SHA-256 over a canonical encoding of (request set, strategy
// spec, K, τ, capacity schedule, seed). The request set is hashed by
// content, so the same instance reaches the same key whether it arrived
// inline, as a binary trace, or as a deterministic workload spec. The
// spec is trimmed the same way strategyspec.Build trims it; seed is
// always included because it changes the behaviour of randomized
// policies (for deterministic policies two seeds simply occupy two
// cache entries). The capacity schedule is hashed by its canonical
// resolved form (Schedule.Canonical — the breakpoint list or wave
// parameters, empty for fixed-capacity jobs), never by the spec
// string: two spellings of the same K(t) share an entry, and a
// schedule whose spec alone does not determine K(t) (trace reads a
// file) can never alias a key onto a different simulation. The domain
// label is v3 — v2 hashed the raw spec string; switching to the
// canonical encoding re-keyed every elastic job, and the bump makes
// the old and new key spaces disjoint rather than silently aliased.
//
// The key is exported because it is also the fleet's routing key:
// mcfleet consistent-hashes it onto the worker ring, so a job lands on
// the worker whose result cache is most likely to already hold it —
// the per-worker caches compose into one logical distributed cache.
func JobKey(rs core.RequestSet, spec string, p core.Params, seed int64) string {
	h := sha256.New()
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) {
		h.Write(buf[:binary.PutUvarint(buf[:], v)])
	}
	writeVarint := func(v int64) {
		h.Write(buf[:binary.PutVarint(buf[:], v)])
	}
	h.Write([]byte("mcservd/job/v3\x00"))
	writeVarint(int64(p.K))
	writeVarint(int64(p.Tau))
	var capEnc []byte
	if p.Capacity != nil {
		capEnc = p.Capacity.Canonical()
	}
	writeUvarint(uint64(len(capEnc)))
	h.Write(capEnc)
	writeVarint(seed)
	spec = strings.TrimSpace(spec)
	writeUvarint(uint64(len(spec)))
	h.Write([]byte(spec))
	writeUvarint(uint64(len(rs)))
	for _, seq := range rs {
		writeUvarint(uint64(len(seq)))
		for _, pg := range seq {
			writeVarint(int64(pg))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
