// Package server implements mcservd, the paging-simulation service: an
// HTTP daemon that turns the library's simulation engines into an
// online service in the sense the multicore-paging literature models —
// request streams arriving at a shared resource with bounded capacity.
//
// Architecture, front to back:
//
//   - Handlers decode a job (inline request set, workload generator
//     spec, or binary trace; a strategyspec strategy; K/τ/seed), then
//     canonicalize it to a content-addressed key (hash.go).
//   - The result cache (rescache.go) answers repeat jobs without
//     touching the pool; eviction order is managed by an internal/cache
//     LRU policy with a configurable entry budget.
//   - Misses go onto a bounded queue. A full queue is backpressure:
//     the job is bounced with 429 and a Retry-After hint rather than
//     queued without bound.
//   - A fixed pool of workers drains the queue; each worker owns one
//     reusable sim.Runner that it rebinds per job, and runs under the
//     per-job timeout via sim's cooperative context cancellation.
//   - /metrics serves the server-level counters plus the telemetry
//     snapshot of the most recently completed job, both in Prometheus
//     text format. /healthz and /readyz are liveness and readiness.
//   - Drain stops intake (submissions fail with ErrDraining, readiness
//     goes false) and waits for queued and in-flight jobs to finish —
//     the graceful-shutdown half that cmd/mcservd pairs with
//     http.Server.Shutdown.
package server

import (
	"net/http"
	"runtime"
	"sync"
	"time"

	"mcpaging/internal/telemetry"
)

// Config parameterises a Server. Zero values select the defaults noted
// on each field.
type Config struct {
	// Workers is the simulation worker-pool size (0 = GOMAXPROCS).
	Workers int
	// QueueDepth bounds the job queue (0 = 2×Workers). When the queue
	// is full, POST /v1/jobs returns 429 with a Retry-After hint.
	QueueDepth int
	// CacheEntries is the result-cache budget in entries (0 = 4096,
	// negative = caching disabled).
	CacheEntries int
	// JobTimeout is the per-job execution budget (0 = 60s). Requests
	// may lower it per job via timeout_ms, never raise it.
	JobTimeout time.Duration
	// MaxRequests bounds one job's total request count (0 = 8M).
	MaxRequests int
	// MaxBody bounds request bodies in bytes (0 = 64 MiB).
	MaxBody int64
	// RetryAfter is the Retry-After hint on 429 responses (0 = 1s).
	RetryAfter time.Duration
	// JobParallel enables intra-job speculation with that many scan
	// workers when the queue is otherwise idle (0 = off). Under load
	// the pool already keeps every core busy with whole jobs, so
	// intra-job parallelism only engages when a job would run alone;
	// results are byte-identical either way.
	JobParallel int
	// WorkerID, when non-empty, is echoed on every response as the
	// Fleet-Worker-ID header. mcfleet uses it to confirm which fleet
	// member answered a routed job (cache-affinity accounting).
	WorkerID string

	// testJobStarted/testJobRelease, when non-nil, make workers
	// announce each dequeued job and wait for release — deterministic
	// scheduling hooks for the package's own tests.
	testJobStarted chan<- struct{}
	testJobRelease <-chan struct{}
}

// withDefaults resolves the zero values.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 4096
	}
	if c.CacheEntries < 0 {
		c.CacheEntries = 0 // resultCache treats 0 as disabled
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 60 * time.Second
	}
	if c.MaxRequests <= 0 {
		c.MaxRequests = 8 << 20
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 64 << 20
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Server is the mcservd service: handlers, queue, pool, cache, metrics.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	jobs  chan *job
	wg    sync.WaitGroup
	cache *resultCache

	metrics serverMetrics

	drainMu  sync.RWMutex
	draining bool

	telemMu   sync.Mutex
	lastTelem *telemetry.Collector
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		mux:   http.NewServeMux(),
		jobs:  make(chan *job, cfg.QueueDepth),
		cache: newResultCache(cfg.CacheEntries),
	}
	s.routes()
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Handler returns the server's HTTP handler. With a configured
// WorkerID the handler stamps every response with the Fleet-Worker-ID
// header so a coordinator can attribute answers to fleet members.
func (s *Server) Handler() http.Handler {
	if s.cfg.WorkerID == "" {
		return s.mux
	}
	id := s.cfg.WorkerID
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Fleet-Worker-ID", id)
		s.mux.ServeHTTP(w, r)
	})
}

// Drain stops intake and waits for queued and in-flight jobs to finish.
// Submissions after Drain fail with ErrDraining (503 at the HTTP
// layer); /readyz reports not-ready. Drain is idempotent. Callers doing
// a full graceful shutdown should first let the HTTP server stop
// accepting connections (http.Server.Shutdown waits for in-flight
// handlers, which in turn wait on their jobs), then call Drain.
func (s *Server) Drain() {
	s.drainMu.Lock()
	if !s.draining {
		s.draining = true
		close(s.jobs)
	}
	s.drainMu.Unlock()
	s.wg.Wait()
}

// ready reports whether the server is accepting jobs.
func (s *Server) ready() bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	return !s.draining
}

// snapshotGauges collects the point-in-time values for /metrics.
func (s *Server) snapshotGauges() gauges {
	hits, misses, entries := s.cache.stats()
	return gauges{
		queueDepth:   len(s.jobs),
		queueCap:     s.cfg.QueueDepth,
		workers:      s.cfg.Workers,
		cacheEntries: entries,
		cacheCap:     s.cfg.CacheEntries,
		cacheHits:    hits,
		cacheMisses:  misses,
		ready:        s.ready(),
	}
}
