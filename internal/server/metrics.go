package server

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// latWindow is how many recent job latencies the quantile estimator
// retains. Quantiles are computed over this sliding window at scrape
// time — a small, allocation-bounded stand-in for a real histogram.
const latWindow = 512

// serverMetrics holds the server-level counters exposed on /metrics.
// Counters are atomics (bumped from handlers and workers); the latency
// ring has its own lock.
type serverMetrics struct {
	accepted  atomic.Int64 // jobs admitted to the queue
	rejected  atomic.Int64 // jobs bounced with 429 (queue full)
	completed atomic.Int64 // jobs that produced a result
	failed    atomic.Int64 // jobs that errored (build, validation, run)
	timeouts  atomic.Int64 // jobs aborted by the per-job timeout
	coalesced atomic.Int64 // duplicate concurrent jobs folded into one flight

	mu       sync.Mutex
	lat      [latWindow]float64 // seconds
	latPos   int
	latLen   int
	latSum   float64
	latCount int64
}

func (m *serverMetrics) observeLatency(d time.Duration) {
	s := d.Seconds()
	m.mu.Lock()
	m.lat[m.latPos] = s
	m.latPos = (m.latPos + 1) % latWindow
	if m.latLen < latWindow {
		m.latLen++
	}
	m.latSum += s
	m.latCount++
	m.mu.Unlock()
}

// quantile returns the q-quantile (0 ≤ q ≤ 1) of the retained window
// using the nearest-rank method; ok is false when no job has finished.
func (m *serverMetrics) quantiles(qs []float64) ([]float64, bool) {
	m.mu.Lock()
	n := m.latLen
	window := make([]float64, n)
	copy(window, m.lat[:n])
	m.mu.Unlock()
	if n == 0 {
		return nil, false
	}
	sort.Float64s(window)
	out := make([]float64, len(qs))
	for i, q := range qs {
		r := int(q*float64(n) + 0.5)
		if r < 1 {
			r = 1
		}
		if r > n {
			r = n
		}
		out[i] = window[r-1]
	}
	return out, true
}

// gauges carries the point-in-time values writePrometheus interleaves
// with the counters.
type gauges struct {
	queueDepth, queueCap   int
	workers                int
	cacheEntries, cacheCap int
	cacheHits, cacheMisses int64
	ready                  bool
}

// writePrometheus emits the server-level metrics in Prometheus text
// format (version 0.0.4). Metric order is fixed so scrapes are stable.
func (m *serverMetrics) writePrometheus(w io.Writer, g gauges) error {
	var b strings.Builder
	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter("mcservd_jobs_accepted_total", "Jobs admitted to the queue.", m.accepted.Load())
	counter("mcservd_jobs_rejected_total", "Jobs bounced with 429 because the queue was full.", m.rejected.Load())
	counter("mcservd_jobs_completed_total", "Jobs that produced a result.", m.completed.Load())
	counter("mcservd_jobs_failed_total", "Jobs that ended in an error (including timeouts).", m.failed.Load())
	counter("mcservd_jobs_timeout_total", "Jobs aborted by the per-job timeout.", m.timeouts.Load())
	counter("mcservd_jobs_coalesced_total", "Duplicate concurrent jobs folded into another job's flight (singleflight).", m.coalesced.Load())
	counter("mcservd_cache_hits_total", "Result-cache hits.", g.cacheHits)
	counter("mcservd_cache_misses_total", "Result-cache misses.", g.cacheMisses)
	gauge("mcservd_cache_entries", "Results currently cached.", float64(g.cacheEntries))
	gauge("mcservd_cache_entry_budget", "Result-cache capacity in entries.", float64(g.cacheCap))
	if tot := g.cacheHits + g.cacheMisses; tot > 0 {
		gauge("mcservd_cache_hit_ratio", "Result-cache hit ratio over the server lifetime.", float64(g.cacheHits)/float64(tot))
	} else {
		gauge("mcservd_cache_hit_ratio", "Result-cache hit ratio over the server lifetime.", 0)
	}
	gauge("mcservd_queue_depth", "Jobs waiting in the queue.", float64(g.queueDepth))
	gauge("mcservd_queue_capacity", "Queue capacity.", float64(g.queueCap))
	gauge("mcservd_workers", "Simulation worker goroutines.", float64(g.workers))
	ready := 0.0
	if g.ready {
		ready = 1
	}
	gauge("mcservd_ready", "1 while the server accepts jobs, 0 once draining.", ready)

	m.mu.Lock()
	sum, count := m.latSum, m.latCount
	m.mu.Unlock()
	fmt.Fprintf(&b, "# HELP mcservd_job_latency_seconds Job service time (queue wait plus simulation), recent-window quantiles.\n# TYPE mcservd_job_latency_seconds summary\n")
	if q, ok := m.quantiles([]float64{0.5, 0.99}); ok {
		fmt.Fprintf(&b, "mcservd_job_latency_seconds{quantile=\"0.5\"} %g\n", q[0])
		fmt.Fprintf(&b, "mcservd_job_latency_seconds{quantile=\"0.99\"} %g\n", q[1])
	}
	fmt.Fprintf(&b, "mcservd_job_latency_seconds_sum %g\n", sum)
	fmt.Fprintf(&b, "mcservd_job_latency_seconds_count %d\n", count)
	_, err := io.WriteString(w, b.String())
	return err
}
