package server

import (
	"bytes"
	"encoding/base64"
	"os"
	"path/filepath"
	"testing"

	"mcpaging/internal/capacity"
	"mcpaging/internal/core"
	"mcpaging/internal/trace"
)

func TestJobKeyCanonicalAcrossInputModes(t *testing.T) {
	rs := core.RequestSet{{1, 2, 3, 1}, {9, 8, 9}}
	p := core.Params{K: 4, Tau: 2}

	// The same instance through the inline and binary paths must reach
	// the same key: the key hashes content, not transport.
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, rs); err != nil {
		t.Fatal(err)
	}
	in := TraceInput{BinaryB64: base64.StdEncoding.EncodeToString(buf.Bytes())}
	decoded, err := in.Resolve(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	k1 := JobKey(rs, "S(LRU)", p, 1)
	k2 := JobKey(decoded, "S(LRU)", p, 1)
	if k1 != k2 {
		t.Fatalf("binary round-trip changed the key: %s vs %s", k1, k2)
	}

	// Spec whitespace is canonicalized away, matching Build's trim.
	if JobKey(rs, "  S(LRU)  ", p, 1) != k1 {
		t.Fatal("spec whitespace changed the key")
	}

	// Every parameter is load-bearing.
	distinct := map[string]string{
		"base":     k1,
		"spec":     JobKey(rs, "S(FIFO)", p, 1),
		"k":        JobKey(rs, "S(LRU)", core.Params{K: 5, Tau: 2}, 1),
		"tau":      JobKey(rs, "S(LRU)", core.Params{K: 4, Tau: 3}, 1),
		"seed":     JobKey(rs, "S(LRU)", p, 2),
		"capacity": jobKeyWithCapacity(t, rs, p),
		"requests": JobKey(core.RequestSet{{1, 2, 3, 1}, {9, 8, 8}}, "S(LRU)", p, 1),
		// Same flattened content, different core structure.
		"shape": JobKey(core.RequestSet{{1, 2, 3, 1, 9}, {8, 9}}, "S(LRU)", p, 1),
	}
	seen := map[string]string{}
	for name, k := range distinct {
		if prev, ok := seen[k]; ok {
			t.Fatalf("key collision between %s and %s", prev, name)
		}
		seen[k] = name
	}
}

// jobKeyWithCapacity keys the base job with a capacity schedule
// attached; the schedule spec must be load-bearing like K and τ.
func jobKeyWithCapacity(t *testing.T, rs core.RequestSet, p core.Params) string {
	t.Helper()
	sched, err := capacity.ParseSchedule("step(to=50%,at=2)", p.K)
	if err != nil {
		t.Fatal(err)
	}
	p.Capacity = sched
	return JobKey(rs, "S(LRU)", p, 1)
}

// TestJobKeyHashesResolvedSchedule pins that the key covers the
// resolved K(t) (Schedule.Canonical), not the spec string: equivalent
// spellings share a cache entry, and a trace schedule's key follows
// the file contents — editing the file re-keys the job instead of
// silently serving stale cached results.
func TestJobKeyHashesResolvedSchedule(t *testing.T) {
	rs := core.RequestSet{{1, 2, 3, 1}, {9, 8, 9}}
	key := func(spec string) string {
		t.Helper()
		sched, err := capacity.ParseSchedule(spec, 16)
		if err != nil {
			t.Fatal(err)
		}
		return JobKey(rs, "S(LRU)", core.Params{K: 16, Tau: 2, Capacity: sched}, 1)
	}
	if key("step(to=8,at=2)") != key("step(to=50%,at=2)") {
		t.Fatal("equivalent schedule specs produced different keys")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "sched.txt")
	if err := os.WriteFile(path, []byte("0 100%\n5 8\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	k1 := key("trace(path=" + path + ")")
	if err := os.WriteFile(path, []byte("0 100%\n5 4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if k2 := key("trace(path=" + path + ")"); k1 == k2 {
		t.Fatal("editing the trace file left the job key unchanged")
	}
}

func TestResultCacheEvictsLRUAtBudget(t *testing.T) {
	c := newResultCache(2)
	r := func(n int64) Result { return Result{TotalFaults: n} }
	c.put("a", r(1))
	c.put("b", r(2))
	if _, ok := c.get("a"); !ok { // refresh a: b is now least recent
		t.Fatal("a missing")
	}
	c.put("c", r(3)) // evicts b
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived past the budget")
	}
	if v, ok := c.get("a"); !ok || v.TotalFaults != 1 {
		t.Fatal("a lost or corrupted")
	}
	if v, ok := c.get("c"); !ok || v.TotalFaults != 3 {
		t.Fatal("c lost or corrupted")
	}
	hits, misses, entries := c.stats()
	if entries != 2 {
		t.Fatalf("entries = %d, want 2", entries)
	}
	if hits != 3 || misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 3/1", hits, misses)
	}
	// Handle recycling: many churn cycles never grow past the budget.
	for i := 0; i < 100; i++ {
		c.put(string(rune('d'+i)), r(int64(i)))
	}
	if _, _, entries := c.stats(); entries != 2 {
		t.Fatalf("entries after churn = %d, want 2", entries)
	}
	if c.next > 3 {
		t.Fatalf("handles not recycled: next = %d", c.next)
	}
}

func TestResultCacheDuplicatePutKeepsFirst(t *testing.T) {
	c := newResultCache(4)
	c.put("k", Result{TotalFaults: 1})
	c.put("k", Result{TotalFaults: 99})
	if v, _ := c.get("k"); v.TotalFaults != 1 {
		t.Fatalf("duplicate put replaced the entry: %d", v.TotalFaults)
	}
	if _, _, entries := c.stats(); entries != 1 {
		t.Fatal("duplicate put grew the cache")
	}
}
