package server

import (
	"context"
	"errors"
	"fmt"
	"time"

	"mcpaging/internal/metrics"
	"mcpaging/internal/sim"
	"mcpaging/internal/strategyspec"
	"mcpaging/internal/telemetry"
)

// ErrDraining is reported to submissions that arrive after Drain began.
var ErrDraining = errors.New("server: draining, not accepting jobs")

// ErrQueueFull is reported by non-blocking submission when the bounded
// queue has no room — the signal handlers turn into 429 + Retry-After.
var ErrQueueFull = errors.New("server: job queue full")

// errBuild wraps strategy-construction and validation failures so
// handlers can map them to 422 instead of 500.
type errBuild struct{ err error }

func (e errBuild) Error() string { return e.err.Error() }
func (e errBuild) Unwrap() error { return e.err }

// submit enqueues a job without blocking: a full queue is the caller's
// backpressure signal.
func (s *Server) submit(j *job) error {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining {
		return ErrDraining
	}
	select {
	case s.jobs <- j:
		s.metrics.accepted.Add(1)
		return nil
	default:
		s.metrics.rejected.Add(1)
		return ErrQueueFull
	}
}

// submitWait enqueues a job, waiting for queue space; it is the batch
// path, where the sweep handler itself is the backpressure (the stream
// simply stalls until the pool catches up).
func (s *Server) submitWait(ctx context.Context, j *job) error {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining {
		return ErrDraining
	}
	//mcvet:ignore lockheld the send must stay under drainMu.RLock so Drain cannot close(s.jobs) mid-send; the ctx.Done case bounds the wait
	select {
	case s.jobs <- j:
		s.metrics.accepted.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// worker is one pool goroutine. It owns a single reusable sim.Runner
// for its whole lifetime, rebinding it to each job's request set, so
// per-job allocations amortize away for repeat workload shapes.
func (s *Server) worker() {
	defer s.wg.Done()
	var rn *sim.Runner
	for j := range s.jobs {
		if s.cfg.testJobStarted != nil {
			s.cfg.testJobStarted <- struct{}{}
		}
		if s.cfg.testJobRelease != nil {
			<-s.cfg.testJobRelease
		}
		out := s.execute(&rn, j)
		j.res <- out
	}
}

// execute runs one job on the worker's runner under the job's deadline.
func (s *Server) execute(rn **sim.Runner, j *job) outcome {
	ctx := j.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if j.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, j.timeout)
		defer cancel()
	}
	st, err := strategyspec.Build(j.spec, j.rs, j.params.K, j.seed)
	if err != nil {
		return outcome{err: errBuild{err}}
	}
	if *rn == nil {
		*rn, err = sim.NewRunner(j.rs)
	} else {
		err = (*rn).Bind(j.rs)
	}
	if err != nil {
		return outcome{err: errBuild{err}}
	}
	defer (*rn).Release()
	if s.cfg.JobParallel > 0 && len(s.jobs) == 0 {
		// Queue idle: this job has the machine to itself, so intra-job
		// speculation is free concurrency. With jobs waiting, job-level
		// parallelism across the pool is the better use of the cores.
		(*rn).SetParallel(s.cfg.JobParallel)
	}
	col := telemetry.New(telemetry.Config{Cores: j.rs.NumCores(), Params: j.params})
	res, err := (*rn).RunContext(ctx, j.params, st, col.Observe)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			s.metrics.timeouts.Add(1)
			err = fmt.Errorf("job exceeded its %v timeout: %w", j.timeout, err)
		}
		return outcome{err: err}
	}
	col.Finish(res)
	s.telemMu.Lock()
	s.lastTelem = col
	s.telemMu.Unlock()
	return outcome{result: resultFrom(st.Name(), j.rs.TotalLen(), res)}
}

// resultFrom converts a sim.Result into the wire Result.
func resultFrom(name string, totalRequests int, res sim.Result) Result {
	rate := 0.0
	if totalRequests > 0 {
		rate = float64(res.TotalFaults()) / float64(totalRequests)
	}
	return Result{
		Strategy:           name,
		Faults:             res.Faults,
		Hits:               res.Hits,
		Finish:             res.Finish,
		Makespan:           res.Makespan,
		TotalFaults:        res.TotalFaults(),
		TotalHits:          res.TotalHits(),
		FaultRate:          rate,
		Jain:               metrics.JainIndex(res.Faults),
		VoluntaryEvictions: res.VoluntaryEvictions,
		CapacityEvictions:  res.CapacityEvictions,
	}
}

// jobTimeout resolves the effective timeout for a request: the server
// default, lowered (never raised) by the request's timeout_ms.
func (s *Server) jobTimeout(overrideMS int64) time.Duration {
	t := s.cfg.JobTimeout
	if overrideMS > 0 {
		if o := time.Duration(overrideMS) * time.Millisecond; o < t {
			t = o
		}
	}
	return t
}
