package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"mcpaging/internal/core"
	"mcpaging/internal/sim"
	"mcpaging/internal/strategyspec"
	"mcpaging/internal/sweep"
	"mcpaging/internal/workload"
)

// testTrace is a small two-core request set used across tests.
func testTrace() []core.Sequence {
	return []core.Sequence{
		{1, 2, 3, 1, 2, 3, 4, 1, 2},
		{10, 11, 10, 12, 11, 10},
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Drain()
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body interface{}) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeJob(t *testing.T, resp *http.Response) (JobResponse, json.RawMessage) {
	t.Helper()
	defer resp.Body.Close()
	var env struct {
		Key       string          `json:"key"`
		Cached    bool            `json:"cached"`
		ElapsedMS float64         `json:"elapsed_ms"`
		Result    json.RawMessage `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	var res Result
	if err := json.Unmarshal(env.Result, &res); err != nil {
		t.Fatal(err)
	}
	return JobResponse{Key: env.Key, Cached: env.Cached, ElapsedMS: env.ElapsedMS, Result: res}, env.Result
}

// scrapeMetric fetches /metrics and returns the value of an unlabelled
// metric by name.
func scrapeMetric(t *testing.T, baseURL, name string) float64 {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, name+" ") {
			v, err := strconv.ParseFloat(strings.TrimPrefix(line, name+" "), 64)
			if err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}

func TestJobRoundTripMatchesDirectRun(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	req := JobRequest{
		Trace:    TraceInput{Inline: testTrace()},
		Strategy: "S(LRU)",
		K:        4,
		Tau:      2,
		Seed:     1,
	}
	resp := postJSON(t, ts.URL+"/v1/jobs", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	env, raw := decodeJob(t, resp)
	if env.Cached {
		t.Fatal("first run reported cached")
	}

	// The served result must be byte-identical to a direct sim.Run of
	// the same instance through the same DTO.
	rs := core.RequestSet(testTrace())
	st, err := strategyspec.Build(req.Strategy, rs, req.K, req.Seed)
	if err != nil {
		t.Fatal(err)
	}
	in := core.Instance{R: rs, P: core.Params{K: req.K, Tau: req.Tau}}
	direct, err := sim.Run(in, st, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(resultFrom(st.Name(), rs.TotalLen(), direct))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bytes.TrimSpace(raw), bytes.TrimSpace(want)) {
		t.Fatalf("served result diverges from direct run:\n got %s\nwant %s", raw, want)
	}
	if env.Result.TotalFaults != direct.TotalFaults() {
		t.Fatalf("faults %d, want %d", env.Result.TotalFaults, direct.TotalFaults())
	}
}

func TestIdenticalJobHitsResultCache(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	req := JobRequest{
		Trace:    TraceInput{Inline: testTrace()},
		Strategy: "S(FIFO)",
		K:        3,
		Tau:      1,
	}
	first, _ := decodeJob(t, postJSON(t, ts.URL+"/v1/jobs", req))
	if first.Cached {
		t.Fatal("first POST reported cached")
	}
	second, _ := decodeJob(t, postJSON(t, ts.URL+"/v1/jobs", req))
	if !second.Cached {
		t.Fatal("identical re-POST was not a cache hit")
	}
	if second.Key != first.Key {
		t.Fatalf("keys diverge: %s vs %s", second.Key, first.Key)
	}
	if second.Result.TotalFaults != first.Result.TotalFaults {
		t.Fatal("cached result diverges")
	}
	// Verified via the metrics counters: one hit, one completion (the
	// hit never reached the pool).
	if v := scrapeMetric(t, ts.URL, "mcservd_cache_hits_total"); v != 1 {
		t.Fatalf("cache hits = %v, want 1", v)
	}
	if v := scrapeMetric(t, ts.URL, "mcservd_jobs_completed_total"); v != 1 {
		t.Fatalf("completed = %v, want 1", v)
	}
}

func TestCacheDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, CacheEntries: -1})
	req := JobRequest{Trace: TraceInput{Inline: testTrace()}, Strategy: "S(LRU)", K: 4, Tau: 0}
	a, _ := decodeJob(t, postJSON(t, ts.URL+"/v1/jobs", req))
	b, _ := decodeJob(t, postJSON(t, ts.URL+"/v1/jobs", req))
	if a.Cached || b.Cached {
		t.Fatal("cache disabled but a response reported cached")
	}
}

// TestTraceCapacityRejectedOverHTTP pins the network boundary: a
// client-supplied capacity spec may use the portable families, but
// trace(path=...) names a file on the server — accepting it would let
// a remote client probe and (through parse errors) read host files —
// so both endpoints refuse it with 400 before touching the path.
func TestTraceCapacityRejectedOverHTTP(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sched.txt")
	if err := os.WriteFile(path, []byte("0 100%\n5 4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Workers: 1})
	spec := "trace(path=" + path + ")"

	resp := postJSON(t, ts.URL+"/v1/jobs", JobRequest{
		Trace: TraceInput{Inline: testTrace()}, Strategy: "S(LRU)", K: 8, Tau: 1, Capacity: spec,
	})
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("job with trace capacity: status %d, want 400", resp.StatusCode)
	}
	if !strings.Contains(string(body), "portable") {
		t.Fatalf("job rejection body %q does not name the portable families", body)
	}

	resp = postJSON(t, ts.URL+"/v1/sweep", SweepRequest{
		Trace: TraceInput{Inline: testTrace()}, Ks: []int{8}, Taus: []int{1},
		Capacities: []string{spec}, Strategies: []string{"S(LRU)"},
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("sweep with trace capacity: status %d, want 400", resp.StatusCode)
	}

	// A portable spec on the same job is accepted end to end.
	resp = postJSON(t, ts.URL+"/v1/jobs", JobRequest{
		Trace: TraceInput{Inline: testTrace()}, Strategy: "S(LRU)", K: 8, Tau: 1,
		Capacity: "step(to=50%,at=4)",
	})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job with portable capacity: status %d, want 200", resp.StatusCode)
	}
}

func TestQueueFullReturns429(t *testing.T) {
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{
		Workers:        1,
		QueueDepth:     1,
		testJobStarted: started,
		testJobRelease: release,
	})
	defer close(release)

	jobReq := func(tau int) JobRequest {
		return JobRequest{Trace: TraceInput{Inline: testTrace()}, Strategy: "S(LRU)", K: 4, Tau: tau}
	}
	type posted struct {
		resp *http.Response
		err  error
	}
	a := make(chan posted, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(mustJSON(t, jobReq(0))))
		a <- posted{resp, err}
	}()
	<-started // worker holds job A; queue is empty

	b := make(chan posted, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(mustJSON(t, jobReq(1))))
		b <- posted{resp, err}
	}()
	waitFor(t, func() bool { return s.metrics.accepted.Load() == 2 }) // B sits in the queue

	resp := postJSON(t, ts.URL+"/v1/jobs", jobReq(2))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	if v := s.metrics.rejected.Load(); v != 1 {
		t.Fatalf("rejected = %d, want 1", v)
	}

	// Unblock the pool; both held jobs must complete normally.
	release <- struct{}{}
	release <- struct{}{}
	for _, ch := range []chan posted{a, b} {
		p := <-ch
		if p.err != nil {
			t.Fatal(p.err)
		}
		if p.resp.StatusCode != http.StatusOK {
			t.Fatalf("held job finished with %d", p.resp.StatusCode)
		}
		p.resp.Body.Close()
	}
}

func TestJobTimeoutAbortsAndWorkerIsReclaimed(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	slow := JobRequest{
		Trace: TraceInput{Workload: &workload.Spec{
			Cores: 1, Length: 2_000_000, Pages: 1 << 15, Kind: workload.Uniform, Seed: 7,
		}},
		Strategy:  "S(LRU)",
		K:         64,
		Tau:       4,
		TimeoutMS: 1,
	}
	resp := postJSON(t, ts.URL+"/v1/jobs", slow)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	if v := s.metrics.timeouts.Load(); v != 1 {
		t.Fatalf("timeouts = %d, want 1", v)
	}
	// The worker must be reclaimed: a small follow-up job succeeds.
	ok := JobRequest{Trace: TraceInput{Inline: testTrace()}, Strategy: "S(LRU)", K: 4, Tau: 1}
	resp2 := postJSON(t, ts.URL+"/v1/jobs", ok)
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("follow-up job status %d, want 200", resp2.StatusCode)
	}
}

func TestGracefulDrainFinishesInFlightJobs(t *testing.T) {
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{
		Workers:        1,
		QueueDepth:     2,
		testJobStarted: started,
		testJobRelease: release,
	})
	req := JobRequest{Trace: TraceInput{Inline: testTrace()}, Strategy: "S(LRU)", K: 4, Tau: 1}
	got := make(chan *http.Response, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(mustJSON(t, req)))
		if err != nil {
			t.Error(err)
			got <- nil
			return
		}
		got <- resp
	}()
	<-started // the job is in flight on the worker

	drained := make(chan struct{})
	go func() { s.Drain(); close(drained) }()
	waitFor(t, func() bool { return !s.ready() })

	// While draining: readiness off, new submissions refused.
	rz, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rz.Body.Close()
	if rz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during drain: %d, want 503", rz.StatusCode)
	}
	refused := postJSON(t, ts.URL+"/v1/jobs", req)
	refused.Body.Close()
	if refused.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submission during drain: %d, want 503", refused.StatusCode)
	}

	// The in-flight job still completes successfully.
	close(release)
	resp := <-got
	if resp == nil {
		t.Fatal("in-flight job failed")
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("in-flight job finished with %d, want 200", resp.StatusCode)
	}
	env, _ := decodeJob(t, resp)
	if env.Result.TotalFaults == 0 {
		t.Fatal("drained job returned an empty result")
	}
	select {
	case <-drained:
	case <-time.After(10 * time.Second):
		t.Fatal("Drain did not return")
	}
}

func TestSweepStreamsJSONLInGridOrder(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	req := SweepRequest{
		Trace:      TraceInput{Inline: testTrace()},
		Ks:         []int{4, 8},
		Taus:       []int{0, 2},
		Strategies: []string{"S(LRU)", "S(FIFO)"},
		Seed:       1,
	}
	resp := postJSON(t, ts.URL+"/v1/sweep", req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var lines []SweepLine
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ln SweepLine
		if err := json.Unmarshal(sc.Bytes(), &ln); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		lines = append(lines, ln)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	want, err := sweep.Run(sweep.Grid{
		R: core.RequestSet(testTrace()), Ks: req.Ks, Taus: req.Taus, Specs: req.Strategies, Seed: req.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != len(want) {
		t.Fatalf("%d lines, want %d", len(lines), len(want))
	}
	for i, ln := range lines {
		if ln.Error != "" {
			t.Fatalf("line %d error: %s", i, ln.Error)
		}
		if ln.K != want[i].K || ln.Tau != want[i].Tau || ln.Spec != want[i].Spec {
			t.Fatalf("line %d out of grid order: %+v vs %+v", i, ln, want[i])
		}
		if ln.Result == nil || ln.Result.TotalFaults != want[i].Faults {
			t.Fatalf("line %d faults diverge from sweep.Run: %+v vs %+v", i, ln.Result, want[i])
		}
	}

	// The whole grid is now cached: a re-POST streams only hits.
	resp2 := postJSON(t, ts.URL+"/v1/sweep", req)
	defer resp2.Body.Close()
	sc = bufio.NewScanner(resp2.Body)
	n := 0
	for sc.Scan() {
		var ln SweepLine
		if err := json.Unmarshal(sc.Bytes(), &ln); err != nil {
			t.Fatal(err)
		}
		if !ln.Cached {
			t.Fatalf("line %d not cached on re-sweep", n)
		}
		n++
	}
	if n != len(want) {
		t.Fatalf("re-sweep streamed %d lines, want %d", n, len(want))
	}
}

func TestStrategiesEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/strategies")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Strategies []strategyspec.Combo `json:"strategies"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	want := strategyspec.List()
	if len(body.Strategies) != len(want) {
		t.Fatalf("%d strategies, want %d", len(body.Strategies), len(want))
	}
	if body.Strategies[0] != want[0] {
		t.Fatalf("first combo %+v, want %+v", body.Strategies[0], want[0])
	}
}

// promLine matches one sample line of Prometheus text format 0.0.4.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [-+0-9.eE]+$|^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (NaN|[+-]Inf)$`)

func TestMetricsExposesServerCountersAndTelemetry(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	// Complete one job so the telemetry snapshot exists.
	resp := postJSON(t, ts.URL+"/v1/jobs", JobRequest{
		Trace: TraceInput{Inline: testTrace()}, Strategy: "S(LRU)", K: 4, Tau: 2,
	})
	resp.Body.Close()

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	var buf bytes.Buffer
	sc := bufio.NewScanner(mresp.Body)
	seen := map[string]bool{}
	for sc.Scan() {
		line := sc.Text()
		buf.WriteString(line + "\n")
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("invalid Prometheus sample line: %q", line)
		}
		seen[strings.FieldsFunc(line, func(r rune) bool { return r == '{' || r == ' ' })[0]] = true
	}
	for _, name := range []string{
		"mcservd_jobs_accepted_total",
		"mcservd_jobs_rejected_total",
		"mcservd_jobs_completed_total",
		"mcservd_cache_hits_total",
		"mcservd_cache_misses_total",
		"mcservd_queue_depth",
		"mcservd_job_latency_seconds",
		"mcservd_job_latency_seconds_sum",
		"mcservd_job_latency_seconds_count",
		// The telemetry snapshot of the completed run.
		"mcpaging_requests_total",
		"mcpaging_faults_total",
		"mcpaging_makespan",
	} {
		if !seen[name] {
			t.Fatalf("metric %s missing from scrape:\n%s", name, buf.String())
		}
	}
}

func TestJobValidationErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name string
		req  JobRequest
		code int
	}{
		{"no trace", JobRequest{Strategy: "S(LRU)", K: 4}, http.StatusBadRequest},
		{"two trace modes", JobRequest{
			Trace:    TraceInput{Inline: testTrace(), BinaryB64: "AAAA"},
			Strategy: "S(LRU)", K: 4,
		}, http.StatusBadRequest},
		{"missing strategy", JobRequest{Trace: TraceInput{Inline: testTrace()}, K: 4}, http.StatusBadRequest},
		{"bad params", JobRequest{Trace: TraceInput{Inline: testTrace()}, Strategy: "S(LRU)", K: 0}, http.StatusBadRequest},
		{"unknown policy", JobRequest{Trace: TraceInput{Inline: testTrace()}, Strategy: "S(NOPE)", K: 4}, http.StatusUnprocessableEntity},
		{"malformed spec", JobRequest{Trace: TraceInput{Inline: testTrace()}, Strategy: "garbage", K: 4}, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		resp := postJSON(t, ts.URL+"/v1/jobs", tc.req)
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.code)
		}
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d", path, resp.StatusCode)
		}
	}
}

func mustJSON(t *testing.T, v interface{}) []byte {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestJobParallelMatchesSequential serves the same disjoint, large job
// from a sequential-engine server and a JobParallel one and requires
// byte-identical result payloads — the service-level face of the
// parallel engine's determinism guarantee.
func TestJobParallelMatchesSequential(t *testing.T) {
	tr := make([]core.Sequence, 2)
	for c := range tr {
		seq := make(core.Sequence, 1500)
		for i := range seq {
			seq[i] = core.PageID(c*64 + (i*13)%48)
		}
		tr[c] = seq
	}
	req := JobRequest{
		Trace:    TraceInput{Inline: tr},
		Strategy: "S(LRU)",
		K:        24,
		Tau:      3,
		Seed:     1,
	}
	_, seqTS := newTestServer(t, Config{Workers: 1, CacheEntries: -1})
	_, parTS := newTestServer(t, Config{Workers: 1, CacheEntries: -1, JobParallel: 4})
	respSeq := postJSON(t, seqTS.URL+"/v1/jobs", req)
	respPar := postJSON(t, parTS.URL+"/v1/jobs", req)
	if respSeq.StatusCode != http.StatusOK || respPar.StatusCode != http.StatusOK {
		t.Fatalf("status %d / %d", respSeq.StatusCode, respPar.StatusCode)
	}
	_, rawSeq := decodeJob(t, respSeq)
	_, rawPar := decodeJob(t, respPar)
	if !bytes.Equal(rawSeq, rawPar) {
		t.Fatalf("parallel job diverges from sequential:\n seq %s\n par %s", rawSeq, rawPar)
	}
}

// TestDrainingResponsesCarryRetryAfter pins the uniform backoff
// contract: both the 429 queue-full path and every 503 draining path
// (job submission and /readyz) carry a Retry-After hint, so a fleet
// coordinator treats them with one backoff policy.
func TestDrainingResponsesCarryRetryAfter(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	s.Drain() // idle server: drain completes immediately

	resp := postJSON(t, ts.URL+"/v1/jobs", JobRequest{
		Trace: TraceInput{Inline: testTrace()}, Strategy: "S(LRU)", K: 4, Tau: 1,
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("job during drain: %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("503 draining job response without Retry-After")
	} else if _, err := strconv.Atoi(ra); err != nil {
		t.Fatalf("Retry-After %q is not whole seconds", ra)
	}

	rz, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rz.Body.Close()
	if rz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during drain: %d, want 503", rz.StatusCode)
	}
	if ra := rz.Header.Get("Retry-After"); ra == "" {
		t.Fatal("503 draining /readyz without Retry-After")
	}
}

// TestConcurrentSameKeyMissesRunOnce pins the stampede control on the
// result cache: two concurrent misses on one job key must produce a
// single simulation run — the follower waits for the leader's flight
// and is answered from the cache.
func TestConcurrentSameKeyMissesRunOnce(t *testing.T) {
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{
		Workers:        2,
		testJobStarted: started,
		testJobRelease: release,
	})
	req := JobRequest{Trace: TraceInput{Inline: testTrace()}, Strategy: "S(LRU)", K: 4, Tau: 2}

	type posted struct {
		resp *http.Response
		err  error
	}
	results := make(chan posted, 2)
	post := func() {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(mustJSON(t, req)))
		results <- posted{resp, err}
	}
	go post()
	<-started // the leader's job is held on a worker
	go post()
	// The duplicate must coalesce into the leader's flight, not queue a
	// second job.
	waitFor(t, func() bool { return s.metrics.coalesced.Load() == 1 })

	release <- struct{}{}
	var cached, fresh int
	for i := 0; i < 2; i++ {
		p := <-results
		if p.err != nil {
			t.Fatal(p.err)
		}
		env, _ := decodeJob(t, p.resp)
		if env.Cached {
			cached++
		} else {
			fresh++
		}
	}
	if fresh != 1 || cached != 1 {
		t.Fatalf("fresh=%d cached=%d, want exactly one of each", fresh, cached)
	}
	if n := s.metrics.completed.Load(); n != 1 {
		t.Fatalf("completed = %d, want 1 (duplicate compute)", n)
	}
	if n := s.metrics.accepted.Load(); n != 1 {
		t.Fatalf("accepted = %d, want 1 (duplicate reached the queue)", n)
	}
	select {
	case <-started:
		t.Fatal("a second simulation run started for the same key")
	default:
	}
}

// TestFleetWorkerIDHeader pins the coordinator-facing identity header:
// set, every response carries it; unset, the header is absent.
func TestFleetWorkerIDHeader(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, WorkerID: "worker-7"})
	resp := postJSON(t, ts.URL+"/v1/jobs", JobRequest{
		Trace: TraceInput{Inline: testTrace()}, Strategy: "S(LRU)", K: 4, Tau: 1,
	})
	resp.Body.Close()
	if got := resp.Header.Get("Fleet-Worker-ID"); got != "worker-7" {
		t.Fatalf("Fleet-Worker-ID = %q, want worker-7", got)
	}
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if got := hz.Header.Get("Fleet-Worker-ID"); got != "worker-7" {
		t.Fatalf("/healthz Fleet-Worker-ID = %q, want worker-7", got)
	}

	_, plain := newTestServer(t, Config{Workers: 1})
	hz2, err := http.Get(plain.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz2.Body.Close()
	if got := hz2.Header.Get("Fleet-Worker-ID"); got != "" {
		t.Fatalf("unexpected Fleet-Worker-ID %q without WorkerID config", got)
	}
}
