package server

import (
	"bytes"
	"context"
	"encoding/base64"
	"fmt"
	"time"

	"mcpaging/internal/core"
	"mcpaging/internal/trace"
	"mcpaging/internal/workload"
)

// TraceInput names a request set in one of three ways; exactly one
// field must be set. Inline and binary inputs are taken as-is; workload
// inputs are generated deterministically from the spec, so the same
// spec always canonicalizes to the same cache key.
type TraceInput struct {
	// Inline is the request set itself: one array of page IDs per core.
	Inline []core.Sequence `json:"inline,omitempty"`
	// Workload generates the request set from a generator spec (see
	// package workload for the families and their parameters).
	Workload *workload.Spec `json:"workload,omitempty"`
	// BinaryB64 is a base64 (standard encoding) binary trace in the
	// internal/trace wire format, as written by `mcgen -binary`.
	BinaryB64 string `json:"binary_b64,omitempty"`
}

// Resolve materialises the request set, enforcing a per-job size
// budget. It is exported for the fleet coordinator, which resolves the
// trace once to compute routing keys and forwards the compact input
// form to workers unchanged.
func (t TraceInput) Resolve(maxRequests int) (core.RequestSet, error) {
	modes := 0
	if t.Inline != nil {
		modes++
	}
	if t.Workload != nil {
		modes++
	}
	if t.BinaryB64 != "" {
		modes++
	}
	if modes != 1 {
		return nil, fmt.Errorf("trace: exactly one of inline, workload, binary_b64 must be set (got %d)", modes)
	}
	var rs core.RequestSet
	switch {
	case t.Inline != nil:
		rs = core.RequestSet(t.Inline)
	case t.Workload != nil:
		spec := *t.Workload
		if err := spec.Validate(); err != nil {
			return nil, err
		}
		// Check the budget before generating (Cores ≥ 1 and Length ≥ 0
		// are validated above; the per-factor checks rule out overflow).
		if spec.Cores > maxRequests || spec.Length > maxRequests ||
			int64(spec.Cores)*int64(spec.Length) > int64(maxRequests) {
			return nil, fmt.Errorf("trace: workload of %d x %d requests exceeds the per-job budget of %d", spec.Cores, spec.Length, maxRequests)
		}
		var err error
		rs, err = workload.Generate(spec)
		if err != nil {
			return nil, err
		}
	default:
		raw, err := base64.StdEncoding.DecodeString(t.BinaryB64)
		if err != nil {
			return nil, fmt.Errorf("trace: binary_b64: %w", err)
		}
		rs, err = trace.ReadBinary(bytes.NewReader(raw))
		if err != nil {
			return nil, err
		}
	}
	if err := rs.Validate(); err != nil {
		return nil, err
	}
	if n := rs.TotalLen(); n > maxRequests {
		return nil, fmt.Errorf("trace: %d requests exceeds the per-job budget of %d", n, maxRequests)
	}
	return rs, nil
}

// JobRequest is the body of POST /v1/jobs.
type JobRequest struct {
	Trace    TraceInput `json:"trace"`
	Strategy string     `json:"strategy"`
	K        int        `json:"k"`
	Tau      int        `json:"tau"`
	// Capacity is an optional K(t) schedule spec (capacity
	// mini-language, resolved against K); empty is the fixed-capacity
	// model. Only the portable families are accepted — trace(path=...)
	// names a server-side file and is rejected with 400. The resolved
	// schedule is part of the cache key.
	Capacity string `json:"capacity,omitempty"`
	// Seed drives RAND/RMARK policies; it is part of the cache key.
	Seed int64 `json:"seed"`
	// TimeoutMS optionally lowers the server's per-job timeout for this
	// job. Values at or above the server timeout are ignored.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Result is the JSON shape of one simulation outcome — the unit the
// result cache stores and both the job and sweep endpoints return. It
// is derived deterministically from a sim.Result, so re-marshalling a
// cached entry is byte-identical to the first response.
type Result struct {
	Strategy           string  `json:"strategy"`
	Faults             []int64 `json:"faults"`
	Hits               []int64 `json:"hits"`
	Finish             []int64 `json:"finish"`
	Makespan           int64   `json:"makespan"`
	TotalFaults        int64   `json:"total_faults"`
	TotalHits          int64   `json:"total_hits"`
	FaultRate          float64 `json:"fault_rate"`
	Jain               float64 `json:"jain"`
	VoluntaryEvictions int64   `json:"voluntary_evictions"`
	// CapacityEvictions counts pages shed under capacity pressure;
	// omitted for fixed-capacity jobs, keeping their cached response
	// bytes identical across server versions.
	CapacityEvictions int64 `json:"capacity_evictions,omitempty"`
}

// JobResponse is the envelope of POST /v1/jobs.
type JobResponse struct {
	// Key is the canonical cache key of (instance, strategy, params).
	Key string `json:"key"`
	// Cached reports whether Result came from the result cache.
	Cached bool `json:"cached"`
	// ElapsedMS is the job's wall-clock service time (queue wait plus
	// simulation) — 0 for cache hits.
	ElapsedMS float64 `json:"elapsed_ms"`
	Result    Result  `json:"result"`
}

// SweepRequest is the body of POST /v1/sweep: one workload, a K × τ ×
// strategy grid. The response streams one SweepLine per grid point as
// JSONL, in deterministic K-major order.
type SweepRequest struct {
	Trace TraceInput `json:"trace"`
	Ks    []int      `json:"ks"`
	Taus  []int      `json:"taus"`
	// Capacities are optional K(t) schedule specs forming a grid
	// dimension (empty = fixed capacity only). Portable families only,
	// like JobRequest.Capacity.
	Capacities []string `json:"capacities,omitempty"`
	Strategies []string `json:"strategies"`
	Seed       int64    `json:"seed"`
}

// SweepLine is one JSONL line of the sweep stream.
type SweepLine struct {
	K        int     `json:"k"`
	Tau      int     `json:"tau"`
	Capacity string  `json:"capacity,omitempty"`
	Spec     string  `json:"spec"`
	Key      string  `json:"key"`
	Cached   bool    `json:"cached"`
	Result   *Result `json:"result,omitempty"`
	Error    string  `json:"error,omitempty"`
}

// job is one unit of work on the queue. res is buffered so a worker
// never blocks on a handler that has already given up on the job.
type job struct {
	rs      core.RequestSet
	spec    string
	params  core.Params
	seed    int64
	key     string
	ctx     context.Context
	timeout time.Duration
	res     chan outcome
}

// outcome is what a worker hands back for one job.
type outcome struct {
	result Result
	err    error
}
