package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"mcpaging/internal/capacity"
	"mcpaging/internal/core"
	"mcpaging/internal/strategyspec"
	"mcpaging/internal/sweep"
	"mcpaging/internal/telemetry"
)

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /strategies", s.handleStrategies)
	s.mux.HandleFunc("POST /v1/jobs", s.handleJob)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
}

// writeJSON writes v as a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// httpError writes a JSON error body {"error": "..."}.
func httpError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	io.WriteString(w, "ok\n")
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if !s.ready() {
		w.Header().Set("Retry-After", s.retryAfterHint())
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
		return
	}
	io.WriteString(w, "ready\n")
}

// retryAfterHint renders the configured Retry-After hint in whole
// seconds (rounded up), the format both the 429 queue-full and the 503
// draining responses share so clients can back off uniformly.
func (s *Server) retryAfterHint() string {
	return strconv.Itoa(int((s.cfg.RetryAfter + time.Second - 1) / time.Second))
}

// handleMetrics serves the server-level counters followed by the
// telemetry Prometheus snapshot of the most recently completed job.
// Server metrics are mcservd_*; per-run telemetry is mcpaging_*, so the
// two families never collide in one scrape.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.metrics.writePrometheus(w, s.snapshotGauges()); err != nil {
		return
	}
	s.telemMu.Lock()
	defer s.telemMu.Unlock()
	if s.lastTelem != nil {
		_ = telemetry.WritePrometheus(w, s.lastTelem)
	}
}

func (s *Server) handleStrategies(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Strategies []strategyspec.Combo `json:"strategies"`
	}{strategyspec.List()})
}

// handleJob serves POST /v1/jobs: resolve → canonical key → cache →
// queue → worker → respond. See docs/server.md for the lifecycle.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding job: %v", err)
		return
	}
	if req.Strategy == "" {
		httpError(w, http.StatusBadRequest, "strategy is required")
		return
	}
	params := core.Params{K: req.K, Tau: req.Tau}
	if req.Capacity != "" {
		// Portable families only: a client-supplied spec must never name
		// a file on the server.
		sched, err := capacity.ParsePortableSchedule(req.Capacity, req.K)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		params.Capacity = sched
	}
	if err := params.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rs, err := req.Trace.Resolve(s.cfg.MaxRequests)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key := JobKey(rs, req.Strategy, params, req.Seed)
	// Cache lookup with per-key singleflight: concurrent misses on one
	// key elect a leader that computes; followers wait for the flight
	// to finish and re-check the cache instead of duplicating the run.
	for {
		if v, ok := s.cache.get(key); ok {
			writeJSON(w, http.StatusOK, JobResponse{Key: key, Cached: true, Result: v})
			return
		}
		// While draining, refuse instead of joining (or leading) a
		// flight: drain must not park new requests behind in-flight
		// work. Cache hits above are still served.
		if !s.ready() {
			w.Header().Set("Retry-After", s.retryAfterHint())
			httpError(w, http.StatusServiceUnavailable, "%v", ErrDraining)
			return
		}
		leader, wait := s.cache.join(key)
		if leader {
			break
		}
		s.metrics.coalesced.Add(1)
		select {
		case <-wait:
			// Leader finished: loop to re-check the cache. On a leader
			// error the entry is still absent and this caller becomes
			// the next leader.
		case <-r.Context().Done():
			return
		}
	}
	defer s.cache.leave(key)
	start := time.Now()
	j := &job{
		rs:      rs,
		spec:    req.Strategy,
		params:  params,
		seed:    req.Seed,
		key:     key,
		ctx:     r.Context(),
		timeout: s.jobTimeout(req.TimeoutMS),
		res:     make(chan outcome, 1),
	}
	if err := s.submit(j); err != nil {
		switch {
		case errors.Is(err, ErrQueueFull):
			w.Header().Set("Retry-After", s.retryAfterHint())
			httpError(w, http.StatusTooManyRequests, "%v", err)
		case errors.Is(err, ErrDraining):
			w.Header().Set("Retry-After", s.retryAfterHint())
			httpError(w, http.StatusServiceUnavailable, "%v", err)
		default:
			httpError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	select {
	case out := <-j.res:
		s.finishJob(w, key, start, out)
	case <-r.Context().Done():
		// Client gone: the job's context aborts the run; the worker's
		// send lands in the buffered channel and the job is dropped.
		return
	}
}

// finishJob maps a worker outcome onto the HTTP response and the
// metrics counters, and feeds the result cache.
func (s *Server) finishJob(w http.ResponseWriter, key string, start time.Time, out outcome) {
	if out.err != nil {
		s.metrics.failed.Add(1)
		var be errBuild
		switch {
		case errors.As(out.err, &be):
			httpError(w, http.StatusUnprocessableEntity, "%v", out.err)
		case errors.Is(out.err, context.DeadlineExceeded):
			httpError(w, http.StatusGatewayTimeout, "%v", out.err)
		default:
			httpError(w, http.StatusInternalServerError, "%v", out.err)
		}
		return
	}
	elapsed := time.Since(start)
	s.metrics.completed.Add(1)
	s.metrics.observeLatency(elapsed)
	s.cache.put(key, out.result)
	writeJSON(w, http.StatusOK, JobResponse{
		Key:       key,
		Cached:    false,
		ElapsedMS: float64(elapsed.Microseconds()) / 1000,
		Result:    out.result,
	})
}

// handleSweep serves POST /v1/sweep: the K × τ × strategy grid fans out
// across the worker pool and results stream back as JSONL in
// deterministic K-major order (the same order internal/sweep uses).
// Cached points stream immediately; misses stream as the pool finishes
// them. Backpressure is the stream itself: submission into the bounded
// queue blocks, so a sweep never overruns the pool.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
	var req SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding sweep: %v", err)
		return
	}
	rs, err := req.Trace.Resolve(s.cfg.MaxRequests)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	grid := sweep.Grid{R: rs, Ks: req.Ks, Taus: req.Taus, Capacities: req.Capacities,
		Specs: req.Strategies, Seed: req.Seed, PortableOnly: true}
	if err := grid.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	type point struct {
		line SweepLine
		hit  *Result
		j    *job
	}
	var pts []*point
	for _, c := range grid.Cells() {
		pt := &point{line: SweepLine{K: c.K, Tau: c.Tau, Capacity: c.Capacity, Spec: c.Spec}}
		params := core.Params{K: c.K, Tau: c.Tau}
		if c.Capacity != "" {
			// Grid.Validate (PortableOnly) parsed every capacity × K pair
			// already; re-parse with the same restriction.
			sched, serr := capacity.ParsePortableSchedule(c.Capacity, c.K)
			if serr != nil {
				httpError(w, http.StatusBadRequest, "%v", serr)
				return
			}
			params.Capacity = sched
		}
		pt.line.Key = JobKey(rs, c.Spec, params, req.Seed)
		if v, ok := s.cache.get(pt.line.Key); ok {
			pt.hit = &v
		} else {
			pt.j = &job{
				rs:      rs,
				spec:    c.Spec,
				params:  params,
				seed:    req.Seed,
				key:     pt.line.Key,
				ctx:     r.Context(),
				timeout: s.cfg.JobTimeout,
				res:     make(chan outcome, 1),
			}
		}
		pts = append(pts, pt)
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	// Feed the pool in grid order; a submission failure becomes the
	// point's outcome so the streaming loop below reports it in place.
	go func() {
		for _, pt := range pts {
			if pt.j == nil {
				continue
			}
			if err := s.submitWait(r.Context(), pt.j); err != nil {
				pt.j.res <- outcome{err: err}
			}
		}
	}()

	for _, pt := range pts {
		line := pt.line
		switch {
		case pt.hit != nil:
			line.Cached = true
			line.Result = pt.hit
		default:
			out := <-pt.j.res
			if out.err != nil {
				if !errors.Is(out.err, ErrDraining) && !errors.Is(out.err, context.Canceled) {
					s.metrics.failed.Add(1)
				}
				line.Error = out.err.Error()
			} else {
				s.metrics.completed.Add(1)
				s.cache.put(line.Key, out.result)
				res := out.result
				line.Result = &res
			}
		}
		if err := enc.Encode(line); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}
