package server

import (
	"sync"

	"mcpaging/internal/cache"
	"mcpaging/internal/core"
)

// resultCache is the content-addressed result cache: canonical job key
// → Result. Eviction order is delegated — fittingly — to one of our own
// paging policies: an internal/cache LRU whose "pages" are small dense
// handles allocated per entry and recycled on eviction, so the policy's
// intrusive array stays proportional to the entry budget.
type resultCache struct {
	mu      sync.Mutex
	budget  int
	lru     *cache.LRU
	byKey   map[string]core.PageID
	entries map[core.PageID]cacheEntry
	free    []core.PageID
	next    core.PageID

	// inflight is the per-key singleflight table: while a leader
	// computes a key, concurrent misses on the same key wait on its
	// flight instead of duplicating the simulation (stampede control).
	inflight map[string]chan struct{}

	hits, misses int64
}

type cacheEntry struct {
	key string
	val Result
}

// newResultCache returns a cache bounded to budget entries; a budget of
// 0 disables caching (every lookup misses, every store is dropped).
func newResultCache(budget int) *resultCache {
	c := &resultCache{budget: budget, inflight: make(map[string]chan struct{})}
	if budget > 0 {
		c.lru = cache.NewLRU()
		c.byKey = make(map[string]core.PageID, budget)
		c.entries = make(map[core.PageID]cacheEntry, budget)
	}
	return c
}

// join registers interest in computing key. The first caller per key is
// the leader (leader == true) and must call leave(key) when its flight
// is over — after the result has been stored via put, on whatever path
// it exits. Other callers get leader == false and a channel that is
// closed when the current flight ends; they should then re-check the
// cache (a hit on success, a miss — and leadership — when the leader
// failed). With caching disabled there is nothing to share, so every
// caller leads and computes independently, as before.
func (c *resultCache) join(key string) (leader bool, wait <-chan struct{}) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.budget <= 0 {
		return true, nil
	}
	if ch, ok := c.inflight[key]; ok {
		return false, ch
	}
	ch := make(chan struct{})
	c.inflight[key] = ch
	return true, ch
}

// leave ends key's flight, waking every waiter.
func (c *resultCache) leave(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ch, ok := c.inflight[key]; ok {
		delete(c.inflight, key)
		close(ch)
	}
}

// get returns the cached result for key, refreshing its recency.
func (c *resultCache) get(key string) (Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.budget <= 0 {
		c.misses++
		return Result{}, false
	}
	id, ok := c.byKey[key]
	if !ok {
		c.misses++
		return Result{}, false
	}
	c.hits++
	c.lru.Touch(id, cache.Access{})
	return c.entries[id].val, true
}

// put stores a result, evicting the least recently used entry when the
// budget is exceeded. Storing an existing key refreshes its recency and
// keeps the first value (results are content-addressed, so values for
// one key never differ).
func (c *resultCache) put(key string, val Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.budget <= 0 {
		return
	}
	if id, ok := c.byKey[key]; ok {
		c.lru.Touch(id, cache.Access{})
		return
	}
	if c.lru.Len() >= c.budget {
		victim, ok := c.lru.Evict(nil)
		if ok {
			delete(c.byKey, c.entries[victim].key)
			delete(c.entries, victim)
			c.free = append(c.free, victim)
		}
	}
	var id core.PageID
	if n := len(c.free); n > 0 {
		id = c.free[n-1]
		c.free = c.free[:n-1]
	} else {
		id = c.next
		c.next++
	}
	c.lru.Insert(id, cache.Access{})
	c.byKey[key] = id
	c.entries[id] = cacheEntry{key: key, val: val}
}

// stats returns the hit/miss counters and current entry count.
func (c *resultCache) stats() (hits, misses int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.lru != nil {
		entries = c.lru.Len()
	}
	return c.hits, c.misses, entries
}
