package multiapp_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mcpaging/internal/cache"
	"mcpaging/internal/core"
	"mcpaging/internal/multiapp"
	"mcpaging/internal/offline"
	"mcpaging/internal/policy"
	"mcpaging/internal/sim"
)

func lru() cache.Factory { return func() cache.Policy { return cache.NewLRU() } }

func randomDisjoint(rng *rand.Rand, p, maxLen, pages int) core.RequestSet {
	rs := make(core.RequestSet, p)
	for j := range rs {
		n := 1 + rng.Intn(maxLen)
		s := make(core.Sequence, n)
		for i := range s {
			s[i] = core.PageID(100*j + rng.Intn(pages))
		}
		rs[j] = s
	}
	return rs
}

func TestInterleaveRoundRobin(t *testing.T) {
	rs := core.RequestSet{{1, 2, 3}, {4}, {5, 6}}
	got := multiapp.Interleave(rs)
	want := []multiapp.Request{
		{0, 1}, {1, 4}, {2, 5}, {0, 2}, {2, 6}, {0, 3},
	}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("at %d: %v != %v", i, got[i], want[i])
		}
	}
}

// TestEquivalenceWithPaperModelAtTauZero: at τ=0 the paper model's
// shared LRU produces exactly the multiapplication model's LRU fault
// counts on the round-robin interleaving — faults cannot re-align
// sequences without a delay.
func TestEquivalenceWithPaperModelAtTauZero(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + rng.Intn(4)
		k := p + rng.Intn(8) // K ≥ p: with K < p simultaneous fetches can exhaust the cache
		rs := randomDisjoint(rng, p, 40, 6)
		in := core.Instance{R: rs, P: core.Params{K: k, Tau: 0}}
		simRes, err := sim.Run(in, policy.NewShared(lru()), nil)
		if err != nil {
			return false
		}
		maRes, err := multiapp.ServeLRU(multiapp.Interleave(rs), p, k)
		if err != nil {
			return false
		}
		for j := 0; j < p; j++ {
			if simRes.Faults[j] != maRes.Faults[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestOPTBoundsExactDPAtTauZero: Belady on the interleaving lower-bounds
// the exact (logical-order) FTF optimum at τ=0. They differ only through
// the model's in-flight rule: the interleaving model may evict a page
// fetched earlier in the same round, which the paper's model forbids
// (the cell is busy during the fetch step even at τ=0). The pinned
// Algorithm 1 sits at or above both.
func TestOPTBoundsExactDPAtTauZero(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 60; trial++ {
		p := 1 + rng.Intn(2)
		k := p + rng.Intn(2)
		rs := randomDisjoint(rng, p, 5, 3)
		in := core.Instance{R: rs, P: core.Params{K: k, Tau: 0}}
		sol, err := offline.SolveFTFSeq(in, offline.Options{})
		if err != nil {
			t.Fatal(err)
		}
		maRes, err := multiapp.ServeOPT(multiapp.Interleave(rs), p, k)
		if err != nil {
			t.Fatal(err)
		}
		if maRes.TotalFaults() > sol.Faults {
			t.Fatalf("trial %d: Belady-on-interleaving %d above exact DP %d (R=%v K=%d)",
				trial, maRes.TotalFaults(), sol.Faults, rs, k)
		}
		pinned, err := offline.SolveFTF(in, offline.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if pinned.Faults < sol.Faults {
			t.Fatalf("trial %d: pinned DP %d below exact optimum %d", trial, pinned.Faults, sol.Faults)
		}
	}
}

// TestSharedFITFOptimalAtTauZero verifies the paper's observation that
// FTF is solvable by FITF when τ=0 *within the model*: the online-style
// shared FITF strategy (which respects the in-flight rule) achieves the
// exact optimum on every sampled instance.
func TestSharedFITFOptimalAtTauZero(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 60; trial++ {
		p := 1 + rng.Intn(2)
		k := p + rng.Intn(2)
		rs := randomDisjoint(rng, p, 5, 3)
		in := core.Instance{R: rs, P: core.Params{K: k, Tau: 0}}
		sol, err := offline.SolveFTFSeq(in, offline.Options{})
		if err != nil {
			t.Fatal(err)
		}
		fitf, err := sim.Run(in, policy.NewShared(func() cache.Policy { return cache.NewFITF() }), nil)
		if err != nil {
			t.Fatal(err)
		}
		if fitf.TotalFaults() != sol.Faults {
			t.Fatalf("trial %d: S_FITF %d != exact optimum %d (R=%v K=%d)",
				trial, fitf.TotalFaults(), sol.Faults, rs, k)
		}
	}
}

func TestOPTNeverWorseThanLRU(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + rng.Intn(3)
		k := 1 + rng.Intn(6)
		rs := randomDisjoint(rng, p, 60, 5)
		reqs := multiapp.Interleave(rs)
		lruRes, err1 := multiapp.ServeLRU(reqs, p, k)
		optRes, err2 := multiapp.ServeOPT(reqs, p, k)
		return err1 == nil && err2 == nil && optRes.TotalFaults() <= lruRes.TotalFaults()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPartitionedMatchesPerAppLRU: partitioned service decomposes into
// independent per-application LRU caches.
func TestPartitionedMatchesPerAppLRU(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + rng.Intn(3)
		rs := randomDisjoint(rng, p, 50, 5)
		sizes := make([]int, p)
		for j := range sizes {
			sizes[j] = 1 + rng.Intn(4)
		}
		res, err := multiapp.ServePartitioned(multiapp.Interleave(rs), sizes)
		if err != nil {
			return false
		}
		for j := range rs {
			solo, err := multiapp.ServeLRU(multiapp.Interleave(core.RequestSet{rs[j]}), 1, sizes[j])
			if err != nil || solo.Faults[0] != res.Faults[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestServeValidation(t *testing.T) {
	if _, err := multiapp.ServeLRU(nil, 1, 0); err == nil {
		t.Error("k=0 should fail")
	}
	bad := []multiapp.Request{{App: 5, Page: 1}}
	if _, err := multiapp.ServeLRU(bad, 2, 2); err == nil {
		t.Error("out-of-range app should fail")
	}
	if _, err := multiapp.ServeOPT(bad, 2, 2); err == nil {
		t.Error("out-of-range app should fail (OPT)")
	}
	if _, err := multiapp.ServePartitioned(bad, []int{1, 1}); err == nil {
		t.Error("out-of-range app should fail (partitioned)")
	}
	if _, err := multiapp.ServePartitioned(nil, []int{0}); err == nil {
		t.Error("zero part should fail")
	}
}
