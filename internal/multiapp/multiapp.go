// Package multiapp implements the multiapplication caching model of
// Barve, Grove and Vitter (SIAM J. Comput. 2000), the second comparison
// model the paper discusses: several applications share one cache, but
// the interleaving of their requests is *fixed in advance* and identical
// for every algorithm — faults do not shift the schedule.
//
// The connection to the paper's model is exact at τ = 0: with no fetch
// delay, faults cannot re-align the sequences, every core issues one
// request per timestep, and the paper model's logical service order is
// precisely the round-robin interleaving. The tests verify that
// equivalence request by request, and that Belady's algorithm on the
// interleaving matches Algorithm 1's optimum at τ = 0 — the paper's
// observation that FTF is FITF-solvable when τ = 0, and that PIF is the
// problem that *stays* NP-complete there.
package multiapp

import (
	"container/list"
	"fmt"
	"math"

	"mcpaging/internal/core"
)

// Request is one tagged request in the fixed interleaving.
type Request struct {
	App  int
	Page core.PageID
}

// Interleave flattens a request set into the round-robin interleaving
// used throughout the package.
func Interleave(r core.RequestSet) []Request {
	out := make([]Request, 0, r.TotalLen())
	idx := make([]int, len(r))
	for {
		progressed := false
		for j, s := range r {
			if idx[j] < len(s) {
				out = append(out, Request{App: j, Page: s[idx[j]]})
				idx[j]++
				progressed = true
			}
		}
		if !progressed {
			return out
		}
	}
}

// Result holds per-application fault counts.
type Result struct {
	Faults []int64
}

// TotalFaults sums per-application faults.
func (r Result) TotalFaults() int64 {
	var s int64
	for _, f := range r.Faults {
		s += f
	}
	return s
}

// ServeLRU serves the interleaving with one shared LRU cache of k pages.
func ServeLRU(reqs []Request, apps, k int) (Result, error) {
	if k < 1 {
		return Result{}, fmt.Errorf("multiapp: k=%d", k)
	}
	res := Result{Faults: make([]int64, apps)}
	ll := list.New() // front = LRU
	pos := make(map[core.PageID]*list.Element)
	for _, rq := range reqs {
		if rq.App < 0 || rq.App >= apps {
			return Result{}, fmt.Errorf("multiapp: app %d out of range", rq.App)
		}
		if e, ok := pos[rq.Page]; ok {
			ll.MoveToBack(e)
			continue
		}
		res.Faults[rq.App]++
		if ll.Len() >= k {
			front := ll.Front()
			delete(pos, front.Value.(core.PageID))
			ll.Remove(front)
		}
		pos[rq.Page] = ll.PushBack(rq.Page)
	}
	return res, nil
}

// ServeOPT serves the interleaving with Belady's algorithm (evict the
// page whose next request in the interleaving is furthest), which is
// fault-optimal in this model.
func ServeOPT(reqs []Request, apps, k int) (Result, error) {
	if k < 1 {
		return Result{}, fmt.Errorf("multiapp: k=%d", k)
	}
	res := Result{Faults: make([]int64, apps)}
	n := len(reqs)
	next := make([]int64, n)
	last := make(map[core.PageID]int)
	for i := n - 1; i >= 0; i-- {
		if j, ok := last[reqs[i].Page]; ok {
			next[i] = int64(j)
		} else {
			next[i] = math.MaxInt64
		}
		last[reqs[i].Page] = i
	}
	inCache := make(map[core.PageID]int64) // page → next use
	for i, rq := range reqs {
		if rq.App < 0 || rq.App >= apps {
			return Result{}, fmt.Errorf("multiapp: app %d out of range", rq.App)
		}
		if _, ok := inCache[rq.Page]; ok {
			inCache[rq.Page] = next[i]
			continue
		}
		res.Faults[rq.App]++
		if len(inCache) >= k {
			victim, best := core.NoPage, int64(-1)
			for q, nu := range inCache {
				if nu > best || (nu == best && (victim == core.NoPage || q < victim)) {
					victim, best = q, nu
				}
			}
			delete(inCache, victim)
		}
		inCache[rq.Page] = next[i]
	}
	return res, nil
}

// ServePartitioned serves the interleaving with per-application LRU
// parts of the given sizes (the application-controlled regime Barve et
// al. analyse).
func ServePartitioned(reqs []Request, sizes []int) (Result, error) {
	res := Result{Faults: make([]int64, len(sizes))}
	type part struct {
		ll  *list.List
		pos map[core.PageID]*list.Element
	}
	parts := make([]part, len(sizes))
	for i, s := range sizes {
		if s < 1 {
			return Result{}, fmt.Errorf("multiapp: part %d size %d", i, s)
		}
		parts[i] = part{ll: list.New(), pos: make(map[core.PageID]*list.Element)}
	}
	for _, rq := range reqs {
		if rq.App < 0 || rq.App >= len(sizes) {
			return Result{}, fmt.Errorf("multiapp: app %d out of range", rq.App)
		}
		pt := &parts[rq.App]
		if e, ok := pt.pos[rq.Page]; ok {
			pt.ll.MoveToBack(e)
			continue
		}
		res.Faults[rq.App]++
		if pt.ll.Len() >= sizes[rq.App] {
			front := pt.ll.Front()
			delete(pt.pos, front.Value.(core.PageID))
			pt.ll.Remove(front)
		}
		pt.pos[rq.Page] = pt.ll.PushBack(rq.Page)
	}
	return res, nil
}
