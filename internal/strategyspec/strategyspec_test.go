package strategyspec_test

import (
	"strings"
	"testing"

	"mcpaging/internal/core"
	"mcpaging/internal/sim"
	"mcpaging/internal/strategyspec"
)

func testSet() core.RequestSet {
	return core.RequestSet{
		{1, 2, 3, 1, 2, 3, 1, 2},
		{100, 101, 100, 101, 100},
	}
}

func TestBuildPortfolio(t *testing.T) {
	rs := testSet()
	in := core.Instance{R: rs, P: core.Params{K: 4, Tau: 1}}
	for _, spec := range strategyspec.Portfolio() {
		s, err := strategyspec.Build(spec, rs, 4, 1)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		res, err := sim.Run(in, s, nil)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if res.TotalFaults()+res.TotalHits() != int64(rs.TotalLen()) {
			t.Fatalf("%s: accounting broken", spec)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	rs := testSet()
	cases := []string{
		"",
		"LRU",
		"S(LRU",
		"S(NOPE)",
		"xx(LRU)",
		"dP[nope](LRU)",
		"sP[even](FWF)", // FWF exists only in the shared family
	}
	for _, spec := range cases {
		if _, err := strategyspec.Build(spec, rs, 4, 1); err == nil {
			t.Errorf("%q should fail", spec)
		}
	}
}

func TestBuildErrorsEnumerateValidSets(t *testing.T) {
	rs := testSet()
	_, err := strategyspec.Build("xx(LRU)", rs, 4, 1)
	if err == nil || !strings.Contains(err.Error(), "dP[ucp]") {
		t.Fatalf("unknown-family error should list valid families, got %v", err)
	}
	_, err = strategyspec.Build("dP(NOPE)", rs, 4, 1)
	if err == nil || !strings.Contains(err.Error(), "TINYLFU") {
		t.Fatalf("unknown-policy error should list valid policies, got %v", err)
	}
}

// TestDynamicControllersComposeWithPolicies is the acceptance check of
// the composed strategy layer: every dynamic controller builds and runs
// with a representative policy spread, not just LRU.
func TestDynamicControllersComposeWithPolicies(t *testing.T) {
	rs := testSet()
	in := core.Instance{R: rs, P: core.Params{K: 4, Tau: 1}}
	for _, fam := range []string{"dP", "dP[lru-global]", "dP[fair]", "dP[ucp]"} {
		for _, pol := range []string{"LRU", "FIFO", "MARK", "ARC"} {
			spec := fam + "(" + pol + ")"
			s, err := strategyspec.Build(spec, rs, 4, 1)
			if err != nil {
				t.Fatalf("%s: %v", spec, err)
			}
			res, err := sim.Run(in, s, nil)
			if err != nil {
				t.Fatalf("%s: %v", spec, err)
			}
			if res.TotalFaults()+res.TotalHits() != int64(rs.TotalLen()) {
				t.Fatalf("%s: accounting broken", spec)
			}
		}
	}
}

func TestBuildTrimsWhitespace(t *testing.T) {
	if _, err := strategyspec.Build("  S(LRU)  ", testSet(), 4, 1); err != nil {
		t.Fatal(err)
	}
}

func TestListAllBuildAndRun(t *testing.T) {
	rs := testSet()
	in := core.Instance{R: rs, P: core.Params{K: 4, Tau: 1}}
	combos := strategyspec.List()
	if len(combos) == 0 {
		t.Fatal("empty listing")
	}
	seen := map[string]bool{}
	for _, c := range combos {
		if seen[c.Spec] {
			t.Fatalf("duplicate spec %q", c.Spec)
		}
		seen[c.Spec] = true
		if c.Spec != c.Family+"("+c.Policy+")" {
			t.Fatalf("spec %q does not match family %q / policy %q", c.Spec, c.Family, c.Policy)
		}
		if c.Desc == "" {
			t.Fatalf("%s: empty description", c.Spec)
		}
		s, err := strategyspec.Build(c.Spec, rs, 4, 1)
		if err != nil {
			t.Fatalf("%s: %v", c.Spec, err)
		}
		if _, err := sim.Run(in, s, nil); err != nil {
			t.Fatalf("%s: %v", c.Spec, err)
		}
	}
	// The listing must subsume the -all portfolio.
	for _, spec := range strategyspec.Portfolio() {
		if !seen[spec] {
			t.Errorf("portfolio spec %q missing from List", spec)
		}
	}
}

func TestBuildOptPartitionUsesWorkload(t *testing.T) {
	// sP[opt] must produce a strategy whose name embeds a partition that
	// depends on the request set.
	rs := testSet()
	s, err := strategyspec.Build("sP[opt](LRU)", rs, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(s.Name(), "sP[") {
		t.Fatalf("unexpected name %q", s.Name())
	}
}
