package strategyspec_test

import (
	"testing"

	"mcpaging/internal/core"
	"mcpaging/internal/sim"
	"mcpaging/internal/strategyspec"
)

// FuzzBuild drives the spec parser with arbitrary strings: malformed
// specs must come back as errors, never as panics, and anything that
// does parse must produce a strategy that survives a small simulation.
// The server feeds Build directly from request bodies, so this is its
// input-hardening test.
func FuzzBuild(f *testing.F) {
	for _, spec := range strategyspec.Portfolio() {
		f.Add(spec)
	}
	for _, c := range strategyspec.List() {
		f.Add(c.Spec)
	}
	for _, spec := range []string{
		"", "S", "(", ")", "()", "S(", "S)", "S()",
		"S(LRU", "S(LRU))", "S((LRU))", "s(lru)",
		"sP[", "sP[]()", "sP[even]", "sP[opt]()",
		"dP[ucp](FIFO)", "dP[nope](LRU)", "dP(LRU)x",
		"dP[ucp](ARC)", "dP[fair](TINYLFU)", "dP[lru-global](MARK)",
		"dP[LRU-GLOBAL](LRU)", "dP[fair/64](LRU)", "dP[](LRU)",
		"  S(LRU)  ", "S(LRU)\n", "S(日本語)", "\x00(\x00)",
	} {
		f.Add(spec)
	}
	rs := core.RequestSet{
		{1, 2, 3, 1, 2, 3},
		{10, 11, 10, 11},
	}
	in := core.Instance{R: rs, P: core.Params{K: 4, Tau: 1}}
	f.Fuzz(func(t *testing.T, spec string) {
		s, err := strategyspec.Build(spec, rs, 4, 1)
		if err != nil {
			return
		}
		if s.Name() == "" {
			t.Fatalf("spec %q built a strategy with an empty name", spec)
		}
		if _, err := sim.Run(in, s, nil); err != nil {
			t.Fatalf("spec %q built but failed to run: %v", spec, err)
		}
	})
}
