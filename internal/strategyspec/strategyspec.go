// Package strategyspec parses the strategy mini-language shared by the
// command-line tools and the server:
//
//	S(<policy>)                 shared cache, e.g. S(LRU), S(ARC)
//	sP[even](<policy>)          static partition, K split evenly
//	sP[opt](<policy>)           offline-optimal static partition (LRU
//	                            curves, or Belady curves for FITF)
//	dP[<controller>](<policy>)  dynamic partition: controller × policy
//	eP[<controller>](<policy>)  elastic partition: the same controllers,
//	                            named for runs under a capacity schedule
//
// Partition controllers and eviction policies are orthogonal: every
// dynamic controller composes with every policy, so dP[ucp](ARC) and
// dP[fair](TINYLFU) are as valid as the classic dP(LRU). The dynamic
// controllers are dP (the Lemma 3 global-LRU donor rule, also written
// dP[lru-global]), dP[fair] (FairShare) and dP[ucp] (utility-based
// cache partitioning). Policies are the names accepted by
// cache.NewFactory, plus FWF in the shared family.
//
// The eP family is the elastic-capacity axis of the grammar: eP[even],
// eP[fair], eP[ucp] and eP (alias eP[lru-global]) build the same
// controller × policy compositions as their sP/dP counterparts but
// carry the elastic label, marking rows meant to run under a
// `-capacity` schedule (every controller re-derives its quota on a
// capacity announcement, so under a constant schedule the eP strategy
// is step-for-step identical to its namesake).
//
// The registry below is the single source of truth for the grammar:
// Build, List and Portfolio all derive from it, as do `mcsim
// -list-strategies`, the server's GET /strategies and the sweep
// portfolios built on top.
package strategyspec

import (
	"fmt"
	"slices"
	"strings"

	"mcpaging/internal/cache"
	"mcpaging/internal/core"
	"mcpaging/internal/mattson"
	"mcpaging/internal/policy"
	"mcpaging/internal/sim"
)

// familyRow is one registry entry: a partition family, the policies it
// accepts, its share of the standard portfolio, and its constructor.
type familyRow struct {
	family string
	desc   string
	// policies returns the accepted policy names, in listing order.
	policies func() []string
	// portfolio and portfolioOffline are the family's contributions to
	// Portfolio(): the online pass and the offline tail.
	portfolio        []string
	portfolioOffline []string
	build            func(pol string, rs core.RequestSet, k int, seed int64) (sim.Strategy, error)
}

// allPolicies is the policy set of the partitioned families.
func allPolicies() []string { return cache.PolicyNames() }

// sharedPolicies adds FWF, which lives at the strategy level (it needs
// voluntary evictions) and only exists in the shared family.
func sharedPolicies() []string { return append(cache.PolicyNames(), "FWF") }

// families is the strategy registry, in listing order.
var families = []familyRow{
	{
		family:           "S",
		desc:             "shared cache, global eviction",
		policies:         sharedPolicies,
		portfolio:        []string{"LRU", "FIFO", "CLOCK", "LFU", "MARK", "RMARK", "FWF", "ARC", "SLRU", "LRU2", "TINYLFU"},
		portfolioOffline: []string{"FITF"},
		build: func(pol string, _ core.RequestSet, _ int, seed int64) (sim.Strategy, error) {
			if pol == "FWF" {
				return policy.NewFWF(), nil
			}
			mk, err := cache.NewFactory(pol, seed)
			if err != nil {
				return nil, err
			}
			return policy.NewShared(mk), nil
		},
	},
	{
		family:    "sP[even]",
		desc:      "static partition, K split evenly across cores",
		policies:  allPolicies,
		portfolio: []string{"LRU"},
		build: func(pol string, rs core.RequestSet, k int, seed int64) (sim.Strategy, error) {
			mk, err := cache.NewFactory(pol, seed)
			if err != nil {
				return nil, err
			}
			return policy.NewStatic(policy.EvenSizes(k, rs.NumCores()), mk), nil
		},
	},
	{
		family:           "sP[opt]",
		desc:             "offline-optimal static partition from miss curves",
		policies:         allPolicies,
		portfolio:        []string{"LRU"},
		portfolioOffline: []string{"FITF"},
		build: func(pol string, rs core.RequestSet, k int, seed int64) (sim.Strategy, error) {
			mk, err := cache.NewFactory(pol, seed)
			if err != nil {
				return nil, err
			}
			var part mattson.Partition
			if pol == "FITF" {
				part, err = mattson.OptimalOPT(rs, k)
			} else {
				part, err = mattson.OptimalLRU(rs, k)
			}
			if err != nil {
				return nil, err
			}
			return policy.NewStatic(part.Sizes, mk), nil
		},
	},
	{
		family:    "dP",
		desc:      "dynamic partition, Lemma 3 global-LRU donor rule",
		policies:  allPolicies,
		portfolio: []string{"LRU"},
		build: func(pol string, _ core.RequestSet, _ int, seed int64) (sim.Strategy, error) {
			mk, err := cache.NewFactory(pol, seed)
			if err != nil {
				return nil, err
			}
			return policy.NewPartitioned(policy.GlobalLRUController(), mk), nil
		},
	},
	{
		family:    "dP[fair]",
		desc:      "dynamic partition, FairShare fault-balancing controller",
		policies:  allPolicies,
		portfolio: []string{"LRU"},
		build: func(pol string, _ core.RequestSet, _ int, seed int64) (sim.Strategy, error) {
			mk, err := cache.NewFactory(pol, seed)
			if err != nil {
				return nil, err
			}
			return policy.NewPartitioned(policy.FairController(0), mk), nil
		},
	},
	{
		family:    "dP[ucp]",
		desc:      "dynamic partition, utility-based (UCP) controller",
		policies:  allPolicies,
		portfolio: []string{"LRU"},
		build: func(pol string, _ core.RequestSet, _ int, seed int64) (sim.Strategy, error) {
			mk, err := cache.NewFactory(pol, seed)
			if err != nil {
				return nil, err
			}
			return policy.NewPartitioned(policy.UCPController(0), mk), nil
		},
	},
	{
		family:   "eP",
		desc:     "elastic partition, global-LRU donor under K(t)",
		policies: allPolicies,
		build: func(pol string, _ core.RequestSet, _ int, seed int64) (sim.Strategy, error) {
			return buildElastic("eP[lru-global]", policy.GlobalLRUController(), pol, seed)
		},
	},
	{
		family:   "eP[even]",
		desc:     "elastic partition, even split rescaled with K(t)",
		policies: allPolicies,
		build: func(pol string, rs core.RequestSet, k int, seed int64) (sim.Strategy, error) {
			ctrl := policy.StaticController(policy.EvenSizes(k, rs.NumCores()))
			return buildElastic("eP[even]", ctrl, pol, seed)
		},
	},
	{
		family:   "eP[fair]",
		desc:     "elastic partition, FairShare quota rescaled with K(t)",
		policies: allPolicies,
		build: func(pol string, _ core.RequestSet, _ int, seed int64) (sim.Strategy, error) {
			return buildElastic("eP[fair]", policy.FairController(0), pol, seed)
		},
	},
	{
		family:   "eP[ucp]",
		desc:     "elastic partition, UCP reallocation over K(t) cells",
		policies: allPolicies,
		build: func(pol string, _ core.RequestSet, _ int, seed int64) (sim.Strategy, error) {
			return buildElastic("eP[ucp]", policy.UCPController(0), pol, seed)
		},
	},
}

// elasticController relabels a partition controller with its eP-family
// name; behaviour is untouched (elasticity lives in the engine and in
// the controllers' own Capacity hooks).
type elasticController struct {
	policy.Controller
	label string
}

func (c elasticController) Name() string { return c.label }

// buildElastic composes an eP row: the wrapped controller over the
// named eviction policy.
func buildElastic(label string, ctrl policy.Controller, pol string, seed int64) (sim.Strategy, error) {
	mk, err := cache.NewFactory(pol, seed)
	if err != nil {
		return nil, err
	}
	return policy.NewPartitioned(elasticController{ctrl, label}, mk), nil
}

// familyAliases maps accepted alternate spellings to registry families.
var familyAliases = map[string]string{
	"dP[lru-global]": "dP",
	"eP[lru-global]": "eP",
}

// familyByName resolves a family head, following aliases.
func familyByName(head string) *familyRow {
	if canon, ok := familyAliases[head]; ok {
		head = canon
	}
	for i := range families {
		if families[i].family == head {
			return &families[i]
		}
	}
	return nil
}

// FamilyNames lists the registry families in listing order.
func FamilyNames() []string {
	out := make([]string, len(families))
	for i := range families {
		out[i] = families[i].family
	}
	return out
}

// Build parses a spec and constructs the strategy for the given request
// set and cache size. The request set is needed because sP[opt] computes
// its partition from the workload's miss curves; seed drives RAND and
// RMARK.
func Build(spec string, rs core.RequestSet, k int, seed int64) (sim.Strategy, error) {
	spec = strings.TrimSpace(spec)
	open := strings.Index(spec, "(")
	if open < 0 || !strings.HasSuffix(spec, ")") {
		return nil, fmt.Errorf("strategyspec: bad spec %q (want family(policy), e.g. S(LRU) or dP[ucp](ARC))", spec)
	}
	head, pol := spec[:open], spec[open+1:len(spec)-1]
	row := familyByName(head)
	if row == nil {
		return nil, fmt.Errorf("strategyspec: unknown family %q (valid: %s)",
			head, strings.Join(FamilyNames(), ", "))
	}
	if !slices.Contains(row.policies(), pol) {
		return nil, fmt.Errorf("strategyspec: family %s does not accept policy %q (valid: %s)",
			row.family, pol, strings.Join(row.policies(), ", "))
	}
	return row.build(pol, rs, k, seed)
}

// Combo is one buildable strategy spec, with its family and policy
// split out and a one-line description of the family's semantics. It is
// the unit of List, consumed by `mcsim -list-strategies` and the
// server's GET /strategies endpoint.
type Combo struct {
	Spec   string `json:"spec"`
	Family string `json:"family"`
	Policy string `json:"policy"`
	Desc   string `json:"desc"`
}

// List enumerates every family/policy combination Build accepts, in a
// stable order (registry order, policies in each family's listing
// order). Every returned spec is guaranteed to construct: the
// round-trip is covered by tests and FuzzBuild seeds.
func List() []Combo {
	var out []Combo
	for i := range families {
		f := &families[i]
		for _, p := range f.policies() {
			out = append(out, Combo{
				Spec:   f.family + "(" + p + ")",
				Family: f.family,
				Policy: p,
				Desc:   f.desc,
			})
		}
	}
	return out
}

// Portfolio returns the standard strategy portfolio run by `mcsim -all`:
// each family's online picks in registry order, then the offline tail
// (FITF-based strategies, which need future knowledge).
func Portfolio() []string {
	var out []string
	for i := range families {
		for _, p := range families[i].portfolio {
			out = append(out, families[i].family+"("+p+")")
		}
	}
	for i := range families {
		for _, p := range families[i].portfolioOffline {
			out = append(out, families[i].family+"("+p+")")
		}
	}
	return out
}
