// Package strategyspec parses the strategy mini-language shared by the
// command-line tools:
//
//	S(<policy>)           shared cache, e.g. S(LRU), S(ARC)
//	sP[even](<policy>)    static partition, K split evenly
//	sP[opt](<policy>)     offline-optimal static partition (LRU curves,
//	                      or Belady curves when the policy is FITF)
//	dP(LRU)               the Lemma 3 global-LRU dynamic partition
//	dP[fair](LRU)         the FairShare fairness-oriented partition
//	dP[ucp](LRU)          utility-based cache partitioning
//
// Policies are the names accepted by cache.NewFactory.
package strategyspec

import (
	"fmt"
	"strings"

	"mcpaging/internal/cache"
	"mcpaging/internal/core"
	"mcpaging/internal/mattson"
	"mcpaging/internal/policy"
	"mcpaging/internal/sim"
)

// Build parses a spec and constructs the strategy for the given request
// set and cache size. The request set is needed because sP[opt] computes
// its partition from the workload's miss curves; seed drives RAND.
func Build(spec string, rs core.RequestSet, k int, seed int64) (sim.Strategy, error) {
	spec = strings.TrimSpace(spec)
	open := strings.Index(spec, "(")
	if open < 0 || !strings.HasSuffix(spec, ")") {
		return nil, fmt.Errorf("strategyspec: bad spec %q (want family(policy))", spec)
	}
	head, pol := spec[:open], spec[open+1:len(spec)-1]
	if head == "S" && pol == "FWF" {
		// Flush-when-full lives at the strategy level (it needs
		// voluntary evictions), not in the policy registry.
		return policy.NewFWF(), nil
	}
	mk, err := cache.NewFactory(pol, seed)
	if err != nil {
		return nil, err
	}
	switch head {
	case "S":
		return policy.NewShared(mk), nil
	case "sP[even]":
		return policy.NewStatic(policy.EvenSizes(k, rs.NumCores()), mk), nil
	case "sP[opt]":
		var part mattson.Partition
		if pol == "FITF" {
			part, err = mattson.OptimalOPT(rs, k)
		} else {
			part, err = mattson.OptimalLRU(rs, k)
		}
		if err != nil {
			return nil, err
		}
		return policy.NewStatic(part.Sizes, mk), nil
	case "dP":
		if pol != "LRU" {
			return nil, fmt.Errorf("strategyspec: dP supports only LRU, got %q", pol)
		}
		return policy.NewDynamicLRU(), nil
	case "dP[fair]":
		if pol != "LRU" {
			return nil, fmt.Errorf("strategyspec: dP[fair] supports only LRU, got %q", pol)
		}
		return policy.NewFairShare(0), nil
	case "dP[ucp]":
		if pol != "LRU" {
			return nil, fmt.Errorf("strategyspec: dP[ucp] supports only LRU, got %q", pol)
		}
		return policy.NewUCP(0), nil
	}
	return nil, fmt.Errorf("strategyspec: unknown family %q", head)
}

// Combo is one buildable strategy spec, with its family and policy
// split out and a one-line description of the family's semantics. It is
// the unit of List, consumed by `mcsim -list-strategies` and the
// server's GET /strategies endpoint.
type Combo struct {
	Spec   string `json:"spec"`
	Family string `json:"family"`
	Policy string `json:"policy"`
	Desc   string `json:"desc"`
}

// familyDescs describes each spec family, in listing order.
var familyDescs = []struct{ family, desc string }{
	{"S", "shared cache, global eviction"},
	{"sP[even]", "static partition, K split evenly across cores"},
	{"sP[opt]", "offline-optimal static partition from miss curves"},
	{"dP", "Lemma 3 global-LRU dynamic partition"},
	{"dP[fair]", "FairShare fairness-oriented dynamic partition"},
	{"dP[ucp]", "utility-based cache partitioning"},
}

// List enumerates every family/policy combination Build accepts, in a
// stable order (family-major, policies in cache.PolicyNames order).
// Every returned spec is guaranteed to construct: the round-trip is
// covered by tests and FuzzBuild seeds.
func List() []Combo {
	var out []Combo
	for _, fd := range familyDescs {
		var pols []string
		switch fd.family {
		case "S":
			pols = append(cache.PolicyNames(), "FWF")
		case "sP[even]", "sP[opt]":
			pols = cache.PolicyNames()
		default: // the dynamic partitions are LRU-only
			pols = []string{"LRU"}
		}
		for _, p := range pols {
			out = append(out, Combo{
				Spec:   fd.family + "(" + p + ")",
				Family: fd.family,
				Policy: p,
				Desc:   fd.desc,
			})
		}
	}
	return out
}

// Portfolio returns the standard strategy portfolio run by `mcsim -all`.
func Portfolio() []string {
	return []string{
		"S(LRU)", "S(FIFO)", "S(CLOCK)", "S(LFU)", "S(MARK)", "S(RMARK)", "S(FWF)", "S(ARC)", "S(SLRU)", "S(LRU2)", "S(TINYLFU)",
		"sP[even](LRU)", "sP[opt](LRU)", "dP(LRU)", "dP[fair](LRU)", "dP[ucp](LRU)", "S(FITF)", "sP[opt](FITF)",
	}
}
