package workload

// Stochastic instance families for the verification harness. A Family
// is a distribution over request sets, registrable by spec string the
// way strategies are registrable via strategyspec:
//
//	zipf(cores=4,length=4096,pages=256,s=1.3)
//	phased(cores=4,length=4096,pages=256,phases=8,ws=16)
//	corr(cores=4,length=4096,pages=128,rho=0.8,dwell=256)
//	trace(path=traces/app.txt,rewrite=0.02,swap=0.01)
//	thm1(p=4,k=8,tau=2,x=16)
//	lemma1(p=4,k=8,percore=1024)
//	lemma2(p=4,k=8,percore=1024)
//	lemma4(p=4,k=8,percore=1024)
//
// Family.Sample(seed) draws one instance: the same (spec, seed) pair
// always yields the identical request set byte for byte, and distinct
// seeds yield distinct draws — a refuted statistical claim is therefore
// replayable from its counterexample seeds alone. The synthetic
// families wrap the Spec generators of this package; the adversarial
// families (thm1, lemma1/2/4) sample around the paper's lower-bound
// constructions by jittering their free parameters (sequence length,
// cycle count) with the seeded RNG, so every draw still realizes the
// construction's worst-case property.

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"mcpaging/internal/adversary"
	"mcpaging/internal/core"
	"mcpaging/internal/sim"
	"mcpaging/internal/trace"
)

// Family is one parameterized instance distribution, built by
// ParseFamily. The zero value is not usable.
type Family struct {
	spec string
	def  *familyDef
	par  famParams
}

// familyDef is one registry row.
type familyDef struct {
	name string
	desc string
	// keys lists the accepted parameters (defaults in parentheses in
	// the usage string); unknown keys are a parse error.
	keys   []string
	sample func(p famParams, seed int64) (core.RequestSet, error)
}

// famParams holds the parsed key=value pairs of a family spec.
type famParams map[string]string

func (p famParams) intOr(key string, def int) (int, error) {
	raw, ok := p[key]
	if !ok {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("parameter %s=%q is not an integer", key, raw)
	}
	return v, nil
}

func (p famParams) floatOr(key string, def float64) (float64, error) {
	raw, ok := p[key]
	if !ok {
		return def, nil
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, fmt.Errorf("parameter %s=%q is not a number", key, raw)
	}
	return v, nil
}

// synthKeys are the parameters shared by every synthetic family.
var synthKeys = []string{"cores", "length", "pages", "shared", "sharedpages"}

// synthSpec assembles the common Spec fields of the synthetic families.
func synthSpec(p famParams, kind Kind, seed int64) (Spec, error) {
	s := Spec{Kind: kind, Seed: seed}
	var err error
	if s.Cores, err = p.intOr("cores", 4); err != nil {
		return s, err
	}
	if s.Length, err = p.intOr("length", 4096); err != nil {
		return s, err
	}
	if s.Pages, err = p.intOr("pages", 256); err != nil {
		return s, err
	}
	if s.SharedFrac, err = p.floatOr("shared", 0); err != nil {
		return s, err
	}
	if s.SharedPages, err = p.intOr("sharedpages", 0); err != nil {
		return s, err
	}
	return s, nil
}

// advParams reads the common adversarial parameters: p, k and the
// jitter base. jitterKey names the free length parameter of the
// construction.
func advParams(par famParams, jitterKey string, jitterDef int) (p, k, base int, err error) {
	if p, err = par.intOr("p", 4); err != nil {
		return
	}
	if k, err = par.intOr("k", 2*p); err != nil {
		return
	}
	if base, err = par.intOr(jitterKey, jitterDef); err != nil {
		return
	}
	if base < 1 {
		err = fmt.Errorf("parameter %s must be >= 1", jitterKey)
	}
	return
}

// jitter draws a value in [base, 2*base) — the adversarial families'
// free parameters scale the construction without breaking its
// worst-case property.
func jitter(rng *rand.Rand, base int) int { return base + rng.Intn(base) }

// families is the registry, in listing order.
var families = []familyDef{
	{
		name: "uniform", desc: "independent uniform draws per core",
		keys: synthKeys,
		sample: func(p famParams, seed int64) (core.RequestSet, error) {
			s, err := synthSpec(p, Uniform, seed)
			if err != nil {
				return nil, err
			}
			return Generate(s)
		},
	},
	{
		name: "zipf", desc: "Zipf-skewed page popularity per core",
		keys: append([]string{"s", "v"}, synthKeys...),
		sample: func(p famParams, seed int64) (core.RequestSet, error) {
			s, err := synthSpec(p, Zipf, seed)
			if err != nil {
				return nil, err
			}
			if s.ZipfS, err = p.floatOr("s", 1.2); err != nil {
				return nil, err
			}
			if s.ZipfV, err = p.floatOr("v", 1); err != nil {
				return nil, err
			}
			return Generate(s)
		},
	},
	{
		name: "loop", desc: "sequential scans over the core's page range",
		keys: synthKeys,
		sample: func(p famParams, seed int64) (core.RequestSet, error) {
			s, err := synthSpec(p, Loop, seed)
			if err != nil {
				return nil, err
			}
			return Generate(s)
		},
	},
	{
		name: "phased", desc: "phase-shifting working sets per core",
		keys: append([]string{"phases", "ws"}, synthKeys...),
		sample: func(p famParams, seed int64) (core.RequestSet, error) {
			s, err := synthSpec(p, Phased, seed)
			if err != nil {
				return nil, err
			}
			if s.Phases, err = p.intOr("phases", 0); err != nil {
				return nil, err
			}
			if s.WorkingSet, err = p.intOr("ws", 0); err != nil {
				return nil, err
			}
			return Generate(s)
		},
	},
	{
		name: "markov", desc: "ring random walk with uniform jumps",
		keys: append([]string{"jump"}, synthKeys...),
		sample: func(p famParams, seed int64) (core.RequestSet, error) {
			s, err := synthSpec(p, Markov, seed)
			if err != nil {
				return nil, err
			}
			if s.JumpProb, err = p.floatOr("jump", 0); err != nil {
				return nil, err
			}
			return Generate(s)
		},
	},
	{
		name: "corr", desc: "cross-core-correlated phase-shifting streams",
		keys:   []string{"cores", "length", "pages", "rho", "ws", "dwell"},
		sample: sampleCorrelated,
	},
	{
		name: "mixed", desc: "one scanning core plus zipf cores",
		keys:   []string{"cores", "length", "pages", "s"},
		sample: sampleMixed,
	},
	{
		name: "trace", desc: "committed trace replay with seeded perturbation",
		keys:   []string{"path", "rewrite", "swap"},
		sample: sampleTrace,
	},
	{
		name: "thm1", desc: "Theorem 1(1) round-robin distinct periods (shared LRU beats static partitions)",
		keys: []string{"p", "k", "tau", "x"},
		sample: func(par famParams, seed int64) (core.RequestSet, error) {
			p, k, x, err := advParams(par, "x", 16)
			if err != nil {
				return nil, err
			}
			tau, err := par.intOr("tau", 2)
			if err != nil {
				return nil, err
			}
			rng := rand.New(rand.NewSource(seed))
			return adversary.Theorem1Round(p, k, tau, jitter(rng, x))
		},
	},
	{
		name: "lemma1", desc: "Lemma 1 cycling core under a fixed even partition (per-part LRU vs per-part OPT)",
		keys: []string{"p", "k", "percore"},
		sample: func(par famParams, seed int64) (core.RequestSet, error) {
			p, k, percore, err := advParams(par, "percore", 1024)
			if err != nil {
				return nil, err
			}
			rng := rand.New(rand.NewSource(seed))
			return adversary.Lemma1(evenSizes(k, p), jitter(rng, percore))
		},
	},
	{
		name: "lemma2", desc: "Lemma 2 thrashing cores vs the offline static partition",
		keys: []string{"p", "k", "percore"},
		sample: func(par famParams, seed int64) (core.RequestSet, error) {
			p, k, percore, err := advParams(par, "percore", 1024)
			if err != nil {
				return nil, err
			}
			rng := rand.New(rand.NewSource(seed))
			return adversary.Lemma2(evenSizes(k, p), jitter(rng, percore))
		},
	},
	{
		name: "lemma4", desc: "Lemma 4 cyclic sequences (shared LRU thrashes, sacrifice wins)",
		keys: []string{"p", "k", "percore"},
		sample: func(par famParams, seed int64) (core.RequestSet, error) {
			p, k, percore, err := advParams(par, "percore", 1024)
			if err != nil {
				return nil, err
			}
			rng := rand.New(rand.NewSource(seed))
			return adversary.Lemma4(p, k, jitter(rng, percore))
		},
	},
}

// evenSizes splits K into p near-even partition sizes (largest first),
// mirroring policy.EvenSizes without importing the policy layer.
func evenSizes(k, p int) []int {
	sizes := make([]int, p)
	base, rem := k/p, k%p
	for j := range sizes {
		sizes[j] = base
		if j < rem {
			sizes[j]++
		}
	}
	return sizes
}

// sampleCorrelated draws cross-core-correlated streams: a shared phase
// driver re-picks a working set of ws pages every dwell requests, and at
// every index each core requests the driver's current page with
// probability rho (mapped into its own private namespace, so the
// request set stays disjoint and the correlation lives purely in the
// access pattern) and a uniform private page otherwise. High rho means
// the cores fault in synchronized bursts at phase boundaries — the
// workload shape that stresses partition controllers, which see all
// cores demand capacity at once.
func sampleCorrelated(p famParams, seed int64) (core.RequestSet, error) {
	cores, err := p.intOr("cores", 4)
	if err != nil {
		return nil, err
	}
	length, err := p.intOr("length", 4096)
	if err != nil {
		return nil, err
	}
	pages, err := p.intOr("pages", 128)
	if err != nil {
		return nil, err
	}
	rho, err := p.floatOr("rho", 0.8)
	if err != nil {
		return nil, err
	}
	ws, err := p.intOr("ws", 0)
	if err != nil {
		return nil, err
	}
	dwell, err := p.intOr("dwell", 256)
	if err != nil {
		return nil, err
	}
	if cores < 1 || pages < 1 || length < 0 || pages >= privateStride {
		return nil, fmt.Errorf("workload: corr: bad cores/length/pages (%d/%d/%d)", cores, length, pages)
	}
	if rho < 0 || rho > 1 {
		return nil, fmt.Errorf("workload: corr: rho %v outside [0,1]", rho)
	}
	if ws <= 0 {
		ws = pages / 8
	}
	if ws < 2 {
		ws = 2
	}
	if ws > pages {
		ws = pages
	}
	if dwell < 1 {
		dwell = 1
	}
	rng := rand.New(rand.NewSource(seed))
	rs := make(core.RequestSet, cores)
	for j := range rs {
		rs[j] = make(core.Sequence, length)
	}
	var set []int
	for i := 0; i < length; i++ {
		if i%dwell == 0 {
			set = rng.Perm(pages)[:ws]
		}
		shared := set[rng.Intn(ws)]
		for j := 0; j < cores; j++ {
			pg := shared
			if rng.Float64() >= rho {
				pg = rng.Intn(pages)
			}
			rs[j][i] = core.PageID(j*privateStride + pg)
		}
	}
	return rs, nil
}

// sampleMixed composes one scanning (loop) core with cores-1 zipf
// cores: the asymmetric-pressure workload on which fault-fairness
// controllers separate from even splits.
func sampleMixed(p famParams, seed int64) (core.RequestSet, error) {
	cores, err := p.intOr("cores", 4)
	if err != nil {
		return nil, err
	}
	length, err := p.intOr("length", 4096)
	if err != nil {
		return nil, err
	}
	pages, err := p.intOr("pages", 128)
	if err != nil {
		return nil, err
	}
	zs, err := p.floatOr("s", 1.2)
	if err != nil {
		return nil, err
	}
	if cores < 2 {
		return nil, fmt.Errorf("workload: mixed needs cores >= 2, got %d", cores)
	}
	specs := make([]Spec, cores)
	specs[0] = Spec{Cores: 1, Length: length, Pages: pages, Kind: Loop,
		Seed: sim.DeriveSeed(seed, 0, 0)}
	for j := 1; j < cores; j++ {
		specs[j] = Spec{Cores: 1, Length: length, Pages: pages, Kind: Zipf,
			ZipfS: zs, Seed: sim.DeriveSeed(seed, 0, int64(j))}
	}
	return Compose(specs)
}

// sampleTrace replays a committed trace (text, or binary when the path
// ends in .bin) through a seeded perturbation pass: each request is
// rewritten to another page of the same core's observed page set with
// probability rewrite, and adjacent same-core requests are swapped with
// probability swap. The perturbed replay keeps the trace's locality
// structure while making every seed a distinct instance, so trace-based
// claims are statistical rather than single-replay.
func sampleTrace(p famParams, seed int64) (core.RequestSet, error) {
	path, ok := p["path"]
	if !ok || path == "" {
		return nil, fmt.Errorf("workload: trace family needs path=...")
	}
	rewrite, err := p.floatOr("rewrite", 0.02)
	if err != nil {
		return nil, err
	}
	swap, err := p.floatOr("swap", 0.01)
	if err != nil {
		return nil, err
	}
	if rewrite < 0 || rewrite > 1 || swap < 0 || swap > 1 {
		return nil, fmt.Errorf("workload: trace: rewrite/swap outside [0,1]")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("workload: trace family: %w", err)
	}
	defer f.Close()
	var rs core.RequestSet
	if filepath.Ext(path) == ".bin" {
		rs, err = trace.ReadBinary(f)
	} else {
		rs, err = trace.Read(f)
	}
	if err != nil {
		return nil, fmt.Errorf("workload: trace family: %w", err)
	}
	rng := rand.New(rand.NewSource(seed))
	for j, seq := range rs {
		// Collect the core's distinct pages in first-appearance order
		// (deterministic; no map iteration).
		seen := make(map[core.PageID]bool, 64)
		var pagesOf []core.PageID
		out := make(core.Sequence, len(seq))
		copy(out, seq)
		for _, pg := range seq {
			if !seen[pg] {
				seen[pg] = true
				pagesOf = append(pagesOf, pg)
			}
		}
		for i := range out {
			if rewrite > 0 && rng.Float64() < rewrite {
				out[i] = pagesOf[rng.Intn(len(pagesOf))]
			}
		}
		for i := 0; i+1 < len(out); i++ {
			if swap > 0 && rng.Float64() < swap {
				out[i], out[i+1] = out[i+1], out[i]
			}
		}
		rs[j] = out
	}
	return rs, nil
}

// familyByName resolves a registry row.
func familyByName(name string) *familyDef {
	for i := range families {
		if families[i].name == name {
			return &families[i]
		}
	}
	return nil
}

// FamilyNames lists the registered families in listing order.
func FamilyNames() []string {
	out := make([]string, len(families))
	for i := range families {
		out[i] = families[i].name
	}
	return out
}

// FamilyInfo describes one registered family for listings.
type FamilyInfo struct {
	Name   string   `json:"name"`
	Desc   string   `json:"desc"`
	Params []string `json:"params"`
}

// ListFamilies enumerates the registry in listing order.
func ListFamilies() []FamilyInfo {
	out := make([]FamilyInfo, len(families))
	for i := range families {
		out[i] = FamilyInfo{
			Name:   families[i].name,
			Desc:   families[i].desc,
			Params: append([]string(nil), families[i].keys...),
		}
	}
	return out
}

// ParseFamily parses a family spec string, name(key=val,...), against
// the registry. The parameter list may be empty (defaults apply);
// unknown families and unknown or malformed parameters are errors.
func ParseFamily(spec string) (*Family, error) {
	spec = strings.TrimSpace(spec)
	open := strings.Index(spec, "(")
	name, arglist := spec, ""
	if open >= 0 {
		if !strings.HasSuffix(spec, ")") {
			return nil, fmt.Errorf("workload: bad family spec %q (want name(key=val,...))", spec)
		}
		name, arglist = spec[:open], spec[open+1:len(spec)-1]
	}
	def := familyByName(name)
	if def == nil {
		return nil, fmt.Errorf("workload: unknown family %q (valid: %s)",
			name, strings.Join(FamilyNames(), ", "))
	}
	par := famParams{}
	var keys []string // spec order, so unknown-key errors are stable
	if strings.TrimSpace(arglist) != "" {
		for _, kv := range strings.Split(arglist, ",") {
			key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok || key == "" {
				return nil, fmt.Errorf("workload: family %s: bad parameter %q (want key=val)", name, kv)
			}
			if _, dup := par[key]; dup {
				return nil, fmt.Errorf("workload: family %s: duplicate parameter %q", name, key)
			}
			par[key] = val
			keys = append(keys, key)
		}
	}
	var unknown []string
	for _, key := range keys {
		found := false
		for _, k := range def.keys {
			if k == key {
				found = true
				break
			}
		}
		if !found {
			unknown = append(unknown, key)
		}
	}
	if len(unknown) > 0 {
		return nil, fmt.Errorf("workload: family %s does not accept %s (valid: %s)",
			name, strings.Join(unknown, ", "), strings.Join(def.keys, ", "))
	}
	f := &Family{spec: spec, def: def, par: par}
	// Fail fast on malformed values: a throwaway sample surfaces
	// strconv and range errors at parse time rather than mid-proof.
	if _, err := f.Sample(0); err != nil {
		return nil, err
	}
	return f, nil
}

// Name returns the family's registry name.
func (f *Family) Name() string { return f.def.name }

// String returns the spec the family was parsed from.
func (f *Family) String() string { return f.spec }

// Sample draws the instance for one seed. The draw is deterministic in
// (spec, seed).
func (f *Family) Sample(seed int64) (core.RequestSet, error) {
	return f.def.sample(f.par, seed)
}
