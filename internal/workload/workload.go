// Package workload generates synthetic multicore request sets. The
// paper's evaluation is purely analytic, so these generators play the
// role its motivating workloads describe informally: independent
// processes with private working sets, looping scans, phase-changing
// programs, and mixes that share pages across cores. All generators are
// deterministic given the spec's seed.
package workload

import (
	"fmt"
	"math/rand"

	"mcpaging/internal/core"
	"mcpaging/internal/sim"
)

// Kind selects a generator family.
type Kind string

// Generator families.
const (
	// Uniform draws each request uniformly from the core's page range.
	Uniform Kind = "uniform"
	// Zipf draws from a Zipf distribution over the core's page range —
	// heavy-tailed popularity, the classic cache-friendly skew.
	Zipf Kind = "zipf"
	// Loop cycles sequentially through the core's page range — the
	// LRU-adversarial scan pattern.
	Loop Kind = "loop"
	// Phased partitions the sequence into phases, each confined to a
	// small working set drawn from the core's range; working sets
	// change abruptly at phase boundaries.
	Phased Kind = "phased"
	// Markov walks a ring over the core's page range: with high
	// probability the next request is a neighbour of the current page,
	// otherwise it jumps uniformly (an access-graph-style workload in
	// the spirit of Fiat–Karlin's multi-pointer model).
	Markov Kind = "markov"
)

// Kinds lists all generator families in a stable order.
func Kinds() []Kind { return []Kind{Uniform, Zipf, Loop, Phased, Markov} }

// Spec describes one request-set generation. The JSON names are the
// wire format of the mcservd job API's "workload" trace input.
type Spec struct {
	// Cores is p, the number of sequences.
	Cores int `json:"cores"`
	// Length is the per-core sequence length.
	Length int `json:"length"`
	// Pages is the number of distinct private pages per core.
	Pages int `json:"pages"`
	// Kind selects the generator family.
	Kind Kind `json:"kind"`
	// ZipfS and ZipfV parameterise the Zipf distribution (s > 1, v ≥ 1);
	// zero values default to s=1.2, v=1.
	ZipfS float64 `json:"zipf_s,omitempty"`
	ZipfV float64 `json:"zipf_v,omitempty"`
	// Phases (Phased only) is the number of phases; zero defaults to 8.
	Phases int `json:"phases,omitempty"`
	// WorkingSet (Phased only) is the pages per phase; zero defaults to
	// max(2, Pages/4).
	WorkingSet int `json:"working_set,omitempty"`
	// JumpProb (Markov only) is the probability of a uniform jump
	// instead of a neighbour step; zero defaults to 0.05.
	JumpProb float64 `json:"jump_prob,omitempty"`
	// SharedFrac, if positive, replaces that fraction of requests (in
	// expectation) with requests to a pool of SharedPages pages common
	// to all cores, producing a non-disjoint request set.
	SharedFrac float64 `json:"shared_frac,omitempty"`
	// SharedPages is the size of the shared pool; zero defaults to
	// Pages when SharedFrac > 0.
	SharedPages int `json:"shared_pages,omitempty"`
	// Seed drives all randomness.
	Seed int64 `json:"seed"`
}

// sharedBase places shared pages in a namespace no private page uses.
const sharedBase = 1 << 24

// privateStride spaces per-core private namespaces.
const privateStride = 1 << 16

// Validate checks the spec.
func (s Spec) Validate() error {
	if s.Cores < 1 {
		return fmt.Errorf("workload: cores = %d, want >= 1", s.Cores)
	}
	if s.Length < 0 {
		return fmt.Errorf("workload: negative length %d", s.Length)
	}
	if s.Pages < 1 {
		return fmt.Errorf("workload: pages = %d, want >= 1", s.Pages)
	}
	if s.Pages >= privateStride {
		return fmt.Errorf("workload: pages = %d exceeds per-core namespace", s.Pages)
	}
	if s.SharedFrac < 0 || s.SharedFrac > 1 {
		return fmt.Errorf("workload: shared fraction %v outside [0,1]", s.SharedFrac)
	}
	switch s.Kind {
	case Uniform, Zipf, Loop, Phased, Markov:
	default:
		return fmt.Errorf("workload: unknown kind %q", s.Kind)
	}
	return nil
}

// Generate builds the request set for the spec.
func Generate(s Spec) (core.RequestSet, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(s.Seed))
	rs := make(core.RequestSet, s.Cores)
	sharedPages := s.SharedPages
	if sharedPages == 0 {
		sharedPages = s.Pages
	}
	for j := 0; j < s.Cores; j++ {
		base := core.PageID(j * privateStride)
		local := s.generateCore(rng, j)
		if s.SharedFrac > 0 {
			for i := range local {
				if rng.Float64() < s.SharedFrac {
					local[i] = core.PageID(sharedBase + rng.Intn(sharedPages))
					continue
				}
				local[i] += base
			}
		} else {
			for i := range local {
				local[i] += base
			}
		}
		rs[j] = local
	}
	return rs, nil
}

// generateCore produces one core's sequence over pages 0..Pages-1.
func (s Spec) generateCore(rng *rand.Rand, j int) core.Sequence {
	seq := make(core.Sequence, s.Length)
	switch s.Kind {
	case Uniform:
		for i := range seq {
			seq[i] = core.PageID(rng.Intn(s.Pages))
		}
	case Zipf:
		zs, zv := s.ZipfS, s.ZipfV
		if zs <= 1 {
			zs = 1.2
		}
		if zv < 1 {
			zv = 1
		}
		z := rand.NewZipf(rng, zs, zv, uint64(s.Pages-1))
		perm := rng.Perm(s.Pages) // decouple popularity rank from page ID
		for i := range seq {
			seq[i] = core.PageID(perm[int(z.Uint64())])
		}
	case Loop:
		off := rng.Intn(s.Pages)
		for i := range seq {
			seq[i] = core.PageID((off + i) % s.Pages)
		}
	case Phased:
		phases := s.Phases
		if phases <= 0 {
			phases = 8
		}
		ws := s.WorkingSet
		if ws <= 0 {
			ws = s.Pages / 4
		}
		if ws < 2 {
			ws = 2
		}
		if ws > s.Pages {
			ws = s.Pages
		}
		perPhase := (s.Length + phases - 1) / phases
		for i := 0; i < s.Length; {
			set := rng.Perm(s.Pages)[:ws]
			for k := 0; k < perPhase && i < s.Length; k++ {
				seq[i] = core.PageID(set[rng.Intn(ws)])
				i++
			}
		}
	case Markov:
		jump := s.JumpProb
		if jump <= 0 {
			jump = 0.05
		}
		cur := rng.Intn(s.Pages)
		for i := range seq {
			seq[i] = core.PageID(cur)
			if rng.Float64() < jump {
				cur = rng.Intn(s.Pages)
			} else if rng.Intn(2) == 0 {
				cur = (cur + 1) % s.Pages
			} else {
				cur = (cur - 1 + s.Pages) % s.Pages
			}
		}
	}
	return seq
}

// mixStream is Mix's sim.DeriveSeed stream ID. Families use stream 0
// (family.go); keeping Mix on its own stream decorrelates the two even
// for equal roots and indices.
const mixStream = 1

// Mix generates one request set per kind with otherwise identical
// parameters — the standard sweep used by the E13 policy matrix. Each
// kind's seed is split off the base seed through the sim.DeriveSeed
// splitmix64 chain: the old `base.Seed + i*1000003` stride left kind 0
// on base.Seed itself, so Mix's first entry replayed Generate(base)'s
// exact stream instead of an independent one.
func Mix(base Spec) (map[Kind]core.RequestSet, error) {
	out := make(map[Kind]core.RequestSet, len(Kinds()))
	for i, k := range Kinds() {
		s := base
		s.Kind = k
		s.Seed = sim.DeriveSeed(base.Seed, mixStream, int64(i))
		rs, err := Generate(s)
		if err != nil {
			return nil, err
		}
		out[k] = rs
	}
	return out, nil
}

// Compose builds a heterogeneous request set: one spec per core (each
// spec's Cores field is ignored), with every core placed in its own
// private page namespace. It is the generator behind mixed workloads
// like "one scanning core plus three zipf cores".
func Compose(specs []Spec) (core.RequestSet, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("workload: Compose needs at least one spec")
	}
	rs := make(core.RequestSet, len(specs))
	for j, s := range specs {
		s.Cores = 1
		if s.SharedFrac != 0 {
			return nil, fmt.Errorf("workload: Compose does not support shared pools (core %d)", j)
		}
		one, err := Generate(s)
		if err != nil {
			return nil, fmt.Errorf("workload: core %d: %w", j, err)
		}
		seq := one[0]
		base := core.PageID(j * privateStride)
		for i := range seq {
			// Generate already placed core 0 in the base namespace;
			// shift into this core's.
			seq[i] += base
		}
		rs[j] = seq
	}
	return rs, nil
}
