package workload

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mcpaging/internal/trace"
)

// familySpecs is one representative spec per registered family (the
// trace family is added per-test because it needs a fixture path).
var familySpecs = []string{
	"uniform(cores=2,length=512,pages=32)",
	"zipf(cores=2,length=512,pages=32,s=1.4)",
	"loop(cores=2,length=512,pages=32)",
	"phased(cores=2,length=512,pages=32,phases=4,ws=8)",
	"markov(cores=2,length=512,pages=32,jump=0.1)",
	"corr(cores=3,length=512,pages=32,rho=0.7,dwell=64)",
	"mixed(cores=3,length=512,pages=32)",
	"thm1(p=2,k=4,tau=1,x=8)",
	"lemma1(p=2,k=4,percore=256)",
	"lemma2(p=2,k=4,percore=256)",
	"lemma4(p=2,k=4,percore=256)",
}

// sampleBytes serializes a draw so determinism checks compare the
// request stream byte for byte.
func sampleBytes(t *testing.T, spec string, seed int64) []byte {
	t.Helper()
	f, err := ParseFamily(spec)
	if err != nil {
		t.Fatalf("ParseFamily(%q): %v", spec, err)
	}
	rs, err := f.Sample(seed)
	if err != nil {
		t.Fatalf("Sample(%q, %d): %v", spec, seed, err)
	}
	if err := rs.Validate(); err != nil {
		t.Fatalf("Sample(%q, %d) invalid: %v", spec, seed, err)
	}
	var buf bytes.Buffer
	if err := trace.Write(&buf, rs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestFamilySeedDeterminism(t *testing.T) {
	specs := append([]string(nil), familySpecs...)
	specs = append(specs, traceSpec(t))
	for _, spec := range specs {
		a := sampleBytes(t, spec, 42)
		b := sampleBytes(t, spec, 42)
		if !bytes.Equal(a, b) {
			t.Errorf("%s: same seed produced different request streams", spec)
		}
		c := sampleBytes(t, spec, 43)
		if bytes.Equal(a, c) {
			t.Errorf("%s: different seeds produced identical request streams", spec)
		}
	}
}

func TestFamilyCoverage(t *testing.T) {
	// Every registered family must appear in the determinism matrix, so
	// adding a family without a seed-determinism test fails here.
	covered := map[string]bool{"trace": true}
	for _, spec := range familySpecs {
		covered[spec[:strings.Index(spec, "(")]] = true
	}
	for _, name := range FamilyNames() {
		if !covered[name] {
			t.Errorf("family %s has no seed-determinism coverage", name)
		}
	}
	if len(ListFamilies()) != len(FamilyNames()) {
		t.Fatal("ListFamilies and FamilyNames disagree")
	}
}

// traceSpec writes a small trace fixture and returns a trace-family
// spec pointing at it.
func traceSpec(t *testing.T) string {
	t.Helper()
	rs, err := Generate(Spec{Cores: 2, Length: 256, Pages: 16, Kind: Phased, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Write(f, rs); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return "trace(path=" + path + ",rewrite=0.05,swap=0.05)"
}

func TestTraceFamilyPreservesShape(t *testing.T) {
	spec := traceSpec(t)
	f, err := ParseFamily(spec)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := f.Sample(3)
	if err != nil {
		t.Fatal(err)
	}
	if rs.NumCores() != 2 || len(rs[0]) != 256 || len(rs[1]) != 256 {
		t.Fatalf("perturbed replay changed the trace shape: %d cores, lens %d/%d",
			rs.NumCores(), len(rs[0]), len(rs[1]))
	}
}

func TestParseFamilyErrors(t *testing.T) {
	bad := []string{
		"nope(cores=2)",                   // unknown family
		"zipf(cores=2,bogus=1)",           // unknown key
		"zipf(cores=x)",                   // malformed int
		"zipf(cores=2,s=abc)",             // malformed float
		"zipf(cores=2,cores=3)",           // duplicate key
		"zipf(cores=2",                    // unbalanced paren
		"corr(rho=1.5)",                   // out-of-range
		"trace()",                         // missing path
		"trace(path=/does/not/exist.txt)", // unreadable path
		"mixed(cores=1)",                  // needs >= 2 cores
	}
	for _, spec := range bad {
		if _, err := ParseFamily(spec); err == nil {
			t.Errorf("ParseFamily(%q) unexpectedly succeeded", spec)
		}
	}
}

func TestFamilyDefaults(t *testing.T) {
	// A bare family name parses with defaults.
	f, err := ParseFamily("zipf")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := f.Sample(1)
	if err != nil {
		t.Fatal(err)
	}
	if rs.NumCores() != 4 {
		t.Fatalf("default cores = %d, want 4", rs.NumCores())
	}
}

func TestCorrelatedIsDisjoint(t *testing.T) {
	f, err := ParseFamily("corr(cores=4,length=1024,pages=64,rho=0.9)")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := f.Sample(5)
	if err != nil {
		t.Fatal(err)
	}
	if !rs.Disjoint() {
		t.Fatal("correlated family must keep per-core namespaces disjoint")
	}
}
