package workload

import (
	"reflect"
	"testing"
	"testing/quick"

	"mcpaging/internal/core"
)

func base(kind Kind) Spec {
	return Spec{Cores: 3, Length: 200, Pages: 16, Kind: kind, Seed: 42}
}

func TestGenerateAllKinds(t *testing.T) {
	for _, k := range Kinds() {
		t.Run(string(k), func(t *testing.T) {
			rs, err := Generate(base(k))
			if err != nil {
				t.Fatal(err)
			}
			if rs.NumCores() != 3 {
				t.Fatalf("cores = %d", rs.NumCores())
			}
			for j, s := range rs {
				if len(s) != 200 {
					t.Fatalf("core %d length = %d", j, len(s))
				}
			}
			if !rs.Disjoint() {
				t.Fatal("private workloads must be disjoint")
			}
			if err := rs.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	for _, k := range Kinds() {
		a, err := Generate(base(k))
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(base(k))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: same seed produced different sets", k)
		}
	}
}

func TestGenerateSeedSensitivity(t *testing.T) {
	s1, s2 := base(Uniform), base(Uniform)
	s2.Seed = 43
	a, _ := Generate(s1)
	b, _ := Generate(s2)
	if reflect.DeepEqual(a, b) {
		t.Fatal("different seeds produced identical sets")
	}
}

func TestPageRangeRespected(t *testing.T) {
	f := func(seed int64, kindIdx uint8) bool {
		spec := base(Kinds()[int(kindIdx)%len(Kinds())])
		spec.Seed = seed
		spec.Pages = 7
		rs, err := Generate(spec)
		if err != nil {
			return false
		}
		for j, s := range rs {
			lo := core.PageID(j * privateStride)
			for _, pg := range s {
				if pg < lo || pg >= lo+7 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSharedPool(t *testing.T) {
	spec := base(Uniform)
	spec.SharedFrac = 0.5
	spec.SharedPages = 4
	rs, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Disjoint() {
		t.Fatal("shared workload should not be disjoint")
	}
	shared := 0
	for _, s := range rs {
		for _, pg := range s {
			if pg >= sharedBase {
				if pg >= sharedBase+4 {
					t.Fatalf("shared page %d outside pool", pg)
				}
				shared++
			}
		}
	}
	total := rs.TotalLen()
	if shared < total/4 || shared > 3*total/4 {
		t.Fatalf("shared fraction %d/%d far from 0.5", shared, total)
	}
}

func TestLoopIsCyclic(t *testing.T) {
	spec := base(Loop)
	rs, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	s := rs[0]
	for i := spec.Pages; i < len(s); i++ {
		if s[i] != s[i-spec.Pages] {
			t.Fatalf("loop not cyclic at %d", i)
		}
	}
}

func TestZipfIsSkewed(t *testing.T) {
	spec := base(Zipf)
	spec.Length = 5000
	spec.Pages = 64
	rs, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[core.PageID]int)
	for _, pg := range rs[0] {
		counts[pg]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	// With s=1.2 the most popular page takes far more than the uniform
	// share of 5000/64 ≈ 78.
	if max < 300 {
		t.Fatalf("zipf max frequency %d suspiciously uniform", max)
	}
}

func TestPhasedHasLocality(t *testing.T) {
	spec := base(Phased)
	spec.Length = 800
	spec.Pages = 64
	spec.Phases = 8
	spec.WorkingSet = 4
	rs, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Each 100-request phase touches at most 4 distinct pages.
	s := rs[0]
	for ph := 0; ph < 8; ph++ {
		distinct := make(map[core.PageID]bool)
		for i := ph * 100; i < (ph+1)*100; i++ {
			distinct[s[i]] = true
		}
		if len(distinct) > 4 {
			t.Fatalf("phase %d touches %d pages, want <= 4", ph, len(distinct))
		}
	}
}

func TestMarkovIsLocal(t *testing.T) {
	spec := base(Markov)
	spec.Length = 2000
	spec.Pages = 32
	spec.JumpProb = 0.01
	rs, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	s := rs[0]
	neighbour := 0
	for i := 1; i < len(s); i++ {
		d := int(s[i]) - int(s[i-1])
		if d < 0 {
			d = -d
		}
		if d <= 1 || d == 31 {
			neighbour++
		}
	}
	if float64(neighbour)/float64(len(s)-1) < 0.9 {
		t.Fatalf("markov walk not local: %d/%d neighbour steps", neighbour, len(s)-1)
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{Cores: 0, Length: 1, Pages: 1, Kind: Uniform},
		{Cores: 1, Length: -1, Pages: 1, Kind: Uniform},
		{Cores: 1, Length: 1, Pages: 0, Kind: Uniform},
		{Cores: 1, Length: 1, Pages: 1, Kind: "nope"},
		{Cores: 1, Length: 1, Pages: 1, Kind: Uniform, SharedFrac: 1.5},
	}
	for i, s := range bad {
		if _, err := Generate(s); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestMixCoversAllKinds(t *testing.T) {
	m, err := Mix(base(Uniform))
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != len(Kinds()) {
		t.Fatalf("mix has %d kinds, want %d", len(m), len(Kinds()))
	}
	for k, rs := range m {
		if rs.TotalLen() == 0 {
			t.Errorf("%s: empty", k)
		}
	}
}

// TestMixDecorrelatedFromGenerate pins the seed-derivation fix in Mix.
// The old per-kind stride `base.Seed + i*1000003` left kind 0 (Uniform)
// on base.Seed itself, so Mix(base)[Uniform] was byte-identical to
// Generate(base) — the "independent" sweep cell replayed the baseline's
// exact request stream. Every Mix entry must now be decorrelated from
// the plain Generate of the same spec, while staying deterministic.
func TestMixDecorrelatedFromGenerate(t *testing.T) {
	spec := base(Uniform)
	m, err := Mix(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range Kinds() {
		s := spec
		s.Kind = k
		plain, err := Generate(s)
		if err != nil {
			t.Fatal(err)
		}
		if reflect.DeepEqual(m[k], plain) {
			t.Errorf("%s: Mix entry replays Generate's stream — per-kind seed not decorrelated from the base seed", k)
		}
	}

	again, err := Mix(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, again) {
		t.Fatal("Mix is not deterministic for a fixed base seed")
	}
}

func TestCompose(t *testing.T) {
	rs, err := Compose([]Spec{
		{Length: 100, Pages: 8, Kind: Loop, Seed: 1},
		{Length: 50, Pages: 4, Kind: Zipf, Seed: 2},
		{Length: 80, Pages: 16, Kind: Phased, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rs.NumCores() != 3 {
		t.Fatalf("cores = %d", rs.NumCores())
	}
	if len(rs[0]) != 100 || len(rs[1]) != 50 || len(rs[2]) != 80 {
		t.Fatalf("lengths wrong: %d %d %d", len(rs[0]), len(rs[1]), len(rs[2]))
	}
	if !rs.Disjoint() {
		t.Fatal("composed set must be disjoint")
	}
	if err := rs.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestComposeErrors(t *testing.T) {
	if _, err := Compose(nil); err == nil {
		t.Fatal("empty compose should fail")
	}
	if _, err := Compose([]Spec{{Length: 10, Pages: 4, Kind: Uniform, SharedFrac: 0.5}}); err == nil {
		t.Fatal("shared pool should be rejected")
	}
	if _, err := Compose([]Spec{{Length: 10, Pages: 0, Kind: Uniform}}); err == nil {
		t.Fatal("invalid spec should propagate")
	}
}
