// Package sweep runs strategy × parameter grids over a workload in
// parallel — the batch-experiment harness behind cmd/mcsweep. A sweep
// takes one request set, a list of cache sizes, fetch delays and
// strategy specs, simulates every combination (fanning out over worker
// goroutines), and returns the results in deterministic grid order.
package sweep

import (
	"fmt"
	"runtime"
	"sync"

	"mcpaging/internal/capacity"
	"mcpaging/internal/core"
	"mcpaging/internal/metrics"
	"mcpaging/internal/sim"
	"mcpaging/internal/strategyspec"
)

// Grid describes a sweep.
type Grid struct {
	// R is the workload all points share.
	R core.RequestSet
	// Ks are the cache sizes to sweep.
	Ks []int
	// Taus are the fetch delays to sweep.
	Taus []int
	// Capacities are capacity-schedule specs (capacity mini-language,
	// resolved against each point's K) to sweep; the empty slice — or an
	// empty string entry — is the fixed-capacity model. Sweeping shrink
	// severities ("step(to=75%,at=...)", "step(to=50%,at=...)", ...) is
	// the intended use.
	Capacities []string
	// Specs are strategy specs in the strategyspec mini-language.
	Specs []string
	// Seed drives RAND policies.
	Seed int64
	// Workers bounds concurrency (0 = GOMAXPROCS).
	Workers int
	// Parallel enables intra-run speculation inside each grid point
	// with that many scan workers (0 = sequential engine). Useful when
	// the grid has fewer points than cores; points ineligible for the
	// parallel engine fall back automatically with identical results.
	Parallel int
	// PortableOnly restricts Capacities to the portable schedule
	// families (capacity.ParsePortableSchedule): no family that reads
	// files local to the validating process. The network-facing callers
	// — mcservd's sweep handler, the mcfleet coordinator — set it so a
	// remote grid can never name a path on the host.
	PortableOnly bool
	// Observe, when non-nil, is called once per grid point — concurrently
	// from worker goroutines, after the point's strategy is built — and
	// may return an observer to attach to the point's run plus a done
	// callback invoked with the run's result (either may be nil). A done
	// error is recorded on the point. This is the hook cmd/mcsweep uses
	// to export per-point telemetry.
	Observe func(pt Point) (obs sim.Observer, done func(sim.Result) error)
}

// Validate checks the grid is non-empty and structurally sound.
func (g Grid) Validate() error {
	if err := g.R.Validate(); err != nil {
		return err
	}
	if len(g.Ks) == 0 || len(g.Taus) == 0 || len(g.Specs) == 0 {
		return fmt.Errorf("sweep: empty grid dimension (K×τ×spec = %d×%d×%d)",
			len(g.Ks), len(g.Taus), len(g.Specs))
	}
	for _, k := range g.Ks {
		if k < g.R.NumCores() {
			return fmt.Errorf("sweep: K=%d below core count %d", k, g.R.NumCores())
		}
	}
	for _, tau := range g.Taus {
		if tau < 0 {
			return fmt.Errorf("sweep: negative tau %d", tau)
		}
	}
	parse := capacity.ParseSchedule
	if g.PortableOnly {
		parse = capacity.ParsePortableSchedule
	}
	for _, cap := range g.Capacities {
		if cap == "" {
			continue
		}
		for _, k := range g.Ks {
			if _, err := parse(cap, k); err != nil {
				return fmt.Errorf("sweep: K=%d: %v", k, err)
			}
		}
	}
	return nil
}

// capacities returns the capacity dimension, defaulting to the single
// fixed-capacity entry when none is configured.
func (g Grid) capacities() []string {
	if len(g.Capacities) == 0 {
		return []string{""}
	}
	return g.Capacities
}

// Cell is one grid coordinate. Cells — not Points — are the unit the
// fleet coordinator routes: a Cell plus the shared workload fully
// determines one job.
type Cell struct {
	K, Tau int
	// Capacity is the point's K(t) schedule spec; "" = fixed capacity.
	Capacity string
	Spec     string
}

// Cells enumerates the grid in canonical order — K-major, then τ, then
// capacity, then spec. This single definition of "grid order" is shared
// by Run (point order), mcservd's /v1/sweep stream, and mcfleet's
// re-merge of results arriving out of order from many workers.
func (g Grid) Cells() []Cell {
	caps := g.capacities()
	cells := make([]Cell, 0, len(g.Ks)*len(g.Taus)*len(caps)*len(g.Specs))
	for _, k := range g.Ks {
		for _, tau := range g.Taus {
			for _, cap := range caps {
				for _, spec := range g.Specs {
					cells = append(cells, Cell{K: k, Tau: tau, Capacity: cap, Spec: spec})
				}
			}
		}
	}
	return cells
}

// Point is one grid cell's result.
type Point struct {
	K, Tau   int
	Capacity string
	Spec     string
	Strategy string
	Faults   int64
	Rate     float64
	Jain     float64
	Makespan int64
	// CapacityEvictions counts pages shed under capacity pressure;
	// always 0 for fixed-capacity points.
	CapacityEvictions int64
	Err               error
}

// Run executes the grid. Points come back in deterministic order
// (K-major, then τ, then spec) regardless of scheduling. Per-point
// simulation errors are recorded on the point, not returned.
//
// Every worker owns one sim.Runner bound to the shared workload, so the
// per-point cost is one engine reset plus the simulation itself: the
// request set is validated and its occurrence index built once per
// worker, not once per grid cell.
func Run(g Grid) ([]Point, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	workers := g.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cells := g.Cells()
	points := make([]Point, len(cells))
	for i, c := range cells {
		points[i] = Point{K: c.K, Tau: c.Tau, Capacity: c.Capacity, Spec: c.Spec}
	}
	if workers > len(points) {
		workers = len(points)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	total := float64(g.R.TotalLen())
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rn, err := sim.NewRunner(g.R)
			if err == nil {
				rn.SetParallel(g.Parallel)
			}
			for i := range jobs {
				pt := &points[i]
				if err != nil {
					pt.Err = err
					continue
				}
				st, berr := strategyspec.Build(pt.Spec, g.R, pt.K, g.Seed)
				if berr != nil {
					pt.Err = berr
					continue
				}
				pt.Strategy = st.Name()
				params := core.Params{K: pt.K, Tau: pt.Tau}
				if pt.Capacity != "" {
					sched, serr := capacity.ParseSchedule(pt.Capacity, pt.K)
					if serr != nil {
						pt.Err = serr
						continue
					}
					params.Capacity = sched
				}
				var obs sim.Observer
				var done func(sim.Result) error
				if g.Observe != nil {
					obs, done = g.Observe(*pt)
				}
				res, rerr := rn.Run(params, st, obs)
				if rerr != nil {
					pt.Err = rerr
					continue
				}
				pt.Faults = res.TotalFaults()
				pt.Rate = float64(res.TotalFaults()) / total
				pt.Jain = metrics.JainIndex(res.Faults)
				pt.Makespan = res.Makespan
				pt.CapacityEvictions = res.CapacityEvictions
				if done != nil {
					if derr := done(res); derr != nil {
						pt.Err = derr
					}
				}
			}
		}()
	}
	for i := range points {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return points, nil
}

// Table renders sweep points as a metrics table. The capacity column
// appears only when the sweep actually carries a capacity dimension, so
// fixed-capacity tables keep their historical shape.
func Table(title string, pts []Point) *metrics.Table {
	elastic := false
	for _, p := range pts {
		if p.Capacity != "" {
			elastic = true
			break
		}
	}
	headers := []string{"K", "tau", "strategy", "faults", "fault_rate", "jain", "makespan", "err"}
	if elastic {
		headers = []string{"K", "tau", "capacity", "strategy", "faults", "fault_rate", "jain", "makespan", "cap_evictions", "err"}
	}
	t := metrics.NewTable(title, headers...)
	for _, p := range pts {
		errStr := ""
		if p.Err != nil {
			errStr = p.Err.Error()
		}
		name := p.Strategy
		if name == "" {
			name = p.Spec
		}
		if elastic {
			cap := p.Capacity
			if cap == "" {
				cap = "fixed"
			}
			t.AddRow(p.K, p.Tau, cap, name, p.Faults, p.Rate, p.Jain, p.Makespan, p.CapacityEvictions, errStr)
		} else {
			t.AddRow(p.K, p.Tau, name, p.Faults, p.Rate, p.Jain, p.Makespan, errStr)
		}
	}
	return t
}

// Heatmap renders one strategy's metric over the K × τ grid as a table
// with one row per K and one column per τ — the quick-look view behind
// `mcsweep -heatmap`.
func Heatmap(title, spec, metric string, pts []Point) (*metrics.Table, error) {
	var ks, taus []int
	seenK := map[int]bool{}
	seenT := map[int]bool{}
	val := make(map[[2]int]float64)
	for _, p := range pts {
		if p.Spec != spec || p.Err != nil {
			continue
		}
		var v float64
		switch metric {
		case "faults":
			v = float64(p.Faults)
		case "rate":
			v = p.Rate
		case "jain":
			v = p.Jain
		case "makespan":
			v = float64(p.Makespan)
		default:
			return nil, fmt.Errorf("sweep: unknown metric %q (want faults|rate|jain|makespan)", metric)
		}
		if !seenK[p.K] {
			seenK[p.K] = true
			ks = append(ks, p.K)
		}
		if !seenT[p.Tau] {
			seenT[p.Tau] = true
			taus = append(taus, p.Tau)
		}
		val[[2]int{p.K, p.Tau}] = v
	}
	if len(ks) == 0 {
		return nil, fmt.Errorf("sweep: no points for spec %q", spec)
	}
	headers := []string{"K \\ tau"}
	for _, t := range taus {
		headers = append(headers, fmt.Sprintf("%d", t))
	}
	tbl := metrics.NewTable(fmt.Sprintf("%s — %s(%s)", title, metric, spec), headers...)
	for _, k := range ks {
		row := []interface{}{k}
		for _, t := range taus {
			row = append(row, val[[2]int{k, t}])
		}
		tbl.AddRow(row...)
	}
	return tbl, nil
}
