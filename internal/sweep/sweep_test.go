package sweep_test

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"mcpaging/internal/core"
	"mcpaging/internal/sim"
	"mcpaging/internal/sweep"
)

func workload() core.RequestSet {
	rng := rand.New(rand.NewSource(1))
	rs := make(core.RequestSet, 3)
	for j := range rs {
		s := make(core.Sequence, 200)
		for i := range s {
			s[i] = core.PageID(100*j + rng.Intn(8))
		}
		rs[j] = s
	}
	return rs
}

func TestSweepGrid(t *testing.T) {
	g := sweep.Grid{
		R:     workload(),
		Ks:    []int{6, 12},
		Taus:  []int{0, 2},
		Specs: []string{"S(LRU)", "sP[even](LRU)", "dP(LRU)"},
		Seed:  1,
	}
	pts, err := sweep.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2*2*3 {
		t.Fatalf("got %d points, want 12", len(pts))
	}
	for _, p := range pts {
		if p.Err != nil {
			t.Fatalf("point %+v errored: %v", p, p.Err)
		}
		if p.Faults <= 0 || p.Rate <= 0 || p.Makespan <= 0 {
			t.Fatalf("implausible point %+v", p)
		}
	}
	// Grid order: K-major, then τ, then spec.
	if pts[0].K != 6 || pts[0].Tau != 0 || pts[0].Spec != "S(LRU)" {
		t.Fatalf("wrong first point %+v", pts[0])
	}
	if pts[len(pts)-1].K != 12 || pts[len(pts)-1].Tau != 2 {
		t.Fatalf("wrong last point %+v", pts[len(pts)-1])
	}
	// Lemma 3 holds inside the sweep too: dP(LRU) == S(LRU) pointwise.
	for i := 0; i < len(pts); i += 3 {
		if pts[i].Faults != pts[i+2].Faults {
			t.Fatalf("dP(LRU) diverged from S(LRU) at %+v", pts[i+2])
		}
	}
}

func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	base := sweep.Grid{
		R:     workload(),
		Ks:    []int{6, 9},
		Taus:  []int{1},
		Specs: []string{"S(LRU)", "S(FIFO)", "S(ARC)", "dP[ucp](LRU)"},
		Seed:  3,
	}
	g1, g2 := base, base
	g1.Workers = 1
	g2.Workers = 8
	a, err := sweep.Run(g1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sweep.Run(g2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("sweep results depend on worker count")
	}
}

func TestSweepValidation(t *testing.T) {
	bad := []sweep.Grid{
		{R: workload(), Ks: nil, Taus: []int{0}, Specs: []string{"S(LRU)"}},
		{R: workload(), Ks: []int{4}, Taus: nil, Specs: []string{"S(LRU)"}},
		{R: workload(), Ks: []int{4}, Taus: []int{0}, Specs: nil},
		{R: workload(), Ks: []int{2}, Taus: []int{0}, Specs: []string{"S(LRU)"}}, // K < p
		{R: workload(), Ks: []int{4}, Taus: []int{-1}, Specs: []string{"S(LRU)"}},
	}
	for i, g := range bad {
		if _, err := sweep.Run(g); err == nil {
			t.Errorf("grid %d should fail validation", i)
		}
	}
}

func TestSweepBadSpecRecordedPerPoint(t *testing.T) {
	g := sweep.Grid{
		R:     workload(),
		Ks:    []int{6},
		Taus:  []int{0},
		Specs: []string{"S(LRU)", "S(NOPE)"},
	}
	pts, err := sweep.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Err != nil || pts[1].Err == nil {
		t.Fatalf("per-point error handling wrong: %+v", pts)
	}
}

func TestSweepTable(t *testing.T) {
	g := sweep.Grid{R: workload(), Ks: []int{6}, Taus: []int{0}, Specs: []string{"S(LRU)"}}
	pts, err := sweep.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	tbl := sweep.Table("t", pts)
	if tbl.NumRows() != 1 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
}

func TestHeatmap(t *testing.T) {
	g := sweep.Grid{
		R:     workload(),
		Ks:    []int{6, 12},
		Taus:  []int{0, 2, 4},
		Specs: []string{"S(LRU)", "S(FIFO)"},
		Seed:  1,
	}
	pts, err := sweep.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := sweep.Heatmap("t", "S(LRU)", "faults", pts)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 2 {
		t.Fatalf("rows = %d, want one per K", tbl.NumRows())
	}
	if _, err := sweep.Heatmap("t", "S(LRU)", "bogus", pts); err == nil {
		t.Fatal("unknown metric should fail")
	}
	if _, err := sweep.Heatmap("t", "S(NOPE)", "faults", pts); err == nil {
		t.Fatal("unknown spec should fail")
	}
}

func TestSweepObserveHook(t *testing.T) {
	var mu sync.Mutex
	events := map[string]int64{}
	doneSeen := map[string]int64{}
	g := sweep.Grid{
		R:     workload(),
		Ks:    []int{6, 12},
		Taus:  []int{0, 2},
		Specs: []string{"S(LRU)"},
		Seed:  1,
		Observe: func(pt sweep.Point) (sim.Observer, func(sim.Result) error) {
			if pt.Strategy == "" {
				t.Error("Observe called before the strategy was built")
			}
			key := fmt.Sprintf("k%d_tau%d", pt.K, pt.Tau)
			return func(sim.Event) {
					mu.Lock()
					events[key]++
					mu.Unlock()
				}, func(res sim.Result) error {
					mu.Lock()
					doneSeen[key] = res.TotalFaults() + res.TotalHits()
					mu.Unlock()
					return nil
				}
		},
	}
	pts, err := sweep.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		key := fmt.Sprintf("k%d_tau%d", p.K, p.Tau)
		if events[key] == 0 {
			t.Fatalf("point %s received no events", key)
		}
		// S(LRU) is not a Ticker, so every event is a served request and
		// the stream length must match the point's result.
		if events[key] != doneSeen[key] {
			t.Fatalf("point %s: %d events, done saw %d served requests", key, events[key], doneSeen[key])
		}
	}
}

func TestSweepObserveDoneError(t *testing.T) {
	g := sweep.Grid{
		R:     workload(),
		Ks:    []int{6},
		Taus:  []int{0},
		Specs: []string{"S(LRU)"},
		Seed:  1,
		Observe: func(pt sweep.Point) (sim.Observer, func(sim.Result) error) {
			return nil, func(sim.Result) error { return errors.New("export failed") }
		},
	}
	pts, err := sweep.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Err == nil || pts[0].Err.Error() != "export failed" {
		t.Fatalf("done error not recorded on point: %v", pts[0].Err)
	}
}

// TestSweepParallelEngineMatches runs the same grid with and without
// intra-run speculation over a workload large and disjoint enough for
// the parallel engine to engage, and requires identical points.
func TestSweepParallelEngineMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rs := make(core.RequestSet, 3)
	for j := range rs {
		s := make(core.Sequence, 1200)
		for i := range s {
			s[i] = core.PageID(100*j + rng.Intn(24))
		}
		rs[j] = s
	}
	base := sweep.Grid{
		R:     rs,
		Ks:    []int{8, 16},
		Taus:  []int{0, 3},
		Specs: []string{"S(LRU)", "S(FIFO)", "sP[even](LRU)"},
		Seed:  2,
	}
	seq, par := base, base
	par.Parallel = 4
	a, err := sweep.Run(seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sweep.Run(par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("sweep results depend on intra-run parallelism")
	}
}

// TestCellsCanonicalOrder pins the shared definition of grid order:
// K-major, then τ, then spec — and that sweep.Run returns points in exactly
// that order.
func TestCellsCanonicalOrder(t *testing.T) {
	g := sweep.Grid{
		R:     core.RequestSet{{1, 2, 1}, {5, 6, 5}},
		Ks:    []int{2, 4},
		Taus:  []int{0, 1},
		Specs: []string{"S(LRU)", "S(FIFO)"},
	}
	cells := g.Cells()
	want := []sweep.Cell{
		{2, 0, "", "S(LRU)"}, {2, 0, "", "S(FIFO)"},
		{2, 1, "", "S(LRU)"}, {2, 1, "", "S(FIFO)"},
		{4, 0, "", "S(LRU)"}, {4, 0, "", "S(FIFO)"},
		{4, 1, "", "S(LRU)"}, {4, 1, "", "S(FIFO)"},
	}
	if len(cells) != len(want) {
		t.Fatalf("%d cells, want %d", len(cells), len(want))
	}
	for i := range want {
		if cells[i] != want[i] {
			t.Fatalf("cell %d = %+v, want %+v", i, cells[i], want[i])
		}
	}
	pts, err := sweep.Run(g)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		if (sweep.Cell{p.K, p.Tau, p.Capacity, p.Spec}) != cells[i] {
			t.Fatalf("point %d (%+v) out of cell order (%+v)", i, p, cells[i])
		}
	}
}
