package sweep

import (
	"testing"

	"mcpaging/internal/workload"
)

// BenchmarkSweepGrid measures the batch harness end to end: a K × τ ×
// spec grid over one Zipf workload, exercising the per-worker Runner
// reuse (the occurrence index is built once per worker rather than once
// per grid cell).
func BenchmarkSweepGrid(b *testing.B) {
	rs, err := workload.Generate(workload.Spec{
		Cores: 4, Length: 5000, Pages: 128, Kind: workload.Zipf, Seed: 17,
	})
	if err != nil {
		b.Fatal(err)
	}
	g := Grid{
		R:     rs,
		Ks:    []int{32, 64, 128},
		Taus:  []int{0, 2, 8},
		Specs: []string{"S(LRU)", "S(FIFO)", "sP[even](LRU)"},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := Run(g)
		if err != nil {
			b.Fatal(err)
		}
		for _, pt := range pts {
			if pt.Err != nil {
				b.Fatal(pt.Err)
			}
		}
	}
}
