package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// A CallEdge is one syntactic call site attributed to the function whose
// body contains it. Calls inside a `go func(){…}()` literal are NOT
// edges of the enclosing function — that body runs on another
// goroutine, so properties like "blocks" or "reads the clock" must not
// propagate across the spawn; goleak inspects spawned bodies directly.
// A `go f()` with a named callee is recorded with InGo set so goleak
// can resolve f, but propagation helpers skip it for the same reason.
type CallEdge struct {
	Callee    *types.Func // possibly from export data, or an interface method
	CalleeKey string      // FuncKey(Callee)
	Pos       token.Pos
	InGo      bool // the call is the operand of a go statement
}

// A CallGraph is the flow-insensitive per-package call graph: every
// function declared in the package, with one edge per call expression
// whose callee resolves to a named function or method (static calls,
// method calls, and interface method calls; function-valued variables
// do not resolve and produce no edge).
type CallGraph struct {
	// Funcs maps FuncKey to the locally declared function object.
	Funcs map[string]*types.Func
	// Decls maps FuncKey to the declaration, for position reporting.
	Decls map[string]*ast.FuncDecl
	// Edges maps a local caller's FuncKey to its call sites.
	Edges map[string][]CallEdge

	keys []string // sorted caller keys, for deterministic iteration
}

// CallerKeys returns the sorted FuncKeys of all locally declared
// functions.
func (g *CallGraph) CallerKeys() []string { return g.keys }

// ResolveCallee returns the named function or method a call expression
// invokes, or nil when the callee is dynamic (a function value) or the
// expression is really a type conversion.
func ResolveCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return nil // conversion, not a call
	}
	switch f := fun.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[f].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[f.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.IndexExpr: // generic instantiation f[T](…)
		return ResolveCallee(info, &ast.CallExpr{Fun: f.X})
	}
	return nil
}

// BuildCallGraph constructs the call graph for one type-checked package.
func BuildCallGraph(pkg *Package) *CallGraph {
	g := &CallGraph{
		Funcs: make(map[string]*types.Func),
		Decls: make(map[string]*ast.FuncDecl),
		Edges: make(map[string][]CallEdge),
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			key := FuncKey(fn)
			g.Funcs[key] = fn
			g.Decls[key] = fd
			g.collect(pkg.TypesInfo, key, fd.Body)
		}
	}
	g.keys = make([]string, 0, len(g.Funcs))
	for key := range g.Funcs {
		g.keys = append(g.keys, key)
	}
	sort.Strings(g.keys)
	return g
}

// collect records the call edges of one function body, attributing
// nested (non-go) function literals to the enclosing declaration and
// stopping at go-spawned literal bodies.
func (g *CallGraph) collect(info *types.Info, caller string, body ast.Node) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if _, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				// Spawned literal: arguments evaluate on the caller's
				// goroutine, the body does not.
				for _, arg := range n.Call.Args {
					ast.Inspect(arg, walk)
				}
				return false
			}
			if fn := ResolveCallee(info, n.Call); fn != nil {
				g.Edges[caller] = append(g.Edges[caller], CallEdge{
					Callee: fn, CalleeKey: FuncKey(fn), Pos: n.Call.Pos(), InGo: true,
				})
			}
			for _, arg := range n.Call.Args {
				ast.Inspect(arg, walk)
			}
			return false
		case *ast.CallExpr:
			if fn := ResolveCallee(info, n); fn != nil {
				g.Edges[caller] = append(g.Edges[caller], CallEdge{
					Callee: fn, CalleeKey: FuncKey(fn), Pos: n.Pos(),
				})
			}
			return true
		}
		return true
	}
	ast.Inspect(body, walk)
}

// Fixpoint repeatedly offers every non-go call edge to derive until a
// full sweep changes nothing. derive reports whether it newly exported
// a fact for the caller — typically: the callee carries a fact (check
// the store) and the caller does not yet. Iteration order is
// deterministic (sorted caller keys, source-order edges), so diagnostic
// output derived from the resulting facts is stable.
func (g *CallGraph) Fixpoint(derive func(caller *types.Func, edge CallEdge) bool) {
	for {
		changed := false
		for _, key := range g.keys {
			caller := g.Funcs[key]
			for _, e := range g.Edges[key] {
				if e.InGo {
					continue
				}
				if derive(caller, e) {
					changed = true
				}
			}
		}
		if !changed {
			return
		}
	}
}
