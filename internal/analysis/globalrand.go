package analysis

import (
	"go/ast"
	"go/types"
)

// globalrandConstructors are the math/rand functions that do NOT touch
// the package-global source: they build explicit, seedable generators,
// which is exactly what the repo's determinism contract wants.
var globalrandConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

// Globalrand returns the globalrand analyzer: it forbids calling the
// package-level math/rand (and math/rand/v2) functions — rand.Intn,
// rand.Shuffle, rand.Seed and friends — anywhere in the repo. Those
// share one process-global source, so two simulations in one process
// perturb each other and no run is reproducible from its recorded
// seed. Randomness must flow from an explicit seeded *rand.Rand,
// threaded down from workload.Spec seeds.
func Globalrand() *Analyzer {
	a := &Analyzer{
		Name: "globalrand",
		Doc:  "forbids package-level math/rand functions in favour of seeded *rand.Rand values",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				name, ok := pkgFunc(pass.TypesInfo, call, "math/rand", "math/rand/v2")
				if !ok || globalrandConstructors[name] {
					return true
				}
				// Only package-level *functions* use the global source;
				// selections of types (rand.Rand) resolve differently and
				// never reach here via a call, but be explicit.
				sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if _, isFunc := pass.TypesInfo.Uses[sel.Sel].(*types.Func); !isFunc {
					return true
				}
				pass.Reportf(call.Pos(),
					"rand.%s draws from the process-global source; thread a seeded *rand.Rand instead (rand.New(rand.NewSource(seed)))",
					name)
				return true
			})
		}
	}
	return a
}
