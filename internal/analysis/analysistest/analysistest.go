// Package analysistest runs mcvet analyzers over fixture packages and
// checks their diagnostics against `// want "regexp"` expectations — a
// stdlib-only reimplementation of the x/tools analysistest contract.
//
// A fixture is one directory under testdata/src/<name> holding a small
// Go package. Lines expected to be flagged carry a trailing comment of
// the form
//
//	// want `regexp`
//
// (one or more quoted or backquoted patterns). Run fails the test if
// any diagnostic has no matching expectation on its line, or any
// expectation goes unmatched — so a fixture fails when the analyzer is
// broken in either direction.
package analysistest

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"mcpaging/internal/analysis"
)

// wantPrefix introduces an expectation comment.
const wantPrefix = "// want "

// patternRe matches one quoted ("...") or backquoted (`...`) pattern.
var patternRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// expectation is one parsed want pattern, bound to a file and line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads testdata/src/<fixture> (relative to the calling test's
// package directory), applies the analyzer through the same
// RunAnalyzer path mcvet uses — //mcvet:ignore suppression included —
// and matches the diagnostics against the fixture's want comments.
func Run(t *testing.T, a *analysis.Analyzer, fixture string) {
	t.Helper()
	pkg := Load(t, fixture)
	Check(t, analysis.RunAnalyzer(a, pkg), pkg)
}

// RunDirs loads a multi-package fixture — each dir under testdata/src
// becomes a package importable by later dirs under its fixture path —
// runs the analyzer over all of them in order through one shared fact
// store, and checks the combined diagnostics against every package's
// want comments. This is the harness for cross-package fact
// propagation: a fact exported while analyzing an earlier package must
// survive into the later packages' passes for their wants to match.
func RunDirs(t *testing.T, a *analysis.Analyzer, dirs ...string) {
	t.Helper()
	specs := make([]analysis.FixtureDir, len(dirs))
	for i, d := range dirs {
		specs[i] = analysis.FixtureDir{PkgPath: d, Dir: filepath.Join("testdata", "src", d)}
	}
	pkgs, err := analysis.LoadDirs(".", specs)
	if err != nil {
		t.Fatalf("loading fixtures %v: %v", dirs, err)
	}
	CheckPkgs(t, analysis.RunAnalyzerPkgs(a, pkgs), pkgs)
}

// Load parses and type-checks one fixture package.
func Load(t *testing.T, fixture string) *analysis.Package {
	t.Helper()
	pkg, err := analysis.LoadDir(".", fixture, filepath.Join("testdata", "src", fixture))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	return pkg
}

// Check fails t unless diags and the fixture's want comments match one
// to one per line.
func Check(t *testing.T, diags []analysis.Diagnostic, pkg *analysis.Package) {
	t.Helper()
	CheckPkgs(t, diags, []*analysis.Package{pkg})
}

// CheckPkgs is Check over the combined want comments of several fixture
// packages.
func CheckPkgs(t *testing.T, diags []analysis.Diagnostic, pkgs []*analysis.Package) {
	t.Helper()
	var wants []*expectation
	for _, pkg := range pkgs {
		wants = append(wants, collectWants(t, pkg)...)
	}
	for _, d := range diags {
		if !matchWant(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %s", w.file, w.line, w.raw)
		}
	}
}

// collectWants parses every want comment of the fixture.
func collectWants(t *testing.T, pkg *analysis.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, wantPrefix)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				pats := patternRe.FindAllString(text, -1)
				if len(pats) == 0 {
					t.Fatalf("%s:%d: want comment with no quoted pattern: %s", pos.Filename, pos.Line, c.Text)
				}
				for _, raw := range pats {
					pat, err := strconv.Unquote(raw)
					if err != nil {
						t.Fatalf("%s:%d: unquoting want pattern %s: %v", pos.Filename, pos.Line, raw, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: compiling want pattern %s: %v", pos.Filename, pos.Line, raw, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	return wants
}

// matchWant consumes the first unmatched expectation on the
// diagnostic's line whose pattern matches its message.
func matchWant(wants []*expectation, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}
