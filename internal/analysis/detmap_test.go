package analysis_test

import (
	"testing"

	"mcpaging/internal/analysis"
	"mcpaging/internal/analysis/analysistest"
)

func TestDetmap(t *testing.T) {
	analysistest.Run(t, analysis.Detmap(), "detmap")
}
