package analysis_test

import (
	"testing"

	"mcpaging/internal/analysis"
	"mcpaging/internal/analysis/analysistest"
)

func TestObsguard(t *testing.T) {
	analysistest.Run(t, analysis.Obsguard(), "obsguard")
}
