// Package analysis is mcvet's lint framework: a small, stdlib-only
// reimplementation of the golang.org/x/tools/go/analysis vocabulary
// (Analyzer, Pass, Diagnostic) plus the mcpaging-specific analyzers
// that mechanically enforce the repo's determinism and hot-path
// invariants. See docs/lint.md for the analyzer catalogue and the
// annotation conventions.
//
// The framework exists because the repo is stdlib-only by charter: the
// x/tools module is not a dependency, so packages are loaded with
// `go list -export -json` and type-checked through the standard
// go/importer export-data path instead of go/packages.
//
// Two comment directives drive the suite:
//
//	//mcvet:ignore <analyzer> <reason>
//
// on (or immediately above) a flagged line suppresses that analyzer's
// diagnostics for the line. The reason is mandatory: a bare ignore is
// itself reported.
//
//	//mcpaging:hotpath
//
// in a function's doc comment opts the function into the hotalloc
// allocation checks.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //mcvet:ignore directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Critical restricts the analyzer to determinism-critical packages
	// (see IsCritical). Non-critical analyzers run on every package.
	Critical bool
	// Run inspects the package behind pass and reports findings via
	// pass.Reportf.
	Run func(pass *Pass)
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// PkgPath is the package's import path. Fixture packages under
	// testdata keep their fixture path here, so analyzers must not
	// assume module-rooted paths.
	PkgPath string

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, located in file coordinates.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// criticalPrefixes are the determinism-critical import paths: packages
// whose output feeds golden files, content-addressed cache keys, or
// paper-claim tables, and must therefore be bit-for-bit reproducible.
// Matching is by path prefix, so subpackages inherit criticality.
var criticalPrefixes = []string{
	"mcpaging/internal/cache",
	"mcpaging/internal/core",
	"mcpaging/internal/sim",
	"mcpaging/internal/sweep",
	"mcpaging/internal/telemetry",
	"mcpaging/internal/strategyspec",
	"mcpaging/internal/offline",
	"mcpaging/internal/server",
	"mcpaging/internal/workload",
	"mcpaging/internal/verify",
	"mcpaging/internal/fleet",
}

// IsCritical reports whether pkgPath is determinism-critical, i.e.
// whether Critical analyzers apply to it.
func IsCritical(pkgPath string) bool {
	for _, p := range criticalPrefixes {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

// RunAnalyzer runs one analyzer over a loaded package and returns its
// diagnostics with //mcvet:ignore suppressions already applied. It does
// not apply Critical scoping — that is the suite driver's job — so
// fixture tests can exercise critical analyzers on arbitrary packages.
func RunAnalyzer(a *Analyzer, pkg *Package) []Diagnostic {
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		PkgPath:   pkg.PkgPath,
	}
	a.Run(pass)
	return filterIgnored(pass.diags, ignoreIndexFor(pkg))
}

// RunSuite runs every applicable analyzer of the suite over the package
// (Critical analyzers only on critical packages), plus the directive
// hygiene check, and returns the surviving diagnostics sorted by
// position.
func RunSuite(suite []*Analyzer, pkg *Package) []Diagnostic {
	var out []Diagnostic
	idx := ignoreIndexFor(pkg)
	for _, a := range suite {
		if a.Critical && !IsCritical(pkg.PkgPath) {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			PkgPath:   pkg.PkgPath,
		}
		a.Run(pass)
		out = append(out, filterIgnored(pass.diags, idx)...)
	}
	out = append(out, checkDirectives(suite, pkg)...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}

// DefaultSuite returns the standard mcvet analyzer suite.
func DefaultSuite() []*Analyzer {
	return []*Analyzer{
		Detmap(),
		Wallclock(DefaultWallclockAllow()),
		Globalrand(),
		Hotalloc(),
		Obsguard(),
	}
}

// ignoreDirective is one parsed //mcvet:ignore comment.
type ignoreDirective struct {
	analyzer string
	reason   string
	pos      token.Position
}

const ignorePrefix = "//mcvet:ignore"

// ignoreIndexFor collects the package's ignore directives, keyed by
// file name and the line they suppress. A directive suppresses its own
// line and the line below, so both trailing and standalone-line
// placements work.
func ignoreIndexFor(pkg *Package) map[string][]ignoreDirective {
	idx := make(map[string][]ignoreDirective)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				name, reason, _ := strings.Cut(rest, " ")
				pos := pkg.Fset.Position(c.Pos())
				d := ignoreDirective{analyzer: name, reason: strings.TrimSpace(reason), pos: pos}
				idx[key(pos.Filename, pos.Line)] = append(idx[key(pos.Filename, pos.Line)], d)
				idx[key(pos.Filename, pos.Line+1)] = append(idx[key(pos.Filename, pos.Line+1)], d)
			}
		}
	}
	return idx
}

func key(file string, line int) string { return fmt.Sprintf("%s:%d", file, line) }

// filterIgnored drops diagnostics whose line carries (or follows) a
// matching //mcvet:ignore directive with a non-empty reason.
func filterIgnored(diags []Diagnostic, idx map[string][]ignoreDirective) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if suppressed(d, idx) {
			continue
		}
		out = append(out, d)
	}
	return out
}

func suppressed(d Diagnostic, idx map[string][]ignoreDirective) bool {
	for _, dir := range idx[key(d.Pos.Filename, d.Pos.Line)] {
		if dir.analyzer == d.Analyzer && dir.reason != "" {
			return true
		}
	}
	return false
}

// checkDirectives enforces directive hygiene: every //mcvet:ignore must
// name a known analyzer and carry a reason.
func checkDirectives(suite []*Analyzer, pkg *Package) []Diagnostic {
	known := make(map[string]bool, len(suite))
	for _, a := range suite {
		known[a.Name] = true
	}
	var out []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				name, reason, _ := strings.Cut(rest, " ")
				pos := pkg.Fset.Position(c.Pos())
				switch {
				case name == "":
					out = append(out, Diagnostic{Pos: pos, Analyzer: "mcvet",
						Message: "mcvet:ignore directive names no analyzer"})
				case !known[name]:
					out = append(out, Diagnostic{Pos: pos, Analyzer: "mcvet",
						Message: fmt.Sprintf("mcvet:ignore directive names unknown analyzer %q", name)})
				case strings.TrimSpace(reason) == "":
					out = append(out, Diagnostic{Pos: pos, Analyzer: "mcvet",
						Message: fmt.Sprintf("mcvet:ignore %s directive is missing a reason", name)})
				}
			}
		}
	}
	return out
}
