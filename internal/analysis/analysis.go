// Package analysis is mcvet's lint framework: a small, stdlib-only
// reimplementation of the golang.org/x/tools/go/analysis vocabulary
// (Analyzer, Pass, Diagnostic) plus the mcpaging-specific analyzers
// that mechanically enforce the repo's determinism and hot-path
// invariants. See docs/lint.md for the analyzer catalogue and the
// annotation conventions.
//
// The framework exists because the repo is stdlib-only by charter: the
// x/tools module is not a dependency, so packages are loaded with
// `go list -export -json` and type-checked through the standard
// go/importer export-data path instead of go/packages.
//
// Two comment directives drive the suite:
//
//	//mcvet:ignore <analyzer> <reason>
//
// on (or immediately above) a flagged line suppresses that analyzer's
// diagnostics for the line. The reason is mandatory: a bare ignore is
// itself reported.
//
//	//mcpaging:hotpath
//
// in a function's doc comment opts the function into the hotalloc
// allocation checks.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //mcvet:ignore directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Critical restricts the analyzer's *diagnostics* to
	// determinism-critical packages (see IsCritical). Non-critical
	// analyzers report on every package. Under RunAll a Critical
	// analyzer still runs on non-critical packages in facts-only mode:
	// its diagnostics are discarded but the facts it exports remain,
	// so interprocedural properties propagate through non-critical
	// code into critical callers.
	Critical bool
	// Run inspects the package behind pass and reports findings via
	// pass.Reportf.
	Run func(pass *Pass)
	// Finish, when set, runs once after every package of a RunAll
	// sweep, deriving whole-suite diagnostics (e.g. lock-order cycles)
	// from the accumulated facts. Positions in the returned
	// diagnostics must be pre-rendered token.Position values carried
	// through the facts — a token.Pos is meaningless once its package
	// pass is over.
	Finish func(facts *FactStore) []Diagnostic
}

// A Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// PkgPath is the package's import path. Fixture packages under
	// testdata keep their fixture path here, so analyzers must not
	// assume module-rooted paths.
	PkgPath string
	// Facts is the suite-wide fact store. Packages are analyzed in
	// dependency order, so facts exported while analyzing an import
	// are visible here. Never nil.
	Facts *FactStore
	// Graph is this package's flow-insensitive call graph. Never nil.
	Graph *CallGraph

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, located in file coordinates.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// criticalPrefixes are the determinism-critical import paths: packages
// whose output feeds golden files, content-addressed cache keys, or
// paper-claim tables, and must therefore be bit-for-bit reproducible.
// Matching is by path prefix, so subpackages inherit criticality.
var criticalPrefixes = []string{
	"mcpaging/internal/cache",
	"mcpaging/internal/capacity",
	"mcpaging/internal/core",
	"mcpaging/internal/sim",
	"mcpaging/internal/sweep",
	"mcpaging/internal/telemetry",
	"mcpaging/internal/strategyspec",
	"mcpaging/internal/offline",
	"mcpaging/internal/server",
	"mcpaging/internal/workload",
	"mcpaging/internal/verify",
	"mcpaging/internal/fleet",
}

// IsCritical reports whether pkgPath is determinism-critical, i.e.
// whether Critical analyzers apply to it.
func IsCritical(pkgPath string) bool {
	for _, p := range criticalPrefixes {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

// newPass builds one analyzer's view of one package.
func newPass(a *Analyzer, pkg *Package, facts *FactStore, graph *CallGraph) *Pass {
	return &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		PkgPath:   pkg.PkgPath,
		Facts:     facts,
		Graph:     graph,
	}
}

// RunAnalyzer runs one analyzer over a loaded package and returns its
// diagnostics with //mcvet:ignore suppressions already applied. It does
// not apply Critical scoping — that is the suite driver's job — so
// fixture tests can exercise critical analyzers on arbitrary packages.
func RunAnalyzer(a *Analyzer, pkg *Package) []Diagnostic {
	return RunAnalyzerPkgs(a, []*Package{pkg})
}

// RunAnalyzerPkgs runs one analyzer over several packages in order with
// a shared fact store — the multi-package fixture harness. Packages
// must be given in dependency order so facts flow downstream. Critical
// scoping is not applied, Finish diagnostics are included, and ignores
// are honored across all the packages.
func RunAnalyzerPkgs(a *Analyzer, pkgs []*Package) []Diagnostic {
	facts := NewFactStore()
	idx := make(map[string][]*ignoreDirective)
	var out []Diagnostic
	for _, pkg := range pkgs {
		pkgIdx, _ := ignoreIndexFor(pkg)
		for k, v := range pkgIdx {
			idx[k] = append(idx[k], v...)
		}
		pass := newPass(a, pkg, facts, BuildCallGraph(pkg))
		a.Run(pass)
		out = append(out, filterIgnored(pass.diags, idx)...)
	}
	if a.Finish != nil {
		out = append(out, filterIgnored(a.Finish(facts), idx)...)
	}
	return out
}

// RunSuite runs every applicable analyzer of the suite over one package
// in isolation (Critical analyzers only on critical packages), plus the
// directive hygiene check, and returns the surviving diagnostics sorted
// by position. Interprocedural facts do not cross packages here — use
// RunAll for whole-program analysis.
func RunSuite(suite []*Analyzer, pkg *Package) []Diagnostic {
	var out []Diagnostic
	idx, _ := ignoreIndexFor(pkg)
	facts := NewFactStore()
	graph := BuildCallGraph(pkg)
	for _, a := range suite {
		pass := newPass(a, pkg, facts, graph)
		a.Run(pass)
		if a.Critical && !IsCritical(pkg.PkgPath) {
			continue
		}
		out = append(out, filterIgnored(pass.diags, idx)...)
	}
	out = append(out, checkDirectives(suite, pkg)...)
	sortDiags(out)
	return out
}

// RunAll is mcvet's whole-program driver: it runs the suite over every
// package in dependency order with one shared fact store, so
// interprocedural analyzers see the facts of everything a package
// imports. Per package it runs *every* analyzer — Critical analyzers
// on non-critical packages and the whole suite on dep-only packages
// run in facts-only mode (diagnostics discarded, exports kept) — then
// applies ignore directives, directive hygiene, Finish passes, and the
// stale-directive check: a well-formed //mcvet:ignore that suppressed
// nothing anywhere in the sweep is itself reported.
func RunAll(suite []*Analyzer, pkgs []*Package) []Diagnostic {
	facts := NewFactStore()
	known := make(map[string]bool, len(suite))
	for _, a := range suite {
		known[a.Name] = true
	}
	var out []Diagnostic
	mergedIdx := make(map[string][]*ignoreDirective)
	var directives []*ignoreDirective
	reportable := make(map[string]bool)
	for _, pkg := range pkgs {
		graph := BuildCallGraph(pkg)
		idx, dirs := ignoreIndexFor(pkg)
		critical := IsCritical(pkg.PkgPath)
		var raw []Diagnostic
		for _, a := range suite {
			pass := newPass(a, pkg, facts, graph)
			a.Run(pass)
			if pkg.DepOnly || (a.Critical && !critical) {
				continue // facts-only: keep exports, drop findings
			}
			raw = append(raw, pass.diags...)
		}
		if pkg.DepOnly {
			continue
		}
		out = append(out, filterIgnored(raw, idx)...)
		out = append(out, checkDirectives(suite, pkg)...)
		for k, v := range idx {
			mergedIdx[k] = append(mergedIdx[k], v...)
		}
		directives = append(directives, dirs...)
		for _, f := range pkg.Files {
			reportable[pkg.Fset.Position(f.Pos()).Filename] = true
		}
	}
	for _, a := range suite {
		if a.Finish == nil {
			continue
		}
		for _, d := range a.Finish(facts) {
			if !reportable[d.Pos.Filename] || suppressed(d, mergedIdx) {
				continue
			}
			out = append(out, d)
		}
	}
	// Stale directives: hygiene problems are already reported above;
	// here a directive that *could* suppress but matched nothing in the
	// entire sweep is flagged so dead annotations cannot accumulate.
	for _, dir := range directives {
		if dir.analyzer == "" || !known[dir.analyzer] || dir.reason == "" || dir.used {
			continue
		}
		out = append(out, Diagnostic{Pos: dir.pos, Analyzer: "mcvet",
			Message: fmt.Sprintf("mcvet:ignore %s directive suppresses nothing — drop it", dir.analyzer)})
	}
	sortDiags(out)
	return out
}

func sortDiags(out []Diagnostic) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
}

// DefaultSuite returns the standard mcvet analyzer suite: the five
// per-function checks from the original mcvet plus the five
// interprocedural concurrency/determinism analyzers.
func DefaultSuite() []*Analyzer {
	return []*Analyzer{
		Detmap(),
		Wallclock(DefaultWallclockAllow()),
		Globalrand(),
		Hotalloc(),
		Obsguard(),
		Lockheld(),
		Goleak(),
		Ctxflow(),
		Seedflow(),
		Clockflow(),
	}
}

// ignoreDirective is one parsed //mcvet:ignore comment. used flips when
// the directive suppresses a diagnostic, feeding the stale check.
type ignoreDirective struct {
	analyzer string
	reason   string
	pos      token.Position
	used     bool
}

const ignorePrefix = "//mcvet:ignore"

// ignoreIndexFor collects the package's ignore directives: the index is
// keyed by file name and the line a directive suppresses (its own line
// and the line below, so both trailing and standalone-line placements
// work); the slice lists each directive once, in source order.
func ignoreIndexFor(pkg *Package) (map[string][]*ignoreDirective, []*ignoreDirective) {
	idx := make(map[string][]*ignoreDirective)
	var all []*ignoreDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				name, reason, _ := strings.Cut(rest, " ")
				pos := pkg.Fset.Position(c.Pos())
				d := &ignoreDirective{analyzer: name, reason: strings.TrimSpace(reason), pos: pos}
				idx[key(pos.Filename, pos.Line)] = append(idx[key(pos.Filename, pos.Line)], d)
				idx[key(pos.Filename, pos.Line+1)] = append(idx[key(pos.Filename, pos.Line+1)], d)
				all = append(all, d)
			}
		}
	}
	return idx, all
}

func key(file string, line int) string { return fmt.Sprintf("%s:%d", file, line) }

// filterIgnored drops diagnostics whose line carries (or follows) a
// matching //mcvet:ignore directive with a non-empty reason, marking
// the directives that earned their keep.
func filterIgnored(diags []Diagnostic, idx map[string][]*ignoreDirective) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if suppressed(d, idx) {
			continue
		}
		out = append(out, d)
	}
	return out
}

func suppressed(d Diagnostic, idx map[string][]*ignoreDirective) bool {
	hit := false
	for _, dir := range idx[key(d.Pos.Filename, d.Pos.Line)] {
		if dir.analyzer == d.Analyzer && dir.reason != "" {
			dir.used = true
			hit = true
		}
	}
	return hit
}

// checkDirectives enforces directive hygiene: every //mcvet:ignore must
// name a known analyzer and carry a reason.
func checkDirectives(suite []*Analyzer, pkg *Package) []Diagnostic {
	known := make(map[string]bool, len(suite))
	for _, a := range suite {
		known[a.Name] = true
	}
	var out []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				name, reason, _ := strings.Cut(rest, " ")
				pos := pkg.Fset.Position(c.Pos())
				switch {
				case name == "":
					out = append(out, Diagnostic{Pos: pos, Analyzer: "mcvet",
						Message: "mcvet:ignore directive names no analyzer"})
				case !known[name]:
					out = append(out, Diagnostic{Pos: pos, Analyzer: "mcvet",
						Message: fmt.Sprintf("mcvet:ignore directive names unknown analyzer %q", name)})
				case strings.TrimSpace(reason) == "":
					out = append(out, Diagnostic{Pos: pos, Analyzer: "mcvet",
						Message: fmt.Sprintf("mcvet:ignore %s directive is missing a reason", name)})
				}
			}
		}
	}
	return out
}
