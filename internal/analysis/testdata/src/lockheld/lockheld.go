package lockheld

import (
	"sync"
	"time"
)

var mu sync.Mutex
var done = make(chan struct{})

// badRecv blocks on a channel inside the critical section.
func badRecv() {
	mu.Lock()
	<-done // want `channel receive while mu is held blocks the critical section`
	mu.Unlock()
}

// badSleep sleeps while the lock is held through a deferred unlock.
func badSleep() {
	mu.Lock()
	defer mu.Unlock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while mu is held blocks the critical section`
}

// wait blocks; callers holding a lock inherit the hazard through its
// exported blockFact.
func wait() {
	<-done
}

// badIndirect blocks two frames away from the lock.
func badIndirect() {
	mu.Lock()
	wait() // want `call to lockheld\.wait may block \(channel receive at .*\) while mu is held`
	mu.Unlock()
}

// okAfterUnlock releases before blocking.
func okAfterUnlock() {
	mu.Lock()
	mu.Unlock()
	<-done
}

// okNonblocking: a select with a default clause cannot stall the
// critical section.
func okNonblocking() {
	mu.Lock()
	select {
	case <-done:
	default:
	}
	mu.Unlock()
}

// okClosureOwnSchedule: a literal that blocks runs on its own
// schedule, not at its definition site under the lock.
func okClosureOwnSchedule() func() {
	mu.Lock()
	f := func() { <-done }
	mu.Unlock()
	return f
}

// okIgnored demonstrates the reasoned escape hatch.
func okIgnored() {
	mu.Lock()
	<-done //mcvet:ignore lockheld fixture demonstrates the reasoned override
	mu.Unlock()
}

var a, b sync.Mutex

// orderAB and orderBA take the two locks in opposite orders: each
// second acquisition is half of a deadlock, reported by the
// suite-level Finish pass.
func orderAB() {
	a.Lock()
	b.Lock() // want `inconsistent lock order: lockheld\.b acquired while holding lockheld\.a`
	b.Unlock()
	a.Unlock()
}

func orderBA() {
	b.Lock()
	a.Lock() // want `inconsistent lock order: lockheld\.a acquired while holding lockheld\.b`
	a.Unlock()
	b.Unlock()
}
