package obsguard

// Event and Observer mirror the sim package's shapes: obsguard matches
// any named func type called Observer.
type Event struct{ T int64 }

type Observer func(Event)

func unguarded(obs Observer) {
	obs(Event{}) // want `obs invoked without a dominating obs != nil guard`
}

func guarded(obs Observer) {
	if obs != nil {
		obs(Event{})
	}
}

func guardedConjunct(obs Observer, fire bool) {
	if fire && obs != nil {
		obs(Event{T: 1})
	}
}

func earlyReturn(obs Observer) {
	if obs == nil {
		return
	}
	obs(Event{})
}

func earlyContinue(obs Observer, n int) {
	for i := 0; i < n; i++ {
		if obs == nil {
			continue
		}
		obs(Event{T: int64(i)})
	}
}

func elseBranchNotGuarded(obs Observer) {
	if obs != nil {
		obs(Event{})
	} else {
		obs(Event{}) // want `obs invoked without a dominating obs != nil guard`
	}
}

func ignored(list []Observer) {
	for _, o := range list {
		o(Event{}) //mcvet:ignore obsguard list is filtered to non-nil observers by the caller
	}
}

// plainCall is an ordinary function call, not an Observer invocation.
func plainCall(f func(Event)) {
	f(Event{})
}
