package hotalloc

import "fmt"

type big struct{ a, b, c int64 }

//mcpaging:hotpath
func ptrLit() *big {
	return &big{} // want `&big\{\.\.\.\} escapes to the heap`
}

//mcpaging:hotpath
func sliceLit() []int {
	s := []int{1, 2, 3} // want `slice literal allocates`
	return s
}

//mcpaging:hotpath
func mapNoHint() map[int]int {
	return make(map[int]int) // want `make\(map\) without a size hint`
}

//mcpaging:hotpath
func appendInLoop(dst []int, n int) []int {
	for i := 0; i < n; i++ {
		dst = append(dst, i) // want `append inside the hot loop`
	}
	return dst
}

//mcpaging:hotpath
func makeInLoop(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		buf := make([]byte, 16) // want `make inside the hot loop`
		total += len(buf)
	}
	return total
}

//mcpaging:hotpath
func boxes(v int) {
	var x interface{}
	x = v // want `int value boxed into interface\{\} allocates`
	_ = x
}

//mcpaging:hotpath
func closure(n int) func() int {
	return func() int { return n } // want `func literal captures n and allocates a closure`
}

//mcpaging:hotpath
func stringConvInLoop(bs [][]byte, sink func(string)) {
	for _, b := range bs {
		sink(string(b)) // want `string/\[\]byte conversion inside the hot loop`
	}
}

// Negative cases below: none of these may be flagged.

//mcpaging:hotpath
func preallocated(n int) map[int]int {
	return make(map[int]int, n)
}

//mcpaging:hotpath
func pointerShapedNoBox(p *big) {
	var x interface{}
	x = p
	_ = x
}

//mcpaging:hotpath
func constantNoBox() {
	var x interface{}
	x = 42
	_ = x
}

//mcpaging:hotpath
func coldErrorPath(p *big, v int64) (*big, error) {
	if p == nil {
		return &big{a: v}, fmt.Errorf("no big for %d", v)
	}
	return p, nil
}

//mcpaging:hotpath
func panicPath(ok bool, v int64) {
	if !ok {
		panic(fmt.Sprintf("bad value %d", v))
	}
}

//mcpaging:hotpath
func ignoredSlowPath(m map[int]*big, k int) *big {
	nd := m[k]
	if nd == nil {
		nd = &big{} //mcvet:ignore hotalloc overflow slow path, cold by construction
		m[k] = nd
	}
	return nd
}

func drain(ch chan int) { <-ch }

// A function that spawns goroutines has no business being marked
// hotpath: the spawn allocates and yields to the scheduler.

//mcpaging:hotpath
func spawnsGoroutine(ch chan int) {
	go drain(ch) // want `go statement spawns a goroutine in a hotpath function`
}

//mcpaging:hotpath
func coldFallbackBranch(m map[int]*big, k int) *big {
	if nd := m[k]; nd != nil {
		return nd
	}
	//mcpaging:coldpath first touch of this key, once per run
	nd := &big{}
	m[k] = nd
	return nd
}

//mcpaging:hotpath
func coldSubtree(ready bool, ch chan int) {
	if !ready {
		//mcpaging:coldpath lazy pool start, once per process
		go drain(ch)
	}
	_ = ready
}

// unannotated functions may allocate freely.
func unannotated() *big {
	return &big{a: 1}
}
