package clockflow

import "time"

// Clock is the injected time source: the one seam through which wall
// time may enter.
type Clock interface {
	Now() time.Time
}

// sysClock implements Clock over the real clock. Its method may read
// the clock — the receiver implementing the package's Clock interface
// is the structural exemption, no name allowlist involved.
type sysClock struct{}

func (sysClock) Now() time.Time { return time.Now() }

// stamp reads the clock behind a helper: it carries a clockReadFact.
func stamp() time.Time { return time.Now() }

// indirect reaches the wall clock two hops away — the interprocedural
// case the old per-function wallclock check could not see.
func indirect() time.Time {
	return stamp() // want `call to clockflow\.stamp reaches the wall clock`
}

// bypass calls the concrete implementation statically, dodging the
// interface seam.
func bypass() time.Time {
	return sysClock{}.Now() // want `call to \(clockflow\.sysClock\)\.Now reaches the wall clock`
}

// okInjected threads the interface value: the dynamic callee has no
// body, hence no fact — the legitimate path.
func okInjected(c Clock) time.Time {
	return c.Now()
}

// okIgnored demonstrates the reasoned escape hatch.
func okIgnored() time.Time {
	return stamp() //mcvet:ignore clockflow fixture demonstrates the reasoned override
}
