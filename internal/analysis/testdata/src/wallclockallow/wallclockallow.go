package wallclockallow

import "time"

// Server mirrors the mcservd latency-metric shape: the test injects an
// allowlist naming (*Server).handleJob, so only other wall-clock reads
// are flagged.
type Server struct {
	started time.Time
}

func (s *Server) handleJob() {
	s.started = time.Now() // allowlisted: request latency metric
}

func (s *Server) report() time.Duration {
	return time.Since(s.started) // want `time\.Since reads the wall clock`
}
