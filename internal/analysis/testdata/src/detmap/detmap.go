package detmap

import "sort"

// flagged observes map iteration order directly.
func flagged(m map[string]int) {
	for k := range m { // want `range over map m has nondeterministic iteration order`
		println(k)
	}
}

// flaggedValues observes values in map order through a side effect.
func flaggedValues(m map[string]int, sink func(int)) {
	for _, v := range m { // want `range over map m has nondeterministic iteration order`
		sink(v)
	}
}

// countOnly ranges without iteration variables: order unobservable.
func countOnly(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// collectSorted is the collect-then-sort idiom.
func collectSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// collectFiltered is the idiom with one guarding if.
func collectFiltered(m map[string]int) []string {
	var keys []string
	for k, v := range m {
		if v > 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// ignored demonstrates the escape hatch for order-independent
// reductions.
func ignored(m map[string]int) int {
	max := 0
	//mcvet:ignore detmap max-reduction is order-independent
	for _, v := range m {
		if v > max {
			max = v
		}
	}
	return max
}

// sliceRange is not a map range.
func sliceRange(s []int) {
	for i, v := range s {
		println(i, v)
	}
}
