package globalrand

import (
	"math/rand"
	randv2 "math/rand/v2"
)

// flagged draws from the process-global source.
func flagged() int {
	return rand.Intn(10) // want `rand\.Intn draws from the process-global source`
}

// flaggedShuffle perturbs the global source.
func flaggedShuffle(s []int) {
	rand.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] }) // want `rand\.Shuffle draws from the process-global source`
}

// flaggedV2 shows the v2 package is covered too.
func flaggedV2() int {
	return randv2.IntN(10) // want `rand\.IntN draws from the process-global source`
}

// seeded threads an explicit seeded generator: the sanctioned pattern.
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// zipf uses a constructor on an explicit source.
func zipf(seed int64) *rand.Zipf {
	return rand.NewZipf(rand.New(rand.NewSource(seed)), 1.1, 1, 100)
}

// ignored demonstrates the escape hatch.
func ignored() int {
	return rand.Intn(10) //mcvet:ignore globalrand fixture exercising the directive
}
