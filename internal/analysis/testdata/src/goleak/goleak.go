package goleak

import (
	"context"
	"sync"
)

// spin loops forever with no exit path.
func spin() {
	for {
	}
}

// leak spawns an unstoppable looping goroutine.
func leak() {
	go func() { // want `goroutine loops but has no reachable cancellation path`
		for {
		}
	}()
}

// leakNamed reaches the loop through the call graph: spin's loopFact
// flags the spawn even though the body is a plain call.
func leakNamed() {
	go spin() // want `goroutine loops but has no reachable cancellation path`
}

var counter int

// okBounded has no loop: the goroutine terminates by itself and needs
// no cancellation path.
func okBounded() {
	go func() {
		counter++
	}()
}

// okCtx loops but consults its context every iteration.
func okCtx(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
			}
		}
	}()
}

// okRange terminates when the channel closes: ranging over a channel
// is itself the cancellation path.
func okRange(ch chan int) {
	go func() {
		for range ch {
		}
	}()
}

// drain ranges over a channel; its cancelFact makes spawning it by
// name provably stoppable.
func drain(ch chan int) {
	for range ch {
	}
}

// okNamedInterproc: the cancellation path is proven through drain's
// fact, not the go statement's own body.
func okNamedInterproc(ch chan int) {
	go drain(ch)
}

// okWaitGroup loops a bounded number of times and signals completion.
func okWaitGroup(wg *sync.WaitGroup) {
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			counter++
		}
	}()
}

// okIgnored demonstrates the reasoned escape hatch.
func okIgnored() {
	go spin() //mcvet:ignore goleak fixture demonstrates the reasoned override
}
