// Package staleignore is the RunAll stale-directive fixture: one
// //mcvet:ignore that suppresses a real finding (kept) and one that
// suppresses nothing (reported). Checked by TestStaleDirectives, not
// by want comments — the diagnostic lands on the directive itself, and
// a line holds only one comment.
package staleignore

import "sync"

var mu sync.Mutex
var ch = make(chan int)

// used suppresses a real lockheld finding: the directive earns its keep.
func used() {
	mu.Lock()
	<-ch //mcvet:ignore lockheld fixture: the suppression is exercised
	mu.Unlock()
}

// stale carries a well-formed directive with nothing to suppress.
func stale() {
	mu.Lock() //mcvet:ignore lockheld nothing on this line blocks, so this directive is dead
	mu.Unlock()
}
