// Package seedapp is the consumer half of the cross-package seedflow
// fixture: the finding below exists only if seedlib's seedParamFact
// survived the package boundary.
package seedapp

import "seedflowmulti/seedlib"

// Bad feeds a hard-coded literal into the library's seed parameter.
func Bad() {
	seedlib.New(42) // want `seed argument of seedlib\.New is a hard-coded literal`
}

// Ok threads an opaque root seed through; its provenance is the
// caller's problem, checked at that caller's own origin.
func Ok(root int64) {
	seedlib.New(root)
}
