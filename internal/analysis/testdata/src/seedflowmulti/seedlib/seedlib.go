// Package seedlib is the provider half of the cross-package seedflow
// fixture: New's parameter flows into a rand source, so analyzing this
// package exports a seedParamFact that the seedapp package must see.
package seedlib

import "math/rand"

// New builds the library's rand stream from the caller's seed.
func New(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
