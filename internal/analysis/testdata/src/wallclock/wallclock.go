package wallclock

import "time"

// stamp samples the wall clock: results must be timestamp-free.
func stamp() int64 {
	return time.Now().UnixNano() // want `time\.Now reads the wall clock`
}

// elapsed measures with the wall clock.
func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time\.Since reads the wall clock`
}

// timer constructs a wall-clock timer.
func timer() *time.Timer {
	return time.NewTimer(time.Second) // want `time\.NewTimer reads the wall clock`
}

// durationsFine: duration arithmetic and constants never read the clock.
func durationsFine(d time.Duration) time.Duration {
	return 3*time.Second + d
}

// ignored demonstrates the escape hatch.
func ignored() time.Time {
	return time.Now() //mcvet:ignore wallclock operator-facing log timestamp, never reaches a result
}

// Clock is the injected time source; a method whose receiver
// implements it is the injection boundary and may read the real clock.
type Clock interface {
	Now() time.Time
}

type sysClock struct{}

// Now is exempt structurally: sysClock implements the package's Clock
// interface, so no name-based allowlist entry is needed.
func (sysClock) Now() time.Time { return time.Now() }
