package ctxflow

import (
	"context"
	"time"
)

func process(ctx context.Context) error { return ctx.Err() }

// badRoot re-roots the context below the entry point.
func badRoot() {
	process(context.Background()) // want `context\.Background\(\) re-roots the context below the cmd/ entry point`
}

// badTODO is the same defect with a different spelling.
func badTODO() {
	process(context.TODO()) // want `context\.TODO\(\) re-roots the context below the cmd/ entry point`
}

// okNilGuard is the documented opt-out idiom: the caller explicitly
// passed nil, so rooting here is their choice.
func okNilGuard(ctx context.Context) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return ctx
}

// badSleep ignores the ctx it holds.
func badSleep(ctx context.Context) {
	time.Sleep(time.Millisecond) // want `time\.Sleep ignores the ctx held by badSleep`
}

// badRecv blocks bare although a ctx is in scope.
func badRecv(ctx context.Context, ch chan int) int {
	return <-ch // want `bare channel receive although badRecv takes a ctx`
}

// badSend is the sending twin.
func badSend(ctx context.Context, ch chan int) {
	ch <- 1 // want `bare channel send although badSend takes a ctx`
}

// badSelect blocks without consulting the ctx.
func badSelect(ctx context.Context, ch chan int) {
	select { // want `select blocks without a ctx\.Done\(\) or default case although badSelect takes a ctx`
	case <-ch:
	}
}

// okSelect offers a ctx.Done() case: the blocking is bounded by the
// caller's cancellation.
func okSelect(ctx context.Context, ch chan int) error {
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// okDefault never blocks at all.
func okDefault(ctx context.Context, ch chan int) {
	select {
	case ch <- 1:
	default:
	}
}

// okIgnored demonstrates the reasoned escape hatch.
func okIgnored(ctx context.Context, ch chan int) int {
	return <-ch //mcvet:ignore ctxflow fixture demonstrates the reasoned override
}
