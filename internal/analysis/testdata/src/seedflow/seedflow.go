package seedflow

import (
	"math/rand"
	"time"

	"mcpaging/internal/sim"
)

// badLiteral hard-codes the stream's identity.
func badLiteral() *rand.Rand {
	return rand.New(rand.NewSource(12345)) // want `rand source seed is a hard-coded literal`
}

// badArith derives a sub-seed with stride arithmetic — the correlated
// streams the paper's independence assumptions cannot afford.
func badArith(root int64, i int) *rand.Rand {
	return rand.New(rand.NewSource(root + int64(i)*1000003)) // want `rand source seed is derived with ad-hoc arithmetic`
}

// badClock samples the wall clock: unreproducible from the recorded
// root seed.
func badClock() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `rand source seed samples the wall clock`
}

// okDerived splits the sub-seed off the root through the blessed
// splitmix64 chain.
func okDerived(root int64) *rand.Rand {
	return rand.New(rand.NewSource(sim.DeriveSeed(root, 1, 0)))
}

// okParam: an opaque parameter is fine here — provenance is checked at
// each call site through the exported seedParamFact.
func okParam(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// badCaller feeds a literal into okParam's seed position: the
// parameter fact is what turns this call site into a sink.
func badCaller() *rand.Rand {
	return okParam(7) // want `seed argument of seedflow\.okParam is a hard-coded literal`
}

// Spec carries a seed field into generate, making Spec.Seed a
// fact-carrying seed field.
type Spec struct {
	Seed int64
}

func generate(s Spec) *rand.Rand {
	return rand.New(rand.NewSource(s.Seed))
}

// badField assigns a literal to the fact-carrying field.
func badField() *rand.Rand {
	var s Spec
	s.Seed = 99 // want `seed field seedflow\.Spec\.Seed is a hard-coded literal`
	return generate(s)
}

// badComposite seeds through a composite literal.
func badComposite() *rand.Rand {
	return generate(Spec{Seed: 4}) // want `seed field seedflow\.Spec\.Seed is a hard-coded literal`
}

// okField threads an opaque root through the field.
func okField(root int64) *rand.Rand {
	return generate(Spec{Seed: root})
}

// okIgnored demonstrates the reasoned escape hatch.
func okIgnored() *rand.Rand {
	return rand.New(rand.NewSource(1)) //mcvet:ignore seedflow fixture demonstrates the reasoned override
}
