package baddirective

// Fixture for directive hygiene: each of these malformed directives is
// itself a finding.

//mcvet:ignore
func a() {}

//mcvet:ignore nosuch because reasons
func b() {}

//mcvet:ignore detmap
func c() {}
