package analysis

import (
	"go/ast"
	"strings"
)

// wallclockBanned are the time-package functions that read the wall
// clock or schedule against it. time.Duration arithmetic and constants
// are fine — only sampling the clock breaks reproducibility.
var wallclockBanned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// DefaultWallclockAllow is the standard wallclock allowlist: functions
// that measure request latency for the mcservd /metrics endpoint.
// Latency is operational telemetry about the service, not simulation
// output — it never reaches a result, manifest or cache key.
//
// The fleet's sysClock methods used to be listed here by name; they are
// now exempted structurally instead — any method of a type implementing
// a same-package `Clock` interface is an injection boundary by
// construction (see clockflow), so renaming sysClock cannot silently
// open a wall-clock escape hatch.
func DefaultWallclockAllow() map[string][]string {
	return map[string][]string{
		"internal/server": {"(*Server).handleJob", "(*Server).finishJob"},
	}
}

// Wallclock returns the wallclock analyzer: it forbids reading the
// wall clock in determinism-critical packages, so results, manifests
// and exports stay timestamp-free and byte-reproducible. allow maps an
// import-path suffix to function names (as rendered by
// funcDisplayName) that may legitimately sample the clock, e.g. server
// latency metrics.
func Wallclock(allow map[string][]string) *Analyzer {
	a := &Analyzer{
		Name:     "wallclock",
		Doc:      "forbids wall-clock reads in determinism-critical packages",
		Critical: true,
	}
	allowed := func(pkgPath, fn string) bool {
		for suffix, fns := range allow {
			if pkgPath != suffix && !strings.HasSuffix(pkgPath, "/"+suffix) && !strings.HasSuffix(pkgPath, suffix) {
				continue
			}
			for _, f := range fns {
				if f == fn {
					return true
				}
			}
		}
		return false
	}
	a.Run = func(pass *Pass) {
		check := func(fnName string, root ast.Node) {
			ast.Inspect(root, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				name, ok := pkgFunc(pass.TypesInfo, call, "time")
				if !ok || !wallclockBanned[name] {
					return true
				}
				if fnName != "" && allowed(pass.PkgPath, fnName) {
					return true
				}
				pass.Reportf(call.Pos(),
					"time.%s reads the wall clock in a determinism-critical package; results and manifests must be timestamp-free (//mcvet:ignore wallclock <reason> to override)",
					name)
				return true
			})
		}
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok {
					// Methods of a type implementing a same-package Clock
					// interface are the clock-injection boundary: they may
					// read the wall clock by construction.
					if fd.Body != nil && !isClockImplMethod(pass.Pkg, pass.TypesInfo, fd) {
						check(funcDisplayName(fd), fd.Body)
					}
					continue
				}
				// Package-level declarations (var initializers) have no
				// enclosing function and cannot be allowlisted.
				check("", decl)
			}
		}
	}
	return a
}
