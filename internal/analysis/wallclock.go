package analysis

import (
	"go/ast"
	"strings"
)

// wallclockBanned are the time-package functions that read the wall
// clock or schedule against it. time.Duration arithmetic and constants
// are fine — only sampling the clock breaks reproducibility.
var wallclockBanned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// DefaultWallclockAllow is the standard wallclock allowlist: functions
// that measure request latency for the mcservd /metrics endpoint, and
// the fleet's injected system clock. Latency, probe timing and quota
// refill are operational telemetry about the service, not simulation
// output — they never reach a result, manifest or cache key. The fleet
// funnels every time read through its Clock interface, so sysClock's
// two methods are the package's only clock call sites.
func DefaultWallclockAllow() map[string][]string {
	return map[string][]string{
		"internal/server": {"(*Server).handleJob", "(*Server).finishJob"},
		"internal/fleet":  {"(sysClock).Now", "(sysClock).After"},
	}
}

// Wallclock returns the wallclock analyzer: it forbids reading the
// wall clock in determinism-critical packages, so results, manifests
// and exports stay timestamp-free and byte-reproducible. allow maps an
// import-path suffix to function names (as rendered by
// funcDisplayName) that may legitimately sample the clock, e.g. server
// latency metrics.
func Wallclock(allow map[string][]string) *Analyzer {
	a := &Analyzer{
		Name:     "wallclock",
		Doc:      "forbids wall-clock reads in determinism-critical packages",
		Critical: true,
	}
	allowed := func(pkgPath, fn string) bool {
		for suffix, fns := range allow {
			if pkgPath != suffix && !strings.HasSuffix(pkgPath, "/"+suffix) && !strings.HasSuffix(pkgPath, suffix) {
				continue
			}
			for _, f := range fns {
				if f == fn {
					return true
				}
			}
		}
		return false
	}
	a.Run = func(pass *Pass) {
		check := func(fnName string, root ast.Node) {
			ast.Inspect(root, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				name, ok := pkgFunc(pass.TypesInfo, call, "time")
				if !ok || !wallclockBanned[name] {
					return true
				}
				if fnName != "" && allowed(pass.PkgPath, fnName) {
					return true
				}
				pass.Reportf(call.Pos(),
					"time.%s reads the wall clock in a determinism-critical package; results and manifests must be timestamp-free (//mcvet:ignore wallclock <reason> to override)",
					name)
				return true
			})
		}
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok {
					if fd.Body != nil {
						check(funcDisplayName(fd), fd.Body)
					}
					continue
				}
				// Package-level declarations (var initializers) have no
				// enclosing function and cannot be allowlisted.
				check("", decl)
			}
		}
	}
	return a
}
