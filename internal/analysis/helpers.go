package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// hotpathDirective marks a function as allocation-sensitive for the
// hotalloc analyzer.
const hotpathDirective = "//mcpaging:hotpath"

// hasHotpathDirective reports whether the function's doc comment
// carries the //mcpaging:hotpath directive.
func hasHotpathDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == hotpathDirective || strings.HasPrefix(c.Text, hotpathDirective+" ") {
			return true
		}
	}
	return false
}

// funcDisplayName renders a FuncDecl's name the way the wallclock
// allowlist spells it: "F" for functions, "(T).M" or "(*T).M" for
// methods.
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	return "(" + types.ExprString(fd.Recv.List[0].Type) + ")." + fd.Name.Name
}

// inspectStack walks root in source order, calling f with every node
// and the stack of its ancestors (outermost first, root excluded).
// Returning false from f skips the node's children.
func inspectStack(root ast.Node, f func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := f(n, stack)
		if descend {
			stack = append(stack, n)
		}
		return descend
	})
}

// pkgFunc resolves a call's callee to a package-level function of the
// named import path (e.g. "time", "math/rand") and returns its name.
func pkgFunc(info *types.Info, call *ast.CallExpr, pkgPaths ...string) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	for _, p := range pkgPaths {
		if pn.Imported().Path() == p {
			return sel.Sel.Name, true
		}
	}
	return "", false
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// isInterface reports whether t's underlying type is an interface.
func isInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// pointerShaped reports whether values of t fit an interface's data
// word without a heap copy: pointers, channels, maps, funcs and unsafe
// pointers. Converting such a value to an interface does not allocate.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

// exprString renders e compactly for diagnostics and for structural
// comparison of guard expressions.
func exprString(e ast.Expr) string { return types.ExprString(e) }
