package analysis_test

import (
	"testing"

	"mcpaging/internal/analysis"
	"mcpaging/internal/analysis/analysistest"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, analysis.Hotalloc(), "hotalloc")
}
