package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Obsguard returns the obsguard analyzer: every invocation of an
// Observer value (the sim.Event callback type) must be dominated by a
// nil check of that same value. The simulator's contract is that a nil
// observer costs nothing — the serve loop must not even construct the
// Event — so an unguarded call either crashes on nil or, worse,
// silently forces event construction onto the zero-cost path.
//
// Recognized guards, for a call `obs(e)`:
//
//	if obs != nil { obs(e) }            // dominating if (&&-conjuncts ok)
//	if obs == nil { return }; ... obs(e) // early return in the same block
//
// Calls through a collection whose elements are non-nil by
// construction carry //mcvet:ignore obsguard <reason>.
func Obsguard() *Analyzer {
	a := &Analyzer{
		Name: "obsguard",
		Doc:  "requires Observer event emission to be dominated by an obs != nil guard",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Files {
			inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isObserverCall(pass.TypesInfo, call) {
					return true
				}
				callee := exprString(ast.Unparen(call.Fun))
				if guardedByNilCheck(call, callee, stack) {
					return true
				}
				pass.Reportf(call.Pos(),
					"%s invoked without a dominating %s != nil guard; the nil-observer fast path must stay zero-cost",
					callee, callee)
				return true
			})
		}
	}
	return a
}

// isObserverCall reports whether the call invokes a value of a named
// function type called Observer (sim.Observer, or a fixture's local
// equivalent). Calls of ordinary functions and methods — including
// ones that merely return an Observer — do not match.
func isObserverCall(info *types.Info, call *ast.CallExpr) bool {
	fun := ast.Unparen(call.Fun)
	switch fun.(type) {
	case *ast.Ident, *ast.SelectorExpr:
	default:
		return false
	}
	tv, ok := info.Types[fun]
	if !ok || tv.IsType() || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || named.Obj().Name() != "Observer" {
		return false
	}
	_, isFunc := named.Underlying().(*types.Signature)
	return isFunc
}

// guardedByNilCheck reports whether the call is dominated by a nil
// check of callee: an enclosing `if callee != nil` whose then-branch
// holds the call, or an earlier `if callee == nil { return/continue }`
// in one of the call's enclosing blocks.
func guardedByNilCheck(call *ast.CallExpr, callee string, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.IfStmt:
			// The call must be in the body (not the condition or else
			// branch) for the guard to dominate it.
			inBody := i+1 < len(stack) && stack[i+1] == n.Body
			if inBody && condHasNotNil(n.Cond, callee) {
				return true
			}
		case *ast.BlockStmt:
			// Find which child of the block leads to the call, then scan
			// earlier siblings for an early-return nil guard.
			var child ast.Node
			if i+1 < len(stack) {
				child = stack[i+1]
			} else {
				child = call
			}
			for _, stmt := range n.List {
				if stmt == child {
					break
				}
				if ifs, ok := stmt.(*ast.IfStmt); ok && isEarlyNilReturn(ifs, callee) {
					return true
				}
			}
		case *ast.FuncLit:
			// A closure boundary: guards outside the closure hold for
			// every invocation only if they dominate the closure's
			// creation, which the simple scan above already covered via
			// enclosing blocks; keep scanning outward.
		}
	}
	return false
}

// condHasNotNil reports whether cond contains the conjunct
// `callee != nil`.
func condHasNotNil(cond ast.Expr, callee string) bool {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			return condHasNotNil(e.X, callee) || condHasNotNil(e.Y, callee)
		case token.NEQ:
			return binaryNilCheck(e, callee)
		}
	}
	return false
}

// isEarlyNilReturn matches `if callee == nil { return }` (or a body
// ending in return/continue/break) with no else branch.
func isEarlyNilReturn(ifs *ast.IfStmt, callee string) bool {
	if ifs.Else != nil || ifs.Init != nil {
		return false
	}
	be, ok := ast.Unparen(ifs.Cond).(*ast.BinaryExpr)
	if !ok || be.Op != token.EQL || !binaryNilCheck(be, callee) {
		return false
	}
	if len(ifs.Body.List) == 0 {
		return false
	}
	switch last := ifs.Body.List[len(ifs.Body.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return last.Tok == token.CONTINUE || last.Tok == token.BREAK
	}
	return false
}

// binaryNilCheck reports whether one side of the comparison is the
// callee expression and the other is nil.
func binaryNilCheck(be *ast.BinaryExpr, callee string) bool {
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	matches := func(e ast.Expr) bool { return exprString(ast.Unparen(e)) == callee }
	return (isNil(be.X) && matches(be.Y)) || (isNil(be.Y) && matches(be.X))
}
