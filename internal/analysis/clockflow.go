package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// clockReadFact marks a function that (transitively) samples the wall
// clock via a banned time-package function. Exported across packages so
// a critical caller three hops away from the time.Now still sees it.
type clockReadFact struct {
	Why string
	At  token.Position
}

func (clockReadFact) AFact() {}

// Clockflow returns the clockflow analyzer — the interprocedural
// generalization of wallclock. wallclock flags *direct* time.Now/After
// calls in critical packages; clockflow flags *calls to functions that
// provably reach the wall clock*, so time can only enter a critical
// package through an injected Clock interface value:
//
//   - a method whose receiver implements a same-package interface named
//     Clock may read the clock (it IS the injection boundary — this
//     structural proof replaces the old name-based sysClock allowlist);
//   - calls through a Clock interface resolve to the interface method,
//     which has no body and hence no fact — the legitimate path;
//   - a static call that bypasses the interface (sysClock{}.Now(), or a
//     helper that transitively reads the clock) carries the fact and is
//     reported.
//
// Functions on the wallclock latency-metrics allowlist are fact-free:
// the allowlist asserts their clock reads never reach a result, so
// calling them is fine too.
func Clockflow() *Analyzer {
	a := &Analyzer{
		Name:     "clockflow",
		Doc:      "requires wall-clock time in critical packages to flow through an injected Clock",
		Critical: true,
	}
	allow := DefaultWallclockAllow()
	a.Run = func(pass *Pass) { runClockflow(pass, allow) }
	return a
}

// isClockImplMethod reports whether fd is a method whose receiver type
// (or its pointer) implements an interface named "Clock" declared at
// package scope in the same package — the structural signature of an
// injected-clock implementation.
func isClockImplMethod(pkg *types.Package, info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	obj := pkg.Scope().Lookup("Clock")
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return false
	}
	iface, ok := tn.Type().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	fn, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	return types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface)
}

// wallclockAllowed reports whether fn is on the wallclock latency
// allowlist, rendering its display name ("F", "(T).M", "(*T).M") from
// the type object so callers need no AST.
func wallclockAllowed(allow map[string][]string, fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	pkgPath := fn.Pkg().Path()
	display := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		// An empty qualifier omits the package prefix, matching
		// funcDisplayName's "(T).M" / "(*T).M" rendering.
		display = "(" + types.TypeString(sig.Recv().Type(), func(*types.Package) string { return "" }) + ")." + fn.Name()
	}
	for suffix, fns := range allow {
		if pkgPath != suffix && !strings.HasSuffix(pkgPath, "/"+suffix) && !strings.HasSuffix(pkgPath, suffix) {
			continue
		}
		for _, f := range fns {
			if f == display {
				return true
			}
		}
	}
	return false
}

func runClockflow(pass *Pass, allow map[string][]string) {
	info := pass.TypesInfo

	// Direct facts: functions whose own body calls a banned time
	// function. Allowlisted latency metrics are deliberately fact-free.
	for _, fnKey := range pass.Graph.CallerKeys() {
		fn := pass.Graph.Funcs[fnKey]
		fd := pass.Graph.Decls[fnKey]
		if wallclockAllowed(allow, fn) {
			continue
		}
		var why string
		var at token.Pos
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if why != "" {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := pkgFunc(info, call, "time"); ok && wallclockBanned[name] {
				why, at = "time."+name, call.Pos()
				return false
			}
			return true
		})
		if why != "" {
			pass.Facts.ExportFuncFact(fn, clockReadFact{Why: why, At: pass.Fset.Position(at)})
		}
	}

	// Same-package fixpoint (imported facts already present). An
	// allowlisted caller stays fact-free, so latency metrics do not
	// taint their callers.
	pass.Graph.Fixpoint(func(caller *types.Func, e CallEdge) bool {
		if wallclockAllowed(allow, caller) || wallclockAllowed(allow, e.Callee) {
			return false
		}
		var cf clockReadFact
		if !pass.Facts.ImportFuncFact(e.Callee, &cf) || pass.Facts.HasFuncFact(caller, clockReadFact{}) {
			return false
		}
		pass.Facts.ExportFuncFact(caller, clockReadFact{
			Why: fmt.Sprintf("via %s: %s", shortFuncKey(e.CalleeKey), cf.Why),
			At:  cf.At,
		})
		return true
	})

	// Report: calls from non-exempt functions to fact-carrying module
	// functions. Direct time.* calls stay wallclock's finding — the two
	// analyzers partition the space instead of double-reporting.
	for _, fnKey := range pass.Graph.CallerKeys() {
		fd := pass.Graph.Decls[fnKey]
		if isClockImplMethod(pass.Pkg, info, fd) || wallclockAllowed(allow, pass.Graph.Funcs[fnKey]) {
			continue
		}
		for _, e := range pass.Graph.Edges[fnKey] {
			if e.Callee.Pkg() != nil && e.Callee.Pkg().Path() == "time" {
				continue
			}
			if wallclockAllowed(allow, e.Callee) {
				continue
			}
			var cf clockReadFact
			if !pass.Facts.ImportFuncFact(e.Callee, &cf) {
				continue
			}
			pass.Reportf(e.Pos,
				"call to %s reaches the wall clock (%s at %s) outside the injected Clock — thread a Clock value instead (//mcvet:ignore clockflow <reason> to override)",
				shortFuncKey(e.CalleeKey), cf.Why, cf.At)
		}
	}
}
