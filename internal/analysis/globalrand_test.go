package analysis_test

import (
	"testing"

	"mcpaging/internal/analysis"
	"mcpaging/internal/analysis/analysistest"
)

func TestGlobalrand(t *testing.T) {
	analysistest.Run(t, analysis.Globalrand(), "globalrand")
}
