package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"sync"
)

// A Package is one parsed, type-checked package ready for analysis.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	// DepOnly marks an in-module package that was loaded only because a
	// named target imports it. RunAll analyzes it in facts-only mode:
	// interprocedural facts propagate out of it, diagnostics do not.
	DepOnly bool
}

// Load loads, parses and type-checks the non-test Go files of every
// package matched by the go-list patterns — plus, for interprocedural
// analysis, every in-module package those targets depend on — resolving
// imports through the compiler's export data (`go list -export`). dir
// is the directory the patterns are interpreted in (any directory
// inside the module).
//
// Packages are returned in dependency order (imports before importers),
// so a driver sweeping them front to back sees the facts of a package's
// imports before the package itself. In-module packages the patterns
// did not name directly carry DepOnly.
//
// Test files are not loaded: mcvet guards the invariants of shipped
// code, and the export-data path has no compiled form of test packages
// to import.
func Load(dir string, patterns ...string) ([]*Package, error) {
	exports, list, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range list {
		pkg, err := typeCheck(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkg.DepOnly = t.DepOnly
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Deps       []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -export -json -deps` and splits the result into
// the export-data index (all packages) and the module's packages —
// targets plus in-module deps — in dependency order. Ordering leans on
// Deps being *transitive*: if A imports B then Deps(A) ⊋ Deps(B), so
// sorting by dep count (ties by path, for determinism) is a
// topological order.
func goList(dir string, patterns []string) (map[string]string, []listPkg, error) {
	args := append([]string{"list", "-export", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	exports := make(map[string]string)
	var mod []listPkg
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		// The module is stdlib-only, so every non-standard package in
		// the listing is an in-module package.
		if !p.Standard {
			mod = append(mod, p)
		}
	}
	sort.Slice(mod, func(i, j int) bool {
		if len(mod[i].Deps) != len(mod[j].Deps) {
			return len(mod[i].Deps) < len(mod[j].Deps)
		}
		return mod[i].ImportPath < mod[j].ImportPath
	})
	return exports, mod, nil
}

// exportImporter returns a types.Importer that reads compiler export
// data from the files indexed by exports.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// typeCheck parses and type-checks one package's files.
func typeCheck(fset *token.FileSet, imp types.Importer, pkgPath, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, g := range goFiles {
		name := g
		if !filepath.IsAbs(name) {
			name = filepath.Join(dir, g)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var firstErr error
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if firstErr != nil {
		err = firstErr
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", pkgPath, err)
	}
	return &Package{
		PkgPath:   pkgPath,
		Dir:       dir,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// exportCache memoizes go list -export lookups for LoadDir, which
// fixture tests call once per analyzer case.
var exportCache = struct {
	sync.Mutex
	m map[string]string
}{m: make(map[string]string)}

// LoadDir parses and type-checks the .go files of a single directory
// outside the module's package graph (an analysistest fixture), under
// the given synthetic import path. Imports — standard library or
// mcpaging packages — are resolved with export data listed from
// moduleDir.
func LoadDir(moduleDir, pkgPath, dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %v", err)
	}
	var goFiles []string
	for _, e := range ents {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			goFiles = append(goFiles, filepath.Join(dir, e.Name()))
		}
	}
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("analysis: no .go files in %s", dir)
	}
	// Pre-scan imports so one go list call resolves them all.
	fset := token.NewFileSet()
	need := make(map[string]bool)
	for _, g := range goFiles {
		f, err := parser.ParseFile(fset, g, nil, parser.ImportsOnly)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		for _, im := range f.Imports {
			p := im.Path.Value
			need[p[1:len(p)-1]] = true
		}
	}
	exports := make(map[string]string)
	var missing []string
	exportCache.Lock()
	for p := range need {
		if f, ok := exportCache.m[p]; ok {
			exports[p] = f
		} else {
			missing = append(missing, p)
		}
	}
	exportCache.Unlock()
	if len(missing) > 0 {
		more, _, err := goList(moduleDir, missing)
		if err != nil {
			return nil, err
		}
		exportCache.Lock()
		for p, f := range more {
			exportCache.m[p] = f
			exports[p] = f
		}
		exportCache.Unlock()
	}
	fset = token.NewFileSet()
	return typeCheck(fset, exportImporter(fset, exports), pkgPath, "", goFiles)
}

// A FixtureDir names one package of a multi-package fixture: the
// synthetic import path later fixture packages use to import it, and
// the directory (relative to the fixture root) holding its files.
type FixtureDir struct {
	PkgPath string
	Dir     string
}

// chainImporter resolves fixture-local import paths to the packages
// type-checked earlier in the same LoadDirs call, falling back to
// export data for everything else (stdlib, mcpaging packages).
type chainImporter struct {
	local    map[string]*types.Package
	fallback types.Importer
}

func (c chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.local[path]; ok {
		return p, nil
	}
	return c.fallback.Import(path)
}

// LoadDirs parses and type-checks a multi-package analysistest fixture:
// each entry's directory becomes a package under its synthetic import
// path, and later entries may import earlier ones by that path — the
// fixture-level stand-in for a dependency edge, so fact export/import
// across package boundaries can be exercised without the fixture being
// part of the module's build graph. Entries must therefore be listed
// in dependency order. Packages come back in the same order, ready for
// a facts-threading driver.
func LoadDirs(moduleDir string, dirs []FixtureDir) ([]*Package, error) {
	local := make(map[string]*types.Package)
	fset := token.NewFileSet()
	var pkgs []*Package
	for _, d := range dirs {
		ents, err := os.ReadDir(d.Dir)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		var goFiles []string
		need := make(map[string]bool)
		for _, e := range ents {
			if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
				continue
			}
			name := filepath.Join(d.Dir, e.Name())
			goFiles = append(goFiles, name)
			f, err := parser.ParseFile(token.NewFileSet(), name, nil, parser.ImportsOnly)
			if err != nil {
				return nil, fmt.Errorf("analysis: %v", err)
			}
			for _, im := range f.Imports {
				p := im.Path.Value
				need[p[1:len(p)-1]] = true
			}
		}
		if len(goFiles) == 0 {
			return nil, fmt.Errorf("analysis: no .go files in %s", d.Dir)
		}
		exports, err := cachedExports(moduleDir, need, local)
		if err != nil {
			return nil, err
		}
		imp := chainImporter{local: local, fallback: exportImporter(fset, exports)}
		pkg, err := typeCheck(fset, imp, d.PkgPath, "", goFiles)
		if err != nil {
			return nil, err
		}
		local[d.PkgPath] = pkg.Types
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// cachedExports resolves the import paths in need — minus those already
// satisfied locally — to export-data files via the shared cache.
func cachedExports(moduleDir string, need map[string]bool, local map[string]*types.Package) (map[string]string, error) {
	exports := make(map[string]string)
	var missing []string
	exportCache.Lock()
	for p := range need {
		if _, ok := local[p]; ok {
			continue
		}
		if f, ok := exportCache.m[p]; ok {
			exports[p] = f
		} else {
			missing = append(missing, p)
		}
	}
	exportCache.Unlock()
	if len(missing) > 0 {
		more, _, err := goList(moduleDir, missing)
		if err != nil {
			return nil, err
		}
		exportCache.Lock()
		for p, f := range more {
			exportCache.m[p] = f
			exports[p] = f
		}
		exportCache.Unlock()
	}
	return exports, nil
}
