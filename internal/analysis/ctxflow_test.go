package analysis_test

import (
	"testing"

	"mcpaging/internal/analysis"
	"mcpaging/internal/analysis/analysistest"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, analysis.Ctxflow(), "ctxflow")
}
