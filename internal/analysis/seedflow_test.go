package analysis_test

import (
	"testing"

	"mcpaging/internal/analysis"
	"mcpaging/internal/analysis/analysistest"
)

func TestSeedflow(t *testing.T) {
	analysistest.Run(t, analysis.Seedflow(), "seedflow")
}

// TestSeedflowAcrossPackages is the fact-propagation test: seedlib's
// parameter fact must survive the package boundary for seedapp's
// literal-seed call site to be flagged.
func TestSeedflowAcrossPackages(t *testing.T) {
	analysistest.RunDirs(t, analysis.Seedflow(), "seedflowmulti/seedlib", "seedflowmulti/seedapp")
}
