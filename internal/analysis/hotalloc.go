package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Hotalloc returns the hotalloc analyzer: inside functions annotated
// //mcpaging:hotpath it flags constructs that heap-allocate on the
// steady-state path — the dense-ID serve loop, the array-backed policy
// methods and the telemetry event path are contractually
// allocation-free after warm-up, and this analyzer keeps them that
// way without rerunning the allocation benchmarks on every review.
//
// Flagged inside an annotated function:
//
//   - &T{...} composite literals (escape to the heap);
//   - slice and map composite literals;
//   - func literals that capture enclosing locals (closure allocation);
//   - conversions of non-pointer-shaped values to interface types
//     (runtime convT* allocation), including implicit conversions at
//     call arguments and assignments;
//   - make(map[...]...) without a size hint, and any make or new;
//   - append and string<->[]byte conversions inside a loop;
//   - go statements (a spawn allocates a goroutine and hands the hot
//     loop to the scheduler).
//
// Cold paths are exempt: anything inside a `return ..., err` whose
// function returns an error (abort paths), and arguments to panic.
// A statement prefixed with //mcpaging:coldpath <reason> is exempt with
// its whole subtree — the marker for rare-by-construction branches
// (rollback, one-time growth) inside an otherwise hot function.
// Deliberate single-line slow paths carry //mcvet:ignore hotalloc
// <reason>.
func Hotalloc() *Analyzer {
	a := &Analyzer{
		Name: "hotalloc",
		Doc:  "flags heap allocations inside //mcpaging:hotpath functions",
	}
	a.Run = func(pass *Pass) {
		cold := coldpathLines(pass)
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !hasHotpathDirective(fd) {
					continue
				}
				checkHotFunc(pass, fd, cold)
			}
		}
	}
	return a
}

// coldpathDirective exempts the statement below it (subtree included)
// from hotalloc.
const coldpathDirective = "//mcpaging:coldpath"

// coldpathLines indexes the package's //mcpaging:coldpath directives:
// a statement starting on the directive's own line or the line after it
// is exempt.
func coldpathLines(pass *Pass) map[string]map[int]bool {
	idx := make(map[string]map[int]bool)
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if c.Text != coldpathDirective && !strings.HasPrefix(c.Text, coldpathDirective+" ") {
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				m := idx[pos.Filename]
				if m == nil {
					m = make(map[int]bool)
					idx[pos.Filename] = m
				}
				m[pos.Line] = true
				m[pos.Line+1] = true
			}
		}
	}
	return idx
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl, cold map[string]map[int]bool) {
	info := pass.TypesInfo
	returnsError := funcReturnsError(fd)
	reported := make(map[ast.Node]bool)

	inspectStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		if _, isStmt := n.(ast.Stmt); isStmt {
			if pos := pass.Fset.Position(n.Pos()); cold[pos.Filename][pos.Line] {
				return false // declared cold: skip the whole subtree
			}
		}
		if coldPath(info, stack, returnsError) {
			return true
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement spawns a goroutine in a hotpath function; move the spawn to setup and reuse workers")
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					reported[lit] = true
					pass.Reportf(n.Pos(), "&%s escapes to the heap in a hotpath function", litTypeString(info, lit))
				}
			}
		case *ast.CompositeLit:
			if reported[n] {
				return true
			}
			if tv, ok := info.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice:
					pass.Reportf(n.Pos(), "slice literal allocates in a hotpath function")
				case *types.Map:
					pass.Reportf(n.Pos(), "map literal allocates in a hotpath function")
				}
			}
		case *ast.FuncLit:
			if name, ok := capturesLocal(info, fd, n); ok {
				pass.Reportf(n.Pos(), "func literal captures %s and allocates a closure in a hotpath function", name)
			}
		case *ast.CallExpr:
			checkHotCall(pass, n, stack)
		case *ast.AssignStmt:
			for i := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				checkIfaceAssign(pass, n.Lhs[i], n.Rhs[i])
			}
		}
		return true
	})
}

// checkHotCall handles the call-shaped checks: builtins, explicit
// conversions and implicit interface conversions at arguments.
func checkHotCall(pass *Pass, call *ast.CallExpr, stack []ast.Node) {
	info := pass.TypesInfo
	inLoop := loopDepth(stack) > 0
	switch {
	case isBuiltin(info, call, "make"):
		tv, ok := info.Types[call]
		if !ok {
			return
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); isMap && len(call.Args) == 1 {
			pass.Reportf(call.Pos(), "make(map) without a size hint in a hotpath function; preallocate the expected capacity")
		} else if inLoop {
			pass.Reportf(call.Pos(), "make inside the hot loop allocates every iteration; hoist and reuse")
		}
	case isBuiltin(info, call, "append"):
		if inLoop {
			pass.Reportf(call.Pos(), "append inside the hot loop may grow its backing array; preallocate capacity outside the loop")
		}
	case isBuiltin(info, call, "new"):
		pass.Reportf(call.Pos(), "new allocates in a hotpath function")
	case isBuiltin(info, call, "panic"):
		// The panic call itself is the cold path; its argument may box.
		return
	case isConversion(info, call):
		if len(call.Args) != 1 {
			return
		}
		dst := info.Types[call.Fun].Type
		src := info.Types[call.Args[0]].Type
		if isInterface(dst) {
			checkIfaceConv(pass, call.Args[0], dst)
		} else if inLoop && stringBytesConv(dst, src) {
			pass.Reportf(call.Pos(), "string/[]byte conversion inside the hot loop copies; hoist or use a reused buffer")
		}
	default:
		sig := calleeSignature(info, call)
		if sig == nil {
			return
		}
		np := sig.Params().Len()
		for i, arg := range call.Args {
			var pt types.Type
			switch {
			case i < np-1 || (!sig.Variadic() && i < np):
				pt = sig.Params().At(i).Type()
			case sig.Variadic() && call.Ellipsis == token.NoPos:
				pt = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
			default:
				continue
			}
			if isInterface(pt) {
				checkIfaceConv(pass, arg, pt)
			}
		}
	}
}

// checkIfaceAssign flags `lhs = rhs` when it boxes a concrete value
// into an interface.
func checkIfaceAssign(pass *Pass, lhs, rhs ast.Expr) {
	info := pass.TypesInfo
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	lt, ok := info.Types[lhs]
	if !ok || !isInterface(lt.Type) {
		return
	}
	checkIfaceConv(pass, rhs, lt.Type)
}

// checkIfaceConv flags boxing expr into the interface type dst unless
// the value is pointer-shaped, constant, nil or already an interface.
func checkIfaceConv(pass *Pass, expr ast.Expr, dst types.Type) {
	info := pass.TypesInfo
	tv, ok := info.Types[ast.Unparen(expr)]
	if !ok || tv.Type == nil {
		return
	}
	if tv.Value != nil || tv.IsNil() {
		return // constants and nil don't box at run time
	}
	if isInterface(tv.Type) || pointerShaped(tv.Type) {
		return
	}
	pass.Reportf(expr.Pos(),
		"%s value boxed into %s allocates in a hotpath function",
		tv.Type.String(), dst.String())
}

// coldPath reports whether the node behind stack sits on an abort
// path: inside a `return ..., err` of an error-returning function, or
// in a panic argument. Allocation there happens at most once per run.
func coldPath(info *types.Info, stack []ast.Node, returnsError bool) bool {
	for _, n := range stack {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			if !returnsError || len(n.Results) == 0 {
				continue
			}
			last := n.Results[len(n.Results)-1]
			if id, ok := ast.Unparen(last).(*ast.Ident); ok && id.Name == "nil" {
				continue
			}
			return true
		case *ast.CallExpr:
			if isBuiltin(info, n, "panic") {
				return true
			}
		}
	}
	return false
}

// loopDepth counts enclosing for/range statements on the stack.
func loopDepth(stack []ast.Node) int {
	d := 0
	for _, n := range stack {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			d++
		}
	}
	return d
}

// capturesLocal returns the name of a variable the func literal
// captures from the enclosing function, if any.
func capturesLocal(info *types.Info, outer *ast.FuncDecl, lit *ast.FuncLit) (string, bool) {
	found := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		// Captured: declared inside the outer function but outside the
		// literal itself (receiver and parameters included).
		if obj.Pos() >= outer.Pos() && obj.Pos() < outer.End() &&
			(obj.Pos() < lit.Pos() || obj.Pos() >= lit.End()) {
			found = obj.Name()
			return false
		}
		return true
	})
	return found, found != ""
}

// funcReturnsError reports whether fd's last result is of type error.
func funcReturnsError(fd *ast.FuncDecl) bool {
	rt := fd.Type.Results
	if rt == nil || len(rt.List) == 0 {
		return false
	}
	last := rt.List[len(rt.List)-1].Type
	id, ok := last.(*ast.Ident)
	return ok && id.Name == "error"
}

// isConversion reports whether call is a type conversion T(x).
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// calleeSignature returns the signature of an ordinary call, or nil
// for builtins and conversions.
func calleeSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// stringBytesConv reports a conversion between string and []byte.
func stringBytesConv(dst, src types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isBytes := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && b.Kind() == types.Byte
	}
	return (isStr(dst) && isBytes(src)) || (isBytes(dst) && isStr(src))
}

// litTypeString renders a composite literal's type for diagnostics.
func litTypeString(info *types.Info, lit *ast.CompositeLit) string {
	if lit.Type != nil {
		return exprString(lit.Type) + "{...}"
	}
	if tv, ok := info.Types[lit]; ok {
		return tv.Type.String() + "{...}"
	}
	return "{...}"
}
