package analysis_test

import (
	"testing"

	"mcpaging/internal/analysis"
	"mcpaging/internal/analysis/analysistest"
)

func TestClockflow(t *testing.T) {
	analysistest.Run(t, analysis.Clockflow(), "clockflow")
}
