package analysis_test

import (
	"testing"

	"mcpaging/internal/analysis"
	"mcpaging/internal/analysis/analysistest"
)

func TestWallclock(t *testing.T) {
	analysistest.Run(t, analysis.Wallclock(analysis.DefaultWallclockAllow()), "wallclock")
}

// TestWallclockAllowlist injects a fixture-specific allowlist, the same
// mechanism that exempts mcservd's request-latency metrics.
func TestWallclockAllowlist(t *testing.T) {
	allow := map[string][]string{
		"wallclockallow": {"(*Server).handleJob"},
	}
	analysistest.Run(t, analysis.Wallclock(allow), "wallclockallow")
}
