package analysis_test

import (
	"strings"
	"testing"

	"mcpaging/internal/analysis"
	"mcpaging/internal/analysis/analysistest"
)

func TestIsCritical(t *testing.T) {
	cases := []struct {
		pkgPath string
		want    bool
	}{
		{"mcpaging/internal/sim", true},
		{"mcpaging/internal/sweep", true},
		{"mcpaging/internal/cache", true},
		{"mcpaging/internal/telemetry", true},
		{"mcpaging/internal/offline", true},
		{"mcpaging/internal/server", true},
		{"mcpaging/internal/fleet", true},
		{"mcpaging/internal/analysis", false},
		{"mcpaging/cmd/mcvet", false},
		{"mcpaging/internal/simx", false}, // prefix match is per path element
	}
	for _, c := range cases {
		if got := analysis.IsCritical(c.pkgPath); got != c.want {
			t.Errorf("IsCritical(%q) = %v, want %v", c.pkgPath, got, c.want)
		}
	}
}

// TestDirectiveHygiene checks that malformed //mcvet:ignore directives
// are themselves findings: no analyzer, unknown analyzer, no reason.
func TestDirectiveHygiene(t *testing.T) {
	pkg := analysistest.Load(t, "baddirective")
	diags := analysis.RunSuite(analysis.DefaultSuite(), pkg)
	want := []string{
		"mcvet:ignore directive names no analyzer",
		`mcvet:ignore directive names unknown analyzer "nosuch"`,
		"mcvet:ignore detmap directive is missing a reason",
	}
	if len(diags) != len(want) {
		t.Fatalf("got %d diagnostics, want %d: %v", len(diags), len(want), diags)
	}
	for i, d := range diags {
		if d.Analyzer != "mcvet" {
			t.Errorf("diagnostic %d attributed to %q, want mcvet", i, d.Analyzer)
		}
		if d.Message != want[i] {
			t.Errorf("diagnostic %d = %q, want %q", i, d.Message, want[i])
		}
	}
}

// TestSuiteCriticalScoping checks that RunSuite skips Critical
// analyzers on non-critical packages: the detmap fixture package is not
// a critical import path, so its map ranges pass the suite untouched.
func TestSuiteCriticalScoping(t *testing.T) {
	pkg := analysistest.Load(t, "detmap")
	for _, d := range analysis.RunSuite(analysis.DefaultSuite(), pkg) {
		if d.Analyzer == "detmap" {
			t.Errorf("detmap ran on non-critical package %s: %s", pkg.PkgPath, d)
		}
	}
	if got := analysis.RunAnalyzer(analysis.Detmap(), pkg); len(got) == 0 {
		t.Fatal("RunAnalyzer found nothing in the detmap fixture; scoping test is vacuous")
	}
}

// TestDefaultSuite pins the suite composition mcvet ships with.
func TestDefaultSuite(t *testing.T) {
	var names []string
	for _, a := range analysis.DefaultSuite() {
		names = append(names, a.Name)
	}
	if got, want := strings.Join(names, ","), "detmap,wallclock,globalrand,hotalloc,obsguard,lockheld,goleak,ctxflow,seedflow,clockflow"; got != want {
		t.Fatalf("DefaultSuite = %s, want %s", got, want)
	}
}

// TestStaleDirectives checks RunAll's dead-annotation detection: a
// well-formed //mcvet:ignore that suppressed nothing anywhere in the
// sweep is itself a finding, while one that earned its keep is not.
// The diagnostic lands on the directive's own line, which cannot carry
// a separate want comment, so this is a direct assertion instead of a
// fixture-want test.
func TestStaleDirectives(t *testing.T) {
	pkg := analysistest.Load(t, "staleignore")
	diags := analysis.RunAll(analysis.DefaultSuite(), []*analysis.Package{pkg})
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly the stale directive: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "mcvet" {
		t.Errorf("stale directive attributed to %q, want mcvet", d.Analyzer)
	}
	if want := "mcvet:ignore lockheld directive suppresses nothing — drop it"; d.Message != want {
		t.Errorf("message = %q, want %q", d.Message, want)
	}
	if !strings.Contains(d.Pos.Filename, "staleignore") || d.Pos.Line != 22 {
		t.Errorf("diagnostic at %s:%d, want the stale directive's line 22", d.Pos.Filename, d.Pos.Line)
	}
}
