package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// seedParamFact marks parameters of a function that flow into a
// math/rand source constructor (directly or transitively): arguments
// passed at those positions are seed values, so call sites inherit the
// provenance obligation.
type seedParamFact struct {
	Positions []int
}

func (seedParamFact) AFact() {}

// seedFieldFact marks a struct field whose value flows into a
// math/rand source constructor (e.g. workload.Spec.Seed): every
// assignment or composite-literal value of that field is a seed sink.
// Keyed in the store by "seedfield:<pkg>.<Type>.<Field>".
type seedFieldFact struct {
	At token.Position
}

func (seedFieldFact) AFact() {}

// Seedflow returns the seedflow analyzer: every seed reaching a
// math/rand source in a critical package must derive from the
// sim.DeriveSeed splitmix64 chain (or arrive opaquely via a parameter,
// field or call, whose provenance is checked at its own origin) — not
// from a hard-coded literal, hand-rolled arithmetic like
// `base + i*1000003` (stride arithmetic correlates the streams the
// paper's claims need independent), or the wall clock.
func Seedflow() *Analyzer {
	a := &Analyzer{
		Name:     "seedflow",
		Doc:      "requires rand seeds in critical packages to derive from the sim.DeriveSeed chain",
		Critical: true,
	}
	a.Run = runSeedflow
	return a
}

// seedSink is one expression whose value becomes a seed.
type seedSink struct {
	arg    ast.Expr
	walker *TaintWalker
	fn     *types.Func // enclosing function (nil at package scope)
	desc   string
}

// randSourceCtor reports whether call constructs a math/rand source
// whose arguments are seeds.
func randSourceCtor(info *types.Info, call *ast.CallExpr) bool {
	name, ok := pkgFunc(info, call, "math/rand", "math/rand/v2")
	return ok && (name == "NewSource" || name == "NewPCG")
}

// paramPositions maps a declaration's flattened parameter variables to
// their call-argument positions.
func paramPositions(info *types.Info, ft *ast.FuncType) map[*types.Var]int {
	out := make(map[*types.Var]int)
	if ft.Params == nil {
		return out
	}
	i := 0
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if v, ok := info.Defs[name].(*types.Var); ok {
				out[v] = i
			}
			i++
		}
		if len(field.Names) == 0 {
			i++
		}
	}
	return out
}

// structFieldKey resolves the field key of a composite-literal entry.
func structFieldKey(info *types.Info, lit *ast.CompositeLit, kv *ast.KeyValueExpr) (string, bool) {
	id, ok := kv.Key.(*ast.Ident)
	if !ok {
		return "", false
	}
	t := info.TypeOf(lit)
	if t == nil {
		return "", false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return "", false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == id.Name {
			return FieldKeyOfDef(named, st.Field(i)), true
		}
	}
	return "", false
}

func runSeedflow(pass *Pass) {
	info := pass.TypesInfo

	// collect walks every function body and gathers the current sink
	// set: direct source-constructor arguments, arguments at
	// fact-carrying parameter positions, and writes to fact-carrying
	// fields. The sink set grows as facts accumulate, so collection and
	// fact export iterate to a fixpoint before anything is reported —
	// Generate(spec) feeding spec.Seed into NewSource is what turns
	// Mix's `s.Seed = …` assignment into a sink at all.
	collect := func() []seedSink {
		var sinks []seedSink
		for _, fnKey := range pass.Graph.CallerKeys() {
			fd := pass.Graph.Decls[fnKey]
			fn := pass.Graph.Funcs[fnKey]
			w := NewTaintWalker(info, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if randSourceCtor(info, n) {
						for _, arg := range n.Args {
							sinks = append(sinks, seedSink{arg: arg, walker: w, fn: fn, desc: "rand source seed"})
						}
						return true
					}
					if callee := ResolveCallee(info, n); callee != nil {
						var pf seedParamFact
						if pass.Facts.ImportFuncFact(callee, &pf) {
							for _, i := range pf.Positions {
								if i < len(n.Args) {
									sinks = append(sinks, seedSink{arg: n.Args[i], walker: w, fn: fn,
										desc: "seed argument of " + shortFuncKey(FuncKey(callee))})
								}
							}
						}
					}
				case *ast.AssignStmt:
					if len(n.Lhs) != len(n.Rhs) {
						return true
					}
					for i, lhs := range n.Lhs {
						sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
						if !ok {
							continue
						}
						selection, ok := info.Selections[sel]
						if !ok || selection.Kind() != types.FieldVal {
							continue
						}
						v, ok := selection.Obj().(*types.Var)
						if !ok || !v.IsField() {
							continue
						}
						fkey := fieldKeyOf(info, sel, v)
						if pass.Facts.hasKeyFact("seedfield:"+fkey, seedFieldFact{}) {
							sinks = append(sinks, seedSink{arg: n.Rhs[i], walker: w, fn: fn,
								desc: "seed field " + shortLock(fkey)})
						}
					}
				case *ast.CompositeLit:
					for _, elt := range n.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						if fkey, ok := structFieldKey(info, n, kv); ok &&
							pass.Facts.hasKeyFact("seedfield:"+fkey, seedFieldFact{}) {
							sinks = append(sinks, seedSink{arg: kv.Value, walker: w, fn: fn,
								desc: "seed field " + shortLock(fkey)})
						}
					}
				}
				return true
			})
		}
		return sinks
	}

	// exportFacts turns param/field leaves of the sinks' provenance
	// into facts, reporting whether anything new appeared.
	exportFacts := func(sinks []seedSink) bool {
		changed := false
		for _, s := range sinks {
			prov := s.walker.Origins(s.arg)
			for _, o := range prov.Origins {
				switch o.Kind {
				case OriginParam:
					if s.fn == nil || o.Var == nil {
						continue
					}
					fd := pass.Graph.Decls[FuncKey(s.fn)]
					if fd == nil {
						continue
					}
					pos, ok := paramPositions(info, fd.Type)[o.Var]
					if !ok {
						continue
					}
					var cur seedParamFact
					pass.Facts.ImportFuncFact(s.fn, &cur)
					if !containsInt(cur.Positions, pos) {
						cur.Positions = append(cur.Positions, pos)
						sort.Ints(cur.Positions)
						pass.Facts.ExportFuncFact(s.fn, seedParamFact{Positions: cur.Positions})
						changed = true
					}
				case OriginField:
					if o.FieldKey == "" {
						continue
					}
					if !pass.Facts.hasKeyFact("seedfield:"+o.FieldKey, seedFieldFact{}) {
						pass.Facts.exportKey("seedfield:"+o.FieldKey, seedFieldFact{At: pass.Fset.Position(o.Pos)})
						changed = true
					}
				}
			}
		}
		return changed
	}

	var sinks []seedSink
	for {
		sinks = collect()
		if !exportFacts(sinks) {
			break
		}
	}

	reported := make(map[token.Pos]bool)
	for _, s := range sinks {
		if reported[s.arg.Pos()] {
			continue
		}
		prov := s.walker.Origins(s.arg)
		var verdict string
		switch {
		case prov.Arith:
			verdict = "is derived with ad-hoc arithmetic — decorrelate sub-seeds with sim.DeriveSeed(root, stream, index) instead"
		case prov.Any(OriginLiteral):
			verdict = "is a hard-coded literal — derive it from the run's root seed via sim.DeriveSeed"
		default:
			for _, o := range prov.Origins {
				if o.Kind == OriginCall && o.Fn != nil && o.Fn.Pkg() != nil && o.Fn.Pkg().Path() == "time" {
					verdict = "samples the wall clock — seeds must be reproducible from the recorded root seed"
					break
				}
			}
		}
		if verdict == "" {
			continue
		}
		reported[s.arg.Pos()] = true
		pass.Reportf(s.arg.Pos(), "%s %s (//mcvet:ignore seedflow <reason> to override)", s.desc, verdict)
	}
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
