package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// OriginKind classifies where a value ultimately came from, as far as a
// flow-insensitive walk of one function body can tell.
type OriginKind int

const (
	// OriginLiteral: a basic literal (a hard-coded constant).
	OriginLiteral OriginKind = iota
	// OriginParam: a parameter (or receiver) of the enclosing function —
	// provenance is the caller's responsibility.
	OriginParam
	// OriginField: a struct field read — provenance is whoever populated
	// the struct.
	OriginField
	// OriginCall: the result of a function or method call; Fn names it
	// when the callee is static.
	OriginCall
	// OriginVar: a non-local (package-level) variable.
	OriginVar
	// OriginUnknown: anything the walker cannot classify (index into a
	// slice of unknown provenance, dynamic call, …).
	OriginUnknown
)

// An Origin is one leaf of a value's provenance tree.
type Origin struct {
	Kind OriginKind
	Pos  token.Pos
	// Fn is the callee for OriginCall leaves with a static callee.
	Fn *types.Func
	// FieldKey identifies the field for OriginField leaves, as rendered
	// by fieldKeyOf.
	FieldKey string
	// Var is the parameter for OriginParam leaves.
	Var *types.Var
}

// A Provenance summarizes every leaf an expression's value may
// originate from, plus whether any arithmetic was applied along the
// way — `base+i*k` has Arith set even though its leaves are a field
// and a literal, which is exactly the "hand-rolled seed derivation"
// shape seedflow bans.
type Provenance struct {
	Origins []Origin
	Arith   bool
}

// Any reports whether any leaf has the given kind.
func (p Provenance) Any(kind OriginKind) bool {
	for _, o := range p.Origins {
		if o.Kind == kind {
			return true
		}
	}
	return false
}

// A TaintWalker resolves expression provenance inside one function
// body. It is flow-insensitive: a local variable's provenance is the
// union over every assignment to it anywhere in the body.
type TaintWalker struct {
	info    *types.Info
	params  map[*types.Var]bool
	assigns map[*types.Var][]ast.Expr
}

// NewTaintWalker indexes the assignments and parameters of fn, which
// must be an *ast.FuncDecl or *ast.FuncLit.
func NewTaintWalker(info *types.Info, fn ast.Node) *TaintWalker {
	w := &TaintWalker{
		info:    info,
		params:  make(map[*types.Var]bool),
		assigns: make(map[*types.Var][]ast.Expr),
	}
	var typ *ast.FuncType
	var body *ast.BlockStmt
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		typ, body = fn.Type, fn.Body
		if fn.Recv != nil {
			w.addParams(fn.Recv.List)
		}
	case *ast.FuncLit:
		typ, body = fn.Type, fn.Body
	default:
		return w
	}
	if typ.Params != nil {
		w.addParams(typ.Params.List)
	}
	if body == nil {
		return w
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					if v := w.localVar(lhs); v != nil {
						w.assigns[v] = append(w.assigns[v], n.Rhs[i])
					}
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i, name := range n.Names {
					if v, ok := w.info.Defs[name].(*types.Var); ok {
						w.assigns[v] = append(w.assigns[v], n.Values[i])
					}
				}
			}
		}
		return true
	})
	return w
}

func (w *TaintWalker) addParams(fields []*ast.Field) {
	for _, f := range fields {
		for _, name := range f.Names {
			if v, ok := w.info.Defs[name].(*types.Var); ok {
				w.params[v] = true
			}
		}
	}
}

// localVar resolves an assignment target to the variable it names, or
// nil for anything other than a plain identifier (field writes and
// index writes are sinks, not locals).
func (w *TaintWalker) localVar(lhs ast.Expr) *types.Var {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	obj := w.info.Defs[id]
	if obj == nil {
		obj = w.info.Uses[id]
	}
	v, _ := obj.(*types.Var)
	return v
}

// Origins resolves the provenance of e.
func (w *TaintWalker) Origins(e ast.Expr) Provenance {
	var p Provenance
	w.walk(e, &p, make(map[*types.Var]bool))
	return p
}

func (w *TaintWalker) walk(e ast.Expr, p *Provenance, visited map[*types.Var]bool) {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.BasicLit:
		p.Origins = append(p.Origins, Origin{Kind: OriginLiteral, Pos: e.Pos()})
	case *ast.BinaryExpr:
		switch e.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
			token.AND, token.OR, token.XOR, token.SHL, token.SHR, token.AND_NOT:
			p.Arith = true
		}
		w.walk(e.X, p, visited)
		w.walk(e.Y, p, visited)
	case *ast.UnaryExpr:
		w.walk(e.X, p, visited)
	case *ast.CallExpr:
		// A conversion is transparent; a real call is a leaf — its
		// arguments' provenance belongs to the callee's contract, not to
		// the value it returned.
		if tv, ok := w.info.Types[ast.Unparen(e.Fun)]; ok && tv.IsType() {
			for _, arg := range e.Args {
				w.walk(arg, p, visited)
			}
			return
		}
		p.Origins = append(p.Origins, Origin{Kind: OriginCall, Pos: e.Pos(), Fn: ResolveCallee(w.info, e)})
	case *ast.SelectorExpr:
		if sel, ok := w.info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if v, ok := sel.Obj().(*types.Var); ok && v.IsField() {
				p.Origins = append(p.Origins, Origin{
					Kind:     OriginField,
					Pos:      e.Pos(),
					FieldKey: fieldKeyOf(w.info, e, v),
				})
				return
			}
		}
		// Qualified identifier (pkg.Var) or something stranger.
		if obj, ok := w.info.Uses[e.Sel]; ok {
			w.walkObj(obj, e.Pos(), p, visited)
			return
		}
		p.Origins = append(p.Origins, Origin{Kind: OriginUnknown, Pos: e.Pos()})
	case *ast.Ident:
		if obj := w.info.Uses[e]; obj != nil {
			w.walkObj(obj, e.Pos(), p, visited)
			return
		}
		p.Origins = append(p.Origins, Origin{Kind: OriginUnknown, Pos: e.Pos()})
	case *ast.IndexExpr:
		// The element inherits the container's provenance.
		w.walk(e.X, p, visited)
	default:
		p.Origins = append(p.Origins, Origin{Kind: OriginUnknown, Pos: e.Pos()})
	}
}

func (w *TaintWalker) walkObj(obj types.Object, pos token.Pos, p *Provenance, visited map[*types.Var]bool) {
	switch obj := obj.(type) {
	case *types.Const:
		p.Origins = append(p.Origins, Origin{Kind: OriginLiteral, Pos: pos})
	case *types.Var:
		switch {
		case w.params[obj]:
			p.Origins = append(p.Origins, Origin{Kind: OriginParam, Pos: pos, Var: obj})
		case obj.IsField():
			p.Origins = append(p.Origins, Origin{Kind: OriginField, Pos: pos})
		case obj.Parent() != nil && obj.Parent().Parent() == types.Universe:
			// Package-scope variable.
			p.Origins = append(p.Origins, Origin{Kind: OriginVar, Pos: pos})
		default:
			rhss := w.assigns[obj]
			if len(rhss) == 0 || visited[obj] {
				p.Origins = append(p.Origins, Origin{Kind: OriginUnknown, Pos: pos})
				return
			}
			visited[obj] = true
			for _, rhs := range rhss {
				w.walk(rhs, p, visited)
			}
		}
	default:
		p.Origins = append(p.Origins, Origin{Kind: OriginUnknown, Pos: pos})
	}
}

// fieldKeyOf renders a stable cross-package key for a struct field
// reached through selector sel: "<pkgpath>.<Type>.<Field>" based on the
// receiver's named type when it has one.
func fieldKeyOf(info *types.Info, sel *ast.SelectorExpr, field *types.Var) string {
	t := info.Types[sel.X].Type
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			return obj.Pkg().Path() + "." + obj.Name() + "." + field.Name()
		}
		return obj.Name() + "." + field.Name()
	}
	if field.Pkg() != nil {
		return field.Pkg().Path() + "..." + field.Name()
	}
	return field.Name()
}

// FieldKeyOfDef renders the same key for a field declared in a struct
// type definition, so fact writers (seed fields discovered at
// definition/population sites) and fact readers (selector sites) agree.
func FieldKeyOfDef(named *types.Named, field *types.Var) string {
	obj := named.Obj()
	if obj.Pkg() != nil {
		return obj.Pkg().Path() + "." + obj.Name() + "." + field.Name()
	}
	return obj.Name() + "." + field.Name()
}
