package analysis_test

import (
	"testing"

	"mcpaging/internal/analysis"
	"mcpaging/internal/analysis/analysistest"
)

func TestLockheld(t *testing.T) {
	analysistest.Run(t, analysis.Lockheld(), "lockheld")
}
