package analysis

import (
	"fmt"
	"go/types"
	"reflect"
	"sort"
)

// A Fact is a unit of interprocedural knowledge an analyzer attaches to
// a function and later retrieves from another package — the stdlib-only
// analogue of golang.org/x/tools/go/analysis facts. Facts are keyed by
// the *canonical object key* of the function (FuncKey), not by object
// identity: every package is type-checked separately here, so the same
// function is one *types.Func when its package is analyzed from source
// and a different *types.Func when a downstream package sees it through
// compiler export data. The key is identical in both views, which is
// what lets a fact exported while analyzing internal/sim survive the
// "export/import" boundary and be imported while analyzing
// internal/verify.
type Fact interface {
	// AFact marks the type as a fact. It is never called.
	AFact()
}

// FuncKey renders a function's canonical cross-package key:
// "path/to/pkg.F" for package functions and "(path/to/pkg.T).M" or
// "(*path/to/pkg.T).M" for methods — types.Func.FullName, which is
// stable across the source and export-data views of the same object.
func FuncKey(fn *types.Func) string { return fn.FullName() }

// A FactStore holds every fact exported during one suite run, keyed by
// (function key, fact type). The driver threads a single store through
// all packages in dependency order, so by the time a package is
// analyzed, the facts of everything it imports are present.
type FactStore struct {
	m map[string]map[reflect.Type]Fact
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{m: make(map[string]map[reflect.Type]Fact)}
}

// ExportFuncFact records fact for fn, replacing any previous fact of
// the same dynamic type.
func (s *FactStore) ExportFuncFact(fn *types.Func, fact Fact) {
	s.exportKey(FuncKey(fn), fact)
}

func (s *FactStore) exportKey(key string, fact Fact) {
	byType := s.m[key]
	if byType == nil {
		byType = make(map[reflect.Type]Fact)
		s.m[key] = byType
	}
	byType[reflect.TypeOf(fact)] = fact
}

// ImportFuncFact reports whether a fact with target's dynamic type was
// exported for fn, copying it into target (which must be a non-nil
// pointer to a Fact type) when so.
func (s *FactStore) ImportFuncFact(fn *types.Func, target Fact) bool {
	return s.importKey(FuncKey(fn), target)
}

func (s *FactStore) importKey(key string, target Fact) bool {
	t := reflect.TypeOf(target)
	if t.Kind() != reflect.Pointer {
		panic(fmt.Sprintf("analysis: ImportFuncFact target %T is not a pointer", target))
	}
	fact, ok := s.m[key][t.Elem()]
	if !ok {
		return false
	}
	reflect.ValueOf(target).Elem().Set(reflect.ValueOf(fact))
	return true
}

// HasFuncFact reports whether fn carries a fact of example's type,
// without copying it out.
func (s *FactStore) HasFuncFact(fn *types.Func, example Fact) bool {
	_, ok := s.m[FuncKey(fn)][reflect.TypeOf(example)]
	return ok
}

// hasKeyFact is HasFuncFact by pre-rendered key.
func (s *FactStore) hasKeyFact(key string, example Fact) bool {
	_, ok := s.m[key][reflect.TypeOf(example)]
	return ok
}

// Keys returns every function key holding a fact of example's type,
// sorted — the deterministic iteration surface for whole-suite passes
// like lock-order cycle detection.
func (s *FactStore) Keys(example Fact) []string {
	t := reflect.TypeOf(example)
	var out []string
	for key, byType := range s.m {
		if _, ok := byType[t]; ok {
			out = append(out, key)
		}
	}
	sort.Strings(out)
	return out
}
