package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Ctxflow returns the ctxflow analyzer: cancellation scope must flow
// down from cmd/ entry points, never be re-rooted below them. In
// critical packages it forbids context.Background()/context.TODO() —
// a fresh root context detaches everything beneath it from the
// caller's deadline and shutdown — and, inside functions that take a
// ctx, it forbids blocking without consulting it: time.Sleep, bare
// channel sends/receives, and selects offering neither a default nor
// a ctx.Done() case.
//
// One idiom is exempt: the documented nil-guard
//
//	if ctx == nil { ctx = context.Background() }
//
// which roots the context only when the caller explicitly opted out.
func Ctxflow() *Analyzer {
	a := &Analyzer{
		Name:     "ctxflow",
		Doc:      "forbids re-rooting contexts below cmd/ and blocking without consulting a held ctx",
		Critical: true,
	}
	a.Run = runCtxflow
	return a
}

// ctxRootCall resolves a call to context.Background or context.TODO.
func ctxRootCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	name, ok := pkgFunc(info, call, "context")
	if !ok || (name != "Background" && name != "TODO") {
		return "", false
	}
	return name, true
}

// nilGuardExempt collects the context.Background()/TODO() calls that sit
// in the nil-guard idiom: `if x == nil { x = context.Background() }`.
func nilGuardExempt(info *types.Info, f *ast.File) map[*ast.CallExpr]bool {
	exempt := make(map[*ast.CallExpr]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || ifs.Init != nil || len(ifs.Body.List) != 1 {
			return true
		}
		cond, ok := ifs.Cond.(*ast.BinaryExpr)
		if !ok || cond.Op != token.EQL {
			return true
		}
		var guarded ast.Expr
		switch {
		case exprString(cond.Y) == "nil":
			guarded = cond.X
		case exprString(cond.X) == "nil":
			guarded = cond.Y
		default:
			return true
		}
		assign, ok := ifs.Body.List[0].(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 || assign.Tok != token.ASSIGN {
			return true
		}
		if exprString(assign.Lhs[0]) != exprString(guarded) {
			return true
		}
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, ok := ctxRootCall(info, call); ok {
			exempt[call] = true
		}
		return true
	})
	return exempt
}

// ctxParams returns the context-typed parameters (including receivers,
// not that a ctx receiver is idiomatic) of a function declaration.
func ctxParams(info *types.Info, ft *ast.FuncType) []*types.Var {
	var out []*types.Var
	if ft.Params == nil {
		return out
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if v, ok := info.Defs[name].(*types.Var); ok && isContextType(v.Type()) {
				out = append(out, v)
			}
		}
	}
	return out
}

// selectConsultsCtx reports whether a select statement has a default
// clause or a comm case receiving from a Done() channel (or any method
// call / channel derived from a ctx-typed value).
func selectConsultsCtx(info *types.Info, sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		cc := c.(*ast.CommClause)
		if cc.Comm == nil {
			return true // default: non-blocking
		}
		consults := false
		ast.Inspect(cc.Comm, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if fn := ResolveCallee(info, call); fn != nil && fn.Name() == "Done" {
					if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && isContextType(sig.Recv().Type()) {
						consults = true
					}
				}
			}
			if id, ok := n.(*ast.Ident); ok {
				if v, ok := info.Uses[id].(*types.Var); ok && isContextType(v.Type()) {
					consults = true
				}
			}
			return true
		})
		if consults {
			return true
		}
	}
	return false
}

func runCtxflow(pass *Pass) {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		exempt := nilGuardExempt(info, f)

		// Rule 1: no fresh root contexts.
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := ctxRootCall(info, call); ok && !exempt[call] {
				pass.Reportf(call.Pos(),
					"context.%s() re-roots the context below the cmd/ entry point — thread the caller's ctx instead (//mcvet:ignore ctxflow <reason> to override)",
					name)
			}
			return true
		})

		// Rule 2: a function that takes a ctx must consult it when
		// blocking. Select statements carrying a ctx.Done (or default)
		// case pass; their comm atoms are not re-flagged.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || len(ctxParams(info, fd.Type)) == 0 {
				continue
			}
			inComm := make(map[ast.Node]bool)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if sel, ok := n.(*ast.SelectStmt); ok {
					for _, c := range sel.Body.List {
						cc := c.(*ast.CommClause)
						if cc.Comm != nil {
							ast.Inspect(cc.Comm, func(m ast.Node) bool {
								switch m.(type) {
								case *ast.SendStmt, *ast.UnaryExpr:
									inComm[m] = true
								}
								return true
							})
						}
					}
				}
				return true
			})
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if n == nil {
					return true
				}
				switch n := n.(type) {
				case *ast.FuncLit:
					// A literal has its own (possibly ctx-free) contract;
					// only the declared function's body is judged.
					return false
				case *ast.SelectStmt:
					if !selectConsultsCtx(info, n) {
						pass.Reportf(n.Pos(),
							"select blocks without a ctx.Done() or default case although %s takes a ctx (//mcvet:ignore ctxflow <reason> to override)",
							fd.Name.Name)
					}
				case *ast.SendStmt:
					if !inComm[n] {
						pass.Reportf(n.Pos(),
							"bare channel send although %s takes a ctx — use a select with ctx.Done() (//mcvet:ignore ctxflow <reason> to override)",
							fd.Name.Name)
					}
				case *ast.UnaryExpr:
					if n.Op == token.ARROW && !inComm[n] {
						pass.Reportf(n.Pos(),
							"bare channel receive although %s takes a ctx — use a select with ctx.Done() (//mcvet:ignore ctxflow <reason> to override)",
							fd.Name.Name)
					}
				case *ast.CallExpr:
					if name, ok := pkgFunc(info, n, "time"); ok && name == "Sleep" {
						pass.Reportf(n.Pos(),
							"time.Sleep ignores the ctx held by %s — select on ctx.Done() and a timer instead (//mcvet:ignore ctxflow <reason> to override)",
							fd.Name.Name)
					}
				}
				return true
			})
		}
	}
}
