package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// cancelFact marks a function whose body contains a reachable
// cancellation/coordination atom — a select, a channel receive or
// send, a range over a channel, ctx.Done()/ctx.Err(), a WaitGroup
// Done/Wait, or a context.Context forwarded to a callee. A goroutine
// running such a function has a path by which the rest of the program
// can stop or observe it.
type cancelFact struct {
	Via string
}

func (cancelFact) AFact() {}

// loopFact marks a function that (transitively) runs an unbounded
// construct — a for loop or a non-channel range. A goroutine that
// never loops terminates by itself and needs no cancellation path; one
// that loops must have one.
type loopFact struct{}

func (loopFact) AFact() {}

// Goleak returns the goleak analyzer: every `go` statement in a
// critical package must either provably terminate (no loop reachable
// from the spawned body through the call graph) or have a reachable
// cancellation path (context, done channel, channel coordination, or
// WaitGroup), also proven via the call graph. Otherwise the goroutine
// can outlive its work — the textbook leak.
func Goleak() *Analyzer {
	a := &Analyzer{
		Name:     "goleak",
		Doc:      "requires a reachable cancellation path for every goroutine in critical packages",
		Critical: true,
	}
	a.Run = runGoleak
	return a
}

// goBodyScan walks root (a function body), skipping go-spawned literal
// bodies, and accumulates whether a cancellation atom or a loop is
// reachable — directly or through facts of resolved callees.
type goBodyScan struct {
	pass      *Pass
	hasCancel bool
	via       string
	hasLoop   bool
}

func (s *goBodyScan) note(via string) {
	if !s.hasCancel {
		s.hasCancel = true
		s.via = via
	}
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func (s *goBodyScan) scan(root ast.Node) {
	info := s.pass.TypesInfo
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			// A nested spawn's atoms belong to the nested goroutine.
			if _, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				for _, arg := range n.Call.Args {
					s.scan(arg)
				}
				return false
			}
			return true
		case *ast.SelectStmt:
			s.note("select")
		case *ast.SendStmt:
			s.note("channel send")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				s.note("channel receive")
			}
		case *ast.ForStmt:
			s.hasLoop = true
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					s.note("range over channel")
					return true
				}
			}
			s.hasLoop = true
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if t := info.TypeOf(arg); t != nil && isContextType(t) {
					s.note("context forwarded to " + exprString(n.Fun))
				}
			}
			fn := ResolveCallee(info, n)
			if fn == nil {
				return true
			}
			switch fn.FullName() {
			case "(*sync.WaitGroup).Done", "(*sync.WaitGroup).Wait":
				s.note("WaitGroup " + fn.Name())
			case "(context.Context).Done", "(context.Context).Err":
				s.note("ctx." + fn.Name())
			}
			var cf cancelFact
			if s.pass.Facts.ImportFuncFact(fn, &cf) {
				s.note("call to " + shortFuncKey(FuncKey(fn)) + " (" + cf.Via + ")")
			}
			if s.pass.Facts.HasFuncFact(fn, loopFact{}) {
				s.hasLoop = true
			}
		}
		return true
	})
}

func runGoleak(pass *Pass) {
	// Per-function facts, then same-package fixpoint. The facts scan
	// must not consult callee facts (those are what the fixpoint adds),
	// but reusing the combined scanner is harmless: at worst a function
	// picks up its callee's property one sweep early.
	for _, fnKey := range pass.Graph.CallerKeys() {
		fd := pass.Graph.Decls[fnKey]
		fn := pass.Graph.Funcs[fnKey]
		sc := &goBodyScan{pass: pass}
		sc.scan(fd.Body)
		if sc.hasCancel && !pass.Facts.HasFuncFact(fn, cancelFact{}) {
			pass.Facts.ExportFuncFact(fn, cancelFact{Via: sc.via})
		}
		if sc.hasLoop && !pass.Facts.HasFuncFact(fn, loopFact{}) {
			pass.Facts.ExportFuncFact(fn, loopFact{})
		}
	}
	pass.Graph.Fixpoint(func(caller *types.Func, e CallEdge) bool {
		changed := false
		var cf cancelFact
		if pass.Facts.ImportFuncFact(e.Callee, &cf) && !pass.Facts.HasFuncFact(caller, cancelFact{}) {
			pass.Facts.ExportFuncFact(caller, cancelFact{
				Via: "call to " + shortFuncKey(e.CalleeKey) + " (" + cf.Via + ")",
			})
			changed = true
		}
		if pass.Facts.HasFuncFact(e.Callee, loopFact{}) && !pass.Facts.HasFuncFact(caller, loopFact{}) {
			pass.Facts.ExportFuncFact(caller, loopFact{})
			changed = true
		}
		return changed
	})

	// Judge every go statement.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			var sc goBodyScan
			sc.pass = pass
			if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
				sc.scan(lit.Body)
			} else if fn := ResolveCallee(pass.TypesInfo, g.Call); fn != nil {
				var cf cancelFact
				if pass.Facts.ImportFuncFact(fn, &cf) {
					sc.note("call to " + shortFuncKey(FuncKey(fn)) + " (" + cf.Via + ")")
				}
				if pass.Facts.HasFuncFact(fn, loopFact{}) {
					sc.hasLoop = true
				}
			} else {
				// Dynamic callee: nothing provable either way.
				return true
			}
			if sc.hasLoop && !sc.hasCancel {
				pass.Reportf(g.Pos(),
					"goroutine loops but has no reachable cancellation path (ctx, done channel, or WaitGroup) — it can outlive its work (//mcvet:ignore goleak <reason> to override)")
			}
			return true
		})
	}
}
