package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Detmap returns the detmap analyzer: it flags `range` over a map in
// determinism-critical packages. Map iteration order is randomized by
// the runtime, so any output, table, hash input or event stream built
// by such a loop varies run to run — exactly what the repo's golden
// files, content-addressed cache keys and timestamp-free manifests
// forbid.
//
// Two shapes are accepted without a directive:
//
//   - `for range m` with no iteration variables (order unobservable);
//   - a pure key/value-collection loop whose body is a single append
//     assignment, optionally wrapped in one guarding if — the
//     collect-then-sort idiom, where determinism is restored by a
//     subsequent sort (or an order-independent reduction) over the
//     collected slice.
//
// Anything else needs //mcvet:ignore detmap <reason>.
func Detmap() *Analyzer {
	a := &Analyzer{
		Name:     "detmap",
		Doc:      "flags nondeterministic map iteration in determinism-critical packages",
		Critical: true,
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := pass.TypesInfo.Types[rs.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				if rs.Key == nil && rs.Value == nil {
					return true // iteration count only; order unobservable
				}
				if isCollectLoop(rs.Body) {
					return true // collect-then-sort idiom
				}
				pass.Reportf(rs.For,
					"range over map %s has nondeterministic iteration order; collect and sort the keys, or annotate //mcvet:ignore detmap <reason>",
					exprString(rs.X))
				return true
			})
		}
	}
	return a
}

// isCollectLoop reports whether the loop body is a single
// `s = append(s, ...)` assignment, optionally wrapped in one guarding
// if without an else: the first half of the collect-then-sort idiom,
// whose result *set* is independent of iteration order.
func isCollectLoop(body *ast.BlockStmt) bool {
	if body == nil || len(body.List) != 1 {
		return false
	}
	stmt := body.List[0]
	if ifs, ok := stmt.(*ast.IfStmt); ok && ifs.Else == nil {
		if len(ifs.Body.List) != 1 {
			return false
		}
		stmt = ifs.Body.List[0]
	}
	as, ok := stmt.(*ast.AssignStmt)
	if !ok || len(as.Rhs) != 1 || (as.Tok != token.ASSIGN && as.Tok != token.DEFINE) {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "append"
}
