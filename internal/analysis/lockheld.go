package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// blockFact marks a function that may block the calling goroutine:
// its body (or something it transitively calls) performs a channel
// operation, sleeps, waits on a WaitGroup/Cond, or issues an HTTP
// request. Exported across packages so lockheld can flag a call chain
// that ends in a block even when the blocking atom is three packages
// away.
type blockFact struct {
	Why string         // human description of the underlying atom
	At  token.Position // where the atom is
}

func (blockFact) AFact() {}

// lockAcquireFact lists the lock classes a function (transitively)
// acquires, so acquiring a lock and then calling the function yields
// lock-order edges across function and package boundaries.
type lockAcquireFact struct {
	Classes []string
}

func (lockAcquireFact) AFact() {}

// lockEdgeFact records one observed acquisition order: To was acquired
// at At while From was held. Keyed in the fact store by "From→To"; the
// Finish pass reports pairs that also occur inverted.
type lockEdgeFact struct {
	From, To string
	At       token.Position
}

func (lockEdgeFact) AFact() {}

// mutexMethod classifies calls on sync.Mutex/RWMutex receivers.
var mutexAcquire = map[string]bool{
	"(*sync.Mutex).Lock":    true,
	"(*sync.RWMutex).Lock":  true,
	"(*sync.RWMutex).RLock": true,
}

var mutexRelease = map[string]string{
	"(*sync.Mutex).Unlock":    "(*sync.Mutex).Lock",
	"(*sync.RWMutex).Unlock":  "(*sync.RWMutex).Lock",
	"(*sync.RWMutex).RUnlock": "(*sync.RWMutex).RLock",
}

var httpBlockingMethods = map[string]bool{
	"(*net/http.Client).Do":       true,
	"(*net/http.Client).Get":      true,
	"(*net/http.Client).Post":     true,
	"(*net/http.Client).PostForm": true,
	"(*net/http.Client).Head":     true,
}

var httpBlockingFuncs = map[string]bool{
	"Get": true, "Post": true, "PostForm": true, "Head": true, "Do": true,
}

// Lockheld returns the lockheld analyzer: no operation that can block
// the goroutine — channel send/receive, select without default, range
// over a channel, time.Sleep, WaitGroup/Cond waits, HTTP round trips,
// Clock.After, or a call whose chain provably blocks — may run while a
// sync.Mutex or sync.RWMutex is held, and lock acquisition order must
// be globally consistent (an A-then-B order in one place and B-then-A
// in another is reported as a deadlock hazard by the suite-level
// Finish pass).
func Lockheld() *Analyzer {
	a := &Analyzer{
		Name: "lockheld",
		Doc:  "forbids blocking operations while a mutex is held and inconsistent lock-acquisition order",
	}
	a.Run = runLockheld
	a.Finish = finishLockheld
	return a
}

func runLockheld(pass *Pass) {
	// Pass 1: per-function direct facts — does the body itself block,
	// and which lock classes does it acquire?
	for _, fnKey := range pass.Graph.CallerKeys() {
		fd := pass.Graph.Decls[fnKey]
		fn := pass.Graph.Funcs[fnKey]
		sc := newLockScan(pass, fd)
		if why, at, ok := sc.firstBlockingAtom(); ok {
			pass.Facts.ExportFuncFact(fn, blockFact{Why: why, At: at})
		}
		if classes := sc.directAcquires(); len(classes) > 0 {
			pass.Facts.ExportFuncFact(fn, lockAcquireFact{Classes: classes})
		}
	}

	// Pass 2: same-package fixpoint — blocking and acquisition
	// propagate up the call graph. Imported facts from dependency
	// packages are already in the store, so cross-package chains
	// resolve here too.
	pass.Graph.Fixpoint(func(caller *types.Func, e CallEdge) bool {
		changed := false
		var bf blockFact
		if pass.Facts.ImportFuncFact(e.Callee, &bf) && !pass.Facts.HasFuncFact(caller, bf) {
			pass.Facts.ExportFuncFact(caller, blockFact{
				Why: fmt.Sprintf("call to %s (%s)", shortFuncKey(e.CalleeKey), bf.Why),
				At:  pass.Fset.Position(e.Pos),
			})
			changed = true
		}
		var af lockAcquireFact
		if pass.Facts.ImportFuncFact(e.Callee, &af) {
			var cur lockAcquireFact
			pass.Facts.ImportFuncFact(caller, &cur)
			merged := mergeClasses(cur.Classes, af.Classes)
			if len(merged) > len(cur.Classes) {
				pass.Facts.ExportFuncFact(caller, lockAcquireFact{Classes: merged})
				changed = true
			}
		}
		return changed
	})

	// Pass 3: the held-lock scan — walk each body in source order
	// tracking which mutexes are held, and report blocking atoms and
	// record ordering edges encountered under a lock.
	for _, fnKey := range pass.Graph.CallerKeys() {
		newLockScan(pass, pass.Graph.Decls[fnKey]).checkHeld()
	}
}

// shortFuncKey trims the package path of a FuncKey down to its last
// element for readable diagnostics: "(mcpaging/internal/verify.Prover).ProveAll"
// → "(verify.Prover).ProveAll".
func shortFuncKey(key string) string {
	i := strings.LastIndex(key, "/")
	if i < 0 {
		return key
	}
	if strings.HasPrefix(key, "(") {
		return "(" + key[i+1:]
	}
	return key[i+1:]
}

func mergeClasses(a, b []string) []string {
	seen := make(map[string]bool, len(a)+len(b))
	var out []string
	for _, s := range append(append([]string{}, a...), b...) {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// lockScan is the shared walking machinery for one function body.
type lockScan struct {
	pass *Pass
	fd   *ast.FuncDecl

	goLits      map[*ast.FuncLit]bool // bodies spawned on another goroutine
	commAtoms   map[ast.Node]bool     // send/recv heading any select clause
	nonblocking map[ast.Node]bool     // selects that have a default clause
}

func newLockScan(pass *Pass, fd *ast.FuncDecl) *lockScan {
	s := &lockScan{
		pass:        pass,
		fd:          fd,
		goLits:      make(map[*ast.FuncLit]bool),
		commAtoms:   make(map[ast.Node]bool),
		nonblocking: make(map[ast.Node]bool),
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				s.goLits[lit] = true
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range n.Body.List {
				cc := c.(*ast.CommClause)
				if cc.Comm == nil {
					hasDefault = true
					continue
				}
				// Mark the clause-heading atom so it is not reported a
				// second time: the select itself carries the verdict.
				ast.Inspect(cc.Comm, func(m ast.Node) bool {
					switch m.(type) {
					case *ast.SendStmt, *ast.UnaryExpr:
						s.commAtoms[m] = true
					}
					return true
				})
			}
			if hasDefault {
				s.nonblocking[n] = true
			}
		}
		return true
	})
	return s
}

// walk visits the body in source order, skipping go-spawned literal
// bodies and defer arguments (both run on a different schedule than
// the surrounding statements).
func (s *lockScan) walk(f func(n ast.Node) bool) {
	ast.Inspect(s.fd.Body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		switch nn := n.(type) {
		case *ast.FuncLit:
			if s.goLits[nn] {
				return false
			}
		case *ast.DeferStmt:
			return false
		}
		return f(n)
	})
}

// blockingAtom classifies n as an operation that can block this
// goroutine, returning a description.
func (s *lockScan) blockingAtom(n ast.Node) (string, bool) {
	info := s.pass.TypesInfo
	switch n := n.(type) {
	case *ast.SendStmt:
		if s.commAtoms[n] {
			return "", false
		}
		return "channel send", true
	case *ast.UnaryExpr:
		if n.Op != token.ARROW || s.commAtoms[n] {
			return "", false
		}
		return "channel receive", true
	case *ast.SelectStmt:
		if s.nonblocking[n] {
			return "", false
		}
		return "select without default", true
	case *ast.RangeStmt:
		if t := info.TypeOf(n.X); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				return "range over channel", true
			}
		}
	case *ast.CallExpr:
		if name, ok := pkgFunc(info, n, "time"); ok && name == "Sleep" {
			return "time.Sleep", true
		}
		if name, ok := pkgFunc(info, n, "net/http"); ok && httpBlockingFuncs[name] {
			return "http." + name, true
		}
		if fn := ResolveCallee(info, n); fn != nil {
			full := fn.FullName()
			switch {
			case full == "(*sync.WaitGroup).Wait":
				return "sync.WaitGroup.Wait", true
			case full == "(*sync.Cond).Wait":
				return "sync.Cond.Wait", true
			case httpBlockingMethods[full]:
				return "http.Client round trip", true
			case isClockInterfaceMethod(fn, "After"):
				return "Clock.After", true
			}
		}
	}
	return "", false
}

// isClockInterfaceMethod reports whether fn is the named method of an
// interface type called "Clock" (any package) — the injected-clock
// convention.
func isClockInterfaceMethod(fn *types.Func, method string) bool {
	if fn.Name() != method {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if !isInterface(t) {
		return false
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Clock"
}

// firstBlockingAtom finds the first directly blocking operation of the
// body, for the blockFact export.
func (s *lockScan) firstBlockingAtom() (why string, at token.Position, found bool) {
	s.walk(func(n ast.Node) bool {
		if found {
			return false
		}
		if w, ok := s.blockingAtom(n); ok {
			why, at, found = w, s.pass.Fset.Position(n.Pos()), true
			return false
		}
		return true
	})
	return why, at, found
}

// mutexCall resolves n to a mutex acquire/release, returning the
// receiver expression (the lock value) and whether it acquires.
func (s *lockScan) mutexCall(n *ast.CallExpr) (recv ast.Expr, acquire bool, ok bool) {
	fn := ResolveCallee(s.pass.TypesInfo, n)
	if fn == nil {
		return nil, false, false
	}
	full := fn.FullName()
	if !mutexAcquire[full] {
		if _, rel := mutexRelease[full]; !rel {
			return nil, false, false
		}
	}
	sel, selOk := ast.Unparen(n.Fun).(*ast.SelectorExpr)
	if !selOk {
		return nil, false, false
	}
	return sel.X, mutexAcquire[full], true
}

// lockClass renders a stable cross-package identity for a lock value:
// "<pkg>.<Type>.<field>" for struct-field mutexes, "<pkg>.<name>" for
// variables.
func (s *lockScan) lockClass(recv ast.Expr) string {
	recv = ast.Unparen(recv)
	if sel, ok := recv.(*ast.SelectorExpr); ok {
		if selection, ok := s.pass.TypesInfo.Selections[sel]; ok && selection.Kind() == types.FieldVal {
			if v, ok := selection.Obj().(*types.Var); ok && v.IsField() {
				return fieldKeyOf(s.pass.TypesInfo, sel, v)
			}
		}
	}
	return s.pass.PkgPath + "." + exprString(recv)
}

// directAcquires lists the lock classes the body acquires.
func (s *lockScan) directAcquires() []string {
	seen := make(map[string]bool)
	var out []string
	s.walk(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if recv, acquire, ok := s.mutexCall(call); ok && acquire {
			if c := s.lockClass(recv); !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
		return true
	})
	sort.Strings(out)
	return out
}

// checkHeld runs the source-order held-lock scan, reporting blocking
// atoms and recording lock-order edges observed under a held lock.
// The scan is flow-insensitive: a lock stays "held" from its Lock call
// to the matching Unlock in source order (deferred unlocks hold to the
// end of the function), which matches the overwhelmingly dominant
// straight-line critical-section idiom. Every function literal is its
// own held-scope — a closure that locks does so on its own schedule,
// not at its definition site.
func (s *lockScan) checkHeld() {
	s.checkHeldIn(s.fd.Body)
	// Every literal — including go-spawned ones — is scanned as its own
	// scope: a goroutine body that blocks under its own lock is just as
	// wrong as a plain function that does.
	var lits []*ast.FuncLit
	ast.Inspect(s.fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			lits = append(lits, lit)
		}
		return true
	})
	for _, lit := range lits {
		s.checkHeldIn(lit.Body)
	}
}

// checkHeldIn scans one body, stopping at nested function literals
// (each gets its own scan) and defer statements.
func (s *lockScan) checkHeldIn(body ast.Node) {
	held := make(map[string]string) // exprString(recv) → lock class
	heldList := func() []string {
		var names []string
		for name := range held {
			names = append(names, name)
		}
		sort.Strings(names)
		return names
	}
	// body is a block statement, so any FuncLit seen below is strictly
	// nested and belongs to another scope's scan.
	walkScope := func(f func(n ast.Node) bool) {
		ast.Inspect(body, func(n ast.Node) bool {
			if n == nil {
				return true
			}
			switch n.(type) {
			case *ast.FuncLit, *ast.DeferStmt:
				return false
			}
			return f(n)
		})
	}
	walkScope(func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if recv, acquire, ok := s.mutexCall(call); ok {
				name := exprString(recv)
				if acquire {
					class := s.lockClass(recv)
					for _, heldClass := range held {
						if heldClass == class {
							continue // re-entrant RLock of same class: not an order edge
						}
						s.pass.Facts.exportKey("lockedge:"+heldClass+"→"+class, lockEdgeFact{
							From: heldClass, To: class, At: s.pass.Fset.Position(call.Pos()),
						})
					}
					held[name] = class
				} else {
					delete(held, name)
				}
				return true
			}
			if len(held) > 0 {
				if fn := ResolveCallee(s.pass.TypesInfo, call); fn != nil {
					var bf blockFact
					if s.pass.Facts.ImportFuncFact(fn, &bf) {
						if _, direct := s.blockingAtom(call); !direct {
							s.pass.Reportf(call.Pos(),
								"call to %s may block (%s at %s) while %s is held",
								shortFuncKey(FuncKey(fn)), bf.Why, bf.At, strings.Join(heldList(), ", "))
						}
					}
					var af lockAcquireFact
					if s.pass.Facts.ImportFuncFact(fn, &af) {
						for _, class := range af.Classes {
							for _, heldClass := range held {
								if heldClass == class {
									continue
								}
								s.pass.Facts.exportKey("lockedge:"+heldClass+"→"+class, lockEdgeFact{
									From: heldClass, To: class, At: s.pass.Fset.Position(call.Pos()),
								})
							}
						}
					}
				}
			}
		}
		if len(held) == 0 {
			return true
		}
		if why, ok := s.blockingAtom(n); ok {
			s.pass.Reportf(n.Pos(), "%s while %s is held blocks the critical section (//mcvet:ignore lockheld <reason> to override)",
				why, strings.Join(heldList(), ", "))
		}
		return true
	})
}

// finishLockheld reports inverted lock-order pairs across the whole
// sweep: A acquired under B somewhere and B acquired under A somewhere
// else is a classic deadlock recipe even when each site is individually
// fine.
func finishLockheld(facts *FactStore) []Diagnostic {
	var out []Diagnostic
	for _, k := range facts.Keys(lockEdgeFact{}) {
		var e lockEdgeFact
		facts.importKey(k, &e)
		inverse := "lockedge:" + e.To + "→" + e.From
		if !facts.hasKeyFact(inverse, lockEdgeFact{}) {
			continue
		}
		var inv lockEdgeFact
		facts.importKey(inverse, &inv)
		out = append(out, Diagnostic{
			Pos:      e.At,
			Analyzer: "lockheld",
			Message: fmt.Sprintf("inconsistent lock order: %s acquired while holding %s, but the opposite order is taken at %s",
				shortLock(e.To), shortLock(e.From), inv.At),
		})
	}
	return out
}

// shortLock trims a lock class's package path for readability.
func shortLock(class string) string {
	if i := strings.LastIndex(class, "/"); i >= 0 {
		return class[i+1:]
	}
	return class
}
