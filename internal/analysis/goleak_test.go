package analysis_test

import (
	"testing"

	"mcpaging/internal/analysis"
	"mcpaging/internal/analysis/analysistest"
)

func TestGoleak(t *testing.T) {
	analysistest.Run(t, analysis.Goleak(), "goleak")
}
