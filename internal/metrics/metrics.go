// Package metrics turns simulation results into the quantities the
// experiments report — fairness indices, per-core slowdowns, competitive
// ratios — and renders aligned text tables (the library's replacement
// for the paper's, nonexistent, result tables).
package metrics

import (
	"fmt"
	"io"
	"strings"

	"mcpaging/internal/core"
	"mcpaging/internal/sim"
)

// JainIndex computes Jain's fairness index of a non-negative vector:
// (Σx)² / (n·Σx²). It is 1 when all entries are equal and 1/n when one
// entry dominates; NaN-free: an all-zero vector scores 1 (perfectly
// fair: nobody faults).
func JainIndex(xs []int64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sq float64
	for _, x := range xs {
		f := float64(x)
		sum += f
		sq += f * f
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// Spread returns max/min of a positive vector, or +Inf when the minimum
// is zero but the maximum is not, and 1 for empty or all-zero vectors.
func Spread(xs []int64) float64 {
	if len(xs) == 0 {
		return 1
	}
	min, max := xs[0], xs[0]
	for _, x := range xs {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	if max == 0 {
		return 1
	}
	if min == 0 {
		return float64(max) / 0.5 // sentinel-ish large value without Inf noise in tables
	}
	return float64(max) / float64(min)
}

// Slowdowns returns, per core, finish time divided by sequence length —
// exactly 1 + τ·(fault rate) in this model; 1.0 means no fault delay.
// Cores with empty sequences report 1.
func Slowdowns(r core.RequestSet, res sim.Result) []float64 {
	out := make([]float64, len(r))
	for j := range r {
		if len(r[j]) == 0 {
			out[j] = 1
			continue
		}
		out[j] = float64(res.Finish[j]) / float64(len(r[j]))
	}
	return out
}

// WindowSlowdown applies the Slowdowns model to one telemetry window:
// 1 + τ·(faults/requests), the factor by which the window's requests
// were stretched by fault delays. Empty windows report 1.
func WindowSlowdown(faults, requests int64, tau int) float64 {
	if requests == 0 {
		return 1
	}
	return 1 + float64(tau)*float64(faults)/float64(requests)
}

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v, except float64,
// which uses %.3g for compact scientific-friendly display.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the table, aligned, to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Markdown writes the table as a GitHub-flavoured markdown table,
// preceded by its title as a bold line.
func (t *Table) Markdown(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table as comma-separated values (no quoting — cells in
// this library never contain commas).
func (t *Table) CSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString(strings.Join(t.Headers, ","))
	b.WriteByte('\n')
	for _, row := range t.rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WeightedSpeedup is the standard multicore throughput metric: the mean
// over cores of soloFinish[j] / finish[j], where soloFinish[j] is the
// core's finish time running alone with the full cache. Values near 1
// mean the shared cache costs little; small values mean heavy
// interference. Cores with empty sequences are skipped.
func WeightedSpeedup(r core.RequestSet, res sim.Result, soloFinish []int64) float64 {
	var sum float64
	n := 0
	for j := range r {
		if len(r[j]) == 0 || res.Finish[j] == 0 {
			continue
		}
		sum += float64(soloFinish[j]) / float64(res.Finish[j])
		n++
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}
