package metrics

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"mcpaging/internal/core"
	"mcpaging/internal/sim"
)

func TestJainIndex(t *testing.T) {
	if j := JainIndex([]int64{5, 5, 5, 5}); math.Abs(j-1) > 1e-12 {
		t.Fatalf("equal vector: %v", j)
	}
	if j := JainIndex([]int64{10, 0, 0, 0}); math.Abs(j-0.25) > 1e-12 {
		t.Fatalf("dominated vector: %v", j)
	}
	if j := JainIndex(nil); j != 1 {
		t.Fatalf("empty vector: %v", j)
	}
	if j := JainIndex([]int64{0, 0}); j != 1 {
		t.Fatalf("all-zero vector: %v", j)
	}
	mid := JainIndex([]int64{4, 2, 2})
	if mid <= 0.25 || mid >= 1 {
		t.Fatalf("mixed vector out of range: %v", mid)
	}
}

func TestSpread(t *testing.T) {
	if s := Spread([]int64{2, 8}); s != 4 {
		t.Fatalf("spread = %v", s)
	}
	if s := Spread(nil); s != 1 {
		t.Fatalf("empty spread = %v", s)
	}
	if s := Spread([]int64{0, 0}); s != 1 {
		t.Fatalf("zero spread = %v", s)
	}
	if s := Spread([]int64{0, 3}); s != 6 {
		t.Fatalf("zero-min spread = %v (want 2·max)", s)
	}
}

func TestSlowdowns(t *testing.T) {
	r := core.RequestSet{{1, 2, 3, 4}, {}}
	res := sim.Result{Finish: []int64{8, 0}}
	s := Slowdowns(r, res)
	if s[0] != 2 || s[1] != 1 {
		t.Fatalf("slowdowns = %v", s)
	}
}

func TestWindowSlowdown(t *testing.T) {
	if s := WindowSlowdown(0, 0, 4); s != 1 {
		t.Fatalf("empty window slowdown = %v, want 1", s)
	}
	if s := WindowSlowdown(0, 10, 4); s != 1 {
		t.Fatalf("faultless slowdown = %v, want 1", s)
	}
	if s := WindowSlowdown(5, 10, 4); s != 3 {
		t.Fatalf("slowdown = %v, want 3 (1 + 4·5/10)", s)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("demo", "name", "value", "ratio")
	tb.AddRow("alpha", 42, 1.23456)
	tb.AddRow("b", int64(7), 0.5)
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "alpha") {
		t.Fatalf("missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Columns align: header and first row start "value" at same offset.
	h, r0 := lines[1], lines[3]
	if strings.Index(h, "value") != strings.Index(r0, "42") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(1, 2.5)
	var buf bytes.Buffer
	if err := tb.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,2.5\n"
	if buf.String() != want {
		t.Fatalf("csv = %q, want %q", buf.String(), want)
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := NewTable("", "x")
	tb.AddRow(3.14159265)
	var buf bytes.Buffer
	tb.CSV(&buf)
	if !strings.Contains(buf.String(), "3.142") {
		t.Fatalf("float formatting: %q", buf.String())
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("demo", "a", "b")
	tb.AddRow(1, "x")
	var buf bytes.Buffer
	if err := tb.Markdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"**demo**", "| a | b |", "| --- | --- |", "| 1 | x |"} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestWeightedSpeedup(t *testing.T) {
	r := core.RequestSet{{1, 2}, {3, 4}, {}}
	res := sim.Result{Finish: []int64{10, 20, 0}}
	solo := []int64{5, 20, 0}
	// Core 0: 5/10 = 0.5, core 1: 20/20 = 1 → mean 0.75; core 2 skipped.
	if got := WeightedSpeedup(r, res, solo); got != 0.75 {
		t.Fatalf("weighted speedup = %v, want 0.75", got)
	}
	if got := WeightedSpeedup(core.RequestSet{{}}, sim.Result{Finish: []int64{0}}, []int64{0}); got != 1 {
		t.Fatalf("degenerate = %v, want 1", got)
	}
}
