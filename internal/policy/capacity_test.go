package policy

import (
	"testing"

	"mcpaging/internal/cache"
	"mcpaging/internal/core"
)

// TestReapportionLargestRemainder pins the quota-rescaling helper every
// capacity-aware controller shares: proportional split, deterministic
// largest-remainder rounding, and the one-cell floor for positive
// weights.
func TestReapportionLargestRemainder(t *testing.T) {
	cases := []struct {
		name    string
		weights []int
		total   int
		want    []int
	}{
		{"exact", []int{3, 3}, 4, []int{2, 2}},
		{"remainder-to-heavier", []int{2, 1}, 4, []int{3, 1}},
		{"grow", []int{3, 3}, 8, []int{4, 4}},
		{"zero-total", []int{3, 3}, 0, []int{0, 0}},
		{"zero-weight-gets-nothing", []int{2, 0, 2}, 4, []int{2, 0, 2}},
		{"floor-for-positive-weight", []int{7, 1}, 2, []int{1, 1}},
		{"all-zero-weights", []int{0, 0}, 4, []int{0, 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dst := make([]int, len(tc.weights))
			reapportion(dst, tc.weights, tc.total)
			sum := 0
			for j, got := range dst {
				if got != tc.want[j] {
					t.Fatalf("reapportion(%v, %d) = %v, want %v", tc.weights, tc.total, dst, tc.want)
				}
				sum += got
			}
			if tc.total > 0 && anyPositive(tc.weights) && sum != tc.total {
				t.Fatalf("granted %d of %d cells", sum, tc.total)
			}
		})
	}
}

func anyPositive(ws []int) bool {
	for _, w := range ws {
		if w > 0 {
			return true
		}
	}
	return false
}

// fillParts pushes pages through OnFault so each core's part holds its
// listed pages, mirroring the shrink_test fill pattern.
func fillParts(t *testing.T, s *Partitioned, v *fakeView, perCore [][]core.PageID) {
	t.Helper()
	for c, pages := range perCore {
		for i, pg := range pages {
			if got := s.OnFault(pg, acc(c, int64(c*100+i)), v); got != core.NoPage {
				t.Fatalf("fill core %d page %d: unexpected victim %d", c, pg, got)
			}
			v.resident[pg] = true
			v.free--
		}
	}
}

// TestStaticOnCapacityRescalesQuota pins the sP contract under K(t):
// the configured sizes act as weights, the live quota tracks the
// announced capacity both down and up, and returning to base K restores
// the configured partition exactly.
func TestStaticOnCapacityRescalesQuota(t *testing.T) {
	s := NewStatic([]int{3, 3}, func() cache.Policy { return cache.NewLRU() })
	in := core.Instance{R: core.RequestSet{{1}, {1}}, P: core.Params{K: 6}}
	if err := s.Init(in); err != nil {
		t.Fatal(err)
	}
	check := func(label string, want []int) {
		t.Helper()
		q := s.ctrl.Quota()
		for j := range want {
			if q[j] != want[j] {
				t.Fatalf("%s: quota = %v, want %v", label, q, want)
			}
		}
	}
	check("base", []int{3, 3})
	s.OnCapacity(4, 10)
	check("shrink to 4", []int{2, 2})
	s.OnCapacity(8, 20)
	check("grow to 8", []int{4, 4})
	s.OnCapacity(6, 30)
	check("back to base", []int{3, 3})
}

// TestPartitionedSurrenderOneShedsMostOverQuota pins the shed order: a
// capacity shrink drains the part most over its new quota first, ties
// to the lower core index, with ownership and occupancy maintained.
func TestPartitionedSurrenderOneShedsMostOverQuota(t *testing.T) {
	s := NewStatic([]int{3, 3}, func() cache.Policy { return cache.NewLRU() })
	in := core.Instance{R: core.RequestSet{{1}, {1}}, P: core.Params{K: 6}}
	if err := s.Init(in); err != nil {
		t.Fatal(err)
	}
	v := &fakeView{resident: map[core.PageID]bool{}, free: 6, k: 6}
	fillParts(t, s, v, [][]core.PageID{{1, 2, 3}, {11, 12}})

	// Shrink to 4: quota {2,2}; part 0 is over by 1, part 1 at quota.
	s.OnCapacity(4, 10)
	w, ok := s.SurrenderOne(v)
	if !ok {
		t.Fatal("SurrenderOne refused with a part over quota")
	}
	if w != 1 {
		t.Fatalf("shed %d, want part 0's LRU page 1", w)
	}
	if s.occ[0] != 2 {
		t.Fatalf("occ[0] = %d after shed, want 2", s.occ[0])
	}
	if _, owned := s.partOf[w]; owned {
		t.Fatalf("shed page %d still owned", w)
	}
	// Both parts now hold 2 against quota 2; a further shed (engine
	// still over capacity, e.g. in-flight reservations) ties to core 0.
	w, ok = s.SurrenderOne(v)
	if !ok || w != 2 {
		t.Fatalf("tie-break shed = %d,%v; want part 0's page 2", w, ok)
	}
}

// TestPartitionedSurrenderOneSkipsPinnedParts pins the in-flight rule:
// a part whose pages are all unevictable is skipped in favor of the
// next-most-over part, and when every part refuses, ok = false so the
// engine retries at the next service step.
func TestPartitionedSurrenderOneSkipsPinnedParts(t *testing.T) {
	s := NewStatic([]int{3, 3}, func() cache.Policy { return cache.NewLRU() })
	in := core.Instance{R: core.RequestSet{{1}, {1}}, P: core.Params{K: 6}}
	if err := s.Init(in); err != nil {
		t.Fatal(err)
	}
	v := &fakeView{resident: map[core.PageID]bool{}, free: 6, k: 6}
	fillParts(t, s, v, [][]core.PageID{{1, 2, 3}, {11, 12}})
	s.OnCapacity(4, 10)

	// Pin all of part 0 (the most-over part) in flight: the shed must
	// fall through to part 1.
	for _, pg := range []core.PageID{1, 2, 3} {
		v.resident[pg] = false
	}
	w, ok := s.SurrenderOne(v)
	if !ok || w != 11 {
		t.Fatalf("shed with part 0 pinned = %d,%v; want part 1's page 11", w, ok)
	}
	// Pin everything: the shed must refuse, not spin or panic.
	for _, pg := range []core.PageID{11, 12} {
		v.resident[pg] = false
	}
	if w, ok := s.SurrenderOne(v); ok {
		t.Fatalf("all-pinned SurrenderOne yielded %d, want refusal", w)
	}
}

// TestFairControllerCapacityKeepsActiveSeats pins the FairShare rule
// under K(t): rescaling the quota never drops an active core to zero
// cells, even when the proportional share rounds to nothing.
func TestFairControllerCapacityKeepsActiveSeats(t *testing.T) {
	ctrl := FairController(0)
	in := core.Instance{R: core.RequestSet{{1}, {1}, {1}}, P: core.Params{K: 12}}
	if err := ctrl.Init(in); err != nil {
		t.Fatal(err)
	}
	if !ctrl.Capacity(3, 10) {
		t.Fatal("FairController.Capacity returned false")
	}
	q := ctrl.Quota()
	sum := 0
	for j, c := range q {
		if c < 1 {
			t.Fatalf("core %d lost its seat: quota %v", j, q)
		}
		sum += c
	}
	if sum != 3 {
		t.Fatalf("quota %v sums to %d, want 3", q, sum)
	}
}
