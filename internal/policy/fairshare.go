package policy

import (
	"fmt"

	"mcpaging/internal/cache"
	"mcpaging/internal/core"
)

// fairController is an online dynamic partition aimed at the fairness
// objective the paper's conclusions propose as future work (and which
// PARTIAL-INDIVIDUAL-FAULTS formalises offline): every Window timesteps
// it moves one cache cell from the core with the fewest recent faults to
// the core with the most, greedily equalising per-core fault rates at
// some cost in total faults.
//
// It is the online counterpart of a PIF bound vector: where Algorithm 2
// asks whether per-core budgets are feasible at a checkpoint, FairShare
// steers toward balanced budgets without future knowledge. Experiment
// E16 measures what that steering costs.
type fairController struct {
	window int64
	quota  []int
	counts []int64 // faults in the current window
	nextAt int64
	active []bool
}

// FairController returns the FairShare controller dP[fair] with the
// given reallocation window in timesteps (0 = default 64).
func FairController(window int64) Controller {
	if window <= 0 {
		window = 64
	}
	return &fairController{window: window}
}

// NewFairShare returns a FairShare partition over LRU parts with the
// given reallocation window (0 = default).
func NewFairShare(window int64) *Partitioned {
	return NewPartitioned(FairController(window), func() cache.Policy { return cache.NewLRU() })
}

// Name implements Controller.
func (c *fairController) Name() string { return fmt.Sprintf("dP[fair/%d]", c.window) }

// Quota implements Controller.
func (c *fairController) Quota() []int { return c.quota }

// Init implements Controller.
func (c *fairController) Init(inst core.Instance) error {
	p := inst.R.NumCores()
	if inst.P.K < p {
		return fmt.Errorf("policy: FairShare needs K >= p (K=%d, p=%d)", inst.P.K, p)
	}
	c.active = make([]bool, p)
	for j := range c.active {
		c.active[j] = len(inst.R[j]) > 0
	}
	c.quota = seedQuota(inst.P.K, c.active)
	c.counts = make([]int64, p)
	c.nextAt = c.window
	return nil
}

// Hit implements Controller: hits do not count against the window.
func (c *fairController) Hit(core.PageID, cache.Access) {}

// Join implements Controller: a join is a fault the core did not pay the
// full fetch for, but it still signals demand.
func (c *fairController) Join(_ core.PageID, at cache.Access) { c.counts[at.Core]++ }

// Inserted implements Controller: one fault for the inserting core.
func (c *fairController) Inserted(j int, _ core.PageID, _ cache.Access) { c.counts[j]++ }

// Evicted implements Controller.
func (c *fairController) Evicted(core.PageID) {}

// Donor implements Controller: the faulting core's own part; the steal
// fallback covers a part emptied by a quota cut.
func (c *fairController) Donor(j int, _ PartView, _ func(core.PageID) bool) (int, bool) {
	return j, true
}

// StealOnEmpty implements Controller.
func (c *fairController) StealOnEmpty() bool { return true }

// Tick implements Controller: periodic quota rebalancing — one cell from
// the calmest core to the most fault-ridden one.
func (c *fairController) Tick(t int64) bool {
	if t < c.nextAt {
		return false
	}
	c.nextAt = t + c.window
	rich, poor := -1, -1
	for j := range c.counts {
		if !c.active[j] {
			continue
		}
		if rich == -1 || c.counts[j] > c.counts[rich] {
			rich = j
		}
		if c.quota[j] > 1 && (poor == -1 || c.counts[j] < c.counts[poor]) {
			poor = j
		}
	}
	moved := false
	if rich >= 0 && poor >= 0 && rich != poor && c.counts[rich] > c.counts[poor] {
		c.quota[poor]--
		c.quota[rich]++
		moved = true
	}
	for j := range c.counts {
		c.counts[j] = 0
	}
	return moved
}

// Ticks implements Controller.
func (c *fairController) Ticks() bool { return true }

// Capacity implements Controller: the current quota is rescaled
// proportionally to the new capacity, preserving whatever balance the
// window rebalancing has reached so far.
func (c *fairController) Capacity(k int, _ int64) bool {
	weights := append([]int(nil), c.quota...)
	for j := range weights {
		if c.active[j] && weights[j] == 0 {
			weights[j] = 1 // an active core never loses its seat
		}
	}
	reapportion(c.quota, weights, k)
	return true
}
