package policy

import (
	"fmt"

	"mcpaging/internal/cache"
	"mcpaging/internal/core"
	"mcpaging/internal/sim"
)

// FairShare is an online dynamic partition aimed at the fairness
// objective the paper's conclusions propose as future work (and which
// PARTIAL-INDIVIDUAL-FAULTS formalises offline): every Window timesteps
// it moves one cache cell from the core with the fewest recent faults to
// the core with the most, greedily equalising per-core fault rates at
// some cost in total faults. Parts run LRU.
//
// It is the online counterpart of a PIF bound vector: where Algorithm 2
// asks whether per-core budgets are feasible at a checkpoint, FairShare
// steers toward balanced budgets without future knowledge. Experiment
// E16 measures what that steering costs.
type FairShare struct {
	// Window is the reallocation period in timesteps (default 64).
	Window int64

	q      quotaParts
	window []int64 // faults in the current window
	nextAt int64
	active []bool
}

// NewFairShare returns a FairShare partition with the given reallocation
// window (0 = default).
func NewFairShare(window int64) *FairShare {
	if window <= 0 {
		window = 64
	}
	return &FairShare{Window: window}
}

// Name implements sim.Strategy.
func (f *FairShare) Name() string { return fmt.Sprintf("dP[fair/%d](LRU)", f.Window) }

// Init implements sim.Strategy.
func (f *FairShare) Init(inst core.Instance) error {
	p := inst.R.NumCores()
	if inst.P.K < p {
		return fmt.Errorf("policy: FairShare needs K >= p (K=%d, p=%d)", inst.P.K, p)
	}
	f.active = make([]bool, p)
	for j := range f.active {
		f.active[j] = len(inst.R[j]) > 0
	}
	f.q.init(p, inst.P.K, f.active)
	f.window = make([]int64, p)
	f.nextAt = f.Window
	return nil
}

// Quota returns the current per-core cell targets (for tests and
// observability).
func (f *FairShare) Quota() []int { return append([]int(nil), f.q.quota...) }

// OnTick implements sim.Ticker: periodic quota rebalancing plus shedding
// of any overage.
func (f *FairShare) OnTick(t int64, v sim.View) []core.PageID {
	if t >= f.nextAt {
		f.nextAt = t + f.Window
		rich, poor := -1, -1
		for j := range f.window {
			if !f.active[j] {
				continue
			}
			if rich == -1 || f.window[j] > f.window[rich] {
				rich = j
			}
			if f.q.quota[j] > 1 && (poor == -1 || f.window[j] < f.window[poor]) {
				poor = j
			}
		}
		if rich >= 0 && poor >= 0 && rich != poor && f.window[rich] > f.window[poor] {
			f.q.quota[poor]--
			f.q.quota[rich]++
		}
		for j := range f.window {
			f.window[j] = 0
		}
	}
	return f.q.shed(v)
}

// OnHit implements sim.Strategy.
func (f *FairShare) OnHit(p core.PageID, at cache.Access) { f.q.touch(p, at) }

// OnJoin implements sim.Strategy.
func (f *FairShare) OnJoin(p core.PageID, at cache.Access) {
	f.window[at.Core]++
	f.q.touch(p, at)
}

// OnFault implements sim.Strategy.
func (f *FairShare) OnFault(p core.PageID, at cache.Access, v sim.View) core.PageID {
	f.window[at.Core]++
	return f.q.fault(at.Core, p, at, v)
}
