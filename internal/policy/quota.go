package policy

import (
	"mcpaging/internal/cache"
	"mcpaging/internal/core"
	"mcpaging/internal/sim"
)

// quotaParts is the machinery shared by quota-driven dynamic partitions
// (FairShare, UCP): per-core LRU parts, page ownership, occupancy, and a
// quota vector that a surrounding strategy adjusts over time. Cells
// drift toward their quotas: parts above quota shed pages at step
// boundaries, and a faulting core whose own part is empty steals a cell
// from the most over-quota donor.
type quotaParts struct {
	parts  []cache.Policy
	partOf map[core.PageID]int
	occ    []int
	quota  []int
	vf     viewFuncs
}

func (q *quotaParts) init(p, k int, active []bool) {
	if len(q.parts) != p {
		q.parts = make([]cache.Policy, p)
		for j := range q.parts {
			q.parts[j] = cache.NewLRU()
		}
	} else {
		for j := range q.parts {
			q.parts[j].Reset()
		}
	}
	if q.partOf == nil {
		q.partOf = make(map[core.PageID]int)
	} else {
		clear(q.partOf)
	}
	if len(q.occ) != p {
		q.occ = make([]int, p)
	} else {
		clear(q.occ)
	}
	q.quota = EvenSizes(k, p)
	q.vf.reset()
	// Inactive cores donate their quota to the first active core.
	first := -1
	for j, a := range active {
		if a {
			first = j
			break
		}
	}
	if first >= 0 {
		for j := range q.quota {
			if !active[j] && q.quota[j] > 0 {
				q.quota[first] += q.quota[j]
				q.quota[j] = 0
			}
		}
	}
}

// touch refreshes metadata on a hit or in-flight join.
func (q *quotaParts) touch(p core.PageID, at cache.Access) {
	if j, ok := q.partOf[p]; ok {
		q.parts[j].Touch(p, at)
	}
}

// shed evicts pages from parts above quota; returned pages must be
// handed to the simulator as voluntary evictions.
func (q *quotaParts) shed(v sim.View) []core.PageID {
	q.vf.use(v)
	var out []core.PageID
	for j := range q.occ {
		for q.occ[j] > q.quota[j] {
			w, ok := q.parts[j].Evict(q.vf.resident)
			if !ok {
				break // in-flight pages; retried next tick
			}
			delete(q.partOf, w)
			q.occ[j]--
			out = append(out, w)
		}
	}
	return out
}

// fault handles victim selection for core j faulting on page p.
func (q *quotaParts) fault(j int, p core.PageID, at cache.Access, v sim.View) core.PageID {
	q.vf.use(v)
	var victim core.PageID = core.NoPage
	switch {
	case q.occ[j] < q.quota[j] && v.Free() > 0:
		q.occ[j]++
	default:
		if w, ok := q.parts[j].Evict(q.vf.resident); ok {
			victim = w
			delete(q.partOf, w)
			break
		}
		// Own part empty or wholly in flight (possible right after a
		// quota cut): steal a cell from the most over-quota donor.
		donor := -1
		for c := range q.occ {
			if c == j || q.occ[c] == 0 {
				continue
			}
			if donor == -1 || q.occ[c]-q.quota[c] > q.occ[donor]-q.quota[donor] {
				donor = c
			}
		}
		if donor == -1 {
			return core.NoPage // protocol error surfaces in the simulator
		}
		w, ok := q.parts[donor].Evict(q.vf.resident)
		if !ok {
			return core.NoPage
		}
		victim = w
		delete(q.partOf, w)
		q.occ[donor]--
		q.occ[j]++
	}
	q.parts[j].Insert(p, at)
	q.partOf[p] = j
	return victim
}
