package policy_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mcpaging/internal/core"
	"mcpaging/internal/metrics"
	"mcpaging/internal/policy"
	"mcpaging/internal/sim"
)

func TestFairShareRuns(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 2 + rng.Intn(3)
		k := p + rng.Intn(8)
		rs := randomDisjoint(rng, p, 80, 6)
		in := core.Instance{R: rs, P: core.Params{K: k, Tau: rng.Intn(4)}}
		res, err := sim.Run(in, policy.NewFairShare(16), nil)
		if err != nil {
			return false
		}
		return res.TotalFaults()+res.TotalHits() == int64(rs.TotalLen())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestFairShareImprovesFairness: on a deliberately unbalanced workload —
// one thrashing core, three tiny-working-set cores — FairShare ends up
// fairer than the even static partition.
func TestFairShareImprovesFairness(t *testing.T) {
	var rs core.RequestSet
	// Core 0: cycles through 12 pages (needs many cells).
	big := make(core.Sequence, 1200)
	for i := range big {
		big[i] = core.PageID(i % 12)
	}
	rs = append(rs, big)
	for j := 1; j < 4; j++ {
		small := make(core.Sequence, 1200)
		for i := range small {
			small[i] = core.PageID(1000*j + i%2)
		}
		rs = append(rs, small)
	}
	in := core.Instance{R: rs, P: core.Params{K: 16, Tau: 2}}

	static, err := sim.Run(in, policy.NewStatic(policy.EvenSizes(16, 4), lru()), nil)
	if err != nil {
		t.Fatal(err)
	}
	fair, err := sim.Run(in, policy.NewFairShare(32), nil)
	if err != nil {
		t.Fatal(err)
	}
	jStatic := metrics.JainIndex(static.Faults)
	jFair := metrics.JainIndex(fair.Faults)
	if jFair <= jStatic {
		t.Fatalf("FairShare Jain %.3f should beat even static %.3f (faults %v vs %v)",
			jFair, jStatic, fair.Faults, static.Faults)
	}
	// And the thrashing core specifically must fault less than under the
	// even split.
	if fair.Faults[0] >= static.Faults[0] {
		t.Fatalf("FairShare should relieve the thrashing core: %d vs %d",
			fair.Faults[0], static.Faults[0])
	}
}

func TestFairShareQuotaConserved(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rs := randomDisjoint(rng, 3, 150, 6)
	in := core.Instance{R: rs, P: core.Params{K: 9, Tau: 1}}
	fs := policy.NewFairShare(8)
	if _, err := sim.Run(in, fs, nil); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, q := range fs.Quota() {
		if q < 0 {
			t.Fatalf("negative quota: %v", fs.Quota())
		}
		total += q
	}
	if total != 9 {
		t.Fatalf("quota sums to %d, want K=9 (%v)", total, fs.Quota())
	}
}

func TestFairShareRejectsTinyCache(t *testing.T) {
	in := core.Instance{R: core.RequestSet{{1}, {2}, {3}}, P: core.Params{K: 2, Tau: 0}}
	if _, err := sim.Run(in, policy.NewFairShare(8), nil); err == nil {
		t.Fatal("K < p should be rejected")
	}
}
