package policy

import (
	"fmt"

	"mcpaging/internal/cache"
	"mcpaging/internal/core"
)

// ucpController is utility-based cache partitioning in the style of
// Qureshi & Patt (MICRO 2006) — the practice-side dynamic-partition
// heuristic the paper's related work surveys: each core carries a
// lightweight utility monitor (a shadow LRU stack with per-depth hit
// counters, i.e. an online Mattson sampler over the recent past), and
// every Window timesteps the K cells are redistributed greedily by
// marginal utility — each next cell goes to the core whose hit count at
// its current allocation depth is largest. Counters decay geometrically
// so the partition tracks phase changes.
//
// UCP chases total hits where FairShare chases equal faults; experiment
// E13/E16 put both against the shared and static baselines.
type ucpController struct {
	window int64
	decay  int64
	k      int
	quota  []int
	mons   []*umon
	nextAt int64
	active []bool
}

// umon is a per-core utility monitor: a shadow LRU stack of up to k
// pages with hit counters per stack depth.
type umon struct {
	stack []core.PageID
	hits  []int64 // hits[d] = hits at depth d (0-based), needing d+1 cells
}

func newUmon(k int) *umon {
	return &umon{stack: make([]core.PageID, 0, k), hits: make([]int64, k)}
}

// access records one request in the shadow stack.
func (m *umon) access(p core.PageID) {
	for i, q := range m.stack {
		if q == p {
			m.hits[i]++
			copy(m.stack[1:i+1], m.stack[:i])
			m.stack[0] = p
			return
		}
	}
	if len(m.stack) < cap(m.stack) {
		m.stack = append(m.stack, 0)
	}
	copy(m.stack[1:], m.stack[:len(m.stack)-1])
	m.stack[0] = p
}

func (m *umon) decay(d int64) {
	for i := range m.hits {
		m.hits[i] /= d
	}
}

// UCPController returns the UCP controller dP[ucp] with the given
// repartitioning window in timesteps (0 = default 128).
func UCPController(window int64) Controller {
	if window <= 0 {
		window = 128
	}
	return &ucpController{window: window, decay: 2}
}

// NewUCP returns a UCP partition over LRU parts with the given window
// (0 = default).
func NewUCP(window int64) *Partitioned {
	return NewPartitioned(UCPController(window), func() cache.Policy { return cache.NewLRU() })
}

// Name implements Controller.
func (c *ucpController) Name() string { return fmt.Sprintf("dP[ucp/%d]", c.window) }

// Quota implements Controller.
func (c *ucpController) Quota() []int { return c.quota }

// Init implements Controller.
func (c *ucpController) Init(inst core.Instance) error {
	p := inst.R.NumCores()
	if inst.P.K < p {
		return fmt.Errorf("policy: UCP needs K >= p (K=%d, p=%d)", inst.P.K, p)
	}
	c.k = inst.P.K
	c.active = make([]bool, p)
	for j := range c.active {
		c.active[j] = len(inst.R[j]) > 0
	}
	c.quota = seedQuota(c.k, c.active)
	c.mons = make([]*umon, p)
	for j := range c.mons {
		c.mons[j] = newUmon(c.k)
	}
	c.nextAt = c.window
	return nil
}

// Hit implements Controller.
func (c *ucpController) Hit(p core.PageID, at cache.Access) { c.mons[at.Core].access(p) }

// Join implements Controller.
func (c *ucpController) Join(p core.PageID, at cache.Access) { c.mons[at.Core].access(p) }

// Inserted implements Controller.
func (c *ucpController) Inserted(_ int, p core.PageID, at cache.Access) {
	c.mons[at.Core].access(p)
}

// Evicted implements Controller.
func (c *ucpController) Evicted(core.PageID) {}

// Donor implements Controller: the faulting core's own part; the steal
// fallback covers a part emptied by a quota cut.
func (c *ucpController) Donor(j int, _ PartView, _ func(core.PageID) bool) (int, bool) {
	return j, true
}

// StealOnEmpty implements Controller.
func (c *ucpController) StealOnEmpty() bool { return true }

// repartition reassigns the K cells greedily by marginal utility.
func (c *ucpController) repartition() {
	p := len(c.quota)
	alloc := make([]int, p)
	remaining := c.k
	for j := 0; j < p; j++ {
		if c.active[j] {
			alloc[j] = 1
			remaining--
		}
	}
	for ; remaining > 0; remaining-- {
		best, bestGain := -1, int64(-1)
		for j := 0; j < p; j++ {
			if !c.active[j] || alloc[j] >= c.k {
				continue
			}
			var gain int64 // hits needing alloc[j]+1 cells; 0 past monitor depth
			if alloc[j] < len(c.mons[j].hits) {
				gain = c.mons[j].hits[alloc[j]]
			}
			if gain > bestGain {
				best, bestGain = j, gain
			}
		}
		if best == -1 {
			break
		}
		alloc[best]++
	}
	copy(c.quota, alloc)
	for _, m := range c.mons {
		m.decay(c.decay)
	}
}

// Tick implements Controller.
func (c *ucpController) Tick(t int64) bool {
	if t < c.nextAt {
		return false
	}
	c.nextAt = t + c.window
	c.repartition()
	return true
}

// Ticks implements Controller.
func (c *ucpController) Ticks() bool { return true }

// Capacity implements Controller: the greedy marginal-utility
// redistribution simply reruns over the new cell count. Monitors keep
// their base-K depth; allocations past it see zero marginal gain.
func (c *ucpController) Capacity(k int, _ int64) bool {
	c.k = k
	c.repartition()
	return true
}
