package policy

import (
	"fmt"

	"mcpaging/internal/cache"
	"mcpaging/internal/core"
	"mcpaging/internal/sim"
)

// UCP is utility-based cache partitioning in the style of Qureshi & Patt
// (MICRO 2006) — the practice-side dynamic-partition heuristic the
// paper's related work surveys: each core carries a lightweight utility
// monitor (a shadow LRU stack with per-depth hit counters, i.e. an
// online Mattson sampler over the recent past), and every Window
// timesteps the K cells are redistributed greedily by marginal utility —
// each next cell goes to the core whose hit count at its current
// allocation depth is largest. Counters decay geometrically so the
// partition tracks phase changes.
//
// UCP chases total hits where FairShare chases equal faults; experiment
// E13/E16 put both against the shared and static baselines.
type UCP struct {
	// Window is the repartitioning period in timesteps (default 128).
	Window int64
	// Decay divides the monitor counters at each repartition (default 2).
	Decay int64

	k      int
	q      quotaParts
	mons   []*umon
	nextAt int64
	active []bool
}

// umon is a per-core utility monitor: a shadow LRU stack of up to k
// pages with hit counters per stack depth.
type umon struct {
	stack []core.PageID
	hits  []int64 // hits[d] = hits at depth d (0-based), needing d+1 cells
}

func newUmon(k int) *umon {
	return &umon{stack: make([]core.PageID, 0, k), hits: make([]int64, k)}
}

// access records one request in the shadow stack.
func (m *umon) access(p core.PageID) {
	for i, q := range m.stack {
		if q == p {
			m.hits[i]++
			copy(m.stack[1:i+1], m.stack[:i])
			m.stack[0] = p
			return
		}
	}
	if len(m.stack) < cap(m.stack) {
		m.stack = append(m.stack, 0)
	}
	copy(m.stack[1:], m.stack[:len(m.stack)-1])
	m.stack[0] = p
}

func (m *umon) decay(d int64) {
	for i := range m.hits {
		m.hits[i] /= d
	}
}

// NewUCP returns a UCP partition with the given window (0 = default).
func NewUCP(window int64) *UCP {
	if window <= 0 {
		window = 128
	}
	return &UCP{Window: window, Decay: 2}
}

// Name implements sim.Strategy.
func (u *UCP) Name() string { return fmt.Sprintf("dP[ucp/%d](LRU)", u.Window) }

// Init implements sim.Strategy.
func (u *UCP) Init(inst core.Instance) error {
	p := inst.R.NumCores()
	if inst.P.K < p {
		return fmt.Errorf("policy: UCP needs K >= p (K=%d, p=%d)", inst.P.K, p)
	}
	u.k = inst.P.K
	u.active = make([]bool, p)
	for j := range u.active {
		u.active[j] = len(inst.R[j]) > 0
	}
	u.q.init(p, u.k, u.active)
	u.mons = make([]*umon, p)
	for j := range u.mons {
		u.mons[j] = newUmon(u.k)
	}
	u.nextAt = u.Window
	if u.Decay < 2 {
		u.Decay = 2
	}
	return nil
}

// Quota returns the current per-core cell targets.
func (u *UCP) Quota() []int { return append([]int(nil), u.q.quota...) }

// repartition reassigns the K cells greedily by marginal utility.
func (u *UCP) repartition() {
	p := len(u.q.quota)
	alloc := make([]int, p)
	remaining := u.k
	for j := 0; j < p; j++ {
		if u.active[j] {
			alloc[j] = 1
			remaining--
		}
	}
	for ; remaining > 0; remaining-- {
		best, bestGain := -1, int64(-1)
		for j := 0; j < p; j++ {
			if !u.active[j] || alloc[j] >= u.k {
				continue
			}
			gain := u.mons[j].hits[alloc[j]] // hits needing alloc[j]+1 cells
			if gain > bestGain {
				best, bestGain = j, gain
			}
		}
		if best == -1 {
			break
		}
		alloc[best]++
	}
	copy(u.q.quota, alloc)
	for _, m := range u.mons {
		m.decay(u.Decay)
	}
}

// OnTick implements sim.Ticker.
func (u *UCP) OnTick(t int64, v sim.View) []core.PageID {
	if t >= u.nextAt {
		u.nextAt = t + u.Window
		u.repartition()
	}
	return u.q.shed(v)
}

// OnHit implements sim.Strategy.
func (u *UCP) OnHit(p core.PageID, at cache.Access) {
	u.mons[at.Core].access(p)
	u.q.touch(p, at)
}

// OnJoin implements sim.Strategy.
func (u *UCP) OnJoin(p core.PageID, at cache.Access) {
	u.mons[at.Core].access(p)
	u.q.touch(p, at)
}

// OnFault implements sim.Strategy.
func (u *UCP) OnFault(p core.PageID, at cache.Access, v sim.View) core.PageID {
	u.mons[at.Core].access(p)
	return u.q.fault(at.Core, p, at, v)
}
