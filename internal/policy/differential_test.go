package policy

import (
	"fmt"
	"math/rand"
	"testing"

	"mcpaging/internal/cache"
	"mcpaging/internal/core"
	"mcpaging/internal/sim"
)

// This file pins the controller × policy refactor to the pre-refactor
// behaviour: the hand-rolled LRU strategies that used to live in
// dynamic.go, fairshare.go, ucp.go and policy.go are reproduced here
// verbatim (as ref* types) and run head-to-head against the composed
// Partitioned strategies on seeded workloads. The event streams must be
// identical, fault for fault and victim for victim — the only field
// ignored is Event.Donor, which did not exist before the refactor.

// refParts is the legacy quotaParts helper shared by the old FairShare
// and UCP implementations.
type refParts struct {
	parts  []cache.Policy
	partOf map[core.PageID]int
	occ    []int
	quota  []int
	vf     viewFuncs
}

func (q *refParts) init(p, k int, active []bool) {
	q.parts = make([]cache.Policy, p)
	for j := range q.parts {
		q.parts[j] = cache.NewLRU()
	}
	q.partOf = make(map[core.PageID]int)
	q.occ = make([]int, p)
	q.quota = EvenSizes(k, p)
	q.vf.reset()
	first := -1
	for j, a := range active {
		if a {
			first = j
			break
		}
	}
	if first >= 0 {
		for j := range q.quota {
			if !active[j] && q.quota[j] > 0 {
				q.quota[first] += q.quota[j]
				q.quota[j] = 0
			}
		}
	}
}

func (q *refParts) touch(p core.PageID, at cache.Access) {
	if j, ok := q.partOf[p]; ok {
		q.parts[j].Touch(p, at)
	}
}

func (q *refParts) shed(v sim.View) []core.PageID {
	q.vf.use(v)
	var out []core.PageID
	for j := range q.occ {
		for q.occ[j] > q.quota[j] {
			w, ok := q.parts[j].Evict(q.vf.resident)
			if !ok {
				break
			}
			delete(q.partOf, w)
			q.occ[j]--
			out = append(out, w)
		}
	}
	return out
}

func (q *refParts) fault(j int, p core.PageID, at cache.Access, v sim.View) core.PageID {
	q.vf.use(v)
	var victim core.PageID = core.NoPage
	switch {
	case q.occ[j] < q.quota[j] && v.Free() > 0:
		q.occ[j]++
	default:
		if w, ok := q.parts[j].Evict(q.vf.resident); ok {
			victim = w
			delete(q.partOf, w)
			break
		}
		donor := -1
		for c := range q.occ {
			if c == j || q.occ[c] == 0 {
				continue
			}
			if donor == -1 || q.occ[c]-q.quota[c] > q.occ[donor]-q.quota[donor] {
				donor = c
			}
		}
		if donor == -1 {
			return core.NoPage
		}
		w, ok := q.parts[donor].Evict(q.vf.resident)
		if !ok {
			return core.NoPage
		}
		victim = w
		delete(q.partOf, w)
		q.occ[donor]--
		q.occ[j]++
	}
	q.parts[j].Insert(p, at)
	q.partOf[p] = j
	return victim
}

// refStatic is the legacy Static strategy (LRU parts).
type refStatic struct {
	sizes  []int
	parts  []cache.Policy
	partOf map[core.PageID]int
	occ    []int
	vf     viewFuncs
}

func (s *refStatic) Name() string { return fmt.Sprintf("refSP%v(LRU)", s.sizes) }

func (s *refStatic) Init(inst core.Instance) error {
	p := inst.R.NumCores()
	s.parts = make([]cache.Policy, p)
	for j := range s.parts {
		s.parts[j] = cache.NewLRU()
	}
	s.partOf = make(map[core.PageID]int)
	s.occ = make([]int, p)
	s.vf.reset()
	return nil
}

func (s *refStatic) OnHit(p core.PageID, at cache.Access) {
	if j, ok := s.partOf[p]; ok {
		s.parts[j].Touch(p, at)
	}
}

func (s *refStatic) OnJoin(p core.PageID, at cache.Access) {
	if j, ok := s.partOf[p]; ok {
		s.parts[j].Touch(p, at)
	}
}

func (s *refStatic) OnFault(p core.PageID, at cache.Access, v sim.View) core.PageID {
	j := at.Core
	s.vf.use(v)
	var victim core.PageID = core.NoPage
	if s.occ[j] < s.sizes[j] {
		s.occ[j]++
	} else {
		w, ok := s.parts[j].Evict(s.vf.resident)
		if !ok {
			return core.NoPage
		}
		victim = w
		delete(s.partOf, w)
	}
	s.parts[j].Insert(p, at)
	s.partOf[p] = j
	return victim
}

// refDynamicLRU is the legacy Lemma 3 dynamic partition.
type refDynamicLRU struct {
	global *cache.LRU
	partOf map[core.PageID]int
	occ    []int
	vf     viewFuncs
}

func (d *refDynamicLRU) Name() string { return "refDP[lru-global](LRU)" }

func (d *refDynamicLRU) Init(inst core.Instance) error {
	d.global = cache.NewLRU()
	d.partOf = make(map[core.PageID]int)
	d.occ = make([]int, inst.R.NumCores())
	d.vf.reset()
	return nil
}

func (d *refDynamicLRU) OnHit(p core.PageID, at cache.Access)  { d.global.Touch(p, at) }
func (d *refDynamicLRU) OnJoin(p core.PageID, at cache.Access) { d.global.Touch(p, at) }

func (d *refDynamicLRU) OnFault(p core.PageID, at cache.Access, v sim.View) core.PageID {
	j := at.Core
	d.vf.use(v)
	var victim core.PageID = core.NoPage
	if v.Free() == 0 {
		w, ok := d.global.Evict(d.vf.resident)
		if !ok {
			return core.NoPage
		}
		victim = w
		donor := d.partOf[w]
		d.occ[donor]--
		delete(d.partOf, w)
	}
	d.global.Insert(p, at)
	d.partOf[p] = j
	d.occ[j]++
	return victim
}

// refFairShare is the legacy FairShare strategy.
type refFairShare struct {
	Window int64

	q      refParts
	window []int64
	nextAt int64
	active []bool
}

func (f *refFairShare) Name() string { return fmt.Sprintf("refDP[fair/%d](LRU)", f.Window) }

func (f *refFairShare) Init(inst core.Instance) error {
	p := inst.R.NumCores()
	f.active = make([]bool, p)
	for j := range f.active {
		f.active[j] = len(inst.R[j]) > 0
	}
	f.q.init(p, inst.P.K, f.active)
	f.window = make([]int64, p)
	f.nextAt = f.Window
	return nil
}

func (f *refFairShare) OnTick(t int64, v sim.View) []core.PageID {
	if t >= f.nextAt {
		f.nextAt = t + f.Window
		rich, poor := -1, -1
		for j := range f.window {
			if !f.active[j] {
				continue
			}
			if rich == -1 || f.window[j] > f.window[rich] {
				rich = j
			}
			if f.q.quota[j] > 1 && (poor == -1 || f.window[j] < f.window[poor]) {
				poor = j
			}
		}
		if rich >= 0 && poor >= 0 && rich != poor && f.window[rich] > f.window[poor] {
			f.q.quota[poor]--
			f.q.quota[rich]++
		}
		for j := range f.window {
			f.window[j] = 0
		}
	}
	return f.q.shed(v)
}

func (f *refFairShare) OnHit(p core.PageID, at cache.Access) { f.q.touch(p, at) }

func (f *refFairShare) OnJoin(p core.PageID, at cache.Access) {
	f.window[at.Core]++
	f.q.touch(p, at)
}

func (f *refFairShare) OnFault(p core.PageID, at cache.Access, v sim.View) core.PageID {
	f.window[at.Core]++
	return f.q.fault(at.Core, p, at, v)
}

// refUCP is the legacy UCP strategy.
type refUCP struct {
	Window int64
	Decay  int64

	k      int
	q      refParts
	mons   []*umon
	nextAt int64
	active []bool
}

func (u *refUCP) Name() string { return fmt.Sprintf("refDP[ucp/%d](LRU)", u.Window) }

func (u *refUCP) Init(inst core.Instance) error {
	p := inst.R.NumCores()
	u.k = inst.P.K
	u.active = make([]bool, p)
	for j := range u.active {
		u.active[j] = len(inst.R[j]) > 0
	}
	u.q.init(p, u.k, u.active)
	u.mons = make([]*umon, p)
	for j := range u.mons {
		u.mons[j] = newUmon(u.k)
	}
	u.nextAt = u.Window
	if u.Decay < 2 {
		u.Decay = 2
	}
	return nil
}

func (u *refUCP) repartition() {
	p := len(u.q.quota)
	alloc := make([]int, p)
	remaining := u.k
	for j := 0; j < p; j++ {
		if u.active[j] {
			alloc[j] = 1
			remaining--
		}
	}
	for ; remaining > 0; remaining-- {
		best, bestGain := -1, int64(-1)
		for j := 0; j < p; j++ {
			if !u.active[j] || alloc[j] >= u.k {
				continue
			}
			gain := u.mons[j].hits[alloc[j]]
			if gain > bestGain {
				best, bestGain = j, gain
			}
		}
		if best == -1 {
			break
		}
		alloc[best]++
	}
	copy(u.q.quota, alloc)
	for _, m := range u.mons {
		m.decay(u.Decay)
	}
}

func (u *refUCP) OnTick(t int64, v sim.View) []core.PageID {
	if t >= u.nextAt {
		u.nextAt = t + u.Window
		u.repartition()
	}
	return u.q.shed(v)
}

func (u *refUCP) OnHit(p core.PageID, at cache.Access) {
	u.mons[at.Core].access(p)
	u.q.touch(p, at)
}

func (u *refUCP) OnJoin(p core.PageID, at cache.Access) {
	u.mons[at.Core].access(p)
	u.q.touch(p, at)
}

func (u *refUCP) OnFault(p core.PageID, at cache.Access, v sim.View) core.PageID {
	u.mons[at.Core].access(p)
	return u.q.fault(at.Core, p, at, v)
}

// diffWorkload builds a deterministic p-core request set. With shared
// pages the cores draw from one universe (joins and cross-part hits);
// without, each core has its own page range. A phase switch halfway
// through moves every core's hot set, exercising repartitioning.
func diffWorkload(seed int64, p, pages, n int, shared bool) core.RequestSet {
	rng := rand.New(rand.NewSource(seed))
	rs := make(core.RequestSet, p)
	for j := 0; j < p; j++ {
		base := 0
		if !shared {
			base = j * pages
		}
		seq := make(core.Sequence, n)
		for i := range seq {
			off := 0
			if i >= n/2 {
				off = pages / 2 // phase switch
			}
			seq[i] = core.PageID(base + (off+rng.Intn(pages))%pages)
		}
		rs[j] = seq
	}
	return rs
}

// captureEvents runs a strategy and records its full event stream with
// the post-refactor Donor flag cleared (the field the references
// predate).
func captureEvents(t *testing.T, in core.Instance, s sim.Strategy) ([]sim.Event, sim.Result) {
	t.Helper()
	var evs []sim.Event
	res, err := sim.Run(in, s, func(e sim.Event) {
		e.Donor = false
		evs = append(evs, e)
	})
	if err != nil {
		t.Fatalf("%s: %v", s.Name(), err)
	}
	return evs, res
}

// TestDifferentialAgainstLegacy checks that each composed strategy is
// event-for-event identical to its pre-refactor hand-rolled equivalent.
func TestDifferentialAgainstLegacy(t *testing.T) {
	lruF := func() cache.Policy { return cache.NewLRU() }
	type pair struct {
		name      string
		composed  func() sim.Strategy
		reference func() sim.Strategy
	}
	k, p := 9, 3
	pairs := []pair{
		{"sP[even](LRU)",
			func() sim.Strategy { return NewStatic(EvenSizes(k, p), lruF) },
			func() sim.Strategy { return &refStatic{sizes: EvenSizes(k, p)} }},
		{"dP(LRU)",
			func() sim.Strategy { return NewDynamicLRU() },
			func() sim.Strategy { return &refDynamicLRU{} }},
		{"dP[fair](LRU)",
			func() sim.Strategy { return NewFairShare(32) },
			func() sim.Strategy { return &refFairShare{Window: 32} }},
		{"dP[ucp](LRU)",
			func() sim.Strategy { return NewUCP(32) },
			func() sim.Strategy { return &refUCP{Window: 32, Decay: 2} }},
	}
	workloads := []struct {
		name string
		rs   core.RequestSet
		tau  int
	}{
		{"disjoint", diffWorkload(1, p, 12, 600, false), 2},
		{"shared", diffWorkload(2, p, 14, 600, true), 1},
		{"tau3", diffWorkload(3, p, 10, 400, false), 3},
	}
	for _, pr := range pairs {
		for _, w := range workloads {
			t.Run(pr.name+"/"+w.name, func(t *testing.T) {
				in := core.Instance{R: w.rs, P: core.Params{K: k, Tau: w.tau}}
				got, gotRes := captureEvents(t, in, pr.composed())
				want, wantRes := captureEvents(t, in, pr.reference())
				if len(got) != len(want) {
					t.Fatalf("event count %d, want %d", len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("event %d: %+v, want %+v", i, got[i], want[i])
					}
				}
				if gotRes.TotalFaults() != wantRes.TotalFaults() ||
					gotRes.Makespan != wantRes.Makespan {
					t.Fatalf("result faults=%d makespan=%d, want faults=%d makespan=%d",
						gotRes.TotalFaults(), gotRes.Makespan,
						wantRes.TotalFaults(), wantRes.Makespan)
				}
			})
		}
	}
}
