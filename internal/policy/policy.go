// Package policy implements the cache-management strategies the paper
// classifies in Section 4: shared strategies S_A, static partitions
// sP^B_A, and dynamic partitions dP^D_A, together with scripted
// strategies used by offline constructions.
//
// A strategy pairs a partition discipline with an eviction policy from
// package cache. The simulator (package sim) owns ground truth; the
// strategies here own replacement metadata and part occupancy.
//
// All strategies assume K ≥ p (there is always at least one resident,
// evictable page when a victim is needed); the paper's own tall-cache
// assumption K ≥ p² is stronger.
package policy

import (
	"fmt"

	"mcpaging/internal/cache"
	"mcpaging/internal/core"
	"mcpaging/internal/sim"
)

// bindOracle attaches the simulator view (which implements cache.Oracle)
// to policies that want future knowledge, such as FITF.
func bindOracle(p cache.Policy, v sim.View) {
	if ou, ok := p.(cache.OracleUser); ok {
		ou.SetOracle(oracleView{v})
	}
}

// oracleView adapts sim.View to cache.Oracle.
type oracleView struct{ v sim.View }

func (o oracleView) NextUse(p core.PageID) int64 { return o.v.NextUse(p) }

// residentOnly returns the evictability predicate for a view: only pages
// whose fetch has completed may be evicted.
func residentOnly(v sim.View) func(core.PageID) bool {
	return func(p core.PageID) bool { return v.Resident(p) }
}

// viewFuncs caches the per-view adapters of a strategy — the
// evictability predicate and whether oracles have been bound — so the
// fault path does not allocate a closure (and box an oracle adapter) on
// every fault. The simulator passes the same View for the whole run, so
// the cache rebuilds exactly once per run.
//
// Strategies must call reset() in Init: a reused strategy may otherwise
// hold a predicate over the previous run's view.
type viewFuncs struct {
	v        sim.View
	resident func(core.PageID) bool
}

func (c *viewFuncs) reset() { c.v, c.resident = nil, nil }

// use updates the cache for view v and reports whether v is new (the
// first fault of a run), in which case the caller should rebind oracles.
func (c *viewFuncs) use(v sim.View) bool {
	if c.v == v {
		return false
	}
	c.v = v
	c.resident = residentOnly(v)
	return true
}

// evictFor asks the policy for a victim, preferring the incoming-aware
// path (ARC's ghost-directed REPLACE) when the policy offers one.
func evictFor(p cache.Policy, incoming core.PageID, evictable func(core.PageID) bool) (core.PageID, bool) {
	if ie, ok := p.(cache.IncomingEvictor); ok {
		return ie.EvictFor(incoming, evictable)
	}
	return p.Evict(evictable)
}

// Shared manages the whole cache as one replacement domain: the paper's
// S_A strategy for eviction policy A.
type Shared struct {
	pol  cache.Policy
	mk   cache.Factory
	vf   viewFuncs
	name string
}

// NewShared returns the shared strategy S_A for the policy built by mk.
func NewShared(mk cache.Factory) *Shared {
	p := mk()
	return &Shared{pol: p, mk: mk, name: "S(" + p.Name() + ")"}
}

// Name implements sim.Strategy.
func (s *Shared) Name() string { return s.name }

// Init implements sim.Strategy. A reused strategy resets its policy in
// place rather than rebuilding it, so replays keep the policy's warmed-up
// internal arrays (that is the Policy.Reset contract: indistinguishable
// from fresh).
func (s *Shared) Init(inst core.Instance) error {
	if s.pol == nil {
		s.pol = s.mk()
	} else {
		s.pol.Reset()
	}
	s.pol.Resize(inst.P.K)
	s.vf.reset()
	return nil
}

// OnHit implements sim.Strategy.
func (s *Shared) OnHit(p core.PageID, at cache.Access) { s.pol.Touch(p, at) }

// OnJoin implements sim.Strategy. A join is a use of the in-flight page,
// so it refreshes replacement metadata like a hit.
func (s *Shared) OnJoin(p core.PageID, at cache.Access) { s.pol.Touch(p, at) }

// RemoveMetadata drops a page from the shared replacement metadata. It is
// used by wrappers that voluntarily evict pages (forcing strategies): the
// ground-truth eviction is reported to the simulator via sim.Ticker and
// this call keeps the policy's view consistent.
func (s *Shared) RemoveMetadata(p core.PageID) { s.pol.Remove(p) }

// OnFault implements sim.Strategy.
func (s *Shared) OnFault(p core.PageID, at cache.Access, v sim.View) core.PageID {
	if s.vf.use(v) {
		bindOracle(s.pol, v)
	}
	var victim core.PageID = core.NoPage
	if v.Free() == 0 {
		w, ok := evictFor(s.pol, p, s.vf.resident)
		if !ok {
			// No resident page to evict; the simulator will report the
			// protocol violation. Cannot happen when K ≥ p.
			return core.NoPage
		}
		victim = w
	}
	s.pol.Insert(p, at)
	return victim
}

// OnCapacity implements sim.CapacityAware: the shared policy is told
// its new domain size; shedding happens via SurrenderOne.
func (s *Shared) OnCapacity(k int, _ int64) { s.pol.Resize(k) }

// SurrenderOne implements sim.CapacityAware: the policy gives up its
// victim, exactly the page Evict would have chosen. ok=false when
// every resident page is in flight; the engine retries at the next
// service step.
func (s *Shared) SurrenderOne(v sim.View) (core.PageID, bool) {
	if s.vf.use(v) {
		bindOracle(s.pol, v)
	}
	return s.pol.Surrender(s.vf.resident)
}

// staticController fixes the partition for the whole run: the paper's
// sP^B family. The faulting core always evicts from its own part and
// never grows past its configured size. Under an elastic capacity
// schedule the configured sizes act as weights: each announcement
// rescales the live quota proportionally (largest-remainder rounding),
// so the partition keeps its shape while tracking K(t).
type staticController struct {
	conf  []int // configured sizes; never mutated after construction
	sizes []int // live quota, aliased by Partitioned
	baseK int   // inst.P.K, captured at Init
	name  string
}

// StaticController returns the controller of the static partition sP^B.
// The sizes must sum to at most K (validated at Init) and every core
// with a non-empty sequence must receive at least one cell.
func StaticController(sizes []int) Controller {
	c := append([]int(nil), sizes...)
	return &staticController{conf: c, sizes: append([]int(nil), c...),
		name: fmt.Sprintf("sP%v", c)}
}

// NewStatic returns the static-partition strategy sP^B_A: part j of size
// B[j] is reserved for core j's pages and runs its own instance of the
// eviction policy built by mk.
func NewStatic(sizes []int, mk cache.Factory) *Partitioned {
	return NewPartitioned(StaticController(sizes), mk)
}

// Name implements Controller.
func (c *staticController) Name() string { return c.name }

// Quota implements Controller: the configured sizes, fixed for the run
// and available before Init.
func (c *staticController) Quota() []int { return c.sizes }

// Init implements Controller.
func (c *staticController) Init(inst core.Instance) error {
	p := inst.R.NumCores()
	if len(c.conf) != p {
		return fmt.Errorf("policy: partition has %d parts for %d cores", len(c.conf), p)
	}
	sum := 0
	for j, k := range c.conf {
		if k < 0 {
			return fmt.Errorf("policy: negative part size %d for core %d", k, j)
		}
		if k == 0 && len(inst.R[j]) > 0 {
			return fmt.Errorf("policy: core %d is active but has no cache", j)
		}
		sum += k
	}
	if sum > inst.P.K {
		return fmt.Errorf("policy: partition sizes sum to %d > K=%d", sum, inst.P.K)
	}
	c.baseK = inst.P.K
	copy(c.sizes, c.conf)
	return nil
}

// Hit implements Controller.
func (c *staticController) Hit(core.PageID, cache.Access) {}

// Join implements Controller.
func (c *staticController) Join(core.PageID, cache.Access) {}

// Inserted implements Controller.
func (c *staticController) Inserted(int, core.PageID, cache.Access) {}

// Evicted implements Controller.
func (c *staticController) Evicted(core.PageID) {}

// Donor implements Controller: the victim always comes from the faulting
// core's own part.
func (c *staticController) Donor(j int, _ PartView, _ func(core.PageID) bool) (int, bool) {
	return j, true
}

// StealOnEmpty implements Controller.
func (c *staticController) StealOnEmpty() bool { return false }

// Tick implements Controller.
func (c *staticController) Tick(int64) bool { return false }

// Ticks implements Controller.
func (c *staticController) Ticks() bool { return false }

// Capacity implements Controller: the configured sizes are rescaled
// proportionally to the partition's share of the new capacity.
func (c *staticController) Capacity(k int, _ int64) bool {
	sum := 0
	for _, w := range c.conf {
		sum += w
	}
	total := sum
	if c.baseK > 0 {
		total = sum * k / c.baseK
	}
	if total > k {
		total = k
	}
	reapportion(c.sizes, c.conf, total)
	return true
}

// seedQuota is the initial quota of the adaptive controllers (FairShare,
// UCP): an even split of the K cells, with inactive cores donating their
// share to the first active core.
func seedQuota(k int, active []bool) []int {
	quota := EvenSizes(k, len(active))
	first := -1
	for j, a := range active {
		if a {
			first = j
			break
		}
	}
	if first >= 0 {
		for j := range quota {
			if !active[j] && quota[j] > 0 {
				quota[first] += quota[j]
				quota[j] = 0
			}
		}
	}
	return quota
}

// EvenSizes splits K cells over p cores as evenly as possible (the first
// K mod p cores get one extra cell).
func EvenSizes(k, p int) []int {
	sizes := make([]int, p)
	base, extra := k/p, k%p
	for j := range sizes {
		sizes[j] = base
		if j < extra {
			sizes[j]++
		}
	}
	return sizes
}
