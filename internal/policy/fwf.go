package policy

import (
	"mcpaging/internal/cache"
	"mcpaging/internal/core"
	"mcpaging/internal/sim"
)

// FWF is Flush-When-Full, the textbook conservative algorithm: when a
// fault finds the cache full, the entire cache is emptied and a new
// phase begins. It is the crudest member of the marking family the
// paper's Lemma 1 covers, and a useful worst-reasonable baseline in the
// policy matrix.
//
// Adaptation to the simulator's contract: a fault needs exactly one
// cell, so the faulting request evicts one page immediately and the
// remaining pages of the old phase are flushed as voluntary evictions at
// the next step boundary (sim.Ticker) — in-flight pages are flushed as
// soon as their fetches complete. Requests that land between the fault
// and the boundary may still hit the doomed pages; the flush semantics
// are otherwise exactly flush-when-full.
type FWF struct {
	resident map[core.PageID]bool
	doomed   map[core.PageID]bool
}

// NewFWF returns the shared flush-when-full strategy.
func NewFWF() *FWF { return &FWF{} }

// Name implements sim.Strategy.
func (f *FWF) Name() string { return "S(FWF)" }

// Init implements sim.Strategy.
func (f *FWF) Init(core.Instance) error {
	f.resident = make(map[core.PageID]bool)
	f.doomed = make(map[core.PageID]bool)
	return nil
}

// OnTick implements sim.Ticker: flush the doomed pages that are
// evictable.
func (f *FWF) OnTick(_ int64, v sim.View) []core.PageID {
	if len(f.doomed) == 0 {
		return nil
	}
	var out []core.PageID
	for p := range f.doomed {
		if v.Resident(p) {
			out = append(out, p)
			delete(f.doomed, p)
			delete(f.resident, p)
		}
	}
	sortPageIDs(out) // deterministic order for observers
	return out
}

// OnHit implements sim.Strategy.
func (f *FWF) OnHit(core.PageID, cache.Access) {}

// OnJoin implements sim.Strategy.
func (f *FWF) OnJoin(core.PageID, cache.Access) {}

// OnFault implements sim.Strategy.
func (f *FWF) OnFault(p core.PageID, _ cache.Access, v sim.View) core.PageID {
	var victim core.PageID = core.NoPage
	if v.Free() == 0 {
		// Cache full: flush. One page goes now (the fault needs its
		// cell) — preferring an already-doomed page — and the rest are
		// doomed, leaving at the next boundary.
		var fallback core.PageID = core.NoPage
		for q := range f.resident {
			if q == p || !v.Resident(q) {
				continue
			}
			if f.doomed[q] {
				if victim == core.NoPage || q < victim {
					victim = q
				}
			} else if fallback == core.NoPage || q < fallback {
				fallback = q
			}
		}
		if victim == core.NoPage {
			victim = fallback
		}
		if victim == core.NoPage {
			return core.NoPage // nothing evictable; simulator reports it
		}
		delete(f.resident, victim)
		delete(f.doomed, victim)
		for q := range f.resident {
			if q != p {
				f.doomed[q] = true
			}
		}
	}
	f.resident[p] = true
	delete(f.doomed, p) // a re-fetched page belongs to the new phase
	return victim
}

// sortPageIDs sorts a small slice in place (insertion sort; flush sets
// are at most K pages).
func sortPageIDs(ps []core.PageID) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j] < ps[j-1]; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}
