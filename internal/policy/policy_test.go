package policy_test

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"mcpaging/internal/cache"
	"mcpaging/internal/core"
	"mcpaging/internal/policy"
	"mcpaging/internal/sim"
)

func lru() cache.Factory { return func() cache.Policy { return cache.NewLRU() } }
func fitf() cache.Factory {
	return func() cache.Policy { return cache.NewFITF() }
}

func inst(k, tau int, seqs ...core.Sequence) core.Instance {
	return core.Instance{R: core.RequestSet(seqs), P: core.Params{K: k, Tau: tau}}
}

// randomDisjoint builds a random disjoint request set: p cores, each with
// its own page range.
func randomDisjoint(rng *rand.Rand, p, maxLen, pagesPerCore int) core.RequestSet {
	rs := make(core.RequestSet, p)
	for j := range rs {
		n := 1 + rng.Intn(maxLen)
		s := make(core.Sequence, n)
		for i := range s {
			s[i] = core.PageID(j*1000 + rng.Intn(pagesPerCore))
		}
		rs[j] = s
	}
	return rs
}

func TestSharedLRUSequential(t *testing.T) {
	// p=1: the model degenerates to classical paging; LRU on the classic
	// cyclic worst case faults on every request.
	seq := core.Sequence{}
	for i := 0; i < 12; i++ {
		seq = append(seq, core.PageID(i%3))
	}
	res, err := sim.Run(inst(2, 0, seq), policy.NewShared(lru()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalFaults() != 12 {
		t.Fatalf("cyclic LRU faults = %d, want 12", res.TotalFaults())
	}
}

func TestSharedFITFSequential(t *testing.T) {
	// p=1, τ=0: FITF is Belady and thus optimal. On the cyclic worst
	// case with K=2, w=3, OPT faults on at most every other request
	// after warmup.
	seq := core.Sequence{}
	for i := 0; i < 12; i++ {
		seq = append(seq, core.PageID(i%3))
	}
	res, err := sim.Run(inst(2, 0, seq), policy.NewShared(fitf()), nil)
	if err != nil {
		t.Fatal(err)
	}
	lruRes, _ := sim.Run(inst(2, 0, seq), policy.NewShared(lru()), nil)
	if res.TotalFaults() >= lruRes.TotalFaults() {
		t.Fatalf("FITF (%d) should beat LRU (%d) on cyclic workload",
			res.TotalFaults(), lruRes.TotalFaults())
	}
	if res.TotalFaults() != 7 {
		t.Fatalf("FITF faults = %d, want 7 (3 cold + ceil(9/2))", res.TotalFaults())
	}
}

// TestLemma3Equivalence checks Lemma 3: the dynamic partition with
// global-LRU donor selection is exactly equivalent to shared LRU on
// disjoint request sets — same faults, hits, and timing, request by
// request.
func TestLemma3Equivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + rng.Intn(4)
		k := p + rng.Intn(8)
		tau := rng.Intn(4)
		rs := randomDisjoint(rng, p, 40, 6)
		in := core.Instance{R: rs, P: core.Params{K: k, Tau: tau}}

		var evS, evD []sim.Event
		rS, err := sim.Run(in, policy.NewShared(lru()), func(e sim.Event) { evS = append(evS, e) })
		if err != nil {
			return false
		}
		rD, err := sim.Run(in, policy.NewDynamicLRU(), func(e sim.Event) { evD = append(evD, e) })
		if err != nil {
			return false
		}
		if !reflect.DeepEqual(rS.Faults, rD.Faults) || rS.Makespan != rD.Makespan {
			return false
		}
		if len(evS) != len(evD) {
			return false
		}
		for i := range evS {
			// Identical service pattern: same page at same time with the
			// same hit/fault outcome. (Victims coincide too, since both
			// evict the globally least recent resident page.)
			if evS[i].Time != evD[i].Time || evS[i].Page != evD[i].Page ||
				evS[i].Fault != evD[i].Fault || evS[i].Victim != evD[i].Victim {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestStaticIsolation checks the independence property that makes static
// partitions analysable: core j's fault count under sP^B_A equals its
// fault count running alone with a cache of size B[j].
func TestStaticIsolation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 2 + rng.Intn(3)
		rs := randomDisjoint(rng, p, 50, 5)
		sizes := make([]int, p)
		k := 0
		for j := range sizes {
			sizes[j] = 1 + rng.Intn(4)
			k += sizes[j]
		}
		tau := rng.Intn(3)
		in := core.Instance{R: rs, P: core.Params{K: k, Tau: tau}}
		res, err := sim.Run(in, policy.NewStatic(sizes, lru()), nil)
		if err != nil {
			return false
		}
		for j := range rs {
			solo := core.Instance{
				R: core.RequestSet{rs[j]},
				P: core.Params{K: sizes[j], Tau: tau},
			}
			soloRes, err := sim.Run(solo, policy.NewShared(lru()), nil)
			if err != nil {
				return false
			}
			if res.Faults[j] != soloRes.Faults[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestStaticValidation(t *testing.T) {
	in := inst(4, 0, core.Sequence{1}, core.Sequence{2})
	cases := []struct {
		name  string
		sizes []int
	}{
		{"wrong length", []int{4}},
		{"over K", []int{3, 2}},
		{"zero for active", []int{4, 0}},
		{"negative", []int{5, -1}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := sim.Run(in, policy.NewStatic(c.sizes, lru()), nil); err == nil {
				t.Fatalf("sizes %v should be rejected", c.sizes)
			}
		})
	}
	// Inactive core may have size 0.
	in2 := inst(4, 0, core.Sequence{1}, core.Sequence{})
	if _, err := sim.Run(in2, policy.NewStatic([]int{4, 0}, lru()), nil); err != nil {
		t.Fatalf("inactive core with 0 cells should be fine: %v", err)
	}
}

func TestEvenSizes(t *testing.T) {
	cases := []struct {
		k, p int
		want []int
	}{
		{8, 4, []int{2, 2, 2, 2}},
		{7, 3, []int{3, 2, 2}},
		{3, 4, []int{1, 1, 1, 0}},
	}
	for _, c := range cases {
		if got := policy.EvenSizes(c.k, c.p); !reflect.DeepEqual(got, c.want) {
			t.Errorf("EvenSizes(%d,%d) = %v, want %v", c.k, c.p, got, c.want)
		}
	}
}

func TestDynamicLRUPartSizes(t *testing.T) {
	// The dynamic partition's part sizes track which cores hold cells.
	in := inst(2, 0,
		core.Sequence{1, 2},
		core.Sequence{9},
	)
	d := policy.NewDynamicLRU()
	if _, err := sim.Run(in, d, nil); err != nil {
		t.Fatal(err)
	}
	sizes := d.PartSizes()
	if sizes[0]+sizes[1] != 2 {
		t.Fatalf("part sizes %v should sum to cells in use (2)", sizes)
	}
}

func TestStagedBehavesStaticWithOneStage(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 2 + rng.Intn(2)
		rs := randomDisjoint(rng, p, 40, 5)
		sizes := make([]int, p)
		k := 0
		for j := range sizes {
			sizes[j] = 1 + rng.Intn(3)
			k += sizes[j]
		}
		in := core.Instance{R: rs, P: core.Params{K: k, Tau: rng.Intn(3)}}
		a, err := sim.Run(in, policy.NewStatic(sizes, lru()), nil)
		if err != nil {
			return false
		}
		b, err := sim.Run(in, policy.NewStaged([]policy.Stage{{At: 0, Sizes: sizes}}, lru()), nil)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(a.Faults, b.Faults) && a.Makespan == b.Makespan
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestStagedShrinkEvicts(t *testing.T) {
	// Core 0 starts with 3 cells and is squeezed to 1 at t=10; its
	// working set of 3 pages then thrashes.
	warm := core.Sequence{1, 2, 3}
	var loop core.Sequence
	for i := 0; i < 30; i++ {
		loop = append(loop, core.PageID(1+i%3))
	}
	seq0 := append(warm, loop...)
	seq1 := make(core.Sequence, 40)
	for i := range seq1 {
		seq1[i] = 100 + core.PageID(i%1) // single page
	}
	in := inst(4, 0, seq0, seq1)
	stages := []policy.Stage{
		{At: 0, Sizes: []int{3, 1}},
		{At: 10, Sizes: []int{1, 3}},
	}
	res, err := sim.Run(in, policy.NewStaged(stages, lru()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.VoluntaryEvictions != 2 {
		t.Fatalf("voluntary evictions = %d, want 2 (shrink 3→1)", res.VoluntaryEvictions)
	}
	// After the shrink core 0 faults on every request of its 3-page loop.
	if res.Faults[0] < 20 {
		t.Fatalf("core 0 faults = %d, want thrashing after shrink", res.Faults[0])
	}
}

func TestStagedValidation(t *testing.T) {
	in := inst(4, 0, core.Sequence{1}, core.Sequence{2})
	bad := [][]policy.Stage{
		{},                               // no stages
		{{At: 5, Sizes: []int{2, 2}}},    // first stage not at 0
		{{At: 0, Sizes: []int{2, 2, 2}}}, // wrong arity
		{{At: 0, Sizes: []int{3, 3}}},    // over K
	}
	for i, st := range bad {
		if _, err := sim.Run(in, policy.NewStaged(st, lru()), nil); err == nil {
			t.Errorf("case %d: stages %v should be rejected", i, st)
		}
	}
}

func TestFuncValidation(t *testing.T) {
	in := inst(1, 0, core.Sequence{1})
	if _, err := sim.Run(in, &policy.Func{}, nil); err == nil {
		t.Fatal("Func without Victim should be rejected")
	}
}

func TestSharedPoliciesAllRun(t *testing.T) {
	// Smoke test: every registered policy completes a mixed workload
	// under the shared strategy with exactly n = hits+faults.
	rng := rand.New(rand.NewSource(3))
	rs := randomDisjoint(rng, 3, 60, 8)
	in := core.Instance{R: rs, P: core.Params{K: 9, Tau: 2}}
	for _, name := range cache.PolicyNames() {
		mk, err := cache.NewFactory(name, 42)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(in, policy.NewShared(mk), nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.TotalFaults()+res.TotalHits() != int64(in.R.TotalLen()) {
			t.Fatalf("%s: faults+hits = %d, want %d", name,
				res.TotalFaults()+res.TotalHits(), in.R.TotalLen())
		}
	}
}

func TestStaticPoliciesAllRun(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rs := randomDisjoint(rng, 3, 60, 8)
	in := core.Instance{R: rs, P: core.Params{K: 9, Tau: 1}}
	for _, name := range cache.PolicyNames() {
		mk, _ := cache.NewFactory(name, 7)
		res, err := sim.Run(in, policy.NewStatic([]int{3, 3, 3}, mk), nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.TotalFaults()+res.TotalHits() != int64(in.R.TotalLen()) {
			t.Fatalf("%s: wrong event count", name)
		}
	}
}

// TestStaticIsolationAllPolicies generalises TestStaticIsolation: for
// EVERY eviction policy, core j's fault count under sP^B_A equals its
// fault count running alone with cache B[j] — partitioned parts are
// perfectly isolated replacement domains (capacity-aware policies like
// ARC and SLRU must see the part size, not K).
func TestStaticIsolationAllPolicies(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, name := range cache.PolicyNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			for trial := 0; trial < 6; trial++ {
				p := 2 + rng.Intn(2)
				rs := randomDisjoint(rng, p, 60, 6)
				sizes := make([]int, p)
				k := 0
				for j := range sizes {
					sizes[j] = 2 + rng.Intn(3)
					k += sizes[j]
				}
				tau := rng.Intn(3)
				mk, err := cache.NewFactory(name, 42)
				if err != nil {
					t.Fatal(err)
				}
				in := core.Instance{R: rs, P: core.Params{K: k, Tau: tau}}
				res, err := sim.Run(in, policy.NewStatic(sizes, mk), nil)
				if err != nil {
					t.Fatal(err)
				}
				for j := range rs {
					solo := core.Instance{
						R: core.RequestSet{rs[j]},
						P: core.Params{K: sizes[j], Tau: tau},
					}
					mkSolo, _ := cache.NewFactory(name, 42)
					soloRes, err := sim.Run(solo, policy.NewShared(mkSolo), nil)
					if err != nil {
						t.Fatal(err)
					}
					if res.Faults[j] != soloRes.Faults[0] {
						t.Fatalf("trial %d core %d: partitioned %d != solo %d",
							trial, j, res.Faults[j], soloRes.Faults[0])
					}
				}
			}
		})
	}
}
