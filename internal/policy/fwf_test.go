package policy_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mcpaging/internal/core"
	"mcpaging/internal/policy"
	"mcpaging/internal/sim"
)

func TestFWFAccounting(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + rng.Intn(3)
		k := p + rng.Intn(6)
		rs := randomDisjoint(rng, p, 60, 6)
		in := core.Instance{R: rs, P: core.Params{K: k, Tau: rng.Intn(3)}}
		res, err := sim.Run(in, policy.NewFWF(), nil)
		if err != nil {
			return false
		}
		return res.TotalFaults()+res.TotalHits() == int64(rs.TotalLen())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestFWFFlushesOnFull(t *testing.T) {
	// Single core, K=2, pages 1 2 3 1: the fault on 3 flushes the phase,
	// so the second request of 1 faults again (LRU would keep it? no —
	// LRU evicts 1 on the fault for 3 too; use 2 3 1 ordering to split
	// behaviours).
	in := core.Instance{
		R: core.RequestSet{{1, 2, 3, 2}},
		P: core.Params{K: 2, Tau: 0},
	}
	res, err := sim.Run(in, policy.NewFWF(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// 1,2 fill; 3 flushes {1,2} (evicts one immediately, dooms the
	// other); 2 was doomed or evicted → faults again. Total 4 faults.
	if res.TotalFaults() != 4 {
		t.Fatalf("faults = %d, want 4", res.TotalFaults())
	}
	lruRes, err := sim.Run(in, policy.NewShared(lru()), nil)
	if err != nil {
		t.Fatal(err)
	}
	// LRU keeps 2 across the fault on 3 (victim is 1): only 3 faults.
	if lruRes.TotalFaults() != 3 {
		t.Fatalf("LRU faults = %d, want 3", lruRes.TotalFaults())
	}
}

func TestFWFNeverBeatsItselfAcrossPhases(t *testing.T) {
	// Sanity across workload kinds: FWF is within the marking family, so
	// faults ≤ K · (phases of the interleaved string) — loosely checked
	// as faults ≤ K × (LRU faults), since LRU faults ≥ phases.
	rng := rand.New(rand.NewSource(9))
	rs := randomDisjoint(rng, 2, 200, 6)
	in := core.Instance{R: rs, P: core.Params{K: 6, Tau: 1}}
	fwf, err := sim.Run(in, policy.NewFWF(), nil)
	if err != nil {
		t.Fatal(err)
	}
	lruRes, err := sim.Run(in, policy.NewShared(lru()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if fwf.TotalFaults() > 6*lruRes.TotalFaults() {
		t.Fatalf("FWF %d exceeds K×LRU %d", fwf.TotalFaults(), 6*lruRes.TotalFaults())
	}
}
