package policy

import (
	"fmt"

	"mcpaging/internal/cache"
	"mcpaging/internal/core"
	"mcpaging/internal/sim"
)

// Partitioned is the generic partitioned strategy: a Controller owning
// per-core quotas and donor choice, composed with one eviction-policy
// instance per part. The static partitions sP^B_A, the staged schedules
// of Theorem 1(3), the Lemma-3 global-LRU donor rule and the FairShare
// and UCP heuristics are all Controllers, so each composes with every
// cache.Policy.
//
// Division of labour on a fault with no free (or no in-quota) cell: the
// controller picks the donor part, the donor part's policy picks the
// victim page. At step boundaries the controller may move quota between
// parts; parts above quota then surrender their policies' victims as
// voluntary (donor) evictions.
type Partitioned struct {
	ctrl Controller
	mk   cache.Factory
	name string

	parts  []cache.Policy
	partOf map[core.PageID]int
	occ    []int
	quota  []int // aliases ctrl.Quota(); nil = occupancy-driven
	vf     viewFuncs
	ticks  bool
}

// NewPartitioned composes a partition controller with an eviction-policy
// factory. The strategy name is ctrl.Name() + "(" + policy name + ")".
func NewPartitioned(ctrl Controller, mk cache.Factory) *Partitioned {
	p := mk()
	return &Partitioned{ctrl: ctrl, mk: mk,
		name: ctrl.Name() + "(" + p.Name() + ")", ticks: ctrl.Ticks()}
}

// Name implements sim.Strategy.
func (s *Partitioned) Name() string { return s.name }

// Repartitions marks Partitioned for the telemetry layer: its voluntary
// evictions are donor evictions — cells moving between parts — so the
// simulator flags them as partition changes (sim.Event.Donor).
func (s *Partitioned) Repartitions() {}

// Init implements sim.Strategy.
func (s *Partitioned) Init(inst core.Instance) error {
	if cs := inst.P.Capacity; cs != nil && !cs.Constant() {
		active := 0
		for _, seq := range inst.R {
			if len(seq) > 0 {
				active++
			}
		}
		if cs.Min() < active {
			return fmt.Errorf("policy: capacity schedule %s reaches %d cells, below %d active cores",
				cs, cs.Min(), active)
		}
	}
	if err := s.ctrl.Init(inst); err != nil {
		return err
	}
	s.quota = s.ctrl.Quota()
	p := inst.R.NumCores()
	if len(s.parts) != p {
		s.parts = make([]cache.Policy, p)
		for j := range s.parts {
			s.parts[j] = s.mk()
		}
	} else {
		for j := range s.parts {
			s.parts[j].Reset()
		}
	}
	for j := range s.parts {
		if s.quota != nil {
			s.parts[j].Resize(s.quota[j])
		} else {
			// Occupancy-driven: any part may grow to the whole cache.
			s.parts[j].Resize(inst.P.K)
		}
	}
	if s.partOf == nil {
		s.partOf = make(map[core.PageID]int)
	} else {
		clear(s.partOf)
	}
	if len(s.occ) != p {
		s.occ = make([]int, p)
	} else {
		clear(s.occ)
	}
	s.vf.reset()
	return nil
}

// Parts implements PartView.
func (s *Partitioned) Parts() int { return len(s.parts) }

// Occ implements PartView.
func (s *Partitioned) Occ(j int) int { return s.occ[j] }

// Owner implements PartView.
func (s *Partitioned) Owner(p core.PageID) (int, bool) {
	j, ok := s.partOf[p]
	return j, ok
}

// PartSizes returns the current partition (cells owned per core).
func (s *Partitioned) PartSizes() []int { return append([]int(nil), s.occ...) }

// Quota returns a copy of the controller's per-core cell targets; nil
// for occupancy-driven controllers.
func (s *Partitioned) Quota() []int {
	q := s.ctrl.Quota()
	if q == nil {
		return nil
	}
	return append([]int(nil), q...)
}

// Sizes returns a copy of the configured partition sizes (the quota
// vector). For a static partition it is available before Init.
func (s *Partitioned) Sizes() []int { return append([]int(nil), s.ctrl.Quota()...) }

// OnHit implements sim.Strategy. The hit may land in another core's part
// when sequences share pages; metadata is updated where the page lives.
//
//mcpaging:hotpath
func (s *Partitioned) OnHit(p core.PageID, at cache.Access) {
	if j, ok := s.partOf[p]; ok {
		s.parts[j].Touch(p, at)
	}
	s.ctrl.Hit(p, at)
}

// OnJoin implements sim.Strategy.
//
//mcpaging:hotpath
func (s *Partitioned) OnJoin(p core.PageID, at cache.Access) {
	if j, ok := s.partOf[p]; ok {
		s.parts[j].Touch(p, at)
	}
	s.ctrl.Join(p, at)
}

// OnFault implements sim.Strategy. The faulting core grows its part when
// the cache has a free cell and the controller's quota (if any) allows
// it; otherwise the controller picks the donor part and the donor's
// policy picks the victim.
//
//mcpaging:hotpath
func (s *Partitioned) OnFault(p core.PageID, at cache.Access, v sim.View) core.PageID {
	j := at.Core
	if s.vf.use(v) {
		for _, part := range s.parts {
			bindOracle(part, v)
		}
	}
	var victim core.PageID = core.NoPage
	if v.Free() > 0 && (s.quota == nil || s.occ[j] < s.quota[j]) {
		s.occ[j]++
	} else {
		d, ok := s.ctrl.Donor(j, s, s.vf.resident)
		if !ok {
			return core.NoPage // protocol error surfaces in the simulator
		}
		var w core.PageID
		if d == j {
			w, ok = evictFor(s.parts[j], p, s.vf.resident)
		} else {
			w, ok = s.parts[d].Evict(s.vf.resident)
		}
		if !ok {
			if d != j || !s.ctrl.StealOnEmpty() {
				return core.NoPage
			}
			// Own part empty or wholly in flight (possible right after a
			// quota cut): steal a cell from the most over-quota donor.
			d = -1
			for c := range s.occ {
				if c == j || s.occ[c] == 0 {
					continue
				}
				if d == -1 || s.occ[c]-s.quota[c] > s.occ[d]-s.quota[d] {
					d = c
				}
			}
			if d == -1 {
				return core.NoPage
			}
			w, ok = s.parts[d].Evict(s.vf.resident)
			if !ok {
				return core.NoPage
			}
		}
		victim = w
		delete(s.partOf, w)
		if d != j {
			s.occ[d]--
			s.occ[j]++
		}
		s.ctrl.Evicted(w)
	}
	s.parts[j].Insert(p, at)
	s.partOf[p] = j
	s.ctrl.Inserted(j, p, at)
	return victim
}

// OnTick implements sim.Ticker: the controller may repartition, and
// parts above quota surrender their policies' victims as donations. For
// tickless controllers (static, global-LRU) this is a no-op, so the
// composed strategy's event stream matches a tickless strategy's.
func (s *Partitioned) OnTick(t int64, v sim.View) []core.PageID {
	if !s.ticks || s.quota == nil {
		return nil
	}
	if s.ctrl.Tick(t) {
		s.quota = s.ctrl.Quota()
		for j := range s.parts {
			s.parts[j].Resize(s.quota[j])
		}
	}
	var out []core.PageID
	for j := range s.occ {
		over := s.occ[j] - s.quota[j]
		if over <= 0 {
			continue
		}
		if s.vf.use(v) {
			for _, part := range s.parts {
				bindOracle(part, v)
			}
		}
		for i := 0; i < over; i++ {
			w, ok := s.parts[j].Surrender(s.vf.resident)
			if !ok {
				break // in-flight pages; retried next tick
			}
			delete(s.partOf, w)
			s.occ[j]--
			s.ctrl.Evicted(w)
			out = append(out, w)
		}
	}
	return out
}

// OnCapacity implements sim.CapacityAware: the controller re-derives
// its quota for the new capacity and every part is re-announced its
// size. Like Resize, this never evicts — the engine drains any
// overage through SurrenderOne at the same service time.
func (s *Partitioned) OnCapacity(k int, t int64) {
	if s.ctrl.Capacity(k, t) {
		s.quota = s.ctrl.Quota()
	}
	for j := range s.parts {
		if s.quota != nil {
			s.parts[j].Resize(s.quota[j])
		} else {
			// Occupancy-driven: any part may grow to the whole cache.
			s.parts[j].Resize(k)
		}
	}
}

// SurrenderOne implements sim.CapacityAware: one page is shed under
// capacity pressure from the part most over its quota (most occupied,
// for occupancy-driven controllers), ties to the lower core index. A
// part whose pages are all in flight is skipped; ok=false when every
// part refuses, and the engine retries at the next service step.
func (s *Partitioned) SurrenderOne(v sim.View) (core.PageID, bool) {
	if s.vf.use(v) {
		for _, part := range s.parts {
			bindOracle(part, v)
		}
	}
	skip := make([]bool, len(s.parts))
	for {
		best, bestOver := -1, 0
		for j := range s.parts {
			if skip[j] || s.occ[j] == 0 {
				continue
			}
			over := s.occ[j]
			if s.quota != nil {
				over = s.occ[j] - s.quota[j]
			}
			if best == -1 || over > bestOver {
				best, bestOver = j, over
			}
		}
		if best == -1 {
			return core.NoPage, false
		}
		w, ok := s.parts[best].Surrender(s.vf.resident)
		if !ok {
			skip[best] = true
			continue
		}
		delete(s.partOf, w)
		s.occ[best]--
		s.ctrl.Evicted(w)
		return w, true
	}
}
