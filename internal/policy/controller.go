package policy

import (
	"mcpaging/internal/cache"
	"mcpaging/internal/core"
)

// PartView is the read-only view of a partitioned strategy's state that
// controllers may consult when choosing a donor part.
type PartView interface {
	// Parts returns the number of parts (one per core).
	Parts() int
	// Occ returns the number of cells part j currently owns.
	Occ(j int) int
	// Owner returns the part holding page p, if any.
	Owner(p core.PageID) (int, bool)
}

// Controller is the partition half of a composed strategy: it owns the
// per-core quota vector and decides which part donates a cell when the
// faulting core cannot grow. The eviction half is one cache.Policy
// instance per part; Partitioned wires the two together, so every
// partition discipline in this package composes with every eviction
// policy.
//
// Controllers observe the request stream through the Hit, Join,
// Inserted and Evicted hooks, which Partitioned calls after its own
// bookkeeping. They never touch pages or parts directly: cell movement
// is expressed entirely through Quota (capacity targets drained by the
// strategy at step boundaries) and Donor (which part loses a cell on a
// fault).
type Controller interface {
	// Name returns the partition-family label, e.g. "sP[2 2]" or
	// "dP[fair/64]". The composed strategy is named Name() + "(" +
	// policy + ")".
	Name() string
	// Init validates the controller against the instance and seeds the
	// quota vector. It is called once per run, before any hook.
	Init(inst core.Instance) error
	// Quota returns the live per-core cell targets, or nil for
	// occupancy-driven controllers without quotas (the global-LRU donor
	// rule of Lemma 3). Partitioned aliases the returned slice;
	// controllers repartition by mutating it in place during Tick.
	Quota() []int
	// Hit observes a hit by core at.Core on page p.
	Hit(p core.PageID, at cache.Access)
	// Join observes core at.Core joining the in-flight fetch of page p.
	Join(p core.PageID, at cache.Access)
	// Inserted observes page p entering part j on a fault.
	Inserted(j int, p core.PageID, at cache.Access)
	// Evicted observes page p leaving its part (fault-path eviction or
	// step-boundary shedding).
	Evicted(p core.PageID)
	// Donor picks the part that loses a cell when faulting core j cannot
	// grow. Returning j keeps the fault inside the core's own part
	// (static discipline); returning another part moves a cell to core
	// j. ok=false means no part can donate and the fault fails.
	Donor(j int, pv PartView, resident func(core.PageID) bool) (int, bool)
	// StealOnEmpty reports whether, when the donor part has no evictable
	// page, the strategy should fall back to stealing a cell from the
	// most over-quota part (the quota-partition rule of FairShare and
	// UCP, which can find their own part empty right after a quota cut).
	StealOnEmpty() bool
	// Tick advances the controller to time t and reports whether the
	// quota vector changed (the strategy then re-announces part sizes to
	// the policies via Resize). Only called when Ticks() is true.
	Tick(t int64) bool
	// Ticks reports whether the controller repartitions over time at
	// all. When false the strategy skips step-boundary work entirely and
	// its event stream is identical to a tickless strategy's.
	Ticks() bool
	// Capacity announces that the shared cache now holds k cells (an
	// elastic-capacity change of Params.Capacity taking effect at time
	// t) and reports whether the quota vector changed in response.
	// Controllers must re-derive quotas deterministically from k alone
	// plus their own state; occupancy-driven controllers return false.
	// The strategy sheds any resulting overage via surrenders — like
	// Resize, Capacity itself never evicts.
	Capacity(k int, t int64) bool
}

// reapportion writes into dst a split of total cells proportional to
// weights, using the largest-remainder method: each entry gets its
// floor share, and leftover cells go to the largest fractional
// remainders (ties to the lower index). Entries with positive weight
// are then guaranteed at least one cell while total allows, taking
// cells from the largest entries. The split is deterministic in
// (dst-independent) inputs, which elastic-capacity replay requires.
func reapportion(dst, weights []int, total int) {
	sum := 0
	for _, w := range weights {
		if w > 0 {
			sum += w
		}
	}
	if sum == 0 || total <= 0 {
		for j := range dst {
			dst[j] = 0
		}
		return
	}
	granted := 0
	rem := make([]int, len(dst))
	for j, w := range weights {
		if w <= 0 {
			dst[j], rem[j] = 0, -1
			continue
		}
		dst[j] = w * total / sum
		rem[j] = w * total % sum
		granted += dst[j]
	}
	for granted < total {
		best := -1
		for j, r := range rem {
			if r >= 0 && (best == -1 || r > rem[best]) {
				best = j
			}
		}
		if best == -1 {
			break
		}
		dst[best]++
		rem[best] = -1
		granted++
	}
	// Every positive weight keeps at least one cell while total allows.
	for j, w := range weights {
		if w <= 0 || dst[j] > 0 {
			continue
		}
		big := -1
		for c := range dst {
			if dst[c] > 1 && (big == -1 || dst[c] > dst[big]) {
				big = c
			}
		}
		if big == -1 {
			break
		}
		dst[big]--
		dst[j]++
	}
}
