package policy

import (
	"testing"

	"mcpaging/internal/cache"
	"mcpaging/internal/core"
)

// scriptController is a Controller whose single quota change is scripted:
// at the first tick it applies the change and reports a repartition.
type scriptController struct {
	quota  []int
	change func(q []int)
	done   bool
}

func (c *scriptController) Name() string                            { return "script" }
func (c *scriptController) Init(core.Instance) error                { return nil }
func (c *scriptController) Quota() []int                            { return c.quota }
func (c *scriptController) Hit(core.PageID, cache.Access)           {}
func (c *scriptController) Join(core.PageID, cache.Access)          {}
func (c *scriptController) Inserted(int, core.PageID, cache.Access) {}
func (c *scriptController) Evicted(core.PageID)                     {}
func (c *scriptController) Donor(j int, _ PartView, _ func(core.PageID) bool) (int, bool) {
	return j, true
}
func (c *scriptController) StealOnEmpty() bool { return false }
func (c *scriptController) Tick(int64) bool {
	if c.done || c.change == nil {
		return false
	}
	c.done = true
	c.change(c.quota)
	return true
}
func (c *scriptController) Ticks() bool              { return true }
func (c *scriptController) Capacity(int, int64) bool { return false }

// zeroOracle mirrors what a FITF part sees through fakeView (NextUse 0).
type zeroOracle struct{}

func (zeroOracle) NextUse(core.PageID) int64 { return 0 }

// TestShrinkSurrendersPolicyVictim is the partition-contract property
// test: for every eviction policy, shrinking a part by one cell at a
// step boundary surrenders exactly the page the policy itself would
// evict — and never a page owned by another part. A same-seed twin
// instance of the policy predicts the victim.
func TestShrinkSurrendersPolicyVictim(t *testing.T) {
	for _, name := range cache.PolicyNames() {
		t.Run(name, func(t *testing.T) {
			mk, err := cache.NewFactory(name, 42)
			if err != nil {
				t.Fatal(err)
			}
			ctrl := &scriptController{
				quota:  []int{3, 3},
				change: func(q []int) { q[0], q[1] = 2, 3 },
			}
			s := NewPartitioned(ctrl, mk)
			in := core.Instance{R: core.RequestSet{{1}, {1}}, P: core.Params{K: 6}}
			if err := s.Init(in); err != nil {
				t.Fatal(err)
			}
			v := &fakeView{resident: map[core.PageID]bool{}, free: 6, k: 6}

			// The twin mirrors part 0's policy operation for operation.
			twin := mk()
			twin.Resize(3)
			if ou, ok := twin.(cache.OracleUser); ok {
				ou.SetOracle(zeroOracle{})
			}
			for i, pg := range []core.PageID{1, 2, 3} {
				at := acc(0, int64(i))
				if got := s.OnFault(pg, at, v); got != core.NoPage {
					t.Fatalf("fill: unexpected victim %d", got)
				}
				v.resident[pg] = true
				v.free--
				twin.Insert(pg, at)
			}
			for i, pg := range []core.PageID{11, 12, 13} {
				at := acc(1, int64(3+i))
				if got := s.OnFault(pg, at, v); got != core.NoPage {
					t.Fatalf("fill: unexpected victim %d", got)
				}
				v.resident[pg] = true
				v.free--
			}

			// Predict part 0's victim after the quota cut, then tick.
			twin.Resize(2)
			want, ok := twin.Surrender(func(core.PageID) bool { return true })
			if !ok {
				t.Fatal("twin refused to surrender")
			}
			out := s.OnTick(64, v)
			if len(out) != 1 {
				t.Fatalf("shed %v, want exactly one page", out)
			}
			if out[0] != want {
				t.Fatalf("surrendered page %d, want the policy's victim %d", out[0], want)
			}
			for _, pg := range []core.PageID{11, 12, 13} {
				if out[0] == pg {
					t.Fatalf("victim %d belongs to another core's part", pg)
				}
			}
			if s.occ[0] != 2 || s.occ[1] != 3 {
				t.Fatalf("occupancies after shrink: %v", s.occ)
			}
			if _, owned := s.partOf[out[0]]; owned {
				t.Fatalf("surrendered page %d still owned", out[0])
			}
		})
	}
}
