package policy

import (
	"testing"

	"mcpaging/internal/cache"
	"mcpaging/internal/core"
	"mcpaging/internal/sim"
)

// fakeView is a minimal sim.View for unit-testing strategy internals.
type fakeView struct {
	resident map[core.PageID]bool
	free     int
	k        int
}

func (f *fakeView) Resident(p core.PageID) bool { return f.resident[p] }
func (f *fakeView) InFlight(core.PageID) bool   { return false }
func (f *fakeView) Cached(p core.PageID) bool   { return f.resident[p] }
func (f *fakeView) Free() int                   { return f.free }
func (f *fakeView) K() int                      { return f.k }
func (f *fakeView) Tau() int                    { return 0 }
func (f *fakeView) Now() int64                  { return 0 }
func (f *fakeView) NextUse(core.PageID) int64   { return 0 }

func acc(c int, t int64) cache.Access { return cache.Access{Core: c, Time: t} }

// testController is a scripted Controller for unit-testing Partitioned:
// a quota vector the test mutates in place, donor = faulting core's own
// part, with the over-quota steal fallback enabled.
type testController struct {
	quota []int
	steal bool
}

func (c *testController) Name() string                            { return "test" }
func (c *testController) Init(core.Instance) error                { return nil }
func (c *testController) Quota() []int                            { return c.quota }
func (c *testController) Hit(core.PageID, cache.Access)           {}
func (c *testController) Join(core.PageID, cache.Access)          {}
func (c *testController) Inserted(int, core.PageID, cache.Access) {}
func (c *testController) Evicted(core.PageID)                     {}
func (c *testController) Donor(j int, _ PartView, _ func(core.PageID) bool) (int, bool) {
	return j, true
}
func (c *testController) StealOnEmpty() bool       { return c.steal }
func (c *testController) Tick(int64) bool          { return false }
func (c *testController) Ticks() bool              { return false }
func (c *testController) Capacity(int, int64) bool { return false }

// TestPartitionedDonorSteal exercises the fallback where a core whose
// part is empty (after a quota cut) must steal a cell from the most
// over-quota donor.
func TestPartitionedDonorSteal(t *testing.T) {
	ctrl := &testController{quota: []int{2, 2}, steal: true}
	s := NewPartitioned(ctrl, func() cache.Policy { return cache.NewLRU() })
	in := core.Instance{R: core.RequestSet{{1}, {1}}, P: core.Params{K: 4}}
	if err := s.Init(in); err != nil {
		t.Fatal(err)
	}
	v := &fakeView{resident: map[core.PageID]bool{}, free: 4, k: 4}

	// Core 0 fills its quota (2 cells) and one more beyond, simulating a
	// later quota shift.
	for _, pg := range []core.PageID{1, 2} {
		if got := s.OnFault(pg, acc(0, 0), v); got != core.NoPage {
			t.Fatalf("expected free-cell placement, got victim %d", got)
		}
		v.resident[pg] = true
		v.free--
	}
	// Shift quota: core 0 now 3, core 1 gets 1.
	ctrl.quota[0], ctrl.quota[1] = 3, 1
	if got := s.OnFault(3, acc(0, 1), v); got != core.NoPage {
		t.Fatalf("expected free-cell placement, got victim %d", got)
	}
	v.resident[3] = true
	v.free--

	// Core 1 faults with an empty part and one free cell → free cell.
	if got := s.OnFault(100, acc(1, 2), v); got != core.NoPage {
		t.Fatalf("expected free-cell placement, got victim %d", got)
	}
	v.resident[100] = true
	v.free = 0

	// Quota swings to core 1; its part has 1 page but quota 3, core 0 is
	// now over quota. Core 1's next fault must steal from core 0.
	ctrl.quota[0], ctrl.quota[1] = 1, 3
	// Drain core 1's own part first so it is empty.
	if w, ok := s.parts[1].Evict(nil); !ok {
		t.Fatal("expected core 1's page evictable")
	} else {
		delete(s.partOf, w)
		delete(v.resident, w)
		s.occ[1]--
		v.free++
	}
	v.free = 0 // pretend the freed cell was consumed elsewhere
	victim := s.OnFault(101, acc(1, 3), v)
	if victim == core.NoPage {
		t.Fatal("expected a stolen victim from core 0's part")
	}
	if owner, ok := s.partOf[victim]; ok && owner == 0 {
		t.Fatal("victim should have been removed from ownership map")
	}
	if s.occ[0] != 2 || s.occ[1] != 1 {
		t.Fatalf("occupancies after steal: %v", s.occ)
	}
}

// TestPartitionedNoDonor: when no part has pages, OnFault reports NoPage
// so the simulator can surface the protocol error.
func TestPartitionedNoDonor(t *testing.T) {
	ctrl := &testController{quota: []int{1, 1}, steal: true}
	s := NewPartitioned(ctrl, func() cache.Policy { return cache.NewLRU() })
	in := core.Instance{R: core.RequestSet{{1}, {1}}, P: core.Params{K: 2}}
	if err := s.Init(in); err != nil {
		t.Fatal(err)
	}
	v := &fakeView{resident: map[core.PageID]bool{}, free: 0, k: 2}
	if got := s.OnFault(5, acc(0, 0), v); got != core.NoPage {
		t.Fatalf("expected NoPage with an empty cache and no free cells, got %d", got)
	}
}

// TestSeedQuota verifies inactive cores donate their quota share.
func TestSeedQuota(t *testing.T) {
	q := seedQuota(6, []bool{false, true, true})
	if q[0] != 0 {
		t.Fatalf("inactive core kept quota: %v", q)
	}
	sum := 0
	for _, c := range q {
		sum += c
	}
	if sum != 6 {
		t.Fatalf("quota sum %d, want 6 (%v)", sum, q)
	}
}

func TestStrategyNames(t *testing.T) {
	lruF := func() cache.Policy { return cache.NewLRU() }
	cases := []struct {
		got, want string
	}{
		{NewShared(lruF).Name(), "S(LRU)"},
		{NewDynamicLRU().Name(), "dP[lru-global](LRU)"},
		{NewFairShare(0).Name(), "dP[fair/64](LRU)"},
		{NewUCP(0).Name(), "dP[ucp/128](LRU)"},
		{(&Func{}).Name(), "scripted"},
		{(&Func{StrategyName: "x"}).Name(), "x"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("name %q, want %q", c.got, c.want)
		}
	}
	st := NewStatic([]int{2, 2}, lruF)
	if st.Name() == "" || len(st.Sizes()) != 2 {
		t.Error("static name/sizes broken")
	}
	stg := NewStaged([]Stage{{At: 0, Sizes: []int{2, 2}}}, lruF)
	if stg.Name() == "" {
		t.Error("staged name broken")
	}
}

func TestFuncHooks(t *testing.T) {
	var hits, joins int
	f := &Func{
		StrategyName: "probe",
		Victim: func(core.PageID, cache.Access, sim.View) core.PageID {
			return core.NoPage
		},
		Hit:  func(core.PageID, cache.Access) { hits++ },
		Join: func(core.PageID, cache.Access) { joins++ },
	}
	if err := f.Init(core.Instance{R: core.RequestSet{{1}}, P: core.Params{K: 1}}); err != nil {
		t.Fatal(err)
	}
	f.OnHit(1, acc(0, 0))
	f.OnJoin(1, acc(0, 1))
	if hits != 1 || joins != 1 {
		t.Fatalf("hooks not invoked: hits=%d joins=%d", hits, joins)
	}
}

// TestPartitionedOnJoin drives every partition family through a
// non-disjoint workload so the OnJoin paths execute.
func TestPartitionedOnJoin(t *testing.T) {
	// All cores request the same page simultaneously: core 0 fetches,
	// the others join.
	rs := core.RequestSet{{7, 7}, {7, 7}, {7, 7}}
	in := core.Instance{R: rs, P: core.Params{K: 6, Tau: 3}}
	lruF := func() cache.Policy { return cache.NewLRU() }
	strategies := []sim.Strategy{
		NewShared(lruF),
		NewStatic([]int{2, 2, 2}, lruF),
		NewStaged([]Stage{{At: 0, Sizes: []int{2, 2, 2}}}, lruF),
		NewDynamicLRU(),
		NewFairShare(4),
		NewUCP(4),
	}
	for _, s := range strategies {
		res, err := sim.Run(in, s, nil)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if res.TotalFaults()+res.TotalHits() != 6 {
			t.Fatalf("%s: accounting broken", s.Name())
		}
	}
}
