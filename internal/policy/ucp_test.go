package policy_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mcpaging/internal/core"
	"mcpaging/internal/policy"
	"mcpaging/internal/sim"
)

func TestUCPRuns(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 2 + rng.Intn(3)
		k := p + rng.Intn(8)
		rs := randomDisjoint(rng, p, 100, 6)
		in := core.Instance{R: rs, P: core.Params{K: k, Tau: rng.Intn(3)}}
		res, err := sim.Run(in, policy.NewUCP(32), nil)
		if err != nil {
			return false
		}
		return res.TotalFaults()+res.TotalHits() == int64(rs.TotalLen())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestUCPLearnsWorkingSets: with one core needing many cells and others
// needing few, UCP's quotas should converge toward the heavy core, and
// its fault count should beat the even static split.
func TestUCPLearnsWorkingSets(t *testing.T) {
	var rs core.RequestSet
	big := make(core.Sequence, 4000)
	for i := range big {
		big[i] = core.PageID(i % 10) // needs 10 cells
	}
	rs = append(rs, big)
	for j := 1; j < 4; j++ {
		small := make(core.Sequence, 4000)
		for i := range small {
			small[i] = core.PageID(1000*j + i%2) // needs 2 cells
		}
		rs = append(rs, small)
	}
	in := core.Instance{R: rs, P: core.Params{K: 16, Tau: 1}}
	ucp := policy.NewUCP(64)
	res, err := sim.Run(in, ucp, nil)
	if err != nil {
		t.Fatal(err)
	}
	even, err := sim.Run(in, policy.NewStatic(policy.EvenSizes(16, 4), lru()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalFaults() >= even.TotalFaults() {
		t.Fatalf("UCP (%d) should beat the even split (%d) on skewed demand",
			res.TotalFaults(), even.TotalFaults())
	}
	q := ucp.Quota()
	if q[0] < 8 {
		t.Fatalf("UCP quota for the heavy core = %d, want most of the cache (%v)", q[0], q)
	}
	sum := 0
	for _, c := range q {
		sum += c
	}
	if sum != 16 {
		t.Fatalf("quotas sum to %d, want K (%v)", sum, q)
	}
}

// TestUCPTracksPhaseChange: when the heavy and light roles swap halfway,
// the decaying monitors let the partition follow.
func TestUCPTracksPhaseChange(t *testing.T) {
	mk := func(heavyFirst bool) core.Sequence {
		s := make(core.Sequence, 6000)
		for i := range s {
			heavy := i < 3000 == heavyFirst
			if heavy {
				s[i] = core.PageID(i % 8)
			} else {
				s[i] = core.PageID(i % 2)
			}
		}
		return s
	}
	rs := core.RequestSet{mk(true), nil}
	second := mk(false)
	for i := range second {
		second[i] += 1000
	}
	rs[1] = second
	in := core.Instance{R: rs, P: core.Params{K: 10, Tau: 1}}
	ucp, err := sim.Run(in, policy.NewUCP(64), nil)
	if err != nil {
		t.Fatal(err)
	}
	static, err := sim.Run(in, policy.NewStatic([]int{5, 5}, lru()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if ucp.TotalFaults() >= static.TotalFaults() {
		t.Fatalf("UCP (%d) should beat the static split (%d) across the phase change",
			ucp.TotalFaults(), static.TotalFaults())
	}
}

func TestUCPRejectsTinyCache(t *testing.T) {
	in := core.Instance{R: core.RequestSet{{1}, {2}, {3}}, P: core.Params{K: 2, Tau: 0}}
	if _, err := sim.Run(in, policy.NewUCP(8), nil); err == nil {
		t.Fatal("K < p should be rejected")
	}
}
