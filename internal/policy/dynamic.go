package policy

import (
	"fmt"
	"sort"

	"mcpaging/internal/cache"
	"mcpaging/internal/core"
	"mcpaging/internal/sim"
)

// globalLRUController is the dynamic-partition rule D of Lemma 3: on a
// fault with no free cell, the donor part is the one holding the
// globally least recently used page. With LRU parts the evicted page is
// exactly that page, and Lemma 3 proves the composition equivalent to
// shared LRU on disjoint request sets — experiment E6 checks the
// equivalence request by request. There are no quotas: parts grow and
// shrink purely by occupancy.
//
// The controller keeps one global recency list; the restriction of
// global recency order to one part is that part's local LRU order, so
// with LRU parts the donor's local victim is the global LRU page.
type globalLRUController struct {
	global *cache.LRU
}

// GlobalLRUController returns the Lemma-3 donor rule dP[lru-global].
func GlobalLRUController() Controller { return &globalLRUController{} }

// NewDynamicLRU returns the Lemma 3 dynamic partition dP^D_LRU.
func NewDynamicLRU() *Partitioned {
	return NewPartitioned(GlobalLRUController(), func() cache.Policy { return cache.NewLRU() })
}

// Name implements Controller.
func (c *globalLRUController) Name() string { return "dP[lru-global]" }

// Quota implements Controller: nil — occupancy-driven.
func (c *globalLRUController) Quota() []int { return nil }

// Init implements Controller.
func (c *globalLRUController) Init(core.Instance) error {
	if c.global == nil {
		c.global = cache.NewLRU()
	} else {
		c.global.Reset()
	}
	return nil
}

// Hit implements Controller.
func (c *globalLRUController) Hit(p core.PageID, at cache.Access) { c.global.Touch(p, at) }

// Join implements Controller.
func (c *globalLRUController) Join(p core.PageID, at cache.Access) { c.global.Touch(p, at) }

// Inserted implements Controller.
func (c *globalLRUController) Inserted(_ int, p core.PageID, at cache.Access) {
	c.global.Insert(p, at)
}

// Evicted implements Controller.
func (c *globalLRUController) Evicted(p core.PageID) { c.global.Remove(p) }

// Donor implements Controller: the part holding the globally least
// recently used resident page.
func (c *globalLRUController) Donor(_ int, pv PartView, resident func(core.PageID) bool) (int, bool) {
	w, ok := c.global.LeastRecent(resident)
	if !ok {
		return 0, false
	}
	return pv.Owner(w)
}

// StealOnEmpty implements Controller.
func (c *globalLRUController) StealOnEmpty() bool { return false }

// Tick implements Controller.
func (c *globalLRUController) Tick(int64) bool { return false }

// Ticks implements Controller.
func (c *globalLRUController) Ticks() bool { return false }

// Capacity implements Controller: occupancy-driven, no quotas to
// re-derive — under pressure the strategy surrenders the globally
// least recent page via the parts' own LRU orders.
func (c *globalLRUController) Capacity(int, int64) bool { return false }

// Stage is one constant-partition period of a staged dynamic partition.
type Stage struct {
	// At is the simulation time from which Sizes applies.
	At int64
	// Sizes is the partition during the stage; like a static partition
	// it must sum to at most K.
	Sizes []int
}

// stagedController is a dynamic partition whose part sizes follow a
// fixed schedule of stages (Theorem 1(3) studies exactly this family:
// dynamic partitions whose size vector changes o(n) times). Within a
// stage it behaves like a static partition; at a stage boundary, parts
// over their new size surrender their local victims until they fit.
type stagedController struct {
	stages []Stage
	cur    int
	quota  []int
	baseK  int // inst.P.K, captured at Init
	capK   int // current elastic capacity; baseK when constant
}

// StagedController returns the controller of a staged dynamic partition.
// Stages must be ordered by increasing At and the first stage must start
// at time 0 (validated at Init).
func StagedController(stages []Stage) Controller {
	return &stagedController{stages: append([]Stage(nil), stages...)}
}

// NewStaged returns a staged dynamic partition over the eviction policy
// built by mk.
func NewStaged(stages []Stage, mk cache.Factory) *Partitioned {
	return NewPartitioned(StagedController(stages), mk)
}

// Name implements Controller.
func (c *stagedController) Name() string { return fmt.Sprintf("dP[%d stages]", len(c.stages)) }

// Quota implements Controller: the current stage's sizes.
func (c *stagedController) Quota() []int { return c.quota }

// Init implements Controller.
func (c *stagedController) Init(inst core.Instance) error {
	p := inst.R.NumCores()
	if len(c.stages) == 0 {
		return fmt.Errorf("policy: staged partition needs at least one stage")
	}
	if c.stages[0].At != 0 {
		return fmt.Errorf("policy: first stage starts at t=%d, want 0", c.stages[0].At)
	}
	if !sort.SliceIsSorted(c.stages, func(i, j int) bool { return c.stages[i].At < c.stages[j].At }) {
		return fmt.Errorf("policy: stages not sorted by start time")
	}
	for i, st := range c.stages {
		if len(st.Sizes) != p {
			return fmt.Errorf("policy: stage %d has %d parts for %d cores", i, len(st.Sizes), p)
		}
		sum := 0
		for _, k := range st.Sizes {
			sum += k
		}
		if sum > inst.P.K {
			return fmt.Errorf("policy: stage %d sizes sum to %d > K=%d", i, sum, inst.P.K)
		}
	}
	c.cur = 0
	c.baseK, c.capK = inst.P.K, inst.P.K
	c.quota = append(c.quota[:0], c.stages[0].Sizes...)
	return nil
}

// applyStage loads the current stage's sizes into the quota, rescaled
// to the live capacity when an elastic schedule has moved it off K.
func (c *stagedController) applyStage() {
	sizes := c.stages[c.cur].Sizes
	c.quota = append(c.quota[:0], sizes...)
	if c.capK == c.baseK {
		return
	}
	sum := 0
	for _, w := range sizes {
		sum += w
	}
	total := sum * c.capK / c.baseK
	if total > c.capK {
		total = c.capK
	}
	reapportion(c.quota, sizes, total)
}

// Hit implements Controller.
func (c *stagedController) Hit(core.PageID, cache.Access) {}

// Join implements Controller.
func (c *stagedController) Join(core.PageID, cache.Access) {}

// Inserted implements Controller.
func (c *stagedController) Inserted(int, core.PageID, cache.Access) {}

// Evicted implements Controller.
func (c *stagedController) Evicted(core.PageID) {}

// Donor implements Controller: like a static partition, the faulting
// core's own part.
func (c *stagedController) Donor(j int, _ PartView, _ func(core.PageID) bool) (int, bool) {
	return j, true
}

// StealOnEmpty implements Controller.
func (c *stagedController) StealOnEmpty() bool { return false }

// Tick implements Controller: stage transitions.
func (c *stagedController) Tick(t int64) bool {
	changed := false
	for c.cur+1 < len(c.stages) && c.stages[c.cur+1].At <= t {
		c.cur++
		c.applyStage()
		changed = true
	}
	return changed
}

// Ticks implements Controller.
func (c *stagedController) Ticks() bool { return true }

// Capacity implements Controller: the current stage's sizes are
// rescaled to the new capacity; later stage boundaries rescale their
// own sizes the same way.
func (c *stagedController) Capacity(k int, _ int64) bool {
	c.capK = k
	c.applyStage()
	return true
}

// Func is a scripted strategy: victim selection is delegated to a closure.
// It is the vehicle for hand-constructed offline strategies (the SOFF
// adversary of Lemma 4, the constructive schedule of Theorem 2) and for
// exhaustive-search drivers.
type Func struct {
	// StrategyName labels the strategy in results.
	StrategyName string
	// Setup, if non-nil, is called by Init with the instance.
	Setup func(inst core.Instance) error
	// Victim chooses the eviction victim on a fault needing a cell; it
	// must return core.NoPage to use a free cell. Required.
	Victim func(p core.PageID, at cache.Access, v sim.View) core.PageID
	// Hit and Join, if non-nil, observe hits and in-flight joins.
	Hit  func(p core.PageID, at cache.Access)
	Join func(p core.PageID, at cache.Access)
}

// Name implements sim.Strategy.
func (f *Func) Name() string {
	if f.StrategyName != "" {
		return f.StrategyName
	}
	return "scripted"
}

// Init implements sim.Strategy.
func (f *Func) Init(inst core.Instance) error {
	if f.Victim == nil {
		return fmt.Errorf("policy: Func strategy without Victim")
	}
	if f.Setup != nil {
		return f.Setup(inst)
	}
	return nil
}

// OnHit implements sim.Strategy.
func (f *Func) OnHit(p core.PageID, at cache.Access) {
	if f.Hit != nil {
		f.Hit(p, at)
	}
}

// OnJoin implements sim.Strategy.
func (f *Func) OnJoin(p core.PageID, at cache.Access) {
	if f.Join != nil {
		f.Join(p, at)
	}
}

// OnFault implements sim.Strategy.
func (f *Func) OnFault(p core.PageID, at cache.Access, v sim.View) core.PageID {
	return f.Victim(p, at, v)
}
