package policy

import (
	"fmt"
	"sort"

	"mcpaging/internal/cache"
	"mcpaging/internal/core"
	"mcpaging/internal/sim"
)

// DynamicLRU is the dynamic-partition strategy D of Lemma 3: each core
// owns a part running LRU; on a fault with no free cell, the donor part
// is the one holding the globally least recently used page, that page is
// evicted, and the cell moves to the faulting core's part. Lemma 3 proves
// this is exactly equivalent to shared LRU on disjoint request sets —
// experiment E6 checks the equivalence request by request.
//
// The implementation keeps one global recency list (sufficient, since the
// restriction of global recency order to one part is that part's local
// LRU order) plus explicit part-ownership and occupancy so tests can
// observe the evolving partition.
type DynamicLRU struct {
	global *cache.LRU
	partOf map[core.PageID]int
	occ    []int
	vf     viewFuncs
}

// NewDynamicLRU returns the Lemma 3 dynamic partition dP^D_LRU.
func NewDynamicLRU() *DynamicLRU { return &DynamicLRU{} }

// Name implements sim.Strategy.
func (d *DynamicLRU) Name() string { return "dP[lru-global](LRU)" }

// Init implements sim.Strategy.
func (d *DynamicLRU) Init(inst core.Instance) error {
	if d.global == nil {
		d.global = cache.NewLRU()
	} else {
		d.global.Reset()
	}
	if d.partOf == nil {
		d.partOf = make(map[core.PageID]int)
	} else {
		clear(d.partOf)
	}
	p := inst.R.NumCores()
	if len(d.occ) != p {
		d.occ = make([]int, p)
	} else {
		clear(d.occ)
	}
	d.vf.reset()
	return nil
}

// PartSizes returns the current partition (cells owned per core).
func (d *DynamicLRU) PartSizes() []int { return append([]int(nil), d.occ...) }

// OnHit implements sim.Strategy.
func (d *DynamicLRU) OnHit(p core.PageID, at cache.Access) { d.global.Touch(p, at) }

// OnJoin implements sim.Strategy.
func (d *DynamicLRU) OnJoin(p core.PageID, at cache.Access) { d.global.Touch(p, at) }

// OnFault implements sim.Strategy.
func (d *DynamicLRU) OnFault(p core.PageID, at cache.Access, v sim.View) core.PageID {
	j := at.Core
	d.vf.use(v)
	var victim core.PageID = core.NoPage
	if v.Free() == 0 {
		w, ok := d.global.Evict(d.vf.resident)
		if !ok {
			return core.NoPage
		}
		victim = w
		donor := d.partOf[w]
		d.occ[donor]--
		delete(d.partOf, w)
	}
	d.global.Insert(p, at)
	d.partOf[p] = j
	d.occ[j]++
	return victim
}

// Stage is one constant-partition period of a staged dynamic partition.
type Stage struct {
	// At is the simulation time from which Sizes applies.
	At int64
	// Sizes is the partition during the stage; like a static partition
	// it must sum to at most K.
	Sizes []int
}

// Staged is a dynamic partition dP^D_A whose part sizes follow a fixed
// schedule of stages (Theorem 1(3) studies exactly this family: dynamic
// partitions whose size vector changes o(n) times). Within a stage it
// behaves like a static partition; at a stage boundary, parts over their
// new size evict their local victims until they fit.
type Staged struct {
	stages []Stage
	mk     cache.Factory
	name   string

	cur    int
	parts  []cache.Policy
	partOf map[core.PageID]int
	occ    []int
	sizes  []int
	vf     viewFuncs
	// debt[j] > 0 means part j still holds more cells than its size and
	// sheds pages as they become evictable.
	debt []int
}

// NewStaged returns a staged dynamic partition. Stages must be ordered by
// increasing At and the first stage must start at time 0.
func NewStaged(stages []Stage, mk cache.Factory) *Staged {
	p := mk()
	return &Staged{stages: append([]Stage(nil), stages...), mk: mk,
		name: fmt.Sprintf("dP[%d stages](%s)", len(stages), p.Name())}
}

// Name implements sim.Strategy.
func (s *Staged) Name() string { return s.name }

// Init implements sim.Strategy.
func (s *Staged) Init(inst core.Instance) error {
	p := inst.R.NumCores()
	if len(s.stages) == 0 {
		return fmt.Errorf("policy: staged partition needs at least one stage")
	}
	if s.stages[0].At != 0 {
		return fmt.Errorf("policy: first stage starts at t=%d, want 0", s.stages[0].At)
	}
	if !sort.SliceIsSorted(s.stages, func(i, j int) bool { return s.stages[i].At < s.stages[j].At }) {
		return fmt.Errorf("policy: stages not sorted by start time")
	}
	for i, st := range s.stages {
		if len(st.Sizes) != p {
			return fmt.Errorf("policy: stage %d has %d parts for %d cores", i, len(st.Sizes), p)
		}
		sum := 0
		for _, k := range st.Sizes {
			sum += k
		}
		if sum > inst.P.K {
			return fmt.Errorf("policy: stage %d sizes sum to %d > K=%d", i, sum, inst.P.K)
		}
	}
	s.cur = 0
	s.sizes = append(s.sizes[:0], s.stages[0].Sizes...)
	if len(s.parts) != p {
		s.parts = make([]cache.Policy, p)
		for j := range s.parts {
			s.parts[j] = s.mk()
		}
	} else {
		for j := range s.parts {
			s.parts[j].Reset()
		}
	}
	for j := range s.parts {
		setCapacity(s.parts[j], s.sizes[j])
	}
	if s.partOf == nil {
		s.partOf = make(map[core.PageID]int)
	} else {
		clear(s.partOf)
	}
	if len(s.occ) != p {
		s.occ = make([]int, p)
		s.debt = make([]int, p)
	} else {
		clear(s.occ)
		clear(s.debt)
	}
	s.vf.reset()
	return nil
}

// OnTick implements sim.Ticker: it applies stage transitions and sheds
// outstanding shrink debt.
func (s *Staged) OnTick(t int64, v sim.View) []core.PageID {
	for s.cur+1 < len(s.stages) && s.stages[s.cur+1].At <= t {
		s.cur++
		s.sizes = append(s.sizes[:0], s.stages[s.cur].Sizes...)
	}
	var out []core.PageID
	for j := range s.occ {
		over := s.occ[j] - s.sizes[j]
		if over <= 0 {
			continue
		}
		if s.vf.use(v) {
			for _, part := range s.parts {
				bindOracle(part, v)
			}
		}
		for i := 0; i < over; i++ {
			w, ok := s.parts[j].Evict(s.vf.resident)
			if !ok {
				break // in-flight pages; retried next tick
			}
			delete(s.partOf, w)
			s.occ[j]--
			out = append(out, w)
		}
	}
	return out
}

// OnHit implements sim.Strategy.
func (s *Staged) OnHit(p core.PageID, at cache.Access) {
	if j, ok := s.partOf[p]; ok {
		s.parts[j].Touch(p, at)
	}
}

// OnJoin implements sim.Strategy.
func (s *Staged) OnJoin(p core.PageID, at cache.Access) {
	if j, ok := s.partOf[p]; ok {
		s.parts[j].Touch(p, at)
	}
}

// OnFault implements sim.Strategy.
func (s *Staged) OnFault(p core.PageID, at cache.Access, v sim.View) core.PageID {
	j := at.Core
	if s.vf.use(v) {
		for _, part := range s.parts {
			bindOracle(part, v)
		}
	}
	var victim core.PageID = core.NoPage
	if s.occ[j] < s.sizes[j] && v.Free() > 0 {
		s.occ[j]++
	} else {
		w, ok := evictFor(s.parts[j], p, s.vf.resident)
		if !ok {
			return core.NoPage
		}
		victim = w
		delete(s.partOf, w)
	}
	s.parts[j].Insert(p, at)
	s.partOf[p] = j
	return victim
}

// Func is a scripted strategy: victim selection is delegated to a closure.
// It is the vehicle for hand-constructed offline strategies (the SOFF
// adversary of Lemma 4, the constructive schedule of Theorem 2) and for
// exhaustive-search drivers.
type Func struct {
	// StrategyName labels the strategy in results.
	StrategyName string
	// Setup, if non-nil, is called by Init with the instance.
	Setup func(inst core.Instance) error
	// Victim chooses the eviction victim on a fault needing a cell; it
	// must return core.NoPage to use a free cell. Required.
	Victim func(p core.PageID, at cache.Access, v sim.View) core.PageID
	// Hit and Join, if non-nil, observe hits and in-flight joins.
	Hit  func(p core.PageID, at cache.Access)
	Join func(p core.PageID, at cache.Access)
}

// Name implements sim.Strategy.
func (f *Func) Name() string {
	if f.StrategyName != "" {
		return f.StrategyName
	}
	return "scripted"
}

// Init implements sim.Strategy.
func (f *Func) Init(inst core.Instance) error {
	if f.Victim == nil {
		return fmt.Errorf("policy: Func strategy without Victim")
	}
	if f.Setup != nil {
		return f.Setup(inst)
	}
	return nil
}

// OnHit implements sim.Strategy.
func (f *Func) OnHit(p core.PageID, at cache.Access) {
	if f.Hit != nil {
		f.Hit(p, at)
	}
}

// OnJoin implements sim.Strategy.
func (f *Func) OnJoin(p core.PageID, at cache.Access) {
	if f.Join != nil {
		f.Join(p, at)
	}
}

// OnFault implements sim.Strategy.
func (f *Func) OnFault(p core.PageID, at cache.Access, v sim.View) core.PageID {
	return f.Victim(p, at, v)
}
