// Package capacity defines deterministic time-varying cache-capacity
// schedules — the K(t) of Peserico's "Paging with dynamic memory
// capacity" generalization — behind a spec mini-language that mirrors
// strategyspec and workload.ParseFamily:
//
//	fixed                                  constant K (the classic model)
//	step(to=8,at=1024)                     one change at time `at`
//	step(to=50%,at=1024)                   percentages resolve against base K
//	ramp(to=8,end=4096)                    linear drift, quantized plateaus
//	periodic(lo=8,period=2048,duty=0.5)    square wave: K .. lo .. K ..
//	trace(path=sched.txt)                  breakpoints from a file ("t k" lines)
//
// A Schedule is bound to a base capacity at parse time (the run's
// Params.K) and always starts there: At(0) == Base(). Capacity values
// are either absolute page counts or percentages of the base, so one
// spec string composes with every K of a sweep grid. All queries are
// pure integer arithmetic on pre-computed breakpoints. For the portable
// families the same (spec, base) pair yields the identical K(t)
// everywhere; trace additionally depends on the contents of a file
// local to the parsing process, which is why network-facing services
// parse with ParsePortableSchedule (rejecting trace) and why mcservd
// hashes the resolved schedule (Canonical), never the spec string, into
// its content-addressed job key.
package capacity

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
)

// NoChange is the NextChange result meaning "capacity never changes
// again" — larger than any reachable simulation time.
const NoChange int64 = math.MaxInt64

// maxPlateaus bounds the breakpoint list a single spec may expand to
// (ramp quantization, trace files), keeping parse cost and memory
// bounded under fuzzing.
const maxPlateaus = 4096

// maxK bounds capacity values so interpolation arithmetic stays well
// inside int64.
const maxK = 1 << 31

// breakpoint is one (time, capacity) change point. The schedule's value
// is k from t (inclusive) until the next breakpoint.
type breakpoint struct {
	t int64
	k int
}

// Schedule is a bound capacity schedule K(t). The zero value is not
// usable; build one with ParseSchedule. A nil *Schedule is treated by
// the simulator as the classic fixed-K model.
type Schedule struct {
	spec string
	base int
	min  int

	// bps is the breakpoint list for the aperiodic families, sorted by
	// strictly increasing time, first entry {0, base}, consecutive
	// entries with distinct k.
	bps []breakpoint

	// periodic square wave: K(t) = hi while ((t+phase) mod period) <
	// onLen, else lo. period == 0 means "not periodic".
	period int64
	onLen  int64
	phase  int64
	hi, lo int
}

// Base returns the capacity the schedule was bound to; At(0) == Base().
func (s *Schedule) Base() int { return s.base }

// Min returns the minimum capacity the schedule ever reaches.
func (s *Schedule) Min() int { return s.min }

// String returns the spec the schedule was parsed from.
func (s *Schedule) String() string { return s.spec }

// Canonical returns a canonical binary encoding of the resolved
// schedule — the breakpoint list or periodic-wave parameters that
// define K(t), not the spec string. Two specs resolving to the same
// K(t) encode identically, and a trace schedule's encoding follows the
// file contents it was resolved from, so a content-addressed cache key
// built over Canonical (mcservd's JobKey) always corresponds to the
// K(t) actually simulated even when spec and file diverge.
func (s *Schedule) Canonical() []byte {
	var buf [binary.MaxVarintLen64]byte
	out := make([]byte, 0, 8+16*len(s.bps))
	vi := func(v int64) { out = append(out, buf[:binary.PutVarint(buf[:], v)]...) }
	vi(int64(s.base))
	if s.period > 0 {
		out = append(out, 'p')
		vi(s.period)
		vi(s.onLen)
		vi(s.phase)
		vi(int64(s.hi))
		vi(int64(s.lo))
		return out
	}
	out = append(out, 'b')
	vi(int64(len(s.bps)))
	for _, bp := range s.bps {
		vi(bp.t)
		vi(int64(bp.k))
	}
	return out
}

// Constant reports whether the schedule never changes capacity — a
// constant schedule is byte-identical, in events and results, to the
// fixed-K model.
func (s *Schedule) Constant() bool {
	if s.period > 0 {
		return s.hi == s.lo
	}
	return len(s.bps) == 1
}

// At returns K(t), the capacity in force at time t. t must be >= 0.
func (s *Schedule) At(t int64) int {
	if s.period > 0 {
		if (t+s.phase)%s.period < s.onLen {
			return s.hi
		}
		return s.lo
	}
	// Binary search the latest breakpoint at or before t. The list is
	// short (≤ maxPlateaus) and the first entry is at t=0.
	lo, hi := 0, len(s.bps)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if s.bps[mid].t <= t {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return s.bps[lo].k
}

// NextChange returns the smallest t' > t at which the capacity differs
// from At(t), or NoChange if capacity never changes again. The engine
// uses it to skip schedule checks entirely between breakpoints.
func (s *Schedule) NextChange(t int64) int64 {
	if s.period > 0 {
		if s.hi == s.lo {
			return NoChange
		}
		r := (t + s.phase) % s.period
		if r < s.onLen {
			return t + (s.onLen - r)
		}
		return t + (s.period - r)
	}
	for i := range s.bps {
		if s.bps[i].t > t {
			return s.bps[i].t
		}
	}
	return NoChange
}

// scheduleDef is one grammar-registry row.
type scheduleDef struct {
	name string
	desc string
	keys []string
	// local marks families whose K(t) depends on resources local to the
	// parsing process (files). ParsePortableSchedule rejects them, so a
	// spec arriving over the network can never name a host path.
	local bool
	build func(p schedParams, base int) (*Schedule, error)
}

// schedParams holds the parsed key=value pairs of a spec.
type schedParams map[string]string

func (p schedParams) intOr(key string, def int64) (int64, error) {
	raw, ok := p[key]
	if !ok {
		return def, nil
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("parameter %s=%q is not an integer", key, raw)
	}
	return v, nil
}

func (p schedParams) floatOr(key string, def float64) (float64, error) {
	raw, ok := p[key]
	if !ok {
		return def, nil
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, fmt.Errorf("parameter %s=%q is not a number", key, raw)
	}
	return v, nil
}

// capOr parses a capacity value: an absolute page count ("12") or a
// percentage of the base capacity ("75%", integer percent, rounded to
// nearest page). def < 0 means the key is required.
func (p schedParams) capOr(key string, base int, def int) (int, error) {
	raw, ok := p[key]
	if !ok {
		if def < 0 {
			return 0, fmt.Errorf("parameter %s is required", key)
		}
		return def, nil
	}
	if pctStr, isPct := strings.CutSuffix(raw, "%"); isPct {
		pct, err := strconv.ParseInt(pctStr, 10, 64)
		if err != nil || pct < 0 || pct > 100000 {
			return 0, fmt.Errorf("parameter %s=%q is not a percentage", key, raw)
		}
		v := (int64(base)*pct + 50) / 100
		if v > maxK {
			return 0, fmt.Errorf("parameter %s=%q exceeds the %d-page bound", key, raw, maxK)
		}
		return int(v), nil
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("parameter %s=%q is not a capacity (want pages or N%%)", key, raw)
	}
	if v > maxK {
		return 0, fmt.Errorf("parameter %s=%d exceeds the %d-page bound", key, v, maxK)
	}
	return int(v), nil
}

// schedules is the grammar registry, in listing order.
var schedules = []scheduleDef{
	{
		name: "fixed", desc: "constant capacity (the classic fixed-K model)",
		keys: []string{"k"},
		build: func(p schedParams, base int) (*Schedule, error) {
			k, err := p.capOr("k", base, base)
			if err != nil {
				return nil, err
			}
			if k != base {
				return nil, fmt.Errorf("fixed k=%d disagrees with base K=%d (schedules start at the run's K)", k, base)
			}
			return fromBreakpoints(base, []breakpoint{{0, base}})
		},
	},
	{
		name: "step", desc: "one change: base K until `at`, then `to`",
		keys: []string{"to", "at"},
		build: func(p schedParams, base int) (*Schedule, error) {
			to, err := p.capOr("to", base, -1)
			if err != nil {
				return nil, err
			}
			if _, ok := p["at"]; !ok {
				return nil, fmt.Errorf("parameter at is required")
			}
			at, err := p.intOr("at", -1)
			if err != nil {
				return nil, err
			}
			if at < 1 {
				return nil, fmt.Errorf("step needs at>=1, got %d (K(0) is always the base)", at)
			}
			bps := []breakpoint{{0, base}}
			if to != base {
				bps = append(bps, breakpoint{at, to})
			}
			return fromBreakpoints(base, bps)
		},
	},
	{
		name: "ramp", desc: "linear drift from base K to `to` over [start,end], quantized every `every` steps",
		keys: []string{"to", "start", "end", "every"},
		build: func(p schedParams, base int) (*Schedule, error) {
			to, err := p.capOr("to", base, -1)
			if err != nil {
				return nil, err
			}
			start, err := p.intOr("start", 0)
			if err != nil {
				return nil, err
			}
			end, err := p.intOr("end", -1)
			if err != nil {
				return nil, err
			}
			if start < 0 || end <= start || end > 1<<62 {
				return nil, fmt.Errorf("ramp needs 0 <= start < end <= 2^62, got start=%d end=%d", start, end)
			}
			span := end - start
			every, err := p.intOr("every", span/8)
			if err != nil {
				return nil, err
			}
			if every < 1 {
				every = 1
			}
			m := span / every // number of interior plateau boundaries
			if span%every != 0 {
				m++
			}
			if m > maxPlateaus {
				return nil, fmt.Errorf("ramp expands to %d plateaus (max %d); use a larger every", m, maxPlateaus)
			}
			bps := []breakpoint{{0, base}}
			diff := float64(to - base)
			for i := int64(1); i <= m; i++ {
				t := start + i*every
				k := to
				if t < end {
					// Round-to-nearest interpolation at the plateau start.
					k = base + int(math.Round(diff*float64(t-start)/float64(span)))
				} else {
					t = end
				}
				if k != bps[len(bps)-1].k {
					bps = append(bps, breakpoint{t, k})
				}
			}
			return fromBreakpoints(base, bps)
		},
	},
	{
		name: "periodic", desc: "square wave between base K and `lo`: K for duty×period steps, then lo",
		keys: []string{"lo", "period", "duty", "phase"},
		build: func(p schedParams, base int) (*Schedule, error) {
			lo, err := p.capOr("lo", base, -1)
			if err != nil {
				return nil, err
			}
			period, err := p.intOr("period", -1)
			if err != nil {
				return nil, err
			}
			if period < 2 || period > 1<<62 {
				return nil, fmt.Errorf("periodic needs 2 <= period <= 2^62, got %d", period)
			}
			duty, err := p.floatOr("duty", 0.5)
			if err != nil {
				return nil, err
			}
			if duty <= 0 || duty >= 1 || duty != duty {
				return nil, fmt.Errorf("periodic needs duty in (0,1), got %v", duty)
			}
			onLen := int64(duty*float64(period) + 0.5)
			if onLen < 1 {
				onLen = 1
			}
			if onLen > period-1 {
				onLen = period - 1
			}
			phase, err := p.intOr("phase", 0)
			if err != nil {
				return nil, err
			}
			if phase < 0 || phase >= period {
				return nil, fmt.Errorf("periodic needs phase in [0,period), got %d", phase)
			}
			if phase >= onLen && lo != base {
				return nil, fmt.Errorf("periodic phase=%d starts in the low half (K(0) is always the base; use phase < %d)", phase, onLen)
			}
			s := &Schedule{
				base: base, min: base,
				period: period, onLen: onLen, phase: phase,
				hi: base, lo: lo,
			}
			if lo < s.min {
				s.min = lo
			}
			return s, validCaps(s.base, s.min)
		},
	},
	{
		name: "trace", desc: "breakpoints from a file: one `t k` pair per line, t ascending from 0",
		keys: []string{"path"}, local: true,
		build: func(p schedParams, base int) (*Schedule, error) {
			path, ok := p["path"]
			if !ok || path == "" {
				return nil, fmt.Errorf("trace needs path=...")
			}
			f, err := os.Open(path)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			bps, err := readTrace(f, base)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", path, err)
			}
			return fromBreakpoints(base, bps)
		},
	},
}

// fromBreakpoints validates and packs an aperiodic schedule. bps must be
// sorted by strictly increasing time with bps[0].t == 0.
func fromBreakpoints(base int, bps []breakpoint) (*Schedule, error) {
	if bps[0].t != 0 || bps[0].k != base {
		return nil, fmt.Errorf("schedule must start at K(0)=%d", base)
	}
	s := &Schedule{base: base, min: base, bps: bps}
	for i, bp := range bps {
		if i > 0 {
			if bp.t <= bps[i-1].t {
				return nil, fmt.Errorf("breakpoint times must increase (t=%d after t=%d)", bp.t, bps[i-1].t)
			}
			if bp.k == bps[i-1].k {
				return nil, fmt.Errorf("redundant breakpoint at t=%d (capacity unchanged)", bp.t)
			}
		}
		if bp.k < s.min {
			s.min = bp.k
		}
	}
	return s, validCaps(s.base, s.min)
}

// validCaps checks every capacity the schedule reaches is usable.
func validCaps(base, min int) error {
	if base < 1 {
		return fmt.Errorf("base capacity K=%d, want >= 1", base)
	}
	if min < 1 {
		return fmt.Errorf("schedule reaches capacity %d, want >= 1", min)
	}
	if base > maxK {
		return fmt.Errorf("base capacity K=%d exceeds the %d-page bound", base, maxK)
	}
	return nil
}

// readTrace parses "t k" lines. Blank lines and #-comments are skipped;
// k values may be absolute or percentages of base. The first breakpoint
// must be "0 <base>" (or "0 100%"). Errors carry the line number but
// never the line's contents: parse errors propagate into HTTP bodies
// and logs, which must not become a file-disclosure channel.
func readTrace(f *os.File, base int) ([]breakpoint, error) {
	var bps []breakpoint
	sc := bufio.NewScanner(f)
	line := 0
	lastT := int64(-1)
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("line %d: want two fields \"t k\"", line)
		}
		t, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil || t < 0 {
			return nil, fmt.Errorf("line %d: bad time (want integer >= 0)", line)
		}
		// Times must strictly increase on every line, including lines the
		// same-k dedup below would otherwise skip: a dense export with an
		// out-of-order or duplicated timestamp is malformed even when the
		// capacity happens to be unchanged.
		if t <= lastT {
			return nil, fmt.Errorf("line %d: time out of order", line)
		}
		lastT = t
		k, err := schedParams{"k": fields[1]}.capOr("k", base, -1)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad capacity (want pages or N%%, >= 1, <= %d)", line, maxK)
		}
		if len(bps) >= maxPlateaus {
			return nil, fmt.Errorf("more than %d breakpoints", maxPlateaus)
		}
		// Tolerate consecutive lines with the same k (a dense export);
		// fromBreakpoints requires deduped changes.
		if len(bps) > 0 && bps[len(bps)-1].k == k {
			continue
		}
		bps = append(bps, breakpoint{t, k})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(bps) == 0 {
		return nil, fmt.Errorf("no breakpoints")
	}
	return bps, nil
}

// scheduleByName resolves a registry row.
func scheduleByName(name string) *scheduleDef {
	for i := range schedules {
		if schedules[i].name == name {
			return &schedules[i]
		}
	}
	return nil
}

// Names lists the registered schedule families in listing order.
func Names() []string {
	out := make([]string, len(schedules))
	for i := range schedules {
		out[i] = schedules[i].name
	}
	return out
}

// Info describes one schedule family for listings.
type Info struct {
	Name   string   `json:"name"`
	Desc   string   `json:"desc"`
	Params []string `json:"params"`
}

// List enumerates the registry in listing order.
func List() []Info {
	out := make([]Info, len(schedules))
	for i := range schedules {
		out[i] = Info{
			Name:   schedules[i].name,
			Desc:   schedules[i].desc,
			Params: append([]string(nil), schedules[i].keys...),
		}
	}
	return out
}

// ParseSchedule parses a capacity spec, name(key=val,...), and binds it
// to the base capacity (the run's Params.K). The parameter list may be
// empty (defaults apply); unknown families and unknown or malformed
// parameters are errors. Every schedule satisfies At(0) == base and
// Min() >= 1.
func ParseSchedule(spec string, base int) (*Schedule, error) {
	return parse(spec, base, false)
}

// ParsePortableSchedule is ParseSchedule restricted to the portable
// families — those whose K(t) is fully determined by the spec string
// and base alone. Families that read files local to the parsing
// process (trace) are rejected. Anything parsing a spec supplied by a
// remote client — mcservd's handlers, the mcfleet dispatcher — must
// use this entry point: a remote spec must never name a path on the
// host (file-existence probing, content disclosure through parse
// errors), and a path-dependent schedule would break the fleet's
// same-key-same-result routing contract anyway.
func ParsePortableSchedule(spec string, base int) (*Schedule, error) {
	return parse(spec, base, true)
}

// portableNames lists the families ParsePortableSchedule accepts.
func portableNames() []string {
	var out []string
	for i := range schedules {
		if !schedules[i].local {
			out = append(out, schedules[i].name)
		}
	}
	return out
}

func parse(spec string, base int, portableOnly bool) (*Schedule, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, fmt.Errorf("capacity: empty spec")
	}
	open := strings.Index(spec, "(")
	name, arglist := spec, ""
	if open >= 0 {
		if !strings.HasSuffix(spec, ")") {
			return nil, fmt.Errorf("capacity: bad spec %q (want name(key=val,...))", spec)
		}
		name, arglist = spec[:open], spec[open+1:len(spec)-1]
	}
	def := scheduleByName(name)
	if def == nil {
		return nil, fmt.Errorf("capacity: unknown schedule %q (valid: %s)",
			name, strings.Join(Names(), ", "))
	}
	if portableOnly && def.local {
		return nil, fmt.Errorf("capacity: %s schedules read files local to the server and are not accepted here (portable families: %s)",
			name, strings.Join(portableNames(), ", "))
	}
	par := schedParams{}
	var keys []string // spec order, so unknown-key errors are stable
	if strings.TrimSpace(arglist) != "" {
		for _, kv := range strings.Split(arglist, ",") {
			key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok || key == "" {
				return nil, fmt.Errorf("capacity: %s: bad parameter %q (want key=val)", name, kv)
			}
			if _, dup := par[key]; dup {
				return nil, fmt.Errorf("capacity: %s: duplicate parameter %q", name, key)
			}
			par[key] = val
			keys = append(keys, key)
		}
	}
	var unknown []string
	for _, key := range keys {
		found := false
		for _, k := range def.keys {
			if k == key {
				found = true
				break
			}
		}
		if !found {
			unknown = append(unknown, key)
		}
	}
	if len(unknown) > 0 {
		return nil, fmt.Errorf("capacity: %s does not accept %s (valid: %s)",
			name, strings.Join(unknown, ", "), strings.Join(def.keys, ", "))
	}
	if err := validCaps(base, base); err != nil {
		return nil, fmt.Errorf("capacity: %v", err)
	}
	s, err := def.build(par, base)
	if err != nil {
		return nil, fmt.Errorf("capacity: %s: %v", name, err)
	}
	s.spec = spec
	return s, nil
}
