package capacity

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mustParse(t *testing.T, spec string, base int) *Schedule {
	t.Helper()
	s, err := ParseSchedule(spec, base)
	if err != nil {
		t.Fatalf("ParseSchedule(%q, %d): %v", spec, base, err)
	}
	return s
}

func TestFixed(t *testing.T) {
	for _, spec := range []string{"fixed", "fixed(k=16)", "fixed(k=100%)"} {
		s := mustParse(t, spec, 16)
		if !s.Constant() {
			t.Errorf("%q: Constant() = false", spec)
		}
		if s.At(0) != 16 || s.At(1<<40) != 16 {
			t.Errorf("%q: At != 16", spec)
		}
		if s.NextChange(0) != NoChange {
			t.Errorf("%q: NextChange(0) = %d, want NoChange", spec, s.NextChange(0))
		}
		if s.Min() != 16 || s.Base() != 16 {
			t.Errorf("%q: Min/Base = %d/%d", spec, s.Min(), s.Base())
		}
	}
	if _, err := ParseSchedule("fixed(k=8)", 16); err == nil {
		t.Error("fixed(k=8) at base 16 parsed; want disagreement error")
	}
}

func TestStep(t *testing.T) {
	s := mustParse(t, "step(to=8,at=100)", 16)
	if s.Constant() {
		t.Error("step: Constant() = true")
	}
	if got := s.At(0); got != 16 {
		t.Errorf("At(0) = %d, want 16", got)
	}
	if got := s.At(99); got != 16 {
		t.Errorf("At(99) = %d, want 16", got)
	}
	if got := s.At(100); got != 8 {
		t.Errorf("At(100) = %d, want 8", got)
	}
	if got := s.NextChange(0); got != 100 {
		t.Errorf("NextChange(0) = %d, want 100", got)
	}
	if got := s.NextChange(100); got != NoChange {
		t.Errorf("NextChange(100) = %d, want NoChange", got)
	}
	if s.Min() != 8 {
		t.Errorf("Min() = %d, want 8", s.Min())
	}

	// Percentage resolution against base, including growth.
	if got := mustParse(t, "step(to=50%,at=10)", 16).At(10); got != 8 {
		t.Errorf("to=50%% of 16: At(10) = %d, want 8", got)
	}
	if got := mustParse(t, "step(to=200%,at=10)", 16).At(10); got != 32 {
		t.Errorf("to=200%% of 16: At(10) = %d, want 32", got)
	}
	// A step to the base capacity is a constant schedule.
	if !mustParse(t, "step(to=16,at=10)", 16).Constant() {
		t.Error("step(to=base) should be constant")
	}
}

func TestRamp(t *testing.T) {
	s := mustParse(t, "ramp(to=8,end=80,every=10)", 16)
	if got := s.At(0); got != 16 {
		t.Errorf("At(0) = %d, want 16", got)
	}
	if got := s.At(80); got != 8 {
		t.Errorf("At(80) = %d, want 8", got)
	}
	if got := s.At(1 << 40); got != 8 {
		t.Errorf("At(big) = %d, want 8", got)
	}
	// Monotone non-increasing for a shrink ramp.
	prev := s.At(0)
	for tm := int64(1); tm <= 100; tm++ {
		k := s.At(tm)
		if k > prev {
			t.Fatalf("shrink ramp grew at t=%d: %d -> %d", tm, prev, k)
		}
		prev = k
	}
	// NextChange walks exactly the change points.
	var changes []int64
	for tm := s.NextChange(0); tm != NoChange; tm = s.NextChange(tm) {
		changes = append(changes, tm)
		if len(changes) > 100 {
			t.Fatal("runaway NextChange")
		}
	}
	if len(changes) == 0 {
		t.Fatal("ramp has no changes")
	}
	for _, tm := range changes {
		if s.At(tm) == s.At(tm-1) {
			t.Errorf("NextChange reported t=%d but At is unchanged", tm)
		}
	}
}

func TestPeriodic(t *testing.T) {
	s := mustParse(t, "periodic(lo=8,period=100,duty=0.5)", 16)
	if got := s.At(0); got != 16 {
		t.Errorf("At(0) = %d, want 16", got)
	}
	if got := s.At(49); got != 16 {
		t.Errorf("At(49) = %d, want 16", got)
	}
	if got := s.At(50); got != 8 {
		t.Errorf("At(50) = %d, want 8", got)
	}
	if got := s.At(100); got != 16 {
		t.Errorf("At(100) = %d, want 16", got)
	}
	if got := s.NextChange(0); got != 50 {
		t.Errorf("NextChange(0) = %d, want 50", got)
	}
	if got := s.NextChange(50); got != 100 {
		t.Errorf("NextChange(50) = %d, want 100", got)
	}
	if s.Min() != 8 {
		t.Errorf("Min() = %d, want 8", s.Min())
	}
	// Phase shifts the wave but must keep K(0) = base.
	s = mustParse(t, "periodic(lo=8,period=100,duty=0.5,phase=25)", 16)
	if got := s.At(0); got != 16 {
		t.Errorf("phase=25: At(0) = %d, want 16", got)
	}
	if got := s.NextChange(0); got != 25 {
		t.Errorf("phase=25: NextChange(0) = %d, want 25", got)
	}
	if _, err := ParseSchedule("periodic(lo=8,period=100,duty=0.5,phase=75)", 16); err == nil {
		t.Error("phase in the low half parsed; want K(0) error")
	}
	// lo=100% is a constant square wave.
	if !mustParse(t, "periodic(lo=100%,period=100)", 16).Constant() {
		t.Error("periodic(lo=base) should be constant")
	}
}

func TestTrace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sched.txt")
	// The "100 8" line repeats k=8: tolerated and deduped.
	content := "# capacity trace\n0 100%\n64 8\n100 8\n\n128 12\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	s := mustParse(t, "trace(path="+path+")", 16)
	if got := s.At(0); got != 16 {
		t.Errorf("At(0) = %d, want 16", got)
	}
	if got := s.At(64); got != 8 {
		t.Errorf("At(64) = %d, want 8", got)
	}
	if got := s.At(127); got != 8 {
		t.Errorf("At(127) = %d, want 8", got)
	}
	if got := s.At(128); got != 12 {
		t.Errorf("At(128) = %d, want 12", got)
	}
	if got := s.NextChange(64); got != 128 {
		t.Errorf("NextChange(64) = %d, want 128 (duplicate-k line must dedupe)", got)
	}

	bad := filepath.Join(dir, "bad.txt")
	for _, tc := range []string{
		"0 8\n",               // first value disagrees with base
		"10 100%\n",           // does not start at t=0
		"0 100%\n5 0\n",       // reaches K=0
		"0 100%\nx y\n",       // malformed
		"0 100%\n5 8\n3 12\n", // time out of order
		"0 100%\n5 8\n3 8\n",  // out-of-order time masked by same-k dedup
		"0 100%\n5 8\n5 8\n",  // duplicate time masked by same-k dedup
	} {
		if err := os.WriteFile(bad, []byte(tc), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ParseSchedule("trace(path="+bad+")", 16); err == nil {
			t.Errorf("trace %q parsed; want error", tc)
		}
	}
	if _, err := ParseSchedule("trace(path="+filepath.Join(dir, "missing.txt")+")", 16); err == nil {
		t.Error("missing trace file parsed")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ spec, want string }{
		{"", "empty"},
		{"step(to=8,at=100", "want name(key=val,...)"},
		{"nosuch", "unknown schedule"},
		{"step(to=8,at=100,bogus=1)", "does not accept"},
		{"step(to=8,at=100,to=4)", "duplicate"},
		{"step(at=100)", "to is required"},
		{"step(to=8)", "at is required"},
		{"step(to=8,at=0)", "at>=1"},
		{"step(to=0,at=10)", "want >= 1"},
		{"step(to=x,at=10)", "not a capacity"},
		{"step(to=12%%,at=10)", "not a percentage"},
		{"ramp(to=8,end=0)", "start < end"},
		{"ramp(to=8,end=10,every=1,start=20)", "start < end"},
		{"periodic(lo=8,period=1)", "period"},
		{"periodic(lo=8,period=100,duty=1.5)", "duty"},
		{"periodic(lo=8,period=100,duty=0)", "duty"},
		{"periodic(lo=8,period=100,phase=-1)", "phase"},
		{"trace", "path"},
	}
	for _, tc := range cases {
		_, err := ParseSchedule(tc.spec, 16)
		if err == nil {
			t.Errorf("ParseSchedule(%q) succeeded; want error containing %q", tc.spec, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParseSchedule(%q) error %q, want substring %q", tc.spec, err, tc.want)
		}
	}
	if _, err := ParseSchedule("fixed", 0); err == nil {
		t.Error("base K=0 accepted")
	}
}

func TestParsePortableSchedule(t *testing.T) {
	for _, spec := range []string{
		"fixed", "step(to=8,at=10)", "ramp(to=8,end=100)", "periodic(lo=8,period=100)",
	} {
		if _, err := ParsePortableSchedule(spec, 16); err != nil {
			t.Errorf("ParsePortableSchedule(%q): %v", spec, err)
		}
	}
	dir := t.TempDir()
	existing := filepath.Join(dir, "sched.txt")
	if err := os.WriteFile(existing, []byte("0 100%\n5 8\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	reject := func(path string) string {
		t.Helper()
		_, err := ParsePortableSchedule("trace(path="+path+")", 16)
		if err == nil {
			t.Fatalf("ParsePortableSchedule accepted trace(path=%s)", path)
		}
		if !strings.Contains(err.Error(), "portable") {
			t.Fatalf("trace rejection error %q does not name the portable families", err)
		}
		return err.Error()
	}
	// Rejection must happen before any file access and must not depend
	// on whether the path exists — otherwise the error itself becomes a
	// remote file-existence probe.
	if a, b := reject(existing), reject(filepath.Join(dir, "missing.txt")); a != b {
		t.Fatalf("portable rejection leaks file existence: %q vs %q", a, b)
	}
}

// TestCanonicalEncodesResolvedSchedule pins that Canonical is a
// function of the resolved K(t), not of the spec string: equivalent
// spellings collide, every behavioural change separates, and a trace
// schedule's encoding tracks the file contents.
func TestCanonicalEncodesResolvedSchedule(t *testing.T) {
	a := mustParse(t, "step(to=8,at=10)", 16)
	if b := mustParse(t, "step(to=50%,at=10)", 16); !bytes.Equal(a.Canonical(), b.Canonical()) {
		t.Error("equivalent step specs encode differently")
	}
	distinct := []*Schedule{
		a,
		mustParse(t, "step(to=8,at=11)", 16),
		mustParse(t, "step(to=9,at=10)", 16),
		mustParse(t, "fixed", 16),
		mustParse(t, "fixed", 8),
		mustParse(t, "periodic(lo=8,period=100)", 16),
		mustParse(t, "periodic(lo=8,period=100,duty=0.3)", 16),
		mustParse(t, "periodic(lo=8,period=100,duty=0.5,phase=25)", 16),
	}
	seen := map[string]string{}
	for _, s := range distinct {
		enc := string(s.Canonical())
		if prev, ok := seen[enc]; ok {
			t.Errorf("Canonical collision between %q and %q (base %d)", prev, s.String(), s.Base())
		}
		seen[enc] = s.String()
	}
	// A trace resolving to the same breakpoints as a step is the same
	// schedule; editing the file changes the encoding under an
	// unchanged spec.
	dir := t.TempDir()
	path := filepath.Join(dir, "s.txt")
	if err := os.WriteFile(path, []byte("0 100%\n10 8\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	tr := mustParse(t, "trace(path="+path+")", 16)
	if !bytes.Equal(tr.Canonical(), a.Canonical()) {
		t.Error("trace with step's breakpoints encodes differently from step")
	}
	if err := os.WriteFile(path, []byte("0 100%\n10 4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	tr2 := mustParse(t, "trace(path="+path+")", 16)
	if tr.String() != tr2.String() {
		t.Fatal("trace spec changed across re-parse")
	}
	if bytes.Equal(tr.Canonical(), tr2.Canonical()) {
		t.Error("editing the trace file did not change Canonical")
	}
}

func TestRampPlateauBound(t *testing.T) {
	if _, err := ParseSchedule("ramp(to=8,end=1000000,every=1)", 16); err == nil {
		t.Error("million-plateau ramp parsed; want maxPlateaus error")
	}
	// Default every (span/8) keeps any span parseable.
	s := mustParse(t, "ramp(to=8,end=1000000)", 16)
	if s.At(1000000) != 8 {
		t.Errorf("default-every ramp At(end) = %d, want 8", s.At(1000000))
	}
}

// TestScheduleInvariants cross-checks At against NextChange on a dense
// probe of every family: between consecutive change points the value
// must be flat.
func TestScheduleInvariants(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.txt")
	if err := os.WriteFile(path, []byte("0 100%\n7 3\n19 75%\n40 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	specs := []string{
		"fixed",
		"step(to=4,at=33)",
		"step(to=150%,at=1)",
		"ramp(to=2,start=5,end=77,every=7)",
		"ramp(to=24,end=100)",
		"periodic(lo=4,period=37,duty=0.3)",
		"periodic(lo=6,period=64,duty=0.9,phase=13)",
		"trace(path=" + path + ")",
	}
	for _, spec := range specs {
		s := mustParse(t, spec, 8)
		if s.At(0) != 8 {
			t.Errorf("%q: At(0) = %d, want base 8", spec, s.At(0))
		}
		min := math.MaxInt
		for tm := int64(0); tm < 300; tm++ {
			k := s.At(tm)
			if k < min {
				min = k
			}
			if k < 1 {
				t.Fatalf("%q: At(%d) = %d < 1", spec, tm, k)
			}
			nc := s.NextChange(tm)
			if nc <= tm {
				t.Fatalf("%q: NextChange(%d) = %d not in the future", spec, tm, nc)
			}
			if nc < 300 && s.At(nc) == k {
				t.Fatalf("%q: NextChange(%d) = %d but capacity still %d", spec, tm, nc, k)
			}
			if tm+1 < nc && s.At(tm+1) != k {
				t.Fatalf("%q: capacity changed at t=%d before NextChange %d", spec, tm+1, nc)
			}
		}
		if min < s.Min() {
			t.Errorf("%q: observed min %d below Min() %d", spec, min, s.Min())
		}
		if s.String() != spec {
			t.Errorf("%q: String() = %q", spec, s.String())
		}
	}
}
