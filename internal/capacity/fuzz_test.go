package capacity_test

import (
	"testing"

	"mcpaging/internal/capacity"
)

// FuzzParseSchedule drives the capacity-spec parser with arbitrary
// strings: malformed specs must come back as errors, never as panics,
// and anything that does parse must satisfy the schedule invariants —
// K(0) is the base, every reachable capacity is >= Min() >= 1, and
// NextChange is consistent with At. mcservd and mcfleet feed
// ParsePortableSchedule directly from request bodies, so this is their
// input-hardening test: the portable parser must be a strict
// restriction of ParseSchedule (never accepting more, resolving to the
// same schedule when both accept).
func FuzzParseSchedule(f *testing.F) {
	for _, c := range capacity.List() {
		f.Add(c.Name, 16)
	}
	for _, spec := range []string{
		"", "fixed", "fixed(k=16)", "fixed(k=100%)", "fixed(k=0)",
		"step", "step(", "step)", "step()", "step(to=8)", "step(at=4)",
		"step(to=8,at=1024)", "step(to=50%,at=1024)", "step(to=200%,at=1)",
		"step(to=8,at=1024", "step(to=8,,at=4)", "step(to=8,to=8,at=4)",
		"ramp(to=8,end=4096)", "ramp(to=8,start=64,end=128,every=8)",
		"ramp(to=8,end=9223372036854775807,every=1)",
		"periodic(lo=8,period=2048)", "periodic(lo=25%,period=64,duty=0.9)",
		"periodic(lo=8,period=64,duty=NaN)", "periodic(lo=8,period=64,phase=63)",
		"trace", "trace(path=/nonexistent)",
		"  step(to=8,at=4)  ", "step(to=8,at=4)\n", "日本語(to=8)", "\x00(\x00)",
	} {
		f.Add(spec, 16)
		f.Add(spec, 1)
	}
	f.Fuzz(func(t *testing.T, spec string, base int) {
		s, err := capacity.ParseSchedule(spec, base)
		sp, perr := capacity.ParsePortableSchedule(spec, base)
		if perr == nil && err != nil {
			t.Fatalf("spec %q base %d: portable parse accepted what ParseSchedule rejected (%v)", spec, base, err)
		}
		if err != nil {
			return
		}
		if perr == nil && string(sp.Canonical()) != string(s.Canonical()) {
			t.Fatalf("spec %q base %d: portable parse resolved a different schedule", spec, base)
		}
		if s.Base() != base || s.At(0) != base {
			t.Fatalf("spec %q base %d: Base()=%d At(0)=%d", spec, base, s.Base(), s.At(0))
		}
		if s.Min() < 1 {
			t.Fatalf("spec %q: Min() = %d < 1", spec, s.Min())
		}
		if s.String() == "" {
			t.Fatalf("spec %q: empty String()", spec)
		}
		constant := s.Constant()
		prev := base
		for tm := int64(0); tm < 512; tm++ {
			k := s.At(tm)
			if k < s.Min() {
				t.Fatalf("spec %q: At(%d) = %d below Min() %d", spec, tm, k, s.Min())
			}
			if constant && k != base {
				t.Fatalf("spec %q: Constant() but At(%d) = %d != %d", spec, tm, k, base)
			}
			if k != prev {
				// A change must be announced by NextChange(t-1) == t.
				if nc := s.NextChange(tm - 1); nc != tm {
					t.Fatalf("spec %q: capacity changed at t=%d but NextChange(%d) = %d", spec, tm, tm-1, nc)
				}
			}
			if nc := s.NextChange(tm); nc <= tm {
				t.Fatalf("spec %q: NextChange(%d) = %d not in the future", spec, tm, nc)
			}
			prev = k
		}
	})
}
