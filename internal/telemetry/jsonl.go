package telemetry

import (
	"encoding/json"
	"io"
	"strconv"

	"mcpaging/internal/core"
	"mcpaging/internal/sim"
)

// writeEventJSONL appends one raw event to the configured event stream
// as a single JSON line. The encoding is hand-rolled into a reused
// buffer: the event path runs once per served request, and a fixed field
// order keeps the stream byte-reproducible.
//
//mcpaging:hotpath
func (c *Collector) writeEventJSONL(e sim.Event) {
	b := c.evBuf[:0]
	b = append(b, `{"t":`...)
	b = strconv.AppendInt(b, e.Time, 10)
	if e.Capacity {
		if e.Tick {
			b = append(b, `,"capacity":true,"tick":true,"page":`...)
			b = strconv.AppendInt(b, int64(e.Page), 10)
		} else {
			b = append(b, `,"capacity":true,"k":`...)
			b = strconv.AppendInt(b, int64(e.K), 10)
		}
	} else if e.Tick {
		b = append(b, `,"tick":true,"page":`...)
		b = strconv.AppendInt(b, int64(e.Page), 10)
		if e.Donor {
			b = append(b, `,"donor":true`...)
		}
	} else {
		b = append(b, `,"core":`...)
		b = strconv.AppendInt(b, int64(e.Core), 10)
		b = append(b, `,"i":`...)
		b = strconv.AppendInt(b, int64(e.Index), 10)
		b = append(b, `,"page":`...)
		b = strconv.AppendInt(b, int64(e.Page), 10)
		b = append(b, `,"fault":`...)
		b = strconv.AppendBool(b, e.Fault)
		if e.Join {
			b = append(b, `,"join":true`...)
		}
		if e.Victim != core.NoPage {
			b = append(b, `,"victim":`...)
			b = strconv.AppendInt(b, int64(e.Victim), 10)
		}
	}
	b = append(b, '}', '\n')
	c.evBuf = b
	c.events.Write(b)
}

// WriteWindowsJSONL writes every retained window as one JSON object per
// line, oldest first. Field order is fixed by the Window struct, so the
// output is deterministic.
func WriteWindowsJSONL(w io.Writer, c *Collector) error {
	enc := json.NewEncoder(w)
	for _, win := range c.Windows() {
		if err := enc.Encode(win); err != nil {
			return err
		}
	}
	return nil
}
