package telemetry

import (
	"encoding/json"
	"io"
	"runtime"
	"strings"
)

// Manifest records everything needed to reproduce a telemetry export
// byte for byte: the workload source, model parameters, strategy spec
// and seeds, plus the toolchain that produced it. It deliberately
// carries no wall-clock timestamp — two runs of the same inputs on the
// same toolchain must produce identical bytes.
type Manifest struct {
	// Tool is the producing binary or harness, e.g. "mcsim".
	Tool string `json:"tool"`
	// Source identifies the workload: a trace path or a generator spec.
	Source string `json:"source"`
	// Strategy is the spec as given (strategyspec mini-language);
	// StrategyName the resolved Strategy.Name().
	Strategy     string `json:"strategy"`
	StrategyName string `json:"strategy_name"`
	// Cores, Requests and Pages describe the workload (p, n, universe w).
	Cores    int `json:"cores"`
	Requests int `json:"requests"`
	Pages    int `json:"pages"`
	// K and Tau are the model parameters of the run. Capacity is the
	// K(t) schedule spec for elastic runs; empty (and omitted) when the
	// capacity is fixed.
	K        int    `json:"k"`
	Tau      int    `json:"tau"`
	Capacity string `json:"capacity,omitempty"`
	// Seed drives randomized policies and generated workloads.
	Seed int64 `json:"seed"`
	// Window is the telemetry window width in time steps.
	Window int64 `json:"window"`
	// Toolchain is the Go toolchain version (runtime.Version()); filled
	// by WriteManifest when empty. Golden-file checks that span
	// toolchains should normalize or exclude this field.
	Toolchain string `json:"toolchain"`
}

// WriteManifest writes the manifest as indented JSON with a trailing
// newline, filling Toolchain from the running toolchain when unset.
func WriteManifest(w io.Writer, m Manifest) error {
	if m.Toolchain == "" {
		m.Toolchain = runtime.Version()
	}
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// SanitizeLabel maps an arbitrary label (strategy spec, experiment
// table title) to a filesystem-safe directory component: runs of
// characters outside [A-Za-z0-9._-] collapse to a single '-'.
func SanitizeLabel(s string) string {
	var b strings.Builder
	dash := false
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			b.WriteRune(r)
			dash = false
		default:
			if !dash && b.Len() > 0 {
				b.WriteByte('-')
			}
			dash = true
		}
	}
	out := strings.TrimRight(b.String(), "-")
	if out == "" {
		return "run"
	}
	return out
}
