package telemetry_test

import (
	"testing"

	"mcpaging/internal/core"
	"mcpaging/internal/policy"
	"mcpaging/internal/sim"
	"mcpaging/internal/telemetry"
)

// run executes one instance with a fresh collector attached and returns
// the end-of-run totals.
func run(t *testing.T, in core.Instance, s sim.Strategy) telemetry.Totals {
	t.Helper()
	c := telemetry.New(telemetry.Config{
		Cores: in.R.NumCores(), Params: in.P, Window: 16,
	})
	res, err := sim.Run(in, s, c.Observer())
	if err != nil {
		t.Fatalf("%s: %v", s.Name(), err)
	}
	c.Finish(res)
	return c.Totals()
}

// TestDonorAccountingEndToEnd drives real strategies through the
// simulator: every repartitioning controller's step-boundary sheds must
// land in PartitionChanges/DonatedEvictions (they flow through the one
// generic Partitioned tick path), while FWF's flush ticks — voluntary
// evictions without a partition — must not.
func TestDonorAccountingEndToEnd(t *testing.T) {
	// Core 0 cycles through many pages (fault-heavy); core 1 reuses two.
	// FairShare moves cells toward core 0 and core 1's part sheds.
	heavy := make(core.Sequence, 128)
	for i := range heavy {
		heavy[i] = core.PageID(i % 16)
	}
	light := make(core.Sequence, 128)
	for i := range light {
		light[i] = core.PageID(100 + i%2)
	}
	in := core.Instance{R: core.RequestSet{heavy, light}, P: core.Params{K: 6, Tau: 1}}

	for _, s := range []sim.Strategy{policy.NewFairShare(8), policy.NewUCP(8)} {
		tot := run(t, in, s)
		if tot.VoluntaryEvictions == 0 {
			t.Fatalf("%s: no voluntary evictions — workload never repartitioned", s.Name())
		}
		if tot.PartitionChanges == 0 {
			t.Fatalf("%s: donor ticks not counted as partition changes", s.Name())
		}
		donated := int64(0)
		for _, d := range tot.DonatedEvictions {
			donated += d
		}
		if donated == 0 {
			t.Fatalf("%s: donor ticks not attributed to a holding core", s.Name())
		}
	}

	// FWF over one core: flush ticks galore, but no partition to change.
	cyc := make(core.Sequence, 64)
	for i := range cyc {
		cyc[i] = core.PageID(i % 8)
	}
	fin := core.Instance{R: core.RequestSet{cyc}, P: core.Params{K: 4, Tau: 1}}
	tot := run(t, fin, policy.NewFWF())
	if tot.VoluntaryEvictions == 0 {
		t.Fatal("S(FWF): expected flush ticks")
	}
	if tot.PartitionChanges != 0 {
		t.Fatalf("S(FWF): %d partition changes from non-donor ticks, want 0", tot.PartitionChanges)
	}
}
