package telemetry

import (
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"mcpaging/internal/core"
	"mcpaging/internal/sim"
	"mcpaging/internal/strategyspec"
	"mcpaging/internal/trace"
)

var update = flag.Bool("update", false, "rewrite the telemetry golden files")

// goldenFiles are the exports checked byte for byte. manifest.json is
// included with its toolchain field normalized (see normalize); the CI
// step that replays this fixture through cmd/mcsim excludes it from the
// diff instead.
var goldenFiles = []string{
	"events.jsonl",
	"windows.jsonl",
	"fault_rate.csv",
	"hit_rate.csv",
	"occupancy.csv",
	"slowdown.csv",
	"tau_debt.csv",
	"summary.csv",
	"metrics.prom",
	"manifest.json",
}

// normalize makes an export comparable across Go toolchains.
func normalize(b []byte) []byte {
	return []byte(strings.ReplaceAll(string(b), runtime.Version(), "GOTOOLCHAIN"))
}

// TestGoldenExport replays the committed fixture trace through the same
// pipeline as
//
//	mcsim -trace internal/telemetry/testdata/trace.txt -k 8 -tau 2 \
//	      -strategy 'S(LRU)' -telemetry -telemetry-window 64
//
// and requires every export to match testdata/golden byte for byte. CI
// additionally runs the real binary and diffs against the same golden
// directory, so this test and cmd/mcsim must stay in lockstep — if one
// drifts, one of the two checks fails. Regenerate with:
//
//	go test ./internal/telemetry -run Golden -update
func TestGoldenExport(t *testing.T) {
	f, err := os.Open("testdata/trace.txt")
	if err != nil {
		t.Fatal(err)
	}
	rs, err := trace.ReadAuto(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	const spec = "S(LRU)"
	st, err := strategyspec.Build(spec, rs, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	params := core.Params{K: 8, Tau: 2}
	dir := t.TempDir()
	sess, err := Start(SessionConfig{
		Dir:           dir,
		Collector:     Config{Cores: rs.NumCores(), Params: params, Window: 64},
		CaptureEvents: true,
		Manifest: Manifest{
			Tool: "mcsim",
			// The path as CI passes it to mcsim from the repo root.
			Source:       "internal/telemetry/testdata/trace.txt",
			Strategy:     spec,
			StrategyName: st.Name(),
			Cores:        rs.NumCores(),
			Requests:     rs.TotalLen(),
			Pages:        len(rs.Universe()),
			K:            params.K,
			Tau:          params.Tau,
			Seed:         1,
			Window:       64,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(core.Instance{R: rs, P: params}, st, sess.Observer())
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(res); err != nil {
		t.Fatal(err)
	}

	goldenDir := filepath.Join("testdata", "golden")
	if *update {
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range goldenFiles {
		got, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("export missing %s: %v", name, err)
		}
		got = normalize(got)
		goldenPath := filepath.Join(goldenDir, name)
		if *update {
			if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(goldenPath)
		if err != nil {
			t.Fatalf("golden missing for %s (run with -update): %v", name, err)
		}
		if string(got) != string(want) {
			t.Errorf("%s differs from golden (regenerate with -update if the change is intended)\ngot:\n%s\nwant:\n%s",
				name, clip(got), clip(want))
		}
	}
}

// clip bounds failure output for large exports.
func clip(b []byte) string {
	const max = 1500
	if len(b) <= max {
		return string(b)
	}
	return string(b[:max]) + "\n…(truncated)"
}
