package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"mcpaging/internal/core"
	"mcpaging/internal/sim"
)

// feed builds the canonical hand-checked event sequence used by the
// collector tests: two cores, τ=2, window 10.
//
//	t=0  core 0 faults on page 1 (free cell)
//	t=0  core 1 faults on page 5 (free cell)
//	t=3  core 0 hits page 1
//	t=4  core 1 faults on page 6, evicting core 0's page 1 (donor!)
//	t=12 core 0 faults on page 2 (free cell)      — second window
//	t=25 tick: page 5 voluntarily evicted          — third window
func feed(c *Collector) {
	c.Observe(sim.Event{Time: 0, Core: 0, Index: 0, Page: 1, Fault: true, Victim: core.NoPage})
	c.Observe(sim.Event{Time: 0, Core: 1, Index: 0, Page: 5, Fault: true, Victim: core.NoPage})
	c.Observe(sim.Event{Time: 3, Core: 0, Index: 1, Page: 1, Victim: core.NoPage})
	c.Observe(sim.Event{Time: 4, Core: 1, Index: 1, Page: 6, Fault: true, Victim: 1})
	c.Observe(sim.Event{Time: 12, Core: 0, Index: 2, Page: 2, Fault: true, Victim: core.NoPage})
	c.Observe(sim.Event{Time: 25, Core: -1, Index: -1, Page: 5, Tick: true, Victim: 5})
}

func testConfig() Config {
	return Config{Cores: 2, Params: core.Params{K: 4, Tau: 2}, Window: 10}
}

func finished(t *testing.T) *Collector {
	t.Helper()
	c := New(testConfig())
	feed(c)
	c.Finish(sim.Result{
		Faults: []int64{2, 2}, Hits: []int64{1, 0},
		Finish: []int64{15, 7}, Makespan: 28,
	})
	return c
}

func TestCollectorWindows(t *testing.T) {
	c := finished(t)
	wins := c.Windows()
	if len(wins) != 3 {
		t.Fatalf("got %d windows, want 3 (makespan 28, window 10)", len(wins))
	}
	w0 := wins[0]
	if w0.Start != 0 || w0.End != 10 {
		t.Fatalf("window 0 bounds [%d,%d), want [0,10)", w0.Start, w0.End)
	}
	// Window 0: core 0 — 1 fault, 1 hit; core 1 — 2 faults.
	if w0.Cores[0].Requests != 2 || w0.Cores[0].Faults != 1 || w0.Cores[0].Hits != 1 {
		t.Fatalf("window 0 core 0 = %+v", w0.Cores[0])
	}
	if w0.Cores[1].Requests != 2 || w0.Cores[1].Faults != 2 {
		t.Fatalf("window 0 core 1 = %+v", w0.Cores[1])
	}
	// Occupancy at close of window 0: core 0 lost page 1 to core 1's
	// fault (0 cells); core 1 holds pages 5 and 6.
	if w0.Cores[0].Occupancy != 0 || w0.Cores[1].Occupancy != 2 {
		t.Fatalf("window 0 occupancy = %d/%d, want 0/2",
			w0.Cores[0].Occupancy, w0.Cores[1].Occupancy)
	}
	// τ-debt at close: 1 fault × τ=2 and 2 faults × τ=2.
	if w0.Cores[0].TauDebt != 2 || w0.Cores[1].TauDebt != 4 {
		t.Fatalf("window 0 tau debt = %d/%d, want 2/4",
			w0.Cores[0].TauDebt, w0.Cores[1].TauDebt)
	}
	if w0.PartitionChanges != 1 {
		t.Fatalf("window 0 partition changes = %d, want 1 (the donor eviction)", w0.PartitionChanges)
	}
	// Window 1: only core 0's fault at t=12; occupancy 1/2.
	w1 := wins[1]
	if w1.Cores[0].Requests != 1 || w1.Cores[0].Faults != 1 || w1.Cores[1].Requests != 0 {
		t.Fatalf("window 1 = %+v", w1)
	}
	if w1.Cores[0].Occupancy != 1 || w1.Cores[1].Occupancy != 2 {
		t.Fatalf("window 1 occupancy = %d/%d, want 1/2",
			w1.Cores[0].Occupancy, w1.Cores[1].Occupancy)
	}
	// Window 2: empty of requests, but the tick drops core 1 to 1 cell.
	w2 := wins[2]
	if w2.Cores[0].Requests != 0 || w2.Cores[1].Requests != 0 {
		t.Fatalf("window 2 should be requestless: %+v", w2)
	}
	if w2.VoluntaryEvictions != 1 || w2.Cores[1].Occupancy != 1 {
		t.Fatalf("window 2 tick not applied: vol=%d occ=%d", w2.VoluntaryEvictions, w2.Cores[1].Occupancy)
	}
}

func TestCollectorTotals(t *testing.T) {
	c := finished(t)
	tot := c.Totals()
	if tot.Requests[0] != 3 || tot.Requests[1] != 2 {
		t.Fatalf("requests = %v", tot.Requests)
	}
	if tot.Faults[0] != 2 || tot.Faults[1] != 2 || tot.Hits[0] != 1 {
		t.Fatalf("faults = %v hits = %v", tot.Faults, tot.Hits)
	}
	if tot.DonatedEvictions[0] != 1 || tot.TakenCells[1] != 1 || tot.PartitionChanges != 1 {
		t.Fatalf("donor accounting: donated=%v taken=%v changes=%d",
			tot.DonatedEvictions, tot.TakenCells, tot.PartitionChanges)
	}
	if tot.VoluntaryEvictions != 1 {
		t.Fatalf("voluntary evictions = %d, want 1", tot.VoluntaryEvictions)
	}
	if tot.Occupancy[0] != 1 || tot.Occupancy[1] != 1 {
		t.Fatalf("final occupancy = %v, want [1 1]", tot.Occupancy)
	}
	if tot.TauDebt[0] != 4 || tot.TauDebt[1] != 4 {
		t.Fatalf("tau debt = %v, want [4 4]", tot.TauDebt)
	}
	if tot.Windows != 3 || tot.DroppedWindows != 0 {
		t.Fatalf("windows = %d dropped = %d", tot.Windows, tot.DroppedWindows)
	}
}

// TestCollectorObserver drives the collector through the sim.Observer
// adapter (the way the CLIs attach it) and checks Result round-trips
// what Finish recorded.
func TestCollectorObserver(t *testing.T) {
	c := New(testConfig())
	obs := c.Observer()
	obs(sim.Event{Time: 0, Core: 0, Index: 0, Page: 1, Fault: true, Victim: core.NoPage})
	obs(sim.Event{Time: 1, Core: 1, Index: 0, Page: 2, Fault: true, Victim: core.NoPage})
	res := sim.Result{Faults: []int64{1, 1}, Finish: []int64{3, 4}, Makespan: 5}
	c.Finish(res)
	if got := c.Result(); got.Makespan != res.Makespan || got.Finish[1] != 4 {
		t.Fatalf("Result() = %+v, want the finished result %+v", got, res)
	}
	tot := c.Totals()
	if tot.Faults[0] != 1 || tot.Faults[1] != 1 {
		t.Fatalf("observer-fed totals = %v", tot.Faults)
	}
	// Finish is idempotent: a second call must not extend the series.
	n := len(c.Windows())
	c.Finish(sim.Result{Makespan: 500})
	if len(c.Windows()) != n || c.Result().Makespan != 5 {
		t.Fatal("second Finish mutated the collector")
	}
}

func TestCollectorRing(t *testing.T) {
	cfg := testConfig()
	cfg.MaxWindows = 2
	c := New(cfg)
	feed(c)
	c.Finish(sim.Result{Makespan: 28})
	wins := c.Windows()
	if len(wins) != 2 {
		t.Fatalf("ring retained %d windows, want 2", len(wins))
	}
	if wins[0].Index != 1 || wins[1].Index != 2 {
		t.Fatalf("ring kept windows %d,%d — want the newest (1,2)", wins[0].Index, wins[1].Index)
	}
	if tot := c.Totals(); tot.Windows != 3 || tot.DroppedWindows != 1 {
		t.Fatalf("windows=%d dropped=%d, want 3/1", tot.Windows, tot.DroppedWindows)
	}
}

func TestEventJSONL(t *testing.T) {
	var buf bytes.Buffer
	cfg := testConfig()
	cfg.Events = &buf
	c := New(cfg)
	feed(c)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 6 {
		t.Fatalf("got %d event lines, want 6", len(lines))
	}
	if lines[0] != `{"t":0,"core":0,"i":0,"page":1,"fault":true}` {
		t.Fatalf("line 0 = %s", lines[0])
	}
	if lines[3] != `{"t":4,"core":1,"i":1,"page":6,"fault":true,"victim":1}` {
		t.Fatalf("line 3 = %s", lines[3])
	}
	if lines[5] != `{"t":25,"tick":true,"page":5}` {
		t.Fatalf("line 5 = %s", lines[5])
	}
}

// TestDonorTicks: a donor tick — a repartitioning strategy shedding a
// cell toward new quotas — counts as a voluntary eviction AND a
// partition change attributed to the holding core; a plain tick (e.g.
// FWF's flush) counts only as a voluntary eviction.
func TestDonorTicks(t *testing.T) {
	var buf bytes.Buffer
	cfg := testConfig()
	cfg.Events = &buf
	c := New(cfg)
	c.Observe(sim.Event{Time: 0, Core: 0, Index: 0, Page: 1, Fault: true, Victim: core.NoPage})
	c.Observe(sim.Event{Time: 1, Core: 1, Index: 0, Page: 2, Fault: true, Victim: core.NoPage})
	c.Observe(sim.Event{Time: 2, Core: -1, Index: -1, Page: 1, Tick: true, Donor: true, Victim: 1})
	c.Observe(sim.Event{Time: 3, Core: -1, Index: -1, Page: 2, Tick: true, Victim: 2})
	c.Finish(sim.Result{Makespan: 4})
	tot := c.Totals()
	if tot.VoluntaryEvictions != 2 {
		t.Fatalf("voluntary evictions = %d, want 2", tot.VoluntaryEvictions)
	}
	if tot.PartitionChanges != 1 {
		t.Fatalf("partition changes = %d, want 1 (only the donor tick)", tot.PartitionChanges)
	}
	if tot.DonatedEvictions[0] != 1 || tot.DonatedEvictions[1] != 0 {
		t.Fatalf("donated = %v, want [1 0]", tot.DonatedEvictions)
	}
	if tot.Occupancy[0] != 0 || tot.Occupancy[1] != 0 {
		t.Fatalf("occupancy = %v, want [0 0]", tot.Occupancy)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if lines[2] != `{"t":2,"tick":true,"page":1,"donor":true}` {
		t.Fatalf("donor tick line = %s", lines[2])
	}
	if lines[3] != `{"t":3,"tick":true,"page":2}` {
		t.Fatalf("plain tick line = %s", lines[3])
	}
}

func TestExportWriters(t *testing.T) {
	c := finished(t)
	var jsonl bytes.Buffer
	if err := WriteWindowsJSONL(&jsonl, c); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(jsonl.String(), "\n"); n != 3 {
		t.Fatalf("windows.jsonl has %d lines, want 3", n)
	}
	var csv bytes.Buffer
	if err := WriteMatrixCSV(&csv, c, c.matrices()["fault_rate"]); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(csv.String(), "\n"), "\n")
	if len(lines) != 4 || lines[0] != "window,start,end,core0,core1" {
		t.Fatalf("fault_rate.csv = %q", csv.String())
	}
	if lines[1] != "0,0,10,0.5,1" {
		t.Fatalf("fault_rate row 0 = %q", lines[1])
	}
	var sum bytes.Buffer
	if err := WriteSummaryCSV(&sum, c); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(sum.String(), "\n"); n != 3 {
		t.Fatalf("summary.csv has %d lines, want header+2", n)
	}
	var prom bytes.Buffer
	if err := WritePrometheus(&prom, c); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`mcpaging_faults_total{core="0"} 2`,
		`mcpaging_partition_changes_total 1`,
		`mcpaging_voluntary_evictions_total 1`,
		"mcpaging_makespan 28",
	} {
		if !strings.Contains(prom.String(), want) {
			t.Fatalf("prometheus snapshot missing %q:\n%s", want, prom.String())
		}
	}
}

func TestSanitizeLabel(t *testing.T) {
	for in, want := range map[string]string{
		"S(LRU)":           "S-LRU",
		"dP[fair](LRU)":    "dP-fair-LRU",
		"sP[4 4](LRU)":     "sP-4-4-LRU",
		"already_safe-1.0": "already_safe-1.0",
		"((((":             "run",
	} {
		if got := SanitizeLabel(in); got != want {
			t.Errorf("SanitizeLabel(%q) = %q, want %q", in, got, want)
		}
	}
}
