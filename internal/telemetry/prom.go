package telemetry

import (
	"fmt"
	"io"
	"strings"
)

// WritePrometheus writes the end-of-run counters and gauges as a
// Prometheus text-format (version 0.0.4) snapshot: the same numbers a
// long-running deployment would scrape, frozen at run end. Metric and
// label order is fixed, so the snapshot is byte-reproducible.
func WritePrometheus(w io.Writer, c *Collector) error {
	tot := c.Totals()
	var b strings.Builder
	perCore := func(name, help, typ string, vals []int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for j, v := range vals {
			fmt.Fprintf(&b, "%s{core=\"%d\"} %d\n", name, j, v)
		}
	}
	scalar := func(name, help, typ, val string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n%s %s\n", name, help, name, typ, name, val)
	}
	perCore("mcpaging_requests_total", "Requests served, per core.", "counter", tot.Requests)
	perCore("mcpaging_faults_total", "Page faults (including in-flight joins), per core.", "counter", tot.Faults)
	perCore("mcpaging_hits_total", "Cache hits, per core.", "counter", tot.Hits)
	perCore("mcpaging_joins_total", "Faults that joined an in-flight fetch, per core.", "counter", tot.Joins)
	perCore("mcpaging_donated_evictions_total", "Cells this core held that another core's fault evicted.", "counter", tot.DonatedEvictions)
	perCore("mcpaging_taken_cells_total", "Cells this core took from other cores on a fault.", "counter", tot.TakenCells)
	perCore("mcpaging_occupancy_cells", "Cache cells attributed to the core at run end.", "gauge", tot.Occupancy)
	perCore("mcpaging_tau_debt_steps_total", "Cumulative fault delay (faults x tau) in time steps, per core.", "counter", tot.TauDebt)
	if len(c.res.Finish) == len(tot.Requests) {
		perCore("mcpaging_finish_time", "Completion time of the core's last request.", "gauge", c.res.Finish)
	}
	scalar("mcpaging_partition_changes_total", "Cross-core evictions: cells moved between cores' occupancy shares.", "counter", itoa(tot.PartitionChanges))
	scalar("mcpaging_voluntary_evictions_total", "Pages evicted voluntarily by Ticker strategies.", "counter", itoa(tot.VoluntaryEvictions))
	if c.elastic {
		// Elastic-only metrics: fixed-capacity snapshots stay byte-identical.
		scalar("mcpaging_capacity_changes_total", "Elastic-capacity K(t) announcements over the run.", "counter", itoa(tot.CapacityChanges))
		scalar("mcpaging_capacity_evictions_total", "Pages shed under capacity pressure while K(t) shrank.", "counter", itoa(tot.CapacityEvictions))
		scalar("mcpaging_capacity_k", "Cache capacity K(t) at run end.", "gauge", itoa(tot.FinalCapacity))
		scalar("mcpaging_capacity_k_min", "Minimum cache capacity K(t) reached over the run.", "gauge", itoa(tot.MinCapacity))
	}
	scalar("mcpaging_fault_jain", "Jain fairness index of whole-run per-core fault counts.", "gauge", ftoa(tot.FaultJain))
	scalar("mcpaging_makespan", "Maximum finish time across cores.", "gauge", itoa(c.res.Makespan))
	scalar("mcpaging_windows_total", "Telemetry windows closed over the run.", "counter", itoa(tot.Windows))
	scalar("mcpaging_windows_dropped_total", "Closed windows that aged out of the retention ring.", "counter", itoa(tot.DroppedWindows))
	_, err := io.WriteString(w, b.String())
	return err
}
