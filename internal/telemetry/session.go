package telemetry

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"mcpaging/internal/sim"
)

// SessionConfig describes one exported run.
type SessionConfig struct {
	// Dir is the export directory; it is created if missing. Every run
	// needs its own directory (files are overwritten, not appended).
	Dir string
	// Collector parameterises the windowing; Collector.Events is ignored
	// (the session owns the event stream when CaptureEvents is set).
	Collector Config
	// CaptureEvents additionally streams every raw event to
	// Dir/events.jsonl. Off by default: the file grows with n.
	CaptureEvents bool
	// Manifest is written alongside the exports; the session fills
	// Window (and WriteManifest the toolchain) when unset.
	Manifest Manifest
}

// Session owns one run's telemetry: a collector plus the export
// directory. Usage: Start → pass Observer() to the simulator → Close
// with the run's result (or Abort on a failed run).
type Session struct {
	cfg    SessionConfig
	col    *Collector
	evFile *os.File
	evBuf  *bufio.Writer
}

// Start creates the export directory (and events.jsonl when capturing)
// and returns a ready session.
func Start(cfg SessionConfig) (*Session, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("telemetry: empty session dir")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	s := &Session{cfg: cfg}
	ccfg := cfg.Collector
	ccfg.Events = nil
	if cfg.CaptureEvents {
		f, err := os.Create(filepath.Join(cfg.Dir, "events.jsonl"))
		if err != nil {
			return nil, fmt.Errorf("telemetry: %w", err)
		}
		s.evFile = f
		s.evBuf = bufio.NewWriterSize(f, 1<<16)
		ccfg.Events = s.evBuf
	}
	s.col = New(ccfg)
	return s, nil
}

// Observer returns the observer to attach to the run.
func (s *Session) Observer() sim.Observer { return s.col.Observe }

// Collector exposes the underlying collector (for tests and custom
// exports).
func (s *Session) Collector() *Collector { return s.col }

// Close finalises the run: it flushes the collector with the run's
// result and writes every export — windows.jsonl, the CSV matrices,
// summary.csv, metrics.prom and manifest.json — into the session
// directory.
func (s *Session) Close(res sim.Result) error {
	s.col.Finish(res)
	if err := s.closeEvents(); err != nil {
		return err
	}
	man := s.cfg.Manifest
	if man.Window == 0 {
		man.Window = s.col.window
	}
	write := func(name string, fn func(f *os.File) error) error {
		f, err := os.Create(filepath.Join(s.cfg.Dir, name))
		if err != nil {
			return fmt.Errorf("telemetry: %w", err)
		}
		werr := fn(f)
		cerr := f.Close()
		if werr != nil {
			return fmt.Errorf("telemetry: writing %s: %w", name, werr)
		}
		if cerr != nil {
			return fmt.Errorf("telemetry: %w", cerr)
		}
		return nil
	}
	if err := write("windows.jsonl", func(f *os.File) error {
		return WriteWindowsJSONL(f, s.col)
	}); err != nil {
		return err
	}
	mats := s.col.matrices()
	names := make([]string, 0, len(mats))
	for name := range mats {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fn := mats[name]
		if err := write(name+".csv", func(f *os.File) error {
			return WriteMatrixCSV(f, s.col, fn)
		}); err != nil {
			return err
		}
	}
	if err := write("summary.csv", func(f *os.File) error {
		return WriteSummaryCSV(f, s.col)
	}); err != nil {
		return err
	}
	if err := write("metrics.prom", func(f *os.File) error {
		return WritePrometheus(f, s.col)
	}); err != nil {
		return err
	}
	return write("manifest.json", func(f *os.File) error {
		return WriteManifest(f, man)
	})
}

// Abort closes the session without exporting (failed runs); partially
// written event streams are left on disk for post-mortems.
func (s *Session) Abort() error { return s.closeEvents() }

func (s *Session) closeEvents() error {
	if s.evFile == nil {
		return nil
	}
	ferr := s.evBuf.Flush()
	cerr := s.evFile.Close()
	s.evFile, s.evBuf = nil, nil
	if ferr != nil {
		return fmt.Errorf("telemetry: %w", ferr)
	}
	if cerr != nil {
		return fmt.Errorf("telemetry: %w", cerr)
	}
	return nil
}
