package telemetry

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"mcpaging/internal/core"
	"mcpaging/internal/sim"
	"mcpaging/internal/strategyspec"
)

func TestSessionRoundTrip(t *testing.T) {
	rs := core.RequestSet{{1, 2, 3, 1, 2, 4, 1}, {9, 8, 9, 7, 8, 9, 7}}
	params := core.Params{K: 4, Tau: 3}
	st, err := strategyspec.Build("S(LRU)", rs, params.K, 1)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "nested", "run")
	sess, err := Start(SessionConfig{
		Dir:           dir,
		Collector:     Config{Cores: 2, Params: params, Window: 8},
		CaptureEvents: true,
		Manifest:      Manifest{Tool: "test", Source: "inline", Cores: 2, K: params.K, Tau: params.Tau},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(core.Instance{R: rs, P: params}, st, sess.Observer())
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(res); err != nil {
		t.Fatal(err)
	}
	for _, name := range goldenFiles {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("session did not write %s: %v", name, err)
		}
		if len(b) == 0 {
			t.Fatalf("session wrote empty %s", name)
		}
	}
	var man Manifest
	b, _ := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err := json.Unmarshal(b, &man); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if man.Toolchain == "" || man.Window != 8 {
		t.Fatalf("manifest defaults not filled: %+v", man)
	}
	// The collector's totals must agree with the simulation result.
	tot := sess.Collector().Totals()
	for j := range tot.Faults {
		if tot.Faults[j] != res.Faults[j] || tot.Hits[j] != res.Hits[j] {
			t.Fatalf("core %d: collector %d/%d faults/hits, result %d/%d",
				j, tot.Faults[j], tot.Hits[j], res.Faults[j], res.Hits[j])
		}
	}
}

func TestSessionAbort(t *testing.T) {
	dir := t.TempDir()
	sess, err := Start(SessionConfig{
		Dir:           dir,
		Collector:     Config{Cores: 1, Params: core.Params{K: 2, Tau: 1}},
		CaptureEvents: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sess.Observer()(sim.Event{Time: 0, Core: 0, Page: 1, Fault: true, Victim: core.NoPage})
	if err := sess.Abort(); err != nil {
		t.Fatal(err)
	}
	// The partial event stream survives for post-mortems; no other
	// export is written.
	if _, err := os.Stat(filepath.Join(dir, "events.jsonl")); err != nil {
		t.Fatalf("events.jsonl missing after abort: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "windows.jsonl")); !os.IsNotExist(err) {
		t.Fatalf("windows.jsonl should not exist after abort, stat err = %v", err)
	}
	if err := Start2ndSessionSameDir(dir); err != nil {
		t.Fatal(err)
	}
}

// Start2ndSessionSameDir checks directories are reusable (files are
// overwritten, not appended).
func Start2ndSessionSameDir(dir string) error {
	sess, err := Start(SessionConfig{
		Dir:       dir,
		Collector: Config{Cores: 1, Params: core.Params{K: 2, Tau: 1}},
	})
	if err != nil {
		return err
	}
	return sess.Close(sim.Result{Faults: []int64{0}, Hits: []int64{0}, Finish: []int64{0}})
}

func BenchmarkCollectorObserve(b *testing.B) {
	c := New(Config{Cores: 4, Params: core.Params{K: 64, Tau: 4}, Window: 1024})
	evs := make([]sim.Event, 1024)
	for i := range evs {
		fault := i%3 == 0
		v := core.NoPage
		if fault && i > 64 {
			v = core.PageID((i * 7) % 64)
		}
		evs[i] = sim.Event{
			Time: int64(i), Core: i % 4, Index: i / 4,
			Page: core.PageID(i % 64), Fault: fault, Victim: v,
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Observe(evs[i%len(evs)])
	}
}
