// Package telemetry turns the simulator's Observer event stream into
// windowed per-core time series and end-of-run counters, and exports
// them as JSONL window streams, CSV matrices for plotting, and a
// Prometheus text-format snapshot, together with a run manifest that
// makes every export reproducible byte for byte.
//
// The package is strictly a consumer of sim.Event values: attaching a
// Collector costs one closure call per event, and not attaching one
// costs nothing — the simulator's nil-observer fast path is untouched.
// Memory is bounded by O(cores × retained windows): the collector keeps
// per-core accumulators for the window being filled plus a ring of at
// most MaxWindows closed windows; older windows are dropped (and
// counted) rather than growing without bound.
//
// Timeline semantics: simulation time is split into fixed-width windows
// [i·W, (i+1)·W). A window closes when the first event at or past its
// end arrives (gap windows in between are emitted empty, carrying the
// then-current occupancy and τ-debt, so exported matrices are dense in
// time) and finally when Finish flushes the tail of the run.
package telemetry

import (
	"io"

	"mcpaging/internal/core"
	"mcpaging/internal/metrics"
	"mcpaging/internal/sim"
)

// DefaultWindow is the window width, in simulation time steps, used when
// Config.Window is zero.
const DefaultWindow int64 = 1024

// DefaultMaxWindows is the closed-window ring capacity used when
// Config.MaxWindows is zero.
const DefaultMaxWindows = 1 << 16

// Config parameterises a Collector.
type Config struct {
	// Cores is the number of cores (p) of the runs being observed.
	Cores int
	// Params are the model parameters of the run; Tau is needed for the
	// τ-debt series.
	Params core.Params
	// Window is the window width in time steps (0 = DefaultWindow).
	Window int64
	// MaxWindows bounds how many closed windows are retained
	// (0 = DefaultMaxWindows). When exceeded, the oldest windows are
	// dropped and counted in Totals.DroppedWindows.
	MaxWindows int
	// Events, when non-nil, receives every raw event as one JSONL line,
	// as it arrives. The collector does not retain raw events.
	Events io.Writer
}

// CoreWindow is one core's slice of one window.
type CoreWindow struct {
	// Requests, Faults, Hits and Joins count this core's events whose
	// service time falls inside the window. Joins are counted in Faults
	// too, mirroring sim.Result.
	Requests int64 `json:"requests"`
	Faults   int64 `json:"faults"`
	Hits     int64 `json:"hits"`
	Joins    int64 `json:"joins"`
	// Occupancy is the number of cache cells attributed to the core at
	// window close: cells the core fetched into and that have not since
	// been evicted. In-flight cells count toward the fetching core.
	Occupancy int64 `json:"occupancy"`
	// TauDebt is the cumulative fault delay (faults so far × τ) the core
	// has accrued by window close — the "delay so far" of the paper's
	// additive-τ model.
	TauDebt int64 `json:"tau_debt"`
}

// Window is one closed telemetry window.
type Window struct {
	// Index is the window number; the window covers [Start, End).
	Index int64 `json:"window"`
	Start int64 `json:"start"`
	End   int64 `json:"end"`
	// Cores holds the per-core series, indexed by core.
	Cores []CoreWindow `json:"cores"`
	// FaultJain is Jain's fairness index of the per-core fault counts of
	// this window (1 = perfectly even, 1/p = one core takes all).
	FaultJain float64 `json:"fault_jain"`
	// PartitionChanges counts cell movements between cores in the
	// window: faults whose victim was held by a different core, plus
	// donor ticks — voluntary evictions a dynamic partition controller
	// issues when shedding toward new quotas (sim.Event.Donor).
	PartitionChanges int64 `json:"partition_changes"`
	// VoluntaryEvictions counts Ticker evictions in the window.
	VoluntaryEvictions int64 `json:"voluntary_evictions"`
	// CapacityChanges counts elastic-capacity announcements in the
	// window and CapacityEvictions the capacity-pressure sheds that
	// drained the cache to a smaller K(t). CapacityK is the capacity in
	// force at window close. All three are zero — and omitted, keeping
	// fixed-capacity exports byte-identical — unless the run carries a
	// non-constant schedule.
	CapacityChanges   int64 `json:"capacity_changes,omitempty"`
	CapacityEvictions int64 `json:"capacity_evictions,omitempty"`
	CapacityK         int64 `json:"capacity_k,omitempty"`
}

// Totals is the end-of-run counter snapshot, per core where sliced.
type Totals struct {
	Requests []int64
	Faults   []int64
	Hits     []int64
	Joins    []int64
	// DonatedEvictions[c] counts evictions where core c gave up a cell
	// to the rest of the system: fault victims it held while a different
	// core faulted, plus donor ticks shed by a repartitioning
	// controller. TakenCells[c] counts the cells core c took from other
	// cores on faults (donor ticks have no identified recipient).
	DonatedEvictions []int64
	TakenCells       []int64
	// Occupancy and TauDebt are the final values of the corresponding
	// window series.
	Occupancy []int64
	TauDebt   []int64
	// PartitionChanges is the whole-run cross-core eviction count;
	// VoluntaryEvictions the whole-run Ticker eviction count.
	PartitionChanges   int64
	VoluntaryEvictions int64
	// CapacityChanges counts K(t) announcements over the run and
	// CapacityEvictions the capacity-pressure sheds (kept out of
	// VoluntaryEvictions, mirroring sim.Result). MinCapacity and
	// FinalCapacity track the schedule actually seen; all four are zero
	// for fixed-capacity runs.
	CapacityChanges   int64
	CapacityEvictions int64
	MinCapacity       int64
	FinalCapacity     int64
	// FaultJain is Jain's index of the whole-run per-core fault counts.
	FaultJain float64
	// Windows counts all closed windows; DroppedWindows how many of them
	// aged out of the retention ring.
	Windows        int64
	DroppedWindows int64
}

// Collector accumulates windowed telemetry from a simulation's event
// stream. It is not safe for concurrent use; attach one collector per
// run (the simulator delivers events from a single goroutine).
type Collector struct {
	cores  int
	tau    int64
	window int64
	maxWin int

	cur      Window // window currently being filled
	curJain  []int64
	anyEvent bool

	holder map[core.PageID]int32 // cached page → core whose fetch brought it in
	occ    []int64               // per-core cells attributed

	cumReq, cumFaults, cumHits, cumJoins []int64
	donated, taken                       []int64
	partChanges, volEvictions            int64

	elastic                  bool  // run carries a non-constant schedule
	curK, minK               int64 // K(t) in force / minimum seen
	capChanges, capEvictions int64

	ring      []Window
	ringStart int
	closed    int64
	dropped   int64

	events   io.Writer
	evBuf    []byte
	finished bool
	res      sim.Result
}

// New returns a Collector for runs with cfg.Cores cores.
func New(cfg Config) *Collector {
	w := cfg.Window
	if w <= 0 {
		w = DefaultWindow
	}
	mw := cfg.MaxWindows
	if mw <= 0 {
		mw = DefaultMaxWindows
	}
	p := cfg.Cores
	c := &Collector{
		cores:     p,
		tau:       int64(cfg.Params.Tau),
		window:    w,
		maxWin:    mw,
		curJain:   make([]int64, p),
		holder:    make(map[core.PageID]int32),
		occ:       make([]int64, p),
		cumReq:    make([]int64, p),
		cumHits:   make([]int64, p),
		cumJoins:  make([]int64, p),
		cumFaults: make([]int64, p),
		donated:   make([]int64, p),
		taken:     make([]int64, p),
		events:    cfg.Events,
	}
	if cs := cfg.Params.Capacity; cs != nil && !cs.Constant() {
		c.elastic = true
		c.curK = int64(cfg.Params.K)
		c.minK = c.curK
	}
	c.resetCur(0)
	return c
}

// Observer returns the collector's event callback, for sim.Run /
// sim.Runner.Run (compose with other observers via sim.MultiObserver).
func (c *Collector) Observer() sim.Observer { return c.Observe }

func (c *Collector) resetCur(index int64) {
	c.cur = Window{
		Index: index,
		Start: index * c.window,
		End:   (index + 1) * c.window,
		Cores: make([]CoreWindow, c.cores),
	}
}

// closeCur finalises the current window into the ring and opens the next.
func (c *Collector) closeCur() {
	for j := range c.cur.Cores {
		cw := &c.cur.Cores[j]
		cw.Occupancy = c.occ[j]
		cw.TauDebt = c.cumFaults[j] * c.tau
		c.curJain[j] = cw.Faults
	}
	c.cur.FaultJain = metrics.JainIndex(c.curJain)
	if c.elastic {
		c.cur.CapacityK = c.curK
	}
	if len(c.ring) < c.maxWin {
		c.ring = append(c.ring, c.cur)
	} else {
		c.ring[c.ringStart] = c.cur
		c.ringStart = (c.ringStart + 1) % c.maxWin
		c.dropped++
	}
	c.closed++
	c.resetCur(c.cur.Index + 1)
}

// advanceTo closes every window that ends at or before time t.
func (c *Collector) advanceTo(t int64) {
	for t >= c.cur.End {
		c.closeCur()
	}
}

// Observe ingests one simulation event. Events must arrive in the
// simulator's delivery order (non-decreasing time).
//
//mcpaging:hotpath
func (c *Collector) Observe(e sim.Event) {
	if c.events != nil {
		c.writeEventJSONL(e)
	}
	c.anyEvent = true
	c.advanceTo(e.Time)
	if e.Capacity {
		if e.Tick {
			// Capacity-pressure eviction: the engine shed e.Page to fit a
			// shrunken K(t). The holder loses the cell but no core takes
			// it, so the partition counters stay untouched.
			if h, ok := c.holder[e.Page]; ok {
				c.occ[h]--
				delete(c.holder, e.Page)
			}
			c.cur.CapacityEvictions++
			c.capEvictions++
			return
		}
		// Announcement: K(t) changed at e.Time.
		c.curK = int64(e.K)
		if c.curK < c.minK {
			c.minK = c.curK
		}
		c.cur.CapacityChanges++
		c.capChanges++
		return
	}
	if e.Tick {
		// Voluntary eviction: the holder's share shrinks by one cell. A
		// donor tick (a dynamic partition shedding toward new quotas) is
		// additionally a partition change: the holder donated the cell,
		// though the recipient is unknown until a later fault grows into
		// it, so TakenCells stays untouched here.
		if h, ok := c.holder[e.Page]; ok {
			c.occ[h]--
			delete(c.holder, e.Page)
			if e.Donor {
				c.donated[h]++
				c.cur.PartitionChanges++
				c.partChanges++
			}
		}
		c.cur.VoluntaryEvictions++
		c.volEvictions++
		return
	}
	if e.Core < 0 || e.Core >= c.cores {
		return
	}
	cw := &c.cur.Cores[e.Core]
	cw.Requests++
	c.cumReq[e.Core]++
	switch {
	case !e.Fault:
		cw.Hits++
		c.cumHits[e.Core]++
	case e.Join:
		// Shared in-flight cell: a fault for the core, no cell movement.
		cw.Faults++
		cw.Joins++
		c.cumFaults[e.Core]++
		c.cumJoins[e.Core]++
	default:
		cw.Faults++
		c.cumFaults[e.Core]++
		if e.Victim != core.NoPage {
			if h, ok := c.holder[e.Victim]; ok {
				c.occ[h]--
				delete(c.holder, e.Victim)
				if int(h) != e.Core {
					c.donated[h]++
					c.taken[e.Core]++
					c.cur.PartitionChanges++
					c.partChanges++
				}
			}
		}
		c.holder[e.Page] = int32(e.Core)
		c.occ[e.Core]++
	}
}

// Finish flushes the tail of the run: every window through the one
// containing the result's makespan is closed, so the exported series
// covers the full timeline including trailing fetch delays. Finish must
// be called exactly once, after the simulation returns.
func (c *Collector) Finish(res sim.Result) {
	if c.finished {
		return
	}
	c.finished = true
	c.res = res
	if c.anyEvent || res.Makespan > 0 {
		// Close through the window containing makespan-1 (the run's last
		// occupied time step).
		last := res.Makespan - 1
		if last < c.cur.Start {
			last = c.cur.Start
		}
		c.advanceTo(last + c.window)
	}
}

// Result returns the simulation result recorded by Finish.
func (c *Collector) Result() sim.Result { return c.res }

// Windows returns the retained closed windows, oldest first. The slice
// aliases the ring; callers must not mutate it.
func (c *Collector) Windows() []Window {
	if c.ringStart == 0 {
		return c.ring
	}
	out := make([]Window, 0, len(c.ring))
	out = append(out, c.ring[c.ringStart:]...)
	out = append(out, c.ring[:c.ringStart]...)
	return out
}

// Totals returns the end-of-run counter snapshot.
func (c *Collector) Totals() Totals {
	cp := func(s []int64) []int64 { return append([]int64(nil), s...) }
	td := make([]int64, c.cores)
	for j := range td {
		td[j] = c.cumFaults[j] * c.tau
	}
	return Totals{
		Requests:           cp(c.cumReq),
		Faults:             cp(c.cumFaults),
		Hits:               cp(c.cumHits),
		Joins:              cp(c.cumJoins),
		DonatedEvictions:   cp(c.donated),
		TakenCells:         cp(c.taken),
		Occupancy:          cp(c.occ),
		TauDebt:            td,
		PartitionChanges:   c.partChanges,
		VoluntaryEvictions: c.volEvictions,
		CapacityChanges:    c.capChanges,
		CapacityEvictions:  c.capEvictions,
		MinCapacity:        c.minK,
		FinalCapacity:      c.curK,
		FaultJain:          metrics.JainIndex(c.cumFaults),
		Windows:            c.closed,
		DroppedWindows:     c.dropped,
	}
}
