package telemetry_test

import (
	"testing"

	"mcpaging/internal/core"
	"mcpaging/internal/sim"
	"mcpaging/internal/telemetry"
)

// Collector.Observe runs once per served request and is annotated
// //mcpaging:hotpath; the hit path must stay allocation-free so that
// attaching telemetry does not perturb the engine it measures.
func TestObserveHitPathZeroAllocs(t *testing.T) {
	c := telemetry.New(telemetry.Config{
		Cores:  2,
		Params: core.Params{K: 8, Tau: 4},
		// One huge window: the test exercises the per-event path, not
		// window rotation (which legitimately allocates per window).
		Window: 1 << 40,
	})
	ev := sim.Event{Time: 0, Core: 1, Index: 0, Page: 3, Victim: core.NoPage}
	c.Observe(ev)
	allocs := testing.AllocsPerRun(1000, func() {
		ev.Time++
		ev.Index++
		c.Observe(ev)
	})
	if allocs != 0 {
		t.Fatalf("Observe hit path: %v allocs/op, want 0", allocs)
	}
}
