package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"mcpaging/internal/metrics"
)

// A matrixFn extracts one core's cell value from a window for the CSV
// matrix exporters.
type matrixFn func(w Window, core int) string

func itoa(v int64) string   { return strconv.FormatInt(v, 10) }
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// rate returns num/den as a CSV cell, 0 when the denominator is zero.
func rate(num, den int64) string {
	if den == 0 {
		return "0"
	}
	return ftoa(float64(num) / float64(den))
}

// WriteMatrixCSV writes one windowed series as a plot-ready matrix: one
// row per window, one column per core, prefixed by the window index and
// bounds.
func WriteMatrixCSV(w io.Writer, c *Collector, fn matrixFn) error {
	var b strings.Builder
	b.WriteString("window,start,end")
	for j := 0; j < c.cores; j++ {
		fmt.Fprintf(&b, ",core%d", j)
	}
	b.WriteByte('\n')
	for _, win := range c.Windows() {
		b.WriteString(itoa(win.Index))
		b.WriteByte(',')
		b.WriteString(itoa(win.Start))
		b.WriteByte(',')
		b.WriteString(itoa(win.End))
		for j := range win.Cores {
			b.WriteByte(',')
			b.WriteString(fn(win, j))
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// The standard matrices exported by Export, name → extractor. Fault and
// hit rates are per-window (faults or hits over the window's requests);
// slowdown is the window's 1 + τ·(fault rate) model, via
// metrics.WindowSlowdown; occupancy and τ-debt are the values at window
// close.
func (c *Collector) matrices() map[string]matrixFn {
	tau := int(c.tau)
	return map[string]matrixFn{
		"fault_rate": func(w Window, j int) string {
			return rate(w.Cores[j].Faults, w.Cores[j].Requests)
		},
		"hit_rate": func(w Window, j int) string {
			return rate(w.Cores[j].Hits, w.Cores[j].Requests)
		},
		"occupancy": func(w Window, j int) string { return itoa(w.Cores[j].Occupancy) },
		"tau_debt":  func(w Window, j int) string { return itoa(w.Cores[j].TauDebt) },
		"slowdown": func(w Window, j int) string {
			return ftoa(metrics.WindowSlowdown(w.Cores[j].Faults, w.Cores[j].Requests, tau))
		},
	}
}

// WriteSummaryCSV writes one row per core with the end-of-run counters,
// plus finish time and whole-run slowdown from the recorded result.
func WriteSummaryCSV(w io.Writer, c *Collector) error {
	tot := c.Totals()
	var b strings.Builder
	b.WriteString("core,requests,faults,hits,joins,donated_evictions,taken_cells,occupancy,tau_debt,finish,slowdown\n")
	for j := 0; j < c.cores; j++ {
		var finish int64
		if j < len(c.res.Finish) {
			finish = c.res.Finish[j]
		}
		slow := "1"
		if tot.Requests[j] > 0 {
			slow = ftoa(float64(finish) / float64(tot.Requests[j]))
		}
		fmt.Fprintf(&b, "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%s\n",
			j, tot.Requests[j], tot.Faults[j], tot.Hits[j], tot.Joins[j],
			tot.DonatedEvictions[j], tot.TakenCells[j], tot.Occupancy[j],
			tot.TauDebt[j], finish, slow)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
