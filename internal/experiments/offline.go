package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"mcpaging/internal/core"
	"mcpaging/internal/metrics"
	"mcpaging/internal/npc"
	"mcpaging/internal/offline"
)

func init() {
	register("E9", runE9)
	register("E10", runE10)
	register("E11", runE11)
	register("E12", runE12)
}

// tinyInstance draws a random instance small enough for exhaustive
// search.
func tinyInstance(rng *rand.Rand, maxP, maxLen int) core.Instance {
	p := 1 + rng.Intn(maxP)
	k := p + 1 + rng.Intn(2)
	tau := rng.Intn(3)
	rs := make(core.RequestSet, p)
	for j := range rs {
		n := 1 + rng.Intn(maxLen)
		s := make(core.Sequence, n)
		for i := range s {
			s[i] = core.PageID(10*j + rng.Intn(3))
		}
		rs[j] = s
	}
	return core.Instance{R: rs, P: core.Params{K: k, Tau: tau}}
}

// runE9 — Theorem 2 / Theorem 3: the 3-PARTITION (and 4-PARTITION)
// reductions are exercised end to end: solver → constructive schedule →
// bounds met with equality; Algorithm 2 confirms feasibility on the
// small gadget and rejects an over-tight variant.
func runE9(cfg Config) (*Result, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 9))
	res := &Result{
		ID:    "E9",
		Title: "NP-completeness gadgets, executable",
		Claim: "Theorem 2 (3-PARTITION → PIF) and Theorem 3 (4-PARTITION → MAX-PIF): schedules exist iff the partition exists",
	}
	tbl := metrics.NewTable("Constructive schedules on reduction instances",
		"arity", "groups", "B", "tau", "p", "K", "bounds_met", "tight")
	trials := 8
	if cfg.Quick {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		arity := 3
		if trial%2 == 1 {
			arity = 4
		}
		b := 12 + rng.Intn(8)
		if arity == 4 {
			b = 16 + rng.Intn(8)
		}
		groups := 1 + rng.Intn(3)
		tau := rng.Intn(3)
		pi, err := npc.GenerateYes(rng, arity, groups, b)
		if err != nil {
			return nil, err
		}
		sol, ok := pi.Solve()
		if !ok {
			return nil, fmt.Errorf("generated yes-instance unsolvable")
		}
		red, err := npc.Reduce(pi, tau)
		if err != nil {
			return nil, err
		}
		met, counts, err := npc.VerifySchedule(red, sol)
		if err != nil {
			return nil, err
		}
		tight := true
		for i, f := range counts {
			if f != red.PIF.Bounds[i] {
				tight = false
			}
		}
		tbl.AddRow(arity, groups, b, tau, len(pi.S), red.PIF.Inst.P.K, met, tight)
		if !met {
			res.Notes = append(res.Notes, "VIOLATION: constructive schedule missed a bound")
		}
	}
	res.Tables = append(res.Tables, tbl)

	// Algorithm 2 on the smallest gadget, both directions.
	yes := npc.PartitionInstance{S: []int{2, 2, 2}, B: 6, Arity: 3}
	red, err := npc.Reduce(yes, 0)
	if err != nil {
		return nil, err
	}
	feasible, st1, err := offline.DecidePIF(red.PIF, offline.Options{})
	if err != nil {
		return nil, err
	}
	tight := red.PIF
	tight.Bounds = append([]int64(nil), tight.Bounds...)
	tight.Bounds[0]--
	infeasible, st2, err := offline.DecidePIF(tight, offline.Options{})
	if err != nil {
		return nil, err
	}
	dp := metrics.NewTable("Algorithm 2 on the B=6 gadget (p=3, K=4, τ=0)",
		"variant", "answer", "dp_states")
	dp.AddRow("exact bounds (yes-gadget)", feasible, st1.States)
	dp.AddRow("one bound tightened", infeasible, st2.States)
	res.Tables = append(res.Tables, dp)
	if feasible && !infeasible {
		res.Notes = append(res.Notes, "Algorithm 2 agrees with the gadget arithmetic in both directions")
	} else {
		res.Notes = append(res.Notes, "VIOLATION: Algorithm 2 disagrees with the gadget")
	}

	// MAX-PIF side (Theorem 3): MaxGroups on a partially solvable set.
	partial := npc.PartitionInstance{S: []int{4, 4, 5, 4, 4, 6}, B: 13, Arity: 3}
	mg := metrics.NewTable("MAX-3-PARTITION on a partially coverable multiset",
		"S", "B", "max_groups")
	mg.AddRow(fmt.Sprintf("%v", partial.S), partial.B, partial.MaxGroups())
	res.Tables = append(res.Tables, mg)
	return res, nil
}

// runE10 — Theorem 6 / Algorithm 1: the FTF dynamic program matches
// exhaustive search everywhere, and its state count scales polynomially
// in n (per the O(n^{K+p}(τ+1)^p) bound) on a fixed-(p,K) family.
func runE10(cfg Config) (*Result, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 10))
	res := &Result{
		ID:    "E10",
		Title: "Algorithm 1 (minimum total faults): correctness and scaling",
		Claim: "Theorem 6: FTF solvable in O(n^{K+p}(τ+1)^p) for constant p, K",
	}
	trials := 150
	if cfg.Quick {
		trials = 40
	}
	agree := 0
	for trial := 0; trial < trials; trial++ {
		in := tinyInstance(rng, 2, 5)
		sol, err := offline.SolveFTF(in, offline.Options{})
		if err != nil {
			return nil, err
		}
		brute, err := offline.BruteFTF(in)
		if err != nil {
			return nil, err
		}
		if sol.Faults == brute {
			agree++
		}
	}
	ctbl := metrics.NewTable("DP vs exhaustive search on random tiny instances",
		"trials", "agreements")
	ctbl.AddRow(trials, agree)
	res.Tables = append(res.Tables, ctbl)
	if agree != trials {
		res.Notes = append(res.Notes, "VIOLATION: DP disagreed with exhaustive search")
	}

	// Scaling in n with p=2, K=3, τ=1 fixed. The sequences are nested
	// prefixes of one random pair, so the state counts are comparable
	// across rows.
	stbl := metrics.NewTable("Algorithm 1 state count and runtime vs n (p=2, K=3, τ=1)",
		"n_per_core", "states", "min_faults", "ms")
	ns := []int{2, 3, 4, 5, 6}
	if cfg.Quick {
		ns = []int{2, 3, 4}
	}
	full := core.RequestSet{make(core.Sequence, ns[len(ns)-1]), make(core.Sequence, ns[len(ns)-1])}
	for j := range full {
		for i := range full[j] {
			full[j][i] = core.PageID(10*j + rng.Intn(3))
		}
	}
	for _, n := range ns {
		rs := core.RequestSet{full[0][:n], full[1][:n]}
		in := core.Instance{R: rs, P: core.Params{K: 3, Tau: 1}}
		start := time.Now()
		sol, err := offline.SolveFTF(in, offline.Options{})
		if err != nil {
			return nil, err
		}
		stbl.AddRow(n, sol.States, sol.Faults, float64(time.Since(start).Microseconds())/1000.0)
	}
	res.Tables = append(res.Tables, stbl)

	// Scaling in τ.
	ttbl := metrics.NewTable("Algorithm 1 state count vs τ (p=2, K=3, n=4)",
		"tau", "states", "min_faults")
	for _, tau := range []int{0, 1, 2, 3} {
		rs := core.RequestSet{{0, 1, 2, 0}, {10, 11, 10, 11}}
		in := core.Instance{R: rs, P: core.Params{K: 3, Tau: tau}}
		sol, err := offline.SolveFTF(in, offline.Options{})
		if err != nil {
			return nil, err
		}
		ttbl.AddRow(tau, sol.States, sol.Faults)
	}
	res.Tables = append(res.Tables, ttbl)

	// Scaling in K (the configuration space dominates: Σ C(w, ≤K)).
	ktbl := metrics.NewTable("Algorithm 1 state count vs K (p=2, n=4, τ=1, w=8 pages)",
		"K", "states", "min_faults")
	krs := core.RequestSet{{0, 1, 2, 3}, {10, 11, 12, 13}}
	for _, k := range []int{2, 3, 4, 5, 6} {
		in := core.Instance{R: krs, P: core.Params{K: k, Tau: 1}}
		sol, err := offline.SolveFTF(in, offline.Options{})
		if err != nil {
			return nil, err
		}
		ktbl.AddRow(k, sol.States, sol.Faults)
	}
	res.Tables = append(res.Tables, ktbl)
	res.Notes = append(res.Notes, "state count grows polynomially in n and (τ+1), exponentially only in p and K")
	return res, nil
}

// runE11 — Theorem 7 / Algorithm 2: the PIF dynamic program matches
// exhaustive search (honest mode) and scales with T and n.
func runE11(cfg Config) (*Result, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 11))
	res := &Result{
		ID:    "E11",
		Title: "Algorithm 2 (PARTIAL-INDIVIDUAL-FAULTS): correctness and scaling",
		Claim: "Theorem 7: PIF decidable in O(n^{K+2p+1}(τ+1)^{p+1}) for constant p, K",
	}
	trials := 150
	if cfg.Quick {
		trials = 40
	}
	agree, yesCount := 0, 0
	for trial := 0; trial < trials; trial++ {
		in := tinyInstance(rng, 2, 5)
		p := in.R.NumCores()
		bounds := make([]int64, p)
		for i := range bounds {
			bounds[i] = int64(rng.Intn(len(in.R[i]) + 1))
		}
		maxT := int64(in.R.MaxLen() * (in.P.Tau + 1))
		pi := offline.PIFInstance{Inst: in, T: rng.Int63n(maxT + 2), Bounds: bounds}
		dp, _, err := offline.DecidePIF(pi, offline.Options{HonestPIF: true})
		if err != nil {
			return nil, err
		}
		brute, err := offline.BrutePIF(pi)
		if err != nil {
			return nil, err
		}
		if dp == brute {
			agree++
		}
		if dp {
			yesCount++
		}
	}
	ctbl := metrics.NewTable("Algorithm 2 vs exhaustive search on random tiny instances",
		"trials", "agreements", "yes_instances")
	ctbl.AddRow(trials, agree, yesCount)
	res.Tables = append(res.Tables, ctbl)
	if agree != trials {
		res.Notes = append(res.Notes, "VIOLATION: Algorithm 2 disagreed with exhaustive search")
	}

	stbl := metrics.NewTable("Algorithm 2 state/pair counts vs n (p=2, K=3, τ=1, T=n(τ+1), b=n/2)",
		"n_per_core", "states", "pairs", "answer", "ms")
	ns := []int{2, 3, 4, 5}
	if cfg.Quick {
		ns = []int{2, 3}
	}
	full := core.RequestSet{make(core.Sequence, ns[len(ns)-1]), make(core.Sequence, ns[len(ns)-1])}
	for j := range full {
		for i := range full[j] {
			full[j][i] = core.PageID(10*j + rng.Intn(3))
		}
	}
	for _, n := range ns {
		rs := core.RequestSet{full[0][:n], full[1][:n]}
		pi := offline.PIFInstance{
			Inst:   core.Instance{R: rs, P: core.Params{K: 3, Tau: 1}},
			T:      int64(n * 2),
			Bounds: []int64{int64(n/2 + 1), int64(n/2 + 1)},
		}
		start := time.Now()
		ans, st, err := offline.DecidePIF(pi, offline.Options{})
		if err != nil {
			return nil, err
		}
		stbl.AddRow(n, st.States, st.Pairs, ans, float64(time.Since(start).Microseconds())/1000.0)
	}
	res.Tables = append(res.Tables, stbl)
	return res, nil
}

// runE12 — Theorems 4 and 5: forcing never helps the FTF optimum, and
// restricting victims to the furthest-in-the-future page of some
// sequence preserves it.
func runE12(cfg Config) (*Result, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 12))
	res := &Result{
		ID:    "E12",
		Title: "Structure of optimal offline schedules",
		Claim: "Theorem 4: an honest optimal algorithm exists; Theorem 5: an optimal algorithm evicting per-sequence-FITF pages exists",
	}
	trials := 120
	if cfg.Quick {
		trials = 30
	}
	honestEq, fitfEq := 0, 0
	var worstGapForcing, worstGapFITF int64
	for trial := 0; trial < trials; trial++ {
		in := tinyInstance(rng, 2, 5)
		honest, err := offline.SolveFTF(in, offline.Options{})
		if err != nil {
			return nil, err
		}
		forcing, err := offline.SolveFTF(in, offline.Options{AllowForcing: true})
		if err != nil {
			return nil, err
		}
		if honest.Faults == forcing.Faults {
			honestEq++
		} else if gap := honest.Faults - forcing.Faults; gap > worstGapForcing {
			worstGapForcing = gap
		}
		fitf, err := offline.BruteFTFFITF(in)
		if err != nil {
			return nil, err
		}
		if fitf == honest.Faults {
			fitfEq++
		} else if gap := fitf - honest.Faults; gap > worstGapFITF {
			worstGapFITF = gap
		}
	}
	tbl := metrics.NewTable("Honest / FITF-restricted optima vs unrestricted optimum",
		"trials", "honest_equal", "fitf_choice_equal", "worst_forcing_gain", "worst_fitf_loss")
	tbl.AddRow(trials, honestEq, fitfEq, worstGapForcing, worstGapFITF)
	res.Tables = append(res.Tables, tbl)
	if honestEq == trials && fitfEq == trials {
		res.Notes = append(res.Notes, "both restrictions preserve the optimum on every sampled instance")
	} else {
		res.Notes = append(res.Notes, "VIOLATION: a restriction changed the optimum")
	}
	return res, nil
}
