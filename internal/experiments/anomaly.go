package experiments

import (
	"math/rand"

	"mcpaging/internal/core"
	"mcpaging/internal/metrics"
	"mcpaging/internal/sim"
)

func init() {
	register("E17", runE17)
}

// lruFaults simulates shared LRU and returns total faults (-1 on error).
func lruFaults(rs core.RequestSet, k, tau int) int64 {
	in := core.Instance{R: rs, P: core.Params{K: k, Tau: tau}}
	res, err := sim.Run(in, sharedLRU(), nil)
	if err != nil {
		return -1
	}
	return res.TotalFaults()
}

// anomalyExampleK is a found instance (p=3) on which shared LRU faults
// MORE with K=5 than with K=4 at τ=3 — impossible in sequential paging
// (LRU is a stack algorithm) and caused here purely by fault delays
// re-aligning the sequences.
func anomalyExampleK() core.RequestSet {
	return core.RequestSet{
		{3, 3, 0, 1, 1, 1, 3, 1, 2, 2, 2, 3, 1, 1, 0, 1, 0, 0, 2},
		{100, 102, 100, 101, 103, 103, 100, 101, 101, 102, 101, 100, 103, 100, 102, 102, 102, 103, 102},
		{202, 203, 203, 201, 203, 202, 201, 203, 201, 202, 202, 203, 201, 200},
	}
}

// anomalyExampleTau is a found instance on which shared LRU faults FEWER
// times with τ=3 than with τ=1 (K=7): slower memory, fewer faults.
func anomalyExampleTau() core.RequestSet {
	return core.RequestSet{
		{3, 2, 3, 3, 0, 2, 2, 1, 2, 3, 3, 2, 1, 1},
		{103, 102, 102, 100, 100, 100, 102, 102, 102, 101, 101},
		{201, 201, 202, 201, 200, 201, 200, 200, 202, 203, 201, 203, 203, 203, 201},
	}
}

// runE17 — alignment anomalies. The paper's Section 6 stresses that
// fault-induced re-alignment makes the multicore problem
// "counterintuitive when trying to apply the reasoning that works in the
// sequential case". This experiment quantifies two concrete
// counterintuitive phenomena the simulator surfaces:
//
//   - a cache-size anomaly: shared LRU can fault MORE with a LARGER
//     cache (sequential LRU, a stack algorithm, never can);
//   - a fetch-delay anomaly: shared LRU can fault FEWER times with a
//     SLOWER memory (larger τ), because delays can push sequences into
//     friendlier alignments.
func runE17(cfg Config) (*Result, error) {
	res := &Result{
		ID:    "E17",
		Title: "Alignment anomalies of shared LRU (beyond the paper)",
		Claim: "Section 6 (qualitative): fault-induced re-alignment defeats sequential-paging intuition; quantified here as cache-size and fetch-delay anomalies",
	}
	trials := 4000
	if cfg.Quick {
		trials = 600
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 17))
	kAnom, tauAnom, valid := 0, 0, 0
	for trial := 0; trial < trials; trial++ {
		p := 2 + rng.Intn(2)
		rs := make(core.RequestSet, p)
		for j := range rs {
			n := 5 + rng.Intn(20)
			s := make(core.Sequence, n)
			for i := range s {
				s[i] = core.PageID(100*j + rng.Intn(4))
			}
			rs[j] = s
		}
		tau := 1 + rng.Intn(3)
		k := p + 1 + rng.Intn(4)
		f1, f2 := lruFaults(rs, k, tau), lruFaults(rs, k+1, tau)
		g2 := lruFaults(rs, k, tau+2)
		if f1 < 0 || f2 < 0 || g2 < 0 {
			continue
		}
		valid++
		if f2 > f1 {
			kAnom++
		}
		if g2 < f1 {
			tauAnom++
		}
	}
	rates := metrics.NewTable("Anomaly frequency over random instances (p∈{2,3}, small working sets)",
		"instances", "faults(K+1) > faults(K)", "faults(τ+2) < faults(τ)")
	rates.AddRow(valid, kAnom, tauAnom)
	res.Tables = append(res.Tables, rates)

	// The pinned examples, swept.
	kTbl := metrics.NewTable("Cache-size anomaly example (p=3, τ=3): faults vs K",
		"K", "slru_faults")
	for k := 4; k <= 8; k++ {
		kTbl.AddRow(k, lruFaults(anomalyExampleK(), k, 3))
	}
	res.Tables = append(res.Tables, kTbl)

	tTbl := metrics.NewTable("Fetch-delay anomaly example (p=3, K=7): faults vs τ",
		"tau", "slru_faults")
	for _, tau := range []int{0, 1, 2, 3, 4, 6} {
		tTbl.AddRow(tau, lruFaults(anomalyExampleTau(), 7, tau))
	}
	res.Tables = append(res.Tables, tTbl)

	if lruFaults(anomalyExampleK(), 5, 3) <= lruFaults(anomalyExampleK(), 4, 3) {
		res.Notes = append(res.Notes, "VIOLATION: pinned K-anomaly vanished")
	}
	if lruFaults(anomalyExampleTau(), 7, 3) >= lruFaults(anomalyExampleTau(), 7, 1) {
		res.Notes = append(res.Notes, "VIOLATION: pinned τ-anomaly vanished")
	}
	res.Notes = append(res.Notes,
		"cache-size anomalies are rare but real (sequential LRU cannot exhibit them); delay anomalies are common — alignment, not capacity, dominates")
	return res, nil
}
