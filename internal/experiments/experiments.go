package experiments

import (
	"fmt"
	"io"
	"sort"

	"mcpaging/internal/cache"
	"mcpaging/internal/metrics"
	"mcpaging/internal/policy"
)

// Config tunes an experiment run.
type Config struct {
	// Quick shrinks workload sizes so the full suite runs in seconds
	// (used by benchmarks and smoke tests). Default (false) uses the
	// sizes recorded in EXPERIMENTS.md.
	Quick bool
	// Seed drives all randomized workloads; experiments are
	// deterministic given the seed.
	Seed int64
	// telem, when set via WithTelemetry, makes every mustRun simulation
	// export its windowed timeline.
	telem *telemetryState
}

// Result is an experiment's report.
type Result struct {
	// ID is the experiment identifier, e.g. "E7".
	ID string
	// Title is a one-line description.
	Title string
	// Claim is the paper statement being reproduced.
	Claim string
	// Tables hold the measurements.
	Tables []*metrics.Table
	// Notes carry free-form observations (e.g. "bound respected at
	// every point").
	Notes []string
}

// Render writes the full report to w.
func (r *Result) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\nClaim: %s\n\n", r.ID, r.Title, r.Claim); err != nil {
		return err
	}
	for _, t := range r.Tables {
		if err := t.Render(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// RenderMarkdown writes the report as a markdown section, suitable for
// pasting into EXPERIMENTS.md.
func (r *Result) RenderMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "## %s — %s\n\n**Claim.** %s\n\n", r.ID, r.Title, r.Claim); err != nil {
		return err
	}
	for _, t := range r.Tables {
		if err := t.Markdown(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "*Note:* %s\n\n", n); err != nil {
			return err
		}
	}
	return nil
}

// Runner executes one experiment.
type Runner func(Config) (*Result, error)

// registry maps experiment IDs to runners; populated by init functions
// in the per-experiment files.
var registry = map[string]Runner{}

// register adds an experiment to the registry (called from init).
func register(id string, r Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = r
}

// IDs returns the registered experiment IDs in order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		// E2 < E10 numerically.
		a, b := out[i], out[j]
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})
	return out
}

// Get returns the runner for an experiment ID.
func Get(id string) (Runner, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return r, nil
}

// RunAll executes every experiment in order and writes the reports to w.
func RunAll(cfg Config, w io.Writer) error {
	for _, id := range IDs() {
		r := registry[id]
		res, err := r(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if err := res.Render(w); err != nil {
			return err
		}
	}
	return nil
}

// lruF is the LRU factory shared by experiments.
func lruF() cache.Factory { return func() cache.Policy { return cache.NewLRU() } }

// fitfF is the FITF factory shared by experiments.
func fitfF() cache.Factory { return func() cache.Policy { return cache.NewFITF() } }

// sharedLRU builds the S_LRU baseline.
func sharedLRU() *policy.Shared { return policy.NewShared(lruF()) }
